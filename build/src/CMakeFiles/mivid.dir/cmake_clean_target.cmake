file(REMOVE_RECURSE
  "libmivid.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/rocchio.cc" "src/CMakeFiles/mivid.dir/baseline/rocchio.cc.o" "gcc" "src/CMakeFiles/mivid.dir/baseline/rocchio.cc.o.d"
  "/root/repo/src/baseline/weighted_rf.cc" "src/CMakeFiles/mivid.dir/baseline/weighted_rf.cc.o" "gcc" "src/CMakeFiles/mivid.dir/baseline/weighted_rf.cc.o.d"
  "/root/repo/src/common/ascii_plot.cc" "src/CMakeFiles/mivid.dir/common/ascii_plot.cc.o" "gcc" "src/CMakeFiles/mivid.dir/common/ascii_plot.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/mivid.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/mivid.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/mivid.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/mivid.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mivid.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mivid.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/mivid.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/mivid.dir/common/string_util.cc.o.d"
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/mivid.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/mivid.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/codec.cc" "src/CMakeFiles/mivid.dir/db/codec.cc.o" "gcc" "src/CMakeFiles/mivid.dir/db/codec.cc.o.d"
  "/root/repo/src/db/feature_store.cc" "src/CMakeFiles/mivid.dir/db/feature_store.cc.o" "gcc" "src/CMakeFiles/mivid.dir/db/feature_store.cc.o.d"
  "/root/repo/src/db/frame_store.cc" "src/CMakeFiles/mivid.dir/db/frame_store.cc.o" "gcc" "src/CMakeFiles/mivid.dir/db/frame_store.cc.o.d"
  "/root/repo/src/db/query_engine.cc" "src/CMakeFiles/mivid.dir/db/query_engine.cc.o" "gcc" "src/CMakeFiles/mivid.dir/db/query_engine.cc.o.d"
  "/root/repo/src/db/session_store.cc" "src/CMakeFiles/mivid.dir/db/session_store.cc.o" "gcc" "src/CMakeFiles/mivid.dir/db/session_store.cc.o.d"
  "/root/repo/src/db/video_db.cc" "src/CMakeFiles/mivid.dir/db/video_db.cc.o" "gcc" "src/CMakeFiles/mivid.dir/db/video_db.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/mivid.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/mivid.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/mivid.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/mivid.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/oracle.cc" "src/CMakeFiles/mivid.dir/eval/oracle.cc.o" "gcc" "src/CMakeFiles/mivid.dir/eval/oracle.cc.o.d"
  "/root/repo/src/event/event_model.cc" "src/CMakeFiles/mivid.dir/event/event_model.cc.o" "gcc" "src/CMakeFiles/mivid.dir/event/event_model.cc.o.d"
  "/root/repo/src/event/features.cc" "src/CMakeFiles/mivid.dir/event/features.cc.o" "gcc" "src/CMakeFiles/mivid.dir/event/features.cc.o.d"
  "/root/repo/src/event/sliding_window.cc" "src/CMakeFiles/mivid.dir/event/sliding_window.cc.o" "gcc" "src/CMakeFiles/mivid.dir/event/sliding_window.cc.o.d"
  "/root/repo/src/geometry/geometry.cc" "src/CMakeFiles/mivid.dir/geometry/geometry.cc.o" "gcc" "src/CMakeFiles/mivid.dir/geometry/geometry.cc.o.d"
  "/root/repo/src/geometry/homography.cc" "src/CMakeFiles/mivid.dir/geometry/homography.cc.o" "gcc" "src/CMakeFiles/mivid.dir/geometry/homography.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/mivid.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/mivid.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/mivid.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/mivid.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/pca.cc" "src/CMakeFiles/mivid.dir/linalg/pca.cc.o" "gcc" "src/CMakeFiles/mivid.dir/linalg/pca.cc.o.d"
  "/root/repo/src/linalg/solve.cc" "src/CMakeFiles/mivid.dir/linalg/solve.cc.o" "gcc" "src/CMakeFiles/mivid.dir/linalg/solve.cc.o.d"
  "/root/repo/src/linalg/stats.cc" "src/CMakeFiles/mivid.dir/linalg/stats.cc.o" "gcc" "src/CMakeFiles/mivid.dir/linalg/stats.cc.o.d"
  "/root/repo/src/mil/bag.cc" "src/CMakeFiles/mivid.dir/mil/bag.cc.o" "gcc" "src/CMakeFiles/mivid.dir/mil/bag.cc.o.d"
  "/root/repo/src/mil/citation_knn.cc" "src/CMakeFiles/mivid.dir/mil/citation_knn.cc.o" "gcc" "src/CMakeFiles/mivid.dir/mil/citation_knn.cc.o.d"
  "/root/repo/src/mil/dataset.cc" "src/CMakeFiles/mivid.dir/mil/dataset.cc.o" "gcc" "src/CMakeFiles/mivid.dir/mil/dataset.cc.o.d"
  "/root/repo/src/mil/diverse_density.cc" "src/CMakeFiles/mivid.dir/mil/diverse_density.cc.o" "gcc" "src/CMakeFiles/mivid.dir/mil/diverse_density.cc.o.d"
  "/root/repo/src/mil/mi_svm.cc" "src/CMakeFiles/mivid.dir/mil/mi_svm.cc.o" "gcc" "src/CMakeFiles/mivid.dir/mil/mi_svm.cc.o.d"
  "/root/repo/src/retrieval/active_selection.cc" "src/CMakeFiles/mivid.dir/retrieval/active_selection.cc.o" "gcc" "src/CMakeFiles/mivid.dir/retrieval/active_selection.cc.o.d"
  "/root/repo/src/retrieval/heuristic.cc" "src/CMakeFiles/mivid.dir/retrieval/heuristic.cc.o" "gcc" "src/CMakeFiles/mivid.dir/retrieval/heuristic.cc.o.d"
  "/root/repo/src/retrieval/mil_rf_engine.cc" "src/CMakeFiles/mivid.dir/retrieval/mil_rf_engine.cc.o" "gcc" "src/CMakeFiles/mivid.dir/retrieval/mil_rf_engine.cc.o.d"
  "/root/repo/src/retrieval/query_by_example.cc" "src/CMakeFiles/mivid.dir/retrieval/query_by_example.cc.o" "gcc" "src/CMakeFiles/mivid.dir/retrieval/query_by_example.cc.o.d"
  "/root/repo/src/retrieval/session.cc" "src/CMakeFiles/mivid.dir/retrieval/session.cc.o" "gcc" "src/CMakeFiles/mivid.dir/retrieval/session.cc.o.d"
  "/root/repo/src/segment/background.cc" "src/CMakeFiles/mivid.dir/segment/background.cc.o" "gcc" "src/CMakeFiles/mivid.dir/segment/background.cc.o.d"
  "/root/repo/src/segment/blob.cc" "src/CMakeFiles/mivid.dir/segment/blob.cc.o" "gcc" "src/CMakeFiles/mivid.dir/segment/blob.cc.o.d"
  "/root/repo/src/segment/segmenter.cc" "src/CMakeFiles/mivid.dir/segment/segmenter.cc.o" "gcc" "src/CMakeFiles/mivid.dir/segment/segmenter.cc.o.d"
  "/root/repo/src/segment/spcpe.cc" "src/CMakeFiles/mivid.dir/segment/spcpe.cc.o" "gcc" "src/CMakeFiles/mivid.dir/segment/spcpe.cc.o.d"
  "/root/repo/src/svm/binary_svm.cc" "src/CMakeFiles/mivid.dir/svm/binary_svm.cc.o" "gcc" "src/CMakeFiles/mivid.dir/svm/binary_svm.cc.o.d"
  "/root/repo/src/svm/kernel.cc" "src/CMakeFiles/mivid.dir/svm/kernel.cc.o" "gcc" "src/CMakeFiles/mivid.dir/svm/kernel.cc.o.d"
  "/root/repo/src/svm/model_io.cc" "src/CMakeFiles/mivid.dir/svm/model_io.cc.o" "gcc" "src/CMakeFiles/mivid.dir/svm/model_io.cc.o.d"
  "/root/repo/src/svm/model_selection.cc" "src/CMakeFiles/mivid.dir/svm/model_selection.cc.o" "gcc" "src/CMakeFiles/mivid.dir/svm/model_selection.cc.o.d"
  "/root/repo/src/svm/one_class_svm.cc" "src/CMakeFiles/mivid.dir/svm/one_class_svm.cc.o" "gcc" "src/CMakeFiles/mivid.dir/svm/one_class_svm.cc.o.d"
  "/root/repo/src/track/assignment.cc" "src/CMakeFiles/mivid.dir/track/assignment.cc.o" "gcc" "src/CMakeFiles/mivid.dir/track/assignment.cc.o.d"
  "/root/repo/src/track/tracker.cc" "src/CMakeFiles/mivid.dir/track/tracker.cc.o" "gcc" "src/CMakeFiles/mivid.dir/track/tracker.cc.o.d"
  "/root/repo/src/track/vehicle_classifier.cc" "src/CMakeFiles/mivid.dir/track/vehicle_classifier.cc.o" "gcc" "src/CMakeFiles/mivid.dir/track/vehicle_classifier.cc.o.d"
  "/root/repo/src/trafficsim/driver.cc" "src/CMakeFiles/mivid.dir/trafficsim/driver.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trafficsim/driver.cc.o.d"
  "/root/repo/src/trafficsim/incident.cc" "src/CMakeFiles/mivid.dir/trafficsim/incident.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trafficsim/incident.cc.o.d"
  "/root/repo/src/trafficsim/renderer.cc" "src/CMakeFiles/mivid.dir/trafficsim/renderer.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trafficsim/renderer.cc.o.d"
  "/root/repo/src/trafficsim/road.cc" "src/CMakeFiles/mivid.dir/trafficsim/road.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trafficsim/road.cc.o.d"
  "/root/repo/src/trafficsim/scenarios.cc" "src/CMakeFiles/mivid.dir/trafficsim/scenarios.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trafficsim/scenarios.cc.o.d"
  "/root/repo/src/trafficsim/vehicle.cc" "src/CMakeFiles/mivid.dir/trafficsim/vehicle.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trafficsim/vehicle.cc.o.d"
  "/root/repo/src/trafficsim/world.cc" "src/CMakeFiles/mivid.dir/trafficsim/world.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trafficsim/world.cc.o.d"
  "/root/repo/src/trajectory/polyfit.cc" "src/CMakeFiles/mivid.dir/trajectory/polyfit.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trajectory/polyfit.cc.o.d"
  "/root/repo/src/trajectory/smoothing.cc" "src/CMakeFiles/mivid.dir/trajectory/smoothing.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trajectory/smoothing.cc.o.d"
  "/root/repo/src/trajectory/trajectory.cc" "src/CMakeFiles/mivid.dir/trajectory/trajectory.cc.o" "gcc" "src/CMakeFiles/mivid.dir/trajectory/trajectory.cc.o.d"
  "/root/repo/src/video/clip.cc" "src/CMakeFiles/mivid.dir/video/clip.cc.o" "gcc" "src/CMakeFiles/mivid.dir/video/clip.cc.o.d"
  "/root/repo/src/video/draw.cc" "src/CMakeFiles/mivid.dir/video/draw.cc.o" "gcc" "src/CMakeFiles/mivid.dir/video/draw.cc.o.d"
  "/root/repo/src/video/frame.cc" "src/CMakeFiles/mivid.dir/video/frame.cc.o" "gcc" "src/CMakeFiles/mivid.dir/video/frame.cc.o.d"
  "/root/repo/src/video/image_io.cc" "src/CMakeFiles/mivid.dir/video/image_io.cc.o" "gcc" "src/CMakeFiles/mivid.dir/video/image_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for mivid.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mivid_cli.dir/mivid_cli.cc.o"
  "CMakeFiles/mivid_cli.dir/mivid_cli.cc.o.d"
  "mivid_cli"
  "mivid_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mivid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mivid_cli.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for cross_camera_demo.
# This may be replaced when dependencies are built.

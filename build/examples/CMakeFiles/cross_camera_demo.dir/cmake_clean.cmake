file(REMOVE_RECURSE
  "CMakeFiles/cross_camera_demo.dir/cross_camera_demo.cpp.o"
  "CMakeFiles/cross_camera_demo.dir/cross_camera_demo.cpp.o.d"
  "cross_camera_demo"
  "cross_camera_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_camera_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/query_by_example_demo.dir/query_by_example_demo.cpp.o"
  "CMakeFiles/query_by_example_demo.dir/query_by_example_demo.cpp.o.d"
  "query_by_example_demo"
  "query_by_example_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_by_example_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for query_by_example_demo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/videodb_tour.dir/videodb_tour.cpp.o"
  "CMakeFiles/videodb_tour.dir/videodb_tour.cpp.o.d"
  "videodb_tour"
  "videodb_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/videodb_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for videodb_tour.
# This may be replaced when dependencies are built.

# Empty dependencies file for incident_retrieval.
# This may be replaced when dependencies are built.

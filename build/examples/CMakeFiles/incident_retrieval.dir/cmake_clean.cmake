file(REMOVE_RECURSE
  "CMakeFiles/incident_retrieval.dir/incident_retrieval.cpp.o"
  "CMakeFiles/incident_retrieval.dir/incident_retrieval.cpp.o.d"
  "incident_retrieval"
  "incident_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/trajectory_fitting_demo.dir/trajectory_fitting_demo.cpp.o"
  "CMakeFiles/trajectory_fitting_demo.dir/trajectory_fitting_demo.cpp.o.d"
  "trajectory_fitting_demo"
  "trajectory_fitting_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_fitting_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

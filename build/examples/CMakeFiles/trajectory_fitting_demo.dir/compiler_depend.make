# Empty compiler generated dependencies file for trajectory_fitting_demo.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for event_models_demo.
# This may be replaced when dependencies are built.

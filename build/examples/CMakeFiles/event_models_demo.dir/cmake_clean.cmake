file(REMOVE_RECURSE
  "CMakeFiles/event_models_demo.dir/event_models_demo.cpp.o"
  "CMakeFiles/event_models_demo.dir/event_models_demo.cpp.o.d"
  "event_models_demo"
  "event_models_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_models_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mivid_tests.
# This may be replaced when dependencies are built.

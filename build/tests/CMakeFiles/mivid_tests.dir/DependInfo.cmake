
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/active_gridsearch_test.cc" "tests/CMakeFiles/mivid_tests.dir/active_gridsearch_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/active_gridsearch_test.cc.o.d"
  "/root/repo/tests/background_median_test.cc" "tests/CMakeFiles/mivid_tests.dir/background_median_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/background_median_test.cc.o.d"
  "/root/repo/tests/binary_svm_test.cc" "tests/CMakeFiles/mivid_tests.dir/binary_svm_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/binary_svm_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/mivid_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/db_test.cc" "tests/CMakeFiles/mivid_tests.dir/db_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/db_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/mivid_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/event_test.cc" "tests/CMakeFiles/mivid_tests.dir/event_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/event_test.cc.o.d"
  "/root/repo/tests/frame_store_test.cc" "tests/CMakeFiles/mivid_tests.dir/frame_store_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/frame_store_test.cc.o.d"
  "/root/repo/tests/geometry_test.cc" "tests/CMakeFiles/mivid_tests.dir/geometry_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/geometry_test.cc.o.d"
  "/root/repo/tests/homography_test.cc" "tests/CMakeFiles/mivid_tests.dir/homography_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/homography_test.cc.o.d"
  "/root/repo/tests/incident_edge_test.cc" "tests/CMakeFiles/mivid_tests.dir/incident_edge_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/incident_edge_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/mivid_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/linalg_test.cc" "tests/CMakeFiles/mivid_tests.dir/linalg_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/linalg_test.cc.o.d"
  "/root/repo/tests/mil_baselines_test.cc" "tests/CMakeFiles/mivid_tests.dir/mil_baselines_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/mil_baselines_test.cc.o.d"
  "/root/repo/tests/mil_test.cc" "tests/CMakeFiles/mivid_tests.dir/mil_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/mil_test.cc.o.d"
  "/root/repo/tests/misc_edge_test.cc" "tests/CMakeFiles/mivid_tests.dir/misc_edge_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/misc_edge_test.cc.o.d"
  "/root/repo/tests/property_sweep_test.cc" "tests/CMakeFiles/mivid_tests.dir/property_sweep_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/property_sweep_test.cc.o.d"
  "/root/repo/tests/query_by_example_test.cc" "tests/CMakeFiles/mivid_tests.dir/query_by_example_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/query_by_example_test.cc.o.d"
  "/root/repo/tests/retrieval_test.cc" "tests/CMakeFiles/mivid_tests.dir/retrieval_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/retrieval_test.cc.o.d"
  "/root/repo/tests/rocchio_session_test.cc" "tests/CMakeFiles/mivid_tests.dir/rocchio_session_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/rocchio_session_test.cc.o.d"
  "/root/repo/tests/segment_test.cc" "tests/CMakeFiles/mivid_tests.dir/segment_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/segment_test.cc.o.d"
  "/root/repo/tests/smoothing_knn_test.cc" "tests/CMakeFiles/mivid_tests.dir/smoothing_knn_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/smoothing_knn_test.cc.o.d"
  "/root/repo/tests/svm_test.cc" "tests/CMakeFiles/mivid_tests.dir/svm_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/svm_test.cc.o.d"
  "/root/repo/tests/track_test.cc" "tests/CMakeFiles/mivid_tests.dir/track_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/track_test.cc.o.d"
  "/root/repo/tests/trafficsim_test.cc" "tests/CMakeFiles/mivid_tests.dir/trafficsim_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/trafficsim_test.cc.o.d"
  "/root/repo/tests/trajectory_test.cc" "tests/CMakeFiles/mivid_tests.dir/trajectory_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/trajectory_test.cc.o.d"
  "/root/repo/tests/video_test.cc" "tests/CMakeFiles/mivid_tests.dir/video_test.cc.o" "gcc" "tests/CMakeFiles/mivid_tests.dir/video_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mivid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/fig8_tunnel_accuracy.dir/fig8_tunnel_accuracy.cc.o"
  "CMakeFiles/fig8_tunnel_accuracy.dir/fig8_tunnel_accuracy.cc.o.d"
  "fig8_tunnel_accuracy"
  "fig8_tunnel_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tunnel_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ext_feedback_noise.
# This may be replaced when dependencies are built.

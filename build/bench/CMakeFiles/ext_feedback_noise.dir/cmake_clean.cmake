file(REMOVE_RECURSE
  "CMakeFiles/ext_feedback_noise.dir/ext_feedback_noise.cc.o"
  "CMakeFiles/ext_feedback_noise.dir/ext_feedback_noise.cc.o.d"
  "ext_feedback_noise"
  "ext_feedback_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_feedback_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table_clip_stats.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table_clip_stats.dir/table_clip_stats.cc.o"
  "CMakeFiles/table_clip_stats.dir/table_clip_stats.cc.o.d"
  "table_clip_stats"
  "table_clip_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_clip_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

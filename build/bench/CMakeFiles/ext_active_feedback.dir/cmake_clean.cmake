file(REMOVE_RECURSE
  "CMakeFiles/ext_active_feedback.dir/ext_active_feedback.cc.o"
  "CMakeFiles/ext_active_feedback.dir/ext_active_feedback.cc.o.d"
  "ext_active_feedback"
  "ext_active_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_active_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

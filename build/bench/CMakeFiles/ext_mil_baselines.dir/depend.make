# Empty dependencies file for ext_mil_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_mil_baselines.dir/ext_mil_baselines.cc.o"
  "CMakeFiles/ext_mil_baselines.dir/ext_mil_baselines.cc.o.d"
  "ext_mil_baselines"
  "ext_mil_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mil_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

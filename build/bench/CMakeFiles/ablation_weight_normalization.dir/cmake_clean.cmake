file(REMOVE_RECURSE
  "CMakeFiles/ablation_weight_normalization.dir/ablation_weight_normalization.cc.o"
  "CMakeFiles/ablation_weight_normalization.dir/ablation_weight_normalization.cc.o.d"
  "ablation_weight_normalization"
  "ablation_weight_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weight_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_weight_normalization.
# This may be replaced when dependencies are built.

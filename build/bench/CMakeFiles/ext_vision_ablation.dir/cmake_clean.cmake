file(REMOVE_RECURSE
  "CMakeFiles/ext_vision_ablation.dir/ext_vision_ablation.cc.o"
  "CMakeFiles/ext_vision_ablation.dir/ext_vision_ablation.cc.o.d"
  "ext_vision_ablation"
  "ext_vision_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_vision_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ext_vision_ablation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/debug_rf_dynamics.dir/debug_rf_dynamics.cc.o"
  "CMakeFiles/debug_rf_dynamics.dir/debug_rf_dynamics.cc.o.d"
  "debug_rf_dynamics"
  "debug_rf_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_rf_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

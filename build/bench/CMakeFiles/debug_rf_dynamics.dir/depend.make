# Empty dependencies file for debug_rf_dynamics.
# This may be replaced when dependencies are built.

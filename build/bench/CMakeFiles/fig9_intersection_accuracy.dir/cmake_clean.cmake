file(REMOVE_RECURSE
  "CMakeFiles/fig9_intersection_accuracy.dir/fig9_intersection_accuracy.cc.o"
  "CMakeFiles/fig9_intersection_accuracy.dir/fig9_intersection_accuracy.cc.o.d"
  "fig9_intersection_accuracy"
  "fig9_intersection_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_intersection_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig9_intersection_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_z_sweep.dir/ablation_z_sweep.cc.o"
  "CMakeFiles/ablation_z_sweep.dir/ablation_z_sweep.cc.o.d"
  "ablation_z_sweep"
  "ablation_z_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_z_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

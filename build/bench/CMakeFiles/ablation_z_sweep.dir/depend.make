# Empty dependencies file for ablation_z_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_polyfit.dir/fig2_polyfit.cc.o"
  "CMakeFiles/fig2_polyfit.dir/fig2_polyfit.cc.o.d"
  "fig2_polyfit"
  "fig2_polyfit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_polyfit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig2_polyfit.
# This may be replaced when dependencies are built.

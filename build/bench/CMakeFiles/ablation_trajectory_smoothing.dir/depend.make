# Empty dependencies file for ablation_trajectory_smoothing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_trajectory_smoothing.dir/ablation_trajectory_smoothing.cc.o"
  "CMakeFiles/ablation_trajectory_smoothing.dir/ablation_trajectory_smoothing.cc.o.d"
  "ablation_trajectory_smoothing"
  "ablation_trajectory_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trajectory_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

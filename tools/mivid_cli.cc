// mivid command-line tool: manage a surveillance video database and run
// retrieval sessions from the terminal.
//
//   mivid_cli init <db>                       create an empty database
//   mivid_cli simulate <db> <tunnel|intersection> <camera-id> [frames]
//                                             simulate + ingest a clip
//   mivid_cli list <db>                       show catalog and cameras
//   mivid_cli query <db> <camera-id> [rounds] run an accident query with
//                                             oracle feedback (stored
//                                             incident annotations)
//   mivid_cli models <db>                     list saved query models

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "db/query_engine.h"
#include "db/video_db.h"
#include "eval/metrics.h"
#include "obs/export.h"
#include "trafficsim/scenarios.h"

using namespace mivid;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mivid_cli [--threads N] %s <command> ...\n"
               "  mivid_cli init <db>\n"
               "  mivid_cli simulate <db> <tunnel|intersection> <camera-id> "
               "[frames]\n"
               "  mivid_cli list <db>\n"
               "  mivid_cli query <db> <camera-id> [rounds]\n"
               "  mivid_cli models <db>\n",
               ObsFlagsHelp());
  return 2;
}

Result<std::unique_ptr<VideoDb>> OpenDb(const std::string& path,
                                        bool create) {
  VideoDbOptions options;
  options.create_if_missing = create;
  return VideoDb::Open(path, options);
}

int CmdInit(const std::string& path) {
  Result<std::unique_ptr<VideoDb>> db = OpenDb(path, true);
  if (!db.ok()) return Fail(db.status());
  std::printf("created database at %s\n", path.c_str());
  return 0;
}

int CmdSimulate(const std::string& path, const std::string& kind,
                const std::string& camera, int frames) {
  Result<std::unique_ptr<VideoDb>> db = OpenDb(path, true);
  if (!db.ok()) return Fail(db.status());

  ScenarioSpec scenario;
  if (kind == "tunnel") {
    TunnelScenarioOptions options;
    if (frames > 0) options.total_frames = frames;
    scenario = MakeTunnelScenario(options);
  } else if (kind == "intersection") {
    IntersectionScenarioOptions options;
    if (frames > 0) options.total_frames = frames;
    scenario = MakeIntersectionScenario(options);
  } else {
    return Usage();
  }

  TrafficWorld world(scenario);
  const GroundTruth gt = world.Run();
  ClipInfo info;
  info.camera_id = camera;
  info.location = scenario.name;
  info.total_frames = scenario.total_frames;
  info.scenario = scenario.name;
  Result<int> id = db.value()->IngestClip(info, gt.tracks, gt.incidents);
  if (!id.ok()) return Fail(id.status());
  std::printf("ingested clip %d: %s scenario, %d frames, %zu tracks, "
              "%zu incidents\n",
              id.value(), scenario.name.c_str(), scenario.total_frames,
              gt.tracks.size(), gt.incidents.size());
  return 0;
}

int CmdList(const std::string& path) {
  Result<std::unique_ptr<VideoDb>> db = OpenDb(path, false);
  if (!db.ok()) return Fail(db.status());
  std::printf("%zu clip(s):\n", db.value()->clip_count());
  for (const ClipInfo& info : db.value()->ListClips()) {
    std::printf("  clip %-3d camera=%-16s location=%-14s frames=%-6d "
                "scenario=%s\n",
                info.clip_id, info.camera_id.c_str(), info.location.c_str(),
                info.total_frames, info.scenario.c_str());
  }
  std::printf("cameras:\n");
  for (const std::string& cam : db.value()->Cameras()) {
    std::printf("  %s (%zu clips)\n", cam.c_str(),
                db.value()->ClipsForCamera(cam).size());
  }
  return 0;
}

int CmdQuery(const std::string& path, const std::string& camera, int rounds) {
  Result<std::unique_ptr<VideoDb>> db = OpenDb(path, false);
  if (!db.ok()) return Fail(db.status());

  QueryEngine engine(db.value().get());
  QueryOptions query;
  Result<CameraCorpus> corpus = engine.BuildCorpus(camera, query);
  if (!corpus.ok()) return Fail(corpus.status());
  Result<RetrievalSession> session = engine.StartSession(camera, query);
  if (!session.ok()) return Fail(session.status());

  size_t relevant = 0;
  for (const auto& [id, label] : corpus->truth) {
    (void)id;
    relevant += label == BagLabel::kRelevant ? 1 : 0;
  }
  std::printf("accident query on %s: %zu windows, %zu relevant\n",
              camera.c_str(), corpus->dataset.size(), relevant);

  for (int round = 0; round <= rounds; ++round) {
    const auto top = session->TopBags();
    const double acc = AccuracyAtN(top, corpus->truth, query.session.top_n);
    std::printf("round %d (%s): accuracy@%zu = %.0f%%  [", round,
                session->engine().trained() ? "one-class SVM" : "heuristic",
                query.session.top_n, 100 * acc);
    for (size_t i = 0; i < top.size() && i < 10; ++i) {
      const auto& ref = corpus->bag_refs.at(top[i]);
      std::printf("%sclip%d@%d%s", i ? " " : "", ref.clip_id,
                  ref.begin_frame,
                  corpus->truth.at(top[i]) == BagLabel::kRelevant ? "*" : "");
    }
    std::printf("%s]\n", top.size() > 10 ? " ..." : "");
    if (round == rounds) break;
    std::vector<std::pair<int, BagLabel>> feedback;
    for (int id : top) feedback.emplace_back(id, corpus->truth.at(id));
    const Status s = session->SubmitFeedback(feedback);
    if (!s.ok()) return Fail(s);
  }
  if (session->engine().model() != nullptr) {
    const std::string name = "accidents_" + camera;
    const Status s = db.value()->SaveModel(name, *session->engine().model());
    if (s.ok()) std::printf("saved query model '%s'\n", name.c_str());
  }
  return 0;
}

int CmdModels(const std::string& path) {
  Result<std::unique_ptr<VideoDb>> db = OpenDb(path, false);
  if (!db.ok()) return Fail(db.status());
  for (const std::string& name : db.value()->ListModels()) {
    Result<OneClassSvmModel> model = db.value()->LoadModel(name);
    if (model.ok()) {
      std::printf("  %-30s %zu support vectors, rho=%.4f\n", name.c_str(),
                  model->num_support_vectors(), model->rho());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Observability flags first: they enable collection before any work.
  Result<ObsOptions> obs = ExtractObsFlags(&argc, argv);
  if (!obs.ok()) {
    std::fprintf(stderr, "error: %s\n", obs.status().ToString().c_str());
    return Usage();
  }

  // Global flag: --threads N caps the worker pool (overrides the
  // MIVID_THREADS environment variable; 1 forces the serial path).
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int64_t v = 0;
      if (!ParseInt64(argv[i] + 10, &v) || v < 1) return Usage();
      SetGlobalThreadCount(static_cast<int>(v));
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      int64_t v = 0;
      if (i + 1 >= argc || !ParseInt64(argv[i + 1], &v) || v < 1) {
        return Usage();
      }
      SetGlobalThreadCount(static_cast<int>(v));
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string db_path = argv[2];

  // Dispatch, then flush the requested observability outputs regardless
  // of which command ran (but not on usage errors).
  int rc = -1;
  if (cmd == "init") {
    rc = CmdInit(db_path);
  } else if (cmd == "simulate" && argc >= 5) {
    int frames = 0;
    if (argc >= 6) {
      int64_t v = 0;
      if (!ParseInt64(argv[5], &v) || v <= 0) return Usage();
      frames = static_cast<int>(v);
    }
    rc = CmdSimulate(db_path, argv[3], argv[4], frames);
  } else if (cmd == "list") {
    rc = CmdList(db_path);
  } else if (cmd == "query" && argc >= 4) {
    int rounds = 3;
    if (argc >= 5) {
      int64_t v = 0;
      if (!ParseInt64(argv[4], &v)) return Usage();
      rounds = static_cast<int>(v);
    }
    rc = CmdQuery(db_path, argv[3], rounds);
  } else if (cmd == "models") {
    rc = CmdModels(db_path);
  } else {
    return Usage();
  }

  const Status obs_status = WriteObsOutputs(obs.value());
  if (!obs_status.ok()) {
    std::fprintf(stderr, "error: %s\n", obs_status.ToString().c_str());
    if (rc == 0) rc = 1;
  }
  return rc;
}

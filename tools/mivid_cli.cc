// mivid command-line tool: manage a surveillance video database, run
// retrieval sessions from the terminal, and host the mivid_serve daemon.
//
// Subcommands are table-driven (name, arg spec, help line, handler); run
// `mivid_cli help` for the list and `mivid_cli <command> --help` (or
// `mivid_cli help <command>`) for per-command details.

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/supervisor.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "db/query_engine.h"
#include "db/video_db.h"
#include "eval/metrics.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/trace_stitch.h"
#include "retrieval/engine_registry.h"
#include "retrieval/mil_rf_engine.h"
#include "serve/client.h"
#include "serve/server.h"
#include "trafficsim/scenarios.h"

using namespace mivid;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// ---------------------------------------------------------------------------
// Argument helpers: positional args plus --flag / --flag=value parsing
// over the per-subcommand argument vector.

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;  // name -> value
  bool help = false;

  const std::string* Flag(std::string_view name) const {
    for (const auto& [flag, value] : flags) {
      if (flag == name) return &value;
    }
    return nullptr;
  }

  bool FlagInt(std::string_view name, int64_t* out) const {
    const std::string* value = Flag(name);
    if (value == nullptr) return true;  // absent: keep default
    return ParseInt64(*value, out);
  }
};

/// Splits raw argv words into positionals and --flag[=value] pairs.
/// Flags listed in `value_flags` consume the next word when written
/// without '='.
Args ParseArgs(const std::vector<std::string>& words,
               const std::vector<std::string>& value_flags) {
  Args args;
  for (size_t i = 0; i < words.size(); ++i) {
    const std::string& w = words[i];
    if (w == "--help" || w == "-h") {
      args.help = true;
    } else if (StartsWith(w, "--")) {
      const size_t eq = w.find('=');
      if (eq != std::string::npos) {
        args.flags.emplace_back(w.substr(2, eq - 2), w.substr(eq + 1));
      } else {
        std::string name = w.substr(2);
        bool wants_value = false;
        for (const std::string& vf : value_flags) {
          if (vf == name) wants_value = true;
        }
        if (wants_value && i + 1 < words.size()) {
          args.flags.emplace_back(std::move(name), words[++i]);
        } else {
          args.flags.emplace_back(std::move(name), "");
        }
      }
    } else {
      args.positional.push_back(w);
    }
  }
  return args;
}

Result<std::unique_ptr<VideoDb>> OpenDb(const std::string& path, bool create) {
  VideoDbOptions options;
  options.create_if_missing = create;
  return VideoDb::Open(path, options);
}

// ---------------------------------------------------------------------------
// Subcommand table.

struct Subcommand {
  const char* name;
  const char* arg_spec;  ///< e.g. "<db> <camera-id> [rounds]"
  const char* help;      ///< one-line summary for the command list
  const char* details;   ///< extra lines for per-command --help ("" = none)
  int (*run)(const Args& args);
};

const Subcommand* FindSubcommand(std::string_view name);
const std::vector<Subcommand>& Subcommands();

int PrintCommandHelp(const Subcommand& cmd) {
  std::printf("usage: mivid_cli %s %s\n  %s\n", cmd.name, cmd.arg_spec,
              cmd.help);
  if (cmd.details[0] != '\0') std::printf("%s", cmd.details);
  return 0;
}

int Usage() {
  std::fprintf(stderr, "usage: mivid_cli [--threads N] %s <command> ...\n",
               ObsFlagsHelp());
  for (const Subcommand& cmd : Subcommands()) {
    std::fprintf(stderr, "  mivid_cli %-8s %s\n      %s\n", cmd.name,
                 cmd.arg_spec, cmd.help);
  }
  std::fprintf(stderr,
               "run 'mivid_cli <command> --help' for command details\n");
  return 2;
}

int BadArgs(const Subcommand& cmd) {
  std::fprintf(stderr, "usage: mivid_cli %s %s\n", cmd.name, cmd.arg_spec);
  return 2;
}

// ---------------------------------------------------------------------------
// Command implementations.

int CmdInit(const Args& args) {
  if (args.positional.size() != 1) return BadArgs(*FindSubcommand("init"));
  Result<std::unique_ptr<VideoDb>> db = OpenDb(args.positional[0], true);
  if (!db.ok()) return Fail(db.status());
  std::printf("created database at %s\n", args.positional[0].c_str());
  return 0;
}

int CmdSimulate(const Args& args) {
  if (args.positional.size() < 3 || args.positional.size() > 4) {
    return BadArgs(*FindSubcommand("simulate"));
  }
  const std::string& path = args.positional[0];
  const std::string& kind = args.positional[1];
  const std::string& camera = args.positional[2];
  int frames = 0;
  if (args.positional.size() == 4) {
    int64_t v = 0;
    if (!ParseInt64(args.positional[3], &v) || v <= 0) {
      return BadArgs(*FindSubcommand("simulate"));
    }
    frames = static_cast<int>(v);
  }

  Result<std::unique_ptr<VideoDb>> db = OpenDb(path, true);
  if (!db.ok()) return Fail(db.status());

  ScenarioSpec scenario;
  if (kind == "tunnel") {
    TunnelScenarioOptions options;
    if (frames > 0) options.total_frames = frames;
    scenario = MakeTunnelScenario(options);
  } else if (kind == "intersection") {
    IntersectionScenarioOptions options;
    if (frames > 0) options.total_frames = frames;
    scenario = MakeIntersectionScenario(options);
  } else {
    return BadArgs(*FindSubcommand("simulate"));
  }

  TrafficWorld world(scenario);
  const GroundTruth gt = world.Run();
  ClipInfo info;
  info.camera_id = camera;
  info.location = scenario.name;
  info.total_frames = scenario.total_frames;
  info.scenario = scenario.name;
  Result<int> id = db.value()->IngestClip(info, gt.tracks, gt.incidents);
  if (!id.ok()) return Fail(id.status());
  std::printf(
      "ingested clip %d: %s scenario, %d frames, %zu tracks, %zu incidents\n",
      id.value(), scenario.name.c_str(), scenario.total_frames,
      gt.tracks.size(), gt.incidents.size());
  return 0;
}

int CmdList(const Args& args) {
  if (args.positional.size() != 1) return BadArgs(*FindSubcommand("list"));
  Result<std::unique_ptr<VideoDb>> db = OpenDb(args.positional[0], false);
  if (!db.ok()) return Fail(db.status());
  std::printf("%zu clip(s):\n", db.value()->clip_count());
  for (const ClipInfo& info : db.value()->ListClips()) {
    std::printf(
        "  clip %-3d camera=%-16s location=%-14s frames=%-6d scenario=%s\n",
        info.clip_id, info.camera_id.c_str(), info.location.c_str(),
        info.total_frames, info.scenario.c_str());
  }
  std::printf("cameras:\n");
  for (const std::string& cam : db.value()->Cameras()) {
    std::printf("  %s (%zu clips)\n", cam.c_str(),
                db.value()->ClipsForCamera(cam).size());
  }
  return 0;
}

int CmdQuery(const Args& args) {
  if (args.positional.size() < 2 || args.positional.size() > 3) {
    return BadArgs(*FindSubcommand("query"));
  }
  const std::string& path = args.positional[0];
  const std::string& camera = args.positional[1];
  int rounds = 3;
  if (args.positional.size() == 3) {
    int64_t v = 0;
    if (!ParseInt64(args.positional[2], &v)) {
      return BadArgs(*FindSubcommand("query"));
    }
    rounds = static_cast<int>(v);
  }

  Result<std::unique_ptr<VideoDb>> db = OpenDb(path, false);
  if (!db.ok()) return Fail(db.status());

  QueryOptions query;
  if (const std::string* engine_name = args.Flag("engine")) {
    if (!EngineRegistered(*engine_name)) {
      return Fail(Status::InvalidArgument(
          "unknown engine '" + *engine_name + "' (registered: " +
          Join(RegisteredEngineNames(), ", ") + ")"));
    }
    query.session.engine = *engine_name;
  }

  QueryEngine engine(db.value().get());
  Result<CameraCorpus> corpus = engine.BuildCorpus(camera, query);
  if (!corpus.ok()) return Fail(corpus.status());
  Result<RetrievalSession> session =
      RetrievalSession::Create(corpus->dataset, SessionOptionsFor(query));
  if (!session.ok()) return Fail(session.status());

  size_t relevant = 0;
  for (const auto& [id, label] : corpus->truth) {
    (void)id;
    relevant += label == BagLabel::kRelevant ? 1 : 0;
  }
  std::printf("accident query on %s (engine=%s): %zu windows, %zu relevant\n",
              camera.c_str(), std::string(session->engine().name()).c_str(),
              corpus->dataset.size(), relevant);

  const std::string engine_label(session->engine().name());
  for (int round = 0; round <= rounds; ++round) {
    const auto top = session->TopBags();
    const double acc = AccuracyAtN(top, corpus->truth, query.session.top_n);
    std::printf("round %d (%s): accuracy@%zu = %.0f%%  [", round,
                session->engine().trained() ? engine_label.c_str()
                                            : "heuristic",
                query.session.top_n, 100 * acc);
    for (size_t i = 0; i < top.size() && i < 10; ++i) {
      const auto& ref = corpus->bag_refs.at(top[i]);
      std::printf("%sclip%d@%d%s", i ? " " : "", ref.clip_id, ref.begin_frame,
                  corpus->truth.at(top[i]) == BagLabel::kRelevant ? "*" : "");
    }
    std::printf("%s]\n", top.size() > 10 ? " ..." : "");
    if (round == rounds) break;
    std::vector<std::pair<int, BagLabel>> feedback;
    for (int id : top) feedback.emplace_back(id, corpus->truth.at(id));
    const Status s = session->SubmitFeedback(feedback);
    if (!s.ok()) return Fail(s);
  }

  // Only the paper's one-class-SVM engine produces a reusable query model.
  const auto* milrf =
      dynamic_cast<const MilRfEngine*>(&session->engine());
  if (milrf != nullptr && milrf->model() != nullptr) {
    const std::string name = "accidents_" + camera;
    const Status s = db.value()->SaveModel(name, *milrf->model());
    if (s.ok()) std::printf("saved query model '%s'\n", name.c_str());
  }
  return 0;
}

int CmdModels(const Args& args) {
  if (args.positional.size() != 1) return BadArgs(*FindSubcommand("models"));
  Result<std::unique_ptr<VideoDb>> db = OpenDb(args.positional[0], false);
  if (!db.ok()) return Fail(db.status());
  for (const std::string& name : db.value()->ListModels()) {
    Result<OneClassSvmModel> model = db.value()->LoadModel(name);
    if (model.ok()) {
      std::printf("  %-30s %zu support vectors, rho=%.4f\n", name.c_str(),
                  model->num_support_vectors(), model->rho());
    }
  }
  return 0;
}

int CmdEngines(const Args&) {
  for (const EngineRegistryEntry& entry : EngineRegistry()) {
    std::printf("  %-10s %s\n", entry.name, entry.description);
  }
  return 0;
}

int CmdSessions(const Args& args) {
  if (args.positional.size() != 1) return BadArgs(*FindSubcommand("sessions"));
  Result<std::unique_ptr<VideoDb>> db = OpenDb(args.positional[0], false);
  if (!db.ok()) return Fail(db.status());
  for (const std::string& name : db.value()->ListSessions()) {
    Result<SessionState> state = db.value()->LoadSession(name);
    if (state.ok()) {
      std::printf("  %-24s camera=%-16s engine=%-8s round=%d labels=%zu\n",
                  name.c_str(), state->camera_id.c_str(),
                  state->engine.c_str(), state->round, state->labels.size());
    } else {
      std::printf("  %-24s (unreadable: %s)\n", name.c_str(),
                  state.status().ToString().c_str());
    }
  }
  return 0;
}

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int) { g_signal = 1; }

/// "none" as a socket-path positional disables the Unix-domain listener
/// (TCP-only daemon).
std::string SocketPathArg(const std::string& arg) {
  return arg == "none" ? std::string() : arg;
}

// ---------------------------------------------------------------------------
// stream: replay a simulated scenario into a live daemon's ingest API.

/// Serializes one `ingest` request line. %.17g keeps every coordinate's
/// JSON round-trip bit-exact, so a streamed corpus matches a batch
/// rebuild bitwise (docs/ingest.md).
std::string IngestRequestLine(const std::string& camera,
                              const std::vector<FrameObservations>& frames,
                              const std::vector<IncidentRecord>& incidents,
                              bool cut, bool publish) {
  std::string line = "{\"cmd\":\"ingest\",\"v\":\"" +
                     std::string(kProtocolVersion) + "\",\"camera\":\"" +
                     JsonEscape(camera) + "\",\"frames\":[";
  for (size_t f = 0; f < frames.size(); ++f) {
    if (f > 0) line += ',';
    line += "{\"frame\":" + std::to_string(frames[f].frame) + ",\"obs\":[";
    for (size_t o = 0; o < frames[f].observations.size(); ++o) {
      const TrackObservation& obs = frames[f].observations[o];
      if (o > 0) line += ',';
      line += StrFormat(
          "{\"track\":%d,\"x\":%.17g,\"y\":%.17g,"
          "\"bbox\":[%.17g,%.17g,%.17g,%.17g]}",
          obs.track_id, obs.centroid.x, obs.centroid.y, obs.bbox.min_x,
          obs.bbox.min_y, obs.bbox.max_x, obs.bbox.max_y);
    }
    line += "]}";
  }
  line += "],\"incidents\":[";
  for (size_t i = 0; i < incidents.size(); ++i) {
    if (i > 0) line += ',';
    line += StrFormat(
        "{\"type\":\"%s\",\"begin\":%d,\"end\":%d,\"vehicles\":[",
        IncidentTypeName(incidents[i].type), incidents[i].begin_frame,
        incidents[i].end_frame);
    for (size_t v = 0; v < incidents[i].vehicle_ids.size(); ++v) {
      if (v > 0) line += ',';
      line += std::to_string(incidents[i].vehicle_ids[v]);
    }
    line += "]}";
  }
  line += "],\"cut\":";
  line += cut ? "true" : "false";
  line += ",\"publish\":";
  line += publish ? "true" : "false";
  line += "}";
  return line;
}

int CmdStream(const Args& args) {
  if (args.positional.size() != 2) return BadArgs(*FindSubcommand("stream"));
  const std::string& endpoint = args.positional[0];
  const std::string& camera = args.positional[1];

  std::string scenario = "tunnel";
  if (const std::string* s = args.Flag("scenario")) scenario = *s;
  if (scenario != "tunnel" && scenario != "intersection") {
    return BadArgs(*FindSubcommand("stream"));
  }
  int64_t clips = 1, frames = 600, batch = 50, seed = 2026;
  int64_t frame_offset = 0;
  if (!args.FlagInt("clips", &clips) || clips < 1 ||
      !args.FlagInt("frames", &frames) || frames < 1 ||
      !args.FlagInt("batch", &batch) || batch < 1 ||
      !args.FlagInt("seed", &seed) ||
      !args.FlagInt("frame-offset", &frame_offset) || frame_offset < 0) {
    return BadArgs(*FindSubcommand("stream"));
  }
  const bool publish = args.Flag("no-publish") == nullptr;

  Result<ServeClient> client = ServeClient::Connect(endpoint);
  if (!client.ok()) return Fail(client.status());

  // Stream frames must ascend across the camera's whole lifetime, so a
  // follow-up invocation against the same camera needs --frame-offset
  // set past the frames already ingested.
  int offset = static_cast<int>(frame_offset);
  for (int64_t c = 0; c < clips; ++c) {
    // One simulated clip per iteration, seeds varied so clips differ.
    ScenarioSpec spec;
    if (scenario == "tunnel") {
      TunnelScenarioOptions options;
      options.total_frames = static_cast<int>(frames);
      options.seed = static_cast<uint64_t>(seed) + c;
      spec = MakeTunnelScenario(options);
    } else {
      IntersectionScenarioOptions options;
      options.total_frames = static_cast<int>(frames);
      options.seed = static_cast<uint64_t>(seed) + c;
      spec = MakeIntersectionScenario(options);
    }
    TrafficWorld world(spec);
    const GroundTruth gt = world.Run();

    // Per-frame observation replay, shifted into absolute stream frames.
    std::vector<FrameObservations> stream(gt.total_frames);
    for (int f = 0; f < gt.total_frames; ++f) stream[f].frame = offset + f;
    for (const Track& track : gt.tracks) {
      for (const TrackPoint& point : track.points) {
        if (point.frame < 0 || point.frame >= gt.total_frames) continue;
        TrackObservation obs;
        obs.track_id = track.id;
        obs.centroid = point.centroid;
        obs.bbox = point.bbox;
        stream[point.frame].observations.push_back(obs);
      }
    }
    std::vector<IncidentRecord> incidents = gt.incidents;
    for (IncidentRecord& incident : incidents) {
      incident.begin_frame += offset;
      incident.end_frame += offset;
    }

    // Ship the clip in frame batches; incidents + cut ride the last one.
    for (size_t begin = 0; begin < stream.size();
         begin += static_cast<size_t>(batch)) {
      const size_t end =
          std::min(stream.size(), begin + static_cast<size_t>(batch));
      const bool last = end == stream.size();
      const std::vector<FrameObservations> chunk(stream.begin() + begin,
                                                 stream.begin() + end);
      const std::string request = IngestRequestLine(
          camera, chunk, last ? incidents : std::vector<IncidentRecord>{},
          /*cut=*/last, /*publish=*/last && publish);
      Result<std::string> response = client.value().Call(request);
      if (!response.ok()) return Fail(response.status());
      Result<JsonValue> doc = ParseJson(response.value());
      if (!doc.ok()) return Fail(doc.status());
      const JsonValue* ok = doc.value().Find("ok");
      if (ok == nullptr || ok->type != JsonValue::Type::kBool ||
          !ok->bool_value) {
        std::fprintf(stderr, "error: %s\n", response.value().c_str());
        return 1;
      }
      if (last) std::printf("%s\n", response.value().c_str());
    }
    offset += gt.total_frames;
  }
  std::fflush(stdout);
  return 0;
}

int CmdServe(const Args& args) {
  if (args.positional.size() != 2) return BadArgs(*FindSubcommand("serve"));
  Result<std::unique_ptr<VideoDb>> db = OpenDb(args.positional[0], false);
  if (!db.ok()) return Fail(db.status());

  ServeOptions options;
  options.socket_path = SocketPathArg(args.positional[1]);
  if (const std::string* engine_name = args.Flag("engine")) {
    if (!EngineRegistered(*engine_name)) {
      return Fail(Status::InvalidArgument(
          "unknown engine '" + *engine_name + "' (registered: " +
          Join(RegisteredEngineNames(), ", ") + ")"));
    }
    options.default_engine = *engine_name;
  }
  int64_t v = 0;
  if (!args.FlagInt("max-pending", &v)) return BadArgs(*FindSubcommand("serve"));
  if (v > 0) options.max_pending = static_cast<size_t>(v);
  v = 0;
  if (!args.FlagInt("max-sessions", &v)) {
    return BadArgs(*FindSubcommand("serve"));
  }
  if (v > 0) options.max_sessions = static_cast<size_t>(v);
  v = 0;
  if (!args.FlagInt("idle-timeout-ms", &v)) {
    return BadArgs(*FindSubcommand("serve"));
  }
  if (v > 0) options.idle_timeout_ms = v;
  v = 0;
  if (!args.FlagInt("top", &v)) return BadArgs(*FindSubcommand("serve"));
  if (v > 0) options.top_n = static_cast<size_t>(v);
  if (const std::string* dir = args.Flag("snapshot-dir")) {
    options.corpus_snapshot_dir = *dir;
  }
  // --tcp-port admits 0 (kernel-assigned), so presence matters, not sign.
  if (args.Flag("tcp-port") != nullptr) {
    v = -1;
    if (!args.FlagInt("tcp-port", &v) || v < 0) {
      return BadArgs(*FindSubcommand("serve"));
    }
    options.tcp_port = static_cast<int>(v);
  }
  if (const std::string* host = args.Flag("tcp-host")) {
    options.tcp_host = *host;
  }
  if (const std::string* id = args.Flag("worker-id")) {
    options.worker_id = *id;
  }
  if (const std::string* path = args.Flag("access-log")) {
    options.access_log_path = *path;
  }
  if (const std::string* path = args.Flag("slow-log")) {
    options.slow_log_path = *path;
  }
  if (args.Flag("slow-ms") != nullptr) {
    v = -1;
    if (!args.FlagInt("slow-ms", &v) || v < 0) {
      return BadArgs(*FindSubcommand("serve"));
    }
    options.slow_threshold_ms = static_cast<double>(v);
  }

  // Fail fast on inconsistent options before any socket is bound.
  const Status valid = ValidateServeOptions(options);
  if (!valid.ok()) return Fail(valid);

  // Tag this process's log lines and trace export with its fleet role.
  SetLogIdentity(options.worker_id.empty() ? "serve" : options.worker_id);

  RetrievalServer server(db.value().get(), options);
  const Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::printf("mivid_serve on %s (engine=%s, max_pending=%zu, "
              "max_sessions=%zu)\n",
              options.socket_path.empty() ? "(no socket)"
                                          : options.socket_path.c_str(),
              options.default_engine.c_str(), options.max_pending,
              options.max_sessions);
  if (server.tcp_port() >= 0) {
    // The resolved port line is what scripts grep when they ask for an
    // ephemeral port with --tcp-port=0.
    std::printf("mivid_serve tcp_port=%d\n", server.tcp_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0 && !server.WaitForShutdownFor(200)) {
  }
  std::printf("mivid_serve: shutting down (%s)\n",
              g_signal != 0 ? "signal" : "shutdown command");
  server.Stop();
  return 0;
}

int CmdCoord(const Args& args) {
  if (args.positional.size() != 1) return BadArgs(*FindSubcommand("coord"));

  CoordinatorOptions options;
  options.socket_path = SocketPathArg(args.positional[0]);
  const std::string* workers = args.Flag("workers");
  int64_t spawn_workers = 0;
  if (!args.FlagInt("spawn-workers", &spawn_workers) || spawn_workers < 0) {
    return BadArgs(*FindSubcommand("coord"));
  }
  // Worker endpoints come from --workers, from the supervisor
  // (--spawn-workers), or both.
  if (workers == nullptr && spawn_workers == 0) {
    return BadArgs(*FindSubcommand("coord"));
  }
  if (workers != nullptr) {
    for (const std::string& endpoint : Split(*workers, ',')) {
      if (!endpoint.empty()) options.workers.push_back(endpoint);
    }
  }
  int64_t v = 0;
  if (!args.FlagInt("top", &v)) return BadArgs(*FindSubcommand("coord"));
  if (v > 0) options.top_n = static_cast<int>(v);
  if (args.Flag("tcp-port") != nullptr) {
    v = -1;
    if (!args.FlagInt("tcp-port", &v) || v < 0) {
      return BadArgs(*FindSubcommand("coord"));
    }
    options.tcp_port = static_cast<int>(v);
  }
  if (const std::string* host = args.Flag("tcp-host")) {
    options.tcp_host = *host;
  }
  v = 0;
  if (!args.FlagInt("heartbeat-ms", &v)) return BadArgs(*FindSubcommand("coord"));
  if (v > 0) options.heartbeat_ms = static_cast<int>(v);
  v = 0;
  if (!args.FlagInt("vnodes", &v)) return BadArgs(*FindSubcommand("coord"));
  if (v > 0) options.virtual_nodes = static_cast<size_t>(v);
  if (const std::string* path = args.Flag("access-log")) {
    options.access_log_path = *path;
  }
  if (const std::string* path = args.Flag("slow-log")) {
    options.slow_log_path = *path;
  }
  if (args.Flag("slow-ms") != nullptr) {
    v = -1;
    if (!args.FlagInt("slow-ms", &v) || v < 0) {
      return BadArgs(*FindSubcommand("coord"));
    }
    options.slow_threshold_ms = static_cast<double>(v);
  }
  if (args.Flag("rpc-deadline-ms") != nullptr) {
    v = -1;
    if (!args.FlagInt("rpc-deadline-ms", &v) || v < 0) {
      return BadArgs(*FindSubcommand("coord"));
    }
    options.rpc_deadline_ms = static_cast<int>(v);
  }
  v = 0;
  if (!args.FlagInt("replication", &v) || v < 0) {
    return BadArgs(*FindSubcommand("coord"));
  }
  if (v > 0) options.replication = static_cast<int>(v);

  SetLogIdentity("coord");

  // --spawn-workers=N: this process owns its workers. They are spawned
  // before the coordinator dials (their endpoints join the fleet), and
  // the serving loop doubles as the supervision loop.
  std::unique_ptr<WorkerSupervisor> supervisor;
  if (spawn_workers > 0) {
    const std::string* db = args.Flag("db");
    if (db == nullptr) {
      std::fprintf(stderr,
                   "error: --spawn-workers needs --db=<database>\n");
      return BadArgs(*FindSubcommand("coord"));
    }
    SupervisorOptions sup;
    char exe[4096];
    const ssize_t n = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n <= 0) {
      return Fail(Status::IOError("cannot resolve own binary path"));
    }
    exe[n] = '\0';
    sup.cli_path = exe;
    sup.db_path = *db;
    sup.count = static_cast<int>(spawn_workers);
    if (const std::string* dir = args.Flag("worker-log-dir")) {
      sup.log_dir = *dir;
    }
    supervisor = std::make_unique<WorkerSupervisor>(std::move(sup));
    const Status spawned = supervisor->SpawnAll();
    if (!spawned.ok()) return Fail(spawned);
    for (std::string& endpoint : supervisor->endpoints()) {
      options.workers.push_back(std::move(endpoint));
    }
    // Supervised restarts only rejoin the ring through the heartbeat, so
    // force one on if the user did not configure it.
    if (options.heartbeat_ms == 0) options.heartbeat_ms = 500;
  }

  const Status valid = ValidateCoordinatorOptions(options);
  if (!valid.ok()) return Fail(valid);

  Coordinator coord(options);
  const Status started = coord.Start();
  if (!started.ok()) return Fail(started);
  std::printf("mivid_coord on %s fronting %zu worker(s)\n",
              options.socket_path.empty() ? "(no socket)"
                                          : options.socket_path.c_str(),
              options.workers.size());
  if (coord.tcp_port() >= 0) {
    std::printf("mivid_coord tcp_port=%d\n", coord.tcp_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0 && !coord.WaitForShutdownFor(200)) {
    if (supervisor != nullptr) supervisor->Sweep();
  }
  std::printf("mivid_coord: shutting down (%s)\n",
              g_signal != 0 ? "signal" : "shutdown command");
  coord.Stop();
  if (supervisor != nullptr) supervisor->StopAll();
  return 0;
}

// ---------------------------------------------------------------------------
// Fleet dashboard (top) and trace stitching (trace-merge).

/// Descends `path` of object keys from `v`; nullptr when any hop is
/// missing or not an object.
const JsonValue* JsonDescend(const JsonValue* v,
                             std::initializer_list<const char*> path) {
  for (const char* key : path) {
    if (v == nullptr) return nullptr;
    v = v->Find(key);
  }
  return v;
}

double JsonNumberOr(const JsonValue* v, double fallback) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

int CmdTop(const Args& args) {
  if (args.positional.size() != 1) return BadArgs(*FindSubcommand("top"));
  int64_t interval_ms = 2000;
  int64_t iterations = 0;
  if (!args.FlagInt("interval-ms", &interval_ms) || interval_ms <= 0) {
    return BadArgs(*FindSubcommand("top"));
  }
  if (!args.FlagInt("iterations", &iterations) || iterations < 0) {
    return BadArgs(*FindSubcommand("top"));
  }

  Result<ServeClient> client = ServeClient::Connect(args.positional[0]);
  if (!client.ok()) return Fail(client.status());

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  const bool tty = isatty(1) != 0;
  // Previous poll's lifetime request counters, for interval QPS.
  std::map<std::string, double> last_requests;
  auto last_poll = std::chrono::steady_clock::now();

  for (int64_t iter = 0; iterations == 0 || iter < iterations; ++iter) {
    if (iter > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      if (g_signal != 0) break;
    }
    Result<JsonValue> doc =
        client.value().CallJson("{\"cmd\":\"cluster_stats\"}");
    if (!doc.ok()) return Fail(doc.status());
    const JsonValue* ok = doc.value().Find("ok");
    if (ok == nullptr || ok->type != JsonValue::Type::kBool ||
        !ok->bool_value) {
      const JsonValue* error = doc.value().Find("error");
      return Fail(Status::Internal(
          "cluster_stats failed: " +
          (error != nullptr && error->is_string() ? error->string
                                                  : std::string("?"))));
    }
    const auto now = std::chrono::steady_clock::now();
    const double elapsed_s =
        std::chrono::duration<double>(now - last_poll).count();
    last_poll = now;

    if (tty && iter > 0) std::printf("\033[H\033[J");
    const JsonValue* fleet_hist = JsonDescend(
        &doc.value(), {"fleet", "histograms", "serve/request_seconds"});
    std::printf(
        "mivid top  workers_alive=%.0f  fleet p50=%.1fms p99=%.1fms\n",
        JsonNumberOr(doc.value().Find("workers_alive"), 0),
        1000 * JsonNumberOr(JsonDescend(fleet_hist, {"p50"}), 0),
        1000 * JsonNumberOr(JsonDescend(fleet_hist, {"p99"}), 0));
    std::printf("%-14s %-6s %8s %8s %8s %6s %7s %6s\n", "WORKER", "ALIVE",
                "QPS", "P50MS", "P99MS", "SESS", "CACHE%", "SNAP");

    const JsonValue* workers = doc.value().Find("workers");
    if (workers != nullptr && workers->is_array()) {
      for (const JsonValue& worker : workers->array) {
        const JsonValue* id = worker.Find("worker_id");
        const JsonValue* endpoint = worker.Find("endpoint");
        const std::string name =
            id != nullptr && id->is_string() && !id->string.empty()
                ? id->string
            : endpoint != nullptr && endpoint->is_string()
                ? endpoint->string
                : "?";
        const JsonValue* alive = worker.Find("alive");
        const bool is_alive = alive != nullptr &&
                              alive->type == JsonValue::Type::kBool &&
                              alive->bool_value;
        if (!is_alive) {
          std::printf("%-14s %-6s\n", name.c_str(), "no");
          continue;
        }
        const double requests = JsonNumberOr(
            JsonDescend(&worker, {"metrics", "counters", "serve/requests"}),
            0);
        double qps = 0;
        if (auto it = last_requests.find(name);
            it != last_requests.end() && elapsed_s > 0) {
          qps = (requests - it->second) / elapsed_s;
          if (qps < 0) qps = 0;  // worker restarted between polls
        }
        last_requests[name] = requests;
        const JsonValue* hist = JsonDescend(
            &worker, {"metrics", "histograms", "serve/request_seconds"});
        const double hits = JsonNumberOr(
            JsonDescend(&worker,
                        {"metrics", "counters", "serve/corpus_cache_hits"}),
            0);
        const double misses = JsonNumberOr(
            JsonDescend(&worker,
                        {"metrics", "counters", "serve/corpus_cache_misses"}),
            0);
        const double lookups = hits + misses;
        std::printf(
            "%-14s %-6s %8.1f %8.1f %8.1f %6.0f %7.1f %6.0f\n", name.c_str(),
            "yes", qps, 1000 * JsonNumberOr(JsonDescend(hist, {"p50"}), 0),
            1000 * JsonNumberOr(JsonDescend(hist, {"p99"}), 0),
            JsonNumberOr(worker.Find("sessions_open"), 0),
            lookups > 0 ? 100 * hits / lookups : 0,
            JsonNumberOr(
                JsonDescend(&worker, {"metrics", "counters",
                                      "serve/corpus_snapshot_hits"}),
                0));
      }
    }
    // Robustness counters live in the coordinator's own registry (a
    // single worker's cluster_stats has no "coordinator" member).
    if (const JsonValue* coord = doc.value().Find("coordinator");
        coord != nullptr && coord->is_object()) {
      std::printf(
          "coord: deadline_misses=%.0f hedged_ranks=%.0f degraded=%.0f "
          "worker_restarts=%.0f failovers=%.0f\n",
          JsonNumberOr(JsonDescend(coord, {"counters",
                                           "cluster/deadline_misses"}),
                       0),
          JsonNumberOr(
              JsonDescend(coord, {"counters", "cluster/hedged_ranks"}), 0),
          JsonNumberOr(JsonDescend(coord, {"counters",
                                           "cluster/degraded_responses"}),
                       0),
          JsonNumberOr(JsonDescend(coord, {"counters",
                                           "cluster/worker_restarts"}),
                       0),
          JsonNumberOr(JsonDescend(coord, {"counters",
                                           "cluster/sessions_failed_over"}),
                       0));
    }
    std::fflush(stdout);
  }
  return 0;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string data;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    data.append(buffer, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read of " + path + " failed");
  return data;
}

int CmdTraceMerge(const Args& args) {
  if (args.positional.size() < 2) {
    return BadArgs(*FindSubcommand("trace-merge"));
  }
  const std::string& out_path = args.positional[0];
  std::vector<ProcessTrace> inputs;
  inputs.reserve(args.positional.size() - 1);
  for (size_t i = 1; i < args.positional.size(); ++i) {
    const std::string& path = args.positional[i];
    Result<std::string> data = ReadWholeFile(path);
    if (!data.ok()) return Fail(data.status());
    Result<JsonValue> doc = ParseJson(data.value());
    if (!doc.ok()) {
      return Fail(Status::Corruption(path + ": " +
                                     doc.status().message()));
    }
    ProcessTrace input;
    // Label falls back to the file name (sans directory and .json); the
    // trace's own clock_sync process name wins when present.
    const size_t slash = path.find_last_of('/');
    input.label =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (input.label.size() > 5 &&
        input.label.compare(input.label.size() - 5, 5, ".json") == 0) {
      input.label.resize(input.label.size() - 5);
    }
    input.doc = std::move(doc).value();
    inputs.push_back(std::move(input));
  }
  Result<std::string> stitched = StitchChromeTraces(inputs);
  if (!stitched.ok()) return Fail(stitched.status());
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    return Fail(Status::IOError("cannot open " + out_path));
  }
  const size_t written =
      std::fwrite(stitched.value().data(), 1, stitched.value().size(), f);
  std::fclose(f);
  if (written != stitched.value().size()) {
    return Fail(Status::IOError("write of " + out_path + " failed"));
  }
  std::printf("stitched %zu trace(s) into %s\n", inputs.size(),
              out_path.c_str());
  return 0;
}

const std::vector<Subcommand>& Subcommands() {
  static const std::vector<Subcommand> kCommands = {
      {"init", "<db>", "create an empty database", "", CmdInit},
      {"simulate", "<db> <tunnel|intersection> <camera-id> [frames]",
       "simulate a traffic scenario and ingest it as a clip",
       "  tunnel        straight road, stalled-vehicle incidents\n"
       "  intersection  crossing roads, accident incidents\n",
       CmdSimulate},
      {"list", "<db>", "show catalog and cameras", "", CmdList},
      {"query", "<db> <camera-id> [rounds] [--engine=<name>]",
       "run an accident query with oracle feedback",
       "  --engine=<name>  retrieval engine for the session\n"
       "                   (see 'mivid_cli engines'; default milrf)\n",
       CmdQuery},
      {"models", "<db>", "list saved query models", "", CmdModels},
      {"sessions", "<db>", "list journaled retrieval sessions", "",
       CmdSessions},
      {"engines", "", "list registered retrieval engines", "", CmdEngines},
      {"serve", "<db> <socket-path|none> [flags]",
       "host the retrieval daemon (worker) on a Unix socket and/or TCP",
       "  --engine=<name>       default engine for new sessions (milrf)\n"
       "  --max-pending=N       in-flight request bound before\n"
       "                        RESOURCE_EXHAUSTED backpressure (64)\n"
       "  --max-sessions=N      live session bound (64)\n"
       "  --idle-timeout-ms=N   journal + evict idle sessions (off)\n"
       "  --top=N               results per round (20)\n"
       "  --snapshot-dir=<dir>  cache packed corpus snapshots here for\n"
       "                        zero-copy mmap loads on later starts\n"
       "  --tcp-port=N          also listen on TCP (0 = kernel-assigned;\n"
       "                        the bound port is printed at startup)\n"
       "  --tcp-host=<addr>     TCP bind address (127.0.0.1)\n"
       "  --worker-id=<id>      fleet identity reported by ping/stats\n"
       "  --access-log=<file>   per-request JSON-lines access log\n"
       "  --slow-log=<file>     requests over the slow threshold\n"
       "  --slow-ms=N           slow threshold in ms (default\n"
       "                        MIVID_SLOW_QUERY_MS or 500)\n"
       "  stops on SIGINT/SIGTERM or a {\"cmd\":\"shutdown\"} request;\n"
       "  sessions are journaled to the database either way\n",
       CmdServe},
      {"stream", "<endpoint> <camera-id> [flags]",
       "replay a simulated scenario into a live daemon's ingest API",
       "  --scenario=<name>  tunnel or intersection (tunnel)\n"
       "  --clips=N          clips to stream, cut after each (1)\n"
       "  --frames=N         frames per clip (600)\n"
       "  --batch=N          frames per ingest request (50)\n"
       "  --seed=N           simulation seed, +1 per clip (2026)\n"
       "  --frame-offset=N   first absolute stream frame (0); set past\n"
       "                     frames already ingested when re-invoking\n"
       "                     against the same camera\n"
       "  --no-publish       stage cut clips without publishing a new\n"
       "                     corpus epoch (publish by default)\n"
       "  streams per-frame track observations as ingest requests, so\n"
       "  the camera becomes searchable while 'video' is still arriving;\n"
       "  each clip's incidents are annotated on its final request\n",
       CmdStream},
      {"coord", "<socket-path|none> --workers=<ep,ep,...> [flags]",
       "front a worker fleet with the cluster coordinator",
       "  --workers=<eps>       comma-separated worker endpoints\n"
       "                        (host:port or socket paths); required\n"
       "                        unless --spawn-workers is given\n"
       "  --spawn-workers=N     fork/exec N supervised workers on\n"
       "                        ephemeral ports (needs --db); crashed\n"
       "                        workers restart with capped backoff\n"
       "  --db=<database>       database the spawned workers serve\n"
       "  --worker-log-dir=<d>  spawned workers' stdout/stderr logs (.)\n"
       "  --top=N               default rank depth (20)\n"
       "  --tcp-port=N          also listen on TCP (0 = kernel-assigned)\n"
       "  --tcp-host=<addr>     TCP bind address (127.0.0.1)\n"
       "  --heartbeat-ms=N      probe workers every N ms and re-admit\n"
       "                        restarted ones (off: lazy failover only;\n"
       "                        forced to 500 under --spawn-workers)\n"
       "  --vnodes=N            placement-ring points per worker (64)\n"
       "  --rpc-deadline-ms=N   per-hop worker call budget; a worker\n"
       "                        that misses it is failed over like a\n"
       "                        dead one (30000; 0 = unbounded)\n"
       "  --replication=R       open each camera's session on R distinct\n"
       "                        workers; rank is served by the fastest\n"
       "                        live replica with hedged retry (1)\n"
       "  --access-log=<file>   per-request JSON-lines access log\n"
       "  --slow-log=<file>     requests over the slow threshold\n"
       "  --slow-ms=N           slow threshold in ms (default\n"
       "                        MIVID_SLOW_QUERY_MS or 500)\n"
       "  speaks the same protocol as serve; single-camera sessions are\n"
       "  passthrough, open with \"cameras\":[...] scatter-gathers rank\n",
       CmdCoord},
      {"top", "<endpoint> [--interval-ms=N] [--iterations=N]",
       "live fleet dashboard polling cluster_stats",
       "  polls {\"cmd\":\"cluster_stats\"} on a coordinator (or a single\n"
       "  worker, which answers as a fleet of one) and renders per-worker\n"
       "  QPS over the poll interval, lifetime p50/p99 request latency,\n"
       "  open sessions, corpus cache hit rate, and snapshot hits.\n"
       "  --interval-ms=N   poll interval (2000)\n"
       "  --iterations=N    stop after N polls (0 = until SIGINT)\n",
       CmdTop},
      {"trace-merge", "<out.json> <in.json> [in.json ...]",
       "stitch per-process Chrome traces into one cluster timeline",
       "  each input is one process's --trace export; events are rebased\n"
       "  onto a shared wall-clock timeline using the embedded clock_sync\n"
       "  metadata and re-emitted under per-process pids. Open the output\n"
       "  in Perfetto / chrome://tracing.\n",
       CmdTraceMerge},
  };
  return kCommands;
}

const Subcommand* FindSubcommand(std::string_view name) {
  for (const Subcommand& cmd : Subcommands()) {
    if (name == cmd.name) return &cmd;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  // Observability flags first: they enable collection before any work.
  Result<ObsOptions> obs = ExtractObsFlags(&argc, argv);
  if (!obs.ok()) {
    std::fprintf(stderr, "error: %s\n", obs.status().ToString().c_str());
    return Usage();
  }

  // Global flag: --threads N caps the worker pool (overrides the
  // MIVID_THREADS environment variable; 1 forces the serial path).
  std::vector<std::string> words;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int64_t v = 0;
      if (!ParseInt64(argv[i] + 10, &v) || v < 1) return Usage();
      SetGlobalThreadCount(static_cast<int>(v));
      continue;
    }
    if (std::strcmp(argv[i], "--threads") == 0) {
      int64_t v = 0;
      if (i + 1 >= argc || !ParseInt64(argv[i + 1], &v) || v < 1) {
        return Usage();
      }
      SetGlobalThreadCount(static_cast<int>(v));
      ++i;
      continue;
    }
    words.emplace_back(argv[i]);
  }

  if (words.empty()) return Usage();
  if (words[0] == "help" || words[0] == "--help" || words[0] == "-h") {
    if (words.size() >= 2) {
      const Subcommand* cmd = FindSubcommand(words[1]);
      if (cmd != nullptr) return PrintCommandHelp(*cmd);
    }
    Usage();
    return 0;
  }
  const Subcommand* cmd = FindSubcommand(words[0]);
  if (cmd == nullptr) {
    std::fprintf(stderr, "unknown command '%s'\n", words[0].c_str());
    return Usage();
  }

  const Args args = ParseArgs(
      std::vector<std::string>(words.begin() + 1, words.end()),
      {"engine", "max-pending", "max-sessions", "idle-timeout-ms", "top",
       "snapshot-dir", "tcp-port", "tcp-host", "worker-id", "workers",
       "heartbeat-ms", "vnodes", "access-log", "slow-log", "slow-ms",
       "interval-ms", "iterations", "rpc-deadline-ms", "replication",
       "spawn-workers", "db", "worker-log-dir", "scenario", "clips", "frames",
       "batch", "seed", "frame-offset"});
  if (args.help) return PrintCommandHelp(*cmd);

  // Dispatch, then flush the requested observability outputs regardless
  // of which command ran (but not on usage errors).
  const int rc = cmd->run(args);
  if (rc == 2) return rc;

  const Status obs_status = WriteObsOutputs(obs.value());
  if (!obs_status.ok()) {
    std::fprintf(stderr, "error: %s\n", obs_status.ToString().c_str());
    return rc == 0 ? 1 : rc;
  }
  return rc;
}

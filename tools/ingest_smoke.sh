#!/usr/bin/env bash
# End-to-end smoke test for streaming ingestion + epoch snapshots, run
# by CI.
#
# Boots mivid_serve over an EMPTY database and makes a camera searchable
# with nothing but the ingest API: `mivid_cli stream` replays a simulated
# scenario as per-frame ingest requests while a scripted client opens a
# session and ranks. Asserts the epoch-snapshot contract end to end:
#
#  1. a session opened on epoch 1 returns byte-identical rankings before
#     and after a second clip is streamed + published underneath it,
#  2. after one {"cmd":"refresh"} the session sees the new epoch and the
#     freshly streamed bags,
#  3. a daemon restart cold-restores the published corpus from the epoch
#     snapshot dir and still ranks (and reports a snapshot hit).
#
# usage: tools/ingest_smoke.sh <build-dir> [work-dir]
set -euo pipefail

BUILD_DIR=${1:?usage: ingest_smoke.sh <build-dir> [work-dir]}
WORK_DIR=${2:-$(mktemp -d)}
CLI="$BUILD_DIR/tools/mivid_cli"
CLIENT="$BUILD_DIR/tools/mivid_client"
DB="$WORK_DIR/streamdb"
SOCK="$WORK_DIR/ingest.sock"
SNAP="$WORK_DIR/epoch-snapshots"
SERVE_PID=""

fail() { echo "FAIL: $*" >&2; exit 1; }

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon did not create $SOCK"
}

start_daemon() {  # start_daemon <metrics-file>
  "$CLI" --metrics-json "$WORK_DIR/$1" \
         serve "$DB" "$SOCK" --snapshot-dir="$SNAP" \
    >"$WORK_DIR/serve.log" 2>&1 &
  SERVE_PID=$!
  wait_for_socket
}

json_int() {  # json_int <file> <key>
  sed -n "s/.*\"$2\":\([0-9-][0-9]*\).*/\1/p" "$1" | head -1
}

echo "== boot daemon over an empty database =="
rm -rf "$DB" "$SOCK" "$SNAP"
"$CLI" init "$DB"
start_daemon metrics_live.json

echo "== stream clip 1: the camera becomes searchable live =="
"$CLI" stream "$SOCK" camlive --frames=500 --batch=40 --seed=61 \
  >"$WORK_DIR/stream1.json"
grep -q '"published":true' "$WORK_DIR/stream1.json" \
  || fail "first stream did not publish: $(cat "$WORK_DIR/stream1.json")"
[ "$(json_int "$WORK_DIR/stream1.json" epoch)" = "1" ] \
  || fail "first publish should be epoch 1: $(cat "$WORK_DIR/stream1.json")"

"$CLIENT" "$SOCK" '{"cmd":"open","session":"live","camera":"camlive","v":"1.1"}' \
  >"$WORK_DIR/open.json"
[ "$(json_int "$WORK_DIR/open.json" epoch)" = "1" ] \
  || fail "session did not pin epoch 1: $(cat "$WORK_DIR/open.json")"
BAGS1=$(json_int "$WORK_DIR/open.json" bags)
[ "$BAGS1" -gt 0 ] || fail "epoch 1 has no bags"

"$CLIENT" "$SOCK" '{"cmd":"rank","session":"live","top":-1}' \
  >"$WORK_DIR/rank_pinned_before.json"

echo "== stream clip 2 + publish epoch 2 under the open session =="
"$CLI" stream "$SOCK" camlive --frames=400 --batch=40 --seed=75 \
  --frame-offset=500 >"$WORK_DIR/stream2.json"
[ "$(json_int "$WORK_DIR/stream2.json" epoch)" = "2" ] \
  || fail "second publish should be epoch 2: $(cat "$WORK_DIR/stream2.json")"

# Epoch pinning: the open session's ranking must be byte-identical to
# the pre-publish baseline even though the corpus grew underneath it.
"$CLIENT" "$SOCK" '{"cmd":"rank","session":"live","top":-1}' \
  >"$WORK_DIR/rank_pinned_after.json"
cmp "$WORK_DIR/rank_pinned_before.json" "$WORK_DIR/rank_pinned_after.json" \
  || fail "pinned-epoch ranking changed across a publish"

echo "== refresh: the new clip's bags become visible =="
"$CLIENT" "$SOCK" '{"cmd":"refresh","session":"live"}' \
  >"$WORK_DIR/refresh.json"
grep -q '"refreshed":true' "$WORK_DIR/refresh.json" \
  || fail "refresh did not move the session: $(cat "$WORK_DIR/refresh.json")"
[ "$(json_int "$WORK_DIR/refresh.json" epoch)" = "2" ] \
  || fail "refresh did not land on epoch 2: $(cat "$WORK_DIR/refresh.json")"
BAGS2=$(json_int "$WORK_DIR/refresh.json" bags)
[ "$BAGS2" -gt "$BAGS1" ] \
  || fail "refresh exposed no new bags ($BAGS1 -> $BAGS2)"
"$CLIENT" "$SOCK" '{"cmd":"rank","session":"live","top":-1}' \
  >"$WORK_DIR/rank_refreshed.json"
RANKED=$(grep -o '"bag":' "$WORK_DIR/rank_refreshed.json" | wc -l)
[ "$RANKED" = "$BAGS2" ] \
  || fail "refreshed rank covers $RANKED bags, expected $BAGS2"

echo "== wrong protocol major is rejected =="
set +e
"$CLIENT" "$SOCK" '{"cmd":"rank","session":"live","v":2}' \
  >"$WORK_DIR/wrong_major.json"
RC=$?
set -e
[ "$RC" -ne 0 ] || fail "v:2 request was accepted"
grep -q 'unsupported protocol major' "$WORK_DIR/wrong_major.json" \
  || fail "v:2 rejection lacks version message: $(cat "$WORK_DIR/wrong_major.json")"

echo "== restart: cold restore from epoch snapshots =="
"$CLIENT" "$SOCK" '{"cmd":"shutdown"}' >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -f "$SOCK"
ls "$SNAP" | grep -q manifest || fail "no epoch manifest written to $SNAP"

# The first daemon's export must carry the ingest-path counters.
[ -s "$WORK_DIR/metrics_live.json" ] || fail "live daemon wrote no metrics"
for metric in 'ingest/frames' 'ingest/clips_cut' 'ingest/bags_staged' \
              'serve/epoch_publishes' 'serve/epoch_publish_seconds'; do
  grep -q "\"$metric\"" "$WORK_DIR/metrics_live.json" \
    || fail "live metrics export is missing $metric"
done

start_daemon metrics_restore.json
"$CLIENT" "$SOCK" '{"cmd":"open","session":"after","camera":"camlive"}' \
  >"$WORK_DIR/reopen.json"
BAGS3=$(json_int "$WORK_DIR/reopen.json" bags)
[ "$BAGS3" = "$BAGS2" ] \
  || fail "restored corpus has $BAGS3 bags, expected $BAGS2"
"$CLIENT" "$SOCK" '{"cmd":"ping"}' >"$WORK_DIR/ping.json"
grep -q '"snapshot_hits":1' "$WORK_DIR/ping.json" \
  || fail "restart did not cold-restore from snapshots: $(cat "$WORK_DIR/ping.json")"
grep -q '"protocol_version":"' "$WORK_DIR/ping.json" \
  || fail "ping does not advertise protocol_version"

echo "== graceful shutdown + restore metrics export =="
"$CLIENT" "$SOCK" '{"cmd":"shutdown"}' >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
[ -s "$WORK_DIR/metrics_restore.json" ] \
  || fail "restored daemon wrote no metrics export"
grep -q '"serve/corpus_snapshot_hits"' "$WORK_DIR/metrics_restore.json" \
  || fail "restore metrics export is missing serve/corpus_snapshot_hits"

echo "PASS: ingest smoke ($WORK_DIR)"

// Validates the observability exports the pipeline binaries write with
// --metrics-json and --trace, so CI can assert the instrumentation stays
// wired end to end.
//
//   check_obs_outputs <metrics.json> <trace.json>
//       validate existing export files
//   check_obs_outputs --selftest
//       run a miniature end-to-end experiment in-process with metrics and
//       tracing enabled, export to a temp directory, then validate (this
//       mode is registered as the tier-1 ctest `obs_output_check`)
//   check_obs_outputs --stitched-trace <trace.json> [min_procs]
//       validate a stitched cluster trace (a trace-merge output or a
//       coordinator trace_dump response line): one trace id must span at
//       least min_procs distinct pids (default 2) under a covering root
//       span
//   check_obs_outputs --cluster-stats <stats.json>
//       validate a cluster_stats response line: the fleet rollup must be
//       the exact merge of the per-worker snapshots
//
// Validation rules:
//   metrics.json  parses; has counters/gauges/histograms/spans objects;
//                 counters are non-negative; histogram and span stats are
//                 internally consistent (count>0 => min<=p50<=p95<=max).
//   trace.json    parses; has a traceEvents array; every "X" event has
//                 name/ts/dur/tid; per-tid end timestamps are monotone.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "eval/experiment.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_wire.h"
#include "obs/trace.h"

using namespace mivid;

namespace {

int g_failures = 0;

void Fail(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  ++g_failures;
}

void Expect(bool condition, const std::string& message) {
  if (!condition) Fail(message);
}

Result<JsonValue> ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StrFormat("cannot read %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJson(buffer.str());
}

/// `stats` must look like an exported histogram/span stats object:
/// required numeric fields present, quantiles ordered when count > 0.
void CheckStatsObject(const std::string& label, const JsonValue& stats,
                      const char* lo_key, const char* mid_key,
                      const char* hi_key) {
  const JsonValue* count = stats.Find("count");
  if (count == nullptr || !count->is_number()) {
    Fail(label + ": missing numeric count");
    return;
  }
  Expect(count->number >= 0, label + ": negative count");
  const JsonValue* lo = stats.Find(lo_key);
  const JsonValue* mid = stats.Find(mid_key);
  const JsonValue* hi = stats.Find(hi_key);
  if (lo == nullptr || mid == nullptr || hi == nullptr) {
    Fail(label + StrFormat(": missing %s/%s/%s", lo_key, mid_key, hi_key));
    return;
  }
  if (count->number > 0) {
    Expect(lo->number <= mid->number,
           label + StrFormat(": %s > %s", lo_key, mid_key));
    Expect(mid->number <= hi->number,
           label + StrFormat(": %s > %s", mid_key, hi_key));
  }
}

void CheckMetricsJson(const std::string& path) {
  Result<JsonValue> doc = ParseFile(path);
  if (!doc.ok()) {
    Fail("metrics: " + doc.status().ToString());
    return;
  }
  if (!doc->is_object()) {
    Fail("metrics: top level is not an object");
    return;
  }
  for (const char* section : {"counters", "gauges", "histograms", "spans"}) {
    const JsonValue* s = doc->Find(section);
    if (s == nullptr || !s->is_object()) {
      Fail(StrFormat("metrics: missing object section \"%s\"", section));
    }
  }
  if (const JsonValue* counters = doc->Find("counters")) {
    for (const auto& [name, value] : counters->object) {
      Expect(value.is_number() && value.number >= 0,
             "metrics: counter " + name + " is not a non-negative number");
    }
  }
  if (const JsonValue* hists = doc->Find("histograms")) {
    for (const auto& [name, stats] : hists->object) {
      if (!stats.is_object()) {
        Fail("metrics: histogram " + name + " is not an object");
        continue;
      }
      CheckStatsObject("metrics: histogram " + name, stats, "min", "p50",
                       "max");
      CheckStatsObject("metrics: histogram " + name, stats, "p50", "p95",
                       "p99");
    }
  }
  if (const JsonValue* spans = doc->Find("spans")) {
    for (const auto& [name, stats] : spans->object) {
      if (!stats.is_object()) {
        Fail("metrics: span " + name + " is not an object");
        continue;
      }
      CheckStatsObject("metrics: span " + name, stats, "p50_ms", "p95_ms",
                       "max_ms");
    }
  }
}

void CheckTraceJson(const std::string& path) {
  Result<JsonValue> doc = ParseFile(path);
  if (!doc.ok()) {
    Fail("trace: " + doc.status().ToString());
    return;
  }
  const JsonValue* events =
      doc->is_object() ? doc->Find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    Fail("trace: missing traceEvents array");
    return;
  }
  std::map<double, double> last_end_by_tid;
  size_t spans = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      Fail("trace: event without \"ph\"");
      continue;
    }
    if (ph->string == "M") continue;  // metadata (process/thread names)
    if (ph->string != "X") {
      Fail("trace: unexpected event phase \"" + ph->string + "\"");
      continue;
    }
    ++spans;
    const JsonValue* name = e.Find("name");
    const JsonValue* ts = e.Find("ts");
    const JsonValue* dur = e.Find("dur");
    const JsonValue* tid = e.Find("tid");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number() ||
        tid == nullptr || !tid->is_number()) {
      Fail("trace: X event missing name/ts/dur/tid");
      continue;
    }
    Expect(ts->number >= 0 && dur->number >= 0,
           "trace: negative ts/dur on " + name->string);
    // Spans are recorded when they close, so within one tid the end
    // timestamps must be monotone in file order.
    const double end = ts->number + dur->number;
    auto [it, inserted] = last_end_by_tid.emplace(tid->number, end);
    if (!inserted) {
      Expect(end >= it->second,
             StrFormat("trace: tid %g end timestamps went backwards",
                       tid->number));
      it->second = end;
    }
  }
  Expect(spans > 0, "trace: no spans recorded");
}

/// Validates a stitched cluster trace: either a raw Chrome document (as
/// written by `mivid_cli trace-merge`) or a coordinator trace_dump
/// response line, whose stitched document lives under "trace". The trace
/// id covering the most distinct pids must span at least `min_procs`
/// processes, and a single root span must cover every other span that
/// shares its id (small tolerance for cross-process clock pinning skew).
void CheckStitchedTrace(const std::string& path, int min_procs) {
  Result<JsonValue> doc = ParseFile(path);
  if (!doc.ok()) {
    Fail("stitched trace: " + doc.status().ToString());
    return;
  }
  const JsonValue* root = doc->is_object() ? &doc.value() : nullptr;
  if (root != nullptr && root->Find("traceEvents") == nullptr) {
    const JsonValue* inner = root->Find("trace");
    if (inner != nullptr && inner->is_object()) root = inner;
  }
  const JsonValue* events =
      root != nullptr ? root->Find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    Fail("stitched trace: missing traceEvents array");
    return;
  }

  struct SpanRow {
    double pid;
    double ts;
    double dur;
    std::string name;
  };
  std::map<std::string, std::vector<SpanRow>> by_trace_id;
  size_t spans = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      Fail("stitched trace: event without \"ph\"");
      continue;
    }
    if (ph->string == "M") continue;
    if (ph->string != "X") {
      Fail("stitched trace: unexpected event phase \"" + ph->string + "\"");
      continue;
    }
    ++spans;
    const JsonValue* name = e.Find("name");
    const JsonValue* ts = e.Find("ts");
    const JsonValue* dur = e.Find("dur");
    const JsonValue* pid = e.Find("pid");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number() || dur == nullptr || !dur->is_number() ||
        pid == nullptr || !pid->is_number()) {
      Fail("stitched trace: X event missing name/ts/dur/pid");
      continue;
    }
    const JsonValue* args = e.Find("args");
    const JsonValue* id = args != nullptr ? args->Find("trace") : nullptr;
    if (id != nullptr && id->is_string() && !id->string.empty()) {
      by_trace_id[id->string].push_back(
          SpanRow{pid->number, ts->number, dur->number, name->string});
    }
  }
  Expect(spans > 0, "stitched trace: no spans recorded");
  if (by_trace_id.empty()) {
    Fail("stitched trace: no span carries a trace id");
    return;
  }

  // The request trace is the id with the widest process coverage.
  const std::vector<SpanRow>* best = nullptr;
  std::string best_id;
  size_t best_pids = 0;
  for (const auto& [id, rows] : by_trace_id) {
    std::set<double> pids;
    for (const SpanRow& row : rows) pids.insert(row.pid);
    if (pids.size() > best_pids) {
      best_pids = pids.size();
      best = &rows;
      best_id = id;
    }
  }
  Expect(static_cast<int>(best_pids) >= min_procs,
         StrFormat("stitched trace: widest trace id spans %zu process(es), "
                   "expected >= %d",
                   best_pids, min_procs));

  // One span must cover all the others sharing the id — the
  // coordinator's admission span opens before any worker starts and
  // closes after the merge. Allow a little slack for the skew between
  // each process's steady/wall clock pinning.
  constexpr double kSkewToleranceUs = 2000.0;
  const SpanRow* cover = nullptr;
  for (const SpanRow& row : *best) {
    if (cover == nullptr || row.dur > cover->dur) cover = &row;
  }
  for (const SpanRow& row : *best) {
    Expect(row.ts >= cover->ts - kSkewToleranceUs &&
               row.ts + row.dur <= cover->ts + cover->dur + kSkewToleranceUs,
           StrFormat("stitched trace: span \"%s\" escapes the root span "
                     "\"%s\" of trace %s",
                     row.name.c_str(), cover->name.c_str(), best_id.c_str()));
  }
}

/// Validates a cluster_stats response line: schema, then exactness — the
/// reported fleet rollup must serialize identically to a fresh merge of
/// the per-worker snapshots it claims to aggregate.
void CheckClusterStats(const std::string& path) {
  Result<JsonValue> doc = ParseFile(path);
  if (!doc.ok()) {
    Fail("cluster_stats: " + doc.status().ToString());
    return;
  }
  if (!doc->is_object()) {
    Fail("cluster_stats: top level is not an object");
    return;
  }
  const JsonValue* ok = doc->Find("ok");
  Expect(ok != nullptr && ok->type == JsonValue::Type::kBool &&
             ok->bool_value,
         "cluster_stats: response is not ok");
  const JsonValue* cmd = doc->Find("cmd");
  Expect(cmd != nullptr && cmd->is_string() &&
             cmd->string == "cluster_stats",
         "cluster_stats: cmd is not \"cluster_stats\"");
  const JsonValue* workers = doc->Find("workers");
  if (workers == nullptr || !workers->is_array()) {
    Fail("cluster_stats: missing workers array");
    return;
  }
  const JsonValue* fleet = doc->Find("fleet");
  if (fleet == nullptr || !fleet->is_object()) {
    Fail("cluster_stats: missing fleet object");
    return;
  }

  std::vector<MetricsSnapshot> snapshots;
  size_t with_metrics = 0;
  for (const JsonValue& worker : workers->array) {
    const JsonValue* metrics = worker.Find("metrics");
    if (metrics == nullptr) continue;
    Result<MetricsSnapshot> snapshot = MetricsSnapshotFromWireJson(*metrics);
    if (!snapshot.ok()) {
      Fail("cluster_stats: worker snapshot: " +
           snapshot.status().ToString());
      continue;
    }
    snapshots.push_back(std::move(snapshot).value());
    ++with_metrics;
  }
  Expect(with_metrics > 0, "cluster_stats: no worker carries a snapshot");

  Result<MetricsSnapshot> reported = MetricsSnapshotFromWireJson(*fleet);
  if (!reported.ok()) {
    Fail("cluster_stats: fleet snapshot: " + reported.status().ToString());
    return;
  }
  // Bit-exact aggregation check: same wire serialization, so counters,
  // bucket vectors, and interpolated percentiles all match.
  const std::string remerged =
      MetricsSnapshotToWireJson(MergeMetricsSnapshots(snapshots));
  const std::string fleet_wire =
      MetricsSnapshotToWireJson(reported.value());
  Expect(remerged == fleet_wire,
         "cluster_stats: fleet rollup is not the exact merge of the "
         "per-worker snapshots");

  if (const JsonValue* hists = fleet->Find("histograms")) {
    for (const auto& [name, stats] : hists->object) {
      if (!stats.is_object()) {
        Fail("cluster_stats: fleet histogram " + name + " is not an object");
        continue;
      }
      CheckStatsObject("cluster_stats: fleet histogram " + name, stats,
                       "min", "p50", "max");
      CheckStatsObject("cluster_stats: fleet histogram " + name, stats,
                       "p50", "p95", "p99");
    }
  }
}

/// Runs a miniature retrieval experiment with collection enabled and
/// validates what the exporters wrote.
int SelfTest() {
  EnableMetrics(true);
  EnableTracing(true);

  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 200;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  options.feedback_rounds = 2;
  Result<ExperimentResult> result = RunRfExperiment(scenario, options);
  if (!result.ok()) {
    Fail("selftest experiment: " + result.status().ToString());
    return 1;
  }
  Expect(!result->mil_summary.rounds.empty(),
         "selftest: RunSummary recorded no training rounds");
  for (const MilRoundStats& round : result->mil_summary.rounds) {
    Expect(round.nu > 0.0 && round.nu < 1.0,
           StrFormat("selftest: round %d nu %g outside (0,1)", round.round,
                     round.nu));
    Expect(round.support_vectors > 0,
           StrFormat("selftest: round %d has no support vectors",
                     round.round));
    Expect(round.support_vectors <= round.training_size,
           StrFormat("selftest: round %d more SVs than training points",
                     round.round));
  }

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mivid_obs_selftest";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  ObsOptions obs;
  obs.metrics_json_path = (dir / "metrics.json").string();
  obs.trace_path = (dir / "trace.json").string();
  const Status written = WriteObsOutputs(obs);
  if (!written.ok()) {
    Fail("selftest export: " + written.ToString());
    return 1;
  }
  CheckMetricsJson(obs.metrics_json_path);
  CheckTraceJson(obs.trace_path);

  // The full pipeline must have touched every instrumented layer.
  Result<JsonValue> doc = ParseFile(obs.metrics_json_path);
  if (doc.ok()) {
    const JsonValue* counters = doc->Find("counters");
    for (const char* name :
         {"segment/frames", "track/frames", "window/vs", "gram/builds",
          "kernel_cache/misses", "rank/calls", "mil/learn_calls"}) {
      const JsonValue* c = counters ? counters->Find(name) : nullptr;
      Expect(c != nullptr && c->number > 0,
             StrFormat("selftest: counter \"%s\" missing or zero", name));
    }
    const JsonValue* hists = doc->Find("histograms");
    for (const char* name :
         {"segment/frame_seconds", "svm/smo_iterations",
          "svm/support_vectors", "rank/seconds"}) {
      const JsonValue* h = hists ? hists->Find(name) : nullptr;
      const JsonValue* count = h ? h->Find("count") : nullptr;
      Expect(count != nullptr && count->number > 0,
             StrFormat("selftest: histogram \"%s\" missing or empty", name));
    }
  }
  std::filesystem::remove_all(dir, ec);
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: check_obs_outputs <metrics.json> <trace.json>\n"
      "       check_obs_outputs --selftest\n"
      "       check_obs_outputs --stitched-trace <trace.json> [min_procs]\n"
      "       check_obs_outputs --cluster-stats <stats.json>\n");
  return 2;
}

int Report(const char* what) {
  if (g_failures > 0) {
    std::fprintf(stderr, "check_obs_outputs: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("check_obs_outputs: %s OK\n", what);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--selftest") {
    if (SelfTest() != 0 || g_failures > 0) {
      std::fprintf(stderr, "check_obs_outputs: %d failure(s)\n", g_failures);
      return 1;
    }
    std::printf("check_obs_outputs: selftest OK\n");
    return 0;
  }
  if ((argc == 3 || argc == 4) &&
      std::string(argv[1]) == "--stitched-trace") {
    int min_procs = 2;
    if (argc == 4) {
      int64_t v = 0;
      if (!ParseInt64(argv[3], &v) || v < 1) return Usage();
      min_procs = static_cast<int>(v);
    }
    CheckStitchedTrace(argv[2], min_procs);
    return Report(argv[2]);
  }
  if (argc == 3 && std::string(argv[1]) == "--cluster-stats") {
    CheckClusterStats(argv[2]);
    return Report(argv[2]);
  }
  if (argc != 3) return Usage();
  CheckMetricsJson(argv[1]);
  CheckTraceJson(argv[2]);
  if (g_failures > 0) {
    std::fprintf(stderr, "check_obs_outputs: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("check_obs_outputs: %s and %s OK\n", argv[1], argv[2]);
  return 0;
}

#!/usr/bin/env bash
# End-to-end smoke test for the sharded coordinator/worker fleet, run by
# CI alongside tools/serve_smoke.sh (which covers the single daemon).
#
# Simulates a city-scale database (120 camera corpora), then:
#
#   1. Boots a plain single-process mivid_serve over a copy of the
#      database and records a session's post-feedback ranking — the
#      baseline every cluster answer must reproduce bit-for-bit.
#   2. Boots 3 workers (ephemeral TCP ports) + 1 coordinator over the
#      shared database and replays the same conversation through the
#      coordinator: responses must be byte-identical to the baseline
#      (single-camera sessions are pure passthrough).
#   3. SIGKILLs the session's home worker mid-session (no graceful
#      shutdown) and ranks again: the coordinator must fail over to a
#      survivor, replay the feedback journal, and return the SAME bytes.
#   4. Opens a multi-camera session on the 3-worker fleet and on a
#      1-worker "fleet" over another copy of the database: the merged
#      scatter-gather ranking must be identical regardless of sharding.
#
# usage: tools/cluster_smoke.sh <build-dir> [work-dir]
set -euo pipefail

BUILD_DIR=${1:?usage: cluster_smoke.sh <build-dir> [work-dir]}
WORK_DIR=${2:-$(mktemp -d)}
CLI="$BUILD_DIR/tools/mivid_cli"
CLIENT="$BUILD_DIR/tools/mivid_client"
DB="$WORK_DIR/fleetdb"         # shared by the 3-worker fleet
DB_SOLO="$WORK_DIR/solodb"     # single-process baseline copy
DB_ONE="$WORK_DIR/onedb"       # 1-worker fleet copy (sharding invariance)
COORD_SOCK="$WORK_DIR/coord.sock"
SOLO_SOCK="$WORK_DIR/solo.sock"
ONE_SOCK="$WORK_DIR/one.sock"
NUM_CAMERAS=${NUM_CAMERAS:-120}

PIDS=()
WORKER_PIDS=()
WORKER_PORTS=()

fail() { echo "FAIL: $*" >&2; exit 1; }

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_for_socket() {
  local sock=$1
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && return 0
    sleep 0.1
  done
  fail "daemon did not create $sock"
}

# Waits for the "tcp_port=N" boot line in a log file and prints N.
wait_for_port() {
  local log=$1
  for _ in $(seq 1 100); do
    if grep -q 'tcp_port=' "$log" 2>/dev/null; then
      grep -o 'tcp_port=[0-9]*' "$log" | head -1 | cut -d= -f2
      return 0
    fi
    sleep 0.1
  done
  fail "no tcp_port line in $log"
}

echo "== build database: $NUM_CAMERAS simulated camera corpora =="
rm -rf "$DB" "$DB_SOLO" "$DB_ONE"
"$CLI" init "$DB" >/dev/null
for i in $(seq 0 $((NUM_CAMERAS - 1))); do
  "$CLI" simulate "$DB" tunnel "cam$i" 300 >/dev/null
done
cp -r "$DB" "$DB_SOLO"
cp -r "$DB" "$DB_ONE"

echo "== single-process baseline =="
"$CLI" serve "$DB_SOLO" "$SOLO_SOCK" >"$WORK_DIR/solo.log" 2>&1 &
SOLO_PID=$!
PIDS+=("$SOLO_PID")
wait_for_socket "$SOLO_SOCK"
"$CLIENT" "$SOLO_SOCK" <<'EOF' >"$WORK_DIR/solo_conv.out"
{"cmd":"open","session":"s1","camera":"cam7"}
{"cmd":"feedback","session":"s1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]}
EOF
"$CLIENT" "$SOLO_SOCK" '{"cmd":"rank","session":"s1","top":-1}' \
  >"$WORK_DIR/solo_rank.json"
"$CLIENT" "$SOLO_SOCK" '{"cmd":"shutdown"}' >/dev/null
wait "$SOLO_PID" 2>/dev/null || true

echo "== boot fleet: 3 workers + coordinator (metrics/tracing/logs on) =="
# Workers take the slow threshold from --slow-ms, the coordinator from
# the MIVID_SLOW_QUERY_MS environment variable — both paths exercised.
# Threshold 0 makes every request "slow", so the slow log is
# deterministically non-empty.
for i in 0 1 2; do
  MIVID_METRICS=1 MIVID_TRACE=1 \
    "$CLI" serve "$DB" none --tcp-port=0 --worker-id="w$i" \
    --access-log="$WORK_DIR/worker$i.access.log" \
    --slow-log="$WORK_DIR/worker$i.slow.log" --slow-ms=0 \
    >"$WORK_DIR/worker$i.log" 2>&1 &
  WORKER_PIDS[$i]=$!
  PIDS+=("${WORKER_PIDS[$i]}")
  WORKER_PORTS[$i]=$(wait_for_port "$WORK_DIR/worker$i.log")
done
WORKERS="127.0.0.1:${WORKER_PORTS[0]},127.0.0.1:${WORKER_PORTS[1]},127.0.0.1:${WORKER_PORTS[2]}"
MIVID_METRICS=1 MIVID_TRACE=1 MIVID_SLOW_QUERY_MS=0 \
  "$CLI" coord "$COORD_SOCK" --workers="$WORKERS" \
  --access-log="$WORK_DIR/coord.access.log" \
  --slow-log="$WORK_DIR/coord.slow.log" \
  >"$WORK_DIR/coord.log" 2>&1 &
COORD_PID=$!
PIDS+=("$COORD_PID")
wait_for_socket "$COORD_SOCK"

echo "== same conversation through the coordinator =="
"$CLIENT" "$COORD_SOCK" <<'EOF' >"$WORK_DIR/fleet_conv.out"
{"cmd":"open","session":"s1","camera":"cam7"}
{"cmd":"feedback","session":"s1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]}
EOF
cmp "$WORK_DIR/solo_conv.out" "$WORK_DIR/fleet_conv.out" \
  || fail "coordinator passthrough responses differ from single-process"
"$CLIENT" "$COORD_SOCK" '{"cmd":"rank","session":"s1","top":-1}' \
  >"$WORK_DIR/fleet_rank_before.json"
cmp "$WORK_DIR/solo_rank.json" "$WORK_DIR/fleet_rank_before.json" \
  || fail "fleet ranking differs from single-process baseline"

echo "== SIGKILL the session's home worker mid-session =="
"$CLIENT" "$COORD_SOCK" '{"cmd":"stats"}' >"$WORK_DIR/stats_before.json"
# The home worker is the one that served s1's open/rank/feedback — the
# fleet worker with the most requests.
VICTIM_PORT=$(tr '{' '\n' <"$WORK_DIR/stats_before.json" \
  | grep '"endpoint"' \
  | sed -E 's/.*"endpoint":"127\.0\.0\.1:([0-9]+)".*"requests":([0-9]+).*/\2 \1/' \
  | sort -rn | head -1 | awk '{print $2}')
[ -n "$VICTIM_PORT" ] || fail "could not pick a victim from coordinator stats"
VICTIM_PID=""
for i in 0 1 2; do
  if [ "${WORKER_PORTS[$i]}" = "$VICTIM_PORT" ]; then
    VICTIM_PID=${WORKER_PIDS[$i]}
  fi
done
[ -n "$VICTIM_PID" ] || fail "victim port $VICTIM_PORT matches no worker"
echo "killing worker on port $VICTIM_PORT (pid $VICTIM_PID)"
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" 2>/dev/null || true

echo "== rank after failover: must match the baseline bytes =="
"$CLIENT" "$COORD_SOCK" '{"cmd":"rank","session":"s1","top":-1}' \
  >"$WORK_DIR/fleet_rank_after.json"
cmp "$WORK_DIR/solo_rank.json" "$WORK_DIR/fleet_rank_after.json" \
  || fail "ranking after worker death differs from single-process baseline"
"$CLIENT" "$COORD_SOCK" '{"cmd":"stats"}' >"$WORK_DIR/stats_after.json"
grep -q '"workers_alive":2' "$WORK_DIR/stats_after.json" \
  || fail "coordinator did not mark the killed worker dead: $(cat "$WORK_DIR/stats_after.json")"

echo "== multi-camera scatter-gather: sharding must not change the merge =="
MULTI_OPEN='{"cmd":"open","session":"m1","cameras":["cam0","cam1","cam2","cam3","cam4","cam5","cam6","cam8","cam9","cam10","cam11","cam12"]}'
MULTI_FEEDBACK='{"cmd":"feedback","session":"m1","labels":[{"bag":0,"label":"relevant","camera":"cam3"},{"bag":0,"label":"irrelevant","camera":"cam9"}]}'
MULTI_RANK='{"cmd":"rank","session":"m1","top":40}'

# The 1-worker fleet doubles as smoke coverage for supervised spawning:
# the coordinator forks/execs its own worker instead of attaching to one
# we started by hand.
"$CLI" coord "$ONE_SOCK" --spawn-workers=1 --db="$DB_ONE" \
  --worker-log-dir="$WORK_DIR/one_logs" \
  >"$WORK_DIR/coord_one.log" 2>&1 &
ONE_COORD_PID=$!
PIDS+=("$ONE_COORD_PID")
wait_for_socket "$ONE_SOCK"
for _ in $(seq 1 100); do
  "$CLIENT" "$ONE_SOCK" '{"cmd":"stats"}' 2>/dev/null \
    | grep -q '"workers_alive":1' && break
  sleep 0.1
done
"$CLIENT" "$ONE_SOCK" '{"cmd":"stats"}' | grep -q '"workers_alive":1' \
  || fail "spawned worker never came alive behind $ONE_SOCK"

for side in fleet one; do
  sock=$COORD_SOCK
  [ "$side" = one ] && sock=$ONE_SOCK
  "$CLIENT" "$sock" <<EOF >"$WORK_DIR/multi_$side.out"
$MULTI_OPEN
$MULTI_FEEDBACK
$MULTI_RANK
EOF
done
# The open response reports per-sub-session detail, but feedback + the
# merged ranking must be identical no matter how cameras are sharded.
tail -2 "$WORK_DIR/multi_fleet.out" >"$WORK_DIR/multi_fleet_rank.json"
tail -2 "$WORK_DIR/multi_one.out" >"$WORK_DIR/multi_one_rank.json"
cmp "$WORK_DIR/multi_fleet_rank.json" "$WORK_DIR/multi_one_rank.json" \
  || fail "merged multi-camera ranking depends on sharding"
grep -q '"camera":"cam' "$WORK_DIR/multi_fleet_rank.json" \
  || fail "merged ranking entries are not camera-tagged"

echo "== fleet observability: cluster stats, stitched trace, logs =="
CHECK="$BUILD_DIR/tools/check_obs_outputs"

# cluster_stats: fleet rollup must be the exact merge of the per-worker
# snapshots (bucket-wise histogram sums, recomputed percentiles).
"$CLIENT" "$COORD_SOCK" '{"cmd":"cluster_stats"}' \
  >"$WORK_DIR/cluster_stats.json"
"$CHECK" --cluster-stats "$WORK_DIR/cluster_stats.json" \
  || fail "cluster_stats aggregation is not exact"
grep -q '"worker_id":"w' "$WORK_DIR/cluster_stats.json" \
  || fail "cluster_stats entries are not tagged with worker ids"

# trace_dump: one stitched Chrome trace; the multi-camera rank must show
# one trace id spanning the coordinator and every involved worker
# (3 processes: coordinator + the 2 surviving workers).
"$CLIENT" "$COORD_SOCK" '{"cmd":"trace_dump"}' \
  >"$WORK_DIR/stitched_trace.json"
"$CHECK" --stitched-trace "$WORK_DIR/stitched_trace.json" 3 \
  || fail "no single trace id spans coordinator + workers"

# mivid_cli top must render the fleet against the live coordinator.
"$CLI" top "$COORD_SOCK" --iterations=1 >"$WORK_DIR/top.out" \
  || fail "mivid_cli top failed against the coordinator"
grep -q '^w' "$WORK_DIR/top.out" \
  || fail "mivid_cli top shows no worker rows: $(cat "$WORK_DIR/top.out")"

# Access logs: the coordinator logged the fan-out rank with its latency
# breakdown, and the same trace id shows up in a worker's access log —
# cross-process propagation visible from the logs alone.
grep -q '"role":"coordinator"' "$WORK_DIR/coord.access.log" \
  || fail "coordinator access log is empty"
COORD_RANK_LINE=$(grep '"cmd":"rank"' "$WORK_DIR/coord.access.log" | tail -1)
[ -n "$COORD_RANK_LINE" ] || fail "coordinator access log has no rank entry"
echo "$COORD_RANK_LINE" | grep -q '"merge_ms":' \
  || fail "coordinator rank entry lacks a merge_ms breakdown"
TRACE_ID=$(echo "$COORD_RANK_LINE" \
  | sed -E 's/.*"trace":"([0-9a-f]{16})".*/\1/')
[ ${#TRACE_ID} -eq 16 ] \
  || fail "coordinator rank entry carries no trace id: $COORD_RANK_LINE"
grep -q "\"trace\":\"$TRACE_ID\"" "$WORK_DIR"/worker*.access.log \
  || fail "trace id $TRACE_ID not found in any worker access log"

# Slow-query log: with a 0ms threshold the deliberately slow rank (full
# corpus extraction fan-out) must be mirrored there, flagged slow.
grep -q '"cmd":"rank"' "$WORK_DIR/coord.slow.log" \
  || fail "slow-query log has no rank entry"
grep -q '"slow":true' "$WORK_DIR/coord.slow.log" \
  || fail "slow-query entries are not flagged slow"
grep -q '"slow":true' "$WORK_DIR"/worker*.slow.log \
  || fail "no worker slow-query entry"

echo "== graceful shutdown =="
"$CLIENT" "$COORD_SOCK" '{"cmd":"shutdown"}' >/dev/null
"$CLIENT" "$ONE_SOCK" '{"cmd":"shutdown"}' >/dev/null

echo "PASS: cluster smoke ($WORK_DIR)"

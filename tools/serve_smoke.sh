#!/usr/bin/env bash
# End-to-end smoke test for the mivid_serve daemon, run by CI.
#
# Boots the daemon over a freshly simulated two-camera database, drives a
# scripted mivid_client conversation (open -> rank -> feedback rounds ->
# stats), validates that every response is ok:true JSON and that the
# serve metrics are exported, then SIGKILLs the daemon mid-session and
# restarts it to verify journal-based resume: the ranking after restart
# must be byte-identical to the ranking before the kill.
#
# usage: tools/serve_smoke.sh <build-dir> [work-dir]
set -euo pipefail

BUILD_DIR=${1:?usage: serve_smoke.sh <build-dir> [work-dir]}
WORK_DIR=${2:-$(mktemp -d)}
CLI="$BUILD_DIR/tools/mivid_cli"
CLIENT="$BUILD_DIR/tools/mivid_client"
CHECK="$BUILD_DIR/tools/check_obs_outputs"
DB="$WORK_DIR/smokedb"
SOCK="$WORK_DIR/serve.sock"
SERVE_PID=""

fail() { echo "FAIL: $*" >&2; exit 1; }

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    sleep 0.1
  done
  fail "daemon did not create $SOCK"
}

start_daemon() {
  "$CLI" --metrics-json "$WORK_DIR/serve_metrics.json" \
         --trace "$WORK_DIR/serve_trace.json" \
         serve "$DB" "$SOCK" --max-pending=8 --max-sessions=8 \
    >"$WORK_DIR/serve.log" 2>&1 &
  SERVE_PID=$!
  wait_for_socket
}

echo "== build database =="
rm -rf "$DB" "$SOCK"
"$CLI" init "$DB"
"$CLI" simulate "$DB" intersection cam0 400
"$CLI" simulate "$DB" tunnel cam1 400

echo "== boot daemon =="
start_daemon

echo "== scripted conversation =="
# mivid_client exits non-zero unless every response is {"ok":true,...}.
"$CLIENT" "$SOCK" <<'EOF' >"$WORK_DIR/conv1.out"
{"cmd":"open","session":"smoke","camera":"cam0"}
{"cmd":"rank","session":"smoke","top":10}
{"cmd":"feedback","session":"smoke","labels":[{"bag":0,"label":"relevant"},{"bag":3,"label":"irrelevant"}]}
{"cmd":"open","session":"smoke2","camera":"cam1","engine":"weighted"}
{"cmd":"rank","session":"smoke2","top":5}
{"cmd":"stats"}
EOF
grep -q '"corpus_cache_misses":2' "$WORK_DIR/conv1.out" \
  || fail "expected two corpus loads in stats: $(tail -1 "$WORK_DIR/conv1.out")"

# The post-feedback ranking we must reproduce after the crash.
"$CLIENT" "$SOCK" '{"cmd":"rank","session":"smoke","top":-1}' \
  >"$WORK_DIR/rank_before.json"

echo "== kill daemon mid-session (no graceful shutdown) =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -f "$SOCK"

echo "== restart and resume =="
start_daemon
"$CLIENT" "$SOCK" '{"cmd":"open","session":"smoke"}' >"$WORK_DIR/reopen.json"
grep -q '"resumed":true' "$WORK_DIR/reopen.json" \
  || fail "session did not resume from journal: $(cat "$WORK_DIR/reopen.json")"
"$CLIENT" "$SOCK" '{"cmd":"rank","session":"smoke","top":-1}' \
  >"$WORK_DIR/rank_after.json"
cmp "$WORK_DIR/rank_before.json" "$WORK_DIR/rank_after.json" \
  || fail "ranking after resume differs from ranking before the kill"

echo "== graceful shutdown + metrics export =="
"$CLIENT" "$SOCK" '{"cmd":"shutdown"}' >/dev/null
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

[ -s "$WORK_DIR/serve_metrics.json" ] || fail "daemon wrote no metrics export"
"$CHECK" "$WORK_DIR/serve_metrics.json" "$WORK_DIR/serve_trace.json"
for metric in 'serve/requests' 'serve/request_seconds' \
              'serve/corpus_cache_misses' 'serve/sessions_resumed' \
              'serve/journal_writes'; do
  grep -q "\"$metric\"" "$WORK_DIR/serve_metrics.json" \
    || fail "metrics export is missing $metric"
done

echo "PASS: serve smoke ($WORK_DIR)"

#!/usr/bin/env python3
"""Compares two google-benchmark JSON reports (BENCH_micro.json).

Prints a per-benchmark table of baseline vs candidate times and flags
regressions beyond a threshold. Intended for PR review and CI:

    tools/bench_diff.py BENCH_micro.base.json BENCH_micro.json
    tools/bench_diff.py --threshold 0.15 old.json new.json

Exit status: 0 when no benchmark regressed more than the threshold,
1 on regression, 2 on malformed input. Aggregate entries (mean/median/
stddev rows emitted with --benchmark_repetitions) are skipped; only raw
iterations are compared. Benchmarks present in only one report are
listed but never fail the check (they are new or retired, not slower).
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: (real_time, time_unit)} for raw benchmark entries."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue  # skip mean/median/stddev aggregates
        name = entry.get("name")
        time = entry.get("real_time")
        if name is None or time is None:
            continue
        out[name] = (float(time), entry.get("time_unit", "ns"))
    if not out:
        print(f"error: no benchmark entries in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def build_context(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f).get("context", {})
    except (OSError, json.JSONDecodeError):
        return {}


def main():
    parser = argparse.ArgumentParser(
        description="diff two google-benchmark JSON reports")
    parser.add_argument("baseline", help="baseline report (old)")
    parser.add_argument("candidate", help="candidate report (new)")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative slowdown that counts as a regression "
             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)

    for path in (args.baseline, args.candidate):
        build = build_context(path).get("mivid_build")
        if build is not None and build != "optimized":
            print(f"warning: {path} was recorded from an unoptimized "
                  "binary; the comparison is not meaningful",
                  file=sys.stderr)

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    width = max((len(n) for n in shared), default=20)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'candidate':>12}  "
          f"{'delta':>8}")
    regressions = []
    for name in shared:
        old, old_unit = base[name]
        new, new_unit = cand[name]
        if old_unit != new_unit:
            print(f"error: {name}: time_unit changed "
                  f"({old_unit} -> {new_unit})", file=sys.stderr)
            sys.exit(2)
        ratio = (new - old) / old if old > 0 else 0.0
        flag = ""
        if ratio > args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, ratio))
        elif ratio < -args.threshold:
            flag = "  improved"
        print(f"{name:<{width}}  {old:>10.1f}{old_unit:>2}  "
              f"{new:>10.1f}{new_unit:>2}  {ratio:>+7.1%}{flag}")

    for name in only_base:
        print(f"{name:<{width}}  (removed)")
    for name in only_cand:
        print(f"{name:<{width}}  (new)")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:+.1%}", file=sys.stderr)
        sys.exit(1)
    print(f"\nno regression beyond {args.threshold:.0%} "
          f"({len(shared)} compared)")


if __name__ == "__main__":
    main()

#!/usr/bin/env bash
# Chaos smoke test for the fleet's robustness machinery, run by CI
# alongside tools/cluster_smoke.sh (which covers the happy paths).
#
# Every scenario injects a real failure through the deterministic fault
# harness (MIVID_FAULTS, see docs/robustness.md) or plain SIGKILL, then
# asserts that the client-visible answer is byte-identical to a
# single-process baseline and that the fleet's latency stays bounded by
# the RPC deadline budget — never by the fault's duration:
#
#   1. Hung worker: the session's home worker hangs every rank for 60s.
#      The coordinator must cut the call at its deadline slice, fail
#      over (journal replay on a survivor), and return the baseline
#      bytes in ~1s, not 60.
#   2. Supervised restart: a --spawn-workers fleet loses a worker to
#      SIGKILL; the supervisor must restart it, the heartbeat re-admit
#      it, cluster/worker_restarts must tick, and a mid-session rank
#      must still return the pre-crash bytes.
#   3. Slow replicas + hedged rank: with --replication=2 both replicas
#      of a camera hang; the rank must hedge (cluster/hedged_ranks),
#      fail over to the remaining worker, and return baseline bytes
#      within the budget.
#   4. Torn journal: a worker crashes halfway through a feedback
#      journal write (journal.write.torn). The atomic journal must keep
#      the previous round intact, the coordinator must replay it on a
#      survivor and transparently retry the feedback — the final
#      ranking matches the no-crash baseline bit-for-bit.
#
# usage: tools/chaos_smoke.sh <build-dir> [work-dir]
set -euo pipefail

BUILD_DIR=${1:?usage: chaos_smoke.sh <build-dir> [work-dir]}
WORK_DIR=${2:-$(mktemp -d)}
CLI="$BUILD_DIR/tools/mivid_cli"
CLIENT="$BUILD_DIR/tools/mivid_client"
DB="$WORK_DIR/fleetdb"       # shared by the manual fleets (1, 3, 4)
DB_SOLO="$WORK_DIR/solodb"   # pristine copy for single-process baselines
DB_SUP="$WORK_DIR/supdb"     # supervised fleet's copy (scenario 2)
NUM_CAMERAS=${NUM_CAMERAS:-8}

PIDS=()

fail() { echo "FAIL: $*" >&2; exit 1; }

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_for_socket() {
  local sock=$1
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && return 0
    sleep 0.1
  done
  fail "daemon did not create $sock"
}

# Waits for the "tcp_port=N" boot line in a log file and prints N.
wait_for_port() {
  local log=$1
  for _ in $(seq 1 150); do
    if grep -q 'tcp_port=' "$log" 2>/dev/null; then
      grep -o 'tcp_port=[0-9]*' "$log" | head -1 | cut -d= -f2
      return 0
    fi
    sleep 0.1
  done
  fail "no tcp_port line in $log"
}

# Total "requests" count the coordinator has seen for a worker endpoint,
# from a {"cmd":"stats"} response file.
requests_for_port() {
  local stats_file=$1 port=$2
  tr '{' '\n' <"$stats_file" \
    | grep "\"endpoint\":\"127\.0\.0\.1:$port\"" \
    | sed -E 's/.*"requests":([0-9]+).*/\1/' | head -1
}

# Polls a coordinator socket until {"cmd":"stats"} reports N live
# workers (heartbeat re-admission after a restart).
wait_workers_alive() {
  local sock=$1 n=$2
  for _ in $(seq 1 150); do
    if "$CLIENT" "$sock" '{"cmd":"stats"}' 2>/dev/null \
        | grep -q "\"workers_alive\":$n"; then
      return 0
    fi
    sleep 0.1
  done
  fail "fleet on $sock never reached $n live workers"
}

# Reads one "cluster/<name>" counter from a cluster_stats response.
cluster_counter() {
  local sock=$1 name=$2
  "$CLIENT" "$sock" '{"cmd":"cluster_stats"}' \
    | grep -o "\"cluster/$name\":[0-9.]*" | head -1 | cut -d: -f2
}

# Prints the index (into the port array named $3) whose per-worker
# "requests" count grew the most between two stats snapshots. Heartbeat
# pings tick every worker's count, so only the *largest* delta
# identifies the worker that served the probe request.
busiest_delta_index() {
  local before_file=$1 after_file=$2 ports_name=$3
  local -n ports=$ports_name
  local best_idx="" best_delta=0
  for i in "${!ports[@]}"; do
    local before after delta
    before=$(requests_for_port "$before_file" "${ports[$i]}")
    after=$(requests_for_port "$after_file" "${ports[$i]}")
    delta=$(( ${after:-0} - ${before:-0} ))
    if [ "$delta" -gt "$best_delta" ]; then
      best_delta=$delta
      best_idx=$i
    fi
  done
  [ -n "$best_idx" ] || return 1
  echo "$best_idx"
}

now_ms() { date +%s%3N; }

echo "== build database: $NUM_CAMERAS simulated camera corpora =="
rm -rf "$DB" "$DB_SOLO" "$DB_SUP"
"$CLI" init "$DB" >/dev/null
for i in $(seq 0 $((NUM_CAMERAS - 1))); do
  "$CLI" simulate "$DB" tunnel "cam$i" 300 >/dev/null
done
cp -r "$DB" "$DB_SOLO"
cp -r "$DB" "$DB_SUP"

# Records the single-process baseline for a session on one camera:
# open + feedback responses in <prefix>_conv.out, the full post-feedback
# ranking in <prefix>_rank.json.
solo_baseline() {
  local camera=$1 session=$2 prefix=$3
  local sock="$WORK_DIR/solo.sock"
  "$CLI" serve "$DB_SOLO" "$sock" >"$WORK_DIR/solo.log" 2>&1 &
  local pid=$!
  PIDS+=("$pid")
  wait_for_socket "$sock"
  "$CLIENT" "$sock" <<EOF >"$WORK_DIR/${prefix}_conv.out"
{"cmd":"open","session":"$session","camera":"$camera"}
{"cmd":"feedback","session":"$session","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]}
EOF
  "$CLIENT" "$sock" "{\"cmd\":\"rank\",\"session\":\"$session\",\"top\":-1}" \
    >"$WORK_DIR/${prefix}_rank.json"
  "$CLIENT" "$sock" '{"cmd":"shutdown"}' >/dev/null
  wait "$pid" 2>/dev/null || true
  rm -f "$sock"
}

# ---------------------------------------------------------------------------
# Scenario 1: hung worker — deadline cuts the call, failover answers.

echo "== scenario 1: hung rank fails over within the deadline budget =="
S1_SOCK="$WORK_DIR/s1.sock"
S1_PORTS=()
S1_PIDS=()
for i in 0 1; do
  MIVID_METRICS=1 "$CLI" serve "$DB" none --tcp-port=0 --worker-id="s1w$i" \
    >"$WORK_DIR/s1_worker$i.log" 2>&1 &
  S1_PIDS[$i]=$!
  PIDS+=("${S1_PIDS[$i]}")
  S1_PORTS[$i]=$(wait_for_port "$WORK_DIR/s1_worker$i.log")
done
MIVID_METRICS=1 "$CLI" coord "$S1_SOCK" \
  --workers="127.0.0.1:${S1_PORTS[0]},127.0.0.1:${S1_PORTS[1]}" \
  --rpc-deadline-ms=2000 --heartbeat-ms=300 \
  >"$WORK_DIR/s1_coord.log" 2>&1 &
PIDS+=("$!")
wait_for_socket "$S1_SOCK"

# Find cam0's home worker: with replication 1 the probe open lands on
# exactly one endpoint.
"$CLIENT" "$S1_SOCK" '{"cmd":"stats"}' >"$WORK_DIR/s1_stats0.json"
"$CLIENT" "$S1_SOCK" '{"cmd":"open","session":"s1probe","camera":"cam0"}' >/dev/null
"$CLIENT" "$S1_SOCK" '{"cmd":"stats"}' >"$WORK_DIR/s1_stats1.json"
HOME_IDX=$(busiest_delta_index "$WORK_DIR/s1_stats0.json" \
  "$WORK_DIR/s1_stats1.json" S1_PORTS) \
  || fail "could not locate cam0's home worker"
echo "cam0 lives on worker s1w$HOME_IDX (port ${S1_PORTS[$HOME_IDX]})"

# Restart the home worker on its pinned port with rank hung for 60s.
# Wait for the heartbeat to notice the death before relaunching, so the
# restarted process goes through the full dead -> re-admitted cycle.
kill -9 "${S1_PIDS[$HOME_IDX]}"
wait "${S1_PIDS[$HOME_IDX]}" 2>/dev/null || true
wait_workers_alive "$S1_SOCK" 1
MIVID_METRICS=1 MIVID_FAULTS="worker.rank.hang=1:60000" \
  "$CLI" serve "$DB" none --tcp-port="${S1_PORTS[$HOME_IDX]}" \
  --worker-id="s1w$HOME_IDX" \
  >"$WORK_DIR/s1_worker${HOME_IDX}_hung.log" 2>&1 &
PIDS+=("$!")
wait_workers_alive "$S1_SOCK" 2

solo_baseline cam0 hang1 s1
"$CLIENT" "$S1_SOCK" <<'EOF' >"$WORK_DIR/s1_fleet_conv.out"
{"cmd":"open","session":"hang1","camera":"cam0"}
{"cmd":"feedback","session":"hang1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]}
EOF
cmp "$WORK_DIR/s1_conv.out" "$WORK_DIR/s1_fleet_conv.out" \
  || fail "open/feedback through the hung-home fleet differ from solo"

START=$(now_ms)
"$CLIENT" "$S1_SOCK" '{"cmd":"rank","session":"hang1","top":-1}' \
  >"$WORK_DIR/s1_fleet_rank.json"
ELAPSED=$(( $(now_ms) - START ))
cmp "$WORK_DIR/s1_rank.json" "$WORK_DIR/s1_fleet_rank.json" \
  || fail "ranking after hung-worker failover differs from solo baseline"
[ "$ELAPSED" -lt 6000 ] \
  || fail "rank took ${ELAPSED}ms — blocked on the 60s hang, not the deadline"
MISSES=$(cluster_counter "$S1_SOCK" deadline_misses || true)
[ -n "$MISSES" ] && [ "${MISSES%.*}" -ge 1 ] \
  || fail "cluster/deadline_misses did not tick (got '$MISSES')"
echo "scenario 1 ok: failover rank in ${ELAPSED}ms, deadline_misses=$MISSES"
"$CLIENT" "$S1_SOCK" '{"cmd":"shutdown"}' >/dev/null

# ---------------------------------------------------------------------------
# Scenario 2: SIGKILL a supervised worker — the supervisor restarts it.

echo "== scenario 2: supervised worker restart after SIGKILL =="
S2_SOCK="$WORK_DIR/s2.sock"
mkdir -p "$WORK_DIR/s2_logs"
MIVID_METRICS=1 "$CLI" coord "$S2_SOCK" \
  --spawn-workers=2 --db="$DB_SUP" --worker-log-dir="$WORK_DIR/s2_logs" \
  >"$WORK_DIR/s2_coord.log" 2>&1 &
PIDS+=("$!")
wait_for_socket "$S2_SOCK"
wait_workers_alive "$S2_SOCK" 2

"$CLIENT" "$S2_SOCK" <<'EOF' >/dev/null
{"cmd":"open","session":"sup1","camera":"cam3"}
{"cmd":"feedback","session":"sup1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]}
EOF
"$CLIENT" "$S2_SOCK" '{"cmd":"rank","session":"sup1","top":-1}' \
  >"$WORK_DIR/s2_rank_before.json"

VICTIM_PID=$(pgrep -f -- "$DB_SUP.*--worker-id=w0" | head -1)
[ -n "$VICTIM_PID" ] || fail "could not find supervised worker w0"
echo "SIGKILLing supervised worker w0 (pid $VICTIM_PID)"
kill -9 "$VICTIM_PID"

RESTARTS=""
for _ in $(seq 1 150); do
  RESTARTS=$(cluster_counter "$S2_SOCK" worker_restarts || true)
  [ -n "$RESTARTS" ] && [ "${RESTARTS%.*}" -ge 1 ] && break
  sleep 0.1
done
[ -n "$RESTARTS" ] && [ "${RESTARTS%.*}" -ge 1 ] \
  || fail "supervisor never restarted the killed worker"
wait_workers_alive "$S2_SOCK" 2
pgrep -f -- "$DB_SUP.*--worker-id=w0" >/dev/null \
  || fail "no replacement w0 process is running"

"$CLIENT" "$S2_SOCK" '{"cmd":"rank","session":"sup1","top":-1}' \
  >"$WORK_DIR/s2_rank_after.json"
cmp "$WORK_DIR/s2_rank_before.json" "$WORK_DIR/s2_rank_after.json" \
  || fail "ranking changed across the supervised restart"
"$CLI" top "$S2_SOCK" --iterations=1 >"$WORK_DIR/s2_top.out" \
  || fail "mivid_cli top failed against the supervised fleet"
grep -q '^coord: .*worker_restarts=' "$WORK_DIR/s2_top.out" \
  || fail "mivid_cli top shows no coordinator robustness counters"
echo "scenario 2 ok: worker_restarts=$RESTARTS, ranking stable"
"$CLIENT" "$S2_SOCK" '{"cmd":"shutdown"}' >/dev/null

# ---------------------------------------------------------------------------
# Scenario 3: both replicas hang — hedged rank, then failover.

echo "== scenario 3: hung replicas force a hedged rank (replication=2) =="
S3_SOCK="$WORK_DIR/s3.sock"
S3_PORTS=()
S3_PIDS=()
for i in 0 1 2; do
  MIVID_METRICS=1 "$CLI" serve "$DB" none --tcp-port=0 --worker-id="s3w$i" \
    >"$WORK_DIR/s3_worker$i.log" 2>&1 &
  S3_PIDS[$i]=$!
  PIDS+=("${S3_PIDS[$i]}")
  S3_PORTS[$i]=$(wait_for_port "$WORK_DIR/s3_worker$i.log")
done
MIVID_METRICS=1 "$CLI" coord "$S3_SOCK" \
  --workers="127.0.0.1:${S3_PORTS[0]},127.0.0.1:${S3_PORTS[1]},127.0.0.1:${S3_PORTS[2]}" \
  --replication=2 --rpc-deadline-ms=3000 --heartbeat-ms=300 \
  >"$WORK_DIR/s3_coord.log" 2>&1 &
PIDS+=("$!")
wait_for_socket "$S3_SOCK"

solo_baseline cam1 hedge1 s3
# The replicated open + feedback touch exactly cam1's two replicas
# (primary + mirror); the third worker stays untouched.
"$CLIENT" "$S3_SOCK" '{"cmd":"stats"}' >"$WORK_DIR/s3_stats0.json"
"$CLIENT" "$S3_SOCK" <<'EOF' >"$WORK_DIR/s3_fleet_conv.out"
{"cmd":"open","session":"hedge1","camera":"cam1"}
{"cmd":"feedback","session":"hedge1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]}
EOF
cmp "$WORK_DIR/s3_conv.out" "$WORK_DIR/s3_fleet_conv.out" \
  || fail "replicated open/feedback differ from solo baseline"
"$CLIENT" "$S3_SOCK" '{"cmd":"stats"}' >"$WORK_DIR/s3_stats1.json"
# The two replicas are the two workers with the largest request deltas
# (primary and mirror each served the open + feedback; the clean worker
# saw at most heartbeat pings).
REPLICAS=()
DELTAS=""
for i in 0 1 2; do
  before=$(requests_for_port "$WORK_DIR/s3_stats0.json" "${S3_PORTS[$i]}")
  after=$(requests_for_port "$WORK_DIR/s3_stats1.json" "${S3_PORTS[$i]}")
  DELTAS+="$(( ${after:-0} - ${before:-0} )) $i"$'\n'
done
REPLICAS=($(printf '%s' "$DELTAS" | sort -rn | head -2 | awk '{print $2}'))
[ "${#REPLICAS[@]}" -eq 2 ] \
  || fail "expected 2 replicas for cam1, found ${#REPLICAS[@]}"
echo "cam1 replicas: s3w${REPLICAS[0]} and s3w${REPLICAS[1]}"

# Restart both replicas on their pinned ports with rank hung: the first
# attempt must miss its deadline slice, the hedged retry must miss too,
# and the failover re-open on the clean third worker must answer. Wait
# for the heartbeat to see both deaths before relaunching.
for i in "${REPLICAS[@]}"; do
  kill -9 "${S3_PIDS[$i]}"
  wait "${S3_PIDS[$i]}" 2>/dev/null || true
done
wait_workers_alive "$S3_SOCK" 1
for i in "${REPLICAS[@]}"; do
  MIVID_METRICS=1 MIVID_FAULTS="worker.rank.hang=1:60000" \
    "$CLI" serve "$DB" none --tcp-port="${S3_PORTS[$i]}" \
    --worker-id="s3w$i" \
    >"$WORK_DIR/s3_worker${i}_hung.log" 2>&1 &
  PIDS+=("$!")
done
wait_workers_alive "$S3_SOCK" 3

START=$(now_ms)
"$CLIENT" "$S3_SOCK" '{"cmd":"rank","session":"hedge1","top":-1}' \
  >"$WORK_DIR/s3_fleet_rank.json"
ELAPSED=$(( $(now_ms) - START ))
cmp "$WORK_DIR/s3_rank.json" "$WORK_DIR/s3_fleet_rank.json" \
  || fail "hedged/failover ranking differs from solo baseline"
[ "$ELAPSED" -lt 8000 ] \
  || fail "rank took ${ELAPSED}ms — blocked on the hang, not the budget"
HEDGES=$(cluster_counter "$S3_SOCK" hedged_ranks || true)
[ -n "$HEDGES" ] && [ "${HEDGES%.*}" -ge 1 ] \
  || fail "cluster/hedged_ranks did not tick (got '$HEDGES')"
echo "scenario 3 ok: rank in ${ELAPSED}ms, hedged_ranks=$HEDGES"
"$CLIENT" "$S3_SOCK" '{"cmd":"shutdown"}' >/dev/null

# ---------------------------------------------------------------------------
# Scenario 4: torn journal write — crash mid-feedback loses nothing.

echo "== scenario 4: torn journal write, failover replays and retries =="
S4_SOCK="$WORK_DIR/s4.sock"
S4_PORTS=()
S4_PIDS=()
for i in 0 1; do
  MIVID_METRICS=1 "$CLI" serve "$DB" none --tcp-port=0 --worker-id="s4w$i" \
    >"$WORK_DIR/s4_worker$i.log" 2>&1 &
  S4_PIDS[$i]=$!
  PIDS+=("${S4_PIDS[$i]}")
  S4_PORTS[$i]=$(wait_for_port "$WORK_DIR/s4_worker$i.log")
done
MIVID_METRICS=1 "$CLI" coord "$S4_SOCK" \
  --workers="127.0.0.1:${S4_PORTS[0]},127.0.0.1:${S4_PORTS[1]}" \
  --heartbeat-ms=300 \
  >"$WORK_DIR/s4_coord.log" 2>&1 &
PIDS+=("$!")
wait_for_socket "$S4_SOCK"

# Find cam2's home worker, then restart it with every journal write torn
# (half the bytes hit the temp file, then the process dies — the rename
# never happens, so the on-disk journal keeps the previous round).
"$CLIENT" "$S4_SOCK" '{"cmd":"stats"}' >"$WORK_DIR/s4_stats0.json"
"$CLIENT" "$S4_SOCK" '{"cmd":"open","session":"s4probe","camera":"cam2"}' >/dev/null
"$CLIENT" "$S4_SOCK" '{"cmd":"stats"}' >"$WORK_DIR/s4_stats1.json"
HOME_IDX=$(busiest_delta_index "$WORK_DIR/s4_stats0.json" \
  "$WORK_DIR/s4_stats1.json" S4_PORTS) \
  || fail "could not locate cam2's home worker"
kill -9 "${S4_PIDS[$HOME_IDX]}"
wait "${S4_PIDS[$HOME_IDX]}" 2>/dev/null || true
wait_workers_alive "$S4_SOCK" 1
MIVID_METRICS=1 MIVID_FAULTS="journal.write.torn=1" \
  "$CLI" serve "$DB" none --tcp-port="${S4_PORTS[$HOME_IDX]}" \
  --worker-id="s4w$HOME_IDX" \
  >"$WORK_DIR/s4_worker${HOME_IDX}_torn.log" 2>&1 &
PIDS+=("$!")
wait_workers_alive "$S4_SOCK" 2

solo_baseline cam2 torn1 s4
# The feedback call crashes the home worker mid-journal-write. The
# coordinator must fail over, replay the intact pre-feedback journal on
# the survivor, retry the feedback there, and answer with the same bytes
# a healthy fleet would have produced.
"$CLIENT" "$S4_SOCK" <<'EOF' >"$WORK_DIR/s4_fleet_conv.out"
{"cmd":"open","session":"torn1","camera":"cam2"}
{"cmd":"feedback","session":"torn1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]}
EOF
cmp "$WORK_DIR/s4_conv.out" "$WORK_DIR/s4_fleet_conv.out" \
  || fail "feedback across the torn-journal crash differs from solo"
"$CLIENT" "$S4_SOCK" '{"cmd":"rank","session":"torn1","top":-1}' \
  >"$WORK_DIR/s4_fleet_rank.json"
cmp "$WORK_DIR/s4_rank.json" "$WORK_DIR/s4_fleet_rank.json" \
  || fail "ranking after torn-journal failover differs from solo baseline"
FAILOVERS=$(cluster_counter "$S4_SOCK" sessions_failed_over || true)
[ -n "$FAILOVERS" ] && [ "${FAILOVERS%.*}" -ge 1 ] \
  || fail "cluster/sessions_failed_over did not tick (got '$FAILOVERS')"
echo "scenario 4 ok: failovers=$FAILOVERS, ranking identical"
"$CLIENT" "$S4_SOCK" '{"cmd":"shutdown"}' >/dev/null

echo "PASS: chaos smoke ($WORK_DIR)"

// mivid_client: command-line client for the mivid_serve daemon.
//
//   mivid_client <socket> <json-request>   send one request, print the
//                                          response line
//   mivid_client <socket>                  read request lines from stdin,
//                                          print one response line each
//                                          (scripted conversations)
//
// Exit status is 0 only when every response was {"ok":true,...}, so
// shell scripts (and the CI smoke test) can assert on whole
// conversations.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "serve/client.h"

using namespace mivid;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: mivid_client <socket-path> [json-request]\n"
               "  with no request argument, reads one request per line "
               "from stdin\n");
  return 2;
}

/// Sends one line; prints the response. Returns 0/1 for ok/error
/// responses, 3 on transport failure.
int RoundTrip(ServeClient& client, const std::string& line) {
  Result<std::string> response = client.Call(line);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().ToString().c_str());
    return 3;
  }
  std::printf("%s\n", response.value().c_str());
  std::fflush(stdout);
  Result<JsonValue> doc = ParseJson(response.value());
  if (doc.ok()) {
    const JsonValue* ok = doc.value().Find("ok");
    if (ok != nullptr && ok->type == JsonValue::Type::kBool &&
        ok->bool_value) {
      return 0;
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) return Usage();

  Result<ServeClient> client = ServeClient::Connect(argv[1]);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 3;
  }

  if (argc == 3) return RoundTrip(client.value(), argv[2]);

  int rc = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (Trim(line).empty()) continue;
    const int one = RoundTrip(client.value(), line);
    if (one == 3) return 3;  // daemon gone: no point reading further
    if (one != 0) rc = 1;
  }
  return rc;
}

// mivid_client: command-line client for mivid_serve and mivid_coord.
//
//   mivid_client <endpoint> <json-request>  send one request, print the
//                                           response line
//   mivid_client <endpoint>                 read request lines from stdin,
//                                           print one response line each
//                                           (scripted conversations)
//
// <endpoint> is a Unix socket path or host:port / tcp:host:port.
//
// RESOURCE_EXHAUSTED responses (admission backpressure) are retried with
// capped exponential backoff + jitter, --max-retries times, before being
// surfaced — a loaded daemon sheds a burst without every scripted client
// dying.
//
// Exit status is 0 only when every response was {"ok":true,...}, so
// shell scripts (and the CI smoke test) can assert on whole
// conversations.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "serve/client.h"

using namespace mivid;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mivid_client [flags] <endpoint> [json-request]\n"
      "  <endpoint>           socket path or host:port (TCP)\n"
      "  --max-retries=N      retries on RESOURCE_EXHAUSTED (5; 0 = off)\n"
      "  --retry-base-ms=N    delay before the first retry (50)\n"
      "  --retry-max-ms=N     backoff cap (2000)\n"
      "  with no request argument, reads one request per line from stdin\n");
  return 2;
}

/// Sends one line; prints the response. Returns 0/1 for ok/error
/// responses, 3 on transport failure.
int RoundTrip(ServeClient& client, const RetryPolicy& retry,
              const std::string& line) {
  Result<std::string> response = client.CallWithRetry(line, retry);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n", response.status().ToString().c_str());
    return 3;
  }
  std::printf("%s\n", response.value().c_str());
  std::fflush(stdout);
  Result<JsonValue> doc = ParseJson(response.value());
  if (doc.ok()) {
    const JsonValue* ok = doc.value().Find("ok");
    if (ok != nullptr && ok->type == JsonValue::Type::kBool &&
        ok->bool_value) {
      return 0;
    }
  }
  return 1;
}

bool ParseIntFlag(const std::string& arg, std::string_view name,
                  int64_t* out, bool* matched) {
  const std::string prefix = "--" + std::string(name) + "=";
  if (!StartsWith(arg, prefix)) {
    *matched = false;
    return true;
  }
  *matched = true;
  return ParseInt64(arg.substr(prefix.size()), out) && *out >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  RetryPolicy retry;
  retry.max_retries = 5;

  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t v = 0;
    bool matched = false;
    if (!ParseIntFlag(arg, "max-retries", &v, &matched)) return Usage();
    if (matched) {
      retry.max_retries = static_cast<int>(v);
      continue;
    }
    if (!ParseIntFlag(arg, "retry-base-ms", &v, &matched)) return Usage();
    if (matched) {
      retry.base_delay_ms = static_cast<int>(v);
      continue;
    }
    if (!ParseIntFlag(arg, "retry-max-ms", &v, &matched)) return Usage();
    if (matched) {
      retry.max_delay_ms = static_cast<int>(v);
      continue;
    }
    if (StartsWith(arg, "--")) return Usage();
    positional.push_back(arg);
  }
  if (positional.empty() || positional.size() > 2) return Usage();

  Result<ServeClient> client = ServeClient::Connect(positional[0]);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 3;
  }

  if (positional.size() == 2) {
    return RoundTrip(client.value(), retry, positional[1]);
  }

  int rc = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (Trim(line).empty()) continue;
    const int one = RoundTrip(client.value(), retry, line);
    if (one == 3) return 3;  // daemon gone: no point reading further
    if (one != 0) rc = 1;
  }
  return rc;
}

// Ablation of the sliding-window size (paper Sec. 5.1: the window size is
// chosen from the typical event length — a car crash spans ~15 frames =
// 3 sampling points, so the paper uses 3). Sweeps the window size and also
// compares the training-set policies (learning from the whole TS inside
// the window is the paper's choice; Sec. 5.3 stresses that the SVM sees
// the entire sequence, not just the best-scored point).

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

using namespace mivid;

namespace {

double RunMilFinal(const ClipAnalysis& analysis, const MilRfOptions& base,
                   int rounds, size_t top_n) {
  MilDataset dataset = analysis.dataset;
  MilRfOptions options = base;
  options.base_dim = analysis.scaler.dimension();
  MilRfEngine engine(&dataset, options);
  const EventModel heuristic = EventModel::Accident(options.base_dim);
  double acc = 0;
  for (int round = 0; round <= rounds; ++round) {
    const auto ranking = engine.trained()
                             ? engine.Rank()
                             : HeuristicRanking(dataset, heuristic,
                                                options.base_dim);
    const auto ids = RankingIds(ranking);
    acc = AccuracyAtN(ids, analysis.truth, top_n);
    if (round == rounds) break;
    for (size_t i = 0; i < ids.size() && i < top_n; ++i) {
      auto it = analysis.truth.find(ids[i]);
      (void)dataset.SetLabel(ids[i], it == analysis.truth.end()
                                         ? BagLabel::kIrrelevant
                                         : it->second);
    }
    if (dataset.CountLabel(BagLabel::kRelevant) > 0) (void)engine.Learn();
  }
  return acc;
}

}  // namespace

int main() {
  std::printf(
      "Window-size sweep (paper: 3 sampling points = 15 frames per crash)\n");
  const ScenarioSpec scenario = MakeTunnelScenario();

  std::vector<std::vector<std::string>> rows;
  for (int window = 1; window <= 6; ++window) {
    ExperimentOptions options;
    options.pipeline = PipelineMode::kVisionTracks;
    options.windows.window_size = window;
    options.windows.stride = window;  // tiling at every size
    Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, options);
    if (!analysis.ok()) continue;
    MilRfOptions mil;
    const double final_acc = RunMilFinal(*analysis, mil, 4, options.top_n);
    rows.push_back({StrFormat("%d (%d frames)", window, window * 5),
                    StrFormat("%zu", analysis->windows.size()),
                    StrFormat("%zu", CountTrajectorySequences(analysis->windows)),
                    StrFormat("%zu", analysis->num_relevant),
                    StrFormat("%.1f%%", 100 * final_acc)});
  }
  std::printf("%s", AsciiTable({"window size", "VS", "TS", "relevant VS",
                                "MIL final accuracy@20"},
                               rows)
                        .c_str());

  std::printf(
      "\nTraining-set policy at the paper's window size "
      "(Sec. 5.3 'highest scored TSs'):\n");
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, options);
  if (!analysis.ok()) return 1;
  std::vector<std::vector<std::string>> policy_rows;
  const struct {
    TrainingSetPolicy policy;
    const char* name;
  } policies[] = {
      {TrainingSetPolicy::kTopScoredInstances, "top-scored TSs (paper)"},
      {TrainingSetPolicy::kAllInstances, "all TSs of relevant VSs"},
      {TrainingSetPolicy::kTopInstancePerBag, "single top TS per VS"},
  };
  for (const auto& p : policies) {
    MilRfOptions mil;
    mil.policy = p.policy;
    const double final_acc = RunMilFinal(*analysis, mil, 4, options.top_n);
    policy_rows.push_back({p.name, StrFormat("%.1f%%", 100 * final_acc)});
  }
  std::printf("%s", AsciiTable({"policy", "MIL final accuracy@20"},
                               policy_rows)
                        .c_str());
  return 0;
}

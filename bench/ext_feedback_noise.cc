// Extension bench: robustness to imperfect relevance feedback.
//
// The paper's users are assumed reliable; real operators mislabel windows
// (fatigue, ambiguous scenes). This bench flips each oracle label with
// probability p and measures how the MIL framework and the weighted-RF
// baseline degrade. Accuracy is always computed against the TRUE labels —
// only the feedback is corrupted.

#include <cstdio>

#include "baseline/weighted_rf.h"
#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

using namespace mivid;

namespace {

struct Pair {
  double mil;
  double weighted;
};

Pair RunWithNoise(const ScenarioSpec& scenario, double error_rate) {
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  Result<ClipAnalysis> analysis_or = AnalyzeScenario(scenario, options);
  if (!analysis_or.ok()) return {0, 0};
  const ClipAnalysis& analysis = analysis_or.value();
  const size_t dim = analysis.scaler.dimension();
  const EventModel heuristic = EventModel::Accident(dim);

  // Noisy feedback labels (what the "user" reports).
  FeedbackOracle noisy(&analysis.ground_truth);
  noisy.SetLabelNoise(error_rate);
  const auto reported = noisy.LabelAll(analysis.windows);

  Pair out{0, 0};
  {  // MIL.
    MilDataset ds = analysis.dataset;
    MilRfEngine engine(&ds, MilRfOptions{});
    for (int round = 0; round <= 4; ++round) {
      const auto ids = RankingIds(
          engine.trained() ? engine.Rank()
                           : HeuristicRanking(ds, heuristic, dim));
      out.mil = AccuracyAtN(ids, analysis.truth, options.top_n);
      if (round == 4) break;
      for (size_t i = 0; i < ids.size() && i < options.top_n; ++i) {
        auto it = reported.find(ids[i]);
        (void)ds.SetLabel(ids[i], it == reported.end()
                                      ? BagLabel::kIrrelevant
                                      : it->second);
      }
      if (ds.CountLabel(BagLabel::kRelevant) > 0) (void)engine.Learn();
    }
  }
  {  // Weighted RF.
    MilDataset ds = analysis.dataset;
    WeightedRfOptions wopts;
    wopts.base_dim = dim;
    WeightedRfEngine engine(&ds, wopts);
    for (int round = 0; round <= 4; ++round) {
      const auto ids = RankingIds(engine.Rank());
      out.weighted = AccuracyAtN(ids, analysis.truth, options.top_n);
      if (round == 4) break;
      for (size_t i = 0; i < ids.size() && i < options.top_n; ++i) {
        auto it = reported.find(ids[i]);
        (void)ds.SetLabel(ids[i], it == reported.end()
                                      ? BagLabel::kIrrelevant
                                      : it->second);
      }
      (void)engine.Learn();
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Feedback label-noise robustness, clip 1 (tunnel)\n");
  std::printf("(final-round accuracy@20 against TRUE labels)\n\n");
  const ScenarioSpec scenario = MakeTunnelScenario();
  std::vector<std::vector<std::string>> rows;
  for (double p : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const Pair result = RunWithNoise(scenario, p);
    rows.push_back({StrFormat("%.0f%%", 100 * p),
                    StrFormat("%.1f%%", 100 * result.mil),
                    StrFormat("%.1f%%", 100 * result.weighted)});
  }
  std::printf("%s", AsciiTable({"label error rate", "MIL_OneClassSVM",
                                "Weighted_RF"},
                               rows)
                        .c_str());
  return 0;
}

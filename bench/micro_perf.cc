// Micro benchmarks (google-benchmark) for the compute-heavy components:
// one-class SMO training, kernel/Gram evaluation, segmentation throughput,
// tracking association, polynomial fitting, codec, and the end-to-end
// retrieval pipeline on a short clip.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "db/feature_store.h"
#include "eval/experiment.h"
#include "ingest/camera_ingestor.h"
#include "linalg/simd.h"
#include "db/video_db.h"
#include "serve/corpus_manager.h"
#include "obs/metrics.h"
#include "retrieval/mil_rf_engine.h"
#include "segment/segmenter.h"
#include "serve/server.h"
#include "svm/one_class_svm.h"
#include "track/assignment.h"
#include "trafficsim/renderer.h"
#include "trajectory/polyfit.h"

namespace mivid {
namespace {

std::vector<Vec> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> points(n, Vec(dim));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Uniform();
  }
  return points;
}

void BM_OneClassSvmTrain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto points = RandomPoints(n, 9, 11);
  OneClassSvmOptions options;
  options.nu = 0.2;
  options.kernel.sigma = 0.5;
  OneClassSvmTrainer trainer(options);
  for (auto _ : state) {
    auto model = trainer.Train(points);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_OneClassSvmTrain)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_OneClassSvmPredict(benchmark::State& state) {
  const auto points = RandomPoints(256, 9, 13);
  OneClassSvmOptions options;
  options.nu = 0.3;
  auto model = OneClassSvmTrainer(options).Train(points);
  const auto queries = RandomPoints(100, 9, 17);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.value().DecisionValue(queries[qi++ % queries.size()]));
  }
}
BENCHMARK(BM_OneClassSvmPredict);

void BM_GramMatrix(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto points = RandomPoints(n, 9, 19);
  KernelParams params;
  for (auto _ : state) {
    GramMatrix gram(params, points);
    benchmark::DoNotOptimize(gram.At(0, 0));
  }
}
BENCHMARK(BM_GramMatrix)->Arg(64)->Arg(256)->Arg(1024);

/// The hot inner primitive on its own: one RBF kernel row (squared
/// distances via the expanded form, then the deterministic exp) against
/// n packed points, under the active dispatch tier.
void BM_RbfKernelRow(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = 9;
  const auto points = RandomPoints(n, dim, 29);
  std::vector<const Vec*> ptrs;
  for (const auto& p : points) ptrs.push_back(&p);
  const PackedFeatureMatrix packed =
      PackedFeatureMatrix::FromPoints(ptrs, dim);
  const Vec& query = points[0];
  const double query_norm = Dot(query, query);
  const double gamma = 1.0 / (2.0 * 0.5 * 0.5);
  std::vector<double> d2(n), row(n);
  const SimdOpsTable& ops = SimdOps();
  for (auto _ : state) {
    ops.expanded_d2_row(query.data(), query_norm, dim, packed.data(),
                        packed.stride(), packed.squared_norms(), n,
                        d2.data());
    ops.rbf_from_d2_row(gamma, d2.data(), n, row.data());
    benchmark::DoNotOptimize(row.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(SimdTierName(ActiveSimdTier()));
}
BENCHMARK(BM_RbfKernelRow)->Arg(256)->Arg(4096);

// --- Threaded variants: range(0) = problem size, range(1) = threads. ---
// Thread count 1 exercises the serial fallback; larger counts exercise
// the pool. Restores the default (MIVID_THREADS / hardware) afterwards.

void BM_GramMatrixThreads(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SetGlobalThreadCount(static_cast<int>(state.range(1)));
  const auto points = RandomPoints(n, 9, 19);
  KernelParams params;
  for (auto _ : state) {
    GramMatrix gram(params, points);
    benchmark::DoNotOptimize(gram.At(0, 0));
  }
  SetGlobalThreadCount(0);
}
BENCHMARK(BM_GramMatrixThreads)
    ->ArgNames({"n", "threads"})
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({1024, 8});

void BM_RankBagsThreads(benchmark::State& state) {
  const size_t num_bags = static_cast<size_t>(state.range(0));
  SetGlobalThreadCount(static_cast<int>(state.range(1)));
  // Corpus: num_bags bags x 8 instances of dim-9 vectors.
  Rng rng(41);
  MilDataset dataset;
  for (size_t b = 0; b < num_bags; ++b) {
    MilBag bag;
    bag.id = static_cast<int>(b);
    for (int t = 0; t < 8; ++t) {
      MilInstance inst;
      inst.bag_id = bag.id;
      inst.instance_id = t;
      inst.features = Vec(9);
      for (auto& v : inst.features) v = rng.Uniform();
      inst.raw_features = inst.features;
      bag.instances.push_back(std::move(inst));
    }
    dataset.AddBag(std::move(bag));
  }
  MilRfOptions options;
  options.base_dim = 3;
  MilRfEngine engine(&dataset, options);
  for (size_t b = 0; b < 8; ++b) {
    (void)dataset.SetLabel(static_cast<int>(b), BagLabel::kRelevant);
  }
  if (!engine.Learn().ok()) {
    state.SkipWithError("Learn failed");
    SetGlobalThreadCount(0);
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Rank());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_bags * 8));
  SetGlobalThreadCount(0);
}
BENCHMARK(BM_RankBagsThreads)
    ->ArgNames({"bags", "threads"})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8});

void BM_SegmentClipThreads(benchmark::State& state) {
  const int frames = static_cast<int>(state.range(0));
  SetGlobalThreadCount(static_cast<int>(state.range(1)));
  // Pre-render a clip with a couple of moving vehicles so SPCPE has work.
  const RoadLayout layout = MakeTunnelLayout();
  Renderer renderer(layout);
  std::vector<Frame> clip;
  clip.reserve(static_cast<size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    VehicleState a, b;
    a.id = 0;
    a.mode = MotionMode::kLaneFollow;
    a.position = {40.0 + f * 0.8, 108};
    a.shade = 220;
    b.id = 1;
    b.mode = MotionMode::kLaneFollow;
    b.position = {280.0 - f * 0.6, 130};
    b.shade = 60;
    clip.push_back(renderer.Render({a, b}));
  }
  for (auto _ : state) {
    // The VisionTracks pattern: sequential background ingest, parallel
    // per-frame SPCPE/cleanup/blob refinement.
    VehicleSegmenter segmenter;
    std::vector<PendingSegmentation> pending;
    pending.reserve(clip.size());
    for (const Frame& frame : clip) pending.push_back(segmenter.Ingest(frame));
    std::vector<std::vector<Blob>> blobs(pending.size());
    ParallelFor(pending.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        blobs[i] = VehicleSegmenter::Refine(pending[i], segmenter.options());
      }
    });
    benchmark::DoNotOptimize(blobs);
  }
  state.SetItemsProcessed(state.iterations() * frames);
  SetGlobalThreadCount(0);
}
BENCHMARK(BM_SegmentClipThreads)
    ->ArgNames({"frames", "threads"})
    ->Args({120, 1})
    ->Args({120, 2})
    ->Args({120, 4})
    ->Args({120, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SegmentFrame(benchmark::State& state) {
  const RoadLayout layout = MakeTunnelLayout();
  Renderer renderer(layout);
  VehicleState v;
  v.id = 0;
  v.mode = MotionMode::kLaneFollow;
  v.position = {160, 110};
  v.shade = 220;
  VehicleSegmenter segmenter;
  // Warm the background model.
  for (int i = 0; i < 15; ++i) {
    (void)segmenter.Process(renderer.Render({}));
  }
  const Frame frame = renderer.Render({v});
  for (auto _ : state) {
    benchmark::DoNotOptimize(segmenter.Process(frame));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(frame.size()));
}
BENCHMARK(BM_SegmentFrame);

void BM_HungarianAssign(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(23);
  Matrix cost(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) cost.At(r, c) = rng.Uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HungarianAssign(cost, 1e9));
  }
}
BENCHMARK(BM_HungarianAssign)->Arg(8)->Arg(32)->Arg(128);

void BM_PolyFit(benchmark::State& state) {
  Rng rng(29);
  Track track;
  for (int f = 0; f <= 500; f += 5) {
    track.points.push_back(
        {f, {f * 0.6 + rng.Gaussian(), 100 + 20 * std::sin(f * 0.01)}, {}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitTrack(track, 4));
  }
}
BENCHMARK(BM_PolyFit);

void BM_TracksCodecRoundtrip(benchmark::State& state) {
  Rng rng(31);
  std::vector<Track> tracks(20);
  for (size_t t = 0; t < tracks.size(); ++t) {
    tracks[t].id = static_cast<int>(t);
    for (int f = 0; f < 500; ++f) {
      tracks[t].points.push_back(
          {f, {rng.Uniform(0, 320), rng.Uniform(0, 240)},
           BBox(0, 0, 16, 8)});
    }
  }
  for (auto _ : state) {
    const std::string bytes = SerializeTracks(tracks);
    auto back = DeserializeTracks(bytes);
    benchmark::DoNotOptimize(back);
    state.counters["bytes"] = static_cast<double>(bytes.size());
  }
}
BENCHMARK(BM_TracksCodecRoundtrip);

/// The serve path end to end minus the socket: RetrievalServer::HandleLine
/// parsing, admission, session lookup, rank, and JSON response encoding.
/// Reports the serve/rank_seconds histogram's p99 (from the metrics
/// registry, i.e. exactly what a production /stats scrape would see) so
/// BENCH_micro.json tracks tail latency, not just the mean.
void BM_ServeRank(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "mivid_bench_serve").string();
  fs::remove_all(dir);
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir, db_options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  std::unique_ptr<VideoDb> db = std::move(opened).value();
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 700;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  TrafficWorld world(scenario);
  const GroundTruth gt = world.Run();
  ClipInfo info;
  info.camera_id = "camA";
  info.total_frames = scenario.total_frames;
  if (!db->IngestClip(info, gt.tracks, gt.incidents).ok()) {
    state.SkipWithError("clip ingest failed");
    return;
  }

  {
    RetrievalServer server(db.get(), ServeOptions{});
    const std::string open_response = server.HandleLine(
        R"({"cmd":"open","session":"bench","camera":"camA"})");
    if (open_response.find("\"ok\":true") == std::string::npos) {
      state.SkipWithError(("open failed: " + open_response).c_str());
      return;
    }
    // The rank_seconds histogram only fills while metrics are on; the
    // registry is process-global, so restore the prior state afterwards.
    const bool metrics_were_enabled = MetricsEnabled();
    EnableMetrics(true);
    MetricsRegistry::Global().GetHistogram("serve/rank_seconds").Reset();
    const std::string rank_line =
        R"({"cmd":"rank","session":"bench","top":20})";
    for (auto _ : state) {
      const std::string response = server.HandleLine(rank_line);
      benchmark::DoNotOptimize(response);
    }
    const HistogramStats rank_stats = MetricsRegistry::Global()
                                          .GetHistogram("serve/rank_seconds")
                                          .Stats();
    state.counters["p50_rank_seconds"] = rank_stats.p50;
    state.counters["p99_rank_seconds"] = rank_stats.p99;
    state.counters["max_rank_seconds"] = rank_stats.max;
    EnableMetrics(metrics_were_enabled);
    server.HandleLine(R"({"cmd":"close","session":"bench"})");
  }
  db.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_ServeRank)->Unit(benchmark::kMillisecond);

std::vector<FrameObservations> BenchFramesFromTracks(
    const std::vector<Track>& tracks, int total_frames) {
  std::vector<FrameObservations> frames(total_frames);
  for (int f = 0; f < total_frames; ++f) frames[f].frame = f;
  for (const Track& track : tracks) {
    for (const TrackPoint& point : track.points) {
      if (point.frame < 0 || point.frame >= total_frames) continue;
      TrackObservation obs;
      obs.track_id = track.id;
      obs.centroid = point.centroid;
      obs.bbox = point.bbox;
      frames[point.frame].observations.push_back(obs);
    }
  }
  return frames;
}

/// Live-ingest throughput: per-frame Observe over a simulated clip plus
/// the final Cut (incremental window extraction, normalization at the
/// cut, clip persistence, bag staging). items/s is stream frames/s — the
/// ceiling on how many cameras one ingest thread can keep live.
void BM_IngestObserve(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "mivid_bench_ingest").string();
  fs::remove_all(dir);
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir, db_options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  std::unique_ptr<VideoDb> db = std::move(opened).value();

  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = static_cast<int>(state.range(0));
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  TrafficWorld world(MakeTunnelScenario(scenario_options));
  const GroundTruth gt = world.Run();
  const std::vector<FrameObservations> frames =
      BenchFramesFromTracks(gt.tracks, gt.total_frames);

  const QueryOptions query;
  IngestOptions ingest_options;
  ingest_options.query = query;
  for (auto _ : state) {
    // Fresh ingestor + manager per iteration: stream frames restart at 0
    // and nothing staged accumulates across iterations.
    CorpusManager corpora(db.get(), query);
    CameraIngestor ingestor("camB", db.get(), &corpora, ingest_options);
    for (const FrameObservations& frame : frames) {
      auto observed = ingestor.Observe(frame);
      benchmark::DoNotOptimize(observed);
    }
    auto cut = ingestor.Cut();
    benchmark::DoNotOptimize(cut);
  }
  state.SetItemsProcessed(state.iterations() * gt.total_frames);
  db.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_IngestObserve)->Arg(400)->Arg(1200);

/// Epoch-publish latency: staging happens off the clock; the timed
/// region is CorpusManager::Publish alone (base + staged tail -> new
/// immutable epoch). Iterations are fixed so the corpus grows to a
/// known size instead of scaling with timer resolution; the histogram
/// counters report what a production /stats scrape would see.
void BM_EpochPublish(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "mivid_bench_publish").string();
  fs::remove_all(dir);
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir, db_options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  std::unique_ptr<VideoDb> db = std::move(opened).value();

  const QueryOptions query;
  CorpusManager corpora(db.get(), query);
  IngestOptions ingest_options;
  ingest_options.query = query;
  CameraIngestor ingestor("camP", db.get(), &corpora, ingest_options);

  const bool metrics_were_enabled = MetricsEnabled();
  EnableMetrics(true);
  MetricsRegistry::Global()
      .GetHistogram("serve/epoch_publish_seconds")
      .Reset();

  int offset = 0;
  uint64_t seed = 31;
  for (auto _ : state) {
    state.PauseTiming();
    TunnelScenarioOptions scenario_options;
    scenario_options.total_frames = 300;
    scenario_options.num_wall_crashes = 1;
    scenario_options.num_sudden_stops = 0;
    scenario_options.num_speeding = 1;
    scenario_options.num_uturns = 0;
    scenario_options.seed = seed++;
    TrafficWorld world(MakeTunnelScenario(scenario_options));
    const GroundTruth gt = world.Run();
    std::vector<FrameObservations> frames =
        BenchFramesFromTracks(gt.tracks, gt.total_frames);
    for (FrameObservations& frame : frames) {
      frame.frame += offset;
      if (!ingestor.Observe(frame).ok()) {
        state.SkipWithError("observe failed");
        return;
      }
    }
    offset += gt.total_frames;
    if (!ingestor.Cut().ok()) {
      state.SkipWithError("cut failed");
      return;
    }
    state.ResumeTiming();
    auto epoch = corpora.Publish("camP");
    benchmark::DoNotOptimize(epoch);
  }
  const HistogramStats publish_stats =
      MetricsRegistry::Global()
          .GetHistogram("serve/epoch_publish_seconds")
          .Stats();
  state.counters["p50_publish_seconds"] = publish_stats.p50;
  state.counters["p99_publish_seconds"] = publish_stats.p99;
  const auto last = corpora.Snapshot("camP");
  if (last.ok()) {
    state.counters["final_epoch"] = static_cast<double>(last.value()->id);
    state.counters["final_bags"] =
        static_cast<double>(last.value()->corpus->dataset.bags().size());
  }
  EnableMetrics(metrics_were_enabled);
  db.reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_EpochPublish)->Unit(benchmark::kMillisecond)->Iterations(24);

void BM_EndToEndPipeline(benchmark::State& state) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 400;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  options.feedback_rounds = 2;
  for (auto _ : state) {
    auto result = RunRfExperiment(scenario, options);
    benchmark::DoNotOptimize(result);
    // Quality counters: per-round accuracy@20 of the MIL method plus SMO
    // effort, so BENCH_micro.json tracks retrieval quality alongside time.
    if (result.ok()) {
      for (const auto& curve : result->curves) {
        if (curve.method != "MIL_OneClassSVM") continue;
        for (size_t r = 0; r < curve.accuracy.size(); ++r) {
          state.counters[StrFormat("acc20_round%zu", r)] = curve.accuracy[r];
        }
      }
      int64_t smo_iterations = 0;
      int64_t support_vectors = 0;
      for (const auto& round : result->mil_summary.rounds) {
        smo_iterations += round.smo_iterations;
        support_vectors += static_cast<int64_t>(round.support_vectors);
      }
      state.counters["smo_iterations"] =
          static_cast<double>(smo_iterations);
      state.counters["support_vectors"] =
          static_cast<double>(support_vectors);
    }
  }
  state.SetItemsProcessed(state.iterations() * scenario.total_frames);
}
BENCHMARK(BM_EndToEndPipeline)->Unit(benchmark::kMillisecond);

void BM_EndToEndPipelineThreads(benchmark::State& state) {
  SetGlobalThreadCount(static_cast<int>(state.range(0)));
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 400;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  options.feedback_rounds = 2;
  for (auto _ : state) {
    auto result = RunRfExperiment(scenario, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * scenario.total_frames);
  SetGlobalThreadCount(0);
}
BENCHMARK(BM_EndToEndPipelineThreads)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mivid

int main(int argc, char** argv) {
  // Stamp the report with whether THIS binary (not the benchmark
  // library, whose own build type is out of our hands) was compiled
  // optimized; bench/run_micro_bench.sh refuses to record numbers
  // without the "optimized" stamp.
#if defined(__OPTIMIZE__) && defined(NDEBUG)
  benchmark::AddCustomContext("mivid_build", "optimized");
#else
  benchmark::AddCustomContext("mivid_build", "unoptimized");
#endif
  benchmark::AddCustomContext(
      "mivid_simd", mivid::SimdTierName(mivid::ActiveSimdTier()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

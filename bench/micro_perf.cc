// Micro benchmarks (google-benchmark) for the compute-heavy components:
// one-class SMO training, kernel/Gram evaluation, segmentation throughput,
// tracking association, polynomial fitting, codec, and the end-to-end
// retrieval pipeline on a short clip.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "db/feature_store.h"
#include "eval/experiment.h"
#include "segment/segmenter.h"
#include "svm/one_class_svm.h"
#include "track/assignment.h"
#include "trafficsim/renderer.h"
#include "trajectory/polyfit.h"

namespace mivid {
namespace {

std::vector<Vec> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> points(n, Vec(dim));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Uniform();
  }
  return points;
}

void BM_OneClassSvmTrain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto points = RandomPoints(n, 9, 11);
  OneClassSvmOptions options;
  options.nu = 0.2;
  options.kernel.sigma = 0.5;
  OneClassSvmTrainer trainer(options);
  for (auto _ : state) {
    auto model = trainer.Train(points);
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_OneClassSvmTrain)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_OneClassSvmPredict(benchmark::State& state) {
  const auto points = RandomPoints(256, 9, 13);
  OneClassSvmOptions options;
  options.nu = 0.3;
  auto model = OneClassSvmTrainer(options).Train(points);
  const auto queries = RandomPoints(100, 9, 17);
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.value().DecisionValue(queries[qi++ % queries.size()]));
  }
}
BENCHMARK(BM_OneClassSvmPredict);

void BM_GramMatrix(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto points = RandomPoints(n, 9, 19);
  KernelParams params;
  for (auto _ : state) {
    GramMatrix gram(params, points);
    benchmark::DoNotOptimize(gram.At(0, 0));
  }
}
BENCHMARK(BM_GramMatrix)->Arg(64)->Arg(256);

void BM_SegmentFrame(benchmark::State& state) {
  const RoadLayout layout = MakeTunnelLayout();
  Renderer renderer(layout);
  VehicleState v;
  v.id = 0;
  v.mode = MotionMode::kLaneFollow;
  v.position = {160, 110};
  v.shade = 220;
  VehicleSegmenter segmenter;
  // Warm the background model.
  for (int i = 0; i < 15; ++i) {
    (void)segmenter.Process(renderer.Render({}));
  }
  const Frame frame = renderer.Render({v});
  for (auto _ : state) {
    benchmark::DoNotOptimize(segmenter.Process(frame));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(frame.size()));
}
BENCHMARK(BM_SegmentFrame);

void BM_HungarianAssign(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(23);
  Matrix cost(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) cost.At(r, c) = rng.Uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HungarianAssign(cost, 1e9));
  }
}
BENCHMARK(BM_HungarianAssign)->Arg(8)->Arg(32)->Arg(128);

void BM_PolyFit(benchmark::State& state) {
  Rng rng(29);
  Track track;
  for (int f = 0; f <= 500; f += 5) {
    track.points.push_back(
        {f, {f * 0.6 + rng.Gaussian(), 100 + 20 * std::sin(f * 0.01)}, {}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitTrack(track, 4));
  }
}
BENCHMARK(BM_PolyFit);

void BM_TracksCodecRoundtrip(benchmark::State& state) {
  Rng rng(31);
  std::vector<Track> tracks(20);
  for (size_t t = 0; t < tracks.size(); ++t) {
    tracks[t].id = static_cast<int>(t);
    for (int f = 0; f < 500; ++f) {
      tracks[t].points.push_back(
          {f, {rng.Uniform(0, 320), rng.Uniform(0, 240)},
           BBox(0, 0, 16, 8)});
    }
  }
  for (auto _ : state) {
    const std::string bytes = SerializeTracks(tracks);
    auto back = DeserializeTracks(bytes);
    benchmark::DoNotOptimize(back);
    state.counters["bytes"] = static_cast<double>(bytes.size());
  }
}
BENCHMARK(BM_TracksCodecRoundtrip);

void BM_EndToEndPipeline(benchmark::State& state) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 400;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  options.feedback_rounds = 2;
  for (auto _ : state) {
    auto result = RunRfExperiment(scenario, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * scenario.total_frames);
}
BENCHMARK(BM_EndToEndPipeline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mivid

BENCHMARK_MAIN();

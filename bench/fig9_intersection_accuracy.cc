// Reproduces paper Fig. 9: retrieval accuracy within the top-20 VSs over
// five rounds on clip 2 (road intersection, multi-vehicle accidents).
//
// Paper shape: the MIL framework improves across rounds (gains smaller
// than on clip 1); Weighted_RF degrades right after the initial iteration
// and stays below the proposed method.

#include <cstdio>

#include "eval/experiment.h"
#include "obs/export.h"

int main(int argc, char** argv) {
  using namespace mivid;

  Result<ObsOptions> obs = ExtractObsFlags(&argc, argv);
  if (!obs.ok()) {
    std::fprintf(stderr, "usage: fig9_intersection_accuracy %s\nerror: %s\n",
                 ObsFlagsHelp(), obs.status().ToString().c_str());
    return 2;
  }

  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  // Clip 2 is only 592 frames; with non-overlapping windows the corpus is
  // ~37 VSs and a top-20 metric saturates. The paper's sliding window is
  // "consecutive yet overlapped" (Fig. 4), so this experiment slides by
  // one sampling point.
  options.windows.stride = 1;

  const ScenarioSpec scenario = MakeIntersectionScenario();
  Result<ExperimentResult> result = RunRfExperiment(scenario, options);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Fig. 9 analogue — clip 2 (intersection), accuracy@%zu per round\n\n",
      options.top_n);
  std::printf("%s\n", FormatExperimentResult(result.value()).c_str());

  const Status obs_status = WriteObsOutputs(obs.value());
  if (!obs_status.ok()) {
    std::fprintf(stderr, "error: %s\n", obs_status.ToString().c_str());
    return 1;
  }
  return 0;
}

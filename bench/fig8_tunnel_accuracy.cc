// Reproduces paper Fig. 8: retrieval accuracy within the top-20 VSs over
// five rounds (Initial + 4 feedback rounds) on clip 1 (tunnel), comparing
// the proposed MIL/One-class-SVM framework with weighted relevance
// feedback.
//
// Paper shape: both methods start equal (identical initial round); the MIL
// framework climbs steadily ~40% -> ~60%; Weighted_RF gains little (~10%)
// and oscillates in the 35-50% band.
//
// The full vision pipeline is used: frames are rendered, vehicles
// segmented (background subtraction + SPCPE) and tracked, trajectories
// featurized, windows extracted, and the oracle plays the user.

#include <cstdio>

#include "eval/experiment.h"
#include "obs/export.h"

int main(int argc, char** argv) {
  using namespace mivid;

  Result<ObsOptions> obs = ExtractObsFlags(&argc, argv);
  if (!obs.ok()) {
    std::fprintf(stderr, "usage: fig8_tunnel_accuracy %s\nerror: %s\n",
                 ObsFlagsHelp(), obs.status().ToString().c_str());
    return 2;
  }

  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;

  const ScenarioSpec scenario = MakeTunnelScenario();
  Result<ExperimentResult> result = RunRfExperiment(scenario, options);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Fig. 8 analogue — clip 1 (tunnel), accuracy@%zu per round\n\n",
              options.top_n);
  std::printf("%s\n", FormatExperimentResult(result.value()).c_str());

  const Status obs_status = WriteObsOutputs(obs.value());
  if (!obs_status.ok()) {
    std::fprintf(stderr, "error: %s\n", obs_status.ToString().c_str());
    return 1;
  }
  return 0;
}

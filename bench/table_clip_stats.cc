// Reproduces the clip statistics quoted in paper Sec. 6.2:
//   clip 1 (tunnel): 2504 frames, 109 TSs of 15 frames each;
//   clip 2 (intersection): 592 frames, 168 TSs ("more vehicles are present").
// Prints the same statistics for the synthetic stand-in clips, via both
// the ground-truth-track path and the full vision pipeline.

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"

namespace {

using namespace mivid;

void Report(const char* label, const ScenarioSpec& scenario,
            PipelineMode mode, std::vector<std::vector<std::string>>* rows) {
  ExperimentOptions options;
  options.pipeline = mode;
  Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 analysis.status().ToString().c_str());
    return;
  }
  size_t incidents = 0, accident_incidents = 0;
  for (const auto& rec : analysis->ground_truth.incidents) {
    ++incidents;
    accident_incidents += IsAccidentType(rec.type) ? 1 : 0;
  }
  rows->push_back({label,
                   mode == PipelineMode::kVisionTracks ? "vision" : "truth",
                   StrFormat("%d", scenario.total_frames),
                   StrFormat("%zu", analysis->tracks.size()),
                   StrFormat("%zu", analysis->windows.size()),
                   StrFormat("%zu", CountTrajectorySequences(analysis->windows)),
                   StrFormat("%zu", analysis->num_relevant),
                   StrFormat("%zu (%zu accident)", incidents,
                             accident_incidents)});
}

}  // namespace

int main() {
  std::printf("Clip statistics (paper Sec. 6.2 analogue)\n");
  std::printf("Paper: clip1 = 2504 frames, 109 TS; clip2 = 592 frames, 168 TS\n\n");

  const ScenarioSpec tunnel = MakeTunnelScenario();
  const ScenarioSpec intersection = MakeIntersectionScenario();

  std::vector<std::vector<std::string>> rows;
  Report("tunnel (clip1)", tunnel, PipelineMode::kGroundTruthTracks, &rows);
  Report("tunnel (clip1)", tunnel, PipelineMode::kVisionTracks, &rows);
  Report("intersection (clip2)", intersection,
         PipelineMode::kGroundTruthTracks, &rows);
  Report("intersection (clip2)", intersection, PipelineMode::kVisionTracks,
         &rows);

  std::printf("%s\n",
              AsciiTable({"clip", "pipeline", "frames", "tracks", "VS", "TS",
                          "relevant VS", "incidents"},
                         rows)
                  .c_str());
  return 0;
}

// Diagnostic (not a paper figure): dissects the RF dynamics on a scenario.
// Prints per-window truth vs heuristic score vs round-1 SVM decision, the
// training-set composition, and per-label feature statistics.

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "linalg/stats.h"

using namespace mivid;

int main(int argc, char** argv) {
  const bool intersection = argc > 1 && std::string(argv[1]) == "intersection";
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  const ScenarioSpec scenario =
      intersection ? MakeIntersectionScenario() : MakeTunnelScenario();

  Result<ClipAnalysis> analysis_or = AnalyzeScenario(scenario, options);
  if (!analysis_or.ok()) {
    std::fprintf(stderr, "%s\n", analysis_or.status().ToString().c_str());
    return 1;
  }
  const ClipAnalysis& analysis = analysis_or.value();
  const size_t base_dim = analysis.scaler.dimension();
  const EventModel heuristic = EventModel::Accident(base_dim);

  // Per-label stats of heuristic instance scores.
  RunningStats rel_stats, irr_stats;
  for (const auto& bag : analysis.dataset.bags()) {
    const bool relevant =
        analysis.truth.at(bag.id) == BagLabel::kRelevant;
    const double s = HeuristicBagScore(bag, heuristic, base_dim);
    (relevant ? rel_stats : irr_stats).Add(s);
  }
  std::printf("bag heuristic scores: relevant n=%zu mean=%.3f [%.3f..%.3f]\n",
              rel_stats.count(), rel_stats.mean(), rel_stats.min(),
              rel_stats.max());
  std::printf("                      irrelevant n=%zu mean=%.3f [%.3f..%.3f]\n",
              irr_stats.count(), irr_stats.mean(), irr_stats.min(),
              irr_stats.max());

  // Round 0: heuristic ranking, oracle feedback on top-20.
  MilDataset dataset = analysis.dataset;
  const auto ranking0 = HeuristicRanking(dataset, heuristic, base_dim);
  const auto ids0 = RankingIds(ranking0);
  std::printf("\ninitial top-20 (score, truth):\n");
  for (size_t i = 0; i < 20 && i < ranking0.size(); ++i) {
    const bool rel = analysis.truth.at(ranking0[i].bag_id) ==
                     BagLabel::kRelevant;
    std::printf("  vs=%3d score=%.3f %s\n", ranking0[i].bag_id,
                ranking0[i].score, rel ? "REL" : "-");
  }
  std::printf("accuracy@20 = %.2f\n",
              AccuracyAtN(ids0, analysis.truth, 20));

  for (size_t i = 0; i < 20 && i < ids0.size(); ++i) {
    (void)dataset.SetLabel(ids0[i], analysis.truth.at(ids0[i]));
  }

  MilRfOptions mil;
  mil.base_dim = base_dim;
  MilRfEngine engine(&dataset, mil);
  const Status s = engine.Learn();
  if (!s.ok()) {
    std::fprintf(stderr, "learn: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nround-1 model: nu=%.3f train=%zu SVs=%zu sigma=%.3f\n",
              engine.last_nu(), engine.last_training_size(),
              engine.model()->num_support_vectors(),
              engine.model()->kernel().sigma);

  const auto ranking1 = engine.Rank();
  std::printf("\nround-1 top-25 (decision, heuristic, truth):\n");
  for (size_t i = 0; i < 25 && i < ranking1.size(); ++i) {
    const MilBag* bag = dataset.FindBag(ranking1[i].bag_id);
    const bool rel =
        analysis.truth.at(ranking1[i].bag_id) == BagLabel::kRelevant;
    std::printf("  vs=%3d f=%+.4f h=%.3f %s%s\n", ranking1[i].bag_id,
                ranking1[i].score, HeuristicBagScore(*bag, heuristic, base_dim),
                rel ? "REL" : "-",
                bag->label == BagLabel::kRelevant ? " (labeled)" : "");
  }
  std::printf("accuracy@20 = %.2f\n",
              AccuracyAtN(RankingIds(ranking1), analysis.truth, 20));

  // Weighted baseline: weights per round.
  {
    MilDataset wdataset = analysis.dataset;
    WeightedRfOptions wopts;
    wopts.base_dim = base_dim;
    WeightedRfEngine wengine(&wdataset, wopts);
    std::map<int, BagLabel> given;
    for (int round = 0; round < 4; ++round) {
      const auto ranking = wengine.Rank();
      const auto ids = RankingIds(ranking);
      std::printf("\nweighted round %d: acc@20=%.2f weights=[", round,
                  AccuracyAtN(ids, analysis.truth, 20));
      for (double w : wengine.weights()) std::printf("%.3f ", w);
      std::printf("]\n");
      for (size_t i = 0; i < 20 && i < ids.size(); ++i) {
        (void)wdataset.SetLabel(ids[i], analysis.truth.at(ids[i]));
      }
      (void)wengine.Learn();
    }
  }

  // Where do the relevant windows rank now?
  std::printf("\nranks of all relevant windows in round-1 ranking:\n  ");
  for (size_t i = 0; i < ranking1.size(); ++i) {
    if (analysis.truth.at(ranking1[i].bag_id) == BagLabel::kRelevant) {
      std::printf("%zu ", i);
    }
  }
  std::printf("\n");
  return 0;
}

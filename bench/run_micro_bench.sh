#!/usr/bin/env bash
# Runs the micro benchmarks and writes BENCH_micro.json so the perf
# trajectory is tracked across PRs. BM_EndToEndPipeline also reports
# quality counters (per-round MIL accuracy@20 as acc20_round<r>, summed
# SMO iterations and support-vector counts), so the JSON tracks retrieval
# quality next to wall time.
#
# The script builds micro_perf with CMAKE_BUILD_TYPE=Release when it is
# missing, and refuses to record numbers unless the binary stamps itself
# "optimized" (the mivid_build custom context, set from __OPTIMIZE__ +
# NDEBUG at compile time). Note google-benchmark's own library_build_type
# context reports how libbenchmark was built, which a distro debug
# package makes "debug" even for fully optimized mivid code — that field
# is NOT the gate.
#
# Usage: bench/run_micro_bench.sh [build-dir] [out-file] [benchmark-filter]
#   build-dir  defaults to ./build
#   out-file   defaults to ./BENCH_micro.json
#   filter     google-benchmark regex, defaults to all benchmarks
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_micro.json}"
FILTER="${3:-.}"

BIN="${BUILD_DIR}/bench/micro_perf"
if [[ ! -x "${BIN}" ]]; then
  echo "building ${BIN} (Release)" >&2
  cmake -S . -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release
  cmake --build "${BUILD_DIR}" -j --target micro_perf
fi

"${BIN}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json \
  --benchmark_out="${OUT_FILE}" \
  --benchmark_out_format=json

if ! grep -q '"mivid_build": "optimized"' "${OUT_FILE}"; then
  echo "error: ${BIN} was compiled without optimization; numbers in" \
       "${OUT_FILE} are not comparable. Reconfigure the build dir with" \
       "-DCMAKE_BUILD_TYPE=Release (or RelWithDebInfo) and rerun." >&2
  rm -f "${OUT_FILE}"
  exit 1
fi
echo "wrote ${OUT_FILE}"

#!/usr/bin/env bash
# Runs the micro benchmarks and writes BENCH_micro.json so the perf
# trajectory is tracked across PRs. BM_EndToEndPipeline also reports
# quality counters (per-round MIL accuracy@20 as acc20_round<r>, summed
# SMO iterations and support-vector counts), so the JSON tracks retrieval
# quality next to wall time.
#
# Usage: bench/run_micro_bench.sh [build-dir] [out-file] [benchmark-filter]
#   build-dir  defaults to ./build
#   out-file   defaults to ./BENCH_micro.json
#   filter     google-benchmark regex, defaults to all benchmarks
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_micro.json}"
FILTER="${3:-.}"

BIN="${BUILD_DIR}/bench/micro_perf"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not built; run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j --target micro_perf" >&2
  exit 1
fi

"${BIN}" \
  --benchmark_filter="${FILTER}" \
  --benchmark_format=json \
  --benchmark_out="${OUT_FILE}" \
  --benchmark_out_format=json
echo "wrote ${OUT_FILE}"

// Extension bench (beyond the paper's evaluation): compares the paper's
// One-class-SVM MIL engine against the MIL literature it surveys in
// Sec. 2.1 — MI-SVM (Andrews et al. [16]) and EM-DD (Zhang & Goldman [7])
// — plus the weighted-RF baseline, all under the same relevance-feedback
// protocol on both clips.

#include <cstdio>
#include <functional>

#include "baseline/rocchio.h"
#include "baseline/weighted_rf.h"
#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "mil/citation_knn.h"
#include "mil/diverse_density.h"
#include "mil/mi_svm.h"

using namespace mivid;

namespace {

using RankFn = std::function<std::vector<ScoredBag>()>;
using LearnFn = std::function<void()>;

std::vector<double> RunProtocol(const ClipAnalysis& analysis,
                                MilDataset* dataset, int rounds, size_t top_n,
                                const RankFn& rank, const LearnFn& learn) {
  std::vector<double> curve;
  for (int round = 0; round <= rounds; ++round) {
    const auto ids = RankingIds(rank());
    curve.push_back(AccuracyAtN(ids, analysis.truth, top_n));
    if (round == rounds) break;
    for (size_t i = 0; i < ids.size() && i < top_n; ++i) {
      auto it = analysis.truth.find(ids[i]);
      (void)dataset->SetLabel(ids[i], it == analysis.truth.end()
                                          ? BagLabel::kIrrelevant
                                          : it->second);
    }
    learn();
  }
  return curve;
}

void RunClip(const char* label, const ScenarioSpec& scenario, int stride) {
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  options.windows.stride = stride;
  Result<ClipAnalysis> analysis_or = AnalyzeScenario(scenario, options);
  if (!analysis_or.ok()) {
    std::fprintf(stderr, "%s\n", analysis_or.status().ToString().c_str());
    return;
  }
  const ClipAnalysis& analysis = analysis_or.value();
  const size_t dim = analysis.scaler.dimension();
  const EventModel heuristic = EventModel::Accident(dim);
  const int rounds = 4;

  std::vector<std::pair<std::string, std::vector<double>>> curves;

  {  // Paper method: One-class SVM.
    MilDataset ds = analysis.dataset;
    MilRfOptions mil;
    mil.base_dim = dim;
    MilRfEngine engine(&ds, mil);
    curves.emplace_back(
        "OneClassSVM (paper)",
        RunProtocol(
            analysis, &ds, rounds, options.top_n,
            [&] {
              return engine.trained()
                         ? engine.Rank()
                         : HeuristicRanking(ds, heuristic, dim);
            },
            [&] {
              if (ds.CountLabel(BagLabel::kRelevant) > 0) {
                (void)engine.Learn();
              }
            }));
  }
  {  // MI-SVM.
    MilDataset ds = analysis.dataset;
    MiSvmEngine engine(&ds, MiSvmOptions{});
    curves.emplace_back(
        "MI-SVM",
        RunProtocol(
            analysis, &ds, rounds, options.top_n,
            [&] {
              return engine.trained()
                         ? engine.Rank()
                         : HeuristicRanking(ds, heuristic, dim);
            },
            [&] { (void)engine.Learn(); }));
  }
  {  // EM-DD.
    MilDataset ds = analysis.dataset;
    DiverseDensityEngine engine(&ds, DiverseDensityOptions{});
    curves.emplace_back(
        "EM-DD",
        RunProtocol(
            analysis, &ds, rounds, options.top_n,
            [&] {
              return engine.trained()
                         ? engine.Rank()
                         : HeuristicRanking(ds, heuristic, dim);
            },
            [&] {
              if (ds.CountLabel(BagLabel::kRelevant) > 0) {
                (void)engine.Learn();
              }
            }));
  }
  {  // Citation-kNN (lazy MIL, ref [10]).
    MilDataset ds = analysis.dataset;
    CitationKnnEngine engine(&ds, CitationKnnOptions{});
    curves.emplace_back(
        "Citation-kNN",
        RunProtocol(
            analysis, &ds, rounds, options.top_n,
            [&] {
              return engine.trained()
                         ? engine.Rank()
                         : HeuristicRanking(ds, heuristic, dim);
            },
            [&] { (void)engine.Learn(); }));
  }
  {  // Weighted RF.
    MilDataset ds = analysis.dataset;
    WeightedRfOptions wopts;
    wopts.base_dim = dim;
    WeightedRfEngine engine(&ds, wopts);
    curves.emplace_back("Weighted_RF",
                        RunProtocol(
                            analysis, &ds, rounds, options.top_n,
                            [&] { return engine.Rank(); },
                            [&] { (void)engine.Learn(); }));
  }
  {  // Rocchio query-point movement (classic RF, Sec. 2.2).
    MilDataset ds = analysis.dataset;
    RocchioEngine engine(&ds, RocchioOptions{});
    curves.emplace_back(
        "Rocchio",
        RunProtocol(
            analysis, &ds, rounds, options.top_n,
            [&] {
              return engine.trained()
                         ? engine.Rank()
                         : HeuristicRanking(ds, heuristic, dim);
            },
            [&] { (void)engine.Learn(); }));
  }

  std::printf("\n%s (windows=%zu, relevant=%zu)\n", label,
              analysis.windows.size(), analysis.num_relevant);
  std::vector<std::string> header{"method", "Initial", "First", "Second",
                                  "Third", "Fourth"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, curve] : curves) {
    std::vector<std::string> row{name};
    for (double a : curve) row.push_back(StrFormat("%.1f%%", 100 * a));
    rows.push_back(std::move(row));
  }
  std::printf("%s", AsciiTable(header, rows).c_str());
}

}  // namespace

int main() {
  std::printf("MIL method comparison under the paper's RF protocol\n");
  RunClip("clip 1 (tunnel)", MakeTunnelScenario(), /*stride=*/3);
  RunClip("clip 2 (intersection)", MakeIntersectionScenario(), /*stride=*/1);
  return 0;
}

// Reproduces paper Fig. 2: least-squares fitting of a vehicle trajectory's
// centroids with a 4th-degree polynomial (Sec. 3.2, Eq. 1-2). Renders the
// centroids and the fitted curve as ASCII art and reports the residual.

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/rng.h"
#include "trajectory/polyfit.h"

int main() {
  using namespace mivid;

  // A curved trajectory with centroid measurement noise, like the tracked
  // centroids in the paper's figure.
  Rng rng(2007);
  Track track;
  track.id = 0;
  for (int f = 0; f <= 150; f += 5) {
    const double t = f / 150.0;
    const double x = 20 + 280 * t;
    const double y =
        180 - 220 * t + 340 * t * t - 260 * t * t * t + 80 * t * t * t * t;
    track.points.push_back(
        {f, {x + rng.Gaussian(0, 1.2), y + rng.Gaussian(0, 1.2)}, {}});
  }

  Result<FittedTrajectory> fit = FitTrack(track, 4);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.status().ToString().c_str());
    return 1;
  }

  std::vector<double> xs, ys, fx, fy;
  for (const auto& p : track.points) {
    xs.push_back(p.centroid.x);
    ys.push_back(-p.centroid.y);  // flip so "up" reads up in the terminal
  }
  for (double t = 0; t <= 150; t += 1.5) {
    const Point2 p = fit->Eval(t);
    fx.push_back(p.x);
    fy.push_back(-p.y);
  }

  PlotOptions options;
  options.title =
      "Fig. 2 analogue - 4th degree least-squares fit of tracked centroids";
  options.height = 22;
  std::printf("%s", AsciiScatter(xs, ys, fx, fy, options).c_str());
  std::printf("\nresidual RMS = %.3f px over %zu centroids\n", fit->rms_error,
              track.points.size());

  // The derivative gives the velocity (tangent) along the curve.
  std::printf("velocity at t=0:   (%.2f, %.2f) px/frame\n",
              fit->Velocity(0).x, fit->Velocity(0).y);
  std::printf("velocity at t=75:  (%.2f, %.2f) px/frame\n",
              fit->Velocity(75).x, fit->Velocity(75).y);
  std::printf("velocity at t=150: (%.2f, %.2f) px/frame\n",
              fit->Velocity(150).x, fit->Velocity(150).y);

  // Degree sweep: residual vs model capacity.
  std::printf("\nresidual RMS by degree:\n");
  for (int degree = 1; degree <= 6; ++degree) {
    Result<FittedTrajectory> d = FitTrack(track, degree);
    if (d.ok()) std::printf("  degree %d: %.3f px\n", degree, d->rms_error);
  }
  return 0;
}

// Ablation from paper Sec. 6.2: the weighted-RF baseline was tried with
// three weight normalizations — none, linear [0,1], and percentage-of-
// total — and "the latter outperforms both the linear normalization and
// no normalization at all". This bench reruns the protocol with each
// normalization on both clips.

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

using namespace mivid;

namespace {

std::vector<double> RunWeighted(const ClipAnalysis& analysis,
                                WeightNormalization normalization,
                                int rounds, size_t top_n) {
  MilDataset dataset = analysis.dataset;
  WeightedRfOptions options;
  options.normalization = normalization;
  options.base_dim = analysis.scaler.dimension();
  WeightedRfEngine engine(&dataset, options);
  std::vector<double> curve;
  for (int round = 0; round <= rounds; ++round) {
    const auto ids = RankingIds(engine.Rank());
    curve.push_back(AccuracyAtN(ids, analysis.truth, top_n));
    for (size_t i = 0; i < ids.size() && i < top_n; ++i) {
      auto it = analysis.truth.find(ids[i]);
      (void)dataset.SetLabel(ids[i], it == analysis.truth.end()
                                         ? BagLabel::kIrrelevant
                                         : it->second);
    }
    (void)engine.Learn();
  }
  return curve;
}

void RunClip(const char* label, const ScenarioSpec& scenario,
             const ExperimentOptions& options) {
  Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return;
  }
  std::printf("\n%s (windows=%zu, relevant=%zu)\n", label,
              analysis->windows.size(), analysis->num_relevant);
  std::vector<std::vector<std::string>> rows;
  double best_final = -1;
  std::string best_name;
  for (WeightNormalization norm :
       {WeightNormalization::kNone, WeightNormalization::kLinear,
        WeightNormalization::kPercentage}) {
    const auto curve = RunWeighted(*analysis, norm, 4, options.top_n);
    std::vector<std::string> row{WeightNormalizationName(norm)};
    double mean_after_feedback = 0;
    for (size_t r = 0; r < curve.size(); ++r) {
      row.push_back(StrFormat("%.1f%%", 100 * curve[r]));
      if (r > 0) mean_after_feedback += curve[r];
    }
    mean_after_feedback /= static_cast<double>(curve.size() - 1);
    row.push_back(StrFormat("%.1f%%", 100 * mean_after_feedback));
    rows.push_back(std::move(row));
    if (mean_after_feedback > best_final) {
      best_final = mean_after_feedback;
      best_name = WeightNormalizationName(norm);
    }
  }
  std::printf("%s", AsciiTable({"normalization", "Initial", "First", "Second",
                                "Third", "Fourth", "mean(fb rounds)"},
                               rows)
                        .c_str());
  std::printf("best by mean feedback-round accuracy: %s\n", best_name.c_str());
}

}  // namespace

int main() {
  std::printf(
      "Weight-normalization ablation (paper Sec. 6.2; expected best: "
      "percentage)\n"
      "Note: ranking by a weighted square sum is invariant to positive\n"
      "scaling of the weight vector, so 'none' and 'percentage' provably\n"
      "produce identical rankings here; the interesting contrast is\n"
      "'linear', whose zero-minimum defect (the paper's own observation)\n"
      "eliminates one feature entirely.\n");
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  RunClip("clip 1 (tunnel)", MakeTunnelScenario(), options);
  ExperimentOptions inter_options = options;
  inter_options.windows.stride = 1;  // as in the Fig. 9 experiment
  RunClip("clip 2 (intersection)", MakeIntersectionScenario(), inter_options);
  return 0;
}

// Ablation of the Eq. 9 adjustment term z (paper Sec. 5.3: "z is a small
// number used to adjust delta ... z = 0.05 works well"). Sweeps z on both
// clips and reports the final-round accuracy of the MIL framework.

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

using namespace mivid;

namespace {

double RunMil(const ClipAnalysis& analysis, double z, int rounds,
              size_t top_n, double* mean_out) {
  MilDataset dataset = analysis.dataset;
  MilRfOptions options;
  options.base_dim = analysis.scaler.dimension();
  options.z = z;
  // Eq. 9's h/H accounting is only active when the training set contains
  // every TS of the relevant VSs; under the top-scored policy h/H ~ 1 and
  // nu clamps to its floor for any z.
  options.policy = TrainingSetPolicy::kAllInstances;
  MilRfEngine engine(&dataset, options);
  const EventModel heuristic = EventModel::Accident(options.base_dim);
  double final_acc = 0, mean = 0;
  for (int round = 0; round <= rounds; ++round) {
    const auto ranking = engine.trained()
                             ? engine.Rank()
                             : HeuristicRanking(dataset, heuristic,
                                                options.base_dim);
    const auto ids = RankingIds(ranking);
    final_acc = AccuracyAtN(ids, analysis.truth, top_n);
    if (round > 0) mean += final_acc;
    if (round == rounds) break;
    for (size_t i = 0; i < ids.size() && i < top_n; ++i) {
      auto it = analysis.truth.find(ids[i]);
      (void)dataset.SetLabel(ids[i], it == analysis.truth.end()
                                         ? BagLabel::kIrrelevant
                                         : it->second);
    }
    if (dataset.CountLabel(BagLabel::kRelevant) > 0) (void)engine.Learn();
  }
  *mean_out = mean / rounds;
  return final_acc;
}

}  // namespace

int main() {
  std::printf("z sweep for Eq. 9 delta = 1 - (h/H + z); paper picks z=0.05\n");
  const double zs[] = {0.0, 0.02, 0.05, 0.10, 0.15, 0.25, 0.40};

  struct ClipSetup {
    const char* label;
    ScenarioSpec scenario;
    int stride;
  };
  std::vector<ClipSetup> clips;
  clips.push_back({"clip 1 (tunnel)", MakeTunnelScenario(), 3});
  clips.push_back({"clip 2 (intersection)", MakeIntersectionScenario(), 1});

  for (auto& clip : clips) {
    ExperimentOptions options;
    options.pipeline = PipelineMode::kVisionTracks;
    options.windows.stride = clip.stride;
    Result<ClipAnalysis> analysis = AnalyzeScenario(clip.scenario, options);
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s\n", clip.label);
    std::vector<std::pair<std::string, double>> bars;
    for (double z : zs) {
      double mean = 0;
      const double final_acc =
          RunMil(*analysis, z, 4, options.top_n, &mean);
      bars.emplace_back(StrFormat("z=%.2f final=%.0f%%", z, 100 * final_acc),
                        100 * mean);
    }
    std::printf("%s", AsciiBarChart(bars, "mean accuracy over feedback rounds (%)",
                                    40)
                          .c_str());
  }
  return 0;
}

// Extension bench: ablates the vision front end on the tunnel clip —
// background method (selective mean vs temporal median), SPCPE refinement
// on/off, and sensor noise level — and reports both tracking fidelity
// (vision tracks vs ground-truth vehicles) and the end-to-end retrieval
// accuracy the variant supports.

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "segment/segmenter.h"
#include "track/tracker.h"
#include "trafficsim/renderer.h"

using namespace mivid;

namespace {

struct Variant {
  const char* name;
  BackgroundMethod method;
  bool use_spcpe;
  double noise;
};

struct Outcome {
  size_t gt_vehicles = 0;
  size_t vision_tracks = 0;
  double mil_final = 0.0;
};

Outcome RunVariant(const ScenarioSpec& scenario, const Variant& variant) {
  Outcome outcome;

  // Ground truth for the oracle.
  TrafficWorld gt_world(scenario);
  const GroundTruth gt = gt_world.Run();
  outcome.gt_vehicles = gt.tracks.size();

  // Vision with the variant's configuration.
  TrafficWorld world(scenario);
  RenderOptions render;
  render.noise_stddev = variant.noise;
  Renderer renderer(scenario.layout, render);
  SegmenterOptions seg;
  seg.background.method = variant.method;
  seg.use_spcpe = variant.use_spcpe;
  VehicleSegmenter segmenter(seg);
  Tracker tracker;
  while (!world.Done()) {
    world.Step();
    tracker.Observe(world.frame() - 1,
                    segmenter.Process(renderer.Render(world.vehicles())));
  }
  const std::vector<Track> tracks = tracker.Finish();
  outcome.vision_tracks = tracks.size();

  // End-to-end retrieval with these tracks.
  ExperimentOptions options;
  FeatureOptions fopts;
  WindowOptions wopts;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  const FeatureScaler scaler = FeatureScaler::Fit(features, false);
  const auto windows =
      ExtractWindows(features, scenario.total_frames, fopts, wopts);
  if (windows.empty()) return outcome;
  MilDataset dataset = MilDataset::FromVideoSequences(windows, scaler, false);
  FeedbackOracle oracle(&gt);
  const auto truth = oracle.LabelAll(windows);

  MilRfOptions mil;
  MilRfEngine engine(&dataset, mil);
  const EventModel heuristic = EventModel::Accident(3);
  double acc = 0;
  for (int round = 0; round <= 4; ++round) {
    const auto ids = RankingIds(
        engine.trained() ? engine.Rank()
                         : HeuristicRanking(dataset, heuristic, 3));
    acc = AccuracyAtN(ids, truth, options.top_n);
    if (round == 4) break;
    for (size_t i = 0; i < ids.size() && i < options.top_n; ++i) {
      auto it = truth.find(ids[i]);
      (void)dataset.SetLabel(ids[i], it == truth.end() ? BagLabel::kIrrelevant
                                                       : it->second);
    }
    if (dataset.CountLabel(BagLabel::kRelevant) > 0) (void)engine.Learn();
  }
  outcome.mil_final = acc;
  return outcome;
}

}  // namespace

int main() {
  std::printf("Vision front-end ablation on clip 1 (tunnel)\n");
  const ScenarioSpec scenario = MakeTunnelScenario();

  const Variant variants[] = {
      {"selective mean + SPCPE (default)", BackgroundMethod::kSelectiveMean,
       true, 6.0},
      {"selective mean, no SPCPE", BackgroundMethod::kSelectiveMean, false,
       6.0},
      {"temporal median + SPCPE", BackgroundMethod::kTemporalMedian, true,
       6.0},
      {"temporal median, no SPCPE", BackgroundMethod::kTemporalMedian, false,
       6.0},
      {"default, low noise (sigma 2)", BackgroundMethod::kSelectiveMean, true,
       2.0},
      {"default, heavy noise (sigma 12)", BackgroundMethod::kSelectiveMean,
       true, 12.0},
  };

  std::vector<std::vector<std::string>> rows;
  for (const Variant& v : variants) {
    const Outcome o = RunVariant(scenario, v);
    rows.push_back({v.name, StrFormat("%zu", o.gt_vehicles),
                    StrFormat("%zu", o.vision_tracks),
                    StrFormat("%.1f%%", 100 * o.mil_final)});
  }
  std::printf("%s",
              AsciiTable({"variant", "vehicles (truth)", "vision tracks",
                          "MIL final accuracy@20"},
                         rows)
                  .c_str());
  std::printf(
      "\nReading guide: vision tracks close to the vehicle count mean "
      "little fragmentation;\nthe retrieval column shows how much tracker "
      "quality the MIL engine can absorb.\n");
  return 0;
}

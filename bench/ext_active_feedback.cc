// Extension bench: passive vs active feedback selection.
//
// The paper shows the user the top-20 ranked windows every round. Active
// selection replaces part of the display set with the most *uncertain*
// windows (decision values nearest the one-class boundary), trading some
// immediate precision for more informative labels. This bench compares
// convergence under both strategies at several explore fractions.
// Accuracy is always the plain top-20 of the CURRENT ranking (what a user
// querying right now would see), regardless of what was shown for
// labeling.

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "retrieval/active_selection.h"

using namespace mivid;

namespace {

std::vector<double> RunStrategy(const ClipAnalysis& analysis,
                                double explore_fraction, int rounds,
                                size_t top_n,
                                double min_training_score = 0.0) {
  MilDataset ds = analysis.dataset;
  MilRfOptions mil;
  mil.base_dim = analysis.scaler.dimension();
  mil.min_training_score = min_training_score;
  MilRfEngine engine(&ds, mil);
  const EventModel heuristic =
      EventModel::Accident(analysis.scaler.dimension());
  ActiveSelectionOptions active;
  active.explore_fraction = explore_fraction;

  std::vector<double> curve;
  for (int round = 0; round <= rounds; ++round) {
    const auto ranking =
        engine.trained() ? engine.Rank()
                         : HeuristicRanking(ds, heuristic, mil.base_dim);
    curve.push_back(AccuracyAtN(RankingIds(ranking), analysis.truth, top_n));
    if (round == rounds) break;

    // The display set for labeling uses the strategy under test.
    const std::vector<int> shown =
        SelectForFeedback(ranking, ds, top_n, /*boundary=*/0.0, active);
    for (int id : shown) {
      auto it = analysis.truth.find(id);
      (void)ds.SetLabel(id, it == analysis.truth.end() ? BagLabel::kIrrelevant
                                                       : it->second);
    }
    if (ds.CountLabel(BagLabel::kRelevant) > 0) (void)engine.Learn();
  }
  return curve;
}

}  // namespace

int main() {
  std::printf("Passive vs active feedback selection, clip 1 (tunnel)\n\n");
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  Result<ClipAnalysis> analysis =
      AnalyzeScenario(MakeTunnelScenario(), options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<std::string>> rows;
  for (double explore : {0.0, 0.2, 0.4}) {
    const auto curve = RunStrategy(*analysis, explore, 4, options.top_n);
    std::vector<std::string> row{
        explore == 0.0 ? std::string("fresh-labels passive")
                       : StrFormat("active %.0f%% explore", 100 * explore)};
    for (double a : curve) row.push_back(StrFormat("%.1f%%", 100 * a));
    rows.push_back(std::move(row));
  }
  {
    // The remedy for over-labeling: a floor on the heuristic score of
    // training TSs keeps feature-less relevant windows (a crashed car
    // sitting still) from anchoring the support region at the origin.
    const auto curve =
        RunStrategy(*analysis, 0.2, 4, options.top_n,
                    /*min_training_score=*/0.05);
    std::vector<std::string> row{"active 20% + training floor"};
    for (double a : curve) row.push_back(StrFormat("%.1f%%", 100 * a));
    rows.push_back(std::move(row));
  }
  std::printf("%s", AsciiTable({"strategy", "Initial", "First", "Second",
                                "Third", "Fourth"},
                               rows)
                        .c_str());
  std::printf(
      "\nAll strategies label 20 previously-unseen windows per round (the\n"
      "paper re-shows confident results instead, which self-limits its\n"
      "training set). Finding: exhaustively labeling the corpus HURTS the\n"
      "one-class model once weakly-relevant windows (e.g. a crashed car\n"
      "sitting still, features ~ normal driving) enter the training set and\n"
      "anchor the support region at the feature origin; the training-score\n"
      "floor restores stability.\n");
  return 0;
}

// Ablation: feature extraction from raw tracked centroids vs from the
// least-squares fitted trajectories of paper Sec. 3.2.
//
// The paper motivates polynomial trajectory modeling ("the fitted curve
// represents a rough shape of the moving trajectory") before the event
// features of Sec. 4. This bench quantifies what the smoothing buys: the
// per-centroid noise removed, and the end-to-end retrieval accuracy with
// and without it, at several sensor noise levels.

#include <cstdio>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "segment/segmenter.h"
#include "track/tracker.h"
#include "trafficsim/renderer.h"
#include "trajectory/smoothing.h"

using namespace mivid;

namespace {

double RunRetrieval(const std::vector<Track>& tracks, const GroundTruth& gt,
                    int total_frames, size_t top_n) {
  FeatureOptions fopts;
  WindowOptions wopts;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  const FeatureScaler scaler = FeatureScaler::Fit(features, false);
  const auto windows = ExtractWindows(features, total_frames, fopts, wopts);
  if (windows.empty()) return 0.0;
  MilDataset dataset = MilDataset::FromVideoSequences(windows, scaler, false);
  FeedbackOracle oracle(&gt);
  const auto truth = oracle.LabelAll(windows);

  MilRfEngine engine(&dataset, MilRfOptions{});
  const EventModel heuristic = EventModel::Accident(3);
  double acc = 0;
  for (int round = 0; round <= 4; ++round) {
    const auto ids = RankingIds(
        engine.trained() ? engine.Rank()
                         : HeuristicRanking(dataset, heuristic, 3));
    acc = AccuracyAtN(ids, truth, top_n);
    if (round == 4) break;
    for (size_t i = 0; i < ids.size() && i < top_n; ++i) {
      auto it = truth.find(ids[i]);
      (void)dataset.SetLabel(ids[i], it == truth.end() ? BagLabel::kIrrelevant
                                                       : it->second);
    }
    if (dataset.CountLabel(BagLabel::kRelevant) > 0) (void)engine.Learn();
  }
  return acc;
}

}  // namespace

int main() {
  std::printf(
      "Trajectory smoothing ablation (Sec. 3.2 polynomial model as a\n"
      "denoising stage before the Sec. 4 features), clip 1 (tunnel)\n\n");
  const ScenarioSpec scenario = MakeTunnelScenario();

  std::vector<std::vector<std::string>> rows;
  for (double noise : {2.0, 6.0, 12.0, 20.0}) {
    // Ground truth.
    TrafficWorld gt_world(scenario);
    const GroundTruth gt = gt_world.Run();

    // Vision tracks at this noise level.
    TrafficWorld world(scenario);
    RenderOptions render;
    render.noise_stddev = noise;
    Renderer renderer(scenario.layout, render);
    VehicleSegmenter segmenter;
    Tracker tracker;
    while (!world.Done()) {
      world.Step();
      tracker.Observe(world.frame() - 1,
                      segmenter.Process(renderer.Render(world.vehicles())));
    }
    const std::vector<Track> raw = tracker.Finish();
    const std::vector<Track> smoothed = SmoothTracks(raw);

    double displaced = 0;
    size_t counted = 0;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i].points.size() >= 5) {
        displaced += SmoothingResidual(raw[i], smoothed[i]);
        ++counted;
      }
    }
    const double mean_residual =
        counted ? displaced / static_cast<double>(counted) : 0.0;

    const double acc_raw =
        RunRetrieval(raw, gt, scenario.total_frames, 20);
    const double acc_smooth =
        RunRetrieval(smoothed, gt, scenario.total_frames, 20);
    rows.push_back({StrFormat("%.0f", noise),
                    StrFormat("%.2f px", mean_residual),
                    StrFormat("%.1f%%", 100 * acc_raw),
                    StrFormat("%.1f%%", 100 * acc_smooth)});
  }
  std::printf("%s", AsciiTable({"pixel noise sigma", "smoothing moved",
                                "MIL final (raw tracks)",
                                "MIL final (fitted tracks)"},
                               rows)
                        .c_str());
  return 0;
}

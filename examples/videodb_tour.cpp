// VideoDb tour: the database layer end to end.
//
// Creates an on-disk surveillance video database, ingests simulated clips
// from two cameras, reopens the database, runs a per-camera accident query
// through the QueryEngine, and persists the learned One-class SVM model so
// a later session can resume the user's customized query.
//
// Output database directory: ./mivid_tour_db

#include <cstdio>

#include "db/query_engine.h"
#include "db/video_db.h"
#include "eval/metrics.h"
#include "retrieval/mil_rf_engine.h"
#include "trafficsim/scenarios.h"

using namespace mivid;

namespace {

Status IngestScenario(VideoDb* db, const ScenarioSpec& scenario,
                      const std::string& camera_id,
                      const std::string& location) {
  TrafficWorld world(scenario);
  const GroundTruth gt = world.Run();
  ClipInfo info;
  info.camera_id = camera_id;
  info.location = location;
  info.start_time_ms = 1167609600000LL;  // Jan 2007, the paper's era
  info.fps = 25.0;
  info.total_frames = scenario.total_frames;
  info.scenario = scenario.name;
  Result<int> id = db->IngestClip(info, gt.tracks, gt.incidents);
  if (!id.ok()) return id.status();
  std::printf("ingested clip %d from %s (%zu tracks, %zu incidents)\n",
              id.value(), camera_id.c_str(), gt.tracks.size(),
              gt.incidents.size());
  return Status::OK();
}

}  // namespace

int main() {
  const std::string db_path = "mivid_tour_db";

  // --- Create and populate. ---
  {
    VideoDbOptions options;
    options.create_if_missing = true;
    Result<std::unique_ptr<VideoDb>> db = VideoDb::Open(db_path, options);
    if (!db.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }

    TunnelScenarioOptions tunnel;
    tunnel.total_frames = 1200;
    tunnel.num_wall_crashes = 2;
    tunnel.num_sudden_stops = 1;
    Status s = IngestScenario(db.value().get(), MakeTunnelScenario(tunnel),
                              "cam-tunnel-07", "I-59 tunnel, bore B");
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    IntersectionScenarioOptions inter;
    s = IngestScenario(db.value().get(), MakeIntersectionScenario(inter),
                       "cam-xing-12", "5th Ave / Main St");
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  // --- Reopen (fresh handle, catalog read from disk) and query. ---
  VideoDbOptions options;
  Result<std::unique_ptr<VideoDb>> db = VideoDb::Open(db_path, options);
  if (!db.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("\nreopened database with %zu clips; cameras:\n",
              db.value()->clip_count());
  for (const auto& camera : db.value()->Cameras()) {
    std::printf("  %s -> clips", camera.c_str());
    for (int id : db.value()->ClipsForCamera(camera)) std::printf(" %d", id);
    std::printf("\n");
  }

  QueryEngine engine(db.value().get());
  QueryOptions query;
  query.session.top_n = 10;

  // Retrieval runs per camera (paper Sec. 6.2).
  Result<CameraCorpus> corpus = engine.BuildCorpus("cam-tunnel-07", query);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  Result<RetrievalSession> session =
      RetrievalSession::Create(corpus->dataset, SessionOptionsFor(query));
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }

  std::printf("\naccident query on cam-tunnel-07 (%zu windows):\n",
              corpus->dataset.size());
  for (int round = 0; round < 3; ++round) {
    const auto top = session->TopBags();
    const double acc = AccuracyAtN(top, corpus->truth, query.session.top_n);
    std::printf("  round %d accuracy@%zu = %.0f%%\n", round,
                query.session.top_n, 100 * acc);
    std::vector<std::pair<int, BagLabel>> feedback;
    for (int id : top) feedback.emplace_back(id, corpus->truth.at(id));
    const Status s = session->SubmitFeedback(feedback);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  // --- Persist the user's learned query model for the next session. ---
  // Only the MIL-RF engine has a one-class SVM worth saving.
  const auto* mil =
      dynamic_cast<const MilRfEngine*>(&session->engine());
  if (mil != nullptr && mil->model() != nullptr) {
    const Status s =
        db.value()->SaveModel("accidents_cam_tunnel_07", *mil->model());
    std::printf("\nsaved learned model '%s': %s\n", "accidents_cam_tunnel_07",
                s.ToString().c_str());
    Result<OneClassSvmModel> loaded =
        db.value()->LoadModel("accidents_cam_tunnel_07");
    std::printf("reloaded model: %zu support vectors, rho=%.4f\n",
                loaded.ok() ? loaded->num_support_vectors() : 0,
                loaded.ok() ? loaded->rho() : 0.0);
  }
  return 0;
}

// Trajectory fitting demo (paper Sec. 3.2 / Fig. 2): tracks one vehicle
// through the vision pipeline, fits its trajectory with polynomials of
// increasing degree, prints coefficients/residuals, and writes a PPM
// visualization of the raw centroids (red) and the fitted curve (green).
//
// Output: trajectory_fit.ppm

#include <cstdio>

#include "segment/segmenter.h"
#include "track/tracker.h"
#include "trafficsim/renderer.h"
#include "trafficsim/scenarios.h"
#include "trajectory/polyfit.h"
#include "video/draw.h"

using namespace mivid;

int main() {
  // One vehicle doing a U-turn gives a genuinely curved trajectory.
  ScenarioSpec scenario;
  scenario.name = "uturn_demo";
  scenario.layout = MakeTunnelLayout();
  scenario.total_frames = 320;
  scenario.spawns = {{0, 0, VehicleType::kCar, 3.0, 225}};
  IncidentSpec inc;
  inc.type = IncidentType::kUTurn;
  inc.trigger_frame = 80;
  scenario.incidents = {inc};

  TrafficWorld world(scenario);
  Renderer renderer(scenario.layout);
  VehicleSegmenter segmenter;
  Tracker tracker;
  Frame last_frame;
  while (!world.Done()) {
    world.Step();
    last_frame = renderer.Render(world.vehicles());
    tracker.Observe(world.frame() - 1, segmenter.Process(last_frame));
  }
  const std::vector<Track> tracks = tracker.Finish();
  if (tracks.empty()) {
    std::fprintf(stderr, "no track recovered\n");
    return 1;
  }
  // Use the longest track.
  const Track* track = &tracks[0];
  for (const auto& t : tracks) {
    if (t.points.size() > track->points.size()) track = &t;
  }
  std::printf("tracked %zu centroids over frames [%d..%d]\n",
              track->points.size(), track->first_frame(),
              track->last_frame());

  for (int degree = 1; degree <= 5; ++degree) {
    Result<FittedTrajectory> fit = FitTrack(*track, degree);
    if (!fit.ok()) {
      std::printf("degree %d: %s\n", degree, fit.status().ToString().c_str());
      continue;
    }
    std::printf("degree %d: RMS residual %.2f px;  x(t) coeffs:", degree,
                fit->rms_error);
    for (double c : fit->x_of_t.coeffs()) std::printf(" %.3g", c);
    std::printf("\n");
  }

  // Visualize the degree-4 fit (the paper's choice).
  Result<FittedTrajectory> fit = FitTrack(*track, 4);
  if (!fit.ok()) return 1;
  RgbImage canvas = ToRgb(last_frame);
  for (double t = track->first_frame(); t <= track->last_frame(); t += 0.5) {
    DrawDisc(&canvas, fit->Eval(t), 0, 0, 220, 0);  // green curve
  }
  for (const auto& p : track->points) {
    DrawDisc(&canvas, p.centroid, 1, 255, 40, 40);  // red centroids
  }
  const Status s = WritePpm(canvas, "trajectory_fit.ppm");
  std::printf("wrote trajectory_fit.ppm: %s\n", s.ToString().c_str());
  return 0;
}

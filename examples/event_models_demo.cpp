// Event-model demo: the same retrieval machinery answering different
// semantic queries (paper Sec. 4: "this event model may also be adjusted
// to detect U-turns, speeding and any other event").
//
// Queries the tunnel clip for (a) accidents, (b) U-turns and (c) speeding,
// each with its own initial event model and oracle answer set. Speeding
// uses the optional 4th feature (velocity).

#include <cstdio>

#include "eval/experiment.h"
#include "eval/metrics.h"

using namespace mivid;

namespace {

struct Query {
  const char* name;
  std::vector<IncidentType> types;
  bool include_velocity;
  EventModel (*model)(size_t);
};

EventModel MakeAccident(size_t dim) { return EventModel::Accident(dim); }
EventModel MakeUTurn(size_t dim) { return EventModel::UTurn(dim); }
EventModel MakeSpeeding(size_t dim) {
  (void)dim;
  return EventModel::Speeding();
}

}  // namespace

int main() {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 2504;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);

  const Query queries[] = {
      {"accidents", AccidentTypes(), false, &MakeAccident},
      {"u-turns", {IncidentType::kUTurn}, false, &MakeUTurn},
      {"speeding", {IncidentType::kSpeeding}, true, &MakeSpeeding},
  };

  for (const Query& query : queries) {
    ExperimentOptions options;
    options.pipeline = PipelineMode::kVisionTracks;
    options.relevant_types = query.types;
    options.features.include_velocity = query.include_velocity;
    Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, options);
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
      return 1;
    }
    const size_t dim = analysis->scaler.dimension();

    MilDataset dataset = analysis->dataset;
    MilRfOptions mil;
    mil.base_dim = dim;
    mil.tie_break_model = query.model(dim);
    MilRfEngine engine(&dataset, mil);
    const EventModel heuristic = query.model(dim);

    std::printf("\nquery '%s': %zu windows, %zu relevant\n", query.name,
                analysis->windows.size(), analysis->num_relevant);
    for (int round = 0; round <= 3; ++round) {
      const auto ranking =
          engine.trained() ? engine.Rank()
                           : HeuristicRanking(dataset, heuristic, dim);
      const auto ids = RankingIds(ranking);
      std::printf("  round %d accuracy@10 = %.0f%%  recall@10 = %.0f%%\n",
                  round, 100 * AccuracyAtN(ids, analysis->truth, 10),
                  100 * RecallAtN(ids, analysis->truth, 10));
      if (round == 3) break;
      for (size_t i = 0; i < ids.size() && i < 10; ++i) {
        auto it = analysis->truth.find(ids[i]);
        (void)dataset.SetLabel(ids[i], it == analysis->truth.end()
                                           ? BagLabel::kIrrelevant
                                           : it->second);
      }
      if (dataset.CountLabel(BagLabel::kRelevant) > 0) (void)engine.Learn();
    }
  }
  return 0;
}

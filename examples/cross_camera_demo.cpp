// Cross-camera normalization demo (paper Sec. 6.2: mining all clips as a
// whole "requires that we normalize all the video clips taken at
// different locations with different camera parameters"; the authors
// defer it for lack of camera metadata).
//
// Two synthetic cameras view the same tunnel through different projective
// mappings. A one-class accident model is trained from feedback on camera
// A and then applied to camera B's corpus:
//   1. without normalization (feature scales differ -> transfer degrades),
//   2. with homography normalization into a common road plane (both
//      corpora become comparable -> transfer recovers).

#include <cstdio>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "geometry/homography.h"

using namespace mivid;

namespace {

/// Builds the MIL corpus + oracle truth from a set of observed tracks.
struct Corpus {
  MilDataset dataset;
  std::map<int, BagLabel> truth;
  FeatureScaler scaler;
};

Corpus BuildCorpus(const std::vector<Track>& tracks, int total_frames,
                   const GroundTruth& gt, const FeatureScaler* shared_scaler) {
  Corpus corpus;
  FeatureOptions fopts;
  WindowOptions wopts;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  corpus.scaler = shared_scaler != nullptr
                      ? *shared_scaler
                      : FeatureScaler::Fit(features, false);
  const auto windows =
      ExtractWindows(features, total_frames, fopts, wopts);
  corpus.dataset =
      MilDataset::FromVideoSequences(windows, corpus.scaler, false);
  FeedbackOracle oracle(&gt);
  corpus.truth = oracle.LabelAll(windows);
  return corpus;
}

/// Trains a one-class model on `train` via three oracle feedback rounds,
/// then measures accuracy@20 of the model applied to `test`.
double TrainOnApplyTo(Corpus* train, const Corpus& test) {
  MilRfOptions mil;
  MilRfEngine engine(&train->dataset, mil);
  const EventModel heuristic = EventModel::Accident(3);
  for (int round = 0; round < 3; ++round) {
    const auto ids = RankingIds(
        engine.trained() ? engine.Rank()
                         : HeuristicRanking(train->dataset, heuristic, 3));
    for (size_t i = 0; i < ids.size() && i < 20; ++i) {
      auto it = train->truth.find(ids[i]);
      (void)train->dataset.SetLabel(
          ids[i], it == train->truth.end() ? BagLabel::kIrrelevant
                                           : it->second);
    }
    if (train->dataset.CountLabel(BagLabel::kRelevant) > 0) {
      (void)engine.Learn();
    }
  }
  if (!engine.trained()) return 0.0;
  // Apply the trained model to the other camera's corpus.
  std::vector<ScoredBag> ranking;
  for (const auto& bag : test.dataset.bags()) {
    double best = -1e300;
    for (const auto& inst : bag.instances) {
      best = std::max(best, engine.model()->DecisionValue(inst.features));
    }
    ranking.push_back({bag.id, best});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     return a.score > b.score;
                   });
  return AccuracyAtN(RankingIds(ranking), test.truth, 20);
}

}  // namespace

int main() {
  // The simulated world *is* the road plane; the cameras distort it.
  const ScenarioSpec scenario = MakeTunnelScenario();
  TrafficWorld world(scenario);
  const GroundTruth gt = world.Run();

  Matrix view_a_m = Matrix::Identity(3);
  view_a_m.At(0, 1) = 0.08;  // slight shear
  view_a_m.At(0, 2) = 12;
  const Homography view_a(view_a_m);

  Matrix view_b_m = Matrix::Identity(3);
  view_b_m.At(0, 0) = 0.72;       // different zoom
  view_b_m.At(1, 1) = 1.25;
  view_b_m.At(1, 2) = -18;
  view_b_m.At(2, 0) = 0.0006;     // mild perspective
  const Homography view_b(view_b_m);

  std::vector<Track> seen_a, seen_b;
  for (const auto& t : gt.tracks) {
    seen_a.push_back(TransformTrack(t, view_a));
    seen_b.push_back(TransformTrack(t, view_b));
  }

  // --- 1. No normalization: train on A, apply to B directly. ---
  Corpus raw_a = BuildCorpus(seen_a, scenario.total_frames, gt, nullptr);
  Corpus raw_b =
      BuildCorpus(seen_b, scenario.total_frames, gt, &raw_a.scaler);
  const double transfer_raw = TrainOnApplyTo(&raw_a, raw_b);

  // --- 2. Calibrate each camera from ground markers and normalize. ---
  const std::vector<Point2> markers{
      {40, 100}, {280, 100}, {40, 148}, {280, 148}, {160, 124}};
  std::vector<Point2> seen_markers_a, seen_markers_b;
  for (const auto& m : markers) {
    seen_markers_a.push_back(view_a.Apply(m));
    seen_markers_b.push_back(view_b.Apply(m));
  }
  Result<Homography> norm_a = Homography::Estimate(seen_markers_a, markers);
  Result<Homography> norm_b = Homography::Estimate(seen_markers_b, markers);
  if (!norm_a.ok() || !norm_b.ok()) {
    std::fprintf(stderr, "calibration failed\n");
    return 1;
  }
  std::vector<Track> plane_a, plane_b;
  for (const auto& t : seen_a) {
    plane_a.push_back(TransformTrack(t, norm_a.value()));
  }
  for (const auto& t : seen_b) {
    plane_b.push_back(TransformTrack(t, norm_b.value()));
  }
  Corpus norm_corpus_a =
      BuildCorpus(plane_a, scenario.total_frames, gt, nullptr);
  Corpus norm_corpus_b = BuildCorpus(plane_b, scenario.total_frames, gt,
                                     &norm_corpus_a.scaler);
  const double transfer_norm = TrainOnApplyTo(&norm_corpus_a, norm_corpus_b);

  // Self-accuracy on camera B for context (train and test on B).
  Corpus self_b = BuildCorpus(seen_b, scenario.total_frames, gt, nullptr);
  Corpus self_b_copy =
      BuildCorpus(seen_b, scenario.total_frames, gt, &self_b.scaler);
  const double self = TrainOnApplyTo(&self_b, self_b_copy);

  std::printf("cross-camera model transfer (accident query)\n");
  std::printf("  train on camera A, apply to camera B (raw pixels):   %.0f%%\n",
              100 * transfer_raw);
  std::printf("  train on camera A, apply to camera B (normalized):   %.0f%%\n",
              100 * transfer_norm);
  std::printf("  camera B trained on itself (upper reference):        %.0f%%\n",
              100 * self);
  std::printf("\nhomography calibration residuals: A %.2e px, B %.2e px\n",
              norm_a->MaxTransferError(seen_markers_a, markers),
              norm_b->MaxTransferError(seen_markers_b, markers));
  return 0;
}

// Incident retrieval on both paper scenarios, end to end.
//
// Runs the full five-round relevance-feedback protocol (Initial + four
// feedback rounds) on the tunnel and intersection clips, comparing the
// proposed MIL / One-class SVM framework with the weighted-RF baseline,
// and prints the accuracy tables and curves (Figs. 8-9 of the paper).
//
// Usage:  incident_retrieval [tunnel|intersection|both]

#include <cstdio>
#include <cstring>

#include "eval/experiment.h"

using namespace mivid;

namespace {

int RunClip(bool intersection) {
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  ScenarioSpec scenario;
  if (intersection) {
    scenario = MakeIntersectionScenario();
    options.windows.stride = 1;  // overlapped windows (see Fig. 9 bench)
  } else {
    scenario = MakeTunnelScenario();
  }
  Result<ExperimentResult> result = RunRfExperiment(scenario, options);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", FormatExperimentResult(result.value()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "both";
  int rc = 0;
  if (std::strcmp(which, "tunnel") == 0 || std::strcmp(which, "both") == 0) {
    std::printf("=== clip 1: tunnel ===\n");
    rc |= RunClip(false);
  }
  if (std::strcmp(which, "intersection") == 0 ||
      std::strcmp(which, "both") == 0) {
    std::printf("\n=== clip 2: intersection ===\n");
    rc |= RunClip(true);
  }
  return rc;
}

// Query-by-example and query-by-sketch demo (paper Sec. 7 future work).
//
// 1. Query by example: pick one accident window from the tunnel corpus and
//    retrieve the windows most similar to it — no feedback loop needed.
// 2. Query by sketch: draw a U-turn-shaped polyline and retrieve the
//    windows whose trajectories match that shape.

#include <cstdio>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "retrieval/query_by_example.h"

using namespace mivid;

int main() {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 2504;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }
  KernelParams kernel;
  kernel.sigma = 0.4;

  // --- Query by example: the first relevant window plays the example. ---
  const MilBag* example = nullptr;
  for (const auto& bag : analysis->dataset.bags()) {
    if (analysis->truth.at(bag.id) == BagLabel::kRelevant &&
        !bag.instances.empty()) {
      example = &bag;
      break;
    }
  }
  if (example == nullptr) {
    std::fprintf(stderr, "no relevant window in the corpus\n");
    return 1;
  }
  const auto qbe = QueryByExample(analysis->dataset, *example, kernel);
  std::printf("query by example (example VS %d, an accident window):\n",
              example->id);
  int shown = 0;
  for (const auto& sb : qbe) {
    if (sb.bag_id == example->id) continue;  // skip the example itself
    const bool rel = analysis->truth.at(sb.bag_id) == BagLabel::kRelevant;
    std::printf("  VS %-4d similarity %.3f %s\n", sb.bag_id, sb.score,
                rel ? "ACCIDENT" : "");
    if (++shown == 8) break;
  }
  std::printf("accuracy@10 (excluding the example) = %.0f%%\n\n",
              100 * AccuracyAtN(RankingIds(qbe), analysis->truth, 10));

  // --- Query by sketch: a U-turn shaped polyline. ---
  TrajectorySketch sketch;
  for (int i = 0; i <= 5; ++i) sketch.points.push_back({40.0 + 14 * i, 110});
  sketch.points.push_back({118, 118});  // the turn-back
  for (int i = 0; i <= 5; ++i) sketch.points.push_back({110.0 - 14 * i, 126});
  Result<std::vector<ScoredBag>> qbs =
      QueryBySketch(analysis->dataset, sketch, analysis->scaler,
                    options.features, options.windows, kernel);
  if (!qbs.ok()) {
    std::fprintf(stderr, "%s\n", qbs.status().ToString().c_str());
    return 1;
  }
  // Which windows overlap a ground-truth U-turn?
  FeedbackOracle uturn_oracle(&analysis->ground_truth,
                              {IncidentType::kUTurn});
  const auto uturn_truth = uturn_oracle.LabelAll(analysis->windows);
  std::printf("query by sketch (a drawn U-turn):\n");
  for (size_t i = 0; i < 8 && i < qbs->size(); ++i) {
    const int id = (*qbs)[i].bag_id;
    const bool is_uturn = uturn_truth.at(id) == BagLabel::kRelevant;
    std::printf("  VS %-4d similarity %.3f %s\n", id, (*qbs)[i].score,
                is_uturn ? "U-TURN" : "");
  }
  std::printf("recall of U-turn windows in top-10 = %.0f%%\n",
              100 * RecallAtN(RankingIds(qbs.value()), uturn_truth, 10));
  return 0;
}

// Quickstart: the complete mivid workflow in one file.
//
// 1. Simulate a short surveillance clip (stand-in for camera footage).
// 2. Run the vision front end: background subtraction + SPCPE -> blobs ->
//    tracks.
// 3. Extract checkpoint features and sliding-window VS/TS structure.
// 4. Run an interactive retrieval session: initial heuristic query, then
//    two rounds of (simulated) relevance feedback refining the results
//    with the One-class SVM MIL engine.
//
// Build and run:  ./build/examples/quickstart

#include <cstdio>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/oracle.h"
#include "retrieval/session.h"
#include "trafficsim/scenarios.h"

using namespace mivid;

int main() {
  // --- 1+2+3: simulate, segment, track, featurize (one call). ---
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 1200;
  scenario_options.num_wall_crashes = 2;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 1;
  scenario_options.num_uturns = 1;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);

  ExperimentOptions pipeline_options;
  pipeline_options.pipeline = PipelineMode::kVisionTracks;
  Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, pipeline_options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("clip: %d frames -> %zu tracks -> %zu video sequences (VS), "
              "%zu trajectory sequences (TS)\n",
              scenario.total_frames, analysis->tracks.size(),
              analysis->windows.size(),
              CountTrajectorySequences(analysis->windows));

  // --- 4: interactive accident retrieval. ---
  SessionOptions session_options;
  session_options.top_n = 10;
  RetrievalSession session(analysis->dataset, session_options);

  // The oracle plays the user, answering from simulation ground truth.
  FeedbackOracle oracle(&analysis->ground_truth);

  for (int round = 0; round <= 2; ++round) {
    const std::vector<int> top = session.TopBags();
    std::printf("\nround %d (%s ranking) - top %zu windows:\n", round,
                session.engine().trained() ? "One-class SVM" : "heuristic",
                top.size());

    std::vector<std::pair<int, BagLabel>> feedback;
    int hits = 0;
    for (int vs_id : top) {
      const BagLabel label = analysis->truth.at(vs_id);
      hits += label == BagLabel::kRelevant ? 1 : 0;
      std::printf("  VS %-4d -> user says %s\n", vs_id,
                  label == BagLabel::kRelevant ? "ACCIDENT" : "normal");
      feedback.emplace_back(vs_id, label);
    }
    std::printf("accuracy@%zu = %d%%\n", top.size(),
                100 * hits / static_cast<int>(top.size()));
    if (round == 2) break;

    const Status s = session.SubmitFeedback(feedback);
    if (!s.ok()) {
      std::fprintf(stderr, "feedback failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

// Tracking demo (paper Fig. 1 analogue): renders a few frames of the
// tunnel scene, runs the segmentation + tracking front end, and writes
// annotated PPM images with each vehicle's Minimal Bounding Rectangle
// (yellow) and centroid (red dot), plus the trail of recent centroids.
//
// Output: tracking_frame_<n>.ppm in the current directory.

#include <cstdio>
#include <deque>
#include <vector>

#include "segment/segmenter.h"
#include "track/tracker.h"
#include "track/vehicle_classifier.h"
#include "trafficsim/renderer.h"
#include "trafficsim/scenarios.h"
#include "video/draw.h"

using namespace mivid;

int main() {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 400;
  scenario_options.min_spawn_gap = 70;   // busier scene for a nicer picture
  scenario_options.max_spawn_gap = 110;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 0;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);

  TrafficWorld world(scenario);
  Renderer renderer(scenario.layout);
  VehicleSegmenter segmenter;
  Tracker tracker;

  // Keep a short trail of recent detections for the overlay.
  std::deque<std::vector<Point2>> recent_centroids;

  int exported = 0;
  while (!world.Done()) {
    world.Step();
    const int frame_index = world.frame() - 1;
    const Frame frame = renderer.Render(world.vehicles());
    const std::vector<Blob> blobs = segmenter.Process(frame);
    tracker.Observe(frame_index, blobs);

    std::vector<Point2> centroids;
    for (const auto& blob : blobs) centroids.push_back(blob.centroid);
    recent_centroids.push_back(std::move(centroids));
    if (recent_centroids.size() > 30) recent_centroids.pop_front();

    if (frame_index % 60 == 30 && !blobs.empty() && exported < 5) {
      RgbImage canvas = ToRgb(frame);
      // Trails first so boxes and dots draw over them.
      for (const auto& past : recent_centroids) {
        for (const auto& c : past) DrawDisc(&canvas, c, 0, 80, 160, 255);
      }
      for (const auto& blob : blobs) {
        DrawRectOutline(&canvas, blob.mbr, 255, 220, 0);   // yellow MBR
        DrawDisc(&canvas, blob.centroid, 2, 255, 0, 0);    // red centroid
      }
      char name[64];
      std::snprintf(name, sizeof(name), "tracking_frame_%04d.ppm",
                    frame_index);
      const Status s = WritePpm(canvas, name);
      std::printf("frame %4d: %zu vehicle segments -> %s (%s)\n", frame_index,
                  blobs.size(), name, s.ok() ? "written" : "FAILED");
      ++exported;
    }
  }

  const std::vector<Track> tracks = tracker.Finish();
  std::printf("\ntracked %zu vehicles across %d frames:\n", tracks.size(),
              scenario.total_frames);
  for (const auto& t : tracks) {
    std::printf("  track %-3d frames [%4d..%4d]  path length %.0f px\n", t.id,
                t.first_frame(), t.last_frame(), t.PathLength());
  }
  return 0;
}

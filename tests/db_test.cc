// Tests for db/: codec, catalog, feature store, VideoDb, QueryEngine.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "db/codec.h"
#include "db/query_engine.h"
#include "db/video_db.h"
#include "eval/experiment.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CodecTest, FixedWidthRoundtrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  PutDouble(&buf, -3.25);
  PutLengthPrefixed(&buf, "hello");
  PutVec(&buf, {1.5, -2.5});

  Decoder dec(buf);
  uint32_t v32;
  uint64_t v64;
  double d;
  std::string s;
  Vec vec;
  ASSERT_TRUE(dec.GetFixed32(&v32).ok());
  EXPECT_EQ(v32, 0xdeadbeefu);
  ASSERT_TRUE(dec.GetFixed64(&v64).ok());
  EXPECT_EQ(v64, 0x0123456789abcdefULL);
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_DOUBLE_EQ(d, -3.25);
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetVec(&vec).ok());
  EXPECT_EQ(vec, (Vec{1.5, -2.5}));
  EXPECT_TRUE(dec.Done());
}

TEST(CodecTest, TruncatedReadsReportCorruption) {
  std::string buf;
  PutFixed32(&buf, 7);
  buf.resize(2);
  Decoder dec(buf);
  uint32_t v;
  EXPECT_TRUE(dec.GetFixed32(&v).IsCorruption());

  std::string buf2;
  PutLengthPrefixed(&buf2, "abcdef");
  buf2.resize(6);  // length says 6, only 2 bytes present
  Decoder dec2(buf2);
  std::string s;
  EXPECT_TRUE(dec2.GetLengthPrefixed(&s).IsCorruption());
}

TEST(CodecTest, Crc32cKnownVectorAndSensitivity) {
  // CRC-32C of "123456789" is 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_NE(Crc32c("123456789"), Crc32c("123456780"));
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(CatalogTest, AddGetRemoveList) {
  Catalog catalog;
  ClipInfo info;
  info.camera_id = "cam-1";
  info.location = "tunnel A";
  info.total_frames = 2504;
  const int id = catalog.Add(info);
  EXPECT_EQ(id, 0);
  EXPECT_EQ(catalog.Add(info), 1);
  EXPECT_EQ(catalog.size(), 2u);

  Result<ClipInfo> got = catalog.Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->camera_id, "cam-1");
  EXPECT_TRUE(catalog.Get(9).status().IsNotFound());

  ASSERT_TRUE(catalog.Remove(0).ok());
  EXPECT_TRUE(catalog.Remove(0).IsNotFound());
  EXPECT_EQ(catalog.List().size(), 1u);
  // Ids are never reused.
  EXPECT_EQ(catalog.Add(info), 2);
}

TEST(CatalogTest, CameraGrouping) {
  Catalog catalog;
  ClipInfo a;
  a.camera_id = "cam-1";
  ClipInfo b;
  b.camera_id = "cam-2";
  catalog.Add(a);
  catalog.Add(b);
  catalog.Add(a);
  EXPECT_EQ(catalog.Cameras(), (std::vector<std::string>{"cam-1", "cam-2"}));
  EXPECT_EQ(catalog.ClipsForCamera("cam-1"), (std::vector<int>{0, 2}));
  EXPECT_TRUE(catalog.ClipsForCamera("cam-9").empty());
}

TEST(CatalogTest, SerializeDeserializeRoundtrip) {
  Catalog catalog;
  ClipInfo info;
  info.camera_id = "cam-7";
  info.location = "Taiwan intersection";
  info.start_time_ms = 1234567890123LL;
  info.fps = 29.97;
  info.width = 320;
  info.height = 240;
  info.total_frames = 592;
  info.scenario = "intersection";
  catalog.Add(info);
  catalog.Add(info);
  (void)catalog.Remove(0);

  Result<Catalog> back = Catalog::Deserialize(catalog.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
  Result<ClipInfo> got = back->Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->location, "Taiwan intersection");
  EXPECT_DOUBLE_EQ(got->fps, 29.97);
  // next_id preserved: new adds continue the sequence.
  EXPECT_EQ(back->Add(info), 2);
}

TEST(CatalogTest, DeserializeRejectsGarbageAndBitflips) {
  EXPECT_FALSE(Catalog::Deserialize("nope").ok());
  Catalog catalog;
  ClipInfo info;
  info.camera_id = "x";
  catalog.Add(info);
  std::string bytes = catalog.Serialize();
  bytes[bytes.size() - 1] ^= 0xff;
  EXPECT_TRUE(Catalog::Deserialize(bytes).status().IsCorruption());
}

std::vector<Track> MakeTracks() {
  std::vector<Track> tracks(2);
  tracks[0].id = 0;
  tracks[1].id = 5;
  for (int f = 0; f < 40; ++f) {
    tracks[0].points.push_back(
        {f, {2.5 * f, 100.0}, BBox(2.5 * f - 8, 96, 2.5 * f + 8, 104)});
    if (f >= 10) {
      tracks[1].points.push_back(
          {f, {300 - 2.0 * f, 130.0}, BBox(0, 0, 1, 1)});
    }
  }
  return tracks;
}

std::vector<IncidentRecord> MakeIncidents() {
  IncidentRecord rec;
  rec.type = IncidentType::kRearEnd;
  rec.begin_frame = 12;
  rec.end_frame = 30;
  rec.vehicle_ids = {0, 5};
  return {rec};
}

TEST(FeatureStoreTest, TracksRoundtrip) {
  const auto tracks = MakeTracks();
  Result<std::vector<Track>> back = DeserializeTracks(SerializeTracks(tracks));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[1].id, 5);
  EXPECT_EQ((*back)[0].points.size(), 40u);
  EXPECT_DOUBLE_EQ((*back)[0].points[3].centroid.x, 7.5);
  EXPECT_DOUBLE_EQ((*back)[0].points[3].bbox.min_y, 96.0);
}

TEST(FeatureStoreTest, IncidentsRoundtrip) {
  Result<std::vector<IncidentRecord>> back =
      DeserializeIncidents(SerializeIncidents(MakeIncidents()));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 1u);
  EXPECT_EQ((*back)[0].type, IncidentType::kRearEnd);
  EXPECT_EQ((*back)[0].vehicle_ids, (std::vector<int>{0, 5}));
}

TEST(FeatureStoreTest, CorruptionDetected) {
  std::string bytes = SerializeTracks(MakeTracks());
  bytes[20] ^= 0x1;
  EXPECT_TRUE(DeserializeTracks(bytes).status().IsCorruption());
  // Wrong magic (incidents blob parsed as tracks).
  EXPECT_FALSE(DeserializeTracks(SerializeIncidents(MakeIncidents())).ok());
}

TEST(VideoDbTest, OpenSemantics) {
  TempDir dir("mivid_db_open");
  VideoDbOptions options;
  // Missing + no create => NotFound.
  EXPECT_TRUE(VideoDb::Open(dir.path(), options).status().IsNotFound());
  options.create_if_missing = true;
  Result<std::unique_ptr<VideoDb>> db = VideoDb::Open(dir.path(), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Reopen existing with error_if_exists => AlreadyExists.
  options.error_if_exists = true;
  EXPECT_TRUE(VideoDb::Open(dir.path(), options).status().IsAlreadyExists());
}

TEST(VideoDbTest, IngestLoadPersistAcrossReopen) {
  TempDir dir("mivid_db_ingest");
  VideoDbOptions options;
  options.create_if_missing = true;
  {
    auto db = VideoDb::Open(dir.path(), options);
    ASSERT_TRUE(db.ok());
    ClipInfo info;
    info.camera_id = "cam-tunnel";
    info.total_frames = 2504;
    Result<int> id = db.value()->IngestClip(info, MakeTracks(), MakeIncidents());
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(id.value(), 0);
  }
  // Reopen and read back.
  options.create_if_missing = false;
  auto db = VideoDb::Open(dir.path(), options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value()->clip_count(), 1u);
  Result<ClipRecord> record = db.value()->LoadClip(0);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->info.camera_id, "cam-tunnel");
  EXPECT_EQ(record->tracks.size(), 2u);
  EXPECT_EQ(record->incidents.size(), 1u);
}

TEST(VideoDbTest, DeleteClipRemovesEverything) {
  TempDir dir("mivid_db_delete");
  VideoDbOptions options;
  options.create_if_missing = true;
  auto db = VideoDb::Open(dir.path(), options);
  ASSERT_TRUE(db.ok());
  ClipInfo info;
  info.camera_id = "cam";
  ASSERT_TRUE(db.value()->IngestClip(info, MakeTracks(), {}).ok());
  ASSERT_TRUE(db.value()->DeleteClip(0).ok());
  EXPECT_TRUE(db.value()->LoadClip(0).status().IsNotFound());
  EXPECT_TRUE(db.value()->DeleteClip(0).IsNotFound());
}

TEST(VideoDbTest, ModelPersistence) {
  TempDir dir("mivid_db_models");
  VideoDbOptions options;
  options.create_if_missing = true;
  auto db = VideoDb::Open(dir.path(), options);
  ASSERT_TRUE(db.ok());

  OneClassSvmOptions svm_options;
  svm_options.nu = 0.3;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(svm_options)
                                       .Train({{0.1, 0.2}, {0.2, 0.1},
                                               {0.15, 0.15}, {0.12, 0.22}});
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(db.value()->SaveModel("accident_query", model.value()).ok());
  EXPECT_EQ(db.value()->ListModels(),
            (std::vector<std::string>{"accident_query"}));
  Result<OneClassSvmModel> back = db.value()->LoadModel("accident_query");
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->DecisionValue({0.15, 0.15}),
                   model->DecisionValue({0.15, 0.15}));
  EXPECT_TRUE(db.value()->LoadModel("nope").status().IsNotFound());
}

TEST(QueryEngineTest, BuildsCorpusFromStoredClipsAndRunsSession) {
  TempDir dir("mivid_db_query");
  VideoDbOptions options;
  options.create_if_missing = true;
  auto db = VideoDb::Open(dir.path(), options);
  ASSERT_TRUE(db.ok());

  // Ingest a small simulated clip with ground-truth tracks + incidents.
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 700;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  TrafficWorld world(scenario);
  const GroundTruth gt = world.Run();
  ClipInfo info;
  info.camera_id = "cam-9";
  info.total_frames = scenario.total_frames;
  ASSERT_TRUE(db.value()->IngestClip(info, gt.tracks, gt.incidents).ok());

  QueryEngine engine(db.value().get());
  QueryOptions query;
  Result<CameraCorpus> corpus = engine.BuildCorpus("cam-9", query);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_GT(corpus->dataset.size(), 0u);
  EXPECT_EQ(corpus->dataset.size(), corpus->bag_refs.size());
  EXPECT_EQ(corpus->dataset.size(), corpus->truth.size());
  // At least one window overlaps an accident.
  size_t relevant = 0;
  for (const auto& [id, label] : corpus->truth) {
    (void)id;
    relevant += label == BagLabel::kRelevant ? 1 : 0;
  }
  EXPECT_GT(relevant, 0u);

  Result<RetrievalSession> session =
      RetrievalSession::Create(corpus->dataset, SessionOptionsFor(query));
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->TopBags().empty());

  EXPECT_TRUE(engine.BuildCorpus("cam-none", query).status().IsNotFound());
}

}  // namespace
}  // namespace mivid

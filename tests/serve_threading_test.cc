// Concurrency tests for the serve layer, built into mivid_threading_tests
// so CI runs them under ThreadSanitizer: single-flight corpus loading,
// concurrent clients on distinct and shared sessions, and backpressure
// under real contention.

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/video_db.h"
#include "obs/json.h"
#include "serve/server.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct ThreadingEnv {
  TempDir dir{"mivid_serve_threading_test"};
  std::unique_ptr<VideoDb> db;
};

ThreadingEnv& Env() {
  static ThreadingEnv* env = [] {
    auto* e = new ThreadingEnv();
    VideoDbOptions options;
    options.create_if_missing = true;
    auto opened = VideoDb::Open(e->dir.path(), options);
    if (!opened.ok()) std::abort();
    e->db = std::move(opened).value();
    TunnelScenarioOptions scenario_options;
    scenario_options.total_frames = 700;
    scenario_options.num_wall_crashes = 1;
    scenario_options.num_sudden_stops = 1;
    scenario_options.num_speeding = 0;
    scenario_options.num_uturns = 0;
    const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
    TrafficWorld world(scenario);
    const GroundTruth gt = world.Run();
    ClipInfo info;
    info.camera_id = "cam-mt";
    info.total_frames = scenario.total_frames;
    if (!e->db->IngestClip(info, gt.tracks, gt.incidents).ok()) std::abort();
    return e;
  }();
  return *env;
}

bool ResponseOk(const std::string& response) {
  Result<JsonValue> doc = ParseJson(response);
  if (!doc.ok()) return false;
  const JsonValue* ok = doc->Find("ok");
  return ok != nullptr && ok->type == JsonValue::Type::kBool && ok->bool_value;
}

TEST(ServeThreadingTest, ConcurrentOpensShareOneCorpusLoad) {
  ServeOptions options;
  RetrievalServer server(Env().db.get(), options);

  constexpr int kClients = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &ok_count, c] {
      const std::string id = "mt_open_" + std::to_string(c);
      const std::string response = server.HandleLine(
          R"({"cmd":"open","session":")" + id + R"(","camera":"cam-mt"})");
      if (ResponseOk(response)) ok_count.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients);

  // Single-flight: eight concurrent opens of one camera, one extraction.
  const CorpusManager::Stats stats = server.corpora().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kClients - 1));
  EXPECT_EQ(server.sessions().open_count(), static_cast<size_t>(kClients));
}

TEST(ServeThreadingTest, DistinctSessionsProgressInParallel) {
  ServeOptions options;
  RetrievalServer server(Env().db.get(), options);

  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &failures, c] {
      const std::string id = "mt_sess_" + std::to_string(c);
      if (!ResponseOk(server.HandleLine(
              R"({"cmd":"open","session":")" + id + R"(","camera":"cam-mt"})"))) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        if (!ResponseOk(server.HandleLine(
                R"({"cmd":"rank","session":")" + id + "\"}"))) {
          failures.fetch_add(1);
        }
        // Each client labels a different bag pair, so sessions diverge —
        // which is the point: private labels over a shared corpus.
        const std::string labels =
            R"([{"bag":)" + std::to_string(c) + R"(,"label":"relevant"},)" +
            R"({"bag":)" + std::to_string(c + kClients) +
            R"(,"label":"irrelevant"}])";
        if (!ResponseOk(server.HandleLine(
                R"({"cmd":"feedback","session":")" + id + R"(","labels":)" +
                labels + "}"))) {
          failures.fetch_add(1);
        }
      }
      if (!ResponseOk(server.HandleLine(
              R"({"cmd":"close","session":")" + id + "\"}"))) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.sessions().open_count(), 0u);
}

TEST(ServeThreadingTest, SharedSessionSerializesCommands) {
  ServeOptions options;
  RetrievalServer server(Env().db.get(), options);
  ASSERT_TRUE(ResponseOk(server.HandleLine(
      R"({"cmd":"open","session":"mt_shared","camera":"cam-mt"})")));

  constexpr int kClients = 4;
  constexpr int kRequests = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &failures, c] {
      for (int r = 0; r < kRequests; ++r) {
        std::string response;
        if (c % 2 == 0) {
          response = server.HandleLine(
              R"({"cmd":"rank","session":"mt_shared","top":5})");
        } else {
          response = server.HandleLine(
              R"({"cmd":"feedback","session":"mt_shared","labels":[{"bag":)" +
              std::to_string(r) + R"(,"label":"relevant"}]})");
        }
        if (!ResponseOk(response)) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // All feedback rounds landed: 2 writer clients x 5 requests each.
  Result<JsonValue> rank = ParseJson(server.HandleLine(
      R"({"cmd":"rank","session":"mt_shared"})"));
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank->Find("round")->number, 2 * kRequests);
}

TEST(ServeThreadingTest, QueueFullUnderContentionReturnsResourceExhausted) {
  ServeOptions options;
  options.max_pending = 2;
  std::mutex mu;
  std::condition_variable cv;
  int held = 0;
  bool release = false;
  // Stats requests park inside the hook while holding their admission
  // slot; the main thread waits until both slots are provably held.
  options.admission_hook = [&](const ServeRequest& req) {
    if (req.cmd != ServeCmd::kStats) return;
    std::unique_lock<std::mutex> lock(mu);
    ++held;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  RetrievalServer server(Env().db.get(), options);

  std::vector<std::thread> blockers;
  for (int i = 0; i < 2; ++i) {
    blockers.emplace_back(
        [&server] { server.HandleLine(R"({"cmd":"stats"})"); });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return held == 2; });
  }

  // Both slots held: the next request must bounce, not queue.
  const std::string rejected =
      server.HandleLine(R"({"cmd":"close","session":"nope"})");
  Result<JsonValue> doc = ParseJson(rejected);
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->Find("code"), nullptr);
  EXPECT_EQ(doc->Find("code")->string, "RESOURCE_EXHAUSTED");

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  for (std::thread& t : blockers) t.join();
  EXPECT_EQ(server.requests_rejected(), 1u);
}

}  // namespace
}  // namespace mivid

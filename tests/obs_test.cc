// Observability subsystem: metric semantics, JSON export and parsing,
// trace export, logging macros.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {
namespace {

/// Every test starts from a clean, enabled registry and leaves the
/// subsystem disabled so unrelated tests pay the off-path only.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    ResetTrace();
    EnableMetrics(true);
    EnableTracing(true);
  }
  void TearDown() override {
    EnableMetrics(false);
    EnableTracing(false);
    MetricsRegistry::Global().Reset();
    ResetTrace();
  }
};

TEST_F(ObsTest, CounterIncrementsAndResets) {
  Counter& c = MetricsRegistry::Global().GetCounter("test/counter");
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  Gauge& g = MetricsRegistry::Global().GetGauge("test/gauge");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.Value(), -2.25);
}

TEST_F(ObsTest, RegistryReturnsSameMetricForSameName) {
  Counter& a = MetricsRegistry::Global().GetCounter("test/same");
  Counter& b = MetricsRegistry::Global().GetCounter("test/same");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
}

TEST_F(ObsTest, HistogramStatsAreExactForCountSumMinMax) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test/hist");
  const std::vector<double> values = {0.001, 0.002, 0.004, 0.1, 1.0};
  double sum = 0.0;
  for (double v : values) {
    h.Observe(v);
    sum += v;
  }
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, values.size());
  EXPECT_DOUBLE_EQ(stats.sum, sum);
  EXPECT_DOUBLE_EQ(stats.min, 0.001);
  EXPECT_DOUBLE_EQ(stats.max, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean(), sum / static_cast<double>(values.size()));
  // Percentiles are interpolated within exponential buckets: they must be
  // monotone and inside [min, max].
  EXPECT_GE(stats.p50, stats.min);
  EXPECT_LE(stats.p50, stats.p95);
  EXPECT_LE(stats.p95, stats.p99);
  EXPECT_LE(stats.p99, stats.max);
}

TEST_F(ObsTest, HistogramSingleValuePercentilesCollapse) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test/hist1");
  h.Observe(0.125);
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1u);
  // With one sample the interpolation clamps to [min, max] = [v, v].
  EXPECT_DOUBLE_EQ(stats.p50, 0.125);
  EXPECT_DOUBLE_EQ(stats.p99, 0.125);
}

TEST_F(ObsTest, DisabledMetricsAreNoOps) {
  EnableMetrics(false);
  Counter& c = MetricsRegistry::Global().GetCounter("test/off");
  Histogram& h = MetricsRegistry::Global().GetHistogram("test/off_hist");
  Gauge& g = MetricsRegistry::Global().GetGauge("test/off_gauge");
  c.Increment(100);
  h.Observe(1.0);
  g.Set(3.0);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.Stats().count, 0u);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST_F(ObsTest, SnapshotContainsAllRegisteredMetrics) {
  MIVID_METRIC_COUNT("snap/counter", 3);
  MIVID_METRIC_GAUGE_SET("snap/gauge", 7.5);
  MIVID_METRIC_OBSERVE("snap/hist", 0.25);
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(snapshot.counters.count("snap/counter"));
  EXPECT_EQ(snapshot.counters.at("snap/counter"), 3u);
  ASSERT_TRUE(snapshot.gauges.count("snap/gauge"));
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("snap/gauge"), 7.5);
  ASSERT_TRUE(snapshot.histograms.count("snap/hist"));
  EXPECT_EQ(snapshot.histograms.at("snap/hist").count, 1u);
}

TEST_F(ObsTest, ScopedTimerObservesElapsedSeconds) {
  {
    MIVID_SCOPED_TIMER("timer/test_seconds");
    // Any nonzero amount of work; the assertion is only count + sign.
    volatile double x = 0;
    for (int i = 0; i < 1000; ++i) x = x + i;
  }
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("timer/test_seconds");
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, 1u);
  EXPECT_GE(stats.sum, 0.0);
}

TEST_F(ObsTest, MetricsJsonParsesAndContainsSections) {
  MIVID_METRIC_COUNT("json/counter", 5);
  MIVID_METRIC_OBSERVE("json/hist", 0.5);
  const std::string json = MetricsToJson();
  Result<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* counter = counters->Find("json/counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->number, 5.0);
  const JsonValue* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* hist = hists->Find("json/hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->Find("count"), nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 1.0);
  ASSERT_NE(doc->Find("gauges"), nullptr);
  ASSERT_NE(doc->Find("spans"), nullptr);
}

TEST_F(ObsTest, TraceEventsRecordedAndOrdered) {
  for (int i = 0; i < 5; ++i) {
    MIVID_TRACE_SPAN("test/outer");
    MIVID_TRACE_SPAN("test/inner");
  }
  const std::vector<TraceEventData> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 10u);
  // Within one tid, events are recorded at span close, so end timestamps
  // must be monotonically non-decreasing.
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].tid != events[i - 1].tid) continue;
    EXPECT_GE(events[i].begin_us + events[i].dur_us,
              events[i - 1].begin_us + events[i - 1].dur_us);
  }
  EXPECT_EQ(TraceDroppedEvents(), 0u);
}

TEST_F(ObsTest, TraceChromeJsonIsValid) {
  { MIVID_TRACE_SPAN("test/json_span"); }
  const std::string json = TraceToChromeJson();
  Result<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool found_span = false, found_meta = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      const JsonValue* name = e.Find("name");
      ASSERT_NE(name, nullptr);
      if (name->string == "test/json_span") found_span = true;
      ASSERT_NE(e.Find("ts"), nullptr);
      ASSERT_NE(e.Find("dur"), nullptr);
      ASSERT_NE(e.Find("tid"), nullptr);
    } else if (ph->string == "M") {
      found_meta = true;
    }
  }
  EXPECT_TRUE(found_span);
  EXPECT_TRUE(found_meta);
}

TEST_F(ObsTest, AggregateSpansComputesCounts) {
  for (int i = 0; i < 3; ++i) {
    MIVID_TRACE_SPAN("test/agg");
  }
  const std::vector<SpanStats> stats = AggregateSpans();
  bool found = false;
  for (const SpanStats& s : stats) {
    if (s.name != "test/agg") continue;
    found = true;
    EXPECT_EQ(s.count, 3u);
    EXPECT_LE(s.p50_ms, s.p95_ms);
    EXPECT_LE(s.p95_ms, s.max_ms);
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(FormatSpanReport().empty());
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  EnableTracing(false);
  { MIVID_TRACE_SPAN("test/never"); }
  for (const TraceEventData& e : CollectTraceEvents()) {
    EXPECT_STRNE(e.name, "test/never");
  }
}

TEST(JsonParserTest, ParsesScalarsAndNesting) {
  Result<JsonValue> doc =
      ParseJson(R"({"a": 1.5, "b": [true, null, "x\n\"y\""], "c": {}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_DOUBLE_EQ(doc->Find("a")->number, 1.5);
  const JsonValue* b = doc->Find("b");
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].bool_value);
  EXPECT_EQ(b->array[1].type, JsonValue::Type::kNull);
  EXPECT_EQ(b->array[2].string, "x\n\"y\"");
  EXPECT_TRUE(doc->Find("c")->is_object());
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1, 2,]").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(JsonParserTest, EscapeRoundTrips) {
  const std::string raw = "tab\t quote\" backslash\\ newline\n";
  const std::string doc = "\"" + JsonEscape(raw) + "\"";
  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string, raw);
}

TEST(LoggingTest, EveryNTickFiresOnScheduledOccurrences) {
  std::atomic<uint64_t> counter{0};
  std::vector<int> fired;
  for (int i = 1; i <= 10; ++i) {
    if (internal::EveryNTick(&counter, 4)) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 5, 9}));
  std::atomic<uint64_t> always{0};
  EXPECT_TRUE(internal::EveryNTick(&always, 0));
  EXPECT_TRUE(internal::EveryNTick(&always, 1));
}

TEST(LoggingTest, LogEveryNEmitsFirstAndNth) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  for (int i = 0; i < 7; ++i) {
    MIVID_LOG_EVERY_N(Warn, 3) << "tick " << i;
  }
  const std::string captured = ::testing::internal::GetCapturedStderr();
  SetLogLevel(saved);
  EXPECT_NE(captured.find("tick 0"), std::string::npos);
  EXPECT_EQ(captured.find("tick 1"), std::string::npos);
  EXPECT_EQ(captured.find("tick 2"), std::string::npos);
  EXPECT_NE(captured.find("tick 3"), std::string::npos);
  EXPECT_NE(captured.find("tick 6"), std::string::npos);
}

TEST(LoggingTest, ShouldLogRespectsThresholdExceptFatal) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(internal::ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(internal::ShouldLog(LogLevel::kError));
  EXPECT_TRUE(internal::ShouldLog(LogLevel::kFatal));
  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(internal::ShouldLog(LogLevel::kError));
  EXPECT_TRUE(internal::ShouldLog(LogLevel::kFatal));
  SetLogLevel(saved);
}

TEST(LoggingDeathTest, FatalEmitsEvenAtLogLevelOff) {
  // The satellite fix under test: FATAL must report and abort even when
  // the threshold suppresses everything else.
  EXPECT_DEATH(
      {
        SetLogLevel(LogLevel::kOff);
        MIVID_LOG(Fatal) << "fatal boom";
      },
      "fatal boom");
}

TEST_F(ObsTest, FormatMetricsReportMentionsMetrics) {
  MIVID_METRIC_COUNT("report/counter", 2);
  { MIVID_TRACE_SPAN("report/span"); }
  const std::string report = FormatMetricsReport();
  EXPECT_NE(report.find("report/counter"), std::string::npos);
  EXPECT_NE(report.find("report/span"), std::string::npos);
}

}  // namespace
}  // namespace mivid

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mivid {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunBatch(tasks);
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No explicit wait: the destructor must run everything already queued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i % 4 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(pool.RunBatch(tasks), std::runtime_error);
  // The batch still runs to completion (no task is abandoned mid-queue).
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ParallelForExceptionPropagates) {
  SetGlobalThreadCount(4);
  EXPECT_THROW(ParallelFor(100, 10,
                           [](size_t begin, size_t) {
                             if (begin == 50) {
                               throw std::runtime_error("chunk failed");
                             }
                           }),
               std::runtime_error);
  SetGlobalThreadCount(0);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  SetGlobalThreadCount(4);
  std::vector<int> out(64, 0);
  // Outer ParallelFor puts chunks on workers; the inner call inside a
  // worker must execute inline instead of deadlocking on the queue.
  ParallelFor(out.size(), 8, [&](size_t begin, size_t end) {
    ParallelFor(end - begin, 2, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) out[begin + i] = static_cast<int>(i);
    });
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i % 8));
  }
  SetGlobalThreadCount(0);
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  auto chunk_spans = [](size_t n, size_t grain) {
    std::vector<std::pair<size_t, size_t>> spans(ParallelChunkCount(n, grain));
    ParallelFor(n, grain, [&](size_t begin, size_t end) {
      spans[begin / grain] = {begin, end};
    });
    return spans;
  };
  SetGlobalThreadCount(1);
  const auto serial = chunk_spans(103, 10);
  SetGlobalThreadCount(7);
  const auto parallel = chunk_spans(103, 10);
  SetGlobalThreadCount(0);
  EXPECT_EQ(serial, parallel);
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.back().second, 103u);
}

TEST(ThreadPoolTest, ParallelReduceMatchesSerialSum) {
  std::vector<double> values(1000);
  std::iota(values.begin(), values.end(), 1.0);
  auto sum = [&] {
    return ParallelReduce<double>(
        values.size(), 64, 0.0,
        [&](size_t begin, size_t end) {
          double acc = 0.0;
          for (size_t i = begin; i < end; ++i) acc += values[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  SetGlobalThreadCount(1);
  const double serial = sum();
  SetGlobalThreadCount(8);
  const double parallel = sum();
  SetGlobalThreadCount(0);
  EXPECT_EQ(serial, parallel);  // bit-identical, not just approximately
  EXPECT_EQ(serial, 1000.0 * 1001.0 / 2.0);
}

TEST(ThreadPoolTest, GlobalThreadCountOverride) {
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadCount(), 3);
  SetGlobalThreadCount(0);
  EXPECT_GE(GlobalThreadCount(), 1);
}

}  // namespace
}  // namespace mivid

// Assorted edge-case coverage: degenerate SVM configurations, session
// bounds, query-engine options, homography inverses, scaler dimensions,
// experiment smoothing option, and whole-experiment determinism.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "geometry/homography.h"
#include "retrieval/session.h"
#include "svm/one_class_svm.h"

namespace mivid {
namespace {

TEST(SvmEdgeTest, PolyKernelOneClassWorks) {
  Rng rng(3);
  std::vector<Vec> train;
  for (int i = 0; i < 30; ++i) {
    train.push_back({rng.Gaussian(2, 0.3), rng.Gaussian(2, 0.3)});
  }
  OneClassSvmOptions options;
  options.nu = 0.2;
  options.kernel.type = KernelType::kPoly;
  options.kernel.poly_degree = 2;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  // Polynomial kernels are not localized, so no in-ball geometry can be
  // asserted in input space; the nu-property must still hold.
  EXPECT_LE(model->training_outlier_fraction(), options.nu + 0.1);
  EXPECT_GE(model->num_support_vectors(), 1u);
}

TEST(SvmEdgeTest, TinySigmaMemorizesLargeSigmaBlurs) {
  std::vector<Vec> train{{0.0, 0.0}, {1.0, 1.0}};
  OneClassSvmOptions tiny;
  tiny.nu = 0.5;
  tiny.kernel.sigma = 0.01;
  Result<OneClassSvmModel> m_tiny = OneClassSvmTrainer(tiny).Train(train);
  ASSERT_TRUE(m_tiny.ok());
  // With a tiny bandwidth the midpoint is far outside the support.
  EXPECT_LT(m_tiny->DecisionValue({0.5, 0.5}),
            m_tiny->DecisionValue({0.0, 0.0}));

  OneClassSvmOptions wide;
  wide.nu = 0.5;
  wide.kernel.sigma = 100.0;
  Result<OneClassSvmModel> m_wide = OneClassSvmTrainer(wide).Train(train);
  ASSERT_TRUE(m_wide.ok());
  // With a huge bandwidth everything nearby looks the same.
  EXPECT_NEAR(m_wide->DecisionValue({0.5, 0.5}),
              m_wide->DecisionValue({0.0, 0.0}), 1e-3);
}

MilDataset TinyCorpus(int n) {
  MilDataset ds;
  Rng rng(5);
  for (int b = 0; b < n; ++b) {
    MilBag bag;
    bag.id = b;
    MilInstance inst;
    inst.bag_id = b;
    inst.instance_id = 0;
    inst.features = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    inst.raw_features = inst.features;
    bag.instances.push_back(inst);
    ds.AddBag(std::move(bag));
  }
  return ds;
}

TEST(SessionEdgeTest, TopNLargerThanCorpus) {
  SessionOptions options;
  options.top_n = 100;
  RetrievalSession session(TinyCorpus(5), options);
  EXPECT_EQ(session.TopBags().size(), 5u);
}

TEST(SessionEdgeTest, EmptyFeedbackAdvancesRound) {
  RetrievalSession session(TinyCorpus(5), SessionOptions{});
  ASSERT_TRUE(session.SubmitFeedback({}).ok());
  EXPECT_EQ(session.round(), 1);
  EXPECT_FALSE(session.engine().trained());
}

TEST(SessionEdgeTest, RestoreOnEmptyLabelsIsHarmless) {
  RetrievalSession session(TinyCorpus(5), SessionOptions{});
  ASSERT_TRUE(session.Restore({}, 7).ok());
  EXPECT_EQ(session.round(), 7);
}

TEST(HomographyEdgeTest, SingularMatrixHasNoInverse) {
  Matrix m(3, 3);  // all zeros
  Homography h(m);
  EXPECT_FALSE(h.Inverse().ok());
}

TEST(HomographyEdgeTest, PointOnLineAtInfinity) {
  Matrix m = Matrix::Identity(3);
  m.At(2, 0) = 1.0;
  m.At(2, 2) = 0.0;  // w = x; the y axis maps to infinity
  Homography h(m);
  const Point2 far = h.Apply({0.0, 5.0});
  EXPECT_GT(far.Norm(), 1e10);
}

TEST(ExperimentEdgeTest, SmoothedPipelineRuns) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 600;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kGroundTruthTracks;
  options.smooth_tracks = true;
  options.feedback_rounds = 1;
  options.top_n = 5;
  Result<ExperimentResult> result = RunRfExperiment(scenario, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->num_windows, 0u);
}

TEST(ExperimentEdgeTest, IncludeVelocityFourDimPipeline) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 600;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kGroundTruthTracks;
  options.features.include_velocity = true;
  options.feedback_rounds = 1;
  Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, options);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->scaler.dimension(), 4u);
  for (const auto& bag : analysis->dataset.bags()) {
    for (const auto& inst : bag.instances) {
      EXPECT_EQ(inst.features.size(), 12u);  // 3 checkpoints x 4 features
    }
  }
  Result<ExperimentResult> result = RunRfExperimentOnAnalysis(
      *analysis, scenario.name, scenario.total_frames, options);
  ASSERT_TRUE(result.ok());
}

TEST(ExperimentEdgeTest, FullProtocolIsDeterministic) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 800;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  options.feedback_rounds = 2;
  Result<ExperimentResult> a = RunRfExperiment(scenario, options);
  Result<ExperimentResult> b = RunRfExperiment(scenario, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->curves.size(), b->curves.size());
  for (size_t i = 0; i < a->curves.size(); ++i) {
    EXPECT_EQ(a->curves[i].accuracy, b->curves[i].accuracy);
  }
}

TEST(MilRfEdgeTest, TrainingScoreFloorDropsFeaturelessBags) {
  // Two relevant bags: one with a strong signature, one whose best TS is
  // featureless. With the floor, only the strong one trains the model.
  MilDataset ds;
  for (int b = 0; b < 3; ++b) {
    MilBag bag;
    bag.id = b;
    MilInstance inst;
    inst.bag_id = b;
    inst.instance_id = 0;
    inst.features = b == 0 ? Vec{0.9, 0.8, 0.7} : Vec{0.001, 0.001, 0.001};
    inst.raw_features = inst.features;
    bag.instances.push_back(inst);
    ds.AddBag(std::move(bag));
  }
  (void)ds.SetLabel(0, BagLabel::kRelevant);
  (void)ds.SetLabel(1, BagLabel::kRelevant);

  MilRfOptions with_floor;
  with_floor.min_training_score = 0.1;
  MilRfEngine floored(&ds, with_floor);
  ASSERT_TRUE(floored.Learn().ok());
  EXPECT_EQ(floored.last_training_size(), 1u);

  MilRfOptions no_floor;
  MilRfEngine unfloored(&ds, no_floor);
  ASSERT_TRUE(unfloored.Learn().ok());
  EXPECT_EQ(unfloored.last_training_size(), 2u);
}

TEST(MilRfEdgeTest, AutoSigmaDegenerateTrainingKeepsDefault) {
  // All relevant instances identical: median pairwise distance is zero,
  // so the configured sigma must survive.
  MilDataset ds;
  for (int b = 0; b < 4; ++b) {
    MilBag bag;
    bag.id = b;
    MilInstance inst;
    inst.bag_id = b;
    inst.instance_id = 0;
    inst.features = {0.5, 0.5, 0.5};
    inst.raw_features = inst.features;
    bag.instances.push_back(inst);
    ds.AddBag(std::move(bag));
  }
  for (int b = 0; b < 3; ++b) (void)ds.SetLabel(b, BagLabel::kRelevant);
  MilRfOptions options;
  options.kernel.sigma = 0.77;
  MilRfEngine engine(&ds, options);
  ASSERT_TRUE(engine.Learn().ok());
  EXPECT_DOUBLE_EQ(engine.model()->kernel().sigma, 0.77);
}

}  // namespace
}  // namespace mivid

// Tests for event/: checkpoint features (Sec. 4), scaler, sliding windows
// (Sec. 5.1), event models.

#include <cmath>

#include <gtest/gtest.h>

#include "event/event_model.h"
#include "event/features.h"
#include "event/sliding_window.h"

namespace mivid {
namespace {

Track StraightTrack(int id, int first_frame, int last_frame, double speed,
                    double y = 100.0, double x0 = 0.0) {
  Track t;
  t.id = id;
  for (int f = first_frame; f <= last_frame; ++f) {
    t.points.push_back({f, {x0 + speed * (f - first_frame), y}, {}});
  }
  return t;
}

TEST(FeaturesTest, ConstantSpeedHasZeroVdiffTheta) {
  const std::vector<Track> tracks{StraightTrack(0, 0, 60, 3.0)};
  FeatureOptions options;
  const auto features = ComputeTrackFeatures(tracks, options);
  ASSERT_EQ(features.size(), 1u);
  ASSERT_GE(features[0].points.size(), 10u);
  for (size_t i = 2; i < features[0].points.size(); ++i) {
    const auto& p = features[0].points[i];
    EXPECT_NEAR(p.speed, 3.0, 1e-9);
    EXPECT_NEAR(p.vdiff, 0.0, 1e-9);
    EXPECT_NEAR(p.theta, 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(p.inv_mdist, 0.0);  // no other vehicle
  }
}

TEST(FeaturesTest, SuddenStopProducesVdiffSpike) {
  Track t;
  t.id = 0;
  double x = 0;
  for (int f = 0; f <= 60; ++f) {
    const double speed = f < 30 ? 3.0 : 0.0;  // hard stop at frame 30
    x += speed;
    t.points.push_back({f, {x, 100}, {}});
  }
  const auto features = ComputeTrackFeatures({t}, FeatureOptions{});
  double max_vdiff = 0;
  for (const auto& p : features[0].points) max_vdiff = std::max(max_vdiff, p.vdiff);
  // Checkpoint sampling smears the instantaneous stop across one interval,
  // so the spike is bounded by but close to the full speed change.
  EXPECT_GE(max_vdiff, 2.0);
  EXPECT_LE(max_vdiff, 3.0 + 1e-9);
}

TEST(FeaturesTest, TurnProducesTheta) {
  Track t;
  t.id = 0;
  // Move east for 30 frames then north for 30: a 90-degree turn.
  for (int f = 0; f <= 30; ++f) t.points.push_back({f, {3.0 * f, 100}, {}});
  for (int f = 31; f <= 60; ++f) {
    t.points.push_back({f, {90, 100 - 3.0 * (f - 30)}, {}});
  }
  const auto features = ComputeTrackFeatures({t}, FeatureOptions{});
  double max_theta = 0;
  for (const auto& p : features[0].points) max_theta = std::max(max_theta, p.theta);
  EXPECT_NEAR(max_theta, M_PI / 2, 0.05);
}

TEST(FeaturesTest, MinMotionGateSuppressesJitterTheta) {
  Track t;
  t.id = 0;
  // Nearly stationary with sub-pixel jitter.
  for (int f = 0; f <= 60; ++f) {
    t.points.push_back({f, {100.0 + 0.05 * (f % 2), 100.0 - 0.05 * (f % 3)}, {}});
  }
  FeatureOptions options;
  options.min_motion = 1.0;
  const auto features = ComputeTrackFeatures({t}, options);
  for (const auto& p : features[0].points) {
    EXPECT_DOUBLE_EQ(p.theta, 0.0);
  }
}

TEST(FeaturesTest, MdistBetweenCoVisibleVehicles) {
  const std::vector<Track> tracks{StraightTrack(0, 0, 60, 3.0, 100.0),
                                  StraightTrack(1, 0, 60, 3.0, 120.0)};
  const auto features = ComputeTrackFeatures(tracks, FeatureOptions{});
  ASSERT_EQ(features.size(), 2u);
  // Same x at every checkpoint, y separated by 20 px.
  for (const auto& p : features[0].points) {
    EXPECT_NEAR(p.inv_mdist, 1.0 / 20.0, 1e-9);
  }
}

TEST(FeaturesTest, MdistClampAvoidsInfinity) {
  const std::vector<Track> tracks{StraightTrack(0, 0, 30, 3.0, 100.0),
                                  StraightTrack(1, 0, 30, 3.0, 100.3)};
  FeatureOptions options;
  options.min_mdist = 1.0;
  const auto features = ComputeTrackFeatures(tracks, options);
  for (const auto& p : features[0].points) {
    EXPECT_LE(p.inv_mdist, 1.0);
  }
}

TEST(FeaturesTest, ShortTracksDropped) {
  Track stub;
  stub.id = 7;
  stub.points = {{0, {0, 0}, {}}, {1, {1, 0}, {}}};  // < 2 checkpoints
  const auto features = ComputeTrackFeatures({stub}, FeatureOptions{});
  EXPECT_TRUE(features.empty());
}

TEST(FeaturesTest, VelocityFeatureOptIn) {
  const std::vector<Track> tracks{StraightTrack(0, 0, 30, 2.0)};
  FeatureOptions options;
  const auto features = ComputeTrackFeatures(tracks, options);
  EXPECT_EQ(features[0].points[2].ToVector(false).size(), 3u);
  const Vec with_v = features[0].points[2].ToVector(true);
  ASSERT_EQ(with_v.size(), 4u);
  EXPECT_NEAR(with_v[3], 2.0, 1e-9);
}

TEST(FeatureScalerTest, NormalizesToUnitRangeAndClamps) {
  // A stopping track plus a turning track give every dimension some spread.
  Track stopper;
  stopper.id = 0;
  double x = 0;
  for (int f = 0; f <= 60; ++f) {
    x += f < 30 ? 3.0 : 0.0;
    stopper.points.push_back({f, {x, 100}, {}});
  }
  Track turner;
  turner.id = 1;
  for (int f = 0; f <= 30; ++f) turner.points.push_back({f, {3.0 * f, 140}, {}});
  for (int f = 31; f <= 60; ++f) {
    turner.points.push_back({f, {90, 140 + 3.0 * (f - 30)}, {}});
  }
  const auto features =
      ComputeTrackFeatures({stopper, turner}, FeatureOptions{});
  const FeatureScaler scaler = FeatureScaler::Fit(features, false);
  ASSERT_EQ(scaler.dimension(), 3u);
  for (const auto& tf : features) {
    for (const auto& p : tf.points) {
      const Vec n = scaler.Apply(p.ToVector(false));
      for (double v : n) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
  // Every dimension has spread here, so extremes clamp to exactly 1.
  for (size_t d = 0; d < 3; ++d) EXPECT_GT(scaler.upper()[d], scaler.lower()[d]);
  Vec extreme{1e9, 1e9, 1e9};
  for (double v : scaler.Apply(extreme)) EXPECT_DOUBLE_EQ(v, 1.0);
  // A dimension with no spread maps to 0 (defined, not NaN).
  const std::vector<Track> flat{StraightTrack(2, 0, 40, 2.0)};
  const FeatureScaler degenerate =
      FeatureScaler::Fit(ComputeTrackFeatures(flat, FeatureOptions{}), false);
  EXPECT_DOUBLE_EQ(degenerate.Apply({0.5, 0.5, 0.5})[1], 0.0);
}

TEST(FeatureScalerTest, EmptyInputYieldsIdentityRange) {
  const FeatureScaler scaler = FeatureScaler::Fit({}, false);
  EXPECT_EQ(scaler.dimension(), 3u);
  const Vec n = scaler.Apply({0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(n[0], 0.5);
}

TEST(SlidingWindowTest, TilingCountsAndSpans) {
  // One track covering frames 0..89 -> checkpoints 0,5,...,85.
  const std::vector<Track> tracks{StraightTrack(0, 0, 89, 2.0)};
  FeatureOptions fopts;
  WindowOptions wopts;
  wopts.window_size = 3;
  wopts.stride = 3;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  const auto windows = ExtractWindows(features, 90, fopts, wopts);
  // Grid 0..85; windows starting at 0,15,30,45,60,75 fit (last checkpoint
  // 75+10=85 <= 85).
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_EQ(windows[0].begin_frame, 0);
  EXPECT_EQ(windows[0].end_frame, 10);
  EXPECT_EQ(windows[5].begin_frame, 75);
  for (const auto& vs : windows) {
    ASSERT_EQ(vs.ts.size(), 1u);
    EXPECT_EQ(vs.ts[0].points.size(), 3u);
  }
}

TEST(SlidingWindowTest, OverlappingStride) {
  const std::vector<Track> tracks{StraightTrack(0, 0, 44, 2.0)};
  FeatureOptions fopts;
  WindowOptions wopts;
  wopts.stride = 1;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  const auto windows = ExtractWindows(features, 45, fopts, wopts);
  // Checkpoints 0..40; window starts 0,5,...,30 (start+10 <= 40).
  EXPECT_EQ(windows.size(), 7u);
}

TEST(SlidingWindowTest, PartialCoverageExcluded) {
  // Track present only in the middle of the clip.
  const std::vector<Track> tracks{StraightTrack(0, 20, 49, 2.0)};
  FeatureOptions fopts;
  WindowOptions wopts;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  const auto windows = ExtractWindows(features, 90, fopts, wopts);
  // Checkpoints 20..45 exist; only window [15..25]? No: needs 15,20,25 -
  // 15 missing. Window [30..40] fully covered.
  for (const auto& vs : windows) {
    for (const auto& ts : vs.ts) {
      EXPECT_EQ(ts.points.size(), 3u);
      EXPECT_GE(ts.points.front().frame, 20);
      EXPECT_LE(ts.points.back().frame, 45);
    }
  }
  EXPECT_EQ(CountTrajectorySequences(windows), 1u);
}

TEST(SlidingWindowTest, EmptyWindowsDroppedByDefaultKeptOnRequest) {
  const std::vector<Track> tracks{StraightTrack(0, 0, 29, 2.0)};
  FeatureOptions fopts;
  WindowOptions wopts;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  const auto dropped = ExtractWindows(features, 300, fopts, wopts);
  wopts.keep_empty = true;
  const auto kept = ExtractWindows(features, 300, fopts, wopts);
  EXPECT_LT(dropped.size(), kept.size());
  // vs_ids remain globally consistent in both modes.
  for (size_t i = 1; i < dropped.size(); ++i) {
    EXPECT_GT(dropped[i].vs_id, dropped[i - 1].vs_id);
  }
}

TEST(SlidingWindowTest, FlattenConcatenatesNormalizedPoints) {
  const std::vector<Track> tracks{StraightTrack(0, 0, 60, 3.0)};
  FeatureOptions fopts;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  const FeatureScaler scaler = FeatureScaler::Fit(features, false);
  const auto windows = ExtractWindows(features, 61, fopts, WindowOptions{});
  ASSERT_FALSE(windows.empty());
  const Vec flat = windows[0].ts[0].Flatten(scaler, false);
  EXPECT_EQ(flat.size(), 9u);  // 3 checkpoints x 3 features
  const Vec raw = windows[0].ts[0].FlattenRaw(false);
  EXPECT_EQ(raw.size(), 9u);
}

TEST(EventModelTest, AccidentScoreIsSquareSum) {
  const EventModel m = EventModel::Accident(3);
  EXPECT_DOUBLE_EQ(m.ScorePoint({1.0, 0.5, 2.0}), 1.0 + 0.25 + 4.0);
  EXPECT_DOUBLE_EQ(m.ScorePoint({0, 0, 0}), 0.0);
}

TEST(EventModelTest, UTurnWeightsDirectionChange) {
  const EventModel m = EventModel::UTurn(3);
  EXPECT_GT(m.ScorePoint({0, 0, 1}), m.ScorePoint({1, 0, 0}));
}

TEST(EventModelTest, SpeedingUsesVelocity) {
  const EventModel m = EventModel::Speeding();
  ASSERT_EQ(m.weights.size(), 4u);
  EXPECT_GT(m.ScorePoint({0, 0, 0, 1}), m.ScorePoint({1, 0, 0, 0}));
}

TEST(EventModelTest, TsAndVsScoresAreMaxima) {
  const std::vector<Track> tracks{StraightTrack(0, 0, 60, 3.0)};
  FeatureOptions fopts;
  const auto features = ComputeTrackFeatures(tracks, fopts);
  const FeatureScaler scaler = FeatureScaler::Fit(features, false);
  const auto windows = ExtractWindows(features, 61, fopts, WindowOptions{});
  const EventModel m = EventModel::Accident(3);
  ASSERT_FALSE(windows.empty());
  const double vs_score = m.ScoreVs(windows[0], scaler, false);
  double max_ts = 0;
  for (const auto& ts : windows[0].ts) {
    max_ts = std::max(max_ts, m.ScoreTs(ts, scaler, false));
  }
  EXPECT_DOUBLE_EQ(vs_score, max_ts);
}

}  // namespace
}  // namespace mivid

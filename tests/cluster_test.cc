// Tests for src/cluster/: placement determinism and minimal movement,
// exact top-k merging, and the coordinator end-to-end over real
// RetrievalServer workers on loopback TCP — including bit-identical
// rankings vs a single-process server and SIGKILL-grade failover
// (worker Stop() mid-session, session resumes elsewhere via journal).

#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/coordinator.h"
#include "cluster/merger.h"
#include "cluster/placement.h"
#include "db/video_db.h"
#include "obs/json.h"
#include "serve/server.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  // The pid suffix keeps concurrent test processes (ctest -j runs each
  // gtest case in its own process) from clobbering each other's db.
  explicit TempDir(const char* name)
      : path_((fs::temp_directory_path() /
               (std::string(name) + "." + std::to_string(getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JsonValue Parse(const std::string& response) {
  Result<JsonValue> doc = ParseJson(response);
  EXPECT_TRUE(doc.ok()) << response;
  return doc.ok() ? std::move(doc).value() : JsonValue{};
}

bool IsOk(const JsonValue& doc) {
  const JsonValue* ok = doc.Find("ok");
  return ok != nullptr && ok->type == JsonValue::Type::kBool && ok->bool_value;
}

// ---------------------------------------------------------------------------
// Placement ring

TEST(PlacementTest, HashIsDeterministic) {
  EXPECT_EQ(PlacementHash(""), 17665956581633026203ull);  // FNV basis, avalanched
  EXPECT_EQ(PlacementHash("cam0"), PlacementHash("cam0"));
  EXPECT_NE(PlacementHash("cam0"), PlacementHash("cam1"));
}

TEST(PlacementTest, OwnerIsDeterministicAcrossRings) {
  PlacementRing a(64), b(64);
  for (const char* w : {"w0", "w1", "w2"}) {
    a.Add(w);
    b.Add(w);
  }
  for (int i = 0; i < 200; ++i) {
    const std::string camera = "cam" + std::to_string(i);
    auto oa = a.Owner(camera);
    auto ob = b.Owner(camera);
    ASSERT_TRUE(oa.ok() && ob.ok());
    EXPECT_EQ(oa.value(), ob.value()) << camera;
  }
}

TEST(PlacementTest, EveryWorkerOwnsSomething) {
  PlacementRing ring(64);
  for (const char* w : {"w0", "w1", "w2"}) ring.Add(w);
  std::map<std::string, int> owned;
  for (int i = 0; i < 300; ++i) {
    auto owner = ring.Owner("cam" + std::to_string(i));
    ASSERT_TRUE(owner.ok());
    owned[owner.value()]++;
  }
  EXPECT_EQ(owned.size(), 3u);  // 64 vnodes spread 300 keys over all three
  for (const auto& [worker, count] : owned) {
    EXPECT_GT(count, 0) << worker;
  }
}

TEST(PlacementTest, RemovalMovesOnlyTheDeadWorkersKeys) {
  PlacementRing ring(64);
  for (const char* w : {"w0", "w1", "w2"}) ring.Add(w);
  std::map<std::string, std::string> before;
  for (int i = 0; i < 300; ++i) {
    const std::string camera = "cam" + std::to_string(i);
    before[camera] = ring.Owner(camera).value();
  }
  ring.Remove("w1");
  EXPECT_FALSE(ring.Contains("w1"));
  for (const auto& [camera, owner] : before) {
    const std::string after = ring.Owner(camera).value();
    if (owner == "w1") {
      EXPECT_NE(after, "w1") << camera;  // re-homed to a survivor
    } else {
      EXPECT_EQ(after, owner) << camera;  // everyone else stays put
    }
  }
}

TEST(PlacementTest, EmptyRingFailsPrecondition) {
  PlacementRing ring;
  EXPECT_TRUE(ring.Owner("cam0").status().IsFailedPrecondition());
  ring.Add("w0");
  EXPECT_TRUE(ring.Owner("cam0").ok());
  ring.Remove("w0");
  EXPECT_TRUE(ring.Owner("cam0").status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Exact top-k merge

TEST(MergerTest, OrdersByScoreThenCameraThenBag) {
  EXPECT_TRUE(ClusterRankLess({"a", 1, 2.0}, {"a", 0, 1.0}));  // score desc
  EXPECT_TRUE(ClusterRankLess({"a", 9, 1.0}, {"b", 0, 1.0}));  // camera asc
  EXPECT_TRUE(ClusterRankLess({"a", 0, 1.0}, {"a", 1, 1.0}));  // bag asc
}

TEST(MergerTest, MergesSortedPartsExactly) {
  std::vector<std::vector<ClusterScoredBag>> parts = {
      {{"camA", 0, 9.0}, {"camA", 1, 3.0}, {"camA", 2, 1.0}},
      {{"camB", 5, 8.0}, {"camB", 6, 2.0}},
      {},
      {{"camC", 7, 10.0}},
  };
  const auto merged = MergeTopK(parts, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].camera, "camC");
  EXPECT_EQ(merged[0].bag_id, 7);
  EXPECT_EQ(merged[1].camera, "camA");
  EXPECT_EQ(merged[1].bag_id, 0);
  EXPECT_EQ(merged[2].camera, "camB");
  EXPECT_EQ(merged[2].bag_id, 5);
  EXPECT_EQ(merged[3].camera, "camA");
  EXPECT_EQ(merged[3].bag_id, 1);

  // k == 0: the full merge, still globally ordered.
  const auto all = MergeTopK(parts, 0);
  ASSERT_EQ(all.size(), 6u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(ClusterRankLess(all[i - 1], all[i]) ||
                (!ClusterRankLess(all[i - 1], all[i]) &&
                 !ClusterRankLess(all[i], all[i - 1])));
  }
}

TEST(MergerTest, TieScoresBreakByCameraThenBag) {
  std::vector<std::vector<ClusterScoredBag>> parts = {
      {{"camB", 1, 5.0}, {"camB", 3, 5.0}},
      {{"camA", 2, 5.0}},
  };
  const auto merged = MergeTopK(parts, 0);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].camera, "camA");
  EXPECT_EQ(merged[1].bag_id, 1);
  EXPECT_EQ(merged[2].bag_id, 3);
}

TEST(MergerTest, MergeIsShardingInvariant) {
  // The same 9 bags split 1-way vs 3-way must merge identically.
  std::vector<ClusterScoredBag> all;
  for (int i = 0; i < 9; ++i) {
    all.push_back({"cam" + std::to_string(i % 3), i,
                   static_cast<double>((i * 7) % 5)});
  }
  std::vector<std::vector<ClusterScoredBag>> by_camera(3);
  for (const auto& bag : all) {
    by_camera[bag.camera.back() - '0'].push_back(bag);
  }
  for (auto& part : by_camera) {
    std::sort(part.begin(), part.end(), ClusterRankLess);
  }
  std::vector<ClusterScoredBag> flat_sorted = all;
  std::sort(flat_sorted.begin(), flat_sorted.end(), ClusterRankLess);

  const auto merged = MergeTopK(by_camera, 5);
  ASSERT_EQ(merged.size(), 5u);
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].camera, flat_sorted[i].camera) << i;
    EXPECT_EQ(merged[i].bag_id, flat_sorted[i].bag_id) << i;
    EXPECT_EQ(merged[i].score, flat_sorted[i].score) << i;
  }
}

// ---------------------------------------------------------------------------
// Coordinator options

TEST(CoordinatorOptionsTest, ValidationFailsFast) {
  CoordinatorOptions good;
  good.socket_path = "/tmp/mivid_coord_validate.sock";
  good.workers = {"127.0.0.1:1", "127.0.0.1:2"};
  EXPECT_TRUE(ValidateCoordinatorOptions(good).ok());

  CoordinatorOptions no_listener = good;
  no_listener.socket_path.clear();
  EXPECT_TRUE(
      ValidateCoordinatorOptions(no_listener).IsInvalidArgument());

  CoordinatorOptions no_workers = good;
  no_workers.workers.clear();
  EXPECT_TRUE(
      ValidateCoordinatorOptions(no_workers).IsInvalidArgument());

  CoordinatorOptions dup = good;
  dup.workers = {"127.0.0.1:1", "127.0.0.1:1"};
  EXPECT_TRUE(ValidateCoordinatorOptions(dup).IsInvalidArgument());

  CoordinatorOptions bad_top = good;
  bad_top.top_n = 0;
  EXPECT_TRUE(
      ValidateCoordinatorOptions(bad_top).IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// End-to-end fleet: real workers on loopback TCP behind a coordinator.

/// One database shared by the fleet tests: four cameras, tunnel clips.
struct ClusterTestEnv {
  TempDir dir{"mivid_cluster_test"};
  std::unique_ptr<VideoDb> db;
  std::vector<std::string> cameras;
};

ClusterTestEnv& Env() {
  static ClusterTestEnv* env = [] {
    auto* e = new ClusterTestEnv();
    VideoDbOptions options;
    options.create_if_missing = true;
    auto opened = VideoDb::Open(e->dir.path(), options);
    if (!opened.ok()) std::abort();
    e->db = std::move(opened).value();
    for (int i = 0; i < 4; ++i) {
      const std::string camera = "cam" + std::to_string(i);
      TunnelScenarioOptions scenario_options;
      scenario_options.total_frames = 700;
      scenario_options.num_wall_crashes = 1;
      scenario_options.num_sudden_stops = 1;
      scenario_options.num_speeding = 0;
      scenario_options.num_uturns = 0;
      const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
      TrafficWorld world(scenario);
      const GroundTruth gt = world.Run();
      ClipInfo info;
      info.camera_id = camera;
      info.total_frames = scenario.total_frames;
      if (!e->db->IngestClip(info, gt.tracks, gt.incidents).ok()) std::abort();
      e->cameras.push_back(camera);
    }
    return e;
  }();
  return *env;
}

/// A 3-worker fleet over Env()'s database, each worker a real
/// RetrievalServer on an ephemeral loopback TCP port.
struct Fleet {
  std::vector<std::unique_ptr<RetrievalServer>> workers;
  std::vector<std::string> endpoints;
  std::unique_ptr<Coordinator> coord;

  explicit Fleet(int heartbeat_ms = 0) {
    for (int i = 0; i < 3; ++i) {
      ServeOptions options;
      options.tcp_port = 0;  // kernel-assigned: tests never collide
      options.worker_id = "w" + std::to_string(i);
      auto server =
          std::make_unique<RetrievalServer>(Env().db.get(), options);
      if (!server->Start().ok()) std::abort();
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(server->tcp_port()));
      workers.push_back(std::move(server));
    }
    CoordinatorOptions options;
    options.tcp_port = 0;
    options.workers = endpoints;
    options.heartbeat_ms = heartbeat_ms;
    coord = std::make_unique<Coordinator>(options);
    if (!coord->Start().ok()) std::abort();
  }

  ~Fleet() {
    coord->Stop();
    for (auto& worker : workers) worker->Stop();
  }

  std::string Call(const std::string& line) {
    return coord->HandleLine(line);
  }
};

TEST(ClusterTest, SingleCameraSessionIsByteIdenticalPassthrough) {
  Fleet fleet;
  // The same conversation against a plain single-process server.
  ServeOptions solo_options;
  RetrievalServer solo(Env().db.get(), solo_options);

  const std::vector<std::string> script = {
      R"({"cmd":"open","session":"pass1","camera":"cam0"})",
      R"({"cmd":"rank","session":"pass1","top":5})",
      R"({"cmd":"feedback","session":"pass1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]})",
      R"({"cmd":"rank","session":"pass1","top":-1})",
      R"({"cmd":"close","session":"pass1","discard":true})",
  };
  for (const std::string& line : script) {
    SCOPED_TRACE(line);
    const std::string fleet_response = fleet.Call(line);
    const std::string solo_response = solo.HandleLine(line);
    EXPECT_EQ(fleet_response, solo_response);
    ASSERT_TRUE(IsOk(Parse(fleet_response))) << fleet_response;
  }
}

TEST(ClusterTest, MultiCameraRankMergesAllCorporaExactly) {
  Fleet fleet;
  JsonValue open = Parse(fleet.Call(
      R"({"cmd":"open","session":"multi1","cameras":["cam0","cam1","cam2","cam3"]})"));
  ASSERT_TRUE(IsOk(open)) << fleet.Call(R"({"cmd":"stats"})");
  const int total_bags = static_cast<int>(open.Find("bags")->number);
  EXPECT_GT(total_bags, 0);

  // Full ranking covers every bag of every corpus, globally ordered.
  JsonValue rank =
      Parse(fleet.Call(R"({"cmd":"rank","session":"multi1","top":-1})"));
  ASSERT_TRUE(IsOk(rank));
  const JsonValue* ranking = rank.Find("ranking");
  ASSERT_TRUE(ranking != nullptr && ranking->is_array());
  EXPECT_EQ(static_cast<int>(ranking->array.size()), total_bags);
  EXPECT_EQ(static_cast<int>(rank.Find("total")->number), total_bags);
  std::set<std::string> seen_cameras;
  double prev = 1e300;
  for (const JsonValue& item : ranking->array) {
    seen_cameras.insert(item.Find("camera")->string);
    EXPECT_LE(item.Find("score")->number, prev);
    prev = item.Find("score")->number;
  }
  EXPECT_EQ(seen_cameras.size(), 4u);

  // Top-k is the prefix of the full merge.
  JsonValue top = Parse(fleet.Call(
      R"({"cmd":"rank","session":"multi1","top":6})"));
  ASSERT_TRUE(IsOk(top));
  const JsonValue* top_ranking = top.Find("ranking");
  ASSERT_EQ(top_ranking->array.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(top_ranking->array[i].Find("camera")->string,
              ranking->array[i].Find("camera")->string)
        << i;
    EXPECT_EQ(top_ranking->array[i].Find("bag")->number,
              ranking->array[i].Find("bag")->number)
        << i;
  }

  // Camera-qualified feedback routes to the right sub-session.
  JsonValue fed = Parse(fleet.Call(
      R"({"cmd":"feedback","session":"multi1","labels":[)"
      R"({"bag":0,"label":"relevant","camera":"cam1"},)"
      R"({"bag":1,"label":"irrelevant","camera":"cam1"},)"
      R"({"bag":0,"label":"relevant","camera":"cam3"},)"
      R"({"bag":1,"label":"irrelevant","camera":"cam3"}]})"));
  ASSERT_TRUE(IsOk(fed));
  EXPECT_EQ(fed.Find("labeled")->number, 4);

  // Unqualified labels are rejected in a multi-camera session.
  JsonValue bad = Parse(fleet.Call(
      R"({"cmd":"feedback","session":"multi1","labels":[{"bag":0,"label":"relevant"}]})"));
  EXPECT_FALSE(IsOk(bad));

  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"close","session":"multi1","discard":true})"))));
}

TEST(ClusterTest, MultiCameraRankMatchesSingleProcessPerCameraMerge) {
  Fleet fleet;
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"inv1","cameras":["cam0","cam1","cam2"]})"))));
  JsonValue fleet_rank =
      Parse(fleet.Call(R"({"cmd":"rank","session":"inv1","top":10})"));
  ASSERT_TRUE(IsOk(fleet_rank));

  // Reference: one single-process server, one session per camera, merged
  // through the same comparator. Sharding must not change the answer.
  ServeOptions solo_options;
  RetrievalServer solo(Env().db.get(), solo_options);
  std::vector<std::vector<ClusterScoredBag>> parts;
  for (const char* camera : {"cam0", "cam1", "cam2"}) {
    ASSERT_TRUE(IsOk(Parse(solo.HandleLine(
        std::string(R"({"cmd":"open","session":"inv1-)") + camera +
        R"(","camera":")" + camera + "\"}"))));
    JsonValue rank = Parse(solo.HandleLine(
        std::string(R"({"cmd":"rank","session":"inv1-)") + camera +
        R"(","top":10})"));
    ASSERT_TRUE(IsOk(rank));
    std::vector<ClusterScoredBag> part;
    for (const JsonValue& item : rank.Find("ranking")->array) {
      part.push_back(ClusterScoredBag{
          camera, static_cast<int>(item.Find("bag")->number),
          item.Find("score")->number});
    }
    parts.push_back(std::move(part));
  }
  const auto reference = MergeTopK(std::move(parts), 10);

  const JsonValue* ranking = fleet_rank.Find("ranking");
  ASSERT_EQ(ranking->array.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(ranking->array[i].Find("camera")->string,
              reference[i].camera)
        << i;
    EXPECT_EQ(static_cast<int>(ranking->array[i].Find("bag")->number),
              reference[i].bag_id)
        << i;
    EXPECT_EQ(ranking->array[i].Find("score")->number, reference[i].score)
        << i;
  }
  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"close","session":"inv1","discard":true})"))));
}

TEST(ClusterTest, WorkerDeathFailsOverWithIdenticalRanking) {
  Fleet fleet;
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"fo1","camera":"cam2"})"))));
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"feedback","session":"fo1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]})"))));
  const std::string before =
      fleet.Call(R"({"cmd":"rank","session":"fo1","top":-1})");
  ASSERT_TRUE(IsOk(Parse(before)));

  // Find the home worker (the one with requests) and kill it hard: the
  // feedback journal is its only legacy.
  JsonValue stats = Parse(fleet.Call(R"({"cmd":"stats"})"));
  const JsonValue* workers = stats.Find("workers");
  ASSERT_TRUE(workers != nullptr && workers->is_array());
  int victim = -1;
  for (size_t i = 0; i < workers->array.size(); ++i) {
    if (workers->array[i].Find("requests")->number > 0) {
      victim = static_cast<int>(i);
    }
  }
  ASSERT_GE(victim, 0);
  fleet.workers[victim]->Stop();

  // The very next rank detects the death, re-places cam2, re-opens from
  // the journal on a survivor, and answers byte-identically.
  const std::string after =
      fleet.Call(R"({"cmd":"rank","session":"fo1","top":-1})");
  EXPECT_EQ(before, after);

  // The dead worker is off the ring; the survivors carry the load.
  JsonValue after_stats = Parse(fleet.Call(R"({"cmd":"stats"})"));
  EXPECT_EQ(after_stats.Find("workers_alive")->number, 2);
  const JsonValue* failed_over = after_stats.Find("workers");
  ASSERT_NE(failed_over, nullptr);
  EXPECT_FALSE(
      failed_over->array[victim].Find("alive")->bool_value);

  // Feedback keeps flowing on the resumed session.
  EXPECT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"feedback","session":"fo1","labels":[{"bag":2,"label":"irrelevant"}]})"))));
  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"close","session":"fo1","discard":true})"))));
}

TEST(ClusterTest, MultiCameraSessionSurvivesWorkerDeath) {
  Fleet fleet;
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"fo2","cameras":["cam0","cam1","cam2","cam3"]})"))));
  const std::string before =
      fleet.Call(R"({"cmd":"rank","session":"fo2","top":8})");
  ASSERT_TRUE(IsOk(Parse(before)));

  // Kill whichever worker served the most requests; with four cameras on
  // three workers at least one sub-session must fail over.
  JsonValue stats = Parse(fleet.Call(R"({"cmd":"stats"})"));
  const JsonValue* workers = stats.Find("workers");
  int victim = 0;
  double most = -1;
  for (size_t i = 0; i < workers->array.size(); ++i) {
    const double requests = workers->array[i].Find("requests")->number;
    if (requests > most) {
      most = requests;
      victim = static_cast<int>(i);
    }
  }
  fleet.workers[victim]->Stop();

  const std::string after =
      fleet.Call(R"({"cmd":"rank","session":"fo2","top":8})");
  EXPECT_EQ(before, after);
  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"close","session":"fo2","discard":true})"))));
}

TEST(ClusterTest, AllWorkersDeadReportsFailedPrecondition) {
  Fleet fleet;
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"dead1","camera":"cam0"})"))));
  for (auto& worker : fleet.workers) worker->Stop();
  JsonValue rank =
      Parse(fleet.Call(R"({"cmd":"rank","session":"dead1"})"));
  EXPECT_FALSE(IsOk(rank));
  const JsonValue* code = rank.Find("code");
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(code->string, "FAILED_PRECONDITION");
}

}  // namespace
}  // namespace mivid

// Tests for trafficsim/: lanes, driver model, world stepping, incidents,
// scenario scripts, renderer.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "trafficsim/renderer.h"
#include "trafficsim/scenarios.h"
#include "trafficsim/world.h"

namespace mivid {
namespace {

TEST(LaneTest, ArclengthParameterization) {
  Lane lane(0, {{0, 0}, {10, 0}, {10, 10}}, 3.0);
  EXPECT_DOUBLE_EQ(lane.Length(), 20.0);
  EXPECT_EQ(lane.PointAt(0), Point2(0, 0));
  EXPECT_EQ(lane.PointAt(5), Point2(5, 0));
  EXPECT_EQ(lane.PointAt(15), Point2(10, 5));
  // Clamps beyond the ends.
  EXPECT_EQ(lane.PointAt(-3), Point2(0, 0));
  EXPECT_EQ(lane.PointAt(99), Point2(10, 10));
}

TEST(LaneTest, HeadingFollowsSegments) {
  Lane lane(0, {{0, 0}, {10, 0}, {10, 10}}, 3.0);
  EXPECT_NEAR(lane.HeadingAt(5), 0.0, 1e-12);
  EXPECT_NEAR(lane.HeadingAt(15), M_PI / 2, 1e-12);
}

TEST(RoadLayoutTest, SignalPhases) {
  RoadLayout layout;
  layout.num_signal_groups = 2;
  layout.signal_phase_frames = 100;
  EXPECT_TRUE(layout.IsGreen(0, 0));
  EXPECT_TRUE(layout.IsGreen(0, 99));
  EXPECT_FALSE(layout.IsGreen(0, 100));
  EXPECT_TRUE(layout.IsGreen(1, 100));
  EXPECT_TRUE(layout.IsGreen(0, 200));  // cycle repeats
  EXPECT_TRUE(layout.IsGreen(-1, 50));  // uncontrolled always green
}

TEST(VehicleTest, DimsAndMbr) {
  VehicleState v;
  v.type = VehicleType::kCar;
  v.position = {100, 100};
  v.heading = 0.0;
  const BBox mbr = v.Mbr();
  EXPECT_NEAR(mbr.Width(), 16.0, 1e-9);
  EXPECT_NEAR(mbr.Height(), 8.0, 1e-9);
  v.heading = M_PI / 2;
  const BBox rotated = v.Mbr();
  EXPECT_NEAR(rotated.Width(), 8.0, 1e-9);
  EXPECT_NEAR(rotated.Height(), 16.0, 1e-9);
}

TEST(VehicleTest, TypeNames) {
  EXPECT_STREQ(VehicleTypeName(VehicleType::kCar), "car");
  EXPECT_STREQ(VehicleTypeName(VehicleType::kTruck), "truck");
  EXPECT_GT(DimsFor(VehicleType::kTruck).length,
            DimsFor(VehicleType::kCar).length);
}

TEST(DriverTest, FreeRoadApproachesDesiredSpeed) {
  VehicleState v;
  v.speed = 0.5;
  DriverParams params;
  params.desired_speed = 3.0;
  params.speed_jitter = 0.0;
  DriverView view;  // empty road
  Lane lane(0, {{0, 0}, {1000, 0}}, 3.0);
  v.mode = MotionMode::kLaneFollow;
  for (int i = 0; i < 300; ++i) AdvanceLaneFollow(&v, lane, params, view, nullptr);
  EXPECT_NEAR(v.speed, 3.0, 0.05);
}

TEST(DriverTest, BrakesBehindSlowLeader) {
  VehicleState v;
  v.speed = 3.0;
  DriverParams params;
  params.desired_speed = 3.0;
  DriverView view;
  view.has_leader = true;
  view.leader_gap = 10.0;
  view.leader_speed = 0.5;
  const double a = ComputeAcceleration(v, params, view);
  EXPECT_LT(a, 0.0);
}

TEST(DriverTest, StopsAtRedLight) {
  VehicleState v;
  v.speed = 2.5;
  v.mode = MotionMode::kLaneFollow;
  DriverParams params;
  params.desired_speed = 2.5;
  params.speed_jitter = 0.0;
  params.wander_accel = 0.0;
  Lane lane(0, {{0, 0}, {500, 0}}, 2.5);
  for (int i = 0; i < 200; ++i) {
    DriverView view;
    const double gap = 200.0 - v.s;
    if (gap > 0) {
      view.has_red_stop_line = true;
      view.stop_line_gap = gap;
    }
    AdvanceLaneFollow(&v, lane, params, view, nullptr);
  }
  EXPECT_LT(v.speed, 0.2);
  EXPECT_LT(v.s, 201.0);
  EXPECT_GT(v.s, 150.0);  // stopped near, not far before, the line
}

TEST(DriverTest, HardDecelerationIsBounded) {
  VehicleState v;
  v.speed = 3.0;
  DriverParams params;
  DriverView view;
  view.has_leader = true;
  view.leader_gap = 0.5;
  view.leader_speed = 0.0;
  EXPECT_GE(ComputeAcceleration(v, params, view), -params.hard_decel - 1e-12);
}

TEST(IncidentTest, TypeClassification) {
  EXPECT_TRUE(IsAccidentType(IncidentType::kWallCrash));
  EXPECT_TRUE(IsAccidentType(IncidentType::kSuddenStop));
  EXPECT_TRUE(IsAccidentType(IncidentType::kRearEnd));
  EXPECT_TRUE(IsAccidentType(IncidentType::kCrossCollision));
  EXPECT_FALSE(IsAccidentType(IncidentType::kUTurn));
  EXPECT_FALSE(IsAccidentType(IncidentType::kSpeeding));
  EXPECT_STREQ(IncidentTypeName(IncidentType::kRearEnd), "rear_end");
}

TEST(IncidentTest, RecordOverlap) {
  IncidentRecord rec;
  rec.begin_frame = 100;
  rec.end_frame = 150;
  EXPECT_TRUE(rec.Overlaps(150, 200));
  EXPECT_TRUE(rec.Overlaps(0, 100));
  EXPECT_TRUE(rec.Overlaps(120, 130));
  EXPECT_FALSE(rec.Overlaps(151, 200));
  EXPECT_FALSE(rec.Overlaps(0, 99));
  IncidentRecord unstarted;
  EXPECT_FALSE(unstarted.Overlaps(0, 1000000));
}

TEST(WorldTest, SpawnsVehiclesOnSchedule) {
  ScenarioSpec spec;
  spec.layout = MakeTunnelLayout();
  spec.total_frames = 50;
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200},
                 {10, 1, VehicleType::kSuv, 3.0, 210}};
  TrafficWorld world(spec);
  world.Step();
  EXPECT_EQ(world.ActiveVehicleCount(), 1);
  for (int i = 0; i < 10; ++i) world.Step();
  EXPECT_EQ(world.ActiveVehicleCount(), 2);
}

TEST(WorldTest, VehiclesMoveForwardAndDespawn) {
  ScenarioSpec spec;
  spec.layout = MakeTunnelLayout();
  spec.total_frames = 400;
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200}};
  TrafficWorld world(spec);
  GroundTruth gt = world.Run();
  ASSERT_EQ(gt.tracks.size(), 1u);
  const Track& t = gt.tracks[0];
  ASSERT_GE(t.points.size(), 50u);
  // Monotonically non-decreasing x (eastbound lane).
  for (size_t i = 1; i < t.points.size(); ++i) {
    EXPECT_GE(t.points[i].centroid.x + 1e-9, t.points[i - 1].centroid.x);
  }
  // Despawned before the end: last frame well before total_frames.
  EXPECT_LT(t.last_frame(), 300);
}

TEST(WorldTest, GroundTruthOnlyRecordsVisibleFrames) {
  ScenarioSpec spec;
  spec.layout = MakeTunnelLayout();
  spec.total_frames = 100;
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200}};
  TrafficWorld world(spec);
  GroundTruth gt = world.Run();
  for (const auto& p : gt.tracks[0].points) {
    EXPECT_GE(p.bbox.max_x, 0.0);
    EXPECT_LE(p.bbox.min_x, spec.layout.width);
  }
}

TEST(WorldTest, SuddenStopIncidentRunsAndResumes) {
  ScenarioSpec spec;
  spec.layout = MakeTunnelLayout();
  spec.total_frames = 600;
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200}};
  IncidentSpec inc;
  inc.type = IncidentType::kSuddenStop;
  inc.trigger_frame = 60;
  inc.hold_frames = 20;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  GroundTruth gt = world.Run();
  ASSERT_EQ(gt.incidents.size(), 1u);
  const IncidentRecord& rec = gt.incidents[0];
  EXPECT_EQ(rec.type, IncidentType::kSuddenStop);
  EXPECT_GE(rec.begin_frame, 60);
  EXPECT_GT(rec.end_frame, rec.begin_frame);
  ASSERT_EQ(rec.vehicle_ids.size(), 1u);

  // The vehicle actually came to a stop: consecutive centroids repeat.
  const Track& t = gt.tracks[0];
  bool stopped = false;
  for (size_t i = 1; i < t.points.size(); ++i) {
    if (t.points[i].frame > rec.begin_frame &&
        t.points[i].frame < rec.end_frame &&
        Distance(t.points[i].centroid, t.points[i - 1].centroid) < 0.01) {
      stopped = true;
    }
  }
  EXPECT_TRUE(stopped);
}

TEST(WorldTest, WallCrashEndsAgainstWall) {
  ScenarioSpec spec;
  spec.layout = MakeTunnelLayout();
  spec.total_frames = 600;
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200}};
  IncidentSpec inc;
  inc.type = IncidentType::kWallCrash;
  inc.trigger_frame = 50;
  inc.hold_frames = 20;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  GroundTruth gt = world.Run();
  ASSERT_EQ(gt.incidents.size(), 1u);
  EXPECT_EQ(gt.incidents[0].type, IncidentType::kWallCrash);
  // Final recorded position is near/inside a wall band.
  const Track& t = gt.tracks[0];
  const Point2 last = t.points.back().centroid;
  bool near_wall = false;
  for (const auto& wall : spec.layout.walls) {
    if (wall.Inflated(12).Contains(last)) near_wall = true;
  }
  EXPECT_TRUE(near_wall);
}

TEST(WorldTest, UTurnReversesDirection) {
  ScenarioSpec spec;
  spec.layout = MakeTunnelLayout();
  spec.total_frames = 600;
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200}};
  IncidentSpec inc;
  inc.type = IncidentType::kUTurn;
  inc.trigger_frame = 60;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  GroundTruth gt = world.Run();
  ASSERT_EQ(gt.incidents.size(), 1u);
  const Track& t = gt.tracks[0];
  // x eventually decreases (vehicle heads back west).
  double max_x = 0;
  bool reversed = false;
  for (const auto& p : t.points) {
    max_x = std::max(max_x, p.centroid.x);
    if (p.centroid.x < max_x - 30) reversed = true;
  }
  EXPECT_TRUE(reversed);
}

TEST(WorldTest, CrossCollisionStopsBothVehicles) {
  ScenarioSpec spec;
  spec.layout = MakeIntersectionLayout();
  spec.total_frames = 500;
  // One eastbound runner, one southbound victim timed to be approaching.
  spec.spawns = {{0, 0, VehicleType::kCar, 2.5, 200},
                 {0, 2, VehicleType::kSuv, 2.4, 210}};
  IncidentSpec inc;
  inc.type = IncidentType::kCrossCollision;
  inc.trigger_frame = 20;
  inc.hold_frames = 25;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  GroundTruth gt = world.Run();
  ASSERT_EQ(gt.incidents.size(), 1u);
  const IncidentRecord& rec = gt.incidents[0];
  EXPECT_EQ(rec.vehicle_ids.size(), 2u);
  // Both tracks end near the conflict area (center of the scene).
  int ended_near_center = 0;
  for (const auto& t : gt.tracks) {
    const Point2 last = t.points.back().centroid;
    if (Distance(last, {160, 120}) < 60) ++ended_near_center;
  }
  EXPECT_EQ(ended_near_center, 2);
}

TEST(WorldTest, VehicleInIncidentQuery) {
  GroundTruth gt;
  IncidentRecord rec;
  rec.type = IncidentType::kRearEnd;
  rec.begin_frame = 10;
  rec.end_frame = 20;
  rec.vehicle_ids = {3, 4};
  gt.incidents = {rec};
  EXPECT_TRUE(gt.VehicleInIncident(3, 15, 25, {IncidentType::kRearEnd}));
  EXPECT_FALSE(gt.VehicleInIncident(5, 15, 25, {IncidentType::kRearEnd}));
  EXPECT_FALSE(gt.VehicleInIncident(3, 21, 25, {IncidentType::kRearEnd}));
  EXPECT_FALSE(gt.VehicleInIncident(3, 15, 25, {IncidentType::kUTurn}));
}

TEST(ScenarioTest, TunnelScriptIsDeterministic) {
  const ScenarioSpec a = MakeTunnelScenario();
  const ScenarioSpec b = MakeTunnelScenario();
  ASSERT_EQ(a.spawns.size(), b.spawns.size());
  for (size_t i = 0; i < a.spawns.size(); ++i) {
    EXPECT_EQ(a.spawns[i].frame, b.spawns[i].frame);
    EXPECT_EQ(a.spawns[i].lane_id, b.spawns[i].lane_id);
  }
  ASSERT_EQ(a.incidents.size(), b.incidents.size());
  TrafficWorld wa(a), wb(b);
  const GroundTruth ga = wa.Run(), gb = wb.Run();
  ASSERT_EQ(ga.tracks.size(), gb.tracks.size());
  ASSERT_EQ(ga.incidents.size(), gb.incidents.size());
  for (size_t i = 0; i < ga.incidents.size(); ++i) {
    EXPECT_EQ(ga.incidents[i].begin_frame, gb.incidents[i].begin_frame);
  }
}

TEST(ScenarioTest, TunnelMatchesPaperScale) {
  const ScenarioSpec spec = MakeTunnelScenario();
  EXPECT_EQ(spec.total_frames, 2504);  // paper clip 1
  EXPECT_GE(spec.spawns.size(), 8u);
  EXPECT_GE(spec.incidents.size(), 6u);
}

TEST(ScenarioTest, IntersectionMatchesPaperScale) {
  const ScenarioSpec spec = MakeIntersectionScenario();
  EXPECT_EQ(spec.total_frames, 592);  // paper clip 2
  EXPECT_GE(spec.spawns.size(), 10u);
  EXPECT_EQ(spec.layout.num_signal_groups, 2);
}

TEST(ScenarioTest, IncidentsSortedByTrigger) {
  const ScenarioSpec spec = MakeIntersectionScenario();
  for (size_t i = 1; i < spec.incidents.size(); ++i) {
    EXPECT_LE(spec.incidents[i - 1].trigger_frame,
              spec.incidents[i].trigger_frame);
  }
}

TEST(RendererTest, BackgroundContainsRoadAndWalls) {
  const RoadLayout layout = MakeTunnelLayout();
  Renderer renderer(layout, RenderOptions{0.0, 7, false});
  const Frame& bg = renderer.background();
  EXPECT_EQ(bg.width(), layout.width);
  // Road band is road_shade; wall band brighter.
  EXPECT_EQ(bg.At(160, 120), layout.road_shade);
  EXPECT_EQ(bg.At(160, 90), 150);  // wall cladding
}

TEST(RendererTest, VehiclesAppearAtTheirPosition) {
  const RoadLayout layout = MakeTunnelLayout();
  Renderer renderer(layout, RenderOptions{0.0, 7, false});
  VehicleState v;
  v.id = 0;
  v.type = VehicleType::kCar;
  v.shade = 222;
  v.mode = MotionMode::kLaneFollow;
  v.position = {160, 110};
  v.heading = 0;
  const Frame frame = renderer.Render({v});
  EXPECT_EQ(frame.At(160, 110), 222);
  EXPECT_NE(frame.At(160, 130), 222);
}

TEST(RendererTest, NoiseIsDeterministicPerRenderer) {
  const RoadLayout layout = MakeTunnelLayout();
  Renderer r1(layout, RenderOptions{4.0, 11, true});
  Renderer r2(layout, RenderOptions{4.0, 11, true});
  const Frame f1 = r1.Render({});
  const Frame f2 = r2.Render({});
  EXPECT_EQ(f1.pixels(), f2.pixels());
}

}  // namespace
}  // namespace mivid

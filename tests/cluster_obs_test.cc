// Tests for fleet-wide observability: exact cross-process metrics
// aggregation (N worker snapshots merge bit-identically to the snapshot
// one process would have produced over the union of observations),
// distributed trace propagation through the coordinator (client-supplied
// ids on the passthrough path, coordinator-minted ids on scatter-gather),
// and the structured access/slow-query log schema.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/coordinator.h"
#include "db/video_db.h"
#include "obs/access_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_wire.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_((fs::temp_directory_path() /
               (std::string(name) + "." + std::to_string(getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JsonValue Parse(const std::string& text) {
  Result<JsonValue> doc = ParseJson(text);
  EXPECT_TRUE(doc.ok()) << text;
  return doc.ok() ? std::move(doc).value() : JsonValue{};
}

bool IsOk(const JsonValue& doc) {
  const JsonValue* ok = doc.Find("ok");
  return ok != nullptr && ok->type == JsonValue::Type::kBool && ok->bool_value;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Flips metrics/tracing on for one test and restores the previous state
/// (the binary may run several tests in one process).
class ScopedObsEnabled {
 public:
  ScopedObsEnabled() {
    EnableMetrics(true);
    EnableTracing(true);
    ResetTrace();
  }
  ~ScopedObsEnabled() {
    EnableMetrics(false);
    EnableTracing(false);
    ResetTrace();
  }
};

// ---------------------------------------------------------------------------
// Exact metrics aggregation

TEST(MetricsMergeTest, CountersAndGaugesSumExactly) {
  MetricsSnapshot a, b, c;
  a.counters["serve/requests"] = 7;
  b.counters["serve/requests"] = 11;
  c.counters["serve/requests"] = 5;
  b.counters["serve/rejected"] = 3;  // present in only one input
  a.gauges["serve/corpora_cached"] = 2.0;
  b.gauges["serve/corpora_cached"] = 1.0;
  c.gauges["serve/queue_depth"] = 4.0;

  const MetricsSnapshot fleet = MergeMetricsSnapshots({a, b, c});
  EXPECT_EQ(fleet.counters.at("serve/requests"), 23u);
  EXPECT_EQ(fleet.counters.at("serve/rejected"), 3u);
  EXPECT_EQ(fleet.gauges.at("serve/corpora_cached"), 3.0);
  EXPECT_EQ(fleet.gauges.at("serve/queue_depth"), 4.0);
}

TEST(MetricsMergeTest, HistogramMergeMatchesSingleProcessBitExactly) {
  ScopedObsEnabled obs;

  // Dyadic values (k/1024) keep every partial sum exact in a double, so
  // "bit-identical" is a meaningful assertion on `sum` as well.
  std::vector<double> values;
  for (int i = 1; i <= 300; ++i) {
    values.push_back(static_cast<double>(i * 13 % 997) / 1024.0);
  }

  // One process observing everything...
  Histogram all;
  for (double v : values) all.Observe(v);

  // ...vs three workers each observing a partition.
  Histogram parts[3];
  for (size_t i = 0; i < values.size(); ++i) {
    parts[i % 3].Observe(values[i]);
  }
  std::vector<MetricsSnapshot> snapshots(3);
  for (int i = 0; i < 3; ++i) {
    snapshots[i].histograms["serve/request_seconds"] = parts[i].Stats();
  }

  const MetricsSnapshot fleet = MergeMetricsSnapshots(snapshots);
  const HistogramStats& merged = fleet.histograms.at("serve/request_seconds");
  const HistogramStats single = all.Stats();

  EXPECT_EQ(merged.count, single.count);
  EXPECT_EQ(merged.min, single.min);
  EXPECT_EQ(merged.max, single.max);
  EXPECT_EQ(merged.sum, single.sum);
  ASSERT_EQ(merged.buckets.size(), single.buckets.size());
  for (size_t i = 0; i < merged.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i], single.buckets[i]) << "bucket " << i;
  }
  // Percentiles go through the same interpolation either way.
  EXPECT_EQ(merged.p50, single.p50);
  EXPECT_EQ(merged.p95, single.p95);
  EXPECT_EQ(merged.p99, single.p99);

  // The strongest form: identical wire serialization.
  MetricsSnapshot single_snap;
  single_snap.histograms["serve/request_seconds"] = single;
  EXPECT_EQ(MetricsSnapshotToWireJson(fleet),
            MetricsSnapshotToWireJson(single_snap));
}

TEST(MetricsMergeTest, WireRoundTripIsLossless) {
  ScopedObsEnabled obs;
  Histogram h;
  for (int i = 1; i <= 50; ++i) h.Observe(static_cast<double>(i) / 256.0);

  MetricsSnapshot snap;
  snap.counters["serve/requests"] = 42;
  snap.counters["cluster/scatter"] = 7;
  snap.gauges["serve/queue_depth"] = 3.0;
  snap.histograms["serve/rank_seconds"] = h.Stats();

  const std::string wire = MetricsSnapshotToWireJson(snap);
  Result<MetricsSnapshot> parsed = MetricsSnapshotFromWireJson(Parse(wire));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(MetricsSnapshotToWireJson(parsed.value()), wire);
}

TEST(MetricsMergeTest, MergeOfOneSnapshotIsIdentity) {
  ScopedObsEnabled obs;
  Histogram h;
  h.Observe(0.25);
  h.Observe(0.5);
  MetricsSnapshot snap;
  snap.counters["x"] = 9;
  snap.histograms["h"] = h.Stats();
  EXPECT_EQ(MetricsSnapshotToWireJson(MergeMetricsSnapshots({snap})),
            MetricsSnapshotToWireJson(snap));
}

// ---------------------------------------------------------------------------
// Access log

TEST(AccessLogTest, FormatRoundTripsThroughJsonParser) {
  AccessRecord record;
  record.role = "coordinator";
  record.node = "coord";
  record.cmd = "rank";
  record.session = "s\"1";  // exercises escaping
  record.engine = "milrf";
  record.status = "OK";
  record.trace_id = "00f00dcafe0000ff";
  record.cameras = {"cam0", "cam1"};
  record.bytes_in = 64;
  record.bytes_out = 4096;
  record.total_ms = 12.5;
  record.audit.queue_ms = 0.25;
  record.audit.corpus_ms = 1.5;
  record.audit.rank_ms = 8.0;
  record.audit.merge_ms = 2.0;
  record.audit.serialize_ms = 0.75;
  record.audit.snapshot_hit = true;

  const JsonValue doc = Parse(FormatAccessRecord(record, 1754600000123, true));
  EXPECT_EQ(doc.Find("ts_ms")->number, 1754600000123.0);
  EXPECT_EQ(doc.Find("role")->string, "coordinator");
  EXPECT_EQ(doc.Find("node")->string, "coord");
  EXPECT_EQ(doc.Find("cmd")->string, "rank");
  EXPECT_EQ(doc.Find("session")->string, "s\"1");
  EXPECT_EQ(doc.Find("engine")->string, "milrf");
  EXPECT_EQ(doc.Find("status")->string, "OK");
  EXPECT_EQ(doc.Find("trace")->string, "00f00dcafe0000ff");
  const JsonValue* cameras = doc.Find("cameras");
  ASSERT_TRUE(cameras != nullptr && cameras->is_array());
  ASSERT_EQ(cameras->array.size(), 2u);
  EXPECT_EQ(cameras->array[0].string, "cam0");
  EXPECT_EQ(cameras->array[1].string, "cam1");
  EXPECT_EQ(doc.Find("bytes_in")->number, 64.0);
  EXPECT_EQ(doc.Find("bytes_out")->number, 4096.0);
  EXPECT_EQ(doc.Find("total_ms")->number, 12.5);
  EXPECT_EQ(doc.Find("queue_ms")->number, 0.25);
  EXPECT_EQ(doc.Find("corpus_ms")->number, 1.5);
  EXPECT_EQ(doc.Find("rank_ms")->number, 8.0);
  EXPECT_EQ(doc.Find("merge_ms")->number, 2.0);
  EXPECT_EQ(doc.Find("serialize_ms")->number, 0.75);
  EXPECT_TRUE(doc.Find("snapshot_hit")->bool_value);
  EXPECT_TRUE(doc.Find("slow")->bool_value);
}

TEST(AccessLogTest, SlowRequestsMirrorToSlowLog) {
  TempDir dir("mivid_access_log_test");
  AccessLog log;
  AccessLog::Options options;
  options.path = dir.path() + "/access.log";
  options.slow_path = dir.path() + "/slow.log";
  options.slow_threshold_ms = 10.0;
  ASSERT_TRUE(log.Open(options).ok());
  EXPECT_TRUE(log.enabled());
  EXPECT_EQ(log.slow_threshold_ms(), 10.0);

  AccessRecord fast;
  fast.cmd = "ping";
  fast.total_ms = 1.0;
  AccessRecord slow;
  slow.cmd = "rank";
  slow.total_ms = 50.0;
  log.Write(fast);
  log.Write(slow);
  log.Close();

  const auto access = ReadLines(options.path);
  ASSERT_EQ(access.size(), 2u);
  EXPECT_FALSE(Parse(access[0]).Find("slow")->bool_value);
  EXPECT_TRUE(Parse(access[1]).Find("slow")->bool_value);

  const auto slow_lines = ReadLines(options.slow_path);
  ASSERT_EQ(slow_lines.size(), 1u);
  const JsonValue entry = Parse(slow_lines[0]);
  EXPECT_EQ(entry.Find("cmd")->string, "rank");
  EXPECT_TRUE(entry.Find("slow")->bool_value);
}

TEST(AccessLogTest, RotationKeepsEveryLineWellFormed) {
  TempDir dir("mivid_access_rotate_test");
  AccessLog log;
  AccessLog::Options options;
  options.path = dir.path() + "/access.log";
  options.slow_threshold_ms = 1e9;  // nothing is slow
  options.rotate_bytes = 600;       // a couple of lines per file
  ASSERT_TRUE(log.Open(options).ok());

  AccessRecord record;
  record.cmd = "rank";
  record.session = "rotate";
  for (int i = 0; i < 20; ++i) {
    record.total_ms = static_cast<double>(i);
    log.Write(record);
  }
  log.Close();

  ASSERT_TRUE(fs::exists(options.path + ".1"));
  size_t total = 0;
  for (const std::string& path : {options.path, options.path + ".1"}) {
    for (const std::string& line : ReadLines(path)) {
      const JsonValue doc = Parse(line);
      EXPECT_EQ(doc.Find("cmd")->string, "rank");
      ++total;
    }
  }
  // Rotation replaces ".1", so the two files bound retention — between
  // them every retained line is intact (no torn lines at the boundary).
  EXPECT_GT(total, 2u);
  EXPECT_LE(total, 20u);
}

TEST(AccessLogTest, SlowThresholdResolvesFromEnvironment) {
  ::setenv("MIVID_SLOW_QUERY_MS", "25", 1);
  EXPECT_EQ(AccessLog::SlowThresholdFromEnv(500.0), 25.0);
  ::setenv("MIVID_SLOW_QUERY_MS", "garbage", 1);
  EXPECT_EQ(AccessLog::SlowThresholdFromEnv(500.0), 500.0);
  ::unsetenv("MIVID_SLOW_QUERY_MS");
  EXPECT_EQ(AccessLog::SlowThresholdFromEnv(500.0), 500.0);

  // An explicit non-negative option beats the environment.
  ::setenv("MIVID_SLOW_QUERY_MS", "25", 1);
  TempDir dir("mivid_access_env_test");
  AccessLog log;
  AccessLog::Options options;
  options.path = dir.path() + "/access.log";
  options.slow_threshold_ms = 75.0;
  ASSERT_TRUE(log.Open(options).ok());
  EXPECT_EQ(log.slow_threshold_ms(), 75.0);
  log.Close();
  ::unsetenv("MIVID_SLOW_QUERY_MS");
}

TEST(AccessLogTest, AuditPhaseTimerIsInertWithoutScope) {
  // No RequestAuditScope installed: the timer must not touch anything.
  EXPECT_EQ(CurrentRequestAudit(), nullptr);
  { AuditPhaseTimer timer(&RequestAudit::rank_ms); }

  RequestAudit audit;
  {
    RequestAuditScope scope(&audit);
    ASSERT_EQ(CurrentRequestAudit(), &audit);
    AuditPhaseTimer timer(&RequestAudit::rank_ms);
  }
  EXPECT_EQ(CurrentRequestAudit(), nullptr);
  EXPECT_GE(audit.rank_ms, 0.0);
}

// ---------------------------------------------------------------------------
// Worker access log end to end

TEST(ServerAccessLogTest, HandleLineWritesSchemaCompleteEntries) {
  TempDir dir("mivid_serve_access_test");
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir.path() + "/db", db_options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<VideoDb> db = std::move(opened).value();
  {
    TunnelScenarioOptions scenario_options;
    scenario_options.total_frames = 700;
    scenario_options.num_wall_crashes = 1;
    scenario_options.num_sudden_stops = 1;
    scenario_options.num_speeding = 0;
    scenario_options.num_uturns = 0;
    const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
    TrafficWorld world(scenario);
    const GroundTruth gt = world.Run();
    ClipInfo info;
    info.camera_id = "cam0";
    info.total_frames = scenario.total_frames;
    ASSERT_TRUE(db->IngestClip(info, gt.tracks, gt.incidents).ok());
  }

  ServeOptions options;
  options.worker_id = "w9";
  options.access_log_path = dir.path() + "/access.log";
  options.slow_log_path = dir.path() + "/slow.log";
  options.slow_threshold_ms = 0.0;  // every request is "slow"
  RetrievalServer server(db.get(), options);

  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"open","session":"al1","camera":"cam0"})"))));
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"rank","session":"al1","top":5})"))));
  // A failing request must log its wire error code.
  EXPECT_FALSE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"rank","session":"nosuch"})"))));
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"close","session":"al1","discard":true})"))));

  const auto lines = ReadLines(options.access_log_path);
  ASSERT_EQ(lines.size(), 4u);
  const JsonValue rank = Parse(lines[1]);
  EXPECT_EQ(rank.Find("role")->string, "worker");
  EXPECT_EQ(rank.Find("node")->string, "w9");
  EXPECT_EQ(rank.Find("cmd")->string, "rank");
  EXPECT_EQ(rank.Find("session")->string, "al1");
  EXPECT_EQ(rank.Find("status")->string, "OK");
  ASSERT_TRUE(rank.Find("cameras")->is_array());
  ASSERT_EQ(rank.Find("cameras")->array.size(), 1u);
  EXPECT_EQ(rank.Find("cameras")->array[0].string, "cam0");
  EXPECT_GT(rank.Find("bytes_in")->number, 0.0);
  EXPECT_GT(rank.Find("bytes_out")->number, 0.0);
  EXPECT_GE(rank.Find("total_ms")->number,
            rank.Find("rank_ms")->number);
  EXPECT_TRUE(rank.Find("slow")->bool_value);

  const JsonValue failed = Parse(lines[2]);
  EXPECT_EQ(failed.Find("status")->string, "NOT_FOUND");

  // Threshold 0 mirrors everything to the slow log.
  EXPECT_EQ(ReadLines(options.slow_log_path).size(), 4u);
}

// ---------------------------------------------------------------------------
// Distributed trace propagation through a real fleet (loopback TCP).

struct ObsFleetEnv {
  TempDir dir{"mivid_cluster_obs_test"};
  std::unique_ptr<VideoDb> db;
};

ObsFleetEnv& FleetEnv() {
  static ObsFleetEnv* env = [] {
    auto* e = new ObsFleetEnv();
    VideoDbOptions options;
    options.create_if_missing = true;
    auto opened = VideoDb::Open(e->dir.path() + "/db", options);
    if (!opened.ok()) std::abort();
    e->db = std::move(opened).value();
    for (int i = 0; i < 2; ++i) {
      TunnelScenarioOptions scenario_options;
      scenario_options.total_frames = 700;
      scenario_options.num_wall_crashes = 1;
      scenario_options.num_sudden_stops = 1;
      scenario_options.num_speeding = 0;
      scenario_options.num_uturns = 0;
      const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
      TrafficWorld world(scenario);
      const GroundTruth gt = world.Run();
      ClipInfo info;
      info.camera_id = "cam" + std::to_string(i);
      info.total_frames = scenario.total_frames;
      if (!e->db->IngestClip(info, gt.tracks, gt.incidents).ok()) std::abort();
    }
    return e;
  }();
  return *env;
}

struct ObsFleet {
  std::vector<std::unique_ptr<RetrievalServer>> workers;
  std::vector<std::string> endpoints;
  std::unique_ptr<Coordinator> coord;

  explicit ObsFleet(const std::string& coord_access_log = "") {
    for (int i = 0; i < 2; ++i) {
      ServeOptions options;
      options.tcp_port = 0;
      options.worker_id = "w" + std::to_string(i);
      auto server =
          std::make_unique<RetrievalServer>(FleetEnv().db.get(), options);
      if (!server->Start().ok()) std::abort();
      endpoints.push_back("127.0.0.1:" + std::to_string(server->tcp_port()));
      workers.push_back(std::move(server));
    }
    CoordinatorOptions options;
    options.tcp_port = 0;
    options.workers = endpoints;
    options.access_log_path = coord_access_log;
    options.slow_threshold_ms = coord_access_log.empty() ? -1.0 : 1e9;
    coord = std::make_unique<Coordinator>(options);
    if (!coord->Start().ok()) std::abort();
  }

  ~ObsFleet() {
    coord->Stop();
    for (auto& worker : workers) worker->Stop();
  }

  std::string Call(const std::string& line) { return coord->HandleLine(line); }
};

/// Context spans of one trace, keyed by span name.
std::vector<ContextSpanData> SpansOfTrace(const std::string& trace_id) {
  std::vector<ContextSpanData> out;
  for (const ContextSpanData& span : CollectContextSpans()) {
    if (span.context.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

const ContextSpanData* FindSpan(const std::vector<ContextSpanData>& spans,
                                const std::string& name) {
  for (const ContextSpanData& span : spans) {
    if (span.name != nullptr && name == span.name) return &span;
  }
  return nullptr;
}

TEST(ClusterTraceTest, ClientTraceIdPropagatesThroughPassthrough) {
  ScopedObsEnabled obs;
  ObsFleet fleet;
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"tr1","camera":"cam0"})"))));

  ResetTrace();
  const std::string trace_id = "00000000deadbeef";
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"rank","session":"tr1","top":3,)"
      R"("trace":"00000000deadbeef","span":"0000000000000abc"})"))));

  // Workers run in-process here, so one CollectContextSpans() sees both
  // sides of the wire. The coordinator span joins the client's trace
  // under the client's span. The relay is byte-identical passthrough —
  // the client already stamped a context, so the worker (reached over a
  // real TCP hop) sees the client's span as its parent too.
  const auto spans = SpansOfTrace(trace_id);
  const ContextSpanData* coord_rank = FindSpan(spans, "coord/rank");
  ASSERT_NE(coord_rank, nullptr);
  EXPECT_EQ(coord_rank->context.parent_id, "0000000000000abc");
  const ContextSpanData* worker_rank = FindSpan(spans, "serve/rank");
  ASSERT_NE(worker_rank, nullptr);
  EXPECT_EQ(worker_rank->context.parent_id, "0000000000000abc");

  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"close","session":"tr1","discard":true})"))));
}

TEST(ClusterTraceTest, ScatterGatherSharesOneCoordinatorMintedTrace) {
  ScopedObsEnabled obs;
  TempDir dir("mivid_coord_access_test");
  const std::string coord_log = dir.path() + "/coord.access.log";
  ObsFleet fleet(coord_log);
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"tr2","cameras":["cam0","cam1"]})"))));

  ResetTrace();
  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"rank","session":"tr2","top":4})"))));

  // The rank carried no client trace, so the coordinator roots one.
  const auto all = CollectContextSpans();
  const ContextSpanData* root = FindSpan(all, "coord/rank");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->context.parent_id, "");
  EXPECT_EQ(root->context.trace_id.size(), 16u);

  const auto spans = SpansOfTrace(root->context.trace_id);
  const ContextSpanData* scatter = FindSpan(spans, "coord/scatter");
  ASSERT_NE(scatter, nullptr);
  EXPECT_EQ(scatter->context.parent_id, root->context.span_id);

  // Every per-camera worker rank parents under the scatter span and
  // shares the root's trace id.
  int worker_ranks = 0;
  for (const ContextSpanData& span : spans) {
    if (span.name != nullptr && std::string(span.name) == "serve/rank") {
      EXPECT_EQ(span.context.parent_id, scatter->context.span_id);
      ++worker_ranks;
    }
  }
  EXPECT_EQ(worker_ranks, 2);

  // The k-way merge is traced as a sibling of the scatter.
  const ContextSpanData* merge = FindSpan(spans, "coord/merge");
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->context.parent_id, root->context.span_id);

  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"close","session":"tr2","discard":true})"))));

  // The coordinator access log carries the same trace id and the full
  // camera fan-out for the rank.
  const JsonValue* rank_entry = nullptr;
  std::vector<JsonValue> docs;
  for (const std::string& line : ReadLines(coord_log)) {
    docs.push_back(Parse(line));
  }
  for (const JsonValue& doc : docs) {
    if (doc.Find("cmd")->string == "rank") rank_entry = &doc;
  }
  ASSERT_NE(rank_entry, nullptr);
  EXPECT_EQ(rank_entry->Find("role")->string, "coordinator");
  EXPECT_EQ(rank_entry->Find("trace")->string, root->context.trace_id);
  EXPECT_EQ(rank_entry->Find("cameras")->array.size(), 2u);
  EXPECT_GE(rank_entry->Find("merge_ms")->number, 0.0);
}

TEST(ClusterTraceTest, TracingDisabledLeavesRequestsUnstamped) {
  // Tracing off: no spans recorded, responses still fine, and the wire
  // lines the coordinator relays carry no trace fields (verified via the
  // stamping primitive directly plus an end-to-end call).
  ObsFleet fleet;
  ResetTrace();
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"tr3","camera":"cam1"})"))));
  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"rank","session":"tr3","top":2})"))));
  EXPECT_TRUE(CollectContextSpans().empty());
  ASSERT_TRUE(IsOk(Parse(
      fleet.Call(R"({"cmd":"close","session":"tr3","discard":true})"))));
}

TEST(ClusterTraceTest, StampTraceContextPreservesTheLine) {
  const std::string line = R"({"cmd":"rank","session":"s1","top":5})";
  const std::string stamped =
      StampTraceContext(line, "0123456789abcdef", "fedcba9876543210");
  Result<ServeRequest> parsed = ParseServeRequest(stamped);
  ASSERT_TRUE(parsed.ok()) << stamped;
  EXPECT_EQ(parsed.value().trace_id, "0123456789abcdef");
  EXPECT_EQ(parsed.value().parent_span, "fedcba9876543210");
  EXPECT_EQ(parsed.value().session_id, "s1");
  EXPECT_EQ(parsed.value().top, 5);
}

}  // namespace
}  // namespace mivid

// Tests for common/: Status/Result, Rng, string utilities, ASCII plots.

#include <set>

#include <gtest/gtest.h>

#include "common/ascii_plot.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mivid {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing clip 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing clip 7");
  EXPECT_EQ(s.ToString(), "NotFound: missing clip 7");
}

TEST(StatusTest, CopyIsCheapAndSharesRep) {
  Status a = Status::IOError("disk gone");
  Status b = a;
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk gone");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, SplitAndJoin) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StringUtilTest, SplitNoDelimiter) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("model_foo.svm", "model_"));
  EXPECT_FALSE(StartsWith("mod", "model_"));
  EXPECT_TRUE(EndsWith("model_foo.svm", ".svm"));
  EXPECT_FALSE(EndsWith("svm", ".svm"));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(AsciiPlotTest, EmptyPlotDoesNotCrash) {
  const std::string out = AsciiLinePlot({}, PlotOptions{});
  EXPECT_NE(out.find("empty"), std::string::npos);
}

TEST(AsciiPlotTest, PlotsContainGlyphAndLegend) {
  PlotSeries s;
  s.name = "acc";
  s.glyph = '*';
  s.xs = {0, 1, 2, 3};
  s.ys = {40, 45, 55, 60};
  PlotOptions opts;
  opts.title = "curve";
  const std::string out = AsciiLinePlot({s}, opts);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("acc"), std::string::npos);
  EXPECT_NE(out.find("curve"), std::string::npos);
}

TEST(AsciiPlotTest, BarChartScalesToMax) {
  const std::string out =
      AsciiBarChart({{"a", 1.0}, {"b", 2.0}}, "bars", 10);
  EXPECT_NE(out.find("bars"), std::string::npos);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(AsciiPlotTest, TableAlignsColumns) {
  const std::string out =
      AsciiTable({"col", "value"}, {{"x", "1"}, {"longer", "2"}});
  EXPECT_NE(out.find("| col"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

}  // namespace
}  // namespace mivid

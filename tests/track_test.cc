// Tests for track/: assignment solvers, the tracker, the PCA classifier.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "track/assignment.h"
#include "track/tracker.h"
#include "track/vehicle_classifier.h"

namespace mivid {
namespace {

TEST(AssignmentTest, HungarianSolvesClassicExample) {
  // Cost matrix with a unique optimal assignment (0->1, 1->0, 2->2): 1+2+2=5.
  Matrix cost = Matrix::FromRows({{4, 1, 3}, {2, 0, 5}, {3, 2, 2}});
  const Assignment a = HungarianAssign(cost, 1e9);
  ASSERT_EQ(a.size(), 3u);
  double total = 0;
  std::vector<bool> used(3, false);
  for (size_t r = 0; r < 3; ++r) {
    ASSERT_GE(a[r], 0);
    EXPECT_FALSE(used[static_cast<size_t>(a[r])]);
    used[static_cast<size_t>(a[r])] = true;
    total += cost.At(r, static_cast<size_t>(a[r]));
  }
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(AssignmentTest, HungarianIsOptimalVsGreedyAdversarialCase) {
  // Greedy grabs (0,0)=1 first, forcing (1,1)=100; optimal is 2+2=4.
  Matrix cost = Matrix::FromRows({{1, 2}, {2, 100}});
  const Assignment greedy = GreedyAssign(cost, 1e9);
  const Assignment optimal = HungarianAssign(cost, 1e9);
  double gc = 0, oc = 0;
  for (size_t r = 0; r < 2; ++r) {
    gc += cost.At(r, static_cast<size_t>(greedy[r]));
    oc += cost.At(r, static_cast<size_t>(optimal[r]));
  }
  EXPECT_DOUBLE_EQ(gc, 101.0);
  EXPECT_DOUBLE_EQ(oc, 4.0);
}

TEST(AssignmentTest, MaxCostGatesMatches) {
  Matrix cost = Matrix::FromRows({{5.0}});
  EXPECT_EQ(GreedyAssign(cost, 4.0)[0], -1);
  EXPECT_EQ(HungarianAssign(cost, 4.0)[0], -1);
  EXPECT_EQ(GreedyAssign(cost, 5.0)[0], 0);
  EXPECT_EQ(HungarianAssign(cost, 5.0)[0], 0);
}

TEST(AssignmentTest, RectangularMatrices) {
  // More tracks than detections: one track stays unmatched.
  Matrix cost = Matrix::FromRows({{1.0}, {2.0}});
  const Assignment a = HungarianAssign(cost, 1e9);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], -1);
  // More detections than tracks.
  Matrix cost2 = Matrix::FromRows({{3.0, 1.0, 2.0}});
  const Assignment b = HungarianAssign(cost2, 1e9);
  EXPECT_EQ(b[0], 1);
}

TEST(AssignmentTest, EmptyInputs) {
  Matrix empty;
  EXPECT_TRUE(HungarianAssign(empty, 1.0).empty());
  EXPECT_TRUE(GreedyAssign(empty, 1.0).empty());
}

TEST(AssignmentTest, HungarianMatchesGreedyOnRandomDiagonalDominant) {
  // When each row has a clearly cheapest distinct column, both agree.
  Rng rng(13);
  const size_t n = 6;
  Matrix cost(n, n, 100.0);
  std::vector<size_t> perm{3, 1, 5, 0, 4, 2};
  for (size_t r = 0; r < n; ++r) cost.At(r, perm[r]) = rng.Uniform(0, 1);
  const Assignment g = GreedyAssign(cost, 1e9);
  const Assignment h = HungarianAssign(cost, 1e9);
  for (size_t r = 0; r < n; ++r) {
    EXPECT_EQ(g[r], static_cast<int>(perm[r]));
    EXPECT_EQ(h[r], static_cast<int>(perm[r]));
  }
}

Blob MakeBlob(double cx, double cy) {
  Blob b;
  b.centroid = {cx, cy};
  b.mbr = BBox(cx - 8, cy - 4, cx + 8, cy + 4);
  b.area = 128;
  return b;
}

TEST(TrackerTest, SingleObjectStraightLine) {
  Tracker tracker;
  for (int f = 0; f < 30; ++f) {
    tracker.Observe(f, {MakeBlob(10 + 3.0 * f, 50)});
  }
  const std::vector<Track> tracks = tracker.Finish();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].points.size(), 30u);
  EXPECT_EQ(tracks[0].first_frame(), 0);
  EXPECT_EQ(tracks[0].last_frame(), 29);
}

TEST(TrackerTest, TwoObjectsKeepIdentity) {
  Tracker tracker;
  for (int f = 0; f < 25; ++f) {
    tracker.Observe(f, {MakeBlob(10 + 3.0 * f, 30),
                        MakeBlob(200 - 3.0 * f, 70)});
  }
  const std::vector<Track> tracks = tracker.Finish();
  ASSERT_EQ(tracks.size(), 2u);
  // Track 0 moves right, track 1 moves left; identities never swap.
  for (const auto& t : tracks) {
    const double dx = t.points.back().centroid.x - t.points[0].centroid.x;
    if (t.points[0].centroid.y < 50) {
      EXPECT_GT(dx, 0);
    } else {
      EXPECT_LT(dx, 0);
    }
    EXPECT_EQ(t.points.size(), 25u);
  }
}

TEST(TrackerTest, SurvivesDetectionDropouts) {
  Tracker tracker;
  for (int f = 0; f < 30; ++f) {
    if (f % 7 == 3) {
      tracker.Observe(f, {});  // dropout
    } else {
      tracker.Observe(f, {MakeBlob(10 + 3.0 * f, 50)});
    }
  }
  const std::vector<Track> tracks = tracker.Finish();
  ASSERT_EQ(tracks.size(), 1u) << "dropouts must not split the track";
}

TEST(TrackerTest, DropsTrackAfterMaxMisses) {
  TrackerOptions options;
  options.max_misses = 2;
  options.min_track_length = 1;
  Tracker tracker(options);
  tracker.Observe(0, {MakeBlob(50, 50)});
  for (int f = 1; f < 10; ++f) tracker.Observe(f, {});
  EXPECT_EQ(tracker.live_count(), 0u);
  const std::vector<Track> tracks = tracker.Finish();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].points.size(), 1u);
}

TEST(TrackerTest, CrossingObjectsPreferPredictedPositions) {
  // Two objects cross paths; constant-velocity prediction keeps them apart.
  Tracker tracker;
  for (int f = 0; f < 40; ++f) {
    tracker.Observe(f, {MakeBlob(10 + 3.0 * f, 40 + 1.0 * f),
                        MakeBlob(130 - 3.0 * f, 80 - 1.0 * f)});
  }
  const std::vector<Track> tracks = tracker.Finish();
  ASSERT_EQ(tracks.size(), 2u);
  for (const auto& t : tracks) EXPECT_EQ(t.points.size(), 40u);
}

TEST(TrackerTest, SuppressesSplitBlobDuplicates) {
  TrackerOptions options;
  options.min_track_length = 1;
  Tracker tracker(options);
  tracker.Observe(0, {MakeBlob(50, 50)});
  // Split blob: two detections a few pixels apart on the same vehicle.
  tracker.Observe(1, {MakeBlob(53, 50), MakeBlob(47, 52)});
  EXPECT_EQ(tracker.live_count(), 1u);
}

TEST(TrackerTest, FiltersShortTracks) {
  TrackerOptions options;
  options.min_track_length = 5;
  Tracker tracker(options);
  for (int f = 0; f < 3; ++f) tracker.Observe(f, {MakeBlob(10.0 + f, 20)});
  EXPECT_TRUE(tracker.Finish().empty());
}

TEST(TrackerTest, GreedyModeAlsoTracks) {
  TrackerOptions options;
  options.use_hungarian = false;
  Tracker tracker(options);
  for (int f = 0; f < 20; ++f) {
    tracker.Observe(f, {MakeBlob(10 + 3.0 * f, 50)});
  }
  EXPECT_EQ(tracker.Finish().size(), 1u);
}

Blob ShapeBlob(double w, double h, double fill) {
  Blob b;
  b.mbr = BBox(0, 0, w, h);
  b.area = static_cast<int>(w * h * fill);
  b.centroid = b.mbr.Center();
  return b;
}

TEST(VehicleClassifierTest, DescriptorFields) {
  const Vec d = BlobShapeDescriptor(ShapeBlob(16, 8, 0.9));
  ASSERT_EQ(d.size(), 5u);
  EXPECT_DOUBLE_EQ(d[0], 16.0);
  EXPECT_DOUBLE_EQ(d[1], 8.0);
  EXPECT_DOUBLE_EQ(d[3], 2.0);
  EXPECT_NEAR(d[4], 0.9, 0.01);
}

TEST(VehicleClassifierTest, SeparatesCarsFromTrucks) {
  Rng rng(21);
  std::vector<LabeledBlob> examples;
  for (int i = 0; i < 30; ++i) {
    examples.push_back({ShapeBlob(16 + rng.Gaussian(), 8 + rng.Gaussian() * 0.5,
                                  0.85 + rng.Gaussian() * 0.02),
                        VehicleType::kCar});
    examples.push_back({ShapeBlob(28 + rng.Gaussian(), 10 + rng.Gaussian() * 0.5,
                                  0.9 + rng.Gaussian() * 0.02),
                        VehicleType::kTruck});
  }
  Result<VehicleClassifier> clf = VehicleClassifier::Train(examples, 3);
  ASSERT_TRUE(clf.ok());
  int correct = 0;
  for (int i = 0; i < 20; ++i) {
    if (clf->Classify(ShapeBlob(16.5, 8.2, 0.86)) == VehicleType::kCar) {
      ++correct;
    }
    if (clf->Classify(ShapeBlob(27.5, 9.8, 0.89)) == VehicleType::kTruck) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, 40);
}

TEST(VehicleClassifierTest, DistanceIsSmallerForBetterMatch) {
  std::vector<LabeledBlob> examples;
  for (int i = 0; i < 5; ++i) {
    examples.push_back({ShapeBlob(16, 8, 0.85), VehicleType::kCar});
    examples.push_back({ShapeBlob(28, 10, 0.9), VehicleType::kTruck});
  }
  Result<VehicleClassifier> clf = VehicleClassifier::Train(examples, 2);
  ASSERT_TRUE(clf.ok());
  VehicleType t;
  const double near = clf->ClassifyWithDistance(ShapeBlob(16, 8, 0.85), &t);
  EXPECT_EQ(t, VehicleType::kCar);
  const double far = clf->ClassifyWithDistance(ShapeBlob(20, 9, 0.87), &t);
  EXPECT_LT(near, far);
}

TEST(VehicleClassifierTest, RejectsTinyTrainingSet) {
  EXPECT_FALSE(VehicleClassifier::Train({}, 2).ok());
  EXPECT_FALSE(
      VehicleClassifier::Train({{ShapeBlob(16, 8, 0.9), VehicleType::kCar}}, 2)
          .ok());
}

}  // namespace
}  // namespace mivid

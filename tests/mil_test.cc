// Tests for mil/: bag-label semantics (Eq. 3-4) and the dataset.

#include <gtest/gtest.h>

#include "event/sliding_window.h"
#include "mil/dataset.h"

namespace mivid {
namespace {

TEST(BagLabelTest, Equation3PositiveIfAnyInstancePositive) {
  EXPECT_EQ(BagLabelFromInstances({false, true, false}), BagLabel::kRelevant);
  EXPECT_EQ(BagLabelFromInstances({true}), BagLabel::kRelevant);
  EXPECT_EQ(BagLabelFromInstances({true, true, true}), BagLabel::kRelevant);
}

TEST(BagLabelTest, Equation4NegativeIffAllInstancesNegative) {
  EXPECT_EQ(BagLabelFromInstances({false, false}), BagLabel::kIrrelevant);
  EXPECT_EQ(BagLabelFromInstances({}), BagLabel::kIrrelevant);
}

MilBag MakeBag(int id, size_t instances) {
  MilBag bag;
  bag.id = id;
  for (size_t i = 0; i < instances; ++i) {
    MilInstance inst;
    inst.bag_id = id;
    inst.instance_id = static_cast<int>(i);
    inst.features = {static_cast<double>(id), static_cast<double>(i)};
    inst.raw_features = inst.features;
    bag.instances.push_back(inst);
  }
  return bag;
}

TEST(MilDatasetTest, AddFindCount) {
  MilDataset ds;
  ds.AddBag(MakeBag(10, 2));
  ds.AddBag(MakeBag(20, 3));
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.TotalInstances(), 5u);
  ASSERT_NE(ds.FindBag(20), nullptr);
  EXPECT_EQ(ds.FindBag(20)->instances.size(), 3u);
  EXPECT_EQ(ds.FindBag(99), nullptr);
}

TEST(MilDatasetTest, LabelLifecycle) {
  MilDataset ds;
  ds.AddBag(MakeBag(1, 1));
  ds.AddBag(MakeBag(2, 1));
  ds.AddBag(MakeBag(3, 1));
  EXPECT_EQ(ds.CountLabel(BagLabel::kUnlabeled), 3u);

  ASSERT_TRUE(ds.SetLabel(1, BagLabel::kRelevant).ok());
  ASSERT_TRUE(ds.SetLabel(2, BagLabel::kIrrelevant).ok());
  EXPECT_EQ(ds.CountLabel(BagLabel::kRelevant), 1u);
  EXPECT_EQ(ds.CountLabel(BagLabel::kIrrelevant), 1u);
  EXPECT_EQ(ds.BagsWithLabel(BagLabel::kRelevant)[0]->id, 1);

  // Relabeling overwrites.
  ASSERT_TRUE(ds.SetLabel(1, BagLabel::kIrrelevant).ok());
  EXPECT_EQ(ds.CountLabel(BagLabel::kRelevant), 0u);

  // Unknown bag fails.
  EXPECT_TRUE(ds.SetLabel(42, BagLabel::kRelevant).IsNotFound());

  ds.ResetLabels();
  EXPECT_EQ(ds.CountLabel(BagLabel::kUnlabeled), 3u);
}

TEST(MilDatasetTest, FromVideoSequencesBuildsBagsPerWindow) {
  // Two tracks, one clip: build windows then bags.
  Track a, b;
  a.id = 0;
  b.id = 1;
  for (int f = 0; f <= 60; ++f) {
    a.points.push_back({f, {3.0 * f, 100}, {}});
    b.points.push_back({f, {3.0 * f, 120}, {}});
  }
  FeatureOptions fopts;
  const auto features = ComputeTrackFeatures({a, b}, fopts);
  const FeatureScaler scaler = FeatureScaler::Fit(features, false);
  const auto windows = ExtractWindows(features, 61, fopts, WindowOptions{});
  const MilDataset ds = MilDataset::FromVideoSequences(windows, scaler, false);
  ASSERT_EQ(ds.size(), windows.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds.bag(i).id, windows[i].vs_id);
    EXPECT_EQ(ds.bag(i).instances.size(), windows[i].ts.size());
    for (const auto& inst : ds.bag(i).instances) {
      EXPECT_EQ(inst.features.size(), 9u);
      EXPECT_EQ(inst.raw_features.size(), 9u);
      EXPECT_EQ(inst.bag_id, ds.bag(i).id);
    }
  }
}

}  // namespace
}  // namespace mivid

// Tests for db/frame_store: RLE codec and clip video persistence.

#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/frame_store.h"
#include "db/video_db.h"
#include "trafficsim/renderer.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

TEST(RleTest, EncodesRunsCompactly) {
  std::vector<uint8_t> bytes(1000, 42);
  const std::string encoded = RleEncode(bytes);
  // 1000 = 3 * 255 + 235 -> 4 pairs.
  EXPECT_EQ(encoded.size(), 8u);
  Result<std::vector<uint8_t>> back = RleDecode(encoded, 1000);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), bytes);
}

TEST(RleTest, RoundtripsRandomData) {
  Rng rng(3);
  std::vector<uint8_t> bytes(4096);
  for (auto& b : bytes) {
    // Mixture of runs and noise.
    b = rng.Bernoulli(0.7) ? 100 : static_cast<uint8_t>(rng.UniformInt(0, 255));
  }
  Result<std::vector<uint8_t>> back = RleDecode(RleEncode(bytes), bytes.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), bytes);
}

TEST(RleTest, EmptyInput) {
  EXPECT_TRUE(RleEncode({}).empty());
  Result<std::vector<uint8_t>> back = RleDecode("", 0);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(RleTest, RejectsMalformedStreams) {
  EXPECT_TRUE(RleDecode("x", 1).status().IsCorruption());  // odd length
  std::string zero_run;
  zero_run.push_back('\0');
  zero_run.push_back('a');
  EXPECT_TRUE(RleDecode(zero_run, 1).status().IsCorruption());
  // Overrun and underrun.
  std::string two;
  two.push_back(2);
  two.push_back('a');
  EXPECT_TRUE(RleDecode(two, 1).status().IsCorruption());
  EXPECT_TRUE(RleDecode(two, 3).status().IsCorruption());
}

VideoClip RenderShortClip(int frames) {
  TunnelScenarioOptions options;
  options.total_frames = frames;
  options.num_wall_crashes = 0;
  options.num_sudden_stops = 0;
  options.num_speeding = 0;
  options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(options);
  TrafficWorld world(scenario);
  Renderer renderer(scenario.layout);
  VideoClip clip;
  clip.metadata().fps = 25.0;
  while (!world.Done()) {
    world.Step();
    clip.Append(renderer.Render(world.vehicles()));
  }
  return clip;
}

TEST(FrameStoreTest, ClipRoundtripIsExact) {
  const VideoClip clip = RenderShortClip(40);
  const std::string bytes = SerializeFrames(clip);
  Result<VideoClip> back = DeserializeFrames(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->frame_count(), clip.frame_count());
  EXPECT_EQ(back->metadata().width, clip.metadata().width);
  EXPECT_DOUBLE_EQ(back->metadata().fps, 25.0);
  for (size_t i = 0; i < clip.frame_count(); ++i) {
    ASSERT_EQ(back->frame(i).pixels(), clip.frame(i).pixels()) << i;
  }
}

TEST(FrameStoreTest, DetectsCorruption) {
  const VideoClip clip = RenderShortClip(5);
  std::string bytes = SerializeFrames(clip);
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_TRUE(DeserializeFrames(bytes).status().IsCorruption());
  EXPECT_FALSE(DeserializeFrames("junk").ok());
}

TEST(FrameStoreTest, VideoDbSaveLoadHasDelete) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mivid_db_video").string();
  std::filesystem::remove_all(dir);
  VideoDbOptions options;
  options.create_if_missing = true;
  auto db = VideoDb::Open(dir, options);
  ASSERT_TRUE(db.ok());
  ClipInfo info;
  info.camera_id = "cam";
  Result<int> id = db.value()->IngestClip(info, {}, {});
  ASSERT_TRUE(id.ok());

  EXPECT_FALSE(db.value()->HasClipVideo(id.value()));
  EXPECT_TRUE(
      db.value()->LoadClipVideo(id.value()).status().IsNotFound());
  // Saving video for a nonexistent clip fails.
  EXPECT_TRUE(
      db.value()->SaveClipVideo(99, RenderShortClip(3)).IsNotFound());

  const VideoClip clip = RenderShortClip(10);
  ASSERT_TRUE(db.value()->SaveClipVideo(id.value(), clip).ok());
  EXPECT_TRUE(db.value()->HasClipVideo(id.value()));
  Result<VideoClip> back = db.value()->LoadClipVideo(id.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->frame_count(), 10u);

  ASSERT_TRUE(db.value()->DeleteClip(id.value()).ok());
  EXPECT_FALSE(db.value()->HasClipVideo(id.value()));
  std::filesystem::remove_all(dir);
}

TEST(FrameStoreTest, AdaptiveEncodingNeverExpandsMuch) {
  // Noisy frames fall back to raw storage: total size stays within a
  // small constant overhead of the raw pixel payload.
  const VideoClip noisy = RenderShortClip(20);
  const size_t raw = noisy.frame_count() *
                     static_cast<size_t>(noisy.metadata().width) *
                     static_cast<size_t>(noisy.metadata().height);
  EXPECT_LT(SerializeFrames(noisy).size(), raw + 1024);

  // Noise-free frames compress well below raw.
  VideoClip flat;
  flat.metadata().fps = 25.0;
  for (int i = 0; i < 20; ++i) flat.Append(Frame(320, 240, 90));
  const size_t flat_raw = 20u * 320u * 240u;
  EXPECT_LT(SerializeFrames(flat).size(), flat_raw / 50);
  // And still roundtrip exactly.
  Result<VideoClip> back = DeserializeFrames(SerializeFrames(flat));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->frame(7).pixels(), flat.frame(7).pixels());
}

}  // namespace
}  // namespace mivid

// Tests for mil/mi_svm and mil/diverse_density: the MIL baselines.

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "mil/diverse_density.h"
#include "mil/mi_svm.h"

namespace mivid {
namespace {

/// Synthetic MIL corpus: 9-dim instances; bags in `hot` hide one instance
/// near the "concept" (0.8, 0.7, 0.6 at checkpoint 2), everything else is
/// near-zero noise.
MilDataset MakeCorpus(int n_bags, const std::set<int>& hot, uint64_t seed) {
  Rng rng(seed);
  MilDataset ds;
  for (int b = 0; b < n_bags; ++b) {
    MilBag bag;
    bag.id = b;
    const int n_inst = 2 + static_cast<int>(rng.UniformInt(0, 1));
    for (int i = 0; i < n_inst; ++i) {
      MilInstance inst;
      inst.bag_id = b;
      inst.instance_id = i;
      inst.features.assign(9, 0.0);
      for (auto& v : inst.features) v = std::fabs(rng.Gaussian(0.05, 0.04));
      if (hot.count(b) && i == 0) {
        inst.features[3] = 0.8 + rng.Uniform(-0.05, 0.05);
        inst.features[4] = 0.7 + rng.Uniform(-0.05, 0.05);
        inst.features[5] = 0.6 + rng.Uniform(-0.05, 0.05);
      }
      inst.raw_features = inst.features;
      bag.instances.push_back(std::move(inst));
    }
    ds.AddBag(std::move(bag));
  }
  return ds;
}

std::map<int, BagLabel> Truth(int n_bags, const std::set<int>& hot) {
  std::map<int, BagLabel> truth;
  for (int b = 0; b < n_bags; ++b) {
    truth[b] = hot.count(b) ? BagLabel::kRelevant : BagLabel::kIrrelevant;
  }
  return truth;
}

TEST(MiSvmTest, RequiresBothLabelKinds) {
  MilDataset ds = MakeCorpus(10, {1, 2}, 3);
  MiSvmEngine engine(&ds, MiSvmOptions{});
  EXPECT_TRUE(engine.Learn().IsFailedPrecondition());
  (void)ds.SetLabel(1, BagLabel::kRelevant);
  EXPECT_TRUE(engine.Learn().IsFailedPrecondition());  // still no negative
  (void)ds.SetLabel(0, BagLabel::kIrrelevant);
  EXPECT_TRUE(engine.Learn().ok());
  EXPECT_TRUE(engine.trained());
}

TEST(MiSvmTest, RanksHiddenPositiveBagsHigh) {
  const std::set<int> hot{2, 5, 8, 11, 14, 17};
  MilDataset ds = MakeCorpus(30, hot, 7);
  // Label half the hot bags and several cold ones.
  for (int b : {2, 5, 8}) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {0, 1, 3, 4}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);
  MiSvmEngine engine(&ds, MiSvmOptions{});
  ASSERT_TRUE(engine.Learn().ok());
  const auto ids = RankingIds(engine.Rank());
  const double acc = AccuracyAtN(ids, Truth(30, hot), 6);
  EXPECT_EQ(acc, 1.0) << "all six hot bags should fill the top-6";
  EXPECT_GE(engine.last_outer_iterations(), 1);
}

TEST(MiSvmTest, WitnessSelectionConverges) {
  const std::set<int> hot{1, 3, 5, 7};
  MilDataset ds = MakeCorpus(16, hot, 13);
  for (int b : hot) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {0, 2, 4, 6}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);
  MiSvmOptions options;
  options.max_outer_iterations = 10;
  MiSvmEngine engine(&ds, options);
  ASSERT_TRUE(engine.Learn().ok());
  EXPECT_LT(engine.last_outer_iterations(), 10)
      << "witness selection should stabilize before the iteration cap";
}

TEST(DiverseDensityTest, RequiresRelevantBag) {
  MilDataset ds = MakeCorpus(8, {1}, 17);
  DiverseDensityEngine engine(&ds, DiverseDensityOptions{});
  EXPECT_TRUE(engine.Learn().IsFailedPrecondition());
}

TEST(DiverseDensityTest, ConceptLandsNearPlantedSignature) {
  const std::set<int> hot{0, 1, 2, 3, 4, 5};
  MilDataset ds = MakeCorpus(20, hot, 19);
  for (int b : {0, 1, 2, 3}) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {6, 7, 8, 9}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);
  DiverseDensityEngine engine(&ds, DiverseDensityOptions{});
  ASSERT_TRUE(engine.Learn().ok());
  ASSERT_TRUE(engine.trained());
  const Vec& t = engine.concept_point();
  ASSERT_EQ(t.size(), 9u);
  EXPECT_NEAR(t[3], 0.8, 0.15);
  EXPECT_NEAR(t[4], 0.7, 0.15);
  EXPECT_NEAR(t[5], 0.6, 0.15);
}

TEST(DiverseDensityTest, EmAndPlainDdBothRankHotBagsHigh) {
  const std::set<int> hot{2, 6, 10, 14};
  MilDataset ds = MakeCorpus(20, hot, 23);
  for (int b : {2, 6}) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {0, 1}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);
  for (bool use_em : {true, false}) {
    DiverseDensityOptions options;
    options.use_em = use_em;
    DiverseDensityEngine engine(&ds, options);
    ASSERT_TRUE(engine.Learn().ok());
    const auto ids = RankingIds(engine.Rank());
    EXPECT_GE(AccuracyAtN(ids, Truth(20, hot), 4), 0.75)
        << (use_em ? "EM-DD" : "DD");
  }
}

TEST(DiverseDensityTest, NegativesSharpenTheOptimum) {
  // With negatives that sit near the positives' noise floor, log DD of the
  // learned concept must be higher than that of a zero vector.
  const std::set<int> hot{0, 1, 2};
  MilDataset ds = MakeCorpus(12, hot, 29);
  for (int b : hot) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {5, 6, 7, 8}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);
  DiverseDensityEngine engine(&ds, DiverseDensityOptions{});
  ASSERT_TRUE(engine.Learn().ok());
  EXPECT_GT(engine.best_log_dd(), -50.0);
  // The concept is far from the origin (the noise floor).
  EXPECT_GT(Norm(engine.concept_point()), 0.5);
}

}  // namespace
}  // namespace mivid

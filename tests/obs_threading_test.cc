// Concurrency tests for the observability subsystem: exact counting under
// ParallelFor, snapshot-under-load, concurrent tracing, and log-line
// atomicity. Lives in mivid_threading_tests so CI also runs it under TSan.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/access_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {
namespace {

class ObsThreadingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    ResetTrace();
    EnableMetrics(true);
    EnableTracing(true);
  }
  void TearDown() override {
    EnableMetrics(false);
    EnableTracing(false);
    MetricsRegistry::Global().Reset();
    ResetTrace();
  }
};

TEST_F(ObsThreadingTest, ConcurrentCounterIncrementsSumExactly) {
  Counter& c = MetricsRegistry::Global().GetCounter("thr/counter");
  constexpr size_t kItems = 100000;
  ParallelFor(kItems, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) c.Increment();
  });
  EXPECT_EQ(c.Value(), kItems);
}

TEST_F(ObsThreadingTest, ConcurrentHistogramObservesCountExactly) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("thr/hist");
  constexpr size_t kItems = 50000;
  ParallelFor(kItems, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      h.Observe(1e-3 * static_cast<double>(i % 100 + 1));
    }
  });
  const HistogramStats stats = h.Stats();
  EXPECT_EQ(stats.count, kItems);
  EXPECT_DOUBLE_EQ(stats.min, 1e-3);
  EXPECT_DOUBLE_EQ(stats.max, 0.1);
}

TEST_F(ObsThreadingTest, SnapshotUnderLoadIsConsistent) {
  Counter& c = MetricsRegistry::Global().GetCounter("thr/load_counter");
  Histogram& h = MetricsRegistry::Global().GetHistogram("thr/load_hist");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      c.Increment();
      h.Observe(0.01);
    }
  });
  // Snapshots taken while a writer is running must stay internally sane:
  // monotone counter reads, histogram count never exceeding a later read.
  uint64_t last_count = 0;
  for (int i = 0; i < 100; ++i) {
    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    const uint64_t count = snapshot.counters.at("thr/load_counter");
    EXPECT_GE(count, last_count);
    last_count = count;
    const HistogramStats stats = snapshot.histograms.at("thr/load_hist");
    if (stats.count > 0) {
      EXPECT_DOUBLE_EQ(stats.min, 0.01);
      EXPECT_DOUBLE_EQ(stats.max, 0.01);
    }
  }
  stop.store(true);
  writer.join();
}

TEST_F(ObsThreadingTest, ConcurrentSpansAllRetained) {
  constexpr size_t kItems = 2000;
  ParallelFor(kItems, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      MIVID_TRACE_SPAN("thr/span");
    }
  });
  const std::vector<TraceEventData> events = CollectTraceEvents();
  size_t ours = 0;
  for (const TraceEventData& e : events) {
    if (std::string(e.name) == "thr/span") ++ours;
  }
  EXPECT_EQ(ours + TraceDroppedEvents(), kItems);
}

TEST_F(ObsThreadingTest, CollectWhileRecordingIsSafe) {
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MIVID_TRACE_SPAN("thr/live");
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::vector<TraceEventData> events = CollectTraceEvents();
    for (size_t j = 1; j < events.size(); ++j) {
      if (events[j].tid != events[j - 1].tid) continue;
      EXPECT_GE(events[j].begin_us + events[j].dur_us,
                events[j - 1].begin_us + events[j - 1].dur_us);
    }
  }
  stop.store(true);
  writer.join();
}

TEST(ThreadPoolIndexTest, WorkerIndexVisibleInsidePoolOnly) {
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  SetGlobalThreadCount(4);
  std::atomic<int> seen_worker{0};
  ParallelFor(1000, 1, [&](size_t begin, size_t end) {
    (void)begin;
    (void)end;
    const int idx = ThreadPool::CurrentWorkerIndex();
    // Chunks run either inline on the caller (-1) or on a pool worker.
    EXPECT_GE(idx, -1);
    if (idx >= 0) seen_worker.fetch_add(1, std::memory_order_relaxed);
  });
  SetGlobalThreadCount(0);
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
}

TEST(LogThreadingTest, ConcurrentLogLinesDoNotInterleave) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  constexpr int kThreads = 4;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        MIVID_LOG(Warn) << "BEGIN t" << t << " line " << i << " END";
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::string captured = ::testing::internal::GetCapturedStderr();
  SetLogLevel(saved);

  // Every emitted line must be intact: exactly one BEGIN and one END, in
  // that order. Interleaved writes would split or merge the markers.
  size_t lines = 0;
  size_t pos = 0;
  while (pos < captured.size()) {
    size_t eol = captured.find('\n', pos);
    if (eol == std::string::npos) eol = captured.size();
    const std::string line = captured.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++lines;
    const size_t begin = line.find("BEGIN");
    const size_t end = line.rfind("END");
    ASSERT_NE(begin, std::string::npos) << line;
    ASSERT_NE(end, std::string::npos) << line;
    EXPECT_EQ(line.find("BEGIN", begin + 1), std::string::npos) << line;
    EXPECT_EQ(line.find("END"), end) << line;
  }
  EXPECT_EQ(lines, static_cast<size_t>(kThreads * kLines));
}

TEST(AccessLogThreadingTest, ConcurrentWritesNeverTearLines) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() /
       ("mivid_access_tsan." + std::to_string(getpid())))
          .string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  AccessLog log;
  AccessLog::Options options;
  options.path = dir + "/access.log";
  options.slow_path = dir + "/slow.log";
  options.slow_threshold_ms = 5.0;  // half the writes are slow
  ASSERT_TRUE(log.Open(options).ok());

  constexpr int kThreads = 8;
  constexpr int kWrites = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      // Each writer also installs its own audit scope: phase timers on
      // one thread must never bleed into another's record.
      RequestAudit audit;
      RequestAuditScope scope(&audit);
      AccessRecord record;
      record.role = "worker";
      record.node = "w" + std::to_string(t);
      record.cmd = "rank";
      record.session = "tsan" + std::to_string(t);
      record.status = "OK";
      record.cameras = {"cam0"};
      for (int i = 0; i < kWrites; ++i) {
        AuditPhaseTimer timer(&RequestAudit::rank_ms);
        record.total_ms = (i % 2) ? 10.0 : 1.0;
        log.Write(record);
      }
    });
  }
  for (auto& t : threads) t.join();
  log.Close();

  // Every line is intact JSON-shaped output: starts with the ts_ms key,
  // ends with the slow flag, and contains exactly one opening brace.
  auto check_file = [](const std::string& path, size_t expected) {
    std::ifstream in(path);
    std::string line;
    size_t count = 0;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ++count;
      EXPECT_EQ(line.compare(0, 9, "{\"ts_ms\":"), 0) << line;
      EXPECT_TRUE(line.find("\"slow\":") != std::string::npos) << line;
      EXPECT_EQ(line.back(), '}') << line;
      EXPECT_EQ(std::count(line.begin(), line.end(), '{'), 1) << line;
    }
    EXPECT_EQ(count, expected) << path;
  };
  check_file(options.path, static_cast<size_t>(kThreads * kWrites));
  check_file(options.slow_path, static_cast<size_t>(kThreads * kWrites / 2));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mivid

// Tests for trajectory/smoothing and mil/citation_knn.

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "mil/citation_knn.h"
#include "trajectory/smoothing.h"

namespace mivid {
namespace {

Track NoisyLine(int n, double noise, uint64_t seed) {
  Rng rng(seed);
  Track t;
  t.id = 0;
  for (int f = 0; f < n; ++f) {
    t.points.push_back({f,
                        {3.0 * f + rng.Gaussian(0, noise),
                         100.0 + rng.Gaussian(0, noise)},
                        BBox(3.0 * f - 8, 96, 3.0 * f + 8, 104)});
  }
  return t;
}

TEST(SmoothingTest, RemovesNoiseFromStraightTrack) {
  const Track noisy = NoisyLine(60, 2.0, 7);
  Result<Track> smoothed = SmoothTrack(noisy);
  ASSERT_TRUE(smoothed.ok());
  ASSERT_EQ(smoothed->points.size(), noisy.points.size());
  // Smoothed centroids are closer to the true line than the noisy ones.
  double noisy_err = 0, smooth_err = 0;
  for (size_t i = 0; i < noisy.points.size(); ++i) {
    const Point2 truth{3.0 * static_cast<double>(noisy.points[i].frame), 100.0};
    noisy_err += Distance(noisy.points[i].centroid, truth);
    smooth_err += Distance(smoothed->points[i].centroid, truth);
  }
  EXPECT_LT(smooth_err, noisy_err * 0.7);
  // Frames and boxes untouched.
  EXPECT_EQ(smoothed->points[5].frame, noisy.points[5].frame);
  EXPECT_DOUBLE_EQ(smoothed->points[5].bbox.min_y, 96.0);
}

TEST(SmoothingTest, ShortTracksPassThrough) {
  Track stub;
  stub.id = 3;
  stub.points = {{0, {1, 1}, {}}, {1, {2, 2}, {}}};
  Result<Track> smoothed = SmoothTrack(stub);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_EQ(smoothed->points[0].centroid, Point2(1, 1));
}

TEST(SmoothingTest, PiecewiseFollowsManeuvers) {
  // A long track with a sharp 90-degree turn: one global degree-4 fit
  // would round the corner badly; piecewise fitting keeps it tight.
  Track turn;
  turn.id = 0;
  for (int f = 0; f < 40; ++f) turn.points.push_back({f, {3.0 * f, 100}, {}});
  for (int f = 40; f < 80; ++f) {
    turn.points.push_back({f, {117.0, 100 + 3.0 * (f - 39)}, {}});
  }
  SmoothingOptions options;
  options.piece_points = 16;
  Result<Track> smoothed = SmoothTrack(turn, options);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_LT(SmoothingResidual(turn, smoothed.value()), 2.5);
}

TEST(SmoothingTest, SmoothTracksHandlesMixedLengths) {
  std::vector<Track> tracks{NoisyLine(60, 1.0, 9), Track{}, NoisyLine(3, 0, 11)};
  tracks[1].id = 9;
  const auto out = SmoothTracks(tracks);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].id, 9);
  EXPECT_EQ(out[2].points.size(), 3u);
}

TEST(SmoothingTest, ResidualReportsDisplacement) {
  const Track a = NoisyLine(30, 0.0, 13);
  Track b = a;
  for (auto& p : b.points) p.centroid.y += 3.0;
  EXPECT_NEAR(SmoothingResidual(a, b), 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(SmoothingResidual(Track{}, Track{}), 0.0);
}

MilBag MakeBag(int id, const Vec& hot, uint64_t seed) {
  Rng rng(seed);
  MilBag bag;
  bag.id = id;
  for (int i = 0; i < 2; ++i) {
    MilInstance inst;
    inst.bag_id = id;
    inst.instance_id = i;
    inst.features.assign(4, 0.0);
    for (auto& v : inst.features) v = std::fabs(rng.Gaussian(0.05, 0.03));
    if (i == 0 && !hot.empty()) inst.features = hot;
    inst.raw_features = inst.features;
    bag.instances.push_back(std::move(inst));
  }
  return bag;
}

TEST(BagDistanceTest, MinimalFormCollapsesToCommonInstances) {
  // Both bags contain a near-zero "normal" instance, so the minimal form
  // sees only that shared background and ignores the hot instances — the
  // reason the engine defaults to the maximal form.
  MilBag a = MakeBag(0, {1, 0, 0, 0}, 3);
  MilBag b = MakeBag(1, {1, 0.3, 0, 0}, 5);
  const double d_min = BagToBagDistance(a, b, BagDistance::kMinimalHausdorff);
  EXPECT_LT(d_min, 0.15) << "minimal form should match the noise instances";
  // Symmetric.
  EXPECT_DOUBLE_EQ(d_min,
                   BagToBagDistance(b, a, BagDistance::kMinimalHausdorff));
  // The maximal form reflects the worst-matched instance and separates
  // the bags by their hot-instance difference.
  const double d_max = BagToBagDistance(a, b, BagDistance::kMaximalHausdorff);
  EXPECT_GT(d_max, d_min);
  EXPECT_NEAR(d_max, 0.3, 0.2);
}

TEST(BagDistanceTest, EmptyBagIsInfinitelyFar)  {
  MilBag a = MakeBag(0, {1, 0, 0, 0}, 7);
  MilBag empty;
  EXPECT_TRUE(std::isinf(
      BagToBagDistance(a, empty, BagDistance::kMinimalHausdorff)));
}

TEST(CitationKnnTest, RequiresRelevantLabel) {
  MilDataset ds;
  ds.AddBag(MakeBag(0, {}, 9));
  ds.AddBag(MakeBag(1, {}, 11));
  (void)ds.SetLabel(0, BagLabel::kIrrelevant);
  CitationKnnEngine engine(&ds, CitationKnnOptions{});
  EXPECT_TRUE(engine.Learn().IsFailedPrecondition());
  EXPECT_FALSE(engine.trained());
}

TEST(CitationKnnTest, RanksBagsNearRelevantNeighborsHigh) {
  const Vec hot{0.9, 0.8, 0.1, 0.2};
  MilDataset ds;
  std::set<int> hot_bags{0, 1, 2, 3, 10, 11};
  for (int b = 0; b < 24; ++b) {
    Vec signature;
    if (hot_bags.count(b)) {
      Rng rng(100 + static_cast<uint64_t>(b));
      signature = hot;
      for (auto& v : signature) v += rng.Gaussian(0, 0.03);
    }
    ds.AddBag(MakeBag(b, signature, 200 + static_cast<uint64_t>(b)));
  }
  // Label some hot relevant, some cold irrelevant.
  for (int b : {0, 1, 2, 3}) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {4, 5, 6, 7}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);

  CitationKnnEngine engine(&ds, CitationKnnOptions{});
  ASSERT_TRUE(engine.Learn().ok());
  const auto ranking = engine.Rank();
  ASSERT_EQ(ranking.size(), 24u);
  // The unlabeled hot bags (10, 11) outrank every unlabeled cold bag.
  double hot_worst = 1e300;
  double cold_best = -1e300;
  for (const auto& sb : ranking) {
    if (sb.bag_id == 10 || sb.bag_id == 11) {
      hot_worst = std::min(hot_worst, sb.score);
    } else if (sb.bag_id >= 12) {
      cold_best = std::max(cold_best, sb.score);
    }
  }
  EXPECT_GT(hot_worst, cold_best);
}

TEST(CitationKnnTest, MaximalDistanceModeAlsoWorks) {
  const Vec hot{0.9, 0.8, 0.1, 0.2};
  MilDataset ds;
  for (int b = 0; b < 10; ++b) {
    ds.AddBag(MakeBag(b, b < 4 ? hot : Vec{}, 300 + static_cast<uint64_t>(b)));
  }
  for (int b : {0, 1}) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {5, 6}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);
  CitationKnnOptions options;
  options.distance = BagDistance::kMaximalHausdorff;
  CitationKnnEngine engine(&ds, options);
  ASSERT_TRUE(engine.Learn().ok());
  const auto ids = RankingIds(engine.Rank());
  // Hot unlabeled bags 2, 3 appear before cold unlabeled ones.
  const auto pos = [&](int id) {
    return std::find(ids.begin(), ids.end(), id) - ids.begin();
  };
  EXPECT_LT(pos(2), pos(7));
  EXPECT_LT(pos(3), pos(8));
}

}  // namespace
}  // namespace mivid

// Tests for retrieval/query_by_example: query-by-example and
// query-by-sketch ranking modes.

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "retrieval/query_by_example.h"

namespace mivid {
namespace {

MilDataset MakeCorpus(int n_bags, const std::set<int>& hot, uint64_t seed) {
  Rng rng(seed);
  MilDataset ds;
  for (int b = 0; b < n_bags; ++b) {
    MilBag bag;
    bag.id = b;
    for (int i = 0; i < 2; ++i) {
      MilInstance inst;
      inst.bag_id = b;
      inst.instance_id = i;
      inst.features.assign(9, 0.0);
      for (auto& v : inst.features) v = std::fabs(rng.Gaussian(0.05, 0.04));
      if (hot.count(b) && i == 0) {
        inst.features[3] = 0.85;
        inst.features[4] = 0.75;
      }
      inst.raw_features = inst.features;
      bag.instances.push_back(std::move(inst));
    }
    ds.AddBag(std::move(bag));
  }
  return ds;
}

TEST(QueryByExampleTest, ExampleBagRanksFirstSimilarBagsNext) {
  const std::set<int> hot{3, 8, 12, 17};
  const MilDataset ds = MakeCorpus(25, hot, 5);
  KernelParams kernel;
  kernel.sigma = 0.3;
  const auto ranking = QueryByExample(ds, *ds.FindBag(3), kernel);
  ASSERT_EQ(ranking.size(), 25u);
  EXPECT_EQ(ranking[0].bag_id, 3);  // the example itself
  // The other hot bags occupy the next ranks.
  std::set<int> next{ranking[1].bag_id, ranking[2].bag_id,
                     ranking[3].bag_id};
  EXPECT_EQ(next, (std::set<int>{8, 12, 17}));
}

TEST(QueryByExampleTest, DimensionMismatchScoresZero) {
  const MilDataset ds = MakeCorpus(5, {1}, 7);
  MilBag alien;
  alien.id = 999;
  MilInstance inst;
  inst.features = {1.0, 2.0};  // wrong dimension
  alien.instances.push_back(inst);
  KernelParams kernel;
  const auto ranking = QueryByExample(ds, alien, kernel);
  for (const auto& sb : ranking) EXPECT_DOUBLE_EQ(sb.score, 0.0);
}

TEST(QueryBySketchTest, SketchOfATurnFindsTurningWindows) {
  // Build a corpus from real tracks: one straight, one 90-degree turn.
  Track straight, turner;
  straight.id = 0;
  turner.id = 1;
  for (int f = 0; f <= 30; ++f) {
    straight.points.push_back({f, {3.0 * f, 50}, {}});
    turner.points.push_back({f, {3.0 * f, 150}, {}});
  }
  for (int f = 31; f <= 60; ++f) {
    straight.points.push_back({f, {3.0 * f, 50}, {}});
    turner.points.push_back({f, {90, 150 + 3.0 * (f - 30)}, {}});
  }
  FeatureOptions fopts;
  const auto features = ComputeTrackFeatures({straight, turner}, fopts);
  const FeatureScaler scaler = FeatureScaler::Fit(features, false);
  WindowOptions wopts;
  const auto windows = ExtractWindows(features, 61, fopts, wopts);
  const MilDataset ds = MilDataset::FromVideoSequences(windows, scaler, false);

  // Sketch: a right-angle path (the user draws a turn).
  TrajectorySketch sketch;
  for (int i = 0; i <= 6; ++i) sketch.points.push_back({15.0 * i, 0.0});
  for (int i = 1; i <= 6; ++i) sketch.points.push_back({90.0, 15.0 * i});
  KernelParams kernel;
  kernel.sigma = 0.4;
  Result<std::vector<ScoredBag>> ranking =
      QueryBySketch(ds, sketch, scaler, fopts, wopts, kernel);
  ASSERT_TRUE(ranking.ok()) << ranking.status().ToString();

  // The top-ranked bag must be the window where the turner turns.
  const MilBag* top = ds.FindBag(ranking.value()[0].bag_id);
  ASSERT_NE(top, nullptr);
  double best_theta = 0;
  // Recover the corresponding window and check its turner TS has theta.
  for (const auto& vs : windows) {
    if (vs.vs_id != top->id) continue;
    for (const auto& ts : vs.ts) {
      if (ts.track_id != 1) continue;
      for (const auto& p : ts.points) best_theta = std::max(best_theta, p.theta);
    }
  }
  EXPECT_GT(best_theta, 0.5) << "sketch should retrieve the turning window";
}

TEST(QueryBySketchTest, RejectsDegenerateSketches) {
  const MilDataset ds = MakeCorpus(3, {}, 11);
  FeatureOptions fopts;
  WindowOptions wopts;
  FeatureScaler scaler = FeatureScaler::Fit({}, false);
  KernelParams kernel;
  TrajectorySketch empty;
  EXPECT_FALSE(QueryBySketch(ds, empty, scaler, fopts, wopts, kernel).ok());
  TrajectorySketch tiny;
  tiny.points = {{0, 0}, {5, 5}};
  EXPECT_FALSE(QueryBySketch(ds, tiny, scaler, fopts, wopts, kernel).ok());
}

}  // namespace
}  // namespace mivid

// Robustness tests for the fleet: the deterministic fault-injection
// harness (common/fault.h), deadline budgets on every hop, transient
// reconnects, worker-side request shedding, and the coordinator's
// behavior under hung workers, dead replica sets, and corrupt replies.
// Every failure path here is driven on demand through named fault
// points or plain Stop() — no sleeps-and-hope.

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/coordinator.h"
#include "cluster/placement.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "db/video_db.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_((fs::temp_directory_path() /
               (std::string(name) + "." + std::to_string(getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Disarms whatever the test armed, even on assertion failure.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) { SetFaultSpecForTest(spec); }
  ~FaultGuard() { SetFaultSpecForTest(""); }
};

JsonValue Parse(const std::string& response) {
  Result<JsonValue> doc = ParseJson(response);
  EXPECT_TRUE(doc.ok()) << response;
  return doc.ok() ? std::move(doc).value() : JsonValue{};
}

bool IsOk(const JsonValue& doc) {
  const JsonValue* ok = doc.Find("ok");
  return ok != nullptr && ok->type == JsonValue::Type::kBool &&
         ok->bool_value;
}

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// ---------------------------------------------------------------------------
// Fault harness

TEST(FaultTest, DisarmedByDefaultAndCheapToCheck) {
  SetFaultSpecForTest("");
  EXPECT_FALSE(FaultsArmed());
  EXPECT_EQ(ArmedFaultSpec(), "");
  EXPECT_FALSE(MIVID_FAULT("some.point"));
}

TEST(FaultTest, ProbabilityOneAlwaysFiresZeroNeverDoes) {
  FaultGuard guard("always.on=1;never.on=0");
  EXPECT_TRUE(FaultsArmed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(FaultInjected("always.on"));
    EXPECT_FALSE(FaultInjected("never.on"));
  }
  EXPECT_FALSE(FaultInjected("unknown.point"));
}

TEST(FaultTest, ParamMsIsDeliveredOnHit) {
  FaultGuard guard("worker.rank.hang=1:250");
  int64_t ms = -1;
  EXPECT_TRUE(MIVID_FAULT_MS("worker.rank.hang", &ms));
  EXPECT_EQ(ms, 250);
  // A miss leaves the out-param untouched.
  SetFaultSpecForTest("worker.rank.hang=0:250");
  ms = -1;
  EXPECT_FALSE(MIVID_FAULT_MS("worker.rank.hang", &ms));
  EXPECT_EQ(ms, -1);
}

TEST(FaultTest, SeededStreamIsDeterministicAcrossRearm) {
  const std::string spec = "flaky.point=0.5@1234";
  std::vector<bool> first;
  {
    FaultGuard guard(spec);
    for (int i = 0; i < 200; ++i) first.push_back(FaultInjected("flaky.point"));
  }
  std::vector<bool> second;
  {
    FaultGuard guard(spec);
    for (int i = 0; i < 200; ++i) {
      second.push_back(FaultInjected("flaky.point"));
    }
  }
  EXPECT_EQ(first, second);
  const int fired = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 40);   // p=0.5 over 200 draws: loose two-sided bounds
  EXPECT_LT(fired, 160);
}

TEST(FaultTest, DifferentSeedsGiveDifferentStreams) {
  std::vector<bool> a, b;
  {
    FaultGuard guard("flaky.point=0.5@1");
    for (int i = 0; i < 200; ++i) a.push_back(FaultInjected("flaky.point"));
  }
  {
    FaultGuard guard("flaky.point=0.5@2");
    for (int i = 0; i < 200; ++i) b.push_back(FaultInjected("flaky.point"));
  }
  EXPECT_NE(a, b);
}

TEST(FaultTest, MalformedEntriesAreIgnoredNotFatal) {
  FaultGuard guard("garbage;=0.5;good.point=1;also=bad=entry");
  EXPECT_TRUE(FaultsArmed());
  EXPECT_TRUE(FaultInjected("good.point"));
  EXPECT_FALSE(FaultInjected("garbage"));
}

// ---------------------------------------------------------------------------
// Deadline type

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), Deadline::kInfiniteMs);
}

TEST(DeadlineTest, AfterMsExpires) {
  EXPECT_TRUE(Deadline::AfterMs(0).expired());
  EXPECT_TRUE(Deadline::AfterMs(-5).expired());
  const Deadline d = Deadline::AfterMs(10000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 9000);
  EXPECT_LE(d.remaining_ms(), 10000);
  EXPECT_EQ(Deadline::AfterMs(-5).remaining_ms(), 0);
}

TEST(DeadlineTest, ClampedToMsPicksTheEarlier) {
  const Deadline wide = Deadline::AfterMs(10000);
  const Deadline clamped = wide.ClampedToMs(50);
  EXPECT_LE(clamped.remaining_ms(), 50);
  // Clamping to something later keeps the original budget.
  EXPECT_GT(wide.ClampedToMs(60000).remaining_ms(), 9000);
  // ms <= 0 means "no budget configured": identity.
  EXPECT_TRUE(Deadline().ClampedToMs(0).infinite());
  EXPECT_GT(Deadline().ClampedToMs(-1).remaining_ms(), 1000000);
  // Clamping an infinite deadline yields a finite one.
  EXPECT_FALSE(Deadline().ClampedToMs(100).infinite());
}

// ---------------------------------------------------------------------------
// Wire deadline stamping

TEST(ProtocolDeadlineTest, StampAndParseRoundTrip) {
  const std::string stamped =
      StampDeadlineMs(R"({"cmd":"ping"})", 250);
  Result<ServeRequest> parsed = ParseServeRequest(stamped);
  ASSERT_TRUE(parsed.ok()) << stamped;
  EXPECT_EQ(parsed.value().deadline_ms, 250);
}

TEST(ProtocolDeadlineTest, NegativeDeadlineIsRejected) {
  Result<ServeRequest> parsed =
      ParseServeRequest(R"({"cmd":"ping","deadline_ms":-7})");
  EXPECT_FALSE(parsed.ok());
}

// ---------------------------------------------------------------------------
// Transient reconnects

TEST(TransientErrnoTest, ClassifiesRestartShapedFailures) {
  for (int err : {ECONNREFUSED, ECONNRESET, ECONNABORTED, ETIMEDOUT,
                  EAGAIN, EINTR, ENOENT}) {
    EXPECT_TRUE(TransientConnectErrno(err)) << err;
  }
  for (int err : {EACCES, EPERM, EAFNOSUPPORT, EINVAL, 0}) {
    EXPECT_FALSE(TransientConnectErrno(err)) << err;
  }
}

/// Shared corpus for the end-to-end tests: a handful of tunnel cameras.
struct FaultTestEnv {
  TempDir dir{"mivid_cluster_fault_test"};
  std::unique_ptr<VideoDb> db;
  std::vector<std::string> cameras;
};

FaultTestEnv& Env() {
  static FaultTestEnv* env = [] {
    auto* e = new FaultTestEnv();
    VideoDbOptions options;
    options.create_if_missing = true;
    auto opened = VideoDb::Open(e->dir.path(), options);
    if (!opened.ok()) std::abort();
    e->db = std::move(opened).value();
    for (int i = 0; i < 4; ++i) {
      const std::string camera = "cam" + std::to_string(i);
      TunnelScenarioOptions scenario_options;
      scenario_options.total_frames = 700;
      scenario_options.num_wall_crashes = 1;
      scenario_options.num_sudden_stops = 1;
      scenario_options.num_speeding = 0;
      scenario_options.num_uturns = 0;
      const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
      TrafficWorld world(scenario);
      const GroundTruth gt = world.Run();
      ClipInfo info;
      info.camera_id = camera;
      info.total_frames = scenario.total_frames;
      if (!e->db->IngestClip(info, gt.tracks, gt.incidents).ok()) {
        std::abort();
      }
      e->cameras.push_back(camera);
    }
    return e;
  }();
  return *env;
}

TEST(RetryTest, CallWithRetryRidesOutAServerRestart) {
  TempDir dir("mivid_retry_socket");
  fs::create_directories(dir.path());
  const std::string sock = dir.path() + "/serve.sock";

  ServeOptions options;
  options.socket_path = sock;
  auto server =
      std::make_unique<RetrievalServer>(Env().db.get(), options);
  ASSERT_TRUE(server->Start().ok());

  Result<ServeClient> client = ServeClient::Connect(sock);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value().Call(R"({"cmd":"ping"})").ok());

  // Restart the daemon on the same path — the shape of a supervised
  // worker bouncing. The client's next call hits a dead socket, then a
  // transient reconnect window, and must come back on its own.
  server->Stop();
  server = std::make_unique<RetrievalServer>(Env().db.get(), options);
  ASSERT_TRUE(server->Start().ok());

  RetryPolicy policy;
  policy.max_retries = 5;
  policy.base_delay_ms = 10;
  policy.jitter_seed = 1;
  Result<std::string> response =
      client.value().CallWithRetry(R"({"cmd":"ping"})", policy);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(IsOk(Parse(response.value())));
  server->Stop();
}

TEST(RetryTest, ExhaustedTransientRetriesSurfaceTheError) {
  TempDir dir("mivid_retry_gone");
  fs::create_directories(dir.path());
  const std::string sock = dir.path() + "/serve.sock";
  ServeOptions options;
  options.socket_path = sock;
  auto server =
      std::make_unique<RetrievalServer>(Env().db.get(), options);
  ASSERT_TRUE(server->Start().ok());
  Result<ServeClient> client = ServeClient::Connect(sock);
  ASSERT_TRUE(client.ok());
  server->Stop();
  server.reset();  // nobody comes back this time

  RetryPolicy policy;
  policy.max_retries = 2;
  policy.base_delay_ms = 5;
  policy.jitter_seed = 1;
  Result<std::string> response =
      client.value().CallWithRetry(R"({"cmd":"ping"})", policy);
  EXPECT_FALSE(response.ok());
}

// ---------------------------------------------------------------------------
// Client-side deadline vs a hung worker

TEST(ClientDeadlineTest, HungWorkerCallReturnsWithinBudget) {
  ServeOptions options;
  options.tcp_port = 0;
  options.worker_id = "whang";
  RetrievalServer server(Env().db.get(), options);
  ASSERT_TRUE(server.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(
      "127.0.0.1:" + std::to_string(server.tcp_port()));
  ASSERT_TRUE(client.ok());

  // Scoped to this worker id so parallel tests sharing the registry are
  // unaffected; the 1200ms nap bounds server teardown.
  FaultGuard guard("whang/worker.ping.hang=1:1200");
  const auto started = std::chrono::steady_clock::now();
  Result<std::string> response =
      client.value().Call(R"({"cmd":"ping"})", Deadline::AfterMs(150));
  const int64_t elapsed = ElapsedMs(started);
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();
  EXPECT_GE(elapsed, 140);
  EXPECT_LT(elapsed, 1100);  // came back well before the hang ended
  // The stream is desynced; the client closed it rather than risk
  // pairing the late response with the next request.
  EXPECT_FALSE(client.value().connected());
  server.Stop();
}

// ---------------------------------------------------------------------------
// Worker-side shedding of queue-expired requests

TEST(ShedTest, RequestExpiredBeforeDispatchIsShedNotServed) {
  ServeOptions options;
  // Hold every admitted request long enough for a 1ms budget to lapse
  // before dispatch — deterministic queue delay without racing threads.
  options.admission_hook = [](const ServeRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  RetrievalServer server(Env().db.get(), options);
  const std::string shed =
      server.HandleLine(R"({"cmd":"ping","deadline_ms":1})");
  EXPECT_EQ(ResponseStatusCode(shed), "DEADLINE_EXCEEDED") << shed;
  // The same wait with budget to spare is served normally.
  const std::string served =
      server.HandleLine(R"({"cmd":"ping","deadline_ms":5000})");
  EXPECT_TRUE(IsOk(Parse(served))) << served;
  // And no deadline at all never sheds.
  EXPECT_TRUE(IsOk(Parse(server.HandleLine(R"({"cmd":"ping"})"))));
}

// ---------------------------------------------------------------------------
// Transport faults: byte-at-a-time writes and reads still frame cleanly

TEST(TransportFaultTest, ShortWritesAndReadsDeliverWholeLines) {
  ServeOptions options;
  options.tcp_port = 0;
  RetrievalServer server(Env().db.get(), options);
  ASSERT_TRUE(server.Start().ok());
  Result<ServeClient> client = ServeClient::Connect(
      "127.0.0.1:" + std::to_string(server.tcp_port()));
  ASSERT_TRUE(client.ok());

  FaultGuard guard("transport.write.short=1;transport.read.short=1");
  for (int i = 0; i < 3; ++i) {
    Result<std::string> response = client.value().Call(R"({"cmd":"ping"})");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(IsOk(Parse(response.value()))) << response.value();
  }
  // A longer response (stats) survives the 1-byte regime too.
  Result<std::string> stats = client.value().Call(R"({"cmd":"stats"})");
  ASSERT_TRUE(stats.ok());
  const JsonValue doc = Parse(stats.value());
  EXPECT_TRUE(IsOk(doc)) << stats.value();
  server.Stop();
}

// ---------------------------------------------------------------------------
// Coordinator under faults

/// A small fleet over Env()'s database with configurable robustness
/// options. Workers get ids "w0".."wN-1".
struct FaultFleet {
  std::vector<std::unique_ptr<RetrievalServer>> workers;
  std::vector<std::string> endpoints;
  std::vector<std::string> worker_ids;
  std::unique_ptr<Coordinator> coord;

  FaultFleet(int worker_count, int replication, int rpc_deadline_ms,
             size_t max_sessions = 64, int heartbeat_ms = 0) {
    for (int i = 0; i < worker_count; ++i) {
      ServeOptions options;
      options.tcp_port = 0;
      options.worker_id = "w" + std::to_string(i);
      options.max_sessions = max_sessions;
      auto server =
          std::make_unique<RetrievalServer>(Env().db.get(), options);
      if (!server->Start().ok()) std::abort();
      endpoints.push_back("127.0.0.1:" +
                          std::to_string(server->tcp_port()));
      worker_ids.push_back(options.worker_id);
      workers.push_back(std::move(server));
    }
    CoordinatorOptions options;
    options.tcp_port = 0;
    options.workers = endpoints;
    options.replication = replication;
    options.rpc_deadline_ms = rpc_deadline_ms;
    options.heartbeat_ms = heartbeat_ms;
    coord = std::make_unique<Coordinator>(options);
    if (!coord->Start().ok()) std::abort();
  }

  /// Polls {"cmd":"stats"} until the coordinator reports `n` live
  /// workers (heartbeat death detection / re-admission).
  bool WaitWorkersAlive(int n, int timeout_ms = 8000) {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < give_up) {
      const JsonValue doc = Parse(Call(R"({"cmd":"stats"})"));
      const JsonValue* alive = doc.Find("workers_alive");
      if (alive != nullptr && alive->is_number() &&
          static_cast<int>(alive->number) == n) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

  ~FaultFleet() {
    SetFaultSpecForTest("");  // never tear down with hangs still armed
    coord->Stop();
    for (auto& worker : workers) worker->Stop();
  }

  std::string Call(const std::string& line) {
    return coord->HandleLine(line);
  }

  /// The fleet's placement is pure FNV over endpoint strings, so a local
  /// ring clone predicts exactly which workers own `camera`.
  std::vector<size_t> OwnerIndices(const std::string& camera,
                                   size_t replicas) const {
    PlacementRing ring(64);
    for (const std::string& endpoint : endpoints) ring.Add(endpoint);
    std::vector<size_t> out;
    for (const std::string& owner : ring.Owners(camera, replicas)) {
      for (size_t i = 0; i < endpoints.size(); ++i) {
        if (endpoints[i] == owner) out.push_back(i);
      }
    }
    return out;
  }
};

TEST(CoordinatorFaultTest, HungRankFailsOverWithinDeadlineBudget) {
  FaultFleet fleet(3, /*replication=*/1, /*rpc_deadline_ms=*/300);
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"hang1","camera":"cam0"})"))));
  const std::string baseline =
      fleet.Call(R"({"cmd":"rank","session":"hang1","top":5})");
  ASSERT_TRUE(IsOk(Parse(baseline))) << baseline;

  // Hang rank on cam0's home worker only. The coordinator must cut the
  // call at its deadline, treat the worker as dead, re-open the session
  // on a survivor (journal replay), and return the identical ranking —
  // all in far less time than the hang.
  const std::vector<size_t> home = fleet.OwnerIndices("cam0", 1);
  ASSERT_EQ(home.size(), 1u);
  FaultGuard guard(fleet.worker_ids[home[0]] +
                   "/worker.rank.hang=1:2000");
  const auto started = std::chrono::steady_clock::now();
  const std::string failed_over =
      fleet.Call(R"({"cmd":"rank","session":"hang1","top":5})");
  const int64_t elapsed = ElapsedMs(started);
  EXPECT_EQ(failed_over, baseline);
  EXPECT_LT(elapsed, 1900) << "rank blocked for the whole hang";
  // The hung attempt must burn its budget slice (half of 300ms, since
  // one share is held in reserve for the failover) before giving up.
  EXPECT_GE(elapsed, 140) << "deadline fired implausibly early";
}

TEST(CoordinatorFaultTest, ReplicatedSessionSurvivesPrimaryStopInstantly) {
  FaultFleet fleet(3, /*replication=*/2, /*rpc_deadline_ms=*/5000);
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"rep1","camera":"cam1"})"))));
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"feedback","session":"rep1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]})"))));
  const std::string baseline =
      fleet.Call(R"({"cmd":"rank","session":"rep1","top":-1})");
  ASSERT_TRUE(IsOk(Parse(baseline))) << baseline;

  // Kill the primary. The mirrored replica already holds the session
  // (open + feedback were both mirrored), so the retried rank needs no
  // re-open and must be byte-identical.
  const std::vector<size_t> owners = fleet.OwnerIndices("cam1", 2);
  ASSERT_EQ(owners.size(), 2u);
  fleet.workers[owners[0]]->Stop();
  const std::string after =
      fleet.Call(R"({"cmd":"rank","session":"rep1","top":-1})");
  EXPECT_EQ(after, baseline);
}

TEST(CoordinatorFaultTest, RestartedWorkerResumesSessionInPlace) {
  // The supervised-respawn shape: the session's home worker is replaced
  // by a fresh process on the SAME endpoint. The heartbeat re-admits
  // it, but its in-memory sessions are gone — the coordinator must
  // re-open in place (journal replay) instead of relaying NOT_FOUND.
  FaultFleet fleet(2, /*replication=*/1, /*rpc_deadline_ms=*/5000,
                   /*max_sessions=*/64, /*heartbeat_ms=*/100);
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"amn1","camera":"cam3"})"))));
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"feedback","session":"amn1","labels":[{"bag":0,"label":"relevant"},{"bag":1,"label":"irrelevant"}]})"))));
  const std::string baseline =
      fleet.Call(R"({"cmd":"rank","session":"amn1","top":-1})");
  ASSERT_TRUE(IsOk(Parse(baseline))) << baseline;

  const std::vector<size_t> home = fleet.OwnerIndices("cam3", 1);
  ASSERT_EQ(home.size(), 1u);
  const std::string& endpoint = fleet.endpoints[home[0]];
  const int port = std::stoi(endpoint.substr(endpoint.rfind(':') + 1));

  // Replace the home worker with an amnesiac twin on the same port,
  // letting the heartbeat observe the death first so the rank below
  // deterministically hits the re-admitted fresh process.
  fleet.workers[home[0]]->Stop();
  ASSERT_TRUE(fleet.WaitWorkersAlive(1));
  ServeOptions options;
  options.tcp_port = port;
  options.worker_id = fleet.worker_ids[home[0]];
  auto twin = std::make_unique<RetrievalServer>(Env().db.get(), options);
  ASSERT_TRUE(twin->Start().ok());
  fleet.workers[home[0]] = std::move(twin);
  ASSERT_TRUE(fleet.WaitWorkersAlive(2));

  const std::string resumed =
      fleet.Call(R"({"cmd":"rank","session":"amn1","top":-1})");
  EXPECT_EQ(resumed, baseline);
}

TEST(CoordinatorFaultTest, MultiRankDegradesWhenACameraLosesAllReplicas) {
  // Two workers, no replication, and the survivor pinned at its session
  // cap so failover re-opens onto it are rejected — the deterministic
  // way to strand the dead worker's cameras.
  FaultFleet fleet(2, /*replication=*/1, /*rpc_deadline_ms=*/2000,
                   /*max_sessions=*/4);
  std::string cameras_json = "[";
  for (size_t i = 0; i < Env().cameras.size(); ++i) {
    if (i > 0) cameras_json += ',';
    cameras_json += '"' + Env().cameras[i] + '"';
  }
  cameras_json += ']';
  const std::string open_response = fleet.Call(
      R"({"cmd":"open","session":"deg1","cameras":)" + cameras_json + "}");
  ASSERT_TRUE(IsOk(Parse(open_response))) << open_response;

  // Which cameras live only on worker 0?
  std::vector<std::string> on_w0, on_w1;
  for (const std::string& camera : Env().cameras) {
    const std::vector<size_t> owner = fleet.OwnerIndices(camera, 1);
    ASSERT_EQ(owner.size(), 1u);
    (owner[0] == 0 ? on_w0 : on_w1).push_back(camera);
  }
  if (on_w0.empty() || on_w1.empty()) {
    GTEST_SKIP() << "ephemeral ports hashed every camera onto one "
                    "worker; nothing to degrade";
  }

  // Fill the survivor (w1) to its cap so it cannot adopt w0's cameras.
  for (size_t i = on_w1.size(); i < 4; ++i) {
    ASSERT_TRUE(IsOk(Parse(fleet.Call(
        R"({"cmd":"open","session":"fill)" + std::to_string(i) +
        R"(","camera":")" + on_w1[0] + "\"}"))));
  }

  fleet.workers[0]->Stop();
  const std::string degraded =
      fleet.Call(R"({"cmd":"rank","session":"deg1","top":-1})");
  const JsonValue doc = Parse(degraded);
  ASSERT_TRUE(IsOk(doc)) << degraded;
  const JsonValue* info = doc.Find("degraded");
  ASSERT_NE(info, nullptr) << degraded;
  const JsonValue* missing = info->Find("missing_cameras");
  ASSERT_NE(missing, nullptr);
  ASSERT_TRUE(missing->is_array());
  std::set<std::string> reported;
  for (const JsonValue& camera : missing->array) {
    ASSERT_TRUE(camera.is_string());
    reported.insert(camera.string);
  }
  EXPECT_EQ(reported,
            std::set<std::string>(on_w0.begin(), on_w0.end()))
      << degraded;
  // The merged ranking covers exactly the surviving cameras.
  const JsonValue* ranking = doc.Find("ranking");
  ASSERT_NE(ranking, nullptr);
  ASSERT_TRUE(ranking->is_array());
  EXPECT_FALSE(ranking->array.empty());
  for (const JsonValue& item : ranking->array) {
    const JsonValue* camera = item.Find("camera");
    ASSERT_NE(camera, nullptr);
    EXPECT_EQ(reported.count(camera->string), 0u) << camera->string;
  }
}

TEST(CoordinatorFaultTest, AllCamerasDownFailsCleanly) {
  FaultFleet fleet(2, /*replication=*/1, /*rpc_deadline_ms=*/2000);
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"dead1","cameras":["cam0","cam1"]})"))));
  for (auto& worker : fleet.workers) worker->Stop();
  const std::string response =
      fleet.Call(R"({"cmd":"rank","session":"dead1","top":5})");
  const JsonValue doc = Parse(response);
  EXPECT_FALSE(IsOk(doc)) << response;
  EXPECT_EQ(ResponseStatusCode(response), "FAILED_PRECONDITION")
      << response;
}

TEST(CoordinatorFaultTest, TruncatedRepliesEndInCleanDataLoss) {
  FaultFleet fleet(2, /*replication=*/1, /*rpc_deadline_ms=*/2000);
  ASSERT_TRUE(IsOk(Parse(fleet.Call(
      R"({"cmd":"open","session":"trunc1","camera":"cam2"})"))));

  // Every worker now halves every response — the shape of processes
  // dying mid-write. The coordinator must not crash, hang, or relay
  // garbage: it walks the fleet, finds no worker able to answer
  // coherently, and reports DATA_LOSS.
  FaultGuard guard("worker.reply.truncate=1");
  const std::string response =
      fleet.Call(R"({"cmd":"rank","session":"trunc1","top":5})");
  const JsonValue doc = Parse(response);
  EXPECT_FALSE(IsOk(doc)) << response;
  EXPECT_EQ(ResponseStatusCode(response), "DATA_LOSS") << response;

  // Disarmed, the fleet recovers: the workers were only marked dead, and
  // a fresh session placement finds them again via reconnect... but
  // lazily — a brand-new coordinator round-trip proves the processes
  // themselves are healthy.
  SetFaultSpecForTest("");
  Result<ServeClient> direct = ServeClient::Connect(fleet.endpoints[0]);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(direct.value().Call(R"({"cmd":"ping"})").ok());
}

TEST(CoordinatorFaultTest, DeadlineMissesAreDistinguishedFromIoDeath) {
  // Direct registry-level check: a deadline miss keeps its status code
  // through the registry wrapper so callers can hedge on it.
  ServeOptions options;
  options.tcp_port = 0;
  options.worker_id = "wslow";
  RetrievalServer server(Env().db.get(), options);
  ASSERT_TRUE(server.Start().ok());
  WorkerRegistry registry(
      {"127.0.0.1:" + std::to_string(server.tcp_port())});
  ASSERT_TRUE(registry.ConnectAll().ok());
  WorkerConn& worker = *registry.workers()[0];

  FaultGuard guard("wslow/worker.ping.hang=1:1200");
  Result<std::string> response =
      registry.Call(worker, R"({"cmd":"ping"})", Deadline::AfterMs(100));
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();
  EXPECT_FALSE(worker.alive.load());
  server.Stop();
}

}  // namespace
}  // namespace mivid

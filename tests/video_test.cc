// Tests for video/: frames, clips, image I/O, drawing primitives.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "video/clip.h"
#include "video/draw.h"
#include "video/frame.h"
#include "video/image_io.h"

namespace mivid {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FrameTest, ConstructFillAccess) {
  Frame f(4, 3, 7);
  EXPECT_EQ(f.width(), 4);
  EXPECT_EQ(f.height(), 3);
  EXPECT_EQ(f.size(), 12u);
  EXPECT_EQ(f.At(3, 2), 7);
  f.At(1, 1) = 200;
  EXPECT_EQ(f.At(1, 1), 200);
  f.Fill(9);
  EXPECT_EQ(f.At(1, 1), 9);
}

TEST(FrameTest, BoundsCheckedGet) {
  Frame f(2, 2, 5);
  EXPECT_EQ(f.Get(0, 0), 5);
  EXPECT_EQ(f.Get(-1, 0, 42), 42);
  EXPECT_EQ(f.Get(2, 0, 42), 42);
  EXPECT_TRUE(f.InBounds(1, 1));
  EXPECT_FALSE(f.InBounds(2, 1));
}

TEST(FrameTest, MeanIntensityAndAbsDiff) {
  Frame a(2, 1);
  a.At(0, 0) = 10;
  a.At(1, 0) = 30;
  EXPECT_DOUBLE_EQ(a.MeanIntensity(), 20.0);
  Frame b(2, 1, 25);
  const Frame d = a.AbsDiff(b);
  EXPECT_EQ(d.At(0, 0), 15);
  EXPECT_EQ(d.At(1, 0), 5);
}

TEST(VideoClipTest, AppendSetsMetadataDimensions) {
  VideoClip clip;
  clip.metadata().fps = 25.0;
  clip.Append(Frame(320, 240));
  clip.Append(Frame(320, 240));
  EXPECT_EQ(clip.frame_count(), 2u);
  EXPECT_EQ(clip.metadata().width, 320);
  EXPECT_EQ(clip.metadata().height, 240);
  EXPECT_NEAR(clip.DurationSeconds(), 2.0 / 25.0, 1e-12);
}

TEST(ImageIoTest, PgmRoundtrip) {
  Frame f(16, 9);
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 16; ++x) {
      f.At(x, y) = static_cast<uint8_t>((x * 16 + y * 7) & 0xff);
    }
  }
  const std::string path = TempPath("mivid_test.pgm");
  ASSERT_TRUE(WritePgm(f, path).ok());
  Result<Frame> back = ReadPgm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width(), 16);
  EXPECT_EQ(back->height(), 9);
  EXPECT_EQ(back->pixels(), f.pixels());
  std::remove(path.c_str());
}

TEST(ImageIoTest, ReadRejectsMissingAndCorrupt) {
  EXPECT_TRUE(ReadPgm("/nonexistent/nowhere.pgm").status().IsIOError());
  const std::string path = TempPath("mivid_corrupt.pgm");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("P5\n4 4\n255\nxx", f);  // truncated payload
  std::fclose(f);
  EXPECT_TRUE(ReadPgm(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(ImageIoTest, PpmWriteProducesHeaderAndPayload) {
  RgbImage img(2, 2);
  img.Set(0, 0, 255, 0, 0);
  const std::string path = TempPath("mivid_test.ppm");
  ASSERT_TRUE(WritePpm(img, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char header[16] = {};
  ASSERT_EQ(std::fread(header, 1, 2, f), 2u);
  EXPECT_EQ(header[0], 'P');
  EXPECT_EQ(header[1], '6');
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(DrawTest, FillRectClipsToFrame) {
  Frame f(10, 10, 0);
  FillRect(&f, BBox(-5, -5, 3, 3), 200);
  EXPECT_EQ(f.At(0, 0), 200);
  EXPECT_EQ(f.At(3, 3), 200);
  EXPECT_EQ(f.At(4, 4), 0);
}

TEST(DrawTest, FillRotatedRectAxisAligned) {
  Frame f(20, 20, 0);
  FillRotatedRect(&f, {10, 10}, 4, 2, 0.0, 255);
  EXPECT_EQ(f.At(10, 10), 255);
  EXPECT_EQ(f.At(14, 10), 255);  // half_len along x
  EXPECT_EQ(f.At(10, 12), 255);  // half_wid along y
  EXPECT_EQ(f.At(15, 10), 0);
  EXPECT_EQ(f.At(10, 13), 0);
}

TEST(DrawTest, FillRotatedRect90Degrees) {
  Frame f(20, 20, 0);
  FillRotatedRect(&f, {10, 10}, 4, 2, M_PI / 2, 255);
  // Length now runs along y.
  EXPECT_EQ(f.At(10, 14), 255);
  EXPECT_EQ(f.At(14, 10), 0);
}

TEST(DrawTest, RgbPrimitives) {
  RgbImage img(20, 20);
  DrawRectOutline(&img, BBox(2, 2, 10, 10), 255, 255, 0);
  DrawDisc(&img, {15, 15}, 2, 255, 0, 0);
  DrawLine(&img, {0, 0}, {19, 19}, 0, 255, 0);
  // Outline edge (off the diagonal the line will cover).
  EXPECT_EQ(img.pixels[(5 * 20 + 2) * 3], 255);
  // Disc pixel off the diagonal is red.
  EXPECT_EQ(img.pixels[(15 * 20 + 16) * 3], 255);
  EXPECT_EQ(img.pixels[(15 * 20 + 16) * 3 + 1], 0);
  // Diagonal line pixel is green (drawn last, wins the diagonal).
  EXPECT_EQ(img.pixels[(7 * 20 + 7) * 3 + 1], 255);
  // Out-of-bounds set is a no-op.
  img.Set(-1, 0, 1, 1, 1);
  img.Set(0, 99, 1, 1, 1);
}

}  // namespace
}  // namespace mivid

// Tests for svm/binary_svm: the C-SVC SMO solver, including a brute-force
// cross-check of the dual optimum on tiny problems.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "svm/binary_svm.h"

namespace mivid {
namespace {

TEST(BinarySvmTest, SeparatesLinearlySeparableClouds) {
  Rng rng(3);
  std::vector<Vec> points;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.Gaussian(2, 0.4), rng.Gaussian(2, 0.4)});
    labels.push_back(1);
    points.push_back({rng.Gaussian(-2, 0.4), rng.Gaussian(-2, 0.4)});
    labels.push_back(-1);
  }
  BinarySvmOptions options;
  options.c = 10.0;
  options.kernel.type = KernelType::kLinear;
  Result<BinarySvmModel> model =
      BinarySvmTrainer(options).Train(points, labels);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  int correct = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    correct += model->Predict(points[i]) == labels[i] ? 1 : 0;
  }
  EXPECT_EQ(correct, static_cast<int>(points.size()));
  EXPECT_EQ(model->Predict({3, 3}), 1);
  EXPECT_EQ(model->Predict({-3, -3}), -1);
}

TEST(BinarySvmTest, RbfSolvesXor) {
  // XOR is not linearly separable; RBF handles it.
  std::vector<Vec> points;
  std::vector<int> labels;
  Rng rng(5);
  for (int i = 0; i < 25; ++i) {
    for (int sx = 0; sx < 2; ++sx) {
      for (int sy = 0; sy < 2; ++sy) {
        points.push_back({sx + rng.Gaussian(0, 0.08),
                          sy + rng.Gaussian(0, 0.08)});
        labels.push_back(sx == sy ? 1 : -1);
      }
    }
  }
  BinarySvmOptions options;
  options.c = 10.0;
  options.kernel.sigma = 0.4;
  Result<BinarySvmModel> model =
      BinarySvmTrainer(options).Train(points, labels);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Predict({0.0, 0.0}), 1);
  EXPECT_EQ(model->Predict({1.0, 1.0}), 1);
  EXPECT_EQ(model->Predict({1.0, 0.0}), -1);
  EXPECT_EQ(model->Predict({0.0, 1.0}), -1);
}

TEST(BinarySvmTest, MaxMarginMatchesAnalyticCase) {
  // Two points at (-1, 0) and (1, 0): the separating hyperplane is x = 0,
  // w = (1, 0), b = 0, margin 1 each side. With large C the SVM is the
  // hard-margin optimum.
  BinarySvmOptions options;
  options.c = 1000.0;
  options.kernel.type = KernelType::kLinear;
  Result<BinarySvmModel> model = BinarySvmTrainer(options).Train(
      {{1.0, 0.0}, {-1.0, 0.0}}, {1, -1});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->DecisionValue({1.0, 0.0}), 1.0, 1e-3);
  EXPECT_NEAR(model->DecisionValue({-1.0, 0.0}), -1.0, 1e-3);
  EXPECT_NEAR(model->DecisionValue({0.0, 0.0}), 0.0, 1e-3);
  EXPECT_NEAR(model->bias(), 0.0, 1e-3);
}

/// Dual objective for the brute-force check:
/// W(a) = sum a_i - 1/2 sum a_i a_j y_i y_j K_ij.
double DualObjective(const std::vector<Vec>& x, const std::vector<int>& y,
                     const Vec& a, const KernelParams& kernel) {
  double obj = 0;
  for (size_t i = 0; i < a.size(); ++i) obj += a[i];
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a.size(); ++j) {
      obj -= 0.5 * a[i] * a[j] * y[i] * y[j] * KernelEval(kernel, x[i], x[j]);
    }
  }
  return obj;
}

TEST(BinarySvmTest, SmoReachesBruteForceDualOptimumOnTinyProblem) {
  // 4 points, grid-search the dual over the equality-constrained simplex.
  const std::vector<Vec> x{{0.0, 0.0}, {0.3, 0.2}, {1.0, 1.0}, {0.8, 1.2}};
  const std::vector<int> y{-1, -1, 1, 1};
  BinarySvmOptions options;
  options.c = 2.0;
  options.kernel.sigma = 1.0;
  options.tolerance = 1e-6;
  Result<BinarySvmModel> model = BinarySvmTrainer(options).Train(x, y);
  ASSERT_TRUE(model.ok());

  // Recover alphas: coefficients are alpha_i y_i for support vectors; grid
  // search all (a0, a1, a2) with a3 = a0 + a1 - a2 (from sum a_i y_i = 0).
  double best = -1e300;
  const int kGrid = 40;
  for (int i0 = 0; i0 <= kGrid; ++i0) {
    for (int i1 = 0; i1 <= kGrid; ++i1) {
      for (int i2 = 0; i2 <= kGrid; ++i2) {
        Vec a{2.0 * i0 / kGrid, 2.0 * i1 / kGrid, 2.0 * i2 / kGrid, 0.0};
        a[3] = a[0] + a[1] - a[2];
        if (a[3] < 0 || a[3] > options.c) continue;
        best = std::max(best, DualObjective(x, y, a, options.kernel));
      }
    }
  }
  // The SMO solution's dual objective, reconstructed from the model.
  // f(x) = sum_i coeff_i K(sv_i, x) + b with coeff_i = a_i y_i; recompute
  // the objective via the decision values at the training points:
  // W(a) = sum a_i - 1/2 sum_i a_i y_i (f(x_i) - b).
  double sum_a = 0, quad = 0;
  for (size_t i = 0; i < model->support_vectors().size(); ++i) {
    const double coeff = model->coefficients()[i];  // a_i y_i
    const double a_i = std::fabs(coeff);
    sum_a += a_i;
    quad += coeff * (model->DecisionValue(model->support_vectors()[i]) -
                     model->bias());
  }
  const double smo_obj = sum_a - 0.5 * quad;
  EXPECT_GE(smo_obj, best - 0.02) << "SMO is below the brute-force optimum";
}

TEST(BinarySvmTest, AlphasRespectBoxAndEqualityConstraints) {
  Rng rng(9);
  std::vector<Vec> points;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    const bool pos = rng.Bernoulli(0.5);
    points.push_back({rng.Gaussian(pos ? 1 : -1, 0.8),
                      rng.Gaussian(pos ? 1 : -1, 0.8)});
    labels.push_back(pos ? 1 : -1);
  }
  BinarySvmOptions options;
  options.c = 1.5;
  Result<BinarySvmModel> model =
      BinarySvmTrainer(options).Train(points, labels);
  ASSERT_TRUE(model.ok());
  double sum_ay = 0;
  for (double coeff : model->coefficients()) {
    EXPECT_LE(std::fabs(coeff), options.c + 1e-9);  // |a_i y_i| <= C
    sum_ay += coeff;                                 // sum a_i y_i = 0
  }
  EXPECT_NEAR(sum_ay, 0.0, 1e-9);
}

TEST(BinarySvmTest, RejectsBadInput) {
  BinarySvmOptions options;
  BinarySvmTrainer trainer(options);
  EXPECT_FALSE(trainer.Train({}, {}).ok());
  EXPECT_FALSE(trainer.Train({{1.0}}, {1}).ok());  // one class only
  EXPECT_FALSE(trainer.Train({{1.0}, {2.0}}, {1, 0}).ok());  // bad label
  EXPECT_FALSE(trainer.Train({{1.0}, {2.0, 3.0}}, {1, -1}).ok());  // ragged
  BinarySvmOptions bad_c;
  bad_c.c = 0.0;
  EXPECT_FALSE(
      BinarySvmTrainer(bad_c).Train({{1.0}, {2.0}}, {1, -1}).ok());
}

TEST(BinarySvmTest, ClassImbalanceStillSeparates) {
  Rng rng(11);
  std::vector<Vec> points;
  std::vector<int> labels;
  for (int i = 0; i < 5; ++i) {
    points.push_back({rng.Gaussian(2, 0.2), rng.Gaussian(2, 0.2)});
    labels.push_back(1);
  }
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.Gaussian(-2, 0.5), rng.Gaussian(-2, 0.5)});
    labels.push_back(-1);
  }
  BinarySvmOptions options;
  options.c = 5.0;
  Result<BinarySvmModel> model =
      BinarySvmTrainer(options).Train(points, labels);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Predict({2.0, 2.0}), 1);
  EXPECT_EQ(model->Predict({-2.0, -2.0}), -1);
}

}  // namespace
}  // namespace mivid

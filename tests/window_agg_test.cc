// Property tests for event/window_agg.h: the exact incremental
// sliding-window aggregates under the streaming ingestion pipeline.
//
// The exactness contract (see the header): after any randomized
// add/evict history, Query() over a kMin/kMax aggregate is bit-identical
// to a batch left-to-right fold over the surviving window contents
// (NaN-free inputs), and a kSum aggregate is bit-identical whenever the
// values are integer-valued doubles small enough that every partial sum
// is exactly representable. ScalerAgg in add-only mode must reproduce
// FeatureScaler::Fit bitwise — that equality is what makes the streamed
// clip scaler equal the batch one (docs/ingest.md).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "event/features.h"
#include "event/window_agg.h"

namespace mivid {
namespace {

/// Batch reference: left-to-right fold over the window contents, the
/// exact arithmetic FeatureScaler::Fit and the batch extractors use.
double BatchFold(const std::deque<double>& window, WindowAggOp op) {
  if (window.empty()) return 0.0;
  double acc = window.front();
  for (size_t i = 1; i < window.size(); ++i) {
    switch (op) {
      case WindowAggOp::kMin: acc = std::min(acc, window[i]); break;
      case WindowAggOp::kMax: acc = std::max(acc, window[i]); break;
      case WindowAggOp::kSum: acc = acc + window[i]; break;
    }
  }
  return acc;
}

/// Drives one aggregate and the deque reference through the same
/// randomized add/evict history, checking Query() bitwise at every step.
void RunRandomizedHistory(WindowAggOp op, uint32_t seed, bool integer_values) {
  std::mt19937 rng(seed);
  // Finite, NaN-free magnitudes spanning several orders of magnitude —
  // the feature pipeline's raw values (1/px, px/frame, radians) but also
  // harsher: negatives and near-zero.
  std::uniform_real_distribution<double> real_dist(-1e6, 1e6);
  std::uniform_int_distribution<int> int_dist(-1000000, 1000000);
  std::uniform_int_distribution<int> action(0, 99);

  SlidingAgg agg(op);
  std::deque<double> window;
  for (int step = 0; step < 4000; ++step) {
    // 60% add / 40% evict keeps the window growing but exercises long
    // evict runs (the two-stack flip) regularly.
    if (window.empty() || action(rng) < 60) {
      const double value =
          integer_values ? static_cast<double>(int_dist(rng)) : real_dist(rng);
      agg.Add(value);
      window.push_back(value);
    } else {
      agg.Evict();
      window.pop_front();
    }
    ASSERT_EQ(agg.size(), window.size());
    if (!window.empty() || op == WindowAggOp::kSum) {
      // EXPECT_EQ on double is exact (bitwise for non-NaN): the contract
      // under test, not an approximation.
      ASSERT_EQ(agg.Query(), BatchFold(window, op))
          << "op=" << static_cast<int>(op) << " step=" << step
          << " size=" << window.size();
    }
  }
}

TEST(SlidingAggTest, MinBitIdenticalToBatchFold) {
  for (uint32_t seed : {1u, 2u, 3u}) {
    RunRandomizedHistory(WindowAggOp::kMin, seed, /*integer_values=*/false);
  }
}

TEST(SlidingAggTest, MaxBitIdenticalToBatchFold) {
  for (uint32_t seed : {7u, 8u, 9u}) {
    RunRandomizedHistory(WindowAggOp::kMax, seed, /*integer_values=*/false);
  }
}

TEST(SlidingAggTest, SumExactOnIntegerValuedDoubles) {
  for (uint32_t seed : {11u, 12u, 13u}) {
    RunRandomizedHistory(WindowAggOp::kSum, seed, /*integer_values=*/true);
  }
}

TEST(SlidingAggTest, EmptyWindowEdgeCases) {
  SlidingAgg sum(WindowAggOp::kSum);
  EXPECT_TRUE(sum.empty());
  EXPECT_EQ(sum.Query(), 0.0);
  sum.Evict();  // no-op on empty
  EXPECT_TRUE(sum.empty());
  sum.Add(5.0);
  sum.Add(7.0);
  sum.Evict();
  EXPECT_EQ(sum.Query(), 7.0);
  sum.Evict();
  EXPECT_TRUE(sum.empty());
  EXPECT_EQ(sum.Query(), 0.0);
  // Refilling after full drain starts a clean window.
  sum.Add(3.0);
  EXPECT_EQ(sum.Query(), 3.0);
}

TEST(SlidingAggTest, SingleElementWindowIsTheElement) {
  SlidingAgg min_agg(WindowAggOp::kMin);
  const double value = -0.12345678901234567;
  min_agg.Add(value);
  EXPECT_EQ(min_agg.Query(), value);
}

// ---------------------------------------------------------------------------
// ScalerAgg

std::vector<TrackFeatures> RandomTracks(uint32_t seed, int num_tracks,
                                        int max_points) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> feat(0.0, 10.0);
  std::uniform_int_distribution<int> npoints(0, max_points);
  std::vector<TrackFeatures> tracks(num_tracks);
  for (int t = 0; t < num_tracks; ++t) {
    tracks[t].track_id = t;
    const int n = npoints(rng);
    for (int i = 0; i < n; ++i) {
      SamplingPointFeatures p;
      p.frame = 5 * i;
      p.inv_mdist = feat(rng);
      p.vdiff = feat(rng);
      p.theta = feat(rng);
      p.speed = feat(rng);
      tracks[t].points.push_back(p);
    }
  }
  return tracks;
}

void ExpectScalerBitIdentical(const FeatureScaler& got,
                              const FeatureScaler& want) {
  ASSERT_EQ(got.dimension(), want.dimension());
  for (size_t d = 0; d < want.dimension(); ++d) {
    EXPECT_EQ(got.lower()[d], want.lower()[d]) << "dim " << d;
    EXPECT_EQ(got.upper()[d], want.upper()[d]) << "dim " << d;
  }
}

TEST(ScalerAggTest, AddOnlyMatchesFitBitwise) {
  for (const bool include_velocity : {false, true}) {
    for (uint32_t seed : {21u, 22u, 23u}) {
      const auto tracks = RandomTracks(seed, 8, 20);
      const FeatureScaler batch = FeatureScaler::Fit(tracks, include_velocity);
      ScalerAgg agg;
      for (const TrackFeatures& tf : tracks) {
        for (const SamplingPointFeatures& p : tf.points) {
          agg.Add(p.ToVector(include_velocity));
        }
      }
      ExpectScalerBitIdentical(agg.Scaler(include_velocity ? 4 : 3), batch);
    }
  }
}

TEST(ScalerAggTest, EmptyMatchesFitIdentityFallback) {
  for (const bool include_velocity : {false, true}) {
    const FeatureScaler batch = FeatureScaler::Fit({}, include_velocity);
    ScalerAgg agg;
    ExpectScalerBitIdentical(agg.Scaler(include_velocity ? 4 : 3), batch);
  }
}

TEST(ScalerAggTest, EvictMatchesFitOverSurvivingSuffix) {
  // Add all checkpoints of a flattened random sequence, evict a random
  // prefix, and compare against Fit over only the survivors.
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> feat(-5.0, 5.0);
  std::vector<Vec> raws;
  for (int i = 0; i < 200; ++i) {
    raws.push_back(Vec{feat(rng), feat(rng), feat(rng)});
  }
  ScalerAgg agg;
  for (const Vec& raw : raws) agg.Add(raw);
  const size_t evicted = 137;
  for (size_t i = 0; i < evicted; ++i) agg.Evict();
  ASSERT_EQ(agg.size(), raws.size() - evicted);

  // Express the surviving suffix as one TrackFeatures so Fit folds it in
  // the same left-to-right order.
  TrackFeatures survivors;
  survivors.track_id = 0;
  for (size_t i = evicted; i < raws.size(); ++i) {
    SamplingPointFeatures p;
    p.inv_mdist = raws[i][0];
    p.vdiff = raws[i][1];
    p.theta = raws[i][2];
    survivors.points.push_back(p);
  }
  ExpectScalerBitIdentical(agg.Scaler(3),
                           FeatureScaler::Fit({survivors}, false));
}

// ---------------------------------------------------------------------------
// RollingStats

TEST(RollingStatsTest, TracksLastCapacityObservations) {
  RollingStats stats(4);
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.Mean(), 0.0);
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Observe(v);
  EXPECT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats.Min(), 1.0);
  EXPECT_EQ(stats.Max(), 4.0);
  EXPECT_EQ(stats.Mean(), 2.5);
  // A fifth observation evicts the oldest (1.0).
  stats.Observe(10.0);
  EXPECT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats.Min(), 2.0);
  EXPECT_EQ(stats.Max(), 10.0);
  EXPECT_EQ(stats.Mean(), (2.0 + 3.0 + 4.0 + 10.0) / 4);
}

}  // namespace
}  // namespace mivid

// Bit-identity and dispatch tests for the SIMD kernel primitives
// (linalg/simd.h), the packed feature layout, the early-termination
// top-k ranking, and the zero-copy corpus snapshot.
//
// The load-bearing invariant: every primitive produces bit-identical
// results on every dispatch tier, so rankings never depend on the host's
// instruction set (or on MIVID_SIMD / MIVID_THREADS).

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/packed_corpus_io.h"
#include "linalg/packed_matrix.h"
#include "linalg/simd.h"
#include "mil/dataset.h"
#include "mil/packed_corpus.h"
#include "retrieval/mil_rf_engine.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

/// Restores native dispatch however a test leaves the tier.
class TierGuard {
 public:
  ~TierGuard() {
    unsetenv("MIVID_SIMD");
    SetSimdTier(-1);
  }
};

std::vector<double> RandomDoubles(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.Gaussian(0.0, 1.0);
  return out;
}

PackedFeatureMatrix PackRandom(const std::vector<Vec>& points) {
  std::vector<const Vec*> ptrs;
  for (const auto& p : points) ptrs.push_back(&p);
  return PackedFeatureMatrix::FromPoints(ptrs, points[0].size());
}

std::vector<Vec> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> points(n, Vec(dim));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Gaussian(0.1, 0.5);
  }
  return points;
}

/// Runs `fn` once per available tier and bit-compares the outputs of the
/// later tiers against the scalar reference.
template <typename Fn>
void ExpectTiersAgree(size_t out_len, const Fn& fn) {
  TierGuard guard;
  SetSimdTier(static_cast<int>(SimdTier::kScalar));
  std::vector<double> reference(out_len, 0.0);
  fn(reference.data());
  if (!Avx2Available()) return;
  SetSimdTier(static_cast<int>(SimdTier::kAvx2));
  std::vector<double> avx2(out_len, 0.0);
  fn(avx2.data());
  for (size_t i = 0; i < out_len; ++i) {
    // Bit equality, not tolerance: NaN-safe via the bit pattern.
    EXPECT_EQ(reference[i], avx2[i]) << "lane " << i;
  }
}

TEST(SimdKernelsTest, DistanceRowsMatchScalarAtEveryLength) {
  // Odd lengths cover every main-loop/4-wide/scalar tail combination.
  for (size_t n : {size_t{1}, size_t{3}, size_t{5}, size_t{7}, size_t{8},
                   size_t{9}, size_t{13}, size_t{31}, size_t{64},
                   size_t{257}}) {
    for (size_t dim : {size_t{1}, size_t{3}, size_t{9}, size_t{12}}) {
      const auto points = RandomPoints(n, dim, 1000 * n + dim);
      const auto packed = PackRandom(points);
      const Vec query = RandomPoints(1, dim, 7 * n + dim)[0];
      double query_norm = 0.0;
      for (double v : query) query_norm += v * v;

      ExpectTiersAgree(n, [&](double* out) {
        SimdOps().expanded_d2_row(query.data(), query_norm, dim,
                                  packed.data(), packed.stride(),
                                  packed.squared_norms(), n, out);
      });
      ExpectTiersAgree(n, [&](double* out) {
        SimdOps().direct_d2_row(query.data(), dim, packed.data(),
                                packed.stride(), n, out);
      });
      ExpectTiersAgree(n, [&](double* out) {
        SimdOps().dot_row(query.data(), dim, packed.data(), packed.stride(),
                          n, out);
      });
    }
  }
}

TEST(SimdKernelsTest, DirectRowEqualsSquaredDistanceExactly) {
  const size_t n = 37, dim = 9;
  const auto points = RandomPoints(n, dim, 21);
  const auto packed = PackRandom(points);
  const Vec query = RandomPoints(1, dim, 22)[0];
  std::vector<double> row(n);
  TierGuard guard;
  for (int tier = 0; tier <= (Avx2Available() ? 1 : 0); ++tier) {
    SetSimdTier(tier);
    SimdOps().direct_d2_row(query.data(), dim, packed.data(),
                            packed.stride(), n, row.data());
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(row[j], SquaredDistance(query, points[j])) << j;
    }
  }
}

TEST(SimdKernelsTest, RowsMatchAtUnalignedOffsets) {
  // Row primitives must not assume 32-byte alignment: slice the packed
  // block at every sub-vector offset (bag slices start anywhere).
  const size_t n = 64, dim = 5;
  const auto points = RandomPoints(n, dim, 31);
  const auto packed = PackRandom(points);
  const Vec query = RandomPoints(1, dim, 32)[0];
  const double gamma = 1.7;
  for (size_t offset : {size_t{1}, size_t{2}, size_t{3}, size_t{5}}) {
    const size_t count = n - offset;
    ExpectTiersAgree(count, [&](double* out) {
      SimdOps().direct_d2_row(query.data(), dim, packed.data() + offset,
                              packed.stride(), count, out);
    });
    const auto d2 = RandomDoubles(count, 100 + offset);
    std::vector<double> d2_abs(count);
    for (size_t i = 0; i < count; ++i) d2_abs[i] = std::fabs(d2[i]);
    ExpectTiersAgree(count, [&](double* out) {
      SimdOps().rbf_from_d2_row(gamma, d2_abs.data(), count, out);
    });
  }
}

TEST(SimdKernelsTest, RbfRowAndAxpyMatchScalar) {
  for (size_t n : {size_t{1}, size_t{4}, size_t{15}, size_t{16}, size_t{17},
                   size_t{33}, size_t{100}, size_t{1024}}) {
    auto d2 = RandomDoubles(n, n);
    for (auto& v : d2) v = std::fabs(v);
    ExpectTiersAgree(n, [&](double* out) {
      SimdOps().rbf_from_d2_row(0.9, d2.data(), n, out);
    });

    const auto x = RandomDoubles(n, 2 * n + 1);
    const auto q = RandomDoubles(n, 2 * n + 2);
    const auto y0 = RandomDoubles(n, 2 * n + 3);
    ExpectTiersAgree(n, [&](double* out) {
      std::copy(y0.begin(), y0.end(), out);
      SimdOps().axpy(0.37, x.data(), n, out);
    });
    ExpectTiersAgree(n, [&](double* out) {
      std::copy(y0.begin(), y0.end(), out);
      SimdOps().axpy_diff(-1.21, x.data(), q.data(), n, out);
    });
  }
}

TEST(SimdKernelsTest, DetExpTracksStdExpTightly) {
  Rng rng(5);
  EXPECT_EQ(DetExp(0.0), 1.0);
  EXPECT_EQ(DetExp(-0.0), 1.0);
  // Arguments past the clamp saturate at the clamp value instead of
  // underflowing through subnormals.
  EXPECT_EQ(DetExp(-800.0), DetExp(-708.0));
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-700.0, 50.0);
    const double want = std::exp(x);
    const double got = DetExp(x);
    if (want == 0.0) {
      EXPECT_EQ(got, 0.0) << x;
    } else {
      EXPECT_NEAR(got / want, 1.0, 5e-15) << x;
    }
  }
}

TEST(SimdKernelsTest, EnvOverrideSelectsTier) {
  TierGuard guard;
  setenv("MIVID_SIMD", "scalar", 1);
  SetSimdTier(-1);  // re-resolve from the environment
  EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);

  if (Avx2Available()) {
    setenv("MIVID_SIMD", "avx2", 1);
    SetSimdTier(-1);
    EXPECT_EQ(ActiveSimdTier(), SimdTier::kAvx2);
  }

  // Unknown value: warn and fall back to native resolution.
  setenv("MIVID_SIMD", "sse42", 1);
  SetSimdTier(-1);
  EXPECT_EQ(ActiveSimdTier(),
            Avx2Available() ? SimdTier::kAvx2 : SimdTier::kScalar);
}

TEST(PackedMatrixTest, LayoutNormsAndRoundTrip) {
  const size_t n = 11, dim = 4;
  const auto points = RandomPoints(n, dim, 77);
  const auto packed = PackRandom(points);
  EXPECT_EQ(packed.n(), n);
  EXPECT_EQ(packed.dim(), dim);
  EXPECT_EQ(packed.stride(), PackedFeatureMatrix::StrideFor(n));
  for (size_t j = 0; j < n; ++j) {
    for (size_t k = 0; k < dim; ++k) {
      EXPECT_EQ(packed.At(k, j), points[j][k]);
    }
    // Norms carry the exact Dot(p, p) accumulation order.
    EXPECT_EQ(packed.squared_norms()[j], Dot(points[j], points[j]));
    Vec back;
    packed.CopyPoint(j, &back);
    EXPECT_EQ(back, points[j]);
  }
  // Padding lanes are zero so SIMD tails can read them safely.
  for (size_t k = 0; k < dim; ++k) {
    for (size_t j = n; j < packed.stride(); ++j) {
      EXPECT_EQ(packed.At(k, j), 0.0);
    }
  }
}

TEST(PackedCorpusTest, BagOffsetsAndMixedDimFallback) {
  MilDataset ds;
  for (int b = 0; b < 3; ++b) {
    MilBag bag;
    bag.id = b;
    for (int i = 0; i <= b; ++i) {
      MilInstance inst;
      inst.bag_id = b;
      inst.instance_id = i;
      inst.features = {0.1 * b, 0.2 * i, 0.3};
      inst.raw_features = inst.features;
      bag.instances.push_back(std::move(inst));
    }
    ds.AddBag(std::move(bag));
  }
  const auto packed = ds.EnsurePacked();
  ASSERT_TRUE(packed->valid);
  EXPECT_EQ(packed->features.n(), 6u);
  EXPECT_EQ(packed->bag_begin, (std::vector<size_t>{0, 1, 3, 6}));
  // The cache is shared until the corpus changes.
  EXPECT_EQ(ds.EnsurePacked().get(), packed.get());

  MilBag odd;
  odd.id = 3;
  MilInstance inst;
  inst.features = {1.0, 2.0};  // different dimension
  odd.instances.push_back(std::move(inst));
  ds.AddBag(std::move(odd));
  const auto repacked = ds.EnsurePacked();
  EXPECT_NE(repacked.get(), packed.get());
  EXPECT_FALSE(repacked->valid);
}

/// Synthetic labeled corpus with planted "incident" bags (mirrors the
/// retrieval tests).
MilDataset MakeCorpus(int n_bags, const std::set<int>& hot_bags,
                      uint64_t seed) {
  Rng rng(seed);
  MilDataset ds;
  for (int b = 0; b < n_bags; ++b) {
    MilBag bag;
    bag.id = b;
    const int n_inst = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < n_inst; ++i) {
      MilInstance inst;
      inst.bag_id = b;
      inst.instance_id = i;
      inst.features.assign(9, 0.0);
      for (auto& v : inst.features) v = std::fabs(rng.Gaussian(0.05, 0.03));
      if (hot_bags.count(b) && i == 0) {
        inst.features[3] = 0.8 + rng.Uniform(0, 0.2);
        inst.features[4] = 0.7 + rng.Uniform(0, 0.2);
        inst.features[5] = 0.6 + rng.Uniform(0, 0.2);
      }
      inst.raw_features = inst.features;
      bag.instances.push_back(std::move(inst));
    }
    ds.AddBag(std::move(bag));
  }
  return ds;
}

TEST(RankTopKTest, MatchesTruncatedFullRanking) {
  MilDataset ds = MakeCorpus(60, {3, 17, 29, 41}, 9001);
  MilRfEngine engine(&ds, MilRfOptions{});
  ASSERT_TRUE(ds.SetLabel(3, BagLabel::kRelevant).ok());
  ASSERT_TRUE(ds.SetLabel(17, BagLabel::kRelevant).ok());
  ASSERT_TRUE(ds.SetLabel(5, BagLabel::kIrrelevant).ok());
  ASSERT_TRUE(engine.Learn().ok());

  const std::vector<ScoredBag> full = engine.Rank();
  ASSERT_EQ(full.size(), 60u);
  for (size_t k : {size_t{1}, size_t{5}, size_t{20}, size_t{59}, size_t{60},
                   size_t{100}}) {
    const std::vector<ScoredBag> topk = engine.RankTopK(k);
    ASSERT_EQ(topk.size(), std::min(k, full.size())) << "k=" << k;
    for (size_t i = 0; i < topk.size(); ++i) {
      EXPECT_EQ(topk[i].bag_id, full[i].bag_id) << "k=" << k << " i=" << i;
      // Same bits, not just close: pruned bags must never perturb the
      // surviving scores.
      EXPECT_EQ(topk[i].score, full[i].score) << "k=" << k << " i=" << i;
    }
  }
}

TEST(RankTopKTest, RankingsAreBitIdenticalAcrossTiers) {
  if (!Avx2Available()) GTEST_SKIP() << "single-tier host";
  TierGuard guard;

  // The full pipeline (train + rank) under each tier, from scratch.
  auto run = [](int tier) {
    SetSimdTier(tier);
    MilDataset ds = MakeCorpus(50, {2, 11, 23}, 424242);
    MilRfEngine engine(&ds, MilRfOptions{});
    EXPECT_TRUE(ds.SetLabel(2, BagLabel::kRelevant).ok());
    EXPECT_TRUE(ds.SetLabel(23, BagLabel::kRelevant).ok());
    EXPECT_TRUE(engine.Learn().ok());
    return engine.Rank();
  };
  const auto scalar = run(static_cast<int>(SimdTier::kScalar));
  const auto avx2 = run(static_cast<int>(SimdTier::kAvx2));
  ASSERT_EQ(scalar.size(), avx2.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(scalar[i].bag_id, avx2[i].bag_id) << i;
    EXPECT_EQ(scalar[i].score, avx2[i].score) << i;
  }
}

TEST(PackedCorpusIoTest, SnapshotRoundTripsAndIsAdoptedZeroCopy) {
  const std::string dir =
      (fs::temp_directory_path() / "mivid_packed_corpus_io").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/cam-1.mivpack";

  CameraCorpus corpus;
  corpus.camera_id = "cam-1";
  corpus.dataset = MakeCorpus(12, {4, 7}, 31337);
  for (int b = 0; b < 12; ++b) {
    corpus.bag_refs[b] = CorpusBagRef{1, b, 10 * b, 10 * b + 15};
    corpus.truth[b] =
        (b == 4 || b == 7) ? BagLabel::kRelevant : BagLabel::kIrrelevant;
  }
  QueryOptions query;
  ASSERT_TRUE(WritePackedCorpusFile(corpus, path, query).ok());

  auto restored = ReadPackedCorpusFile(path, query);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const CameraCorpus& got = *restored.value();
  EXPECT_EQ(got.camera_id, "cam-1");
  ASSERT_EQ(got.dataset.size(), corpus.dataset.size());
  for (size_t b = 0; b < corpus.dataset.size(); ++b) {
    const MilBag& want = corpus.dataset.bag(b);
    const MilBag& have = got.dataset.bag(b);
    EXPECT_EQ(have.id, want.id);
    ASSERT_EQ(have.instances.size(), want.instances.size());
    for (size_t i = 0; i < want.instances.size(); ++i) {
      EXPECT_EQ(have.instances[i].instance_id, want.instances[i].instance_id);
      EXPECT_EQ(have.instances[i].features, want.instances[i].features);
      EXPECT_EQ(have.instances[i].raw_features,
                want.instances[i].raw_features);
    }
  }
  EXPECT_EQ(got.bag_refs.size(), corpus.bag_refs.size());
  EXPECT_EQ(got.bag_refs.at(3).begin_frame, 30);
  EXPECT_EQ(got.truth.at(4), BagLabel::kRelevant);
  EXPECT_EQ(got.truth.at(5), BagLabel::kIrrelevant);

  // The restored dataset already carries the mapped packing, and it is
  // bit-identical to packing the restored bags from scratch.
  const auto adopted = got.dataset.EnsurePacked();
  ASSERT_TRUE(adopted->valid);
  const auto rebuilt = BuildPackedCorpus(got.dataset.bags());
  ASSERT_TRUE(rebuilt->valid);
  ASSERT_EQ(adopted->features.n(), rebuilt->features.n());
  EXPECT_EQ(adopted->bag_begin, rebuilt->bag_begin);
  for (size_t k = 0; k < adopted->features.dim(); ++k) {
    for (size_t j = 0; j < adopted->features.n(); ++j) {
      EXPECT_EQ(adopted->features.At(k, j), rebuilt->features.At(k, j));
    }
  }

  // Wrong query fingerprint: rejected, never half-loaded.
  QueryOptions other = query;
  other.features.include_velocity = true;
  EXPECT_FALSE(ReadPackedCorpusFile(path, other).ok());

  // Flipped byte in the feature block: CRC catches it.
  {
    std::string bytes;
    {
      auto r = ReadFileToString(path);
      ASSERT_TRUE(r.ok());
      bytes = std::move(r).value();
    }
    bytes[4096 + 8] ^= 0x40;
    ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
    EXPECT_FALSE(ReadPackedCorpusFile(path, query).ok());
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mivid

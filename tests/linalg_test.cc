// Tests for linalg/: matrix ops, solvers, eigen decomposition, PCA, stats.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "linalg/solve.h"
#include "linalg/stats.h"

namespace mivid {
namespace {

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 1.5);
  m.At(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, FromRowsAndTranspose) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix i = Matrix::Identity(2);
  EXPECT_DOUBLE_EQ(m.Multiply(i).MaxAbsDiff(m), 0.0);
  EXPECT_DOUBLE_EQ(i.Multiply(m).MaxAbsDiff(m), 0.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Vec v = m.Multiply(Vec{1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, RowColExtraction) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.Row(1), (Vec{3, 4}));
  EXPECT_EQ(m.Col(0), (Vec{1, 3}));
  m.SetRow(0, {9, 8});
  EXPECT_DOUBLE_EQ(m.At(0, 1), 8.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(VecOpsTest, DotNormDistance) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_EQ(Add({1, 2}, {3, 4}), (Vec{4, 6}));
  EXPECT_EQ(Sub({3, 4}, {1, 2}), (Vec{2, 2}));
  EXPECT_EQ(ScaleVec({1, 2}, 2.0), (Vec{2, 4}));
}

TEST(CholeskyTest, FactorAndSolveSpd) {
  // SPD matrix A = L L^T with known solution.
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  Result<Vec> x = CholeskySolve(a, {8, 7});
  ASSERT_TRUE(x.ok());
  // Verify A x = b.
  const Vec b = a.Multiply(x.value());
  EXPECT_NEAR(b[0], 8.0, 1e-10);
  EXPECT_NEAR(b[1], 7.0, 1e-10);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});  // indefinite
  EXPECT_FALSE(CholeskyFactor(a).ok());
  Matrix rect(2, 3);
  EXPECT_FALSE(CholeskyFactor(rect).ok());
}

TEST(GaussianSolveTest, SolvesGeneralSystem) {
  Matrix a = Matrix::FromRows({{0, 2, 1}, {1, -2, -3}, {-1, 1, 2}});
  Result<Vec> x = GaussianSolve(a, {-8, 0, 3});
  ASSERT_TRUE(x.ok());
  const Vec b = a.Multiply(x.value());
  EXPECT_NEAR(b[0], -8.0, 1e-10);
  EXPECT_NEAR(b[1], 0.0, 1e-10);
  EXPECT_NEAR(b[2], 3.0, 1e-10);
}

TEST(GaussianSolveTest, RejectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(GaussianSolve(a, {1, 2}).ok());
}

TEST(LeastSquaresTest, ExactSystemRecovered) {
  // Overdetermined but consistent.
  Matrix a = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  Vec b{2, 3, 5};
  Result<Vec> x = LeastSquaresQR(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-10);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-10);
}

TEST(LeastSquaresTest, QrMatchesNormalEquations) {
  Rng rng(5);
  Matrix a(20, 4);
  Vec b(20);
  for (size_t r = 0; r < 20; ++r) {
    for (size_t c = 0; c < 4; ++c) a.At(r, c) = rng.Gaussian();
    b[r] = rng.Gaussian();
  }
  Result<Vec> x1 = LeastSquaresQR(a, b);
  Result<Vec> x2 = LeastSquaresNormal(a, b);
  ASSERT_TRUE(x1.ok());
  ASSERT_TRUE(x2.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(x1.value()[i], x2.value()[i], 1e-8);
  }
}

TEST(LeastSquaresTest, ResidualIsOrthogonalToColumns) {
  Rng rng(6);
  Matrix a(15, 3);
  Vec b(15);
  for (size_t r = 0; r < 15; ++r) {
    for (size_t c = 0; c < 3; ++c) a.At(r, c) = rng.Gaussian();
    b[r] = rng.Gaussian();
  }
  Result<Vec> x = LeastSquaresQR(a, b);
  ASSERT_TRUE(x.ok());
  const Vec ax = a.Multiply(x.value());
  const Vec r = Sub(b, ax);
  // A^T r == 0 characterizes the least-squares optimum.
  const Vec atr = a.Transpose().Multiply(r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  Matrix a(2, 3);
  EXPECT_FALSE(LeastSquaresQR(a, {1, 2}).ok());
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  Result<EigenDecomposition> eig = JacobiEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(JacobiEigenTest, KnownSymmetricMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  Result<EigenDecomposition> eig = JacobiEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double v0 = eig->vectors.At(0, 0), v1 = eig->vectors.At(1, 0);
  EXPECT_NEAR(std::fabs(v0), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(JacobiEigenTest, ReconstructsMatrix) {
  Rng rng(7);
  const size_t n = 6;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a.At(i, j) = a.At(j, i) = rng.Gaussian();
    }
  }
  Result<EigenDecomposition> eig = JacobiEigen(a);
  ASSERT_TRUE(eig.ok());
  // V diag(w) V^T == A.
  Matrix d(n, n);
  for (size_t i = 0; i < n; ++i) d.At(i, i) = eig->values[i];
  const Matrix recon =
      eig->vectors.Multiply(d).Multiply(eig->vectors.Transpose());
  EXPECT_LT(recon.MaxAbsDiff(a), 1e-8);
}

TEST(JacobiEigenTest, VectorsAreOrthonormal) {
  Rng rng(8);
  const size_t n = 5;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) a.At(i, j) = a.At(j, i) = rng.Gaussian();
  }
  Result<EigenDecomposition> eig = JacobiEigen(a);
  ASSERT_TRUE(eig.ok());
  const Matrix vtv =
      eig->vectors.Transpose().Multiply(eig->vectors);
  EXPECT_LT(vtv.MaxAbsDiff(Matrix::Identity(n)), 1e-9);
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points along (1, 1) with small orthogonal noise.
  Rng rng(9);
  std::vector<Vec> rows;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.Gaussian() * 10.0;
    const double noise = rng.Gaussian() * 0.1;
    rows.push_back({t + noise, t - noise});
  }
  Result<PcaModel> pca = PcaModel::Fit(rows, 1);
  ASSERT_TRUE(pca.ok());
  const Vec c = pca->Component(0);
  EXPECT_NEAR(std::fabs(c[0]), std::sqrt(0.5), 0.01);
  EXPECT_NEAR(c[0] * c[1], 0.5, 0.02);  // same sign components
  EXPECT_GT(pca->explained_variance_ratio()[0], 0.99);
}

TEST(PcaTest, ProjectReconstructRoundtripFullRank) {
  Rng rng(10);
  std::vector<Vec> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.Gaussian(), rng.Gaussian(), rng.Gaussian()});
  }
  Result<PcaModel> pca = PcaModel::Fit(rows, 3);
  ASSERT_TRUE(pca.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(pca->ReconstructionError(rows[static_cast<size_t>(i)]), 0.0,
                1e-16);
  }
}

TEST(PcaTest, ReconstructionErrorGrowsOffSubspace) {
  std::vector<Vec> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({static_cast<double>(i), 0.0});
  }
  Result<PcaModel> pca = PcaModel::Fit(rows, 1);
  ASSERT_TRUE(pca.ok());
  EXPECT_NEAR(pca->ReconstructionError({5.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(pca->ReconstructionError({5.0, 2.0}), 4.0, 1e-9);
}

TEST(PcaTest, RejectsBadArguments) {
  EXPECT_FALSE(PcaModel::Fit({{1.0, 2.0}}, 1).ok());        // too few rows
  EXPECT_FALSE(PcaModel::Fit({{1.0}, {2.0}}, 2).ok());      // too many comps
  EXPECT_FALSE(PcaModel::Fit({{1.0}, {2.0, 3.0}}, 1).ok()); // ragged
}

TEST(StatsTest, MeanVarianceStdDev) {
  const Vec v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(Variance(v), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
  EXPECT_NEAR(SampleStdDev(v), 2.138, 0.001);
}

TEST(StatsTest, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Min({}), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, Percentiles) {
  Vec v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 100.0);
  EXPECT_NEAR(Percentile(v, 50), 50.5, 1e-9);
}

TEST(StatsTest, ColumnAggregates) {
  const std::vector<Vec> rows{{1, 10}, {3, 30}};
  EXPECT_EQ(ColumnMeans(rows), (Vec{2, 20}));
  const Vec s = ColumnStdDevs(rows);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
}

TEST(StatsTest, PearsonCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  Rng rng(11);
  RunningStats rs;
  Vec v;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    v.push_back(x);
    rs.Add(x);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-9);
  EXPECT_NEAR(rs.variance(), Variance(v), 1e-7);
  EXPECT_DOUBLE_EQ(rs.min(), Min(v));
  EXPECT_DOUBLE_EQ(rs.max(), Max(v));
}

}  // namespace
}  // namespace mivid

// Tests for the temporal-median background variant and one-class SMO
// optimality (brute-force cross-check), plus simulator flow invariants.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "segment/segmenter.h"
#include "segment/background.h"
#include "svm/one_class_svm.h"
#include "trafficsim/renderer.h"
#include "trafficsim/scenarios.h"
#include "video/draw.h"

namespace mivid {
namespace {

TEST(TemporalMedianTest, LearnsStaticSceneAndDetectsObject) {
  BackgroundOptions options;
  options.method = BackgroundMethod::kTemporalMedian;
  options.warmup_frames = 6;
  BackgroundModel model(options);
  for (int i = 0; i < 10; ++i) model.Update(Frame(48, 32, 70));
  ASSERT_TRUE(model.Ready());
  EXPECT_EQ(model.BackgroundFrame().At(5, 5), 70);

  Frame with_car(48, 32, 70);
  FillRect(&with_car, BBox(10, 10, 20, 16), 210);
  const Mask mask = model.Subtract(with_car);
  EXPECT_EQ(mask[12 * 48 + 12], 1);
  EXPECT_EQ(mask[2 * 48 + 2], 0);
}

TEST(TemporalMedianTest, RobustToTransientOccupancy) {
  // A vehicle parked during part of the sampling window must not corrupt
  // the median as long as it covers under half the samples.
  BackgroundOptions options;
  options.method = BackgroundMethod::kTemporalMedian;
  options.warmup_frames = 4;
  options.median_samples = 9;
  options.median_sample_stride = 1;  // sample every frame for the test
  BackgroundModel model(options);
  Frame empty(48, 32, 70);
  Frame occupied = empty;
  FillRect(&occupied, BBox(10, 10, 20, 16), 210);
  // 6 empty, 3 occupied -> median stays background.
  for (int i = 0; i < 6; ++i) model.Update(empty);
  for (int i = 0; i < 3; ++i) model.Update(occupied);
  EXPECT_EQ(model.BackgroundFrame().At(12, 12), 70);
  const Mask mask = model.Subtract(occupied);
  EXPECT_EQ(mask[12 * 48 + 12], 1) << "vehicle leaked into the background";
}

TEST(TemporalMedianTest, HandlesNoise) {
  Rng rng(5);
  BackgroundOptions options;
  options.method = BackgroundMethod::kTemporalMedian;
  options.warmup_frames = 6;
  options.median_sample_stride = 2;
  BackgroundModel model(options);
  for (int i = 0; i < 30; ++i) {
    Frame f(32, 32, 100);
    for (auto& p : f.pixels()) {
      p = static_cast<uint8_t>(std::clamp(
          100.0 + rng.Gaussian(0, 4.0), 0.0, 255.0));
    }
    model.Update(f);
  }
  const Frame bg = model.BackgroundFrame();
  EXPECT_NEAR(bg.At(16, 16), 100, 6);
  // A clean frame subtracts to (almost) nothing.
  const Mask mask = model.Subtract(Frame(32, 32, 100));
  size_t fg = 0;
  for (uint8_t m : mask) fg += m;
  EXPECT_LT(fg, mask.size() / 100);
}

/// One-class dual objective 1/2 a^T Q a for the brute-force check.
double OneClassObjective(const std::vector<Vec>& x, const Vec& a,
                         const KernelParams& kernel) {
  double obj = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < a.size(); ++j) {
      obj += 0.5 * a[i] * a[j] * KernelEval(kernel, x[i], x[j]);
    }
  }
  return obj;
}

TEST(OneClassSmoOptimalityTest, MatchesBruteForceOnTinyProblem) {
  // 3 points, nu such that C = 1/(nu*3); grid-search (a0, a1) with
  // a2 = 1 - a0 - a1 over the feasible simplex.
  const std::vector<Vec> x{{0.0, 0.0}, {1.0, 0.2}, {0.4, 0.9}};
  OneClassSvmOptions options;
  options.nu = 0.6;
  options.kernel.sigma = 0.8;
  options.tolerance = 1e-7;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(x);
  ASSERT_TRUE(model.ok());

  const double c = 1.0 / (options.nu * 3);
  double best = 1e300;
  const int kGrid = 300;
  for (int i0 = 0; i0 <= kGrid; ++i0) {
    for (int i1 = 0; i1 <= kGrid; ++i1) {
      Vec a{c * i0 / kGrid, c * i1 / kGrid, 0.0};
      a[2] = 1.0 - a[0] - a[1];
      if (a[2] < 0 || a[2] > c) continue;
      best = std::min(best, OneClassObjective(x, a, options.kernel));
    }
  }

  // Reconstruct the SMO objective from the model's coefficients.
  Vec alpha;
  std::vector<Vec> svs = model->support_vectors();
  double smo_obj = 0;
  for (size_t i = 0; i < svs.size(); ++i) {
    for (size_t j = 0; j < svs.size(); ++j) {
      smo_obj += 0.5 * model->coefficients()[i] * model->coefficients()[j] *
                 KernelEval(options.kernel, svs[i], svs[j]);
    }
  }
  EXPECT_LE(smo_obj, best + 1e-3) << "SMO above the brute-force minimum";
}

TEST(IlluminationDriftTest, BackgroundAdaptsAndTrackingSurvives) {
  // Slow global illumination change must be absorbed by the background
  // model: the vehicle stays segmented throughout a full drift cycle.
  ScenarioSpec spec;
  spec.name = "drift";
  spec.layout = MakeTunnelLayout();
  spec.total_frames = 400;
  spec.spawns = {{20, 0, VehicleType::kCar, 2.0, 220},
                 {180, 1, VehicleType::kSuv, 2.0, 200}};

  TrafficWorld world(spec);
  RenderOptions render;
  render.noise_stddev = 3.0;
  render.illumination_amplitude = 10.0;
  render.illumination_period = 200;
  Renderer renderer(spec.layout, render);
  SegmenterOptions seg;
  BackgroundOptions bg;
  bg.learning_rate = 0.06;  // fast enough to follow the drift
  seg.background = bg;
  VehicleSegmenter segmenter(seg);

  int frames_with_vehicle = 0, detections = 0;
  while (!world.Done()) {
    world.Step();
    const Frame frame = renderer.Render(world.vehicles());
    const auto blobs = segmenter.Process(frame);
    if (world.frame() > 40 && world.ActiveVehicleCount() > 0) {
      // Only count frames where a vehicle is well inside the view.
      bool visible = false;
      for (const auto& v : world.vehicles()) {
        if (v.active() && v.position.x > 30 &&
            v.position.x < spec.layout.width - 30) {
          visible = true;
        }
      }
      if (visible) {
        ++frames_with_vehicle;
        detections += blobs.empty() ? 0 : 1;
      }
    }
  }
  ASSERT_GT(frames_with_vehicle, 100);
  EXPECT_GE(detections, frames_with_vehicle * 9 / 10)
      << "illumination drift broke segmentation";
}

TEST(FlowInvariantTest, NoCollisionsInIncidentFreeTraffic) {
  // Normal car-following must never produce overlapping same-lane bodies.
  TunnelScenarioOptions options;
  options.total_frames = 1200;
  options.min_spawn_gap = 40;  // dense enough to force interactions
  options.max_spawn_gap = 70;
  options.num_wall_crashes = 0;
  options.num_sudden_stops = 0;
  options.num_speeding = 0;
  options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(options);
  TrafficWorld world(scenario);
  int violations = 0;
  while (!world.Done()) {
    world.Step();
    const auto& vehicles = world.vehicles();
    for (size_t i = 0; i < vehicles.size(); ++i) {
      if (!vehicles[i].active()) continue;
      for (size_t j = i + 1; j < vehicles.size(); ++j) {
        if (!vehicles[j].active()) continue;
        if (vehicles[i].lane_id != vehicles[j].lane_id) continue;
        const double gap =
            std::fabs(vehicles[i].s - vehicles[j].s) -
            (DimsFor(vehicles[i].type).length +
             DimsFor(vehicles[j].type).length) /
                2.0;
        if (gap < -0.5) ++violations;
      }
    }
  }
  EXPECT_EQ(violations, 0) << "car-following produced body overlap";
}

TEST(FlowInvariantTest, SignalsHoldTrafficOutOfTheBox) {
  // At the intersection, lane-following vehicles on red must not enter
  // the conflict box (incidents disabled).
  IntersectionScenarioOptions options;
  options.total_frames = 500;
  options.num_cross_collisions = 0;
  options.num_rear_ends = 0;
  options.num_uturns = 0;
  options.num_speeding = 0;
  const ScenarioSpec scenario = MakeIntersectionScenario(options);
  TrafficWorld world(scenario);
  const BBox box(132, 92, 188, 148);
  int red_entries = 0;
  while (!world.Done()) {
    world.Step();
    const int frame = world.frame() - 1;
    for (const auto& v : world.vehicles()) {
      if (!v.active() || v.mode != MotionMode::kLaneFollow) continue;
      const Lane& lane = scenario.layout.lane(v.lane_id);
      if (lane.signal_group() < 0) continue;
      if (scenario.layout.IsGreen(lane.signal_group(), frame)) continue;
      // On red: a vehicle that had not yet reached the stop line must not
      // be inside the box. (Vehicles already past the line may clear it.)
      if (box.Contains(v.position) && v.s < lane.stop_line_s()) {
        ++red_entries;
      }
    }
  }
  EXPECT_EQ(red_entries, 0);
}

}  // namespace
}  // namespace mivid

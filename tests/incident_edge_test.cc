// Edge-case tests for incident executors (deferral, aborts, empty scenes)
// and for the noisy feedback oracle.

#include <gtest/gtest.h>

#include "eval/oracle.h"
#include "trafficsim/scenarios.h"
#include "trafficsim/world.h"

namespace mivid {
namespace {

ScenarioSpec EmptyTunnel(int frames) {
  ScenarioSpec spec;
  spec.name = "empty";
  spec.layout = MakeTunnelLayout();
  spec.total_frames = frames;
  return spec;
}

TEST(IncidentEdgeTest, IncidentWithNoVehiclesNeverStarts) {
  ScenarioSpec spec = EmptyTunnel(300);
  IncidentSpec inc;
  inc.type = IncidentType::kSuddenStop;
  inc.trigger_frame = 10;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  const GroundTruth gt = world.Run();
  EXPECT_TRUE(gt.incidents.empty())
      << "executor must defer forever without a pickable vehicle";
}

TEST(IncidentEdgeTest, TriggerDefersUntilVehicleAvailable) {
  ScenarioSpec spec = EmptyTunnel(600);
  // The vehicle only becomes pickable well after the trigger frame.
  spec.spawns = {{200, 0, VehicleType::kCar, 3.0, 210}};
  IncidentSpec inc;
  inc.type = IncidentType::kSuddenStop;
  inc.trigger_frame = 10;
  inc.hold_frames = 10;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  const GroundTruth gt = world.Run();
  ASSERT_EQ(gt.incidents.size(), 1u);
  // Spawn at 200 plus time to clear the 30 px pick margin.
  EXPECT_GT(gt.incidents[0].begin_frame, 210);
}

TEST(IncidentEdgeTest, RearEndNeedsTwoVehiclesInOneLane) {
  ScenarioSpec spec = EmptyTunnel(700);
  // Two vehicles in different lanes: no valid (leader, follower) pair.
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200},
                 {30, 1, VehicleType::kSuv, 3.0, 210}};
  IncidentSpec inc;
  inc.type = IncidentType::kRearEnd;
  inc.trigger_frame = 60;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  const GroundTruth gt = world.Run();
  EXPECT_TRUE(gt.incidents.empty());
}

TEST(IncidentEdgeTest, RearEndBindsSameLanePair) {
  ScenarioSpec spec = EmptyTunnel(700);
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200},
                 {25, 0, VehicleType::kSuv, 3.2, 210}};
  IncidentSpec inc;
  inc.type = IncidentType::kRearEnd;
  inc.trigger_frame = 80;
  inc.hold_frames = 15;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  const GroundTruth gt = world.Run();
  ASSERT_EQ(gt.incidents.size(), 1u);
  EXPECT_EQ(gt.incidents[0].type, IncidentType::kRearEnd);
  EXPECT_EQ(gt.incidents[0].vehicle_ids.size(), 2u);
}

TEST(IncidentEdgeTest, CrossCollisionImpossibleInTunnel) {
  // The tunnel has no vertical lanes, so the executor can never bind a
  // victim and must stay dormant.
  ScenarioSpec spec = EmptyTunnel(500);
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200},
                 {40, 1, VehicleType::kCar, 3.0, 205}};
  IncidentSpec inc;
  inc.type = IncidentType::kCrossCollision;
  inc.trigger_frame = 60;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  const GroundTruth gt = world.Run();
  EXPECT_TRUE(gt.incidents.empty());
}

TEST(IncidentEdgeTest, WallCrashImpossibleWithoutWalls) {
  ScenarioSpec spec;
  spec.name = "no_walls";
  spec.layout = MakeIntersectionLayout();  // no walls in this layout
  spec.total_frames = 400;
  spec.spawns = {{0, 0, VehicleType::kCar, 2.5, 200}};
  IncidentSpec inc;
  inc.type = IncidentType::kWallCrash;
  inc.trigger_frame = 30;
  spec.incidents = {inc};
  TrafficWorld world(spec);
  const GroundTruth gt = world.Run();
  EXPECT_TRUE(gt.incidents.empty());
}

TEST(IncidentEdgeTest, IncidentRunningAtClipEndIsClosedOut) {
  ScenarioSpec spec = EmptyTunnel(200);
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200}};
  IncidentSpec inc;
  inc.type = IncidentType::kSuddenStop;
  inc.trigger_frame = 60;  // while the vehicle is still mid-scene
  inc.hold_frames = 500;   // cannot finish within the clip
  spec.incidents = {inc};
  TrafficWorld world(spec);
  const GroundTruth gt = world.Run();
  ASSERT_EQ(gt.incidents.size(), 1u);
  EXPECT_EQ(gt.incidents[0].end_frame, spec.total_frames - 1);
}

TEST(IncidentEdgeTest, TwoIncidentsPickDistinctVehicles) {
  ScenarioSpec spec = EmptyTunnel(900);
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 200},
                 {120, 1, VehicleType::kSuv, 3.0, 210}};
  IncidentSpec a;
  a.type = IncidentType::kSuddenStop;
  a.trigger_frame = 60;
  a.hold_frames = 300;  // vehicle 0 is still controlled when b triggers
  IncidentSpec b = a;
  b.trigger_frame = 200;
  b.hold_frames = 10;
  spec.incidents = {a, b};
  TrafficWorld world(spec);
  const GroundTruth gt = world.Run();
  ASSERT_EQ(gt.incidents.size(), 2u);
  ASSERT_EQ(gt.incidents[0].vehicle_ids.size(), 1u);
  ASSERT_EQ(gt.incidents[1].vehicle_ids.size(), 1u);
  EXPECT_NE(gt.incidents[0].vehicle_ids[0], gt.incidents[1].vehicle_ids[0])
      << "second incident must not steal the controlled vehicle";
}

TEST(NoisyOracleTest, ZeroNoiseMatchesCleanOracle) {
  GroundTruth gt;
  IncidentRecord rec;
  rec.type = IncidentType::kWallCrash;
  rec.begin_frame = 50;
  rec.end_frame = 80;
  gt.incidents = {rec};
  FeedbackOracle clean(&gt);
  FeedbackOracle noisy(&gt);
  noisy.SetLabelNoise(0.0);
  VideoSequence vs;
  vs.vs_id = 1;
  vs.begin_frame = 60;
  vs.end_frame = 70;
  EXPECT_EQ(clean.LabelFor(vs), noisy.LabelFor(vs));
}

TEST(NoisyOracleTest, NoiseIsDeterministicPerWindow) {
  GroundTruth gt;
  FeedbackOracle oracle(&gt);
  oracle.SetLabelNoise(0.5, 7);
  VideoSequence vs;
  vs.vs_id = 13;
  const BagLabel first = oracle.LabelFor(vs);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(oracle.LabelFor(vs), first)
        << "re-asking the user must give the same answer";
  }
}

TEST(NoisyOracleTest, ErrorRateIsApproximatelyHonored) {
  GroundTruth gt;  // no incidents: every true label is irrelevant
  FeedbackOracle oracle(&gt);
  oracle.SetLabelNoise(0.25, 11);
  int flipped = 0;
  const int n = 2000;
  for (int id = 0; id < n; ++id) {
    VideoSequence vs;
    vs.vs_id = id;
    flipped += oracle.LabelFor(vs) == BagLabel::kRelevant ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / n, 0.25, 0.03);
}

}  // namespace
}  // namespace mivid

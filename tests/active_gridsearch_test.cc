// Tests for retrieval/active_selection and svm/model_selection.

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "retrieval/active_selection.h"
#include "svm/model_selection.h"

namespace mivid {
namespace {

MilDataset LabeledCorpus(int n, const std::set<int>& labeled_ids) {
  MilDataset ds;
  for (int b = 0; b < n; ++b) {
    MilBag bag;
    bag.id = b;
    MilInstance inst;
    inst.bag_id = b;
    inst.instance_id = 0;
    inst.features = {0.1 * b, 0.0, 0.0};
    inst.raw_features = inst.features;
    bag.instances.push_back(inst);
    ds.AddBag(std::move(bag));
  }
  for (int id : labeled_ids) {
    (void)ds.SetLabel(id, BagLabel::kRelevant);
  }
  return ds;
}

std::vector<ScoredBag> DescendingRanking(int n) {
  std::vector<ScoredBag> ranking;
  for (int b = 0; b < n; ++b) {
    ranking.push_back({b, 1.0 - 0.1 * b});  // bag 0 best, scores fall by 0.1
  }
  return ranking;
}

TEST(ActiveSelectionTest, PureExploitEqualsRanking) {
  const MilDataset ds = LabeledCorpus(10, {});
  ActiveSelectionOptions options;
  options.explore_fraction = 0.0;
  const auto sel =
      SelectForFeedback(DescendingRanking(10), ds, 4, 0.0, options);
  EXPECT_EQ(sel, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ActiveSelectionTest, ExploreSlotsPickBoundaryBags) {
  const MilDataset ds = LabeledCorpus(10, {});
  ActiveSelectionOptions options;
  options.explore_fraction = 0.5;
  // Boundary at 0.55: bags 4 (0.6) and 5 (0.5) are the most uncertain.
  const auto sel =
      SelectForFeedback(DescendingRanking(10), ds, 4, 0.55, options);
  ASSERT_EQ(sel.size(), 4u);
  EXPECT_EQ(sel[0], 0);
  EXPECT_EQ(sel[1], 1);
  const std::set<int> explore(sel.begin() + 2, sel.end());
  EXPECT_TRUE(explore.count(4));
  EXPECT_TRUE(explore.count(5));
}

TEST(ActiveSelectionTest, SkipsLabeledBags) {
  const MilDataset ds = LabeledCorpus(10, {0, 1});
  ActiveSelectionOptions options;
  options.explore_fraction = 0.0;
  const auto sel =
      SelectForFeedback(DescendingRanking(10), ds, 3, 0.0, options);
  EXPECT_EQ(sel, (std::vector<int>{2, 3, 4}));
}

TEST(ActiveSelectionTest, BackfillsWhenUnlabeledScarce) {
  const MilDataset ds = LabeledCorpus(4, {0, 1, 2});
  ActiveSelectionOptions options;
  const auto sel =
      SelectForFeedback(DescendingRanking(4), ds, 4, 0.0, options);
  EXPECT_EQ(sel.size(), 4u);  // labeled bags backfill rather than shorting
  const std::set<int> unique(sel.begin(), sel.end());
  EXPECT_EQ(unique.size(), 4u);
}

std::vector<std::vector<Vec>> PositiveGroups(int groups, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Vec>> out;
  for (int g = 0; g < groups; ++g) {
    std::vector<Vec> group;
    const int n = 2 + static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < n; ++i) {
      group.push_back({0.7 + rng.Gaussian(0, 0.05),
                       0.6 + rng.Gaussian(0, 0.05)});
    }
    out.push_back(std::move(group));
  }
  return out;
}

TEST(GridSearchTest, PrefersConfigurationsThatSeparate) {
  Rng rng(17);
  std::vector<Vec> background;
  for (int i = 0; i < 60; ++i) {
    background.push_back({std::fabs(rng.Gaussian(0.05, 0.05)),
                          std::fabs(rng.Gaussian(0.05, 0.05))});
  }
  Result<std::vector<OneClassCandidate>> grid =
      GridSearchOneClass(PositiveGroups(6, 3), background);
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  ASSERT_FALSE(grid->empty());
  const OneClassCandidate& best = grid->front();
  // A good configuration accepts most held-out positives and almost no
  // background.
  EXPECT_GT(best.holdout_acceptance, 0.6);
  EXPECT_LT(best.background_acceptance, 0.2);
  EXPECT_GT(best.score, 0.5);
  // Sorted descending by score.
  for (size_t i = 1; i < grid->size(); ++i) {
    EXPECT_GE((*grid)[i - 1].score, (*grid)[i].score);
  }
}

TEST(GridSearchTest, RejectsDegenerateInput) {
  EXPECT_FALSE(GridSearchOneClass({}, {}).ok());
  EXPECT_FALSE(GridSearchOneClass({{{1.0}}}, {}).ok());     // one group
  EXPECT_FALSE(GridSearchOneClass({{{1.0}}, {}}, {}).ok()); // empty group
}

TEST(GridSearchTest, WorksWithoutBackgroundSample) {
  Result<std::vector<OneClassCandidate>> grid =
      GridSearchOneClass(PositiveGroups(4, 5), {});
  ASSERT_TRUE(grid.ok());
  for (const auto& c : *grid) {
    EXPECT_DOUBLE_EQ(c.background_acceptance, 0.0);
  }
}

}  // namespace
}  // namespace mivid

// Tests for geometry/: points, angles, bounding boxes.

#include <cmath>

#include <gtest/gtest.h>

#include "geometry/geometry.h"

namespace mivid {
namespace {

TEST(Point2Test, Arithmetic) {
  const Point2 a{1, 2}, b{3, 5};
  EXPECT_EQ(a + b, Point2(4, 7));
  EXPECT_EQ(b - a, Point2(2, 3));
  EXPECT_EQ(a * 2.0, Point2(2, 4));
  EXPECT_DOUBLE_EQ(a.Dot(b), 13.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -1.0);
}

TEST(Point2Test, NormAndNormalize) {
  EXPECT_DOUBLE_EQ(Point2(3, 4).Norm(), 5.0);
  EXPECT_DOUBLE_EQ(Point2(3, 4).SquaredNorm(), 25.0);
  const Point2 u = Point2(0, 7).Normalized();
  EXPECT_DOUBLE_EQ(u.x, 0.0);
  EXPECT_DOUBLE_EQ(u.y, 1.0);
  EXPECT_EQ(Point2(0, 0).Normalized(), Point2(0, 0));
}

TEST(DistanceTest, Euclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(AngleBetweenTest, CardinalCases) {
  EXPECT_NEAR(AngleBetween({1, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(AngleBetween({1, 0}, {0, 1}), M_PI / 2, 1e-12);
  EXPECT_NEAR(AngleBetween({1, 0}, {-1, 0}), M_PI, 1e-12);
  // Magnitude-invariant.
  EXPECT_NEAR(AngleBetween({10, 0}, {0, 0.1}), M_PI / 2, 1e-12);
}

TEST(AngleBetweenTest, ZeroVectorYieldsZero) {
  EXPECT_DOUBLE_EQ(AngleBetween({0, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(AngleBetween({1, 0}, {0, 0}), 0.0);
}

TEST(AngleBetweenTest, SymmetricAndBounded) {
  const Vec2 a{1.3, -0.2}, b{-0.4, 2.2};
  EXPECT_DOUBLE_EQ(AngleBetween(a, b), AngleBetween(b, a));
  EXPECT_GE(AngleBetween(a, b), 0.0);
  EXPECT_LE(AngleBetween(a, b), M_PI);
}

TEST(WrapAngleTest, WrapsIntoHalfOpenInterval) {
  EXPECT_NEAR(WrapAngle(3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(WrapAngle(-3 * M_PI), M_PI, 1e-12);
  EXPECT_NEAR(WrapAngle(0.5), 0.5, 1e-12);
}

TEST(BBoxTest, Dimensions) {
  const BBox b(1, 2, 5, 8);
  EXPECT_DOUBLE_EQ(b.Width(), 4.0);
  EXPECT_DOUBLE_EQ(b.Height(), 6.0);
  EXPECT_DOUBLE_EQ(b.Area(), 24.0);
  EXPECT_EQ(b.Center(), Point2(3, 5));
}

TEST(BBoxTest, ContainsAndIntersects) {
  const BBox b(0, 0, 10, 10);
  EXPECT_TRUE(b.Contains({5, 5}));
  EXPECT_TRUE(b.Contains({0, 0}));  // boundary inclusive
  EXPECT_FALSE(b.Contains({11, 5}));
  EXPECT_TRUE(b.Intersects(BBox(5, 5, 15, 15)));
  EXPECT_TRUE(b.Intersects(BBox(10, 10, 20, 20)));  // touching corners
  EXPECT_FALSE(b.Intersects(BBox(11, 11, 20, 20)));
}

TEST(BBoxTest, IoU) {
  const BBox a(0, 0, 10, 10), b(5, 0, 15, 10);
  EXPECT_NEAR(a.IoU(b), 50.0 / 150.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.IoU(a), 1.0);
  EXPECT_DOUBLE_EQ(a.IoU(BBox(20, 20, 30, 30)), 0.0);
}

TEST(BBoxTest, UnionAndInflate) {
  const BBox u = BBox(0, 0, 1, 1).Union(BBox(5, 5, 6, 6));
  EXPECT_DOUBLE_EQ(u.min_x, 0);
  EXPECT_DOUBLE_EQ(u.max_y, 6);
  const BBox inf = BBox(2, 2, 4, 4).Inflated(1);
  EXPECT_DOUBLE_EQ(inf.min_x, 1);
  EXPECT_DOUBLE_EQ(inf.max_x, 5);
}

TEST(BoxDistanceTest, OverlapTouchingAndSeparated) {
  const BBox a(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(BoxDistance(a, BBox(5, 5, 8, 8)), 0.0);   // contained
  EXPECT_DOUBLE_EQ(BoxDistance(a, BBox(10, 0, 20, 10)), 0.0); // touching
  EXPECT_DOUBLE_EQ(BoxDistance(a, BBox(13, 0, 20, 10)), 3.0); // axis gap
  EXPECT_DOUBLE_EQ(BoxDistance(a, BBox(13, 14, 20, 20)), 5.0); // diagonal
}

}  // namespace
}  // namespace mivid

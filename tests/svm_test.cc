// Tests for svm/: kernels, the one-class SMO solver (Eq. 7-8), model I/O.
// Includes parameterized property sweeps over the nu parameter.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "svm/kernel.h"
#include "svm/model_io.h"
#include "svm/one_class_svm.h"

namespace mivid {
namespace {

TEST(KernelTest, RbfProperties) {
  KernelParams params;
  params.type = KernelType::kRbf;
  params.sigma = 1.0;
  const Vec a{1, 2}, b{1, 2}, c{3, 4};
  EXPECT_DOUBLE_EQ(KernelEval(params, a, b), 1.0);           // K(x,x) = 1
  EXPECT_LT(KernelEval(params, a, c), 1.0);
  EXPECT_GT(KernelEval(params, a, c), 0.0);
  // Symmetry.
  EXPECT_DOUBLE_EQ(KernelEval(params, a, c), KernelEval(params, c, a));
  // exp(-|d|^2 / (2 sigma^2)) with |d|^2 = 8.
  EXPECT_NEAR(KernelEval(params, a, c), std::exp(-4.0), 1e-12);
}

TEST(KernelTest, LinearAndPoly) {
  KernelParams lin;
  lin.type = KernelType::kLinear;
  EXPECT_DOUBLE_EQ(KernelEval(lin, {1, 2}, {3, 4}), 11.0);
  KernelParams poly;
  poly.type = KernelType::kPoly;
  poly.poly_c = 1.0;
  poly.poly_degree = 2;
  EXPECT_DOUBLE_EQ(KernelEval(poly, {1, 0}, {2, 0}), 9.0);  // (2+1)^2
}

TEST(KernelTest, GramMatrixIsSymmetricWithUnitDiagonal) {
  Rng rng(5);
  std::vector<Vec> points;
  for (int i = 0; i < 10; ++i) {
    points.push_back({rng.Gaussian(), rng.Gaussian()});
  }
  KernelParams params;
  const GramMatrix gram(params, points);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(gram.At(i, i), 1.0);
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(gram.At(i, j), gram.At(j, i));
    }
  }
}

std::vector<Vec> GaussianCloud(size_t n, double cx, double cy, double spread,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> points;
  for (size_t i = 0; i < n; ++i) {
    points.push_back({cx + rng.Gaussian() * spread,
                      cy + rng.Gaussian() * spread});
  }
  return points;
}

TEST(OneClassSvmTest, AcceptsClusterRejectsFarPoint) {
  const auto train = GaussianCloud(60, 0, 0, 0.4, 7);
  OneClassSvmOptions options;
  options.nu = 0.1;
  options.kernel.sigma = 1.0;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Contains({0.0, 0.1}));
  EXPECT_FALSE(model->Contains({5.0, 5.0}));
  EXPECT_GT(model->DecisionValue({0.0, 0.0}),
            model->DecisionValue({2.0, 2.0}));
}

TEST(OneClassSvmTest, DecisionDecreasesWithDistanceFromCluster) {
  const auto train = GaussianCloud(80, 1, 1, 0.3, 9);
  OneClassSvmOptions options;
  options.nu = 0.2;
  options.kernel.sigma = 0.8;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  double prev = model->DecisionValue({1.0, 1.0});
  for (double r = 0.5; r <= 4.0; r += 0.5) {
    const double cur = model->DecisionValue({1.0 + r, 1.0});
    EXPECT_LT(cur, prev + 1e-9);
    prev = cur;
  }
}

/// Property (nu-property of the Schölkopf formulation): the fraction of
/// training points classified as outliers is close to (and bounded by
/// roughly) nu.
class OneClassNuPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(OneClassNuPropertyTest, TrainingOutlierFractionTracksNu) {
  const double nu = GetParam();
  const auto train = GaussianCloud(200, 0, 0, 1.0, 23);
  OneClassSvmOptions options;
  options.nu = nu;
  options.kernel.sigma = 1.5;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  // The nu-property holds asymptotically; allow a modest band.
  EXPECT_LE(model->training_outlier_fraction(), nu + 0.08);
  if (nu >= 0.1) {
    EXPECT_GE(model->training_outlier_fraction(), nu - 0.1);
  }
  // Support vector count is at least nu * n (other side of the property).
  EXPECT_GE(static_cast<double>(model->num_support_vectors()),
            nu * 200 - 1.0);
}

INSTANTIATE_TEST_SUITE_P(NuSweep, OneClassNuPropertyTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5, 0.7));

TEST(OneClassSvmTest, CoefficientsSumToOneWithinBox) {
  const auto train = GaussianCloud(50, 0, 0, 1.0, 31);
  OneClassSvmOptions options;
  options.nu = 0.3;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  double sum = 0.0;
  const double c = 1.0 / (0.3 * 50);
  for (double a : model->coefficients()) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, c + 1e-9);
    sum += a;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OneClassSvmTest, SinglePointDegenerateCase) {
  OneClassSvmOptions options;
  options.nu = 0.5;
  Result<OneClassSvmModel> model =
      OneClassSvmTrainer(options).Train({{1.0, 2.0}});
  ASSERT_TRUE(model.ok());
  // The single training point sits on the boundary.
  EXPECT_NEAR(model->DecisionValue({1.0, 2.0}), 0.0, 1e-9);
  EXPECT_LT(model->DecisionValue({9.0, 9.0}), 0.0);
}

TEST(OneClassSvmTest, DuplicatePointsDoNotCrash) {
  std::vector<Vec> train(20, Vec{1.0, 1.0});
  OneClassSvmOptions options;
  options.nu = 0.4;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(model->DecisionValue({1.0, 1.0}), -1e-9);
}

TEST(OneClassSvmTest, RejectsInvalidArguments) {
  OneClassSvmOptions options;
  options.nu = 0.0;
  EXPECT_FALSE(OneClassSvmTrainer(options).Train({{1.0}}).ok());
  options.nu = 1.5;
  EXPECT_FALSE(OneClassSvmTrainer(options).Train({{1.0}}).ok());
  options.nu = 0.5;
  EXPECT_FALSE(OneClassSvmTrainer(options).Train({}).ok());
  EXPECT_FALSE(
      OneClassSvmTrainer(options).Train({{1.0, 2.0}, {1.0}}).ok());
}

TEST(OneClassSvmTest, NuOneUsesAllPointsAsSupportVectors) {
  const auto train = GaussianCloud(30, 0, 0, 1.0, 37);
  OneClassSvmOptions options;
  options.nu = 1.0;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  // nu = 1: every alpha is at the (uniform) bound 1/n.
  EXPECT_EQ(model->num_support_vectors(), 30u);
  for (double a : model->coefficients()) EXPECT_NEAR(a, 1.0 / 30, 1e-9);
}

TEST(OneClassSvmTest, LinearKernelWorksToo) {
  OneClassSvmOptions options;
  options.nu = 0.2;
  options.kernel.type = KernelType::kLinear;
  const auto train = GaussianCloud(40, 5, 5, 0.5, 41);
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->DecisionValue({5.0, 5.0}),
            model->DecisionValue({-5.0, -5.0}));
}

TEST(ModelIoTest, SerializeDeserializeRoundtrip) {
  const auto train = GaussianCloud(25, 0, 0, 1.0, 43);
  OneClassSvmOptions options;
  options.nu = 0.3;
  options.kernel.sigma = 0.7;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());

  const std::string bytes = SerializeOneClassSvm(model.value());
  Result<OneClassSvmModel> back = DeserializeOneClassSvm(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_support_vectors(), model->num_support_vectors());
  EXPECT_DOUBLE_EQ(back->rho(), model->rho());
  // Decision function is bit-identical.
  for (double x = -2; x <= 2; x += 0.5) {
    EXPECT_DOUBLE_EQ(back->DecisionValue({x, 0.3}),
                     model->DecisionValue({x, 0.3}));
  }
}

TEST(ModelIoTest, DetectsCorruption) {
  const auto train = GaussianCloud(10, 0, 0, 1.0, 47);
  OneClassSvmOptions options;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  std::string bytes = SerializeOneClassSvm(model.value());
  bytes[bytes.size() / 2] ^= 0x5a;  // flip bits in the body
  EXPECT_TRUE(DeserializeOneClassSvm(bytes).status().IsCorruption());
  // Bad magic.
  std::string garbage = "not a model at all";
  EXPECT_FALSE(DeserializeOneClassSvm(garbage).ok());
}

TEST(ModelIoTest, FileRoundtrip) {
  const auto train = GaussianCloud(15, 1, 1, 0.5, 53);
  OneClassSvmOptions options;
  Result<OneClassSvmModel> model = OneClassSvmTrainer(options).Train(train);
  ASSERT_TRUE(model.ok());
  const std::string path =
      (std::filesystem::temp_directory_path() / "mivid_model.svm").string();
  ASSERT_TRUE(SaveOneClassSvm(model.value(), path).ok());
  Result<OneClassSvmModel> back = LoadOneClassSvm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->DecisionValue({1.0, 1.0}),
                   model->DecisionValue({1.0, 1.0}));
  std::remove(path.c_str());
  EXPECT_FALSE(LoadOneClassSvm(path).ok());
}

}  // namespace
}  // namespace mivid

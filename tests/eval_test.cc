// Tests for eval/: feedback oracle, retrieval metrics, experiment runner.

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/oracle.h"

namespace mivid {
namespace {

GroundTruth MakeGroundTruth() {
  GroundTruth gt;
  gt.total_frames = 300;
  IncidentRecord crash;
  crash.type = IncidentType::kWallCrash;
  crash.begin_frame = 100;
  crash.end_frame = 140;
  crash.vehicle_ids = {1};
  IncidentRecord uturn;
  uturn.type = IncidentType::kUTurn;
  uturn.begin_frame = 200;
  uturn.end_frame = 240;
  uturn.vehicle_ids = {2};
  gt.incidents = {crash, uturn};
  return gt;
}

VideoSequence MakeWindow(int id, int begin, int end) {
  VideoSequence vs;
  vs.vs_id = id;
  vs.begin_frame = begin;
  vs.end_frame = end;
  vs.ts.emplace_back();  // one dummy TS so the window isn't empty
  return vs;
}

TEST(OracleTest, AccidentQueryLabelsOnlyAccidentOverlaps) {
  const GroundTruth gt = MakeGroundTruth();
  FeedbackOracle oracle(&gt);  // default: accident types
  EXPECT_EQ(oracle.LabelFor(MakeWindow(0, 110, 125)), BagLabel::kRelevant);
  EXPECT_EQ(oracle.LabelFor(MakeWindow(1, 90, 100)), BagLabel::kRelevant);
  EXPECT_EQ(oracle.LabelFor(MakeWindow(2, 0, 50)), BagLabel::kIrrelevant);
  // U-turn windows are NOT accidents.
  EXPECT_EQ(oracle.LabelFor(MakeWindow(3, 210, 225)), BagLabel::kIrrelevant);
}

TEST(OracleTest, CustomQueryTypes) {
  const GroundTruth gt = MakeGroundTruth();
  FeedbackOracle oracle(&gt, {IncidentType::kUTurn});
  EXPECT_EQ(oracle.LabelFor(MakeWindow(0, 210, 225)), BagLabel::kRelevant);
  EXPECT_EQ(oracle.LabelFor(MakeWindow(1, 110, 125)), BagLabel::kIrrelevant);
}

TEST(OracleTest, LabelAllAndCount) {
  const GroundTruth gt = MakeGroundTruth();
  FeedbackOracle oracle(&gt);
  const std::vector<VideoSequence> windows{
      MakeWindow(0, 0, 50), MakeWindow(1, 100, 115), MakeWindow(2, 130, 145)};
  const auto labels = oracle.LabelAll(windows);
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels.at(0), BagLabel::kIrrelevant);
  EXPECT_EQ(labels.at(1), BagLabel::kRelevant);
  EXPECT_EQ(oracle.CountRelevant(windows), 2u);
}

TEST(MetricsTest, AccuracyAtN) {
  std::map<int, BagLabel> truth{{1, BagLabel::kRelevant},
                                {2, BagLabel::kIrrelevant},
                                {3, BagLabel::kRelevant}};
  // 2 relevant in top 4 (unknown id 9 counts as irrelevant).
  EXPECT_DOUBLE_EQ(AccuracyAtN({1, 2, 3, 9}, truth, 4), 0.5);
  // Denominator is n even when fewer results exist (paper's top-20 rule).
  EXPECT_DOUBLE_EQ(AccuracyAtN({1}, truth, 4), 0.25);
  EXPECT_DOUBLE_EQ(AccuracyAtN({1, 3}, truth, 0), 0.0);
}

TEST(MetricsTest, RecallAtN) {
  std::map<int, BagLabel> truth{{1, BagLabel::kRelevant},
                                {3, BagLabel::kRelevant},
                                {5, BagLabel::kRelevant},
                                {2, BagLabel::kIrrelevant}};
  EXPECT_DOUBLE_EQ(RecallAtN({1, 2, 3}, truth, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RecallAtN({2}, truth, 1), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtN({1}, std::map<int, BagLabel>{}, 1), 0.0);
}

TEST(MetricsTest, AveragePrecision) {
  std::map<int, BagLabel> truth{{1, BagLabel::kRelevant},
                                {2, BagLabel::kRelevant}};
  // Perfect ranking: AP = 1.
  EXPECT_DOUBLE_EQ(AveragePrecision({1, 2, 3}, truth), 1.0);
  // Relevant at positions 2 and 4: AP = (1/2 + 2/4) / 2 = 0.5.
  EXPECT_DOUBLE_EQ(AveragePrecision({9, 1, 8, 2}, truth), 0.5);
}

TEST(MetricsTest, RankingIdsStripsScores) {
  const std::vector<ScoredBag> ranking{{7, 0.9}, {3, 0.5}};
  EXPECT_EQ(RankingIds(ranking), (std::vector<int>{7, 3}));
}

TEST(ExperimentTest, GroundTruthPipelineSmoke) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 800;
  scenario_options.num_wall_crashes = 2;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 1;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);

  ExperimentOptions options;
  options.pipeline = PipelineMode::kGroundTruthTracks;
  options.feedback_rounds = 2;
  options.top_n = 10;

  Result<ExperimentResult> result = RunRfExperiment(scenario, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->curves.size(), 2u);
  EXPECT_EQ(result->curves[0].method, "MIL_OneClassSVM");
  EXPECT_EQ(result->curves[1].method, "Weighted_RF");
  // Initial + 2 feedback rounds.
  ASSERT_EQ(result->curves[0].accuracy.size(), 3u);
  // Both methods share the identical initial round (same heuristic).
  EXPECT_DOUBLE_EQ(result->curves[0].accuracy[0],
                   result->curves[1].accuracy[0]);
  for (double a : result->curves[0].accuracy) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  // Formatting contains the table header and both methods.
  const std::string text = FormatExperimentResult(result.value());
  EXPECT_NE(text.find("MIL_OneClassSVM"), std::string::npos);
  EXPECT_NE(text.find("Initial"), std::string::npos);
}

TEST(ExperimentTest, VisionPipelineSmoke) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 500;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);

  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  options.feedback_rounds = 1;
  options.top_n = 5;
  Result<ExperimentResult> result = RunRfExperiment(scenario, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->num_windows, 0u);
  EXPECT_GT(result->num_ts, 0u);
}

TEST(ExperimentTest, AnalysisIsDeterministic) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 600;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kGroundTruthTracks;
  Result<ClipAnalysis> a = AnalyzeScenario(scenario, options);
  Result<ClipAnalysis> b = AnalyzeScenario(scenario, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->windows.size(), b->windows.size());
  EXPECT_EQ(a->num_relevant, b->num_relevant);
  ASSERT_EQ(a->dataset.size(), b->dataset.size());
  for (size_t i = 0; i < a->dataset.size(); ++i) {
    ASSERT_EQ(a->dataset.bag(i).instances.size(),
              b->dataset.bag(i).instances.size());
    for (size_t j = 0; j < a->dataset.bag(i).instances.size(); ++j) {
      EXPECT_EQ(a->dataset.bag(i).instances[j].features,
                b->dataset.bag(i).instances[j].features);
    }
  }
}

}  // namespace
}  // namespace mivid

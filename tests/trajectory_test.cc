// Tests for trajectory/: tracks, resampling, polynomial fitting (Eq. 1-2).
// Includes parameterized property sweeps over polynomial degrees.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "trajectory/polyfit.h"
#include "trajectory/trajectory.h"

namespace mivid {
namespace {

TEST(TrackTest, BasicAccessors) {
  Track t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.first_frame(), -1);
  t.points = {{0, {0, 0}, {}}, {5, {3, 4}, {}}, {10, {6, 8}, {}}};
  EXPECT_EQ(t.first_frame(), 0);
  EXPECT_EQ(t.last_frame(), 10);
  EXPECT_DOUBLE_EQ(t.PathLength(), 10.0);
}

TEST(TrackTest, CentroidAtBinarySearch) {
  Track t;
  t.points = {{2, {1, 1}, {}}, {7, {2, 2}, {}}, {12, {3, 3}, {}}};
  Point2 p;
  EXPECT_TRUE(t.CentroidAt(7, &p));
  EXPECT_EQ(p, Point2(2, 2));
  EXPECT_FALSE(t.CentroidAt(8, &p));
  EXPECT_FALSE(t.CentroidAt(-1, &p));
  EXPECT_TRUE(t.CentroidAt(12, &p));
}

TEST(SampleEveryTest, AlignsToGrid) {
  Track t;
  for (int f = 3; f <= 23; ++f) t.points.push_back({f, {1.0 * f, 0}, {}});
  const auto sampled = SampleEvery(t, 5);
  ASSERT_EQ(sampled.size(), 4u);  // frames 5, 10, 15, 20
  EXPECT_EQ(sampled[0].frame, 5);
  EXPECT_EQ(sampled[3].frame, 20);
}

TEST(SampleEveryTest, SkipsGaps) {
  Track t;
  for (int f = 0; f <= 30; ++f) {
    if (f >= 9 && f <= 11) continue;  // observation gap covering frame 10
    t.points.push_back({f, {1.0 * f, 0}, {}});
  }
  const auto sampled = SampleEvery(t, 5);
  std::vector<int> frames;
  for (const auto& p : sampled) frames.push_back(p.frame);
  EXPECT_EQ(frames, (std::vector<int>{0, 5, 15, 20, 25, 30}));
}

TEST(SampleEveryTest, EdgeCases) {
  Track empty;
  EXPECT_TRUE(SampleEvery(empty, 5).empty());
  Track t;
  t.points = {{7, {1, 1}, {}}};
  EXPECT_TRUE(SampleEvery(t, 5).empty());  // no grid frame covered
  EXPECT_TRUE(SampleEvery(t, 0).empty());  // invalid stride
}

TEST(PolynomialTest, EvalAndDerivative) {
  // p(x) = 2 + 3x + x^2 over the identity normalization.
  Polynomial p({2, 3, 1});
  EXPECT_DOUBLE_EQ(p.Eval(0), 2.0);
  EXPECT_DOUBLE_EQ(p.Eval(2), 12.0);
  Polynomial d = p.Derivative();
  EXPECT_DOUBLE_EQ(d.Eval(0), 3.0);  // p' = 3 + 2x
  EXPECT_DOUBLE_EQ(d.Eval(2), 7.0);
}

TEST(PolynomialTest, DerivativeRespectsScale) {
  // p(x) = u^2 with u = (x - 10) / 2  =>  dp/dx = 2u * (1/2) = u.
  Polynomial p({0, 0, 1}, 10.0, 2.0);
  EXPECT_DOUBLE_EQ(p.Eval(14), 4.0);           // u = 2
  EXPECT_DOUBLE_EQ(p.Derivative().Eval(14), 2.0);
}

TEST(PolynomialTest, EmptyAndConstant) {
  Polynomial empty;
  EXPECT_DOUBLE_EQ(empty.Eval(3), 0.0);
  Polynomial c({5.0});
  EXPECT_DOUBLE_EQ(c.Eval(100), 5.0);
  EXPECT_DOUBLE_EQ(c.Derivative().Eval(1), 0.0);
}

/// Property: fitting a degree-k polynomial to samples drawn exactly from a
/// degree-k polynomial recovers it (evaluated anywhere in range).
class PolyfitExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(PolyfitExactnessTest, RecoversGeneratingPolynomial) {
  const int degree = GetParam();
  Rng rng(100 + static_cast<uint64_t>(degree));
  Vec coeffs(static_cast<size_t>(degree) + 1);
  for (auto& c : coeffs) c = rng.Uniform(-2, 2);

  auto truth = [&](double x) {
    double acc = 0;
    for (size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
    return acc;
  };

  Vec xs, ys;
  for (int i = 0; i <= 3 * degree + 4; ++i) {
    const double x = -1.0 + 2.0 * i / (3 * degree + 4);
    xs.push_back(x);
    ys.push_back(truth(x));
  }
  for (FitMethod method : {FitMethod::kQR, FitMethod::kNormal}) {
    Result<Polynomial> fit = FitPolynomial(xs, ys, degree, method);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();
    for (double x = -1.0; x <= 1.0; x += 0.13) {
      EXPECT_NEAR(fit->Eval(x), truth(x), 1e-7)
          << "degree " << degree << " method "
          << (method == FitMethod::kQR ? "QR" : "normal");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyfitExactnessTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

/// Property: the fit is invariant to abscissa shift (conditioning guard).
class PolyfitShiftInvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(PolyfitShiftInvarianceTest, LargeAbscissaeStayAccurate) {
  const double shift = GetParam();
  // y = 0.5 + 0.1 (x - shift) - 0.01 (x - shift)^2
  Vec xs, ys;
  for (int i = 0; i < 30; ++i) {
    const double u = i * 1.0;
    xs.push_back(shift + u);
    ys.push_back(0.5 + 0.1 * u - 0.01 * u * u);
  }
  Result<Polynomial> fit = FitPolynomial(xs, ys, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->Eval(shift + 15.0), 0.5 + 1.5 - 2.25, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Shifts, PolyfitShiftInvarianceTest,
                         ::testing::Values(0.0, 100.0, 2500.0, 1e6));

TEST(PolyfitTest, NoisyDataResidualIsSmall) {
  Rng rng(42);
  Vec xs, ys;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(1.0 + 2.0 * x + rng.Gaussian(0, 0.05));
  }
  Result<Polynomial> fit = FitPolynomial(xs, ys, 1);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->Eval(5.0), 11.0, 0.1);
}

TEST(PolyfitTest, ErrorsOnBadInput) {
  EXPECT_FALSE(FitPolynomial({1, 2}, {1}, 1).ok());          // size mismatch
  EXPECT_FALSE(FitPolynomial({1, 2}, {1, 2}, 2).ok());       // too few points
  EXPECT_FALSE(FitPolynomial({3, 3, 3}, {1, 2, 3}, 1).ok()); // degenerate xs
  EXPECT_FALSE(FitPolynomial({1, 2}, {3, 4}, -1).ok());      // bad degree
}

TEST(PolyfitTest, DegenerateAbscissaeDegreeZeroIsMean) {
  Result<Polynomial> fit = FitPolynomial({5, 5, 5}, {1, 2, 3}, 0);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->Eval(5), 2.0);
}

TEST(FitTrackTest, FourthDegreeFitMatchesPaperFigure2Setup) {
  // A smooth curved trajectory like the paper's Fig. 2: fit x(t), y(t)
  // with a 4th-degree polynomial.
  Track t;
  for (int f = 0; f <= 100; f += 5) {
    const double tt = f / 100.0;
    t.points.push_back(
        {f, {10 + 300 * tt, 200 - 180 * tt + 120 * tt * tt - 40 * tt * tt * tt},
         {}});
  }
  Result<FittedTrajectory> fit = FitTrack(t, 4);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->rms_error, 0.01);
  // Velocity (tangent) is the analytic derivative.
  const Vec2 v = fit->Velocity(50.0);
  EXPECT_NEAR(v.x, 3.0, 0.01);  // dx/df = 300/100
}

TEST(FitTrackTest, RequiresEnoughPoints) {
  Track t;
  t.points = {{0, {0, 0}, {}}, {5, {1, 1}, {}}};
  EXPECT_FALSE(FitTrack(t, 4).ok());
  EXPECT_TRUE(FitTrack(t, 1).ok());
}

TEST(FitTrackTest, VerticalMotionIsWellDefined) {
  // A trajectory moving straight down: x constant, y varies. Fitting
  // y as a function of x would be degenerate; fitting vs time works.
  Track t;
  for (int f = 0; f <= 50; f += 5) {
    t.points.push_back({f, {100.0, 10.0 + 2.0 * f}, {}});
  }
  Result<FittedTrajectory> fit = FitTrack(t, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->rms_error, 1e-9);
  const Vec2 v = fit->Velocity(25.0);
  EXPECT_NEAR(v.x, 0.0, 1e-9);
  EXPECT_NEAR(v.y, 2.0, 1e-9);
}

}  // namespace
}  // namespace mivid

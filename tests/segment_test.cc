// Tests for segment/: background model, SPCPE, connected components and
// the full VehicleSegmenter on synthetic frames.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "segment/segmenter.h"
#include "video/draw.h"

namespace mivid {
namespace {

Frame MakeBackground(uint8_t shade = 60) { return Frame(64, 48, shade); }

TEST(BackgroundModelTest, WarmupThenReady) {
  BackgroundOptions options;
  options.warmup_frames = 5;
  BackgroundModel model(options);
  for (int i = 0; i < 4; ++i) {
    model.Update(MakeBackground());
    EXPECT_FALSE(model.Ready());
  }
  model.Update(MakeBackground());
  EXPECT_TRUE(model.Ready());
  EXPECT_EQ(model.frames_seen(), 5);
}

TEST(BackgroundModelTest, LearnsStaticScene) {
  BackgroundModel model;
  for (int i = 0; i < 15; ++i) model.Update(MakeBackground(60));
  const Frame bg = model.BackgroundFrame();
  EXPECT_EQ(bg.At(10, 10), 60);
  const Mask mask = model.Subtract(MakeBackground(60));
  for (uint8_t m : mask) EXPECT_EQ(m, 0);
}

TEST(BackgroundModelTest, DetectsForeignObject) {
  BackgroundModel model;
  for (int i = 0; i < 12; ++i) model.Update(MakeBackground(60));
  Frame frame = MakeBackground(60);
  FillRect(&frame, BBox(10, 10, 20, 18), 200);
  const Mask mask = model.Subtract(frame);
  EXPECT_EQ(mask[15 * 64 + 15], 1);
  EXPECT_EQ(mask[5 * 64 + 5], 0);
}

TEST(BackgroundModelTest, SelectiveUpdateKeepsStoppedObjectForeground) {
  BackgroundOptions options;
  options.learning_rate = 0.2;  // aggressive, to prove selectivity matters
  BackgroundModel model(options);
  for (int i = 0; i < 12; ++i) model.Update(MakeBackground(60));
  Frame with_car = MakeBackground(60);
  FillRect(&with_car, BBox(10, 10, 20, 18), 200);
  // A stopped car sits there for many frames.
  for (int i = 0; i < 50; ++i) model.Update(with_car);
  const Mask mask = model.Subtract(with_car);
  EXPECT_EQ(mask[14 * 64 + 14], 1) << "stopped car absorbed into background";
}

TEST(CleanMaskTest, RemovesIsolatedPixelsKeepsBlocks) {
  const int w = 16, h = 16;
  Mask mask(static_cast<size_t>(w) * h, 0);
  mask[3 * 16 + 3] = 1;  // lone speck
  for (int y = 8; y < 12; ++y) {
    for (int x = 8; x < 12; ++x) mask[y * 16 + x] = 1;  // 4x4 block
  }
  const Mask cleaned = CleanMask(mask, w, h, 1);
  EXPECT_EQ(cleaned[3 * 16 + 3], 0);
  EXPECT_EQ(cleaned[10 * 16 + 10], 1);
}

TEST(SpcpeTest, SeparatesTwoIntensityClasses) {
  Frame frame(32, 32, 50);
  FillRect(&frame, BBox(8, 8, 15, 15), 210);
  SpcpeResult result = RunSpcpe(frame, nullptr, 50.0);
  EXPECT_TRUE(result.two_classes);
  EXPECT_NEAR(result.class_mean[0], 50.0, 2.0);
  EXPECT_NEAR(result.class_mean[1], 210.0, 2.0);
  EXPECT_EQ(result.partition[10 * 32 + 10], 1);
  EXPECT_EQ(result.partition[0], 0);
}

TEST(SpcpeTest, ConvergesWithinIterationBudget) {
  Rng rng(3);
  Frame frame(32, 32);
  for (auto& p : frame.pixels()) {
    p = static_cast<uint8_t>(rng.Bernoulli(0.5) ? rng.UniformInt(40, 60)
                                                : rng.UniformInt(180, 220));
  }
  SpcpeResult result = RunSpcpe(frame, nullptr, 50.0);
  EXPECT_TRUE(result.two_classes);
  EXPECT_LE(result.iterations, 20);
  EXPECT_GT(result.iterations, 0);
}

TEST(SpcpeTest, HomogeneousRegionIsSingleClass) {
  Frame frame(16, 16, 128);
  Mask prior(frame.size(), 1);
  SpcpeResult result = RunSpcpe(frame, &prior, 40.0);
  EXPECT_FALSE(result.two_classes);
  // Everything in the prior stays foreground.
  EXPECT_EQ(result.partition[0], 1);
}

TEST(SpcpeTest, PriorRestrictsCandidates) {
  Frame frame(16, 16, 50);
  FillRect(&frame, BBox(4, 4, 7, 7), 200);
  Mask prior(frame.size(), 0);
  for (int y = 4; y <= 7; ++y) {
    for (int x = 4; x <= 7; ++x) prior[y * 16 + x] = 1;
  }
  SpcpeResult result = RunSpcpe(frame, &prior, 50.0);
  // Pixels outside the prior are never foreground.
  EXPECT_EQ(result.partition[0], 0);
  EXPECT_EQ(result.partition[5 * 16 + 5], 1);
}

TEST(SpcpeTest, KeepsBothVehicleShadesWithHint) {
  // Two vehicles of different shades, both far from the background hint.
  Frame frame(48, 16, 50);
  FillRect(&frame, BBox(4, 4, 12, 10), 180);
  FillRect(&frame, BBox(30, 4, 38, 10), 240);
  Mask prior(frame.size(), 0);
  for (int y = 4; y <= 10; ++y) {
    for (int x = 4; x <= 12; ++x) prior[y * 48 + x] = 1;
    for (int x = 30; x <= 38; ++x) prior[y * 48 + x] = 1;
  }
  SpcpeResult result = RunSpcpe(frame, &prior, 50.0);
  EXPECT_EQ(result.partition[6 * 48 + 6], 1) << "darker vehicle dropped";
  EXPECT_EQ(result.partition[6 * 48 + 33], 1) << "brighter vehicle dropped";
}

TEST(SpcpeTest, EmptyPriorYieldsEmptyResult) {
  Frame frame(8, 8, 100);
  Mask prior(frame.size(), 0);
  SpcpeResult result = RunSpcpe(frame, &prior, 50.0);
  EXPECT_FALSE(result.two_classes);
  for (uint8_t p : result.partition) EXPECT_EQ(p, 0);
}

TEST(BlobTest, ExtractsComponentsWithMbrAndCentroid) {
  Frame frame(32, 32, 0);
  Mask mask(frame.size(), 0);
  for (int y = 4; y < 10; ++y) {
    for (int x = 4; x < 12; ++x) {
      mask[y * 32 + x] = 1;
      frame.At(x, y) = 200;
    }
  }
  BlobOptions options;
  options.min_area = 10;
  const std::vector<Blob> blobs = ExtractBlobs(mask, frame, options);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 48);
  EXPECT_NEAR(blobs[0].centroid.x, 7.5, 1e-9);
  EXPECT_NEAR(blobs[0].centroid.y, 6.5, 1e-9);
  EXPECT_DOUBLE_EQ(blobs[0].mbr.min_x, 4);
  EXPECT_DOUBLE_EQ(blobs[0].mbr.max_x, 11);
  EXPECT_NEAR(blobs[0].mean_intensity, 200.0, 1e-9);
}

TEST(BlobTest, MinAreaFiltersSpecks) {
  Frame frame(16, 16, 0);
  Mask mask(frame.size(), 0);
  mask[5 * 16 + 5] = 1;
  BlobOptions options;
  options.min_area = 2;
  EXPECT_TRUE(ExtractBlobs(mask, frame, options).empty());
}

TEST(BlobTest, SeparatesDisjointComponents) {
  Frame frame(32, 16, 0);
  Mask mask(frame.size(), 0);
  for (int y = 2; y < 8; ++y) {
    for (int x = 2; x < 8; ++x) mask[y * 32 + x] = 1;
    for (int x = 20; x < 26; ++x) mask[y * 32 + x] = 1;
  }
  BlobOptions options;
  options.min_area = 10;
  const std::vector<Blob> blobs = ExtractBlobs(mask, frame, options);
  EXPECT_EQ(blobs.size(), 2u);
}

TEST(BlobTest, EightVsFourConnectivity) {
  Frame frame(8, 8, 0);
  Mask mask(frame.size(), 0);
  // Two 2x2 blocks touching only diagonally.
  mask[1 * 8 + 1] = mask[1 * 8 + 2] = mask[2 * 8 + 1] = mask[2 * 8 + 2] = 1;
  mask[3 * 8 + 3] = mask[3 * 8 + 4] = mask[4 * 8 + 3] = mask[4 * 8 + 4] = 1;
  BlobOptions options;
  options.min_area = 1;
  options.eight_connected = true;
  EXPECT_EQ(ExtractBlobs(mask, frame, options).size(), 1u);
  options.eight_connected = false;
  EXPECT_EQ(ExtractBlobs(mask, frame, options).size(), 2u);
}

TEST(SegmenterTest, EndToEndDetectsMovingVehicle) {
  SegmenterOptions options;
  options.background.warmup_frames = 8;
  options.blob.min_area = 20;
  VehicleSegmenter segmenter(options);

  Rng rng(4);
  // Static background + moving bright rectangle, mild noise.
  for (int frame_idx = 0; frame_idx < 40; ++frame_idx) {
    Frame frame(96, 64, 60);
    if (frame_idx >= 10) {
      const double x = 10 + (frame_idx - 10) * 2.0;
      FillRect(&frame, BBox(x, 28, x + 14, 36), 210);
    }
    for (auto& p : frame.pixels()) {
      p = static_cast<uint8_t>(std::clamp(
          static_cast<double>(p) + rng.Gaussian(0, 2.0), 0.0, 255.0));
    }
    const std::vector<Blob> blobs = segmenter.Process(frame);
    if (frame_idx >= 12) {
      ASSERT_EQ(blobs.size(), 1u) << "frame " << frame_idx;
      const double expected_cx = 10 + (frame_idx - 10) * 2.0 + 7.0;
      EXPECT_NEAR(blobs[0].centroid.x, expected_cx, 2.5);
      EXPECT_NEAR(blobs[0].centroid.y, 32.0, 2.5);
    }
  }
}

TEST(SegmenterTest, NoDetectionsDuringWarmup) {
  VehicleSegmenter segmenter;
  Frame frame(32, 32, 80);
  FillRect(&frame, BBox(5, 5, 15, 15), 220);
  EXPECT_TRUE(segmenter.Process(frame).empty());
  EXPECT_FALSE(segmenter.Ready());
}

}  // namespace
}  // namespace mivid

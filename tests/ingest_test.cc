// Tests for the streaming ingestion pipeline (src/ingest/) and the
// epoch-snapshot corpus API it feeds (serve/corpus_manager.h):
//
//  * the streamed-equals-batch bit-identity guarantee — the incremental
//    extractor's windows and scaler match the batch pipeline bitwise on
//    simulated scenarios, and an ingest->publish corpus matches
//    QueryEngine::BuildCorpus over the same stored clips bitwise,
//  * epoch pinning over the wire — a session's rank responses are
//    byte-identical across a concurrent ingest+publish, and refresh
//    makes the new bags visible while preserving the feedback round,
//  * epoch manifest/segment cold restore,
//  * protocol versioning ("v" field) and ingest command validation.

#include <unistd.h>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "db/query_engine.h"
#include "db/video_db.h"
#include "event/features.h"
#include "event/sliding_window.h"
#include "ingest/camera_ingestor.h"
#include "ingest/clip_extractor.h"
#include "ingest/track_builder.h"
#include "obs/json.h"
#include "serve/corpus_manager.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_((fs::temp_directory_path() /
               (std::string(name) + "." + std::to_string(getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GroundTruth SimulateTunnel(int total_frames, uint64_t seed) {
  TunnelScenarioOptions options;
  options.total_frames = total_frames;
  options.num_wall_crashes = 1;
  options.num_sudden_stops = 1;
  options.num_speeding = 1;
  options.num_uturns = 0;
  options.seed = seed;
  TrafficWorld world(MakeTunnelScenario(options));
  return world.Run();
}

/// Replays stored tracks as the per-frame observation stream a live
/// tracker front end would deliver. `frame_offset` shifts the clip into
/// absolute stream frames.
std::vector<FrameObservations> FramesFromTracks(
    const std::vector<Track>& tracks, int total_frames, int frame_offset = 0) {
  std::vector<FrameObservations> frames(total_frames);
  for (int f = 0; f < total_frames; ++f) {
    frames[f].frame = frame_offset + f;
  }
  for (const Track& track : tracks) {
    for (const TrackPoint& point : track.points) {
      if (point.frame < 0 || point.frame >= total_frames) continue;
      TrackObservation obs;
      obs.track_id = track.id;
      obs.centroid = point.centroid;
      obs.bbox = point.bbox;
      frames[point.frame].observations.push_back(obs);
    }
  }
  return frames;
}

void ExpectPointBitIdentical(const SamplingPointFeatures& got,
                             const SamplingPointFeatures& want) {
  EXPECT_EQ(got.frame, want.frame);
  EXPECT_EQ(got.centroid.x, want.centroid.x);
  EXPECT_EQ(got.centroid.y, want.centroid.y);
  EXPECT_EQ(got.speed, want.speed);
  EXPECT_EQ(got.inv_mdist, want.inv_mdist);
  EXPECT_EQ(got.vdiff, want.vdiff);
  EXPECT_EQ(got.theta, want.theta);
}

void ExpectWindowsBitIdentical(const std::vector<VideoSequence>& got,
                               const std::vector<VideoSequence>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t w = 0; w < want.size(); ++w) {
    SCOPED_TRACE("window " + std::to_string(w));
    EXPECT_EQ(got[w].vs_id, want[w].vs_id);
    EXPECT_EQ(got[w].begin_frame, want[w].begin_frame);
    EXPECT_EQ(got[w].end_frame, want[w].end_frame);
    ASSERT_EQ(got[w].ts.size(), want[w].ts.size());
    for (size_t t = 0; t < want[w].ts.size(); ++t) {
      SCOPED_TRACE("ts " + std::to_string(t));
      EXPECT_EQ(got[w].ts[t].track_id, want[w].ts[t].track_id);
      EXPECT_EQ(got[w].ts[t].vs_id, want[w].ts[t].vs_id);
      ASSERT_EQ(got[w].ts[t].points.size(), want[w].ts[t].points.size());
      for (size_t p = 0; p < want[w].ts[t].points.size(); ++p) {
        ExpectPointBitIdentical(got[w].ts[t].points[p],
                                want[w].ts[t].points[p]);
      }
    }
  }
}

void ExpectScalerBitIdentical(const FeatureScaler& got,
                              const FeatureScaler& want) {
  ASSERT_EQ(got.dimension(), want.dimension());
  for (size_t d = 0; d < want.dimension(); ++d) {
    EXPECT_EQ(got.lower()[d], want.lower()[d]) << "dim " << d;
    EXPECT_EQ(got.upper()[d], want.upper()[d]) << "dim " << d;
  }
}

void ExpectCorpusBitIdentical(const CameraCorpus& got,
                              const CameraCorpus& want) {
  ASSERT_EQ(got.dataset.size(), want.dataset.size());
  for (size_t b = 0; b < want.dataset.size(); ++b) {
    SCOPED_TRACE("bag " + std::to_string(b));
    const MilBag& gb = got.dataset.bag(b);
    const MilBag& wb = want.dataset.bag(b);
    EXPECT_EQ(gb.id, wb.id);
    ASSERT_EQ(gb.instances.size(), wb.instances.size());
    for (size_t i = 0; i < wb.instances.size(); ++i) {
      SCOPED_TRACE("instance " + std::to_string(i));
      EXPECT_EQ(gb.instances[i].bag_id, wb.instances[i].bag_id);
      EXPECT_EQ(gb.instances[i].instance_id, wb.instances[i].instance_id);
      ASSERT_EQ(gb.instances[i].features.size(),
                wb.instances[i].features.size());
      for (size_t d = 0; d < wb.instances[i].features.size(); ++d) {
        EXPECT_EQ(gb.instances[i].features[d], wb.instances[i].features[d]);
      }
      ASSERT_EQ(gb.instances[i].raw_features.size(),
                wb.instances[i].raw_features.size());
      for (size_t d = 0; d < wb.instances[i].raw_features.size(); ++d) {
        EXPECT_EQ(gb.instances[i].raw_features[d],
                  wb.instances[i].raw_features[d]);
      }
    }
  }
  ASSERT_EQ(got.bag_refs.size(), want.bag_refs.size());
  for (const auto& [id, ref] : want.bag_refs) {
    auto it = got.bag_refs.find(id);
    ASSERT_NE(it, got.bag_refs.end()) << "bag_ref " << id;
    EXPECT_EQ(it->second.clip_id, ref.clip_id);
    EXPECT_EQ(it->second.local_vs_id, ref.local_vs_id);
    EXPECT_EQ(it->second.begin_frame, ref.begin_frame);
    EXPECT_EQ(it->second.end_frame, ref.end_frame);
  }
  EXPECT_EQ(got.truth, want.truth);
}

// ---------------------------------------------------------------------------
// Incremental extractor vs batch pipeline

void RunExtractorVsBatch(const FeatureOptions& features,
                         const WindowOptions& windows) {
  const GroundTruth gt = SimulateTunnel(500, /*seed=*/77);
  ASSERT_FALSE(gt.tracks.empty());

  // Batch reference: the exact pipeline QueryEngine's ExtractClip runs.
  const auto track_features = ComputeTrackFeatures(gt.tracks, features);
  const FeatureScaler batch_scaler =
      FeatureScaler::Fit(track_features, features.include_velocity);
  const auto batch_windows =
      ExtractWindows(track_features, gt.total_frames, features, windows);

  // Streamed: one Observe per frame, tracks resolved only by Finish.
  IncrementalClipExtractor extractor(features, windows);
  const auto frames = FramesFromTracks(gt.tracks, gt.total_frames);
  for (const FrameObservations& frame : frames) {
    extractor.Observe(frame.frame, frame.observations);
  }
  // Mid-stream the watermark must trail the head (eligibility of live
  // tracks is unresolved) without stalling at the start.
  EXPECT_GE(extractor.lag_frames(), 0);
  IncrementalClipExtractor::Output out = extractor.Finish(gt.total_frames);

  ExpectWindowsBitIdentical(out.windows, batch_windows);
  ExpectScalerBitIdentical(out.scaler, batch_scaler);
}

TEST(IncrementalExtractorTest, MatchesBatchBitwiseDefaultOptions) {
  RunExtractorVsBatch(FeatureOptions{}, WindowOptions{});
}

TEST(IncrementalExtractorTest, MatchesBatchBitwiseOverlappingWindows) {
  WindowOptions windows;
  windows.stride = 1;  // maximally overlapping windows
  RunExtractorVsBatch(FeatureOptions{}, windows);
}

TEST(IncrementalExtractorTest, MatchesBatchBitwiseWithVelocity) {
  FeatureOptions features;
  features.include_velocity = true;
  features.sampling_rate = 4;
  WindowOptions windows;
  windows.window_size = 4;
  windows.stride = 2;
  RunExtractorVsBatch(features, windows);
}

TEST(IncrementalExtractorTest, MidStreamRetirementMatchesBatch) {
  // Retiring tracks as a LiveTrackBuilder would (as soon as their last
  // observation ages out) must not change the output: retirement only
  // resolves eligibility earlier.
  const GroundTruth gt = SimulateTunnel(400, /*seed=*/99);
  const FeatureOptions features;
  const WindowOptions windows;

  const auto track_features = ComputeTrackFeatures(gt.tracks, features);
  const auto batch_windows =
      ExtractWindows(track_features, gt.total_frames, features, windows);

  IncrementalClipExtractor extractor(features, windows);
  LiveTrackBuilder builder(/*retire_after_frames=*/10);
  const auto frames = FramesFromTracks(gt.tracks, gt.total_frames);
  for (const FrameObservations& frame : frames) {
    extractor.Observe(frame.frame, frame.observations);
    const auto observed = builder.Observe(frame.frame, frame.observations);
    for (int id : observed.retired) extractor.Retire(id);
  }
  IncrementalClipExtractor::Output out = extractor.Finish(gt.total_frames);
  ExpectWindowsBitIdentical(out.windows, batch_windows);
}

// ---------------------------------------------------------------------------
// LiveTrackBuilder

TEST(LiveTrackBuilderTest, RetiresGapsAndDropsLateObservations) {
  LiveTrackBuilder builder(/*retire_after_frames=*/5);
  TrackObservation obs;
  obs.track_id = 7;
  obs.centroid = Point2(1.0, 2.0);

  auto r0 = builder.Observe(0, {obs});
  EXPECT_TRUE(r0.retired.empty());
  EXPECT_EQ(builder.live_count(), 1u);

  // Silent for 5 frames: the track retires.
  auto r5 = builder.Observe(5, {});
  ASSERT_EQ(r5.retired.size(), 1u);
  EXPECT_EQ(r5.retired[0], 7);
  EXPECT_EQ(builder.live_count(), 0u);

  // A later observation for the retired id is dropped, not resurrected.
  auto r6 = builder.Observe(6, {obs});
  EXPECT_EQ(r6.late_observations, 1);
  EXPECT_EQ(builder.live_count(), 0u);

  const auto tracks = builder.Finish();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].id, 7);
  ASSERT_EQ(tracks[0].points.size(), 1u);
  EXPECT_EQ(tracks[0].points[0].frame, 0);
}

// ---------------------------------------------------------------------------
// Ingest -> publish equals batch corpus

TEST(CameraIngestorTest, StreamedPublishMatchesBatchCorpusBitwise) {
  TempDir dir("mivid_ingest_e2e");
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir.path(), db_options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<VideoDb> db = std::move(opened).value();

  const QueryOptions query;
  CorpusManager corpora(db.get(), query);
  IngestOptions ingest;
  ingest.query = query;
  CameraIngestor ingestor("camS", db.get(), &corpora, ingest);

  // Clip 1 streamed before the camera's first snapshot: the cold load
  // triggered by Publish covers it from the db, so the staged duplicate
  // must be dropped instead of published twice.
  const GroundTruth gt1 = SimulateTunnel(500, /*seed=*/41);
  for (const auto& frame : FramesFromTracks(gt1.tracks, gt1.total_frames)) {
    ASSERT_TRUE(ingestor.Observe(frame).ok());
  }
  for (const IncidentRecord& incident : gt1.incidents) {
    ASSERT_TRUE(ingestor
                    .AddIncident(incident.type, incident.begin_frame,
                                 incident.end_frame, incident.vehicle_ids)
                    .ok());
  }
  auto cut1 = ingestor.Cut();
  ASSERT_TRUE(cut1.ok()) << cut1.status().ToString();
  EXPECT_GE(cut1.value().clip_id, 0);
  EXPECT_GT(cut1.value().bags_staged, 0u);

  auto epoch1 = corpora.Publish("camS");
  ASSERT_TRUE(epoch1.ok()) << epoch1.status().ToString();
  EXPECT_EQ(epoch1.value()->id, 1u);  // cold load already covered clip 1
  EXPECT_EQ(corpora.stats().publishes, 0u);
  EXPECT_EQ(corpora.stats().tail_clips, 0u);

  // Clip 2 streamed after the snapshot exists: the real epoch bump.
  const GroundTruth gt2 = SimulateTunnel(400, /*seed=*/42);
  const int offset = ingestor.stats().stream_frame + 1;
  for (const auto& frame :
       FramesFromTracks(gt2.tracks, gt2.total_frames, offset)) {
    ASSERT_TRUE(ingestor.Observe(frame).ok());
  }
  for (const IncidentRecord& incident : gt2.incidents) {
    ASSERT_TRUE(ingestor
                    .AddIncident(incident.type, offset + incident.begin_frame,
                                 offset + incident.end_frame,
                                 incident.vehicle_ids)
                    .ok());
  }
  auto cut2 = ingestor.Cut();
  ASSERT_TRUE(cut2.ok()) << cut2.status().ToString();
  ASSERT_GE(cut2.value().clip_id, 0);

  auto epoch2 = corpora.Publish("camS");
  ASSERT_TRUE(epoch2.ok()) << epoch2.status().ToString();
  EXPECT_EQ(epoch2.value()->id, 2u);
  EXPECT_EQ(corpora.stats().publishes, 1u);
  EXPECT_GT(epoch2.value()->corpus->dataset.size(),
            epoch1.value()->corpus->dataset.size());

  // The published epoch must equal a from-scratch batch build over the
  // same stored clips, bitwise: same bags, ids, features, provenance,
  // and oracle truth.
  QueryEngine engine(db.get());
  auto batch = engine.BuildCorpus("camS", query);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ExpectCorpusBitIdentical(*epoch2.value()->corpus, batch.value());

  // The pinned epoch-1 corpus is a strict prefix of epoch 2 (bag ids
  // never change meaning across epochs).
  const auto& old_bags = epoch1.value()->corpus->dataset.bags();
  for (size_t b = 0; b < old_bags.size(); ++b) {
    EXPECT_EQ(old_bags[b].id, epoch2.value()->corpus->dataset.bag(b).id);
  }

  // Re-publishing with nothing staged is an idempotent no-op.
  auto epoch2_again = corpora.Publish("camS");
  ASSERT_TRUE(epoch2_again.ok());
  EXPECT_EQ(epoch2_again.value().get(), epoch2.value().get());
}

TEST(CorpusManagerTest, AppendValidatesClips) {
  TempDir dir("mivid_ingest_append");
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir.path(), db_options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<VideoDb> db = std::move(opened).value();

  const GroundTruth gt = SimulateTunnel(400, /*seed=*/5);
  ClipInfo info;
  info.camera_id = "camV";
  info.total_frames = gt.total_frames;
  auto clip_id = db->IngestClip(info, gt.tracks, gt.incidents);
  ASSERT_TRUE(clip_id.ok());

  const QueryOptions query;
  CorpusManager corpora(db.get(), query);
  // Unpersisted clip ids are rejected outright.
  EXPECT_TRUE(corpora.Append("camV", ClipExtraction{}).IsInvalidArgument());

  // A clip covered by the published epoch cannot be staged again.
  ASSERT_TRUE(corpora.Snapshot("camV").ok());
  auto record = db->LoadClip(clip_id.value());
  ASSERT_TRUE(record.ok());
  ClipExtraction extraction = ExtractClip(record.value(), query);
  extraction.clip_id = clip_id.value();
  EXPECT_TRUE(corpora.Append("camV", extraction).IsAlreadyExists());

  // Staging the same (new) clip twice is also rejected.
  extraction.clip_id = clip_id.value() + 100;
  EXPECT_TRUE(corpora.Append("camV", extraction).ok());
  EXPECT_TRUE(corpora.Append("camV", extraction).IsAlreadyExists());
}

// ---------------------------------------------------------------------------
// Epoch manifest / segment cold restore

TEST(CorpusManagerTest, ColdRestoreFromSegmentsMatchesExtraction) {
  TempDir db_dir("mivid_ingest_restore_db");
  TempDir snap_dir("mivid_ingest_restore_snap");
  // The server creates the snapshot dir in ValidateServeOptions; a
  // directly constructed manager expects it to exist.
  fs::create_directories(snap_dir.path());
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(db_dir.path(), db_options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<VideoDb> db = std::move(opened).value();

  const GroundTruth gt = SimulateTunnel(500, /*seed=*/13);
  ClipInfo info;
  info.camera_id = "camR";
  info.total_frames = gt.total_frames;
  ASSERT_TRUE(db->IngestClip(info, gt.tracks, gt.incidents).ok());

  const QueryOptions query;
  std::shared_ptr<const CorpusEpoch> published;
  {
    // First manager: cold extraction, writes segment + manifest.
    CorpusManager corpora(db.get(), query, snap_dir.path());
    auto epoch = corpora.Snapshot("camR");
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    EXPECT_EQ(corpora.stats().snapshot_hits, 0u);
    EXPECT_GE(corpora.stats().snapshot_writes, 1u);

    // Stage + publish a second clip so the manifest grows to two
    // segments.
    const GroundTruth gt2 = SimulateTunnel(400, /*seed=*/14);
    ClipInfo info2;
    info2.camera_id = "camR";
    info2.total_frames = gt2.total_frames;
    auto clip2 = db->IngestClip(info2, gt2.tracks, gt2.incidents);
    ASSERT_TRUE(clip2.ok());
    auto record2 = db->LoadClip(clip2.value());
    ASSERT_TRUE(record2.ok());
    ASSERT_TRUE(
        corpora.Append("camR", ExtractClip(record2.value(), query)).ok());
    auto epoch2 = corpora.Publish("camR");
    ASSERT_TRUE(epoch2.ok()) << epoch2.status().ToString();
    EXPECT_EQ(epoch2.value()->id, 2u);
    published = epoch2.value();
  }

  // Second manager, same snapshot dir: the cold load must restore from
  // the manifest's segments (no re-extraction) and reproduce the
  // published corpus bitwise.
  CorpusManager restored(db.get(), query, snap_dir.path());
  auto epoch = restored.Snapshot("camR");
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(restored.stats().snapshot_hits, 1u);
  ExpectCorpusBitIdentical(*epoch.value()->corpus, *published->corpus);

  // A fresh manager without the snapshot dir re-extracts; the result
  // must still be bitwise identical (segments are a cache, not a fork).
  CorpusManager scratch(db.get(), query);
  auto extracted = scratch.Snapshot("camR");
  ASSERT_TRUE(extracted.ok());
  ExpectCorpusBitIdentical(*extracted.value()->corpus, *published->corpus);
}

// ---------------------------------------------------------------------------
// Protocol versioning

TEST(ServeProtocolTest, AcceptsKnownProtocolVersions) {
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":1})").ok());
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":"1"})").ok());
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":"1.0"})").ok());
  // Unknown minors are additive: the server must accept them.
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":"1.99"})").ok());
  // Absent "v" means v1 (pre-versioning clients).
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats"})").ok());
}

TEST(ServeProtocolTest, RejectsUnknownProtocolMajor) {
  auto v2 = ParseServeRequest(R"({"cmd":"stats","v":2})");
  ASSERT_TRUE(v2.status().IsInvalidArgument());
  EXPECT_NE(v2.status().message().find("unsupported protocol major"),
            std::string::npos);
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":"2.0"})")
                  .status()
                  .IsInvalidArgument());
  // The version gate runs before command lookup: a wrong-major client
  // gets the version error even for commands this server never had.
  EXPECT_NE(ParseServeRequest(R"({"cmd":"future-cmd","v":3})")
                .status()
                .message()
                .find("unsupported protocol major"),
            std::string::npos);
  // Malformed versions.
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":1.5})")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":"abc"})")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":true})")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats","v":"12345678901"})")
                  .status()
                  .IsInvalidArgument());
}

TEST(ServeProtocolTest, ParsesIngestCommand) {
  auto req = ParseServeRequest(
      R"({"cmd":"ingest","camera":"camA","v":"1.1",)"
      R"("frames":[{"frame":0,"obs":[{"track":3,"x":1.5,"y":2.5}]},)"
      R"({"frame":1,"obs":[{"track":3,"x":2.0,"y":3.0,)"
      R"("bbox":[1.0,2.0,3.0,4.0]}]}],)"
      R"("incidents":[{"type":"wall_crash","begin":0,"end":1,)"
      R"("vehicles":[3]}],"cut":true,"publish":true})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->cmd, ServeCmd::kIngest);
  EXPECT_EQ(req->camera_id, "camA");
  ASSERT_EQ(req->frames.size(), 2u);
  EXPECT_EQ(req->frames[0].frame, 0);
  ASSERT_EQ(req->frames[0].observations.size(), 1u);
  EXPECT_EQ(req->frames[0].observations[0].track_id, 3);
  EXPECT_EQ(req->frames[0].observations[0].centroid.x, 1.5);
  // bbox defaults to the centroid point when absent.
  EXPECT_EQ(req->frames[0].observations[0].bbox.min_x, 1.5);
  EXPECT_EQ(req->frames[1].observations[0].bbox.max_y, 4.0);
  ASSERT_EQ(req->incidents.size(), 1u);
  EXPECT_EQ(req->incidents[0].type, IncidentType::kWallCrash);
  EXPECT_EQ(req->incidents[0].vehicle_ids, std::vector<int>{3});
  EXPECT_TRUE(req->cut);
  EXPECT_TRUE(req->publish);
}

TEST(ServeProtocolTest, RejectsMalformedIngest) {
  // camera is required
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"ingest"})")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"publish"})")
                  .status()
                  .IsInvalidArgument());
  // missing obs coordinates
  EXPECT_TRUE(ParseServeRequest(
                  R"({"cmd":"ingest","camera":"c",)"
                  R"("frames":[{"frame":0,"obs":[{"track":1,"x":1}]}]})")
                  .status()
                  .IsInvalidArgument());
  // missing frame index
  EXPECT_TRUE(ParseServeRequest(
                  R"({"cmd":"ingest","camera":"c","frames":[{"obs":[]}]})")
                  .status()
                  .IsInvalidArgument());
  // unknown incident type
  EXPECT_TRUE(ParseServeRequest(
                  R"({"cmd":"ingest","camera":"c",)"
                  R"("incidents":[{"type":"alien","begin":0,"end":1}]})")
                  .status()
                  .IsInvalidArgument());
  // inverted incident range
  EXPECT_TRUE(ParseServeRequest(
                  R"({"cmd":"ingest","camera":"c",)"
                  R"("incidents":[{"type":"u_turn","begin":5,"end":1}]})")
                  .status()
                  .IsInvalidArgument());
  // malformed bbox
  EXPECT_TRUE(ParseServeRequest(
                  R"({"cmd":"ingest","camera":"c","frames":[{"frame":0,)"
                  R"("obs":[{"track":1,"x":1,"y":1,"bbox":[1,2]}]}]})")
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Epoch pinning + refresh over the wire

JsonValue Parse(const std::string& response) {
  Result<JsonValue> doc = ParseJson(response);
  EXPECT_TRUE(doc.ok()) << response;
  return doc.ok() ? std::move(doc).value() : JsonValue{};
}

bool IsOk(const JsonValue& doc) {
  const JsonValue* ok = doc.Find("ok");
  return ok != nullptr && ok->type == JsonValue::Type::kBool && ok->bool_value;
}

std::string WireErrorCode(const JsonValue& doc) {
  const JsonValue* code = doc.Find("code");
  return code != nullptr ? code->string : "";
}

std::string WireError(const JsonValue& doc) {
  const JsonValue* error = doc.Find("error");
  return error != nullptr ? error->string : "(no error field)";
}

int64_t IntField(const JsonValue& doc, const char* key) {
  const JsonValue* v = doc.Find(key);
  EXPECT_TRUE(v != nullptr && v->is_number()) << key;
  return v != nullptr && v->is_number() ? static_cast<int64_t>(v->number) : -1;
}

/// Serializes a frame batch as one `ingest` request line. %.17g keeps
/// the JSON round-trip of every coordinate bit-exact.
std::string IngestLine(const std::string& camera,
                       const std::vector<FrameObservations>& frames,
                       const std::vector<IncidentRecord>& incidents,
                       bool cut, bool publish) {
  std::string line = "{\"cmd\":\"ingest\",\"v\":\"1.1\",\"camera\":\"" +
                     camera + "\",\"frames\":[";
  for (size_t f = 0; f < frames.size(); ++f) {
    if (f > 0) line += ',';
    line += "{\"frame\":" + std::to_string(frames[f].frame) + ",\"obs\":[";
    for (size_t o = 0; o < frames[f].observations.size(); ++o) {
      const TrackObservation& obs = frames[f].observations[o];
      if (o > 0) line += ',';
      line += StrFormat(
          "{\"track\":%d,\"x\":%.17g,\"y\":%.17g,"
          "\"bbox\":[%.17g,%.17g,%.17g,%.17g]}",
          obs.track_id, obs.centroid.x, obs.centroid.y, obs.bbox.min_x,
          obs.bbox.min_y, obs.bbox.max_x, obs.bbox.max_y);
    }
    line += "]}";
  }
  line += "],\"incidents\":[";
  for (size_t i = 0; i < incidents.size(); ++i) {
    if (i > 0) line += ',';
    line += StrFormat("{\"type\":\"%s\",\"begin\":%d,\"end\":%d,\"vehicles\":[",
                      IncidentTypeName(incidents[i].type),
                      incidents[i].begin_frame, incidents[i].end_frame);
    for (size_t v = 0; v < incidents[i].vehicle_ids.size(); ++v) {
      if (v > 0) line += ',';
      line += std::to_string(incidents[i].vehicle_ids[v]);
    }
    line += "]}";
  }
  line += "],\"cut\":";
  line += cut ? "true" : "false";
  line += ",\"publish\":";
  line += publish ? "true" : "false";
  line += "}";
  return line;
}

std::vector<IncidentRecord> ShiftIncidents(
    const std::vector<IncidentRecord>& incidents, int offset) {
  std::vector<IncidentRecord> shifted = incidents;
  for (IncidentRecord& incident : shifted) {
    incident.begin_frame += offset;
    incident.end_frame += offset;
  }
  return shifted;
}

TEST(ServeIngestTest, EpochPinnedRanksAreByteIdenticalAcrossPublish) {
  TempDir dir("mivid_ingest_wire");
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir.path(), db_options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<VideoDb> db = std::move(opened).value();

  RetrievalServer server(db.get(), ServeOptions{});

  // Stream clip 1 and publish: the camera becomes searchable with
  // nothing but the ingest API — no batch load ever ran.
  const GroundTruth gt1 = SimulateTunnel(500, /*seed=*/61);
  const JsonValue ingested1 = Parse(server.HandleLine(
      IngestLine("camL", FramesFromTracks(gt1.tracks, gt1.total_frames),
                 gt1.incidents, /*cut=*/true, /*publish=*/true)));
  ASSERT_TRUE(IsOk(ingested1));
  EXPECT_EQ(IntField(ingested1, "frames"), gt1.total_frames);
  EXPECT_GE(IntField(ingested1, "clip"), 0);
  EXPECT_EQ(IntField(ingested1, "epoch"), 1);

  // Ping advertises the protocol version and epoch counters.
  const JsonValue ping = Parse(server.HandleLine(R"({"cmd":"ping"})"));
  ASSERT_TRUE(IsOk(ping));
  const JsonValue* version = ping.Find("protocol_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->string, kProtocolVersion);

  // Open a session pinned to epoch 1 and take its ranking as the
  // baseline (full response bytes, scores included).
  const JsonValue open = Parse(server.HandleLine(
      R"({"cmd":"open","session":"pin","camera":"camL"})"));
  ASSERT_TRUE(IsOk(open));
  EXPECT_EQ(IntField(open, "epoch"), 1);
  const int64_t bags_epoch1 = IntField(open, "bags");
  ASSERT_GT(bags_epoch1, 0);

  const std::string rank_cmd = R"({"cmd":"rank","session":"pin","top":-1})";
  const std::string baseline = server.HandleLine(rank_cmd);
  ASSERT_TRUE(IsOk(Parse(baseline)));

  // Stream clip 2 + publish epoch 2 while the session stays open.
  const GroundTruth gt2 = SimulateTunnel(400, /*seed=*/62);
  const int offset = gt1.total_frames;
  const JsonValue ingested2 = Parse(server.HandleLine(IngestLine(
      "camL", FramesFromTracks(gt2.tracks, gt2.total_frames, offset),
      ShiftIncidents(gt2.incidents, offset), /*cut=*/true, /*publish=*/true)));
  ASSERT_TRUE(IsOk(ingested2)) << WireError(ingested2);
  EXPECT_EQ(IntField(ingested2, "epoch"), 2);
  EXPECT_GT(IntField(ingested2, "bags_staged"), 0);

  // The pinned session's ranking must be byte-identical to the
  // pre-publish baseline — the epoch snapshot guarantee.
  EXPECT_EQ(server.HandleLine(rank_cmd), baseline);

  // Feedback advances the round; refresh must carry it across epochs.
  const JsonValue baseline_doc = Parse(baseline);
  const JsonValue* first = baseline_doc.Find("ranking");
  ASSERT_TRUE(first != nullptr && !first->array.empty());
  const int top_bag = static_cast<int>(first->array[0].Find("bag")->number);
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      StrFormat(R"({"cmd":"feedback","session":"pin","labels":)"
                R"([{"bag":%d,"label":"relevant"}]})",
                top_bag)))));

  const JsonValue refreshed = Parse(
      server.HandleLine(R"({"cmd":"refresh","session":"pin"})"));
  ASSERT_TRUE(IsOk(refreshed)) << WireError(refreshed);
  EXPECT_EQ(IntField(refreshed, "epoch"), 2);
  EXPECT_EQ(refreshed.Find("refreshed")->bool_value, true);
  EXPECT_EQ(IntField(refreshed, "round"), 1);  // feedback replayed
  const int64_t bags_epoch2 = IntField(refreshed, "bags");
  EXPECT_GT(bags_epoch2, bags_epoch1);  // the new clip's bags are visible

  // The refreshed ranking covers the grown corpus.
  const JsonValue reranked = Parse(server.HandleLine(rank_cmd));
  ASSERT_TRUE(IsOk(reranked));
  EXPECT_EQ(static_cast<int64_t>(reranked.Find("ranking")->array.size()),
            bags_epoch2);

  // A second refresh on the same epoch is a no-op.
  const JsonValue again = Parse(
      server.HandleLine(R"({"cmd":"refresh","session":"pin"})"));
  ASSERT_TRUE(IsOk(again));
  EXPECT_EQ(again.Find("refreshed")->bool_value, false);
  EXPECT_EQ(IntField(again, "round"), 1);
}

TEST(ServeIngestTest, IngestRuntimeErrorsSurfaceAsWireCodes) {
  TempDir dir("mivid_ingest_wire_err");
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir.path(), db_options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<VideoDb> db = std::move(opened).value();
  RetrievalServer server(db.get(), ServeOptions{});

  // Frames must ascend across requests on the same camera.
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"ingest","camera":"c",)"
      R"("frames":[{"frame":5,"obs":[{"track":1,"x":1,"y":1}]}]})"))));
  EXPECT_EQ(WireErrorCode(Parse(server.HandleLine(
                R"({"cmd":"ingest","camera":"c",)"
                R"("frames":[{"frame":3,"obs":[{"track":1,"x":1,"y":1}]}]})"))),
            "INVALID_ARGUMENT");

  // Cutting, then annotating an incident inside the cut-away range.
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"ingest","camera":"c","cut":true})"))));
  EXPECT_EQ(WireErrorCode(Parse(server.HandleLine(
                R"({"cmd":"ingest","camera":"c",)"
                R"("incidents":[{"type":"u_turn","begin":0,"end":2}]})"))),
            "FAILED_PRECONDITION");

  // Publishing a camera that never streamed (and has no clips) is
  // NOT_FOUND, same as opening it.
  EXPECT_EQ(WireErrorCode(Parse(server.HandleLine(
                R"({"cmd":"publish","camera":"ghost"})"))),
            "NOT_FOUND");
}

}  // namespace
}  // namespace mivid

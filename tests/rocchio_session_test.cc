// Tests for baseline/rocchio and session persistence (db/session_store,
// RetrievalSession snapshot/restore).

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "baseline/rocchio.h"
#include "common/rng.h"
#include "db/video_db.h"
#include "eval/metrics.h"
#include "retrieval/session.h"

namespace mivid {
namespace {

MilDataset MakeCorpus(int n_bags, const std::set<int>& hot, uint64_t seed) {
  Rng rng(seed);
  MilDataset ds;
  for (int b = 0; b < n_bags; ++b) {
    MilBag bag;
    bag.id = b;
    for (int i = 0; i < 2; ++i) {
      MilInstance inst;
      inst.bag_id = b;
      inst.instance_id = i;
      inst.features.assign(9, 0.0);
      for (auto& v : inst.features) v = std::fabs(rng.Gaussian(0.05, 0.04));
      if (hot.count(b) && i == 0) {
        inst.features[3] = 0.8 + rng.Uniform(-0.04, 0.04);
        inst.features[4] = 0.7 + rng.Uniform(-0.04, 0.04);
      }
      inst.raw_features = inst.features;
      bag.instances.push_back(std::move(inst));
    }
    ds.AddBag(std::move(bag));
  }
  return ds;
}

TEST(RocchioTest, UntrainedUntilRelevantFeedback) {
  MilDataset ds = MakeCorpus(10, {1}, 3);
  RocchioEngine engine(&ds, RocchioOptions{});
  EXPECT_FALSE(engine.trained());
  ASSERT_TRUE(engine.Learn().ok());  // no relevant labels: a no-op
  EXPECT_FALSE(engine.trained());
  EXPECT_TRUE(engine.Rank().empty());
}

TEST(RocchioTest, QueryPointMovesTowardRelevantCluster) {
  const std::set<int> hot{1, 2, 3, 4};
  MilDataset ds = MakeCorpus(20, hot, 5);
  for (int b : {1, 2}) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {10, 11}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);
  RocchioEngine engine(&ds, RocchioOptions{});
  ASSERT_TRUE(engine.Learn().ok());
  ASSERT_TRUE(engine.trained());
  const Vec& q = engine.query_point();
  // The relevant bags mix one hot and one noise instance; their mean has
  // elevated dims 3/4 and the update amplifies the pull.
  EXPECT_GT(q[3], 0.3);
  EXPECT_GT(q[4], 0.25);
  EXPECT_LT(q[0], 0.3);
}

TEST(RocchioTest, RanksHotBagsAboveColdOnes) {
  const std::set<int> hot{2, 5, 8, 11};
  MilDataset ds = MakeCorpus(24, hot, 7);
  for (int b : {2, 5}) (void)ds.SetLabel(b, BagLabel::kRelevant);
  for (int b : {0, 1}) (void)ds.SetLabel(b, BagLabel::kIrrelevant);
  RocchioEngine engine(&ds, RocchioOptions{});
  ASSERT_TRUE(engine.Learn().ok());
  const auto ids = RankingIds(engine.Rank());
  std::map<int, BagLabel> truth;
  for (int b = 0; b < 24; ++b) {
    truth[b] = hot.count(b) ? BagLabel::kRelevant : BagLabel::kIrrelevant;
  }
  EXPECT_GE(AccuracyAtN(ids, truth, 4), 0.75);
}

TEST(RocchioTest, GammaPushesAwayFromIrrelevant) {
  MilDataset ds = MakeCorpus(12, {1, 2}, 9);
  (void)ds.SetLabel(1, BagLabel::kRelevant);
  (void)ds.SetLabel(5, BagLabel::kIrrelevant);
  RocchioOptions with_gamma;
  with_gamma.gamma = 0.5;
  RocchioOptions without_gamma;
  without_gamma.gamma = 0.0;
  RocchioEngine a(&ds, with_gamma), b(&ds, without_gamma);
  ASSERT_TRUE(a.Learn().ok());
  ASSERT_TRUE(b.Learn().ok());
  // With gamma the query point has strictly less projection onto the
  // irrelevant direction: q_gamma . m = q_0 . m - gamma |m|^2.
  const MilBag* irr = ds.FindBag(5);
  Vec irr_mean(9, 0.0);
  for (const auto& inst : irr->instances) {
    for (size_t d = 0; d < 9; ++d) irr_mean[d] += inst.features[d] / 2;
  }
  ASSERT_GT(Norm(irr_mean), 0.0);
  EXPECT_LT(Dot(a.query_point(), irr_mean), Dot(b.query_point(), irr_mean));
}

TEST(SessionStoreTest, SnapshotRoundtrip) {
  SessionState state;
  state.camera_id = "cam-7";
  state.round = 3;
  state.labels = {{4, BagLabel::kRelevant},
                  {9, BagLabel::kIrrelevant},
                  {12, BagLabel::kRelevant}};
  Result<SessionState> back =
      DeserializeSessionState(SerializeSessionState(state));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->camera_id, "cam-7");
  EXPECT_EQ(back->round, 3);
  ASSERT_EQ(back->labels.size(), 3u);
  EXPECT_EQ(back->labels[1].first, 9);
  EXPECT_EQ(back->labels[1].second, BagLabel::kIrrelevant);
}

TEST(SessionStoreTest, DetectsCorruption) {
  SessionState state;
  state.camera_id = "x";
  std::string bytes = SerializeSessionState(state);
  bytes.back() ^= 0x1;
  EXPECT_TRUE(DeserializeSessionState(bytes).status().IsCorruption());
  EXPECT_FALSE(DeserializeSessionState("zz").ok());
}

TEST(SessionPersistenceTest, ResumeReproducesRankingExactly) {
  const std::set<int> hot{3, 7, 11, 15};
  SessionOptions options;
  options.top_n = 6;

  // Session A: two rounds of feedback, snapshot.
  RetrievalSession a(MakeCorpus(30, hot, 13), options);
  std::map<int, BagLabel> truth;
  for (int b = 0; b < 30; ++b) {
    truth[b] = hot.count(b) ? BagLabel::kRelevant : BagLabel::kIrrelevant;
  }
  for (int round = 0; round < 2; ++round) {
    std::vector<std::pair<int, BagLabel>> feedback;
    for (int id : a.TopBags()) feedback.emplace_back(id, truth.at(id));
    ASSERT_TRUE(a.SubmitFeedback(feedback).ok());
  }
  const auto labels = a.LabeledBags();
  EXPECT_FALSE(labels.empty());

  // Session B: fresh corpus, restore, identical ranking.
  RetrievalSession b(MakeCorpus(30, hot, 13), options);
  ASSERT_TRUE(b.Restore(labels, a.round()).ok());
  EXPECT_EQ(b.round(), a.round());
  EXPECT_EQ(b.TopBags(), a.TopBags());
}

TEST(SessionPersistenceTest, VideoDbSaveLoadList) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mivid_db_sessions").string();
  std::filesystem::remove_all(dir);
  VideoDbOptions options;
  options.create_if_missing = true;
  auto db = VideoDb::Open(dir, options);
  ASSERT_TRUE(db.ok());

  SessionState state;
  state.camera_id = "cam-1";
  state.round = 2;
  state.labels = {{0, BagLabel::kRelevant}};
  ASSERT_TRUE(db.value()->SaveSession("alice_accidents", state).ok());
  EXPECT_EQ(db.value()->ListSessions(),
            (std::vector<std::string>{"alice_accidents"}));
  Result<SessionState> back = db.value()->LoadSession("alice_accidents");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->camera_id, "cam-1");
  EXPECT_TRUE(db.value()->LoadSession("bob").status().IsNotFound());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mivid

// Thread-safety tests for streaming ingestion + epoch snapshots, built
// to run under -fsanitize=thread (the mivid_threading_tests binary; see
// tests/CMakeLists.txt and .github/workflows/ci.yml).
//
// The core claim of the epoch model: rankings computed against a pinned
// epoch are bit-identical no matter how much ingest/publish churn runs
// concurrently. These tests drive Publish against concurrent Snapshot +
// rank (both in-process and through the server's HandleLine path) and a
// concurrent-reader sweep over the window aggregates' products.

#include <unistd.h>
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/query_engine.h"
#include "db/video_db.h"
#include "ingest/camera_ingestor.h"
#include "retrieval/session.h"
#include "serve/corpus_manager.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_((fs::temp_directory_path() /
               (std::string(name) + "." + std::to_string(getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GroundTruth SimulateClip(int total_frames, uint64_t seed) {
  TunnelScenarioOptions options;
  options.total_frames = total_frames;
  options.num_wall_crashes = 1;
  options.num_sudden_stops = 0;
  options.num_speeding = 1;
  options.num_uturns = 0;
  options.seed = seed;
  TrafficWorld world(MakeTunnelScenario(options));
  return world.Run();
}

std::vector<FrameObservations> FramesFromTracks(
    const std::vector<Track>& tracks, int total_frames, int frame_offset) {
  std::vector<FrameObservations> frames(total_frames);
  for (int f = 0; f < total_frames; ++f) frames[f].frame = frame_offset + f;
  for (const Track& track : tracks) {
    for (const TrackPoint& point : track.points) {
      if (point.frame < 0 || point.frame >= total_frames) continue;
      TrackObservation obs;
      obs.track_id = track.id;
      obs.centroid = point.centroid;
      obs.bbox = point.bbox;
      frames[point.frame].observations.push_back(obs);
    }
  }
  return frames;
}

/// TopBags of a fresh session over the epoch's dataset — the reader-side
/// workload racing with Publish.
std::vector<int> RankEpoch(const CorpusEpoch& epoch) {
  SessionOptions options;
  options.top_n = 10;
  auto session = RetrievalSession::Create(epoch.corpus->dataset, options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (!session.ok()) return {};
  return session->TopBags();
}

TEST(IngestThreadingTest, ConcurrentPublishAndRankStayEpochConsistent) {
  TempDir dir("mivid_ingest_threads");
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir.path(), db_options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<VideoDb> db = std::move(opened).value();

  const QueryOptions query;
  CorpusManager corpora(db.get(), query);
  IngestOptions ingest;
  ingest.query = query;
  CameraIngestor ingestor("camT", db.get(), &corpora, ingest);

  // Seed clip so readers have an epoch from the start.
  constexpr int kClipFrames = 160;
  constexpr int kClips = 5;
  std::vector<GroundTruth> clips;
  for (int c = 0; c < kClips; ++c) {
    clips.push_back(SimulateClip(kClipFrames, /*seed=*/100 + c));
  }
  for (const auto& frame :
       FramesFromTracks(clips[0].tracks, kClipFrames, 0)) {
    ASSERT_TRUE(ingestor.Observe(frame).ok());
  }
  ASSERT_TRUE(ingestor.Cut().ok());
  ASSERT_TRUE(corpora.Publish("camT").ok());

  // Writer: streams the remaining clips, cutting + publishing each.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int c = 1; c < kClips; ++c) {
      const int offset = c * kClipFrames;
      for (const auto& frame :
           FramesFromTracks(clips[c].tracks, kClipFrames, offset)) {
        ASSERT_TRUE(ingestor.Observe(frame).ok());
      }
      ASSERT_TRUE(ingestor.Cut().ok());
      ASSERT_TRUE(corpora.Publish("camT").ok());
    }
    done.store(true);
  });

  // Readers: snapshot, rank, and verify that re-ranking the *same*
  // pinned epoch reproduces the same bags while publishes land.
  std::vector<std::thread> readers;
  std::atomic<int> iterations{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        auto epoch = corpora.Snapshot("camT");
        ASSERT_TRUE(epoch.ok());
        const std::vector<int> first = RankEpoch(*epoch.value());
        const std::vector<int> second = RankEpoch(*epoch.value());
        ASSERT_EQ(first, second);  // pinned epoch => identical ranking
        iterations.fetch_add(1);
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(iterations.load(), 0);

  const auto last = corpora.Snapshot("camT");
  ASSERT_TRUE(last.ok());
  EXPECT_GE(last.value()->id, static_cast<uint64_t>(kClips));
  EXPECT_EQ(corpora.stats().tail_clips, 0u);
}

TEST(IngestThreadingTest, ConcurrentSnapshotsColdLoadOnce) {
  TempDir dir("mivid_ingest_threads_cold");
  VideoDbOptions db_options;
  db_options.create_if_missing = true;
  auto opened = VideoDb::Open(dir.path(), db_options);
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<VideoDb> db = std::move(opened).value();

  const GroundTruth gt = SimulateClip(200, /*seed=*/7);
  ClipInfo info;
  info.camera_id = "camC";
  info.total_frames = gt.total_frames;
  ASSERT_TRUE(db->IngestClip(info, gt.tracks, gt.incidents).ok());

  const QueryOptions query;
  CorpusManager corpora(db.get(), query);
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const CorpusEpoch>> seen(8);
  for (size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&, t] {
      auto epoch = corpora.Snapshot("camC");
      ASSERT_TRUE(epoch.ok());
      seen[t] = epoch.value();
    });
  }
  for (std::thread& t : threads) t.join();
  // Single-flight: everyone got the same epoch-1 object, one miss.
  for (const auto& epoch : seen) {
    ASSERT_NE(epoch, nullptr);
    EXPECT_EQ(epoch.get(), seen[0].get());
  }
  EXPECT_EQ(corpora.stats().misses, 1u);
}

}  // namespace
}  // namespace mivid

// Tests for retrieval/ and baseline/: heuristic ranking, the MIL engine
// (training-set policies, Eq. 9), the session loop, weighted RF.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baseline/weighted_rf.h"
#include "common/rng.h"
#include "retrieval/session.h"

namespace mivid {
namespace {

/// Builds a synthetic corpus: `n_bags` bags; bags whose id is in
/// `hot_bags` contain one "incident" instance (large feature values at one
/// checkpoint) plus normal instances; others contain only normal ones.
/// Feature layout: 3 checkpoints x 3 features, both views identical.
MilDataset MakeCorpus(int n_bags, const std::set<int>& hot_bags,
                      uint64_t seed) {
  Rng rng(seed);
  MilDataset ds;
  for (int b = 0; b < n_bags; ++b) {
    MilBag bag;
    bag.id = b;
    const int n_inst = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int i = 0; i < n_inst; ++i) {
      MilInstance inst;
      inst.bag_id = b;
      inst.instance_id = i;
      inst.features.assign(9, 0.0);
      for (auto& v : inst.features) v = std::fabs(rng.Gaussian(0.05, 0.03));
      if (hot_bags.count(b) && i == 0) {
        // Incident signature at the middle checkpoint.
        inst.features[3] = 0.8 + rng.Uniform(0, 0.2);
        inst.features[4] = 0.7 + rng.Uniform(0, 0.2);
        inst.features[5] = 0.6 + rng.Uniform(0, 0.2);
      }
      inst.raw_features = inst.features;
      bag.instances.push_back(std::move(inst));
    }
    ds.AddBag(std::move(bag));
  }
  return ds;
}

TEST(HeuristicTest, InstanceScoreIsMaxCheckpointSquareSum) {
  const EventModel m = EventModel::Accident(3);
  const Vec flat{0.1, 0.0, 0.0,   // checkpoint 1: 0.01
                 0.5, 0.5, 0.0,   // checkpoint 2: 0.5
                 0.2, 0.2, 0.2};  // checkpoint 3: 0.12
  EXPECT_NEAR(HeuristicInstanceScore(flat, m, 3), 0.5, 1e-12);
}

TEST(HeuristicTest, RankingIsDescendingAndComplete) {
  const MilDataset ds = MakeCorpus(30, {3, 7, 11}, 5);
  const auto ranking = HeuristicRanking(ds, EventModel::Accident(3), 3);
  ASSERT_EQ(ranking.size(), 30u);
  for (size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].score, ranking[i].score);
  }
  // Hot bags occupy the top 3.
  std::set<int> top{ranking[0].bag_id, ranking[1].bag_id, ranking[2].bag_id};
  EXPECT_EQ(top, (std::set<int>{3, 7, 11}));
  EXPECT_EQ(TopIds(ranking, 2).size(), 2u);
}

TEST(MilRfEngineTest, RequiresRelevantFeedback) {
  MilDataset ds = MakeCorpus(10, {1}, 7);
  MilRfOptions options;
  MilRfEngine engine(&ds, options);
  EXPECT_TRUE(engine.Learn().IsFailedPrecondition());
  EXPECT_FALSE(engine.trained());
  EXPECT_TRUE(engine.Rank().empty());
}

TEST(MilRfEngineTest, LearnsAndRanksHotBagsHigh) {
  std::set<int> hot{2, 5, 8, 12, 15, 18};
  MilDataset ds = MakeCorpus(40, hot, 9);
  // Label half of the hot bags relevant, a few cold ones irrelevant.
  for (int b : {2, 5, 8}) ASSERT_TRUE(ds.SetLabel(b, BagLabel::kRelevant).ok());
  for (int b : {0, 1, 3}) {
    ASSERT_TRUE(ds.SetLabel(b, BagLabel::kIrrelevant).ok());
  }
  MilRfOptions options;
  MilRfEngine engine(&ds, options);
  ASSERT_TRUE(engine.Learn().ok());
  EXPECT_TRUE(engine.trained());
  const auto ranking = engine.Rank();
  ASSERT_EQ(ranking.size(), 40u);
  // All six hot bags should rank in the top 10.
  std::set<int> top10;
  for (size_t i = 0; i < 10; ++i) top10.insert(ranking[i].bag_id);
  for (int b : hot) EXPECT_TRUE(top10.count(b)) << "hot bag " << b;
}

TEST(MilRfEngineTest, Equation9NuComputation) {
  // 3 relevant bags; with kAllInstances the training set is all their
  // instances; nu = 1 - (3/H + 0.05), clamped.
  std::set<int> hot{0, 1, 2};
  MilDataset ds = MakeCorpus(6, hot, 11);
  for (int b : hot) ASSERT_TRUE(ds.SetLabel(b, BagLabel::kRelevant).ok());
  size_t h_total = 0;
  for (int b : hot) h_total += ds.FindBag(b)->instances.size();

  MilRfOptions options;
  options.policy = TrainingSetPolicy::kAllInstances;
  MilRfEngine engine(&ds, options);
  ASSERT_TRUE(engine.Learn().ok());
  EXPECT_EQ(engine.last_training_size(), h_total);
  const double expected =
      std::clamp(1.0 - (3.0 / static_cast<double>(h_total) + 0.05),
                 options.min_nu, options.max_nu);
  EXPECT_NEAR(engine.last_nu(), expected, 1e-12);
}

TEST(MilRfEngineTest, TopScoredPolicyShrinksTrainingSet) {
  std::set<int> hot{0, 1, 2, 3};
  MilDataset ds = MakeCorpus(8, hot, 13);
  for (int b : hot) ASSERT_TRUE(ds.SetLabel(b, BagLabel::kRelevant).ok());

  MilRfOptions all;
  all.policy = TrainingSetPolicy::kAllInstances;
  MilRfEngine engine_all(&ds, all);
  ASSERT_TRUE(engine_all.Learn().ok());

  MilRfOptions top;
  top.policy = TrainingSetPolicy::kTopScoredInstances;
  MilRfEngine engine_top(&ds, top);
  ASSERT_TRUE(engine_top.Learn().ok());

  MilRfOptions one;
  one.policy = TrainingSetPolicy::kTopInstancePerBag;
  MilRfEngine engine_one(&ds, one);
  ASSERT_TRUE(engine_one.Learn().ok());

  EXPECT_LE(engine_top.last_training_size(), engine_all.last_training_size());
  EXPECT_EQ(engine_one.last_training_size(), 4u);
  EXPECT_GE(engine_top.last_training_size(), 4u);
}

TEST(MilRfEngineTest, AutoSigmaAdaptsToTrainingSpread) {
  std::set<int> hot{0, 1, 2, 3, 4};
  MilDataset ds = MakeCorpus(10, hot, 17);
  for (int b : hot) ASSERT_TRUE(ds.SetLabel(b, BagLabel::kRelevant).ok());
  MilRfOptions options;
  options.auto_sigma = true;
  MilRfEngine engine(&ds, options);
  ASSERT_TRUE(engine.Learn().ok());
  // Sigma was replaced by a data-driven value, not the 0.5 default.
  EXPECT_NE(engine.model()->kernel().sigma, options.kernel.sigma);
  EXPECT_GT(engine.model()->kernel().sigma, 0.0);

  options.auto_sigma = false;
  MilRfEngine fixed(&ds, options);
  ASSERT_TRUE(fixed.Learn().ok());
  EXPECT_DOUBLE_EQ(fixed.model()->kernel().sigma, options.kernel.sigma);
}

TEST(SessionTest, ColdStartUsesHeuristicThenSwitchesToSvm) {
  SessionOptions options;
  options.top_n = 5;
  RetrievalSession session(MakeCorpus(30, {3, 7, 11, 19}, 19), options);
  EXPECT_EQ(session.round(), 0);

  const auto top0 = session.TopBags();
  ASSERT_EQ(top0.size(), 5u);
  EXPECT_FALSE(session.engine().trained());

  // All-irrelevant feedback keeps the heuristic ranking.
  std::vector<std::pair<int, BagLabel>> labels;
  for (int id : top0) labels.emplace_back(id, BagLabel::kIrrelevant);
  labels[0].second = BagLabel::kIrrelevant;
  ASSERT_TRUE(session.SubmitFeedback(labels).ok());
  EXPECT_EQ(session.round(), 1);
  EXPECT_FALSE(session.engine().trained());

  // One relevant label triggers learning.
  ASSERT_TRUE(
      session.SubmitFeedback({{3, BagLabel::kRelevant}}).ok());
  EXPECT_TRUE(session.engine().trained());
  EXPECT_EQ(session.round(), 2);
  EXPECT_EQ(session.TopBags().size(), 5u);
}

TEST(SessionTest, FeedbackForUnknownBagFails) {
  RetrievalSession session(MakeCorpus(5, {}, 23), SessionOptions{});
  EXPECT_TRUE(
      session.SubmitFeedback({{999, BagLabel::kRelevant}}).IsNotFound());
}

TEST(WeightedRfTest, InitialWeightsAreUniformOnes) {
  MilDataset ds = MakeCorpus(10, {2}, 29);
  WeightedRfEngine engine(&ds, WeightedRfOptions{});
  EXPECT_EQ(engine.weights(), (Vec{1.0, 1.0, 1.0}));
  // Round-0 ranking equals the accident heuristic ranking.
  const auto wr = engine.Rank();
  const auto hr = HeuristicRanking(ds, EventModel::Accident(3), 3);
  ASSERT_EQ(wr.size(), hr.size());
  for (size_t i = 0; i < wr.size(); ++i) {
    EXPECT_EQ(wr[i].bag_id, hr[i].bag_id);
  }
}

TEST(WeightedRfTest, LearnUpdatesWeightsFromRelevantBags) {
  MilDataset ds = MakeCorpus(20, {1, 2, 3, 4}, 31);
  for (int b : {1, 2, 3, 4}) {
    ASSERT_TRUE(ds.SetLabel(b, BagLabel::kRelevant).ok());
  }
  WeightedRfOptions options;
  options.normalization = WeightNormalization::kPercentage;
  WeightedRfEngine engine(&ds, options);
  ASSERT_TRUE(engine.Learn().ok());
  const Vec& w = engine.weights();
  ASSERT_EQ(w.size(), 3u);
  double total = 0;
  for (double x : w) {
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);  // percentage normalization
}

TEST(WeightedRfTest, NormalizationModes) {
  MilDataset ds = MakeCorpus(20, {1, 2, 3}, 37);
  for (int b : {1, 2, 3}) ASSERT_TRUE(ds.SetLabel(b, BagLabel::kRelevant).ok());

  WeightedRfOptions none;
  none.normalization = WeightNormalization::kNone;
  WeightedRfEngine e_none(&ds, none);
  ASSERT_TRUE(e_none.Learn().ok());

  WeightedRfOptions linear;
  linear.normalization = WeightNormalization::kLinear;
  WeightedRfEngine e_lin(&ds, linear);
  ASSERT_TRUE(e_lin.Learn().ok());
  double lo = 1e18, hi = -1e18;
  for (double x : e_lin.weights()) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_NEAR(lo, 0.0, 1e-12);  // linear maps min weight to 0
  EXPECT_NEAR(hi, 1.0, 1e-12);

  // Raw weights are 1/std and unnormalized.
  for (double x : e_none.weights()) EXPECT_GT(x, 0.0);
  EXPECT_STREQ(WeightNormalizationName(WeightNormalization::kPercentage),
               "percentage");
}

TEST(WeightedRfTest, NoRelevantFeedbackKeepsWeights) {
  MilDataset ds = MakeCorpus(10, {}, 41);
  WeightedRfEngine engine(&ds, WeightedRfOptions{});
  ASSERT_TRUE(engine.Learn().ok());
  EXPECT_EQ(engine.weights(), (Vec{1.0, 1.0, 1.0}));
}

}  // namespace
}  // namespace mivid

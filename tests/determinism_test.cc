// Determinism regression tests for the parallel execution layer: every
// parallel hot path (Gram construction, SVM training, bag ranking, SPCPE,
// the vision pipeline) must produce bit-identical results at any thread
// count. See docs/performance.md for the guarantee and how it is kept.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "eval/experiment.h"
#include "retrieval/heuristic.h"
#include "svm/kernel_cache.h"
#include "svm/one_class_svm.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

std::vector<Vec> RandomPoints(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> points(n, Vec(dim));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Uniform();
  }
  return points;
}

/// Runs `fn` once at 1 thread and once at 8, restoring the default after.
template <typename Fn>
void AtThreadCounts(const Fn& fn, decltype(fn()) * serial,
                    decltype(fn()) * parallel) {
  SetGlobalThreadCount(1);
  *serial = fn();
  SetGlobalThreadCount(8);
  *parallel = fn();
  SetGlobalThreadCount(0);
}

TEST(DeterminismTest, GramMatrixBitIdenticalAcrossThreadCounts) {
  const auto points = RandomPoints(64, 9, 7);
  for (const KernelType type :
       {KernelType::kRbf, KernelType::kLinear, KernelType::kPoly}) {
    KernelParams params;
    params.type = type;
    auto build = [&] {
      GramMatrix gram(params, points);
      std::vector<double> flat;
      flat.reserve(points.size() * points.size());
      for (size_t i = 0; i < gram.size(); ++i) {
        for (size_t j = 0; j < gram.size(); ++j) flat.push_back(gram.At(i, j));
      }
      return flat;
    };
    std::vector<double> serial, parallel;
    AtThreadCounts(build, &serial, &parallel);
    EXPECT_EQ(serial, parallel) << "kernel type " << static_cast<int>(type);
  }
}

TEST(DeterminismTest, CachedGramMatchesUncached) {
  const auto points = RandomPoints(48, 9, 21);
  std::vector<InstanceKey> ids(points.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = {static_cast<int>(i / 4), static_cast<int>(i % 4)};
  }
  KernelParams params;  // RBF
  const GramMatrix uncached(params, points);

  KernelCache cache;
  // Two passes: the second is served entirely from the cache.
  (void)cache.PairwiseSquaredDistances(points, ids);
  const Matrix d2 = cache.PairwiseSquaredDistances(points, ids);
  EXPECT_GT(cache.hits(), 0u);
  const GramMatrix cached(params, d2);

  ASSERT_EQ(cached.size(), uncached.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    for (size_t j = 0; j < cached.size(); ++j) {
      EXPECT_EQ(cached.At(i, j), uncached.At(i, j)) << i << "," << j;
    }
  }
}

TEST(DeterminismTest, OneClassSvmTrainingIdenticalAcrossThreadCounts) {
  const auto points = RandomPoints(120, 9, 33);
  OneClassSvmOptions options;
  options.nu = 0.25;
  auto train = [&] {
    auto model = OneClassSvmTrainer(options).Train(points);
    Vec signature{model->rho(),
                  static_cast<double>(model->num_support_vectors()),
                  static_cast<double>(model->iterations_used())};
    for (const double a : model->coefficients()) signature.push_back(a);
    for (const auto& q : RandomPoints(10, 9, 5)) {
      signature.push_back(model->DecisionValue(q));
    }
    return signature;
  };
  Vec serial, parallel;
  AtThreadCounts(train, &serial, &parallel);
  EXPECT_EQ(serial, parallel);
}

TEST(DeterminismTest, ExperimentIdenticalAcrossThreadCounts) {
  // End-to-end through the *vision* pipeline: render -> background ->
  // SPCPE (parallel sweeps) -> parallel per-frame refinement -> tracking
  // -> MIL feedback rounds with parallel Gram/ranking.
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 400;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
  ExperimentOptions options;
  options.pipeline = PipelineMode::kVisionTracks;
  options.feedback_rounds = 2;

  struct Outcome {
    std::vector<std::vector<double>> curves;
    std::vector<int> top20;
    bool operator==(const Outcome&) const = default;
  };
  auto run = [&] {
    Outcome out;
    auto analysis = AnalyzeScenario(scenario, options);
    EXPECT_TRUE(analysis.ok());
    auto result = RunRfExperimentOnAnalysis(*analysis, scenario.name,
                                            scenario.total_frames, options);
    EXPECT_TRUE(result.ok());
    for (const auto& curve : result->curves) {
      out.curves.push_back(curve.accuracy);
    }
    // Top-20 of the final MIL ranking, rebuilt explicitly.
    MilDataset dataset = analysis->dataset;
    MilRfOptions mil = options.mil;
    mil.base_dim = analysis->scaler.dimension();
    MilRfEngine engine(&dataset, mil);
    const EventModel heuristic =
        EventModel::Accident(analysis->scaler.dimension());
    const auto initial =
        HeuristicRanking(dataset, heuristic, mil.base_dim);
    for (size_t i = 0; i < initial.size() && i < 20; ++i) {
      (void)dataset.SetLabel(
          initial[i].bag_id,
          analysis->truth.count(initial[i].bag_id)
              ? analysis->truth.at(initial[i].bag_id)
              : BagLabel::kIrrelevant);
    }
    EXPECT_TRUE(engine.Learn().ok());
    out.top20 = TopIds(engine.Rank(), 20);
    return out;
  };
  Outcome serial, parallel;
  AtThreadCounts(run, &serial, &parallel);
  EXPECT_EQ(serial.curves, parallel.curves);
  EXPECT_EQ(serial.top20, parallel.top20);
  ASSERT_FALSE(serial.curves.empty());
  ASSERT_FALSE(serial.top20.empty());
}

TEST(DeterminismTest, KernelCacheAccumulatesAcrossRounds) {
  // Feedback rounds grow the training set; previously seen pairs must be
  // cache hits and the resulting model must not depend on cache history.
  const auto points = RandomPoints(30, 6, 55);
  std::vector<InstanceKey> ids(points.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = {static_cast<int>(i), 0};
  }
  KernelCache cache;
  std::vector<Vec> round1(points.begin(), points.begin() + 20);
  std::vector<InstanceKey> ids1(ids.begin(), ids.begin() + 20);
  (void)cache.PairwiseSquaredDistances(round1, ids1);
  const uint64_t misses_after_round1 = cache.misses();
  EXPECT_EQ(misses_after_round1, 20u * 19u / 2u);

  const Matrix d2 = cache.PairwiseSquaredDistances(points, ids);
  // Round 2 adds 10 instances: only pairs touching them are new.
  EXPECT_EQ(cache.misses() - misses_after_round1,
            30u * 29u / 2u - 20u * 19u / 2u);
  EXPECT_EQ(cache.hits(), 20u * 19u / 2u);

  KernelCache fresh;
  const Matrix d2_fresh = fresh.PairwiseSquaredDistances(points, ids);
  EXPECT_EQ(d2.MaxAbsDiff(d2_fresh), 0.0);
}

}  // namespace
}  // namespace mivid

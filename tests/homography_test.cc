// Tests for geometry/homography: DLT estimation, transforms, track
// normalization. Parameterized property sweep over random projective maps.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/homography.h"

namespace mivid {
namespace {

TEST(HomographyTest, IdentityByDefault) {
  Homography h;
  const Point2 p{12.5, -3.25};
  EXPECT_NEAR(Distance(h.Apply(p), p), 0.0, 1e-12);
}

TEST(HomographyTest, RecoversPureTranslation) {
  const std::vector<Point2> src{{0, 0}, {10, 0}, {0, 10}, {10, 10}};
  std::vector<Point2> dst;
  for (const auto& p : src) dst.push_back({p.x + 5, p.y - 3});
  Result<Homography> h = Homography::Estimate(src, dst);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_LT(h->MaxTransferError(src, dst), 1e-8);
  EXPECT_NEAR(h->Apply({4.0, 4.0}).x, 9.0, 1e-8);
}

TEST(HomographyTest, RecoversSimilarityTransform) {
  // Rotation by 30 degrees, scale 2, translation (7, -1).
  const double c = std::cos(M_PI / 6), s = std::sin(M_PI / 6);
  auto map = [&](const Point2& p) {
    return Point2{2 * (c * p.x - s * p.y) + 7, 2 * (s * p.x + c * p.y) - 1};
  };
  std::vector<Point2> src{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 3}};
  std::vector<Point2> dst;
  for (const auto& p : src) dst.push_back(map(p));
  Result<Homography> h = Homography::Estimate(src, dst);
  ASSERT_TRUE(h.ok());
  EXPECT_LT(h->MaxTransferError(src, dst), 1e-7);
  EXPECT_LT(Distance(h->Apply({3.0, 8.0}), map({3.0, 8.0})), 1e-7);
}

/// Property: a random (well-conditioned) projective map is recovered from
/// noiseless correspondences, and the inverse undoes it.
class HomographyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HomographyPropertyTest, RoundtripsRandomProjectiveMaps) {
  Rng rng(100 + static_cast<uint64_t>(GetParam()));
  Matrix m = Matrix::Identity(3);
  m.At(0, 0) = rng.Uniform(0.7, 1.4);
  m.At(0, 1) = rng.Uniform(-0.3, 0.3);
  m.At(0, 2) = rng.Uniform(-30, 30);
  m.At(1, 0) = rng.Uniform(-0.3, 0.3);
  m.At(1, 1) = rng.Uniform(0.7, 1.4);
  m.At(1, 2) = rng.Uniform(-30, 30);
  m.At(2, 0) = rng.Uniform(-0.001, 0.001);
  m.At(2, 1) = rng.Uniform(-0.001, 0.001);
  const Homography truth(m);

  std::vector<Point2> src, dst;
  for (int i = 0; i < 12; ++i) {
    const Point2 p{rng.Uniform(0, 320), rng.Uniform(0, 240)};
    src.push_back(p);
    dst.push_back(truth.Apply(p));
  }
  Result<Homography> h = Homography::Estimate(src, dst);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_LT(h->MaxTransferError(src, dst), 1e-6);

  // Inverse maps dst back to src.
  Result<Homography> inv = h->Inverse();
  ASSERT_TRUE(inv.ok());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_LT(Distance(inv->Apply(dst[i]), src[i]), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HomographyPropertyTest,
                         ::testing::Range(0, 8));

TEST(HomographyTest, NoisyCorrespondencesFitInLeastSquares) {
  Rng rng(55);
  Matrix m = Matrix::Identity(3);
  m.At(0, 2) = 12;
  m.At(1, 2) = -7;
  const Homography truth(m);
  std::vector<Point2> src, dst;
  for (int i = 0; i < 30; ++i) {
    const Point2 p{rng.Uniform(0, 320), rng.Uniform(0, 240)};
    src.push_back(p);
    Point2 q = truth.Apply(p);
    dst.push_back({q.x + rng.Gaussian(0, 0.5), q.y + rng.Gaussian(0, 0.5)});
  }
  Result<Homography> h = Homography::Estimate(src, dst);
  ASSERT_TRUE(h.ok());
  EXPECT_LT(h->MaxTransferError(src, dst), 3.0);
}

TEST(HomographyTest, RejectsTooFewOrDegenerate) {
  EXPECT_FALSE(
      Homography::Estimate({{0, 0}, {1, 1}, {2, 2}}, {{0, 0}, {1, 1}, {2, 2}})
          .ok());
  // All collinear points: no unique homography.
  std::vector<Point2> line;
  for (int i = 0; i < 6; ++i) line.push_back({1.0 * i, 2.0 * i});
  EXPECT_FALSE(Homography::Estimate(line, line).ok());
}

TEST(HomographyTest, TransformTrackMapsCentroidsAndBoxes) {
  Matrix m = Matrix::Identity(3);
  m.At(0, 0) = 2;  // scale x by 2
  m.At(1, 2) = 10; // shift y by 10
  const Homography h(m);
  Track track;
  track.id = 4;
  track.points = {{0, {5, 5}, BBox(4, 4, 6, 6)},
                  {5, {10, 5}, BBox(9, 4, 11, 6)}};
  const Track out = TransformTrack(track, h);
  EXPECT_EQ(out.id, 4);
  ASSERT_EQ(out.points.size(), 2u);
  EXPECT_NEAR(out.points[0].centroid.x, 10.0, 1e-12);
  EXPECT_NEAR(out.points[0].centroid.y, 15.0, 1e-12);
  EXPECT_NEAR(out.points[0].bbox.min_x, 8.0, 1e-12);
  EXPECT_NEAR(out.points[0].bbox.max_x, 12.0, 1e-12);
  EXPECT_NEAR(out.points[1].bbox.min_y, 14.0, 1e-12);
}

TEST(HomographyTest, CrossCameraNormalizationAlignsTracks) {
  // Two "cameras" view the same road plane through different homographies.
  // Normalizing both tracks into the plane makes them comparable.
  Matrix cam_a = Matrix::Identity(3);
  cam_a.At(0, 0) = 1.5;
  cam_a.At(0, 2) = 20;
  Matrix cam_b = Matrix::Identity(3);
  cam_b.At(1, 1) = 0.8;
  cam_b.At(1, 2) = -5;
  cam_b.At(2, 0) = 0.0005;
  const Homography view_a(cam_a), view_b(cam_b);

  // A vehicle drives straight in plane coordinates.
  Track plane_track;
  plane_track.id = 0;
  for (int f = 0; f <= 50; f += 5) {
    plane_track.points.push_back({f, {10.0 + 3.0 * f, 100.0}, {}});
  }
  const Track seen_a = TransformTrack(plane_track, view_a);
  const Track seen_b = TransformTrack(plane_track, view_b);

  // Calibrate each camera from 4 known ground markers.
  const std::vector<Point2> markers{{0, 80}, {300, 80}, {0, 160}, {300, 160},
                                    {150, 120}};
  std::vector<Point2> seen_markers_a, seen_markers_b;
  for (const auto& p : markers) {
    seen_markers_a.push_back(view_a.Apply(p));
    seen_markers_b.push_back(view_b.Apply(p));
  }
  Result<Homography> norm_a = Homography::Estimate(seen_markers_a, markers);
  Result<Homography> norm_b = Homography::Estimate(seen_markers_b, markers);
  ASSERT_TRUE(norm_a.ok());
  ASSERT_TRUE(norm_b.ok());

  const Track recovered_a = TransformTrack(seen_a, norm_a.value());
  const Track recovered_b = TransformTrack(seen_b, norm_b.value());
  for (size_t i = 0; i < plane_track.points.size(); ++i) {
    EXPECT_LT(Distance(recovered_a.points[i].centroid,
                       plane_track.points[i].centroid),
              1e-5);
    EXPECT_LT(Distance(recovered_a.points[i].centroid,
                       recovered_b.points[i].centroid),
              1e-5);
  }
}

}  // namespace
}  // namespace mivid

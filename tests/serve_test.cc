// Tests for src/serve/: protocol parsing, corpus cache, session manager
// journaling/resume, the request loop (admission, backpressure, errors),
// and the serve-vs-in-process bit-identical-ranking guarantee.

#include <unistd.h>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "db/codec.h"
#include "db/query_engine.h"
#include "db/video_db.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/corpus_manager.h"
#include "serve/server.h"
#include "trafficsim/scenarios.h"

namespace mivid {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  // The pid suffix keeps concurrent test processes (ctest -j runs each
  // gtest case in its own process) from clobbering each other's db.
  explicit TempDir(const char* name)
      : path_((fs::temp_directory_path() /
               (std::string(name) + "." + std::to_string(getpid())))
                  .string()) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// One database shared by every test in this file: two cameras, each one
/// simulated tunnel clip with incidents (ground-truth tracks, so corpus
/// extraction is fast and deterministic).
struct ServeTestEnv {
  TempDir dir{"mivid_serve_test"};
  std::unique_ptr<VideoDb> db;
};

ServeTestEnv& Env() {
  static ServeTestEnv* env = [] {
    auto* e = new ServeTestEnv();
    VideoDbOptions options;
    options.create_if_missing = true;
    auto opened = VideoDb::Open(e->dir.path(), options);
    if (!opened.ok()) std::abort();
    e->db = std::move(opened).value();
    for (const char* camera : {"camA", "camB"}) {
      TunnelScenarioOptions scenario_options;
      scenario_options.total_frames = 700;
      scenario_options.num_wall_crashes = 1;
      scenario_options.num_sudden_stops = 1;
      scenario_options.num_speeding = 0;
      scenario_options.num_uturns = 0;
      const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);
      TrafficWorld world(scenario);
      const GroundTruth gt = world.Run();
      ClipInfo info;
      info.camera_id = camera;
      info.total_frames = scenario.total_frames;
      if (!e->db->IngestClip(info, gt.tracks, gt.incidents).ok()) std::abort();
    }
    return e;
  }();
  return *env;
}

JsonValue Parse(const std::string& response) {
  Result<JsonValue> doc = ParseJson(response);
  EXPECT_TRUE(doc.ok()) << response;
  return doc.ok() ? std::move(doc).value() : JsonValue{};
}

bool IsOk(const JsonValue& doc) {
  const JsonValue* ok = doc.Find("ok");
  return ok != nullptr && ok->type == JsonValue::Type::kBool && ok->bool_value;
}

std::string ErrorCode(const JsonValue& doc) {
  const JsonValue* code = doc.Find("code");
  return code != nullptr ? code->string : "";
}

/// Bag ids + scores from a rank response, in rank order.
struct WireRanking {
  std::vector<int> bags;
  std::vector<double> scores;
};

WireRanking GetRanking(const JsonValue& doc) {
  WireRanking out;
  const JsonValue* ranking = doc.Find("ranking");
  EXPECT_TRUE(ranking != nullptr && ranking->is_array());
  if (ranking == nullptr) return out;
  for (const JsonValue& item : ranking->array) {
    const JsonValue* bag = item.Find("bag");
    const JsonValue* score = item.Find("score");
    EXPECT_TRUE(bag != nullptr && bag->is_number());
    EXPECT_TRUE(score != nullptr && score->is_number());
    out.bags.push_back(static_cast<int>(bag->number));
    out.scores.push_back(score->number);
  }
  return out;
}

std::string LabelsJson(const std::vector<std::pair<int, BagLabel>>& labels) {
  std::string out = "[";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"bag\":" + std::to_string(labels[i].first) + ",\"label\":\"" +
           BagLabelWireName(labels[i].second) + "\"}";
  }
  out += ']';
  return out;
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocolTest, ParsesCommands) {
  auto open = ParseServeRequest(
      R"({"cmd":"open","session":"s1","camera":"camA","engine":"weighted"})");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->cmd, ServeCmd::kOpen);
  EXPECT_EQ(open->session_id, "s1");
  EXPECT_EQ(open->camera_id, "camA");
  EXPECT_EQ(open->engine, "weighted");

  auto rank = ParseServeRequest(R"({"cmd":"rank","session":"s1","top":-1})");
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(rank->top, -1);

  auto feedback = ParseServeRequest(
      R"({"cmd":"feedback","session":"s1",)"
      R"("labels":[{"bag":3,"label":"relevant"},{"bag":9,"label":"irrelevant"}]})");
  ASSERT_TRUE(feedback.ok()) << feedback.status().ToString();
  ASSERT_EQ(feedback->labels.size(), 2u);
  EXPECT_EQ(feedback->labels[0], (std::pair<int, BagLabel>{3, BagLabel::kRelevant}));
  EXPECT_EQ(feedback->labels[1],
            (std::pair<int, BagLabel>{9, BagLabel::kIrrelevant}));

  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"stats"})").ok());
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"shutdown"})").ok());
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  EXPECT_TRUE(ParseServeRequest("not json").status().IsInvalidArgument());
  EXPECT_TRUE(ParseServeRequest(R"(["cmd"])").status().IsInvalidArgument());
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"nope"})").status().IsInvalidArgument());
  // session required for session commands
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"rank"})").status().IsInvalidArgument());
  // bad session id (would escape the journal namespace)
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"rank","session":"../x"})")
                  .status()
                  .IsInvalidArgument());
  // bad label
  EXPECT_TRUE(ParseServeRequest(
                  R"({"cmd":"feedback","session":"s","labels":[{"bag":1,"label":"meh"}]})")
                  .status()
                  .IsInvalidArgument());
  // labels must be non-empty
  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"feedback","session":"s","labels":[]})")
                  .status()
                  .IsInvalidArgument());
}

TEST(ServeProtocolTest, ValidSessionIds) {
  EXPECT_TRUE(ValidSessionId("user-1.session_2"));
  EXPECT_FALSE(ValidSessionId(""));
  EXPECT_FALSE(ValidSessionId("a/b"));
  EXPECT_FALSE(ValidSessionId(std::string(65, 'a')));
}

TEST(ServeProtocolTest, ErrorResponseCarriesWireCode) {
  const JsonValue doc =
      Parse(ErrorResponse(Status::ResourceExhausted("queue full")));
  EXPECT_FALSE(IsOk(doc));
  EXPECT_EQ(ErrorCode(doc), "RESOURCE_EXHAUSTED");
  const JsonValue* error = doc.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->string, "queue full");

  EXPECT_EQ(ErrorCode(Parse(ErrorResponse(Status::DataLoss("x")))),
            "DATA_LOSS");
  EXPECT_EQ(ErrorCode(Parse(ErrorResponse(Status::NotFound("x")))),
            "NOT_FOUND");
}

// ---------------------------------------------------------------------------
// Corpus cache

TEST(CorpusManagerTest, CachesAndCountsSingleLoad) {
  CorpusManager corpora(Env().db.get(), QueryOptions{});
  auto first = corpora.Snapshot("camA");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value()->id, 1u);  // cold load publishes epoch 1
  auto second = corpora.Snapshot("camA");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());  // same epoch object

  const CorpusManager::Stats stats = corpora.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.cached, 1u);

  // Publish with an empty tail is an idempotent no-op on the same epoch.
  auto republished = corpora.Publish("camA");
  ASSERT_TRUE(republished.ok());
  EXPECT_EQ(republished.value().get(), first.value().get());
  EXPECT_EQ(corpora.stats().publishes, 0u);

  EXPECT_TRUE(corpora.Snapshot("cam-none").status().IsNotFound());
  // failed loads are not cached
  EXPECT_TRUE(corpora.Snapshot("cam-none").status().IsNotFound());
  EXPECT_EQ(corpora.stats().cached, 1u);
}

// ---------------------------------------------------------------------------
// Request loop

ServeOptions TestServeOptions() {
  ServeOptions options;  // no socket: tests drive HandleLine in-process
  return options;
}

TEST(ServeServerTest, OpenRankFeedbackCloseConversation) {
  RetrievalServer server(Env().db.get(), TestServeOptions());

  JsonValue open = Parse(server.HandleLine(
      R"({"cmd":"open","session":"conv","camera":"camA"})"));
  ASSERT_TRUE(IsOk(open)) << ErrorCode(open);
  EXPECT_EQ(open.Find("engine")->string, "milrf");
  EXPECT_FALSE(open.Find("resumed")->bool_value);
  EXPECT_GT(open.Find("bags")->number, 0);

  JsonValue rank =
      Parse(server.HandleLine(R"({"cmd":"rank","session":"conv","top":-1})"));
  ASSERT_TRUE(IsOk(rank));
  EXPECT_FALSE(rank.Find("trained")->bool_value);
  WireRanking ranking = GetRanking(rank);
  ASSERT_FALSE(ranking.bags.empty());
  EXPECT_EQ(ranking.bags.size(),
            static_cast<size_t>(rank.Find("total")->number));

  // Label the top bag relevant, next irrelevant; engine trains.
  const std::string feedback =
      R"({"cmd":"feedback","session":"conv","labels":)" +
      LabelsJson({{ranking.bags[0], BagLabel::kRelevant},
                  {ranking.bags[1], BagLabel::kIrrelevant}}) +
      "}";
  JsonValue fed = Parse(server.HandleLine(feedback));
  ASSERT_TRUE(IsOk(fed)) << ErrorCode(fed);
  EXPECT_EQ(fed.Find("round")->number, 1);
  EXPECT_TRUE(fed.Find("trained")->bool_value);
  EXPECT_TRUE(fed.Find("journaled")->bool_value);

  JsonValue stats = Parse(server.HandleLine(R"({"cmd":"stats"})"));
  ASSERT_TRUE(IsOk(stats));
  EXPECT_EQ(stats.Find("sessions_open")->number, 1);
  EXPECT_EQ(stats.Find("corpora_cached")->number, 1);

  JsonValue closed =
      Parse(server.HandleLine(R"({"cmd":"close","session":"conv"})"));
  ASSERT_TRUE(IsOk(closed));
  EXPECT_TRUE(
      Parse(server.HandleLine(R"({"cmd":"close","session":"conv"})"))
          .Find("code") != nullptr);
}

TEST(ServeServerTest, ErrorsCarryWireCodes) {
  RetrievalServer server(Env().db.get(), TestServeOptions());
  // unknown session
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(
                R"({"cmd":"rank","session":"ghost-never-opened"})"))),
            "NOT_FOUND");
  // unknown camera
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(
                R"({"cmd":"open","session":"x1","camera":"cam-none"})"))),
            "NOT_FOUND");
  // unknown engine
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(
                R"({"cmd":"open","session":"x2","camera":"camA","engine":"svm9000"})"))),
            "INVALID_ARGUMENT");
  // malformed line
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine("{{{"))), "INVALID_ARGUMENT");
  // camera mismatch against the journal/live session
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"open","session":"x3","camera":"camA"})"))));
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(
                R"({"cmd":"open","session":"x3","camera":"camB"})"))),
            "INVALID_ARGUMENT");
}

TEST(ServeServerTest, BackpressureRejectsWhenQueueFull) {
  ServeOptions options = TestServeOptions();
  options.max_pending = 1;
  RetrievalServer* live = nullptr;
  std::string nested;
  // The hook runs with the outer request's admission slot held, so a
  // nested request must see a full queue — deterministically, no races.
  options.admission_hook = [&](const ServeRequest& req) {
    if (req.cmd == ServeCmd::kStats) return;  // the nested request itself
    nested = live->HandleLine(R"({"cmd":"stats"})");
  };
  RetrievalServer server(Env().db.get(), options);
  live = &server;

  const JsonValue outer = Parse(
      server.HandleLine(R"({"cmd":"close","session":"whatever"})"));
  EXPECT_EQ(ErrorCode(outer), "NOT_FOUND");  // admitted and executed
  const JsonValue inner = Parse(nested);
  EXPECT_EQ(ErrorCode(inner), "RESOURCE_EXHAUSTED");
  EXPECT_EQ(server.requests_rejected(), 1u);

  // With the slot released, the same request sails through.
  EXPECT_TRUE(IsOk(Parse(server.HandleLine(R"({"cmd":"stats"})"))));
}

TEST(ServeServerTest, SessionCapacityIsBounded) {
  ServeOptions options = TestServeOptions();
  options.max_sessions = 2;
  RetrievalServer server(Env().db.get(), options);
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"open","session":"cap1","camera":"camA"})"))));
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"open","session":"cap2","camera":"camA"})"))));
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(
                R"({"cmd":"open","session":"cap3","camera":"camA"})"))),
            "RESOURCE_EXHAUSTED");
  // Closing one frees a slot.
  ASSERT_TRUE(IsOk(Parse(
      server.HandleLine(R"({"cmd":"close","session":"cap1","discard":true})"))));
  EXPECT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"open","session":"cap3","camera":"camA"})"))));
}

// ---------------------------------------------------------------------------
// Serve vs in-process: bit-identical rankings, surviving a restart.

void DriveConversation(const std::string& engine_name) {
  SCOPED_TRACE(engine_name);
  VideoDb* db = Env().db.get();
  const std::string id = "bitwise_" + engine_name;

  // In-process reference session over the same corpus and options.
  QueryOptions query;
  query.session.engine = engine_name;
  QueryEngine qe(db);
  Result<CameraCorpus> corpus = qe.BuildCorpus("camB", query);
  ASSERT_TRUE(corpus.ok());
  Result<RetrievalSession> reference =
      RetrievalSession::Create(corpus->dataset, SessionOptionsFor(query));
  ASSERT_TRUE(reference.ok());

  auto server = std::make_unique<RetrievalServer>(db, TestServeOptions());
  JsonValue open = Parse(server->HandleLine(
      R"({"cmd":"open","session":")" + id + R"(","camera":"camB","engine":")" +
      engine_name + "\"}"));
  ASSERT_TRUE(IsOk(open)) << ErrorCode(open);

  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE(round);
    // Restart the daemon between rounds 2 and 3: the journal written by
    // the last feedback must reproduce the session exactly.
    if (round == 2) {
      server.reset();  // Stop(): journals everything
      server = std::make_unique<RetrievalServer>(db, TestServeOptions());
      JsonValue reopened = Parse(server->HandleLine(
          R"({"cmd":"open","session":")" + id + "\"}"));
      ASSERT_TRUE(IsOk(reopened)) << ErrorCode(reopened);
      EXPECT_TRUE(reopened.Find("resumed")->bool_value);
      EXPECT_EQ(reopened.Find("engine")->string, engine_name);
      EXPECT_EQ(reopened.Find("round")->number, round);
    }

    JsonValue rank = Parse(server->HandleLine(
        R"({"cmd":"rank","session":")" + id + R"(","top":-1})"));
    ASSERT_TRUE(IsOk(rank)) << ErrorCode(rank);
    const WireRanking served = GetRanking(rank);
    const std::vector<ScoredBag> local = reference->CurrentRanking();
    ASSERT_EQ(served.bags.size(), local.size());
    for (size_t i = 0; i < local.size(); ++i) {
      EXPECT_EQ(served.bags[i], local[i].bag_id) << "position " << i;
      // %.17g wire encoding round-trips doubles exactly.
      EXPECT_EQ(served.scores[i], local[i].score) << "position " << i;
    }

    // Oracle-style feedback on the top 5, applied to both sides.
    std::vector<std::pair<int, BagLabel>> labels;
    for (size_t i = 0; i < served.bags.size() && i < 5; ++i) {
      auto it = corpus->truth.find(served.bags[i]);
      labels.emplace_back(served.bags[i], it != corpus->truth.end()
                                              ? it->second
                                              : BagLabel::kIrrelevant);
    }
    JsonValue fed = Parse(server->HandleLine(
        R"({"cmd":"feedback","session":")" + id + R"(","labels":)" +
        LabelsJson(labels) + "}"));
    ASSERT_TRUE(IsOk(fed)) << ErrorCode(fed);
    ASSERT_TRUE(reference->SubmitFeedback(labels).ok());
    EXPECT_EQ(fed.Find("round")->number, reference->round());
  }
}

TEST(ServeServerTest, ServedRankingsMatchInProcessMilRf) {
  DriveConversation("milrf");
}

TEST(ServeServerTest, ServedRankingsMatchInProcessWeighted) {
  DriveConversation("weighted");
}

// ---------------------------------------------------------------------------
// Engine registry: RetrievalSession(name) == direct construction.

TEST(EngineRegistryTest, EveryEngineRoundTripsThroughSession) {
  QueryOptions query;
  QueryEngine qe(Env().db.get());
  Result<CameraCorpus> corpus = qe.BuildCorpus("camA", query);
  ASSERT_TRUE(corpus.ok());

  // A labeled set meeting every engine's cold-start preconditions (at
  // least one relevant and one irrelevant bag).
  std::vector<std::pair<int, BagLabel>> labels;
  size_t relevant = 0, irrelevant = 0;
  for (const auto& [id, label] : corpus->truth) {
    if (label == BagLabel::kRelevant && relevant < 2) {
      labels.emplace_back(id, label);
      ++relevant;
    } else if (label == BagLabel::kIrrelevant && irrelevant < 3) {
      labels.emplace_back(id, label);
      ++irrelevant;
    }
  }
  ASSERT_GE(relevant, 1u);
  ASSERT_GE(irrelevant, 1u);

  for (const std::string& name : RegisteredEngineNames()) {
    SCOPED_TRACE(name);
    SessionOptions session_options;
    session_options.engine = name;
    session_options.mil.base_dim = 3;  // tunnel corpus, no velocity

    Result<RetrievalSession> session =
        RetrievalSession::Create(corpus->dataset, session_options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_EQ(session->engine().name(), name);
    ASSERT_TRUE(session->SubmitFeedback(labels).ok());

    MilDataset direct_dataset = corpus->dataset;
    Result<std::unique_ptr<RetrievalEngine>> direct = MakeRetrievalEngine(
        name, &direct_dataset, session_options.engine_config());
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_TRUE((*direct)->SetLabels(labels).ok());
    ASSERT_TRUE((*direct)->Retrain().ok());
    ASSERT_TRUE((*direct)->trained());

    const std::vector<ScoredBag> via_session = session->CurrentRanking();
    const std::vector<ScoredBag> via_direct = (*direct)->Rank();
    ASSERT_EQ(via_session.size(), via_direct.size());
    for (size_t i = 0; i < via_direct.size(); ++i) {
      EXPECT_EQ(via_session[i].bag_id, via_direct[i].bag_id) << i;
      EXPECT_EQ(via_session[i].score, via_direct[i].score) << i;
    }
  }

  EXPECT_TRUE(RetrievalSession::Create(corpus->dataset, [] {
                SessionOptions bad;
                bad.engine = "svm9000";
                return bad;
              }())
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Codec ExpectDone + session-store format.

TEST(CodecExpectDoneTest, TrailingBytesAreDataLoss) {
  std::string buf;
  PutFixed32(&buf, 7);
  Decoder dec(buf);
  uint32_t v = 0;
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_TRUE(dec.ExpectDone().ok());

  buf.push_back('\0');  // one trailing byte past the last field
  Decoder padded(buf);
  ASSERT_TRUE(padded.GetFixed32(&v).ok());
  EXPECT_FALSE(padded.Done());
  const Status status = padded.ExpectDone();
  EXPECT_TRUE(status.IsDataLoss()) << status.ToString();
}

TEST(SessionStoreV2Test, RoundTripsEngineAndRejectsTrailingGarbage) {
  SessionState state;
  state.camera_id = "camA";
  state.engine = "cknn";
  state.round = 3;
  state.labels = {{4, BagLabel::kRelevant}, {7, BagLabel::kIrrelevant}};

  const std::string bytes = SerializeSessionState(state);
  Result<SessionState> back = DeserializeSessionState(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->camera_id, "camA");
  EXPECT_EQ(back->engine, "cknn");
  EXPECT_EQ(back->round, 3);
  EXPECT_EQ(back->labels, state.labels);

  // Trailing garbage inside a valid CRC envelope is DataLoss, not a
  // silent success: rebuild the envelope around a padded body.
  std::string body(bytes.begin() + 8, bytes.end());
  body.push_back('\x7f');
  std::string padded;
  PutFixed32(&padded, 0x53534553u);  // "SESS"
  PutFixed32(&padded, Crc32c(body));
  padded += body;
  EXPECT_TRUE(DeserializeSessionState(padded).status().IsDataLoss());
}

TEST(SessionStoreV2Test, ReadsVersion1RecordsWithDefaultEngine) {
  // Hand-encode a v1 body (no engine field) and wrap it in the envelope.
  std::string body;
  PutFixed32(&body, 1);  // version
  PutLengthPrefixed(&body, "camB");
  PutFixed32(&body, 2);  // round
  PutFixed32(&body, 1);  // one label
  PutFixed32(&body, 9);
  body.push_back(static_cast<char>(BagLabel::kRelevant));
  std::string bytes;
  PutFixed32(&bytes, 0x53534553u);
  PutFixed32(&bytes, Crc32c(body));
  bytes += body;

  Result<SessionState> state = DeserializeSessionState(bytes);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->camera_id, "camB");
  EXPECT_EQ(state->engine, "milrf");  // v1 default
  EXPECT_EQ(state->round, 2);
  ASSERT_EQ(state->labels.size(), 1u);
  EXPECT_EQ(state->labels[0], (std::pair<int, BagLabel>{9, BagLabel::kRelevant}));
}

// ---------------------------------------------------------------------------
// Protocol error paths: cluster extensions, oversized lines, unknown
// commands, shutdown racing an in-flight rank.

TEST(ServeProtocolTest, ParsesClusterExtensions) {
  auto open = ParseServeRequest(
      R"({"cmd":"open","session":"m1","cameras":["camA","camB"]})");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->cameras, (std::vector<std::string>{"camA", "camB"}));

  auto feedback = ParseServeRequest(
      R"({"cmd":"feedback","session":"m1","labels":[)"
      R"({"bag":3,"label":"relevant","camera":"camA"},)"
      R"({"bag":1,"label":"irrelevant"}]})");
  ASSERT_TRUE(feedback.ok()) << feedback.status().ToString();
  ASSERT_EQ(feedback->label_cameras.size(), 2u);
  EXPECT_EQ(feedback->label_cameras[0], "camA");
  EXPECT_EQ(feedback->label_cameras[1], "");

  EXPECT_TRUE(ParseServeRequest(R"({"cmd":"ping"})").ok());
  // camera entries must be non-empty strings
  EXPECT_TRUE(
      ParseServeRequest(R"({"cmd":"open","session":"m1","cameras":[""]})")
          .status()
          .IsInvalidArgument());
}

TEST(ServeProtocolTest, OversizedRequestLineIsRejected) {
  std::string line = R"({"cmd":"stats","pad":")";
  line.append(kMaxRequestBytes, 'x');
  line += "\"}";
  EXPECT_TRUE(ParseServeRequest(line).status().IsInvalidArgument());
  // Through the full server path: one error response, not a hang or an
  // unbounded buffer.
  RetrievalServer server(Env().db.get(), TestServeOptions());
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(line))), "INVALID_ARGUMENT");
}

TEST(ServeServerTest, UnknownCommandAndEmptyLineGetErrorResponses) {
  RetrievalServer server(Env().db.get(), TestServeOptions());
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(R"({"cmd":"explode"})"))),
            "INVALID_ARGUMENT");
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(""))), "INVALID_ARGUMENT");
  EXPECT_EQ(ErrorCode(Parse(server.HandleLine(R"({"cmd":17})"))),
            "INVALID_ARGUMENT");
}

TEST(ServeServerTest, ShutdownRacingInflightRankCompletesBoth) {
  ServeOptions options = TestServeOptions();
  RetrievalServer* live = nullptr;
  std::string shutdown_response;
  // The hook fires while the rank request holds its admission slot, so
  // the shutdown lands mid-request — deterministically, no sleeps.
  options.admission_hook = [&](const ServeRequest& req) {
    if (req.cmd != ServeCmd::kRank) return;
    shutdown_response = live->HandleLine(R"({"cmd":"shutdown"})");
  };
  RetrievalServer server(Env().db.get(), options);
  live = &server;
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"open","session":"race","camera":"camA"})"))));

  JsonValue rank =
      Parse(server.HandleLine(R"({"cmd":"rank","session":"race"})"));
  EXPECT_TRUE(IsOk(rank)) << ErrorCode(rank);  // in-flight rank completes
  ASSERT_FALSE(shutdown_response.empty());
  EXPECT_TRUE(IsOk(Parse(shutdown_response)));
  EXPECT_TRUE(server.WaitForShutdownFor(0));
  server.Stop();
}

TEST(ServeServerTest, PingReportsWorkerIdentityAndShards) {
  ServeOptions options = TestServeOptions();
  options.worker_id = "w7";
  RetrievalServer server(Env().db.get(), options);
  ASSERT_TRUE(IsOk(Parse(server.HandleLine(
      R"({"cmd":"open","session":"pg","camera":"camA"})"))));
  JsonValue ping = Parse(server.HandleLine(R"({"cmd":"ping"})"));
  ASSERT_TRUE(IsOk(ping));
  EXPECT_EQ(ping.Find("worker")->string, "w7");
  EXPECT_EQ(ping.Find("sessions_open")->number, 1);
  const JsonValue* cameras = ping.Find("cameras");
  ASSERT_TRUE(cameras != nullptr && cameras->is_array());
  ASSERT_EQ(cameras->array.size(), 1u);
  EXPECT_EQ(cameras->array[0].string, "camA");
}

// ---------------------------------------------------------------------------
// Startup validation: inconsistent option bundles fail before any bind.

TEST(ServeOptionsTest, ValidationFailsFast) {
  ServeOptions good;
  good.socket_path = "/tmp/mivid_validate.sock";
  EXPECT_TRUE(ValidateServeOptions(good).ok());

  ServeOptions no_listener;
  EXPECT_TRUE(ValidateServeOptions(no_listener).IsInvalidArgument());
  // in-process use (tests) is allowed to skip the listener
  EXPECT_TRUE(ValidateServeOptions(no_listener, /*will_listen=*/false).ok());

  ServeOptions bad_port = good;
  bad_port.tcp_port = 70000;
  EXPECT_TRUE(ValidateServeOptions(bad_port).IsInvalidArgument());

  ServeOptions zero_top = good;
  zero_top.top_n = 0;
  EXPECT_TRUE(ValidateServeOptions(zero_top).IsInvalidArgument());

  // Unbounded session table + idle sweeps is a footgun pair.
  ServeOptions unbounded = good;
  unbounded.max_sessions = 0;
  unbounded.idle_timeout_ms = 1000;
  EXPECT_TRUE(ValidateServeOptions(unbounded).IsInvalidArgument());

  ServeOptions bad_engine = good;
  bad_engine.default_engine = "svm9000";
  EXPECT_TRUE(ValidateServeOptions(bad_engine).IsInvalidArgument());

  ServeOptions bad_worker = good;
  bad_worker.worker_id = "a/b";
  EXPECT_TRUE(ValidateServeOptions(bad_worker).IsInvalidArgument());

  // An unwritable snapshot dir is caught at startup, not mid-request:
  // nesting the dir under a regular file makes creation fail portably.
  TempDir dir("mivid_validate_snapdir");
  fs::create_directories(dir.path());
  const std::string file = dir.path() + "/plain_file";
  { std::FILE* f = std::fopen(file.c_str(), "wb"); ASSERT_NE(f, nullptr);
    std::fclose(f); }
  ServeOptions bad_dir = good;
  bad_dir.corpus_snapshot_dir = file + "/nested";
  EXPECT_TRUE(ValidateServeOptions(bad_dir).IsIOError());
}

// ---------------------------------------------------------------------------
// Client retry backoff.

TEST(RetryPolicyTest, BackoffGrowsAndCaps) {
  RetryPolicy policy;
  policy.base_delay_ms = 50;
  policy.max_delay_ms = 400;
  std::mt19937 rng(42);
  for (int attempt = 0; attempt < 6; ++attempt) {
    const int base = std::min(50 << attempt, 400);
    const int delay = BackoffDelayMs(policy, attempt, &rng);
    EXPECT_GE(delay, base) << attempt;
    EXPECT_LE(delay, base + base / 2) << attempt;  // jitter <= delay/2
  }
  // Without an rng there is no jitter: exact doubling then the cap.
  EXPECT_EQ(BackoffDelayMs(policy, 0, nullptr), 50);
  EXPECT_EQ(BackoffDelayMs(policy, 2, nullptr), 200);
  EXPECT_EQ(BackoffDelayMs(policy, 10, nullptr), 400);
  // Deterministic for a fixed rng state (reproducible tests and runs).
  std::mt19937 a(7), b(7);
  EXPECT_EQ(BackoffDelayMs(policy, 3, &a), BackoffDelayMs(policy, 3, &b));
}

TEST(ServeServerTest, EveryRegisteredEngineServes) {
  RetrievalServer server(Env().db.get(), TestServeOptions());
  for (const std::string& name : RegisteredEngineNames()) {
    SCOPED_TRACE(name);
    const std::string id = "eng_" + name;
    JsonValue open = Parse(server.HandleLine(
        R"({"cmd":"open","session":")" + id +
        R"(","camera":"camA","engine":")" + name + "\"}"));
    ASSERT_TRUE(IsOk(open)) << ErrorCode(open);
    JsonValue rank = Parse(server.HandleLine(
        R"({"cmd":"rank","session":")" + id + "\"}"));
    ASSERT_TRUE(IsOk(rank)) << ErrorCode(rank);
    EXPECT_FALSE(GetRanking(rank).bags.empty());
  }
}

}  // namespace
}  // namespace mivid

// Integration tests: the full pipeline (simulate -> render -> segment ->
// track -> features -> windows -> MIL retrieval) end to end, plus
// cross-pipeline consistency checks.

#include <algorithm>

#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/metrics.h"
#include "segment/segmenter.h"
#include "track/tracker.h"
#include "trafficsim/renderer.h"

namespace mivid {
namespace {

TEST(IntegrationTest, VisionTracksApproximateGroundTruth) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 600;
  scenario_options.num_wall_crashes = 0;
  scenario_options.num_sudden_stops = 0;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 0;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);

  // Ground truth.
  TrafficWorld gt_world(scenario);
  const GroundTruth gt = gt_world.Run();

  // Vision.
  TrafficWorld world(scenario);
  Renderer renderer(scenario.layout);
  VehicleSegmenter segmenter;
  Tracker tracker;
  while (!world.Done()) {
    world.Step();
    const Frame frame = renderer.Render(world.vehicles());
    tracker.Observe(world.frame() - 1, segmenter.Process(frame));
  }
  const std::vector<Track> vision = tracker.Finish();

  // Roughly one vision track per vehicle (some fragmentation tolerated).
  EXPECT_GE(vision.size(), gt.tracks.size());
  EXPECT_LE(vision.size(), gt.tracks.size() * 2);

  // Every long vision track matches some ground-truth track closely at
  // its midpoint frame.
  for (const auto& vt : vision) {
    if (vt.points.size() < 20) continue;
    const TrackPoint& mid = vt.points[vt.points.size() / 2];
    double best = 1e9;
    for (const auto& gt_track : gt.tracks) {
      Point2 p;
      if (gt_track.CentroidAt(mid.frame, &p)) {
        best = std::min(best, Distance(p, mid.centroid));
      }
    }
    EXPECT_LT(best, 6.0) << "vision track far from any ground-truth vehicle";
  }
}

TEST(IntegrationTest, MilBeatsOrMatchesItsInitialRoundOnTunnel) {
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 1200;
  scenario_options.num_wall_crashes = 3;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 1;
  scenario_options.num_uturns = 1;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);

  ExperimentOptions options;
  options.pipeline = PipelineMode::kGroundTruthTracks;
  options.feedback_rounds = 3;
  options.top_n = 10;
  Result<ExperimentResult> result = RunRfExperiment(scenario, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const MethodCurve& mil = result->curves[0];
  ASSERT_EQ(mil.method, "MIL_OneClassSVM");
  const double initial = mil.accuracy.front();
  const double final = mil.accuracy.back();
  EXPECT_GE(final, initial) << "feedback must not hurt MIL retrieval";
}

TEST(IntegrationTest, UTurnQueryFindsUTurnsNotAccidents) {
  // Query a different event type through the same machinery: the oracle
  // answers for U-turns, and the initial model weighs direction change.
  TunnelScenarioOptions scenario_options;
  scenario_options.total_frames = 1500;
  scenario_options.num_wall_crashes = 1;
  scenario_options.num_sudden_stops = 1;
  scenario_options.num_speeding = 0;
  scenario_options.num_uturns = 3;
  const ScenarioSpec scenario = MakeTunnelScenario(scenario_options);

  ExperimentOptions options;
  options.pipeline = PipelineMode::kGroundTruthTracks;
  options.relevant_types = {IncidentType::kUTurn};
  options.feedback_rounds = 2;
  options.top_n = 10;
  Result<ClipAnalysis> analysis = AnalyzeScenario(scenario, options);
  ASSERT_TRUE(analysis.ok());
  EXPECT_GT(analysis->num_relevant, 0u);

  Result<ExperimentResult> result = RunRfExperimentOnAnalysis(
      *analysis, scenario.name, scenario.total_frames, options);
  ASSERT_TRUE(result.ok());
  // MIL retrieval finds at least some U-turn windows after feedback.
  const MethodCurve& mil = result->curves[0];
  EXPECT_GT(mil.accuracy.back(), 0.0);
}

TEST(IntegrationTest, StoppedVehiclesStaySegmentedThroughHold) {
  // A sudden-stop vehicle must remain visible to the vision pipeline
  // during its standstill (selective background update).
  ScenarioSpec spec;
  spec.name = "stop_test";
  spec.layout = MakeTunnelLayout();
  spec.total_frames = 260;
  spec.spawns = {{0, 0, VehicleType::kCar, 3.0, 220}};
  IncidentSpec inc;
  inc.type = IncidentType::kSuddenStop;
  inc.trigger_frame = 60;
  inc.hold_frames = 60;
  spec.incidents = {inc};

  TrafficWorld world(spec);
  Renderer renderer(spec.layout);
  VehicleSegmenter segmenter;
  int detections_during_hold = 0;
  int frames_during_hold = 0;
  while (!world.Done()) {
    world.Step();
    const Frame frame = renderer.Render(world.vehicles());
    const auto blobs = segmenter.Process(frame);
    const int f = world.frame() - 1;
    if (f >= 100 && f <= 140) {  // deep inside the standstill
      ++frames_during_hold;
      detections_during_hold += blobs.empty() ? 0 : 1;
    }
  }
  ASSERT_GT(frames_during_hold, 0);
  EXPECT_GE(detections_during_hold, frames_during_hold * 9 / 10);
}

TEST(IntegrationTest, PaperProtocolRunsOnBothClips) {
  // The two headline scenarios run the full vision protocol without error
  // and produce sane corpus sizes (full-length versions run in bench/).
  for (const bool intersection : {false, true}) {
    ScenarioSpec scenario;
    if (intersection) {
      IntersectionScenarioOptions o;
      o.total_frames = 300;
      o.num_cross_collisions = 1;
      o.num_rear_ends = 0;
      o.num_uturns = 1;
      o.num_speeding = 0;
      scenario = MakeIntersectionScenario(o);
    } else {
      TunnelScenarioOptions o;
      o.total_frames = 500;
      o.num_wall_crashes = 1;
      o.num_sudden_stops = 0;
      o.num_speeding = 0;
      o.num_uturns = 0;
      scenario = MakeTunnelScenario(o);
    }
    ExperimentOptions options;
    options.pipeline = PipelineMode::kVisionTracks;
    options.feedback_rounds = 1;
    Result<ExperimentResult> result = RunRfExperiment(scenario, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->num_windows, 0u);
  }
}

}  // namespace
}  // namespace mivid

// Parameterized property sweeps: Hungarian optimality against brute-force
// permutation search, and segmentation robustness across noise levels.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "segment/segmenter.h"
#include "track/assignment.h"
#include "video/draw.h"

namespace mivid {
namespace {

/// Property: on random square cost matrices, HungarianAssign attains the
/// exact optimum found by enumerating all permutations.
class HungarianOptimalityTest : public ::testing::TestWithParam<int> {};

TEST_P(HungarianOptimalityTest, MatchesBruteForce) {
  const int seed = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(seed));
  const size_t n = 2 + static_cast<size_t>(rng.UniformInt(0, 4));  // 2..6
  Matrix cost(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) cost.At(r, c) = rng.Uniform(0, 10);
  }

  // Brute force over all permutations.
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e300;
  do {
    double total = 0;
    for (size_t r = 0; r < n; ++r) total += cost.At(r, perm[r]);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));

  const Assignment assignment = HungarianAssign(cost, 1e12);
  double hungarian = 0;
  std::vector<bool> used(n, false);
  for (size_t r = 0; r < n; ++r) {
    ASSERT_GE(assignment[r], 0);
    ASSERT_FALSE(used[static_cast<size_t>(assignment[r])]);
    used[static_cast<size_t>(assignment[r])] = true;
    hungarian += cost.At(r, static_cast<size_t>(assignment[r]));
  }
  EXPECT_NEAR(hungarian, best, 1e-9)
      << "n=" << n << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianOptimalityTest,
                         ::testing::Range(0, 12));

/// Property: a bright moving vehicle stays detected across sensor noise
/// levels up to a realistic bound, and the centroid error stays small.
class SegmentationNoiseSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SegmentationNoiseSweepTest, VehicleDetectedDespiteNoise) {
  const double noise = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(noise * 10));
  SegmenterOptions options;
  options.background.warmup_frames = 10;
  options.blob.min_area = 30;
  VehicleSegmenter segmenter(options);

  int frames_with_vehicle = 0, detected = 0;
  double centroid_error = 0;
  for (int f = 0; f < 80; ++f) {
    Frame frame(128, 64, 70);
    const bool vehicle_present = f >= 20;
    double cx = 0;
    if (vehicle_present) {
      cx = 12 + 1.5 * (f - 20) + 8;  // center x of a 16x8 body
      FillRect(&frame, BBox(cx - 8, 28, cx + 8, 36), 210);
    }
    for (auto& p : frame.pixels()) {
      p = static_cast<uint8_t>(std::clamp(
          static_cast<double>(p) + rng.Gaussian(0, noise), 0.0, 255.0));
    }
    const auto blobs = segmenter.Process(frame);
    if (vehicle_present && f >= 25) {
      ++frames_with_vehicle;
      if (!blobs.empty()) {
        ++detected;
        double best = 1e9;
        for (const auto& b : blobs) {
          best = std::min(best, std::fabs(b.centroid.x - cx));
        }
        centroid_error += best;
      }
    }
  }
  ASSERT_GT(frames_with_vehicle, 0);
  EXPECT_GE(detected, frames_with_vehicle * 9 / 10)
      << "noise sigma " << noise;
  EXPECT_LT(centroid_error / std::max(1, detected), 3.0)
      << "noise sigma " << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SegmentationNoiseSweepTest,
                         ::testing::Values(0.0, 2.0, 6.0, 10.0, 14.0));

}  // namespace
}  // namespace mivid

#include "cluster/placement.h"

#include <algorithm>

namespace mivid {

uint64_t PlacementHash(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  // FNV-1a alone barely moves the high bits for short, similar inputs
  // ("w0#0".."w0#63" all land in one narrow arc), which collapses the
  // ring: one worker can shadow every other. A splitmix64-style
  // finalizer avalanches all 64 bits while staying a pure function of
  // the input bytes, so placement is still identical across processes.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

PlacementRing::PlacementRing(size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {}

void PlacementRing::Add(const std::string& worker) {
  if (workers_.count(worker) != 0) return;
  workers_[worker] = true;
  for (size_t i = 0; i < virtual_nodes_; ++i) {
    const uint64_t point =
        PlacementHash(worker + "#" + std::to_string(i));
    ring_.emplace(std::make_pair(point, worker), worker);
  }
}

void PlacementRing::Remove(const std::string& worker) {
  if (workers_.erase(worker) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == worker) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

bool PlacementRing::Contains(const std::string& worker) const {
  return workers_.count(worker) != 0;
}

Result<std::string> PlacementRing::Owner(std::string_view key) const {
  if (ring_.empty()) {
    return Status::FailedPrecondition("placement ring has no live workers");
  }
  const uint64_t h = PlacementHash(key);
  // First ring point at or past the key's hash, wrapping to the start.
  auto it = ring_.lower_bound(std::make_pair(h, std::string()));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::string> PlacementRing::Owners(std::string_view key,
                                               size_t replicas) const {
  std::vector<std::string> out;
  if (ring_.empty() || replicas == 0) return out;
  const size_t want = std::min(replicas, workers_.size());
  out.reserve(want);
  const uint64_t h = PlacementHash(key);
  auto it = ring_.lower_bound(std::make_pair(h, std::string()));
  // One full lap visits every worker's points, so `want` distinct
  // workers are always found.
  while (out.size() < want) {
    if (it == ring_.end()) it = ring_.begin();
    const std::string& worker = it->second;
    bool seen = false;
    for (const std::string& w : out) {
      if (w == worker) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(worker);
    ++it;
  }
  return out;
}

std::vector<std::string> PlacementRing::Workers() const {
  std::vector<std::string> out;
  out.reserve(workers_.size());
  for (const auto& [worker, alive] : workers_) out.push_back(worker);
  return out;
}

}  // namespace mivid

#include "cluster/worker_registry.h"

#include "obs/metrics.h"

namespace mivid {

WorkerRegistry::WorkerRegistry(std::vector<std::string> endpoints) {
  workers_.reserve(endpoints.size());
  for (std::string& endpoint : endpoints) {
    auto worker = std::make_unique<WorkerConn>();
    worker->endpoint = std::move(endpoint);
    workers_.push_back(std::move(worker));
  }
}

Status WorkerRegistry::ConnectAll() {
  for (const auto& worker : workers_) {
    Result<ServeClient> client = ServeClient::Connect(worker->endpoint);
    if (!client.ok()) {
      return Status::IOError("worker " + worker->endpoint +
                             " is unreachable: " +
                             client.status().message());
    }
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->client =
        std::make_unique<ServeClient>(std::move(client).value());
    worker->alive.store(true, std::memory_order_release);
  }
  return Status::OK();
}

WorkerConn* WorkerRegistry::Find(const std::string& endpoint) {
  for (const auto& worker : workers_) {
    if (worker->endpoint == endpoint) return worker.get();
  }
  return nullptr;
}

Result<std::string> WorkerRegistry::Call(WorkerConn& worker,
                                         const std::string& line) {
  std::lock_guard<std::mutex> lock(worker.mu);
  if (!worker.alive.load(std::memory_order_acquire) ||
      worker.client == nullptr) {
    return Status::IOError("worker " + worker.endpoint + " is down");
  }
  Result<std::string> response = worker.client->Call(line);
  if (!response.ok()) {
    // The connection is gone: mark dead under the lock so no later call
    // races a half-closed client.
    worker.client.reset();
    worker.alive.store(false, std::memory_order_release);
    worker.failures.fetch_add(1, std::memory_order_relaxed);
    MIVID_METRIC_COUNT("cluster/worker_failures", 1);
    return Status::IOError("worker " + worker.endpoint +
                           " failed: " + response.status().message());
  }
  worker.requests.fetch_add(1, std::memory_order_relaxed);
  MIVID_METRIC_COUNT_DYN("cluster/worker/" + worker.endpoint + "/requests",
                         1);
  return response;
}

bool WorkerRegistry::Ping(WorkerConn& worker) {
  return Call(worker, R"({"cmd":"ping"})").ok();
}

Status WorkerRegistry::Reconnect(WorkerConn& worker) {
  Result<ServeClient> client = ServeClient::Connect(worker.endpoint);
  if (!client.ok()) return client.status();
  std::lock_guard<std::mutex> lock(worker.mu);
  worker.client = std::make_unique<ServeClient>(std::move(client).value());
  worker.alive.store(true, std::memory_order_release);
  return Status::OK();
}

void WorkerRegistry::MarkDead(WorkerConn& worker) {
  std::lock_guard<std::mutex> lock(worker.mu);
  if (!worker.alive.load(std::memory_order_acquire)) return;
  worker.client.reset();
  worker.alive.store(false, std::memory_order_release);
  worker.failures.fetch_add(1, std::memory_order_relaxed);
  MIVID_METRIC_COUNT("cluster/worker_failures", 1);
}

std::vector<std::string> WorkerRegistry::AliveEndpoints() const {
  std::vector<std::string> out;
  for (const auto& worker : workers_) {
    if (worker->alive.load(std::memory_order_acquire)) {
      out.push_back(worker->endpoint);
    }
  }
  return out;
}

}  // namespace mivid

#include "cluster/worker_registry.h"

#include <chrono>

#include "obs/metrics.h"

namespace mivid {

WorkerRegistry::WorkerRegistry(std::vector<std::string> endpoints) {
  workers_.reserve(endpoints.size());
  for (std::string& endpoint : endpoints) {
    auto worker = std::make_unique<WorkerConn>();
    worker->endpoint = std::move(endpoint);
    workers_.push_back(std::move(worker));
  }
}

Status WorkerRegistry::ConnectAll() {
  for (const auto& worker : workers_) {
    Result<ServeClient> client = ServeClient::Connect(worker->endpoint);
    if (!client.ok()) {
      return Status::IOError("worker " + worker->endpoint +
                             " is unreachable: " +
                             client.status().message());
    }
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->client =
        std::make_unique<ServeClient>(std::move(client).value());
    worker->alive.store(true, std::memory_order_release);
  }
  return Status::OK();
}

WorkerConn* WorkerRegistry::Find(const std::string& endpoint) {
  for (const auto& worker : workers_) {
    if (worker->endpoint == endpoint) return worker.get();
  }
  return nullptr;
}

Result<std::string> WorkerRegistry::Call(WorkerConn& worker,
                                         const std::string& line,
                                         const Deadline& deadline) {
  std::lock_guard<std::mutex> lock(worker.mu);
  if (!worker.alive.load(std::memory_order_acquire) ||
      worker.client == nullptr) {
    return Status::IOError("worker " + worker.endpoint + " is down");
  }
  const auto started = std::chrono::steady_clock::now();
  Result<std::string> response = worker.client->Call(line, deadline);
  if (!response.ok()) {
    // The connection is gone (or desynced by a deadline miss): mark dead
    // under the lock so no later call races a half-closed client.
    const bool missed_deadline = response.status().IsDeadlineExceeded();
    worker.client.reset();
    worker.alive.store(false, std::memory_order_release);
    worker.failures.fetch_add(1, std::memory_order_relaxed);
    MIVID_METRIC_COUNT("cluster/worker_failures", 1);
    if (missed_deadline) MIVID_METRIC_COUNT("cluster/deadline_misses", 1);
    // Preserve the code: callers treat DeadlineExceeded like death but
    // report it distinctly.
    return Status(response.status().code(),
                  "worker " + worker.endpoint +
                      " failed: " + response.status().message());
  }
  const int64_t sample_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count();
  // EWMA (alpha = 1/4) under the connection mutex; readers are lock-free.
  const int64_t prev = worker.ewma_us.load(std::memory_order_relaxed);
  worker.ewma_us.store(prev == 0 ? sample_us : (3 * prev + sample_us) / 4,
                       std::memory_order_relaxed);
  worker.requests.fetch_add(1, std::memory_order_relaxed);
  MIVID_METRIC_COUNT_DYN("cluster/worker/" + worker.endpoint + "/requests",
                         1);
  return response;
}

bool WorkerRegistry::Ping(WorkerConn& worker, const Deadline& deadline) {
  return Call(worker, R"({"cmd":"ping"})", deadline).ok();
}

Status WorkerRegistry::Reconnect(WorkerConn& worker) {
  Result<ServeClient> client = ServeClient::Connect(worker.endpoint);
  if (!client.ok()) return client.status();
  std::lock_guard<std::mutex> lock(worker.mu);
  worker.client = std::make_unique<ServeClient>(std::move(client).value());
  worker.alive.store(true, std::memory_order_release);
  return Status::OK();
}

void WorkerRegistry::MarkDead(WorkerConn& worker) {
  std::lock_guard<std::mutex> lock(worker.mu);
  if (!worker.alive.load(std::memory_order_acquire)) return;
  worker.client.reset();
  worker.alive.store(false, std::memory_order_release);
  worker.failures.fetch_add(1, std::memory_order_relaxed);
  MIVID_METRIC_COUNT("cluster/worker_failures", 1);
}

std::vector<std::string> WorkerRegistry::AliveEndpoints() const {
  std::vector<std::string> out;
  for (const auto& worker : workers_) {
    if (worker->alive.load(std::memory_order_acquire)) {
      out.push_back(worker->endpoint);
    }
  }
  return out;
}

}  // namespace mivid

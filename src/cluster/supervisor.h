// WorkerSupervisor: the coordinator's process manager for its workers.
//
// `mivid_cli coord --spawn-workers=N` replaces the smoke scripts' shell
// plumbing: the supervisor fork/execs N `mivid_cli serve` processes on
// ephemeral TCP ports, learns each port from the child's boot line, and
// keeps the fleet alive — a crashed worker is restarted with capped
// exponential backoff, pinned to its original port so its endpoint (and
// therefore its place on the ring) never changes; the heartbeat sweep
// re-admits it once it answers ping again. A worker that keeps dying
// ("restart storm": max_restarts rapid deaths in a row) is given up on
// and left off the fleet — the ring's failover already re-homed its
// cameras.
//
// Monitoring is poll-driven: the coordinator's main loop calls Sweep()
// every few hundred ms, which reaps exited children with
// waitpid(WNOHANG) and spawns any due restarts. No SIGCHLD handler is
// installed, so the signal cannot interrupt transport syscalls (which
// are EINTR-safe anyway).

#ifndef MIVID_CLUSTER_SUPERVISOR_H_
#define MIVID_CLUSTER_SUPERVISOR_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mivid {

struct SupervisorOptions {
  std::string cli_path;     ///< binary to exec (argv[0] of the coordinator)
  std::string db_path;      ///< database every worker serves
  int count = 0;            ///< workers to spawn
  std::string tcp_host = "127.0.0.1";
  std::string log_dir;      ///< worker stdout/stderr logs (created)
  std::vector<std::string> extra_args;  ///< forwarded to every worker

  /// Consecutive rapid deaths before giving a worker up. A child that
  /// stayed up longer than `stable_ms` resets its strike count.
  int max_restarts = 5;
  int backoff_base_ms = 200;
  int backoff_max_ms = 5000;
  int64_t stable_ms = 30 * 1000;

  /// How long to wait for a freshly spawned worker to print its
  /// "tcp_port=N" boot line.
  int spawn_wait_ms = 15 * 1000;
};

class WorkerSupervisor {
 public:
  explicit WorkerSupervisor(SupervisorOptions options);
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Spawns all workers and blocks until each has printed its port.
  /// On failure the already-spawned children are killed.
  Status SpawnAll();

  /// "host:port" per worker, stable across restarts. Valid after
  /// SpawnAll() succeeds.
  std::vector<std::string> endpoints() const;

  /// Reaps dead children and restarts any whose backoff has elapsed.
  /// Call periodically from the serving loop.
  void Sweep();

  /// SIGTERM then (after a grace period) SIGKILL every child.
  void StopAll();

  uint64_t restarts() const { return restarts_; }

  /// Workers permanently given up on after a restart storm.
  int given_up() const;

 private:
  struct Child {
    std::string worker_id;
    std::string log_path;
    int port = 0;            ///< pinned after the first spawn
    pid_t pid = -1;          ///< -1 when not running
    int strikes = 0;         ///< consecutive rapid deaths
    bool gave_up = false;
    std::chrono::steady_clock::time_point started;
    std::chrono::steady_clock::time_point restart_due;
    bool restart_pending = false;
  };

  Status Spawn(Child& child);
  Result<int> WaitForPortLine(const Child& child) const;

  SupervisorOptions options_;
  std::vector<Child> children_;
  uint64_t restarts_ = 0;
};

}  // namespace mivid

#endif  // MIVID_CLUSTER_SUPERVISOR_H_

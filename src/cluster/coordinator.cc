#include "cluster/coordinator.h"

#include <algorithm>
#include <future>
#include <set>

#include "cluster/merger.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/version.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/metrics_wire.h"
#include "obs/trace.h"
#include "obs/trace_stitch.h"

namespace mivid {

namespace {

constexpr int kAcceptPollMs = 100;

/// Stable span names for tracing coordinator-side command handling
/// (literals — span names must outlive the trace buffer).
const char* CoordSpanName(ServeCmd cmd) {
  switch (cmd) {
    case ServeCmd::kOpen:
      return "coord/open";
    case ServeCmd::kRank:
      return "coord/rank";
    case ServeCmd::kFeedback:
      return "coord/feedback";
    case ServeCmd::kSave:
      return "coord/save";
    case ServeCmd::kClose:
      return "coord/close";
    case ServeCmd::kStats:
      return "coord/stats";
    case ServeCmd::kShutdown:
      return "coord/shutdown";
    case ServeCmd::kPing:
      return "coord/ping";
    case ServeCmd::kMetrics:
      return "coord/metrics";
    case ServeCmd::kClusterStats:
      return "coord/cluster_stats";
    case ServeCmd::kTraceDump:
      return "coord/trace_dump";
    case ServeCmd::kIngest:
      return "coord/ingest";
    case ServeCmd::kRefresh:
      return "coord/refresh";
    case ServeCmd::kPublish:
      return "coord/publish";
  }
  return "coord/other";
}

/// The trace context of the request being handled on this thread (set by
/// HandleLine for the duration of one request). Fan-out lines built deep
/// in the command handlers read it instead of threading a parameter
/// through every layer.
thread_local const TraceContext* t_request_trace = nullptr;

struct RequestTraceScope {
  const TraceContext* previous;
  explicit RequestTraceScope(const TraceContext* context)
      : previous(t_request_trace) {
    if (context != nullptr) t_request_trace = context;
  }
  ~RequestTraceScope() { t_request_trace = previous; }
};

/// Stamps the current request's trace context onto a fan-out line under
/// construction, so the worker's span parents under the coordinator's.
void StampRequestTrace(JsonLineBuilder& line) {
  if (t_request_trace != nullptr) {
    line.Str("trace", t_request_trace->trace_id)
        .Str("span", t_request_trace->span_id);
  }
}

/// Stamps the request's remaining budget onto a fan-out line under
/// construction, so the worker can shed it if it expires in the queue.
void StampDeadline(JsonLineBuilder& line, const Deadline& deadline) {
  if (deadline.infinite()) return;
  const int64_t remaining = deadline.remaining_ms();
  line.Int("deadline_ms", remaining > 0 ? remaining : 1);
}

/// True when a worker response line says {"ok":true,...}.
bool ResponseOk(const std::string& line) {
  Result<JsonValue> doc = ParseJson(line);
  if (!doc.ok()) return false;
  const JsonValue* ok = doc.value().Find("ok");
  return ok != nullptr && ok->type == JsonValue::Type::kBool &&
         ok->bool_value;
}

/// Extracts the "error" message from a failed worker response, or the
/// whole line when it does not parse.
std::string ResponseError(const std::string& line) {
  Result<JsonValue> doc = ParseJson(line);
  if (doc.ok()) {
    const JsonValue* error = doc.value().Find("error");
    if (error != nullptr && error->is_string()) return error->string;
  }
  return line;
}

}  // namespace

Status ValidateCoordinatorOptions(const CoordinatorOptions& options) {
  if (options.socket_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "no listener configured: set a socket path and/or --tcp-port");
  }
  if (options.tcp_port > 65535) {
    return Status::InvalidArgument("tcp_port out of range: " +
                                   std::to_string(options.tcp_port));
  }
  if (options.workers.empty()) {
    return Status::InvalidArgument(
        "a coordinator needs at least one worker endpoint (--workers)");
  }
  std::set<std::string> seen;
  for (const std::string& endpoint : options.workers) {
    if (endpoint.empty()) {
      return Status::InvalidArgument("empty worker endpoint");
    }
    if (!seen.insert(endpoint).second) {
      return Status::InvalidArgument("duplicate worker endpoint: " +
                                     endpoint);
    }
  }
  if (options.top_n <= 0) {
    return Status::InvalidArgument("top_n must be positive");
  }
  if (options.heartbeat_ms < 0) {
    return Status::InvalidArgument("heartbeat_ms must be >= 0");
  }
  if (options.rpc_deadline_ms < 0) {
    return Status::InvalidArgument("rpc_deadline_ms must be >= 0");
  }
  if (options.replication < 1) {
    return Status::InvalidArgument("replication must be >= 1");
  }
  return Status::OK();
}

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)),
      registry_(options_.workers),
      ring_(options_.virtual_nodes),
      last_heartbeat_(std::chrono::steady_clock::now()) {
  if (!options_.access_log_path.empty() || !options_.slow_log_path.empty()) {
    AccessLog::Options log;
    log.path = options_.access_log_path;
    log.slow_path = options_.slow_log_path;
    log.slow_threshold_ms = options_.slow_threshold_ms;
    Status opened = access_log_.Open(log);
    if (!opened.ok()) {
      MIVID_LOG(Warn) << "access log disabled: " << opened.ToString();
    }
  }
}

Coordinator::~Coordinator() { Stop(); }

Status Coordinator::Start() {
  MIVID_RETURN_IF_ERROR(ValidateCoordinatorOptions(options_));
  MIVID_RETURN_IF_ERROR(registry_.ConnectAll());
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    for (const std::string& endpoint : options_.workers) {
      ring_.Add(endpoint);
    }
  }
  MIVID_METRIC_GAUGE_SET(
      "cluster/workers_alive",
      static_cast<int64_t>(registry_.AliveEndpoints().size()));

  LineTransportOptions transport;
  transport.uds_path = options_.socket_path;
  transport.tcp_host = options_.tcp_host;
  transport.tcp_port = options_.tcp_port;
  transport.poll_ms = kAcceptPollMs;
  transport_ = std::make_unique<LineTransport>(
      std::move(transport),
      [this](const std::string& line) { return HandleLine(line); },
      [this] { HeartbeatSweep(); });
  Status started = transport_->Start();
  if (!started.ok()) {
    transport_.reset();
    return started;
  }
  MIVID_LOG(Info) << "coordinator fronting " << options_.workers.size()
                  << " worker(s)";
  return Status::OK();
}

void Coordinator::Stop() {
  if (stopping_.exchange(true)) return;
  RequestShutdown();
  if (transport_ != nullptr) transport_->Stop();
}

int Coordinator::tcp_port() const {
  return transport_ != nullptr ? transport_->tcp_port() : -1;
}

size_t Coordinator::session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

void Coordinator::RequestShutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void Coordinator::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

bool Coordinator::WaitForShutdownFor(int timeout_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] { return shutdown_requested_; });
}

std::string Coordinator::HandleLine(const std::string& line) {
  MIVID_METRIC_COUNT("cluster/requests", 1);
  Result<ServeRequest> parsed = ParseServeRequest(line);
  if (!parsed.ok()) {
    MIVID_METRIC_COUNT("cluster/errors", 1);
    return ErrorResponse(parsed.status());
  }
  const ServeRequest& req = parsed.value();

  // Root (or continue) the distributed trace at admission: this span is
  // the cluster-wide parent of everything the request touches. When the
  // client supplied no context, every line relayed or fanned out below
  // is stamped with it, so worker spans nest under the coordinator's in
  // the stitched fleet timeline.
  ContextSpan span(CoordSpanName(req.cmd), req.trace_id, req.parent_span);
  RequestTraceScope trace_scope(span.active() ? &span.context() : nullptr);
  const std::string* relay = &line;
  std::string stamped;
  if (span.active() && req.trace_id.empty()) {
    // Only lines that carried no context are stamped: a duplicate
    // "trace" key would shadow the client's ids (Find returns the first
    // member), so client-supplied contexts are relayed untouched.
    stamped = StampTraceContext(line, span.context().trace_id,
                                span.context().span_id);
    relay = &stamped;
  }

  // Effective budget for every worker hop this request makes: the
  // smaller of the client's own deadline and the coordinator's per-hop
  // ceiling. Relayed lines that carried no deadline are stamped with it
  // so workers can shed the request if it expires in their queue.
  int64_t budget_ms = options_.rpc_deadline_ms;
  if (req.deadline_ms > 0 &&
      (budget_ms == 0 || req.deadline_ms < budget_ms)) {
    budget_ms = req.deadline_ms;
  }
  const Deadline deadline =
      budget_ms > 0 ? Deadline::AfterMs(budget_ms) : Deadline();
  if (budget_ms > 0 && req.deadline_ms == 0) {
    stamped = StampDeadlineMs(*relay, budget_ms);
    relay = &stamped;
  }

  const bool audited = access_log_.enabled();
  RequestAudit audit;
  RequestAuditScope audit_scope(audited ? &audit : nullptr);
  std::chrono::steady_clock::time_point started;
  if (audited) started = std::chrono::steady_clock::now();

  std::string response = Route(req, *relay, deadline);

  if (audited) {
    AccessRecord record;
    record.role = "coordinator";
    record.node = GetLogIdentity().empty() ? "coord" : GetLogIdentity();
    record.cmd = ServeCmdWireName(req.cmd);
    record.session = req.session_id;
    record.engine = req.engine;
    record.status = ResponseStatusCode(response);
    record.trace_id =
        span.active() ? span.context().trace_id : req.trace_id;
    record.cameras = req.cameras;
    if (record.cameras.empty() && !req.camera_id.empty()) {
      record.cameras.push_back(req.camera_id);
    }
    // Session-addressed requests name no camera on the wire; recover the
    // fan-out from the routed session so a slow multi-camera rank logs
    // which corpora it touched. (The request is already answered — this
    // lock is uncontended bookkeeping, and close has simply dropped the
    // session, leaving the list empty.)
    if ((record.cameras.empty() || record.engine.empty()) &&
        !req.session_id.empty()) {
      if (std::shared_ptr<CoordSession> session =
              FindSession(req.session_id)) {
        std::lock_guard<std::mutex> session_lock(session->mu);
        if (record.engine.empty()) record.engine = session->engine;
        if (record.cameras.empty()) {
          for (const SubSession& sub : session->subs) {
            record.cameras.push_back(sub.camera);
          }
        }
      }
    }
    record.bytes_in = line.size();
    record.bytes_out = response.size();
    record.total_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - started)
                          .count();
    record.audit = audit;
    access_log_.Write(record);
  }
  return response;
}

std::string Coordinator::Route(const ServeRequest& req,
                               const std::string& line,
                               const Deadline& deadline) {
  switch (req.cmd) {
    case ServeCmd::kOpen:
      return CmdOpen(req, line, deadline);
    case ServeCmd::kRank:
      return CmdRank(req, line, deadline);
    case ServeCmd::kFeedback:
      return CmdFeedback(req, line, deadline);
    case ServeCmd::kSave:
    case ServeCmd::kClose:
      return CmdForward(req, line, deadline);
    case ServeCmd::kRefresh:
      return CmdRefresh(req, line, deadline);
    case ServeCmd::kIngest:
    case ServeCmd::kPublish:
      return CmdCameraForward(req, line, deadline);
    case ServeCmd::kStats:
      return CmdStats();
    case ServeCmd::kPing:
      return CmdPing();
    case ServeCmd::kMetrics: {
      // The coordinator's own registry snapshot (fleet rollup lives
      // under cluster_stats).
      JsonLineBuilder out;
      out.Bool("ok", true)
          .Str("cmd", "metrics")
          .Str("role", "coordinator")
          .Str("version", kMividVersion)
          .Bool("metrics_enabled", MetricsEnabled())
          .Int("uptime_s", UptimeSeconds())
          .Raw("metrics", MetricsSnapshotToWireJson(
                              MetricsRegistry::Global().Snapshot()));
      return std::move(out).Build();
    }
    case ServeCmd::kClusterStats:
      return CmdClusterStats();
    case ServeCmd::kTraceDump:
      return CmdTraceDump();
    case ServeCmd::kShutdown: {
      RequestShutdown();
      JsonLineBuilder out;
      out.Bool("ok", true).Str("cmd", "shutdown").Bool("shutting_down", true);
      return std::move(out).Build();
    }
  }
  return ErrorResponse(Status::Internal("unhandled command"));
}

std::shared_ptr<Coordinator::CoordSession> Coordinator::FindSession(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::string Coordinator::OpenLineFor(const CoordSession& session,
                                     const SubSession& sub) const {
  JsonLineBuilder line;
  line.Str("cmd", "open").Str("session", sub.sub_id).Str("camera",
                                                         sub.camera);
  if (!session.engine.empty()) line.Str("engine", session.engine);
  StampRequestTrace(line);
  return std::move(line).Build();
}

Result<std::vector<std::string>> Coordinator::PlaceCamera(
    const std::string& camera) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  std::vector<std::string> owners =
      ring_.Owners(camera, static_cast<size_t>(options_.replication));
  if (owners.empty()) {
    return Status::FailedPrecondition("placement ring has no live workers");
  }
  return owners;
}

Result<std::string> Coordinator::CallSub(CoordSession& session,
                                         SubSession& sub,
                                         const std::string& line,
                                         const Deadline& deadline,
                                         bool prefer_fastest) {
  bool saw_malformed = false;
  bool prior_deadline_miss = false;
  bool resume_attempted = false;
  for (;;) {
    // This round's candidates: the sub's live replicas, primary-first
    // (or fastest-first for rank — EWMA is a relaxed read, so ties and
    // staleness only cost a slightly worse ordering).
    std::vector<WorkerConn*> live;
    for (const std::string& endpoint : sub.workers) {
      WorkerConn* worker = registry_.Find(endpoint);
      if (worker != nullptr &&
          worker->alive.load(std::memory_order_acquire)) {
        live.push_back(worker);
      }
    }
    if (prefer_fastest && live.size() > 1) {
      std::stable_sort(live.begin(), live.end(),
                       [](WorkerConn* a, WorkerConn* b) {
                         return a->ewma_us.load(std::memory_order_relaxed) <
                                b->ewma_us.load(std::memory_order_relaxed);
                       });
    }

    for (size_t i = 0; i < live.size(); ++i) {
      WorkerConn* worker = live[i];
      if (deadline.expired()) {
        return Status::DeadlineExceeded(
            "deadline exhausted while failing over camera '" +
            sub.camera + "'");
      }
      // Split the remaining budget evenly over the replicas not yet
      // tried, plus one share held in reserve for failover: a hung
      // replica burns one slice, never the whole budget, so the hedged
      // retry — or a re-open on a fresh owner — still has time to
      // answer.
      Deadline attempt = deadline;
      if (!deadline.infinite()) {
        int64_t slice = deadline.remaining_ms() /
                        static_cast<int64_t>(live.size() - i + 1);
        if (slice < 10) slice = 10;
        attempt = deadline.ClampedToMs(slice);
      }
      if (prior_deadline_miss && prefer_fastest) {
        MIVID_METRIC_COUNT("cluster/hedged_ranks", 1);
      }
      prior_deadline_miss = false;
      Result<std::string> response =
          registry_.Call(*worker, line, attempt);
      if (response.ok()) {
        // A reply we cannot parse means the stream is corrupt
        // (truncated write, desynced framing): treat the worker like a
        // dead one, but remember that bytes were lost in case no
        // replica can answer.
        if (ParseJson(response.value()).ok()) {
          // A live worker answering NOT_FOUND for a session the
          // coordinator is actively routing has restarted since the
          // sub-session was opened (a supervised respawn on the same
          // endpoint): its process is fresh, its in-memory sessions are
          // gone. Re-open in place — journal replay reconstructs the
          // exact pre-crash state — and retry the request once.
          if (!resume_attempted &&
              ResponseStatusCode(response.value()) == "NOT_FOUND") {
            resume_attempted = true;
            Result<std::string> reopened = registry_.Call(
                *worker, OpenLineFor(session, sub), attempt);
            if (reopened.ok() && ParseJson(reopened.value()).ok() &&
                ResponseStatusCode(reopened.value()) == "OK") {
              MIVID_METRIC_COUNT("cluster/sessions_resumed", 1);
              MIVID_LOG(Info)
                  << "session '" << sub.sub_id
                  << "' resumed on restarted worker " << worker->endpoint;
              Result<std::string> retried =
                  registry_.Call(*worker, line, attempt);
              if (retried.ok() && ParseJson(retried.value()).ok()) {
                return retried;
              }
            }
          }
          return response;
        }
        MIVID_LOG(Warn) << "worker " << worker->endpoint
                        << " sent a malformed reply; marking dead";
        MIVID_METRIC_COUNT("cluster/malformed_replies", 1);
        registry_.MarkDead(*worker);
        saw_malformed = true;
      } else if (response.status().IsDeadlineExceeded()) {
        prior_deadline_miss = true;
      }
      // The replica is unusable (dead, timed out, or desynced): drop it
      // from the ring so placement stops handing it out. The heartbeat
      // re-admits it when it answers again.
      {
        std::lock_guard<std::mutex> lock(ring_mu_);
        ring_.Remove(worker->endpoint);
      }
    }
    MIVID_METRIC_GAUGE_SET(
        "cluster/workers_alive",
        static_cast<int64_t>(registry_.AliveEndpoints().size()));

    // Every current replica is gone. Re-place the camera on the ring
    // and resume the sub-session on the new owners: workers share one
    // database, so a new owner replays the feedback journal and
    // reconstructs the exact pre-crash session state.
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          "deadline exhausted while failing over camera '" + sub.camera +
          "'");
    }
    Result<std::vector<std::string>> placed = PlaceCamera(sub.camera);
    if (!placed.ok()) {
      if (saw_malformed) {
        return Status::DataLoss(
            "camera '" + sub.camera +
            "' has no live replica and the last reply was corrupt");
      }
      return Status::FailedPrecondition(
          "no live workers left for camera '" + sub.camera + "'");
    }
    std::vector<std::string> owners = std::move(placed).value();
    // Drop owners we already burned this round (all of sub.workers).
    owners.erase(std::remove_if(owners.begin(), owners.end(),
                                [&sub](const std::string& endpoint) {
                                  return std::find(sub.workers.begin(),
                                                   sub.workers.end(),
                                                   endpoint) !=
                                         sub.workers.end();
                                }),
                 owners.end());
    if (owners.empty()) {
      return saw_malformed
                 ? Status::DataLoss("camera '" + sub.camera +
                                    "' has no usable replica and the "
                                    "last reply was corrupt")
                 : Status::FailedPrecondition(
                       "no live workers left for camera '" + sub.camera +
                       "'");
    }
    const std::string open_line = OpenLineFor(session, sub);
    std::vector<std::string> reopened;
    for (const std::string& endpoint : owners) {
      // Dialing a healthy worker with an exhausted budget would make it
      // look dead; report the timeout instead of spreading it.
      if (deadline.expired()) {
        return Status::DeadlineExceeded(
            "deadline exhausted while failing over camera '" +
            sub.camera + "'");
      }
      WorkerConn* next = registry_.Find(endpoint);
      if (next == nullptr) continue;
      Result<std::string> opened =
          registry_.Call(*next, open_line, deadline);
      if (!opened.ok()) {
        std::lock_guard<std::mutex> lock(ring_mu_);
        ring_.Remove(endpoint);
        continue;
      }
      if (!ParseJson(opened.value()).ok()) {
        // Corrupt re-open reply: same treatment as a corrupt call reply.
        MIVID_METRIC_COUNT("cluster/malformed_replies", 1);
        registry_.MarkDead(*next);
        saw_malformed = true;
        std::lock_guard<std::mutex> lock(ring_mu_);
        ring_.Remove(endpoint);
        continue;
      }
      if (!ResponseOk(opened.value())) {
        return Status::FailedPrecondition(
            "failover re-open of '" + sub.sub_id + "' on " + endpoint +
            " failed: " + ResponseError(opened.value()));
      }
      reopened.push_back(endpoint);
    }
    if (reopened.empty()) continue;  // keep walking the ring
    MIVID_LOG(Warn) << "session " << sub.sub_id << " failed over "
                    << (sub.workers.empty() ? std::string("<none>")
                                            : sub.workers[0])
                    << " -> " << reopened[0];
    sub.workers = std::move(reopened);
    MIVID_METRIC_COUNT("cluster/sessions_failed_over", 1);
    // Loop retries the original request on the new home.
  }
}

Result<std::string> Coordinator::MirrorSub(CoordSession& session,
                                          SubSession& sub,
                                          const std::string& line,
                                          const Deadline& deadline) {
  Result<std::string> primary = CallSub(session, sub, line, deadline);
  if (!primary.ok()) return primary;
  // Best-effort mirror keeps the other replicas' in-memory session state
  // in sync so rank can be served from any of them. Journaling is
  // idempotent (full-state rewrite of a shared file), so replaying the
  // same write on every replica converges instead of duplicating. A
  // replica that cannot keep up is dropped from the sub's replica set;
  // the next failover re-places the camera and re-opens it.
  for (size_t i = 1; i < sub.workers.size();) {
    WorkerConn* worker = registry_.Find(sub.workers[i]);
    Result<std::string> mirrored =
        worker != nullptr && worker->alive.load(std::memory_order_acquire)
            ? registry_.Call(*worker, line, deadline)
            : Result<std::string>(
                  Status::IOError("replica is not connected"));
    if (mirrored.ok() && ResponseOk(mirrored.value())) {
      ++i;
      continue;
    }
    MIVID_LOG(Warn) << "dropping replica " << sub.workers[i] << " of "
                    << sub.sub_id << ": mirror failed ("
                    << (mirrored.ok() ? ResponseError(mirrored.value())
                                      : mirrored.status().message())
                    << ")";
    MIVID_METRIC_COUNT("cluster/mirror_failures", 1);
    sub.workers.erase(sub.workers.begin() + static_cast<long>(i));
  }
  return primary;
}

std::string Coordinator::CmdOpen(const ServeRequest& req,
                                 const std::string& line,
                                 const Deadline& deadline) {
  const bool multi = !req.cameras.empty();
  if (!multi && req.camera_id.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("open requires a camera (or cameras)"));
  }

  std::shared_ptr<CoordSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(req.session_id);
    if (it != sessions_.end()) {
      session = it->second;
    } else {
      session = std::make_shared<CoordSession>();
      session->id = req.session_id;
      session->engine = req.engine;
      session->multi = multi;
      sessions_[req.session_id] = session;
    }
  }
  std::lock_guard<std::mutex> session_lock(session->mu);
  if (session->multi != multi) {
    return ErrorResponse(Status::AlreadyExists(
        "session '" + req.session_id +
        "' is already open with a different camera layout"));
  }

  auto drop_session = [this, &req] {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(req.session_id);
  };

  if (!multi) {
    // Single-camera: passthrough. The worker's response is relayed
    // byte-for-byte, so clients cannot tell the fleet from one process.
    // The same open line is mirrored to the camera's other replicas so
    // any of them can serve rank.
    if (session->subs.empty()) {
      Result<std::vector<std::string>> placed = PlaceCamera(req.camera_id);
      if (!placed.ok()) {
        drop_session();
        return ErrorResponse(placed.status());
      }
      session->subs.push_back(SubSession{
          req.camera_id, std::move(placed).value(), req.session_id});
    } else if (session->subs[0].camera != req.camera_id) {
      return ErrorResponse(Status::AlreadyExists(
          "session '" + req.session_id + "' is already open on camera '" +
          session->subs[0].camera + "'"));
    }
    Result<std::string> response =
        MirrorSub(*session, session->subs[0], line, deadline);
    if (!response.ok()) {
      drop_session();
      return ErrorResponse(response.status());
    }
    if (!ResponseOk(response.value())) drop_session();
    return response.value();
  }

  // Multi-camera: one sub-session per camera on that camera's owners.
  if (session->subs.empty()) {
    for (const std::string& camera : req.cameras) {
      const std::string sub_id = req.session_id + "-" + camera;
      if (!ValidSessionId(sub_id)) {
        drop_session();
        return ErrorResponse(Status::InvalidArgument(
            "camera '" + camera + "' does not yield a valid sub-session "
            "id ('" + sub_id + "' must be 1..64 chars of [A-Za-z0-9._-])"));
      }
      Result<std::vector<std::string>> placed = PlaceCamera(camera);
      if (!placed.ok()) {
        drop_session();
        return ErrorResponse(placed.status());
      }
      session->subs.push_back(
          SubSession{camera, std::move(placed).value(), sub_id});
    }
  }

  int64_t total_bags = 0;
  bool resumed = false;
  for (SubSession& sub : session->subs) {
    Result<std::string> response =
        MirrorSub(*session, sub, OpenLineFor(*session, sub), deadline);
    if (!response.ok()) {
      drop_session();
      return ErrorResponse(response.status());
    }
    if (!ResponseOk(response.value())) {
      drop_session();
      return ErrorResponse(Status::FailedPrecondition(
          "open of camera '" + sub.camera +
          "' failed: " + ResponseError(response.value())));
    }
    Result<JsonValue> doc = ParseJson(response.value());
    if (doc.ok()) {
      const JsonValue* bags = doc.value().Find("bags");
      if (bags != nullptr && bags->is_number()) {
        total_bags += static_cast<int64_t>(bags->number);
      }
      const JsonValue* was_resumed = doc.value().Find("resumed");
      if (was_resumed != nullptr && was_resumed->bool_value) resumed = true;
    }
  }

  std::string cameras = "[";
  for (size_t i = 0; i < session->subs.size(); ++i) {
    if (i > 0) cameras += ',';
    cameras += '"';
    cameras += JsonEscape(session->subs[i].camera);
    cameras += '"';
  }
  cameras += ']';
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "open")
      .Str("session", session->id)
      .Raw("cameras", cameras)
      .Str("engine", session->engine)
      .Int("bags", total_bags)
      .Bool("resumed", resumed);
  return std::move(out).Build();
}

std::string Coordinator::CmdRank(const ServeRequest& req,
                                 const std::string& line,
                                 const Deadline& deadline) {
  MIVID_SCOPED_TIMER("cluster/rank_seconds");
  std::shared_ptr<CoordSession> session = FindSession(req.session_id);
  if (session == nullptr) {
    return ErrorResponse(
        Status::NotFound("session '" + req.session_id + "' is not open"));
  }
  std::lock_guard<std::mutex> session_lock(session->mu);

  if (!session->multi) {
    Result<std::string> response =
        CallSub(*session, session->subs[0], line, deadline,
                /*prefer_fastest=*/true);
    if (!response.ok()) return ErrorResponse(response.status());
    return response.value();
  }

  // Scatter: every sub-session ranks its own corpus in parallel (calls
  // to distinct workers overlap; the per-worker connection mutex
  // serializes subs that share a worker). Each worker returns its exact
  // per-corpus top-k, so merging and truncating is exact (cluster/merger.h).
  const size_t k = req.top == 0   ? static_cast<size_t>(options_.top_n)
                   : req.top > 0 ? static_cast<size_t>(req.top)
                                 : 0;  // full ranking
  MIVID_METRIC_COUNT("cluster/fanout_requests",
                     static_cast<int64_t>(session->subs.size()));
  std::vector<std::vector<ClusterScoredBag>> parts;
  parts.reserve(session->subs.size());
  std::vector<std::string> missing_cameras;
  int64_t total = 0;
  {
    // The scatter-gather half of the request gets its own child span;
    // fan-out lines are stamped with it, so per-worker rank spans nest
    // under coord/scatter in the stitched timeline.
    ContextSpan scatter_span(
        "coord/scatter",
        t_request_trace != nullptr ? t_request_trace->trace_id
                                   : std::string(),
        t_request_trace != nullptr ? t_request_trace->span_id
                                   : std::string());
    RequestTraceScope scatter_scope(
        scatter_span.active() ? &scatter_span.context() : nullptr);

    std::vector<std::future<Result<std::string>>> futures;
    futures.reserve(session->subs.size());
    for (SubSession& sub : session->subs) {
      JsonLineBuilder sub_line;
      sub_line.Str("cmd", "rank").Str("session", sub.sub_id).Int(
          "top", req.top < 0 ? -1 : static_cast<int64_t>(k));
      StampRequestTrace(sub_line);
      StampDeadline(sub_line, deadline);
      futures.push_back(std::async(
          std::launch::async,
          [this, &session, &sub, deadline,
           request = std::move(sub_line).Build()] {
            return CallSub(*session, sub, request, deadline,
                           /*prefer_fastest=*/true);
          }));
    }

    for (size_t i = 0; i < futures.size(); ++i) {
      Result<std::string> response = futures[i].get();
      const std::string& camera = session->subs[i].camera;
      if (!response.ok()) {
        // Every replica of this camera is gone (or out of budget).
        // Degrade instead of failing the whole request: the surviving
        // cameras' merged ranking is still exact for the corpora it
        // covers, and the response says which cameras are missing.
        MIVID_LOG(Warn) << "rank degrading without camera '" << camera
                        << "': " << response.status().ToString();
        missing_cameras.push_back(camera);
        continue;
      }
      Result<JsonValue> doc = ParseJson(response.value());
      if (!doc.ok() || !ResponseOk(response.value())) {
        for (size_t j = i + 1; j < futures.size(); ++j) futures[j].wait();
        return ErrorResponse(Status::Internal(
            "rank on camera '" + camera +
            "' failed: " + ResponseError(response.value())));
      }
      const JsonValue* worker_total = doc.value().Find("total");
      if (worker_total != nullptr && worker_total->is_number()) {
        total += static_cast<int64_t>(worker_total->number);
      }
      const JsonValue* ranking = doc.value().Find("ranking");
      std::vector<ClusterScoredBag> part;
      if (ranking != nullptr && ranking->is_array()) {
        part.reserve(ranking->array.size());
        for (const JsonValue& item : ranking->array) {
          const JsonValue* bag = item.Find("bag");
          const JsonValue* score = item.Find("score");
          if (bag == nullptr || score == nullptr) continue;
          part.push_back(ClusterScoredBag{camera,
                                          static_cast<int>(bag->number),
                                          score->number});
        }
      }
      parts.push_back(std::move(part));
    }
  }
  if (missing_cameras.size() == session->subs.size()) {
    return ErrorResponse(Status::FailedPrecondition(
        "no live workers left for any camera of session '" + session->id +
        "'"));
  }

  std::vector<ClusterScoredBag> merged;
  {
    ContextSpan merge_span(
        "coord/merge",
        t_request_trace != nullptr ? t_request_trace->trace_id
                                   : std::string(),
        t_request_trace != nullptr ? t_request_trace->span_id
                                   : std::string());
    AuditPhaseTimer merge_phase(&RequestAudit::merge_ms);
    merged = MergeTopK(std::move(parts), k);
  }

  AuditPhaseTimer serialize_phase(&RequestAudit::serialize_ms);
  std::string items = "[";
  for (size_t i = 0; i < merged.size(); ++i) {
    if (i > 0) items += ',';
    items += StrFormat("{\"camera\":\"%s\",\"bag\":%d,\"score\":%.17g}",
                       JsonEscape(merged[i].camera).c_str(),
                       merged[i].bag_id, merged[i].score);
  }
  items += ']';

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "rank")
      .Str("session", session->id)
      .Int("cameras", static_cast<int64_t>(session->subs.size()))
      .Int("total", total)
      .Raw("ranking", items);
  if (!missing_cameras.empty()) {
    MIVID_METRIC_COUNT("cluster/degraded_responses", 1);
    std::string missing = "[";
    for (size_t i = 0; i < missing_cameras.size(); ++i) {
      if (i > 0) missing += ',';
      missing += '"';
      missing += JsonEscape(missing_cameras[i]);
      missing += '"';
    }
    missing += ']';
    out.Raw("degraded", "{\"missing_cameras\":" + missing + "}");
  }
  return std::move(out).Build();
}

std::string Coordinator::CmdFeedback(const ServeRequest& req,
                                     const std::string& line,
                                     const Deadline& deadline) {
  std::shared_ptr<CoordSession> session = FindSession(req.session_id);
  if (session == nullptr) {
    return ErrorResponse(
        Status::NotFound("session '" + req.session_id + "' is not open"));
  }
  std::lock_guard<std::mutex> session_lock(session->mu);

  if (!session->multi) {
    Result<std::string> response =
        MirrorSub(*session, session->subs[0], line, deadline);
    if (!response.ok()) return ErrorResponse(response.status());
    return response.value();
  }

  // Group labels by camera, preserving input order within each group.
  std::map<std::string, std::string> per_camera;  // camera -> labels json
  for (size_t i = 0; i < req.labels.size(); ++i) {
    const std::string& camera = req.label_cameras[i];
    if (camera.empty()) {
      return ErrorResponse(Status::InvalidArgument(
          "label entries in a multi-camera session need a \"camera\""));
    }
    std::string& items = per_camera[camera];
    if (items.empty()) {
      items = "[";
    } else {
      items += ',';
    }
    items += StrFormat("{\"bag\":%d,\"label\":\"%s\"}", req.labels[i].first,
                       BagLabelWireName(req.labels[i].second));
  }

  int64_t labeled = 0;
  for (auto& [camera, items] : per_camera) {
    SubSession* sub = nullptr;
    for (SubSession& candidate : session->subs) {
      if (candidate.camera == camera) {
        sub = &candidate;
        break;
      }
    }
    if (sub == nullptr) {
      return ErrorResponse(Status::InvalidArgument(
          "camera '" + camera + "' is not part of session '" + session->id +
          "'"));
    }
    items += ']';
    JsonLineBuilder sub_line;
    sub_line.Str("cmd", "feedback").Str("session", sub->sub_id).Raw(
        "labels", items);
    StampRequestTrace(sub_line);
    StampDeadline(sub_line, deadline);
    Result<std::string> response =
        MirrorSub(*session, *sub, std::move(sub_line).Build(), deadline);
    if (!response.ok()) return ErrorResponse(response.status());
    Result<JsonValue> doc = ParseJson(response.value());
    if (!doc.ok() || !ResponseOk(response.value())) {
      return ErrorResponse(Status::Internal(
          "feedback on camera '" + camera +
          "' failed: " + ResponseError(response.value())));
    }
    const JsonValue* count = doc.value().Find("labeled");
    if (count != nullptr && count->is_number()) {
      labeled += static_cast<int64_t>(count->number);
    }
  }

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "feedback")
      .Str("session", session->id)
      .Int("labeled", labeled)
      .Bool("journaled", true);
  return std::move(out).Build();
}

std::string Coordinator::CmdForward(const ServeRequest& req,
                                    const std::string& line,
                                    const Deadline& deadline) {
  std::shared_ptr<CoordSession> session = FindSession(req.session_id);
  if (session == nullptr) {
    return ErrorResponse(
        Status::NotFound("session '" + req.session_id + "' is not open"));
  }
  const bool closing = req.cmd == ServeCmd::kClose;
  std::string response_line;
  {
    std::lock_guard<std::mutex> session_lock(session->mu);
    if (!session->multi) {
      Result<std::string> response =
          MirrorSub(*session, session->subs[0], line, deadline);
      if (!response.ok()) return ErrorResponse(response.status());
      response_line = response.value();
    } else {
      const char* cmd = closing ? "close" : "save";
      for (SubSession& sub : session->subs) {
        JsonLineBuilder sub_line;
        sub_line.Str("cmd", cmd).Str("session", sub.sub_id);
        if (closing) sub_line.Bool("discard", req.discard);
        StampRequestTrace(sub_line);
        StampDeadline(sub_line, deadline);
        Result<std::string> response =
            MirrorSub(*session, sub, std::move(sub_line).Build(), deadline);
        if (!response.ok()) return ErrorResponse(response.status());
        if (!ResponseOk(response.value())) {
          return ErrorResponse(Status::Internal(
              std::string(cmd) + " on camera '" + sub.camera +
              "' failed: " + ResponseError(response.value())));
        }
      }
      JsonLineBuilder out;
      out.Bool("ok", true)
          .Str("cmd", cmd)
          .Str("session", session->id)
          .Int("cameras", static_cast<int64_t>(session->subs.size()));
      if (closing) out.Bool("journaled", !req.discard);
      response_line = std::move(out).Build();
    }
  }
  if (closing && ResponseOk(response_line)) {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(req.session_id);
  }
  return response_line;
}

std::string Coordinator::CmdRefresh(const ServeRequest& req,
                                    const std::string& line,
                                    const Deadline& deadline) {
  std::shared_ptr<CoordSession> session = FindSession(req.session_id);
  if (session == nullptr) {
    return ErrorResponse(
        Status::NotFound("session '" + req.session_id + "' is not open"));
  }
  std::lock_guard<std::mutex> session_lock(session->mu);

  if (!session->multi) {
    // Refresh re-pins in-memory state, so it is mirrored like the other
    // write-path commands: every replica moves to the latest epoch it
    // can see, keeping rank consistent whichever replica answers.
    Result<std::string> response =
        MirrorSub(*session, session->subs[0], line, deadline);
    if (!response.ok()) return ErrorResponse(response.status());
    return response.value();
  }

  int64_t total_bags = 0;
  bool refreshed = false;
  std::string epochs = "{";
  bool first = true;
  for (SubSession& sub : session->subs) {
    JsonLineBuilder sub_line;
    sub_line.Str("cmd", "refresh").Str("session", sub.sub_id);
    StampRequestTrace(sub_line);
    StampDeadline(sub_line, deadline);
    Result<std::string> response =
        MirrorSub(*session, sub, std::move(sub_line).Build(), deadline);
    if (!response.ok()) return ErrorResponse(response.status());
    Result<JsonValue> doc = ParseJson(response.value());
    if (!doc.ok() || !ResponseOk(response.value())) {
      return ErrorResponse(Status::Internal(
          "refresh on camera '" + sub.camera +
          "' failed: " + ResponseError(response.value())));
    }
    if (!first) epochs += ',';
    first = false;
    const JsonValue* epoch = doc.value().Find("epoch");
    epochs += '"';
    epochs += JsonEscape(sub.camera);
    epochs += "\":";
    epochs += std::to_string(epoch != nullptr && epoch->is_number()
                                 ? static_cast<int64_t>(epoch->number)
                                 : 0);
    const JsonValue* bags = doc.value().Find("bags");
    if (bags != nullptr && bags->is_number()) {
      total_bags += static_cast<int64_t>(bags->number);
    }
    const JsonValue* moved = doc.value().Find("refreshed");
    if (moved != nullptr && moved->type == JsonValue::Type::kBool &&
        moved->bool_value) {
      refreshed = true;
    }
  }
  epochs += '}';

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "refresh")
      .Str("session", session->id)
      .Int("cameras", static_cast<int64_t>(session->subs.size()))
      .Int("bags", total_bags)
      .Bool("refreshed", refreshed)
      .Raw("epochs", epochs);
  return std::move(out).Build();
}

std::string Coordinator::CmdCameraForward(const ServeRequest& req,
                                          const std::string& line,
                                          const Deadline& deadline) {
  MIVID_METRIC_COUNT("cluster/camera_relays", 1);
  for (;;) {
    if (deadline.expired()) {
      return ErrorResponse(Status::DeadlineExceeded(
          "deadline exhausted relaying " +
          std::string(ServeCmdWireName(req.cmd)) + " for camera '" +
          req.camera_id + "'"));
    }
    Result<std::vector<std::string>> placed = PlaceCamera(req.camera_id);
    if (!placed.ok()) return ErrorResponse(placed.status());
    const std::string primary = placed.value()[0];
    WorkerConn* worker = registry_.Find(primary);
    if (worker == nullptr ||
        !worker->alive.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(ring_mu_);
      ring_.Remove(primary);
      continue;
    }
    Result<std::string> response = registry_.Call(*worker, line, deadline);
    if (response.ok() && ParseJson(response.value()).ok()) {
      return response.value();
    }
    if (response.ok()) {
      MIVID_METRIC_COUNT("cluster/malformed_replies", 1);
      registry_.MarkDead(*worker);
    }
    {
      std::lock_guard<std::mutex> lock(ring_mu_);
      ring_.Remove(primary);
    }
    MIVID_METRIC_GAUGE_SET(
        "cluster/workers_alive",
        static_cast<int64_t>(registry_.AliveEndpoints().size()));
    MIVID_LOG(Warn) << "camera '" << req.camera_id << "' "
                    << ServeCmdWireName(req.cmd) << " failing over from "
                    << primary;
    // Loop re-places the camera: the next ring owner becomes the
    // stream's new home (a fresh ingestor — the db-persisted clips are
    // intact, only the open clip's frames are lost with the worker).
  }
}

std::string Coordinator::CmdStats() {
  std::string workers = "[";
  bool first = true;
  std::vector<std::string> placed;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    placed = ring_.Workers();
  }
  for (const auto& worker : registry_.workers()) {
    if (!first) workers += ',';
    first = false;
    const bool on_ring =
        std::find(placed.begin(), placed.end(), worker->endpoint) !=
        placed.end();
    workers += StrFormat(
        "{\"endpoint\":\"%s\",\"alive\":%s,\"on_ring\":%s,"
        "\"requests\":%llu,\"failures\":%llu,\"ewma_us\":%lld}",
        JsonEscape(worker->endpoint).c_str(),
        worker->alive.load(std::memory_order_acquire) ? "true" : "false",
        on_ring ? "true" : "false",
        static_cast<unsigned long long>(
            worker->requests.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            worker->failures.load(std::memory_order_relaxed)),
        static_cast<long long>(
            worker->ewma_us.load(std::memory_order_relaxed)));
  }
  workers += ']';

  std::string ids = "[";
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    bool first_id = true;
    for (const auto& [id, session] : sessions_) {
      if (!first_id) ids += ',';
      first_id = false;
      ids += '"';
      ids += JsonEscape(id);
      ids += '"';
    }
  }
  ids += ']';

  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "stats")
      .Str("role", "coordinator")
      .Int("workers_alive",
           static_cast<int64_t>(registry_.AliveEndpoints().size()))
      .Raw("workers", workers)
      .Int("sessions_open", static_cast<int64_t>(session_count()))
      .Raw("sessions", ids);
  return std::move(out).Build();
}

std::string Coordinator::CmdPing() {
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "ping")
      .Str("role", "coordinator")
      .Str("version", kMividVersion)
      .Str("protocol_version", kProtocolVersion)
      .Int("uptime_s", UptimeSeconds())
      .Int("workers_alive",
           static_cast<int64_t>(registry_.AliveEndpoints().size()))
      .Int("sessions_open", static_cast<int64_t>(session_count()));
  return std::move(out).Build();
}

std::string Coordinator::CmdClusterStats() {
  // Scrape every live worker's registry snapshot and merge them exactly
  // (obs/metrics_wire.h): counters/gauges sum, histograms merge
  // bucket-wise, so fleet percentiles are what one process observing the
  // union would have reported. Per-worker snapshots are kept alongside
  // the rollup, tagged by worker id, for per-node drill-down.
  std::vector<MetricsSnapshot> snapshots;
  std::string workers_json = "[";
  bool first = true;
  int64_t scraped = 0;
  for (const auto& worker : registry_.workers()) {
    if (!first) workers_json += ',';
    first = false;
    JsonLineBuilder entry;
    entry.Str("endpoint", worker->endpoint);
    if (!worker->alive.load(std::memory_order_acquire)) {
      entry.Bool("alive", false);
      workers_json += std::move(entry).Build();
      continue;
    }
    Result<std::string> response = registry_.Call(
        *worker, "{\"cmd\":\"metrics\"}",
        options_.rpc_deadline_ms > 0
            ? Deadline::AfterMs(options_.rpc_deadline_ms)
            : Deadline());
    if (!response.ok()) {
      entry.Bool("alive", false).Str("error",
                                     response.status().message());
      workers_json += std::move(entry).Build();
      continue;
    }
    Result<JsonValue> doc = ParseJson(response.value());
    if (!doc.ok() || !ResponseOk(response.value())) {
      entry.Bool("alive", true).Str(
          "error", "bad metrics response: " +
                       ResponseError(response.value()));
      workers_json += std::move(entry).Build();
      continue;
    }
    const JsonValue& obj = doc.value();
    entry.Bool("alive", true);
    if (const JsonValue* id = obj.Find("worker");
        id != nullptr && id->is_string()) {
      entry.Str("worker_id", id->string);
    }
    if (const JsonValue* version = obj.Find("version");
        version != nullptr && version->is_string()) {
      entry.Str("version", version->string);
    }
    for (const char* field :
         {"uptime_s", "sessions_open", "requests_served",
          "requests_rejected"}) {
      if (const JsonValue* v = obj.Find(field);
          v != nullptr && v->is_number()) {
        entry.Int(field, static_cast<int64_t>(v->number));
      }
    }
    const JsonValue* metrics = obj.Find("metrics");
    if (metrics == nullptr) {
      entry.Str("error", "metrics response without a metrics member");
      workers_json += std::move(entry).Build();
      continue;
    }
    Result<MetricsSnapshot> snapshot = MetricsSnapshotFromWireJson(*metrics);
    if (!snapshot.ok()) {
      entry.Str("error", snapshot.status().message());
      workers_json += std::move(entry).Build();
      continue;
    }
    snapshots.push_back(std::move(snapshot).value());
    ++scraped;
    // Re-serialized (not relayed) so every snapshot in the response uses
    // one canonical formatting, including the fleet rollup.
    entry.Raw("metrics", MetricsSnapshotToWireJson(snapshots.back()));
    workers_json += std::move(entry).Build();
  }
  workers_json += ']';

  const MetricsSnapshot fleet = MergeMetricsSnapshots(snapshots);
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "cluster_stats")
      .Str("role", "coordinator")
      .Str("version", kMividVersion)
      .Int("uptime_s", UptimeSeconds())
      .Int("workers_alive",
           static_cast<int64_t>(registry_.AliveEndpoints().size()))
      .Int("workers_scraped", scraped)
      .Raw("workers", workers_json)
      .Raw("fleet", MetricsSnapshotToWireJson(fleet))
      .Raw("coordinator", MetricsSnapshotToWireJson(
                              MetricsRegistry::Global().Snapshot()));
  return std::move(out).Build();
}

std::string Coordinator::CmdTraceDump() {
  // Gather every process's Chrome trace and stitch them into one
  // cluster timeline (obs/trace_stitch.h). The coordinator's own trace
  // goes first (pid 1); workers follow in registration order.
  std::vector<ProcessTrace> inputs;
  {
    ProcessTrace own;
    own.label = GetLogIdentity().empty() ? "coord" : GetLogIdentity();
    Result<JsonValue> doc = ParseJson(TraceToChromeJson());
    if (doc.ok()) {
      own.doc = std::move(doc).value();
      inputs.push_back(std::move(own));
    }
  }
  int64_t workers_dumped = 0;
  for (const auto& worker : registry_.workers()) {
    if (!worker->alive.load(std::memory_order_acquire)) continue;
    Result<std::string> response = registry_.Call(
        *worker, "{\"cmd\":\"trace_dump\"}",
        options_.rpc_deadline_ms > 0
            ? Deadline::AfterMs(options_.rpc_deadline_ms)
            : Deadline());
    if (!response.ok()) continue;
    Result<JsonValue> doc = ParseJson(response.value());
    if (!doc.ok() || !ResponseOk(response.value())) continue;
    const JsonValue* trace = doc.value().Find("trace");
    if (trace == nullptr || !trace->is_object()) continue;
    ProcessTrace input;
    const JsonValue* id = doc.value().Find("worker");
    input.label = (id != nullptr && id->is_string() && !id->string.empty())
                      ? id->string
                      : worker->endpoint;
    input.doc = *trace;
    inputs.push_back(std::move(input));
    ++workers_dumped;
  }
  Result<std::string> stitched = StitchChromeTraces(inputs);
  if (!stitched.ok()) return ErrorResponse(stitched.status());
  JsonLineBuilder out;
  out.Bool("ok", true)
      .Str("cmd", "trace_dump")
      .Str("role", "coordinator")
      .Bool("tracing_enabled", TracingEnabled())
      .Int("processes", static_cast<int64_t>(inputs.size()))
      .Int("workers_dumped", workers_dumped)
      .Raw("trace", stitched.value());
  return std::move(out).Build();
}

int64_t Coordinator::UptimeSeconds() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

void Coordinator::HeartbeatSweep() {
  if (options_.heartbeat_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  if (now - last_heartbeat_ <
      std::chrono::milliseconds(options_.heartbeat_ms)) {
    return;
  }
  last_heartbeat_ = now;
  // Probes are deadline-bounded so a hung worker cannot stall the sweep
  // (and with it the accept loop's idle callback) indefinitely.
  const Deadline probe_deadline =
      options_.rpc_deadline_ms > 0
          ? Deadline::AfterMs(options_.rpc_deadline_ms)
          : Deadline();
  for (const auto& worker : registry_.workers()) {
    if (worker->alive.load(std::memory_order_acquire)) {
      if (!registry_.Ping(*worker, probe_deadline)) {
        std::lock_guard<std::mutex> lock(ring_mu_);
        ring_.Remove(worker->endpoint);
      }
    } else if (registry_.Reconnect(*worker).ok() &&
               registry_.Ping(*worker, probe_deadline)) {
      // A restarted worker on the same endpoint rejoins the ring; its
      // cameras re-home to it on the next placement lookup.
      std::lock_guard<std::mutex> lock(ring_mu_);
      ring_.Add(worker->endpoint);
      MIVID_LOG(Info) << "worker " << worker->endpoint
                      << " rejoined the ring";
    }
  }
  MIVID_METRIC_GAUGE_SET(
      "cluster/workers_alive",
      static_cast<int64_t>(registry_.AliveEndpoints().size()));
}

}  // namespace mivid

#include "cluster/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace mivid {

namespace {

/// Scans a worker's log for the "tcp_port=N" boot line and returns N,
/// or -1 when the line has not appeared yet.
int ScanPortLine(const std::string& log_path) {
  std::ifstream in(log_path);
  if (!in.is_open()) return -1;
  std::string line;
  while (std::getline(in, line)) {
    const size_t at = line.find("tcp_port=");
    if (at == std::string::npos) continue;
    const char* digits = line.c_str() + at + std::strlen("tcp_port=");
    char* end = nullptr;
    const long port = std::strtol(digits, &end, 10);
    if (end != digits && port >= 0 && port <= 65535) {
      return static_cast<int>(port);
    }
  }
  return -1;
}

std::string LogTail(const std::string& log_path, size_t max_bytes = 512) {
  std::ifstream in(log_path, std::ios::binary);
  if (!in.is_open()) return "";
  in.seekg(0, std::ios::end);
  const auto size = static_cast<size_t>(in.tellg());
  const size_t want = size < max_bytes ? size : max_bytes;
  in.seekg(static_cast<std::streamoff>(size - want));
  std::string tail(want, '\0');
  in.read(tail.data(), static_cast<std::streamsize>(want));
  return tail;
}

}  // namespace

WorkerSupervisor::WorkerSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

WorkerSupervisor::~WorkerSupervisor() { StopAll(); }

Status WorkerSupervisor::SpawnAll() {
  if (options_.count <= 0) {
    return Status::InvalidArgument("spawn count must be positive");
  }
  if (options_.cli_path.empty() || options_.db_path.empty()) {
    return Status::InvalidArgument(
        "supervisor needs the cli binary and a database path");
  }
  if (!options_.log_dir.empty()) {
    ::mkdir(options_.log_dir.c_str(), 0755);  // EEXIST is fine
  }
  children_.clear();
  children_.reserve(static_cast<size_t>(options_.count));
  for (int i = 0; i < options_.count; ++i) {
    Child child;
    child.worker_id = "w" + std::to_string(i);
    const std::string dir =
        options_.log_dir.empty() ? "." : options_.log_dir;
    child.log_path = dir + "/" + child.worker_id + ".log";
    // First spawn binds port 0; the kernel's pick is learned from the
    // boot line and pinned for every restart.
    child.port = 0;
    children_.push_back(std::move(child));
  }
  for (Child& child : children_) {
    Status spawned = Spawn(child);
    if (spawned.ok()) {
      Result<int> port = WaitForPortLine(child);
      if (port.ok()) {
        child.port = port.value();
        MIVID_LOG(Info) << "supervisor: " << child.worker_id << " up on "
                        << options_.tcp_host << ":" << child.port
                        << " (pid " << child.pid << ")";
        continue;
      }
      spawned = port.status();
    }
    StopAll();
    return Status(spawned.code(), "spawn of " + child.worker_id +
                                      " failed: " + spawned.message());
  }
  return Status::OK();
}

std::vector<std::string> WorkerSupervisor::endpoints() const {
  std::vector<std::string> out;
  out.reserve(children_.size());
  for (const Child& child : children_) {
    out.push_back(options_.tcp_host + ":" + std::to_string(child.port));
  }
  return out;
}

Status WorkerSupervisor::Spawn(Child& child) {
  const std::string port_flag =
      "--tcp-port=" + std::to_string(child.port);
  const std::string id_flag = "--worker-id=" + child.worker_id;
  std::vector<std::string> args = {options_.cli_path, "serve",
                                   options_.db_path, "none", port_flag,
                                   id_flag};
  for (const std::string& extra : options_.extra_args) {
    args.push_back(extra);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IOError(std::string("fork failed: ") +
                           std::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout/stderr -> the worker's log (the port line is read
    // from there), then exec. Only async-signal-safe calls from here on.
    const int log_fd = ::open(child.log_path.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      if (log_fd > STDERR_FILENO) ::close(log_fd);
    }
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the sweep sees a rapid death
  }
  child.pid = pid;
  child.started = std::chrono::steady_clock::now();
  child.restart_pending = false;
  return Status::OK();
}

Result<int> WorkerSupervisor::WaitForPortLine(const Child& child) const {
  const auto give_up_at =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.spawn_wait_ms);
  for (;;) {
    const int port = ScanPortLine(child.log_path);
    if (port >= 0) return port;
    int wstatus = 0;
    if (::waitpid(child.pid, &wstatus, WNOHANG) == child.pid) {
      return Status::Internal(child.worker_id +
                              " exited before printing its port; log "
                              "tail: " +
                              LogTail(child.log_path));
    }
    if (std::chrono::steady_clock::now() >= give_up_at) {
      return Status::DeadlineExceeded(
          child.worker_id + " did not print tcp_port within " +
          std::to_string(options_.spawn_wait_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void WorkerSupervisor::Sweep() {
  const auto now = std::chrono::steady_clock::now();
  for (Child& child : children_) {
    if (child.gave_up) continue;
    if (child.pid > 0 && !child.restart_pending) {
      int wstatus = 0;
      const pid_t reaped = ::waitpid(child.pid, &wstatus, WNOHANG);
      if (reaped != child.pid) continue;  // still running (or ECHILD)
      const int64_t uptime_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - child.started)
              .count();
      // A worker that ran long enough earns a clean slate: only
      // back-to-back rapid deaths count toward the give-up limit.
      if (uptime_ms >= options_.stable_ms) child.strikes = 0;
      ++child.strikes;
      child.pid = -1;
      if (child.strikes > options_.max_restarts) {
        child.gave_up = true;
        MIVID_LOG(Warn) << "supervisor: " << child.worker_id
                        << " died " << child.strikes
                        << " times in a row; giving up on it";
        continue;
      }
      int64_t backoff = options_.backoff_base_ms;
      for (int i = 1; i < child.strikes &&
                      backoff < options_.backoff_max_ms;
           ++i) {
        backoff *= 2;
      }
      if (backoff > options_.backoff_max_ms) {
        backoff = options_.backoff_max_ms;
      }
      child.restart_pending = true;
      child.restart_due = now + std::chrono::milliseconds(backoff);
      MIVID_LOG(Warn) << "supervisor: " << child.worker_id << " (pid "
                      << reaped << ") died after " << uptime_ms
                      << "ms; restart " << child.strikes << " in "
                      << backoff << "ms";
    }
    if (child.restart_pending && now >= child.restart_due) {
      Status spawned = Spawn(child);
      if (!spawned.ok()) {
        // Try again next sweep; the strike counter already bounds this.
        MIVID_LOG(Warn) << "supervisor: respawn of " << child.worker_id
                        << " failed: " << spawned.ToString();
        continue;
      }
      ++restarts_;
      MIVID_METRIC_COUNT("cluster/worker_restarts", 1);
      MIVID_LOG(Info) << "supervisor: restarted " << child.worker_id
                      << " on port " << child.port << " (pid "
                      << child.pid << ")";
    }
  }
}

void WorkerSupervisor::StopAll() {
  bool any = false;
  for (Child& child : children_) {
    if (child.pid > 0) {
      ::kill(child.pid, SIGTERM);
      any = true;
    }
  }
  if (!any) return;
  // Grace period: poll for clean exits before escalating to SIGKILL.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool alive = false;
    for (Child& child : children_) {
      if (child.pid <= 0) continue;
      if (::waitpid(child.pid, nullptr, WNOHANG) == child.pid) {
        child.pid = -1;
      } else {
        alive = true;
      }
    }
    if (!alive) return;
    if (std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  for (Child& child : children_) {
    if (child.pid > 0) {
      ::kill(child.pid, SIGKILL);
      ::waitpid(child.pid, nullptr, 0);
      child.pid = -1;
    }
  }
}

int WorkerSupervisor::given_up() const {
  int count = 0;
  for (const Child& child : children_) {
    if (child.gave_up) ++count;
  }
  return count;
}

}  // namespace mivid

#include "cluster/merger.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"

namespace mivid {

bool ClusterRankLess(const ClusterScoredBag& a, const ClusterScoredBag& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.camera != b.camera) return a.camera < b.camera;
  return a.bag_id < b.bag_id;
}

std::vector<ClusterScoredBag> MergeTopK(
    std::vector<std::vector<ClusterScoredBag>> parts, size_t k) {
  MIVID_SCOPED_TIMER("cluster/merge_seconds");

  // Heap entry: the next unconsumed element of one part. `part`/`index`
  // break heap ties deterministically (never reached in practice — the
  // comparator already totally orders distinct (camera, bag) pairs).
  struct Cursor {
    size_t part;
    size_t index;
  };
  auto greater = [&parts](const Cursor& a, const Cursor& b) {
    const ClusterScoredBag& ea = parts[a.part][a.index];
    const ClusterScoredBag& eb = parts[b.part][b.index];
    if (ClusterRankLess(ea, eb)) return false;
    if (ClusterRankLess(eb, ea)) return true;
    return a.part > b.part;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);

  size_t total = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    total += parts[p].size();
    if (!parts[p].empty()) heap.push({p, 0});
  }

  std::vector<ClusterScoredBag> merged;
  merged.reserve(k == 0 ? total : std::min(k, total));
  while (!heap.empty() && (k == 0 || merged.size() < k)) {
    const Cursor top = heap.top();
    heap.pop();
    merged.push_back(parts[top.part][top.index]);
    if (top.index + 1 < parts[top.part].size()) {
      heap.push({top.part, top.index + 1});
    }
  }
  MIVID_METRIC_COUNT("cluster/merged_bags", merged.size());
  return merged;
}

}  // namespace mivid

// Exact scatter-gather top-k merging for the cluster coordinator.
//
// Each worker answers a rank request with its *exact* per-corpus top-k
// (RetrievalSession::CurrentTopK — the suffix-coefficient-mass bound in
// MilRfEngine::RankTopK prunes bags that provably miss the cut, never
// bags that could make it). Merging those exact partial lists and
// truncating to k therefore yields exactly the global top-k: no bag
// outside a worker's top-k can outrank one inside it. The merge
// comparator extends the engines' (score desc, bag asc) order with the
// camera id, so a merged ranking is a deterministic function of the
// per-corpus rankings — bit-identical however the corpora are sharded,
// and identical to merging single-process per-camera rankings.

#ifndef MIVID_CLUSTER_MERGER_H_
#define MIVID_CLUSTER_MERGER_H_

#include <string>
#include <vector>

namespace mivid {

/// One scored bag qualified by its corpus (camera).
struct ClusterScoredBag {
  std::string camera;
  int bag_id = 0;
  double score = 0.0;
};

/// Merge order: score desc, then camera asc, then bag asc.
bool ClusterRankLess(const ClusterScoredBag& a, const ClusterScoredBag& b);

/// Merges per-worker rankings (each already sorted by score desc / bag
/// asc within one camera) into the global order, truncated to `k`
/// entries (k == 0 means no limit). K-way heap merge: O(total log
/// parts), no full re-sort.
std::vector<ClusterScoredBag> MergeTopK(
    std::vector<std::vector<ClusterScoredBag>> parts, size_t k);

}  // namespace mivid

#endif  // MIVID_CLUSTER_MERGER_H_

// PlacementRing: consistent-hash shard placement for the retrieval
// fleet.
//
// Each worker contributes `virtual_nodes` points on a 64-bit hash ring;
// a camera (shard key) is owned by the worker whose point follows the
// camera's hash clockwise. Properties the cluster relies on:
//  * Deterministic: hashing is FNV-1a over the bytes of the worker id /
//    camera id — no std::hash — so every coordinator process computes
//    the same placement for the same worker set.
//  * Minimal movement: removing a dead worker re-homes only the cameras
//    it owned; every other camera keeps its worker, so failover does not
//    stampede the surviving workers' corpus caches.

#ifndef MIVID_CLUSTER_PLACEMENT_H_
#define MIVID_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mivid {

/// Deterministic 64-bit FNV-1a (placement must agree across processes).
uint64_t PlacementHash(std::string_view bytes);

class PlacementRing {
 public:
  explicit PlacementRing(size_t virtual_nodes = 64);

  /// Adds a worker's virtual nodes. Adding a present worker is a no-op.
  void Add(const std::string& worker);

  /// Removes a worker (e.g. on death). Removing an absent worker is a
  /// no-op.
  void Remove(const std::string& worker);

  bool Contains(const std::string& worker) const;

  /// The worker owning `key` (a camera id), or FailedPrecondition when
  /// the ring is empty.
  Result<std::string> Owner(std::string_view key) const;

  /// Up to `replicas` distinct workers for `key`, walking the ring
  /// clockwise from the key's hash: [0] is the primary (== Owner), the
  /// rest are the replica set. Shorter than `replicas` when fewer
  /// workers are live; empty when the ring is. Because removal only
  /// deletes the dead worker's points, the surviving members of a key's
  /// replica set keep their roles when one dies — replacement replicas
  /// append, they don't reshuffle.
  std::vector<std::string> Owners(std::string_view key,
                                  size_t replicas) const;

  /// Live workers, sorted.
  std::vector<std::string> Workers() const;

  size_t worker_count() const { return workers_.size(); }
  size_t virtual_nodes() const { return virtual_nodes_; }

 private:
  const size_t virtual_nodes_;
  /// Ring points ordered by (hash, worker): the worker tiebreak makes
  /// placement deterministic even on (vanishingly rare) hash collisions.
  std::map<std::pair<uint64_t, std::string>, std::string> ring_;
  std::map<std::string, bool> workers_;
};

}  // namespace mivid

#endif  // MIVID_CLUSTER_PLACEMENT_H_

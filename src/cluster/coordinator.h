// Coordinator: the front door of a sharded retrieval fleet.
//
// A fleet is N mivid_serve workers (each owning the camera corpora the
// placement ring assigns it) behind one mivid_coord process speaking the
// same NDJSON protocol as a single worker. Clients do not know the
// fleet exists:
//
//  * open/feedback/save/close route to the session's home worker — the
//    consistent-hash owner of the session's camera.
//  * rank on a single-camera session is pure passthrough: the worker's
//    response line is relayed byte-for-byte, so a client sees exactly
//    what a single-process mivid_serve would have sent.
//  * open with "cameras":[...] spans a session over several corpora:
//    the coordinator opens one sub-session per camera (id "<id>-<cam>")
//    on that camera's owner, scatters rank across the owners in
//    parallel, and merges the exact per-corpus top-k (cluster/merger.h)
//    into one camera-tagged ranking.
//
// Failover: a transport error marks the worker dead and removes it from
// the ring. Affected sessions are not touched eagerly — the next
// request that reaches a dead home re-places the camera on the ring and
// re-opens the sub-session on the new owner, which replays the worker's
// crash-safe feedback journal (workers share one VideoDb). Replay is
// deterministic, so the resumed session ranks bit-identically to the
// pre-crash one. The optional heartbeat also re-dials dead workers, so
// a restarted process on the same endpoint rejoins the ring.
//
// Robustness (see docs/robustness.md):
//  * Deadlines: every coordinator->worker hop is bounded by
//    rpc_deadline_ms (and by the client's own "deadline_ms" when
//    smaller). A worker that does not answer in time is treated exactly
//    like a dead one — marked dead, dropped from the ring, failed over —
//    so a hung worker costs one budget slice, not a stuck fleet.
//  * Replication: with replication > 1 each camera's sub-session is
//    opened on that many distinct ring owners. Writes (open, feedback,
//    save, close) go to the primary and are mirrored best-effort to the
//    other replicas; since replicas share the db and feedback journaling
//    rewrites the full deterministic session state, mirrored writes are
//    idempotent. rank routes to the fastest live replica (EWMA latency)
//    and retries the next one when a slice of the budget expires — a
//    hedged retry.
//  * Degraded responses: a multi-camera rank whose camera has no live
//    replica left returns the merged ranking of the surviving cameras
//    plus "degraded":{"missing_cameras":[...]} instead of failing the
//    whole request.

#ifndef MIVID_CLUSTER_COORDINATOR_H_
#define MIVID_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "cluster/worker_registry.h"
#include "common/deadline.h"
#include "common/status.h"
#include "obs/access_log.h"
#include "serve/line_transport.h"
#include "serve/protocol.h"

namespace mivid {

struct CoordinatorOptions {
  std::string socket_path;  ///< Unix-domain listener; "" = none
  std::string tcp_host = "127.0.0.1";
  int tcp_port = -1;        ///< <0 = no TCP listener, 0 = kernel-assigned
  std::vector<std::string> workers;  ///< worker endpoints (host:port / UDS)
  int top_n = 20;           ///< default rank depth when "top" is absent
  size_t virtual_nodes = 64;  ///< ring points per worker
  int heartbeat_ms = 0;     ///< 0 = no active health probing (lazy only)

  /// Per-request JSON-lines access log (obs/access_log.h); "" = off.
  std::string access_log_path;
  /// Slow-query log: requests >= the slow threshold; "" = off.
  std::string slow_log_path;
  /// Slow threshold in ms; negative = MIVID_SLOW_QUERY_MS env (or 500).
  double slow_threshold_ms = -1.0;

  /// Per-hop budget for coordinator->worker calls in ms; 0 disables
  /// deadline enforcement (a hung worker then blocks its caller).
  int rpc_deadline_ms = 30000;
  /// Distinct workers holding each camera's sub-session (>= 1). Clamped
  /// to the fleet size at placement time.
  int replication = 1;
};

/// Rejects an inconsistent option set before any socket is bound.
Status ValidateCoordinatorOptions(const CoordinatorOptions& options);

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Dials every worker, builds the placement ring, binds listeners.
  Status Start();

  /// Closes listeners and connections, joins threads. Idempotent.
  void Stop();

  /// Handles one request line (exposed for tests; Start() wires it into
  /// the transport). Thread-safe.
  std::string HandleLine(const std::string& line);

  void RequestShutdown();
  void WaitForShutdown();
  /// True when shutdown was requested within `timeout_ms`.
  bool WaitForShutdownFor(int timeout_ms);

  /// TCP port actually bound (resolves port 0), or -1.
  int tcp_port() const;

  /// Sessions currently routed by this coordinator.
  size_t session_count() const;

 private:
  /// One camera's slice of a session: which workers hold the
  /// sub-session under which id.
  struct SubSession {
    std::string camera;
    /// Replica endpoints, [0] = primary. All replicas hold the same
    /// sub_id (they share the db, so they share the journal). Entries
    /// may go stale until the next failover re-places the camera.
    std::vector<std::string> workers;
    std::string sub_id;  ///< session id on the workers
  };

  /// One client-visible session.
  struct CoordSession {
    std::string id;
    std::string engine;  ///< as requested at open ("" = worker default)
    bool multi = false;  ///< true when opened with "cameras":[...]
    std::vector<SubSession> subs;  ///< one per camera, open order
    std::mutex mu;  ///< serializes requests touching this session
  };

  /// HandleLine minus tracing/audit bookkeeping: routes one parsed
  /// request. `line` is the relay form (stamped with trace context and
  /// deadline when the incoming line carried none). `deadline` bounds
  /// every worker hop made on behalf of this request.
  std::string Route(const ServeRequest& req, const std::string& line,
                    const Deadline& deadline);

  std::string CmdOpen(const ServeRequest& req, const std::string& line,
                      const Deadline& deadline);
  std::string CmdRank(const ServeRequest& req, const std::string& line,
                      const Deadline& deadline);
  std::string CmdFeedback(const ServeRequest& req, const std::string& line,
                          const Deadline& deadline);
  std::string CmdForward(const ServeRequest& req, const std::string& line,
                         const Deadline& deadline);
  /// refresh: re-pins the session's sub-session(s) onto their cameras'
  /// latest epochs. Single-camera relays the line; multi-camera fans out
  /// and reports per-camera epochs.
  std::string CmdRefresh(const ServeRequest& req, const std::string& line,
                         const Deadline& deadline);
  /// Camera-addressed, sessionless relay (ingest, publish): the line
  /// goes to the camera's primary ring owner only. Replicas share the
  /// db, so mirroring an ingest would double-persist every clip; they
  /// see the new bags at their next cold load or refresh.
  std::string CmdCameraForward(const ServeRequest& req,
                               const std::string& line,
                               const Deadline& deadline);
  std::string CmdStats();
  std::string CmdPing();
  std::string CmdClusterStats();
  std::string CmdTraceDump();

  int64_t UptimeSeconds() const;

  /// Sends `line` to one of `sub`'s replicas, walking them in order
  /// ([0]-first, or fastest-EWMA-first when `prefer_fastest`). With a
  /// finite `deadline` each attempt gets an even slice of the remaining
  /// budget so a hung replica cannot starve the retries (a rank retry
  /// after a deadline miss is a hedge, counted in
  /// cluster/hedged_ranks). A replica that fails its transport (or its
  /// deadline) is marked dead and dropped from the ring; a replica that
  /// answers garbage is treated the same and remembered as data loss.
  /// When every current replica is gone the camera is re-placed on the
  /// ring, the sub-session re-opened on the new owners (journal
  /// resume), and the call retried there — until a live owner answers
  /// or the ring is empty.
  Result<std::string> CallSub(CoordSession& session, SubSession& sub,
                              const std::string& line,
                              const Deadline& deadline,
                              bool prefer_fastest = false);

  /// Write-path fan-out: `line` must succeed on `sub`'s primary
  /// (failover rules as CallSub) and is then mirrored best-effort to
  /// the other replicas. A replica that fails its mirror is dropped
  /// from the sub's replica set (re-picked at the next failover).
  Result<std::string> MirrorSub(CoordSession& session, SubSession& sub,
                                const std::string& line,
                                const Deadline& deadline);

  /// Places `camera` on up to `options_.replication` distinct live
  /// workers. FailedPrecondition when the ring is empty.
  Result<std::vector<std::string>> PlaceCamera(const std::string& camera);

  /// {"cmd":"open",...} line that (re)creates `sub` on its worker.
  std::string OpenLineFor(const CoordSession& session,
                          const SubSession& sub) const;

  std::shared_ptr<CoordSession> FindSession(const std::string& id) const;

  void HeartbeatSweep();

  const CoordinatorOptions options_;
  WorkerRegistry registry_;

  mutable std::mutex ring_mu_;
  PlacementRing ring_;

  mutable std::mutex sessions_mu_;
  std::map<std::string, std::shared_ptr<CoordSession>> sessions_;

  std::unique_ptr<LineTransport> transport_;
  AccessLog access_log_;
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  std::atomic<bool> stopping_{false};
  std::chrono::steady_clock::time_point last_heartbeat_;
};

}  // namespace mivid

#endif  // MIVID_CLUSTER_COORDINATOR_H_

// WorkerRegistry: the coordinator's table of worker connections.
//
// Each worker is one mivid_serve process reachable over TCP (or UDS),
// identified by its endpoint string. The registry owns one ServeClient
// per worker and a per-worker mutex serializing requests on that
// connection — the NDJSON protocol answers in order, so one in-flight
// request per connection keeps request/response pairing trivial while
// distinct workers proceed in parallel (the scatter half of
// scatter-gather).
//
// Health: a transport error on Call() marks the worker dead and reports
// IOError; Ping() probes liveness explicitly. Reconnect() re-dials a
// dead worker (a restarted process on the same endpoint rejoins the
// fleet). The coordinator reacts to death by re-placing the worker's
// shards (see cluster/coordinator.h).

#ifndef MIVID_CLUSTER_WORKER_REGISTRY_H_
#define MIVID_CLUSTER_WORKER_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "serve/client.h"

namespace mivid {

/// One worker endpoint and its (serialized) connection.
struct WorkerConn {
  std::string endpoint;  ///< "host:port" or a UDS path; also the ring id
  std::mutex mu;         ///< serializes Call() on the connection
  std::unique_ptr<ServeClient> client;  ///< null when never connected
  std::atomic<bool> alive{false};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> failures{0};
  /// EWMA of successful round-trip time in microseconds (0 = no sample
  /// yet). The coordinator routes rank to the fastest live replica.
  std::atomic<int64_t> ewma_us{0};
};

class WorkerRegistry {
 public:
  explicit WorkerRegistry(std::vector<std::string> endpoints);

  WorkerRegistry(const WorkerRegistry&) = delete;
  WorkerRegistry& operator=(const WorkerRegistry&) = delete;

  /// Dials every worker. Fails if any endpoint is unreachable — a fleet
  /// that boots degraded is a misconfiguration, not a failover case.
  Status ConnectAll();

  /// The worker registered under `endpoint`, or nullptr.
  WorkerConn* Find(const std::string& endpoint);

  /// Sends one request line to `worker` and returns the response line.
  /// A transport failure marks the worker dead and returns IOError. With
  /// a finite `deadline`, the call is poll-bounded: expiry also marks
  /// the worker dead (its connection is desynced) and returns
  /// DeadlineExceeded — a slow worker is handled exactly like a dead
  /// one, it just gets caught sooner.
  Result<std::string> Call(WorkerConn& worker, const std::string& line,
                           const Deadline& deadline = Deadline());

  /// Round-trips {"cmd":"ping"}; false (and dead) when the worker does
  /// not answer within `deadline`.
  bool Ping(WorkerConn& worker, const Deadline& deadline = Deadline());

  /// Re-dials a dead worker's endpoint; alive again on success.
  Status Reconnect(WorkerConn& worker);

  void MarkDead(WorkerConn& worker);

  /// Endpoints currently alive, in registration order.
  std::vector<std::string> AliveEndpoints() const;

  const std::vector<std::unique_ptr<WorkerConn>>& workers() const {
    return workers_;
  }

 private:
  std::vector<std::unique_ptr<WorkerConn>> workers_;
};

}  // namespace mivid

#endif  // MIVID_CLUSTER_WORKER_REGISTRY_H_

// Experiment harness: runs the paper's relevance-feedback protocol on a
// simulated clip and records accuracy-per-round curves for the proposed
// MIL framework and the weighted-RF baseline (Figs. 8 and 9).

#ifndef MIVID_EVAL_EXPERIMENT_H_
#define MIVID_EVAL_EXPERIMENT_H_

#include <map>
#include <string>
#include <vector>

#include "baseline/weighted_rf.h"
#include "common/status.h"
#include "eval/oracle.h"
#include "event/sliding_window.h"
#include "mil/dataset.h"
#include "retrieval/engine_registry.h"
#include "retrieval/mil_rf_engine.h"
#include "retrieval/session.h"
#include "trafficsim/scenarios.h"

namespace mivid {

/// How trajectories are obtained from the scenario.
enum class PipelineMode : uint8_t {
  /// Use simulator ground-truth tracks directly (a perfect tracker).
  kGroundTruthTracks = 0,
  /// Render frames, then segment (background + SPCPE) and track them —
  /// the full vision path, with its natural noise and failures.
  kVisionTracks = 1,
};

/// Experiment configuration.
struct ExperimentOptions {
  int feedback_rounds = 4;  ///< rounds after the initial query (paper: 4)
  size_t top_n = 20;
  PipelineMode pipeline = PipelineMode::kVisionTracks;
  bool smooth_tracks = false;  ///< apply Sec. 3.2 polynomial smoothing to
                               ///< tracks before feature extraction
  FeatureOptions features;
  WindowOptions windows;
  MilRfOptions mil;
  WeightedRfOptions weighted;
  std::vector<IncidentType> relevant_types;  ///< empty = accidents
};

/// Everything derived from one scenario run, reusable across methods.
struct ClipAnalysis {
  GroundTruth ground_truth;
  std::vector<Track> tracks;              ///< per the pipeline mode
  std::vector<TrackFeatures> features;
  FeatureScaler scaler;
  std::vector<VideoSequence> windows;
  MilDataset dataset;                     ///< unlabeled corpus
  std::map<int, BagLabel> truth;          ///< oracle label per vs_id
  size_t num_relevant = 0;
};

/// Simulates the scenario and builds the full analysis pipeline output.
Result<ClipAnalysis> AnalyzeScenario(const ScenarioSpec& scenario,
                                     const ExperimentOptions& options);

/// Accuracy per round for one retrieval method.
struct MethodCurve {
  std::string method;
  std::vector<double> accuracy;  ///< [initial, round1, ..., roundR]
};

/// Full experiment output.
struct ExperimentResult {
  std::string scenario;
  int total_frames = 0;
  size_t num_windows = 0;
  size_t num_ts = 0;
  size_t num_relevant_vs = 0;
  std::vector<MethodCurve> curves;
  /// Per-round MIL training stats (nu, sigma, SVs, SMO iterations, cache
  /// hit rates) from the proposed method's engine.
  RunSummary mil_summary;
};

/// Runs the paper's protocol on `analysis`: the MIL session and the
/// weighted-RF baseline each get `feedback_rounds` rounds of oracle
/// feedback on their top-n results.
Result<ExperimentResult> RunRfExperiment(const ScenarioSpec& scenario,
                                         const ExperimentOptions& options);

/// Same, but reuses an existing analysis (for parameter sweeps that hold
/// the corpus fixed).
Result<ExperimentResult> RunRfExperimentOnAnalysis(
    const ClipAnalysis& analysis, const std::string& scenario_name,
    int total_frames, const ExperimentOptions& options);

/// Renders an ExperimentResult as the text table + ASCII curve the bench
/// binaries print.
std::string FormatExperimentResult(const ExperimentResult& result);

}  // namespace mivid

#endif  // MIVID_EVAL_EXPERIMENT_H_

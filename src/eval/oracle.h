// FeedbackOracle: the simulated user.
//
// In the paper a human watches each returned VS and marks it relevant if
// it shows an incident of the queried kind. The oracle reproduces that
// judgment from simulator ground truth: a VS is relevant iff an incident
// of one of the queried types overlaps the VS's frame span.

#ifndef MIVID_EVAL_ORACLE_H_
#define MIVID_EVAL_ORACLE_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "event/sliding_window.h"
#include "mil/bag.h"
#include "trafficsim/world.h"

namespace mivid {

/// Ground-truth-driven bag labeler.
class FeedbackOracle {
 public:
  /// `ground_truth` must outlive the oracle. `relevant_types` defaults to
  /// the accident types (wall crash, sudden stop, rear end, cross
  /// collision) — the paper's query.
  explicit FeedbackOracle(const GroundTruth* ground_truth,
                          std::vector<IncidentType> relevant_types = {});

  /// Simulates human error: each label is flipped with probability
  /// `error_rate` (deterministic per vs_id given `seed`). Default: a
  /// perfect user.
  void SetLabelNoise(double error_rate, uint64_t seed = 99);

  /// The label a user would give this VS.
  BagLabel LabelFor(const VideoSequence& vs) const;

  /// Labels every window; key = vs_id.
  std::map<int, BagLabel> LabelAll(
      const std::vector<VideoSequence>& windows) const;

  /// Count of windows the oracle deems relevant.
  size_t CountRelevant(const std::vector<VideoSequence>& windows) const;

  const std::vector<IncidentType>& relevant_types() const {
    return relevant_types_;
  }

 private:
  const GroundTruth* ground_truth_;
  std::vector<IncidentType> relevant_types_;
  double error_rate_ = 0.0;
  uint64_t noise_seed_ = 99;
};

/// The default "accident" query types.
std::vector<IncidentType> AccidentTypes();

}  // namespace mivid

#endif  // MIVID_EVAL_ORACLE_H_

#include "eval/metrics.h"

namespace mivid {

namespace {

bool IsRelevant(const std::map<int, BagLabel>& truth, int id) {
  auto it = truth.find(id);
  return it != truth.end() && it->second == BagLabel::kRelevant;
}

size_t TotalRelevant(const std::map<int, BagLabel>& truth) {
  size_t n = 0;
  for (const auto& [id, label] : truth) {
    (void)id;
    n += label == BagLabel::kRelevant ? 1 : 0;
  }
  return n;
}

}  // namespace

double AccuracyAtN(const std::vector<int>& ranked_ids,
                   const std::map<int, BagLabel>& truth, size_t n) {
  if (n == 0) return 0.0;
  const size_t limit = std::min(n, ranked_ids.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    hits += IsRelevant(truth, ranked_ids[i]) ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

double RecallAtN(const std::vector<int>& ranked_ids,
                 const std::map<int, BagLabel>& truth, size_t n) {
  const size_t total = TotalRelevant(truth);
  if (total == 0) return 0.0;
  const size_t limit = std::min(n, ranked_ids.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    hits += IsRelevant(truth, ranked_ids[i]) ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

double AveragePrecision(const std::vector<int>& ranked_ids,
                        const std::map<int, BagLabel>& truth) {
  const size_t total = TotalRelevant(truth);
  if (total == 0) return 0.0;
  size_t hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < ranked_ids.size(); ++i) {
    if (IsRelevant(truth, ranked_ids[i])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(total);
}

std::vector<int> RankingIds(const std::vector<ScoredBag>& ranking) {
  std::vector<int> ids;
  ids.reserve(ranking.size());
  for (const auto& sb : ranking) ids.push_back(sb.bag_id);
  return ids;
}

}  // namespace mivid

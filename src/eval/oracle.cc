#include "eval/oracle.h"

#include <algorithm>

namespace mivid {

std::vector<IncidentType> AccidentTypes() {
  return {IncidentType::kWallCrash, IncidentType::kSuddenStop,
          IncidentType::kRearEnd, IncidentType::kCrossCollision};
}

FeedbackOracle::FeedbackOracle(const GroundTruth* ground_truth,
                               std::vector<IncidentType> relevant_types)
    : ground_truth_(ground_truth),
      relevant_types_(std::move(relevant_types)) {
  if (relevant_types_.empty()) relevant_types_ = AccidentTypes();
}

void FeedbackOracle::SetLabelNoise(double error_rate, uint64_t seed) {
  error_rate_ = error_rate;
  noise_seed_ = seed;
}

BagLabel FeedbackOracle::LabelFor(const VideoSequence& vs) const {
  BagLabel label = BagLabel::kIrrelevant;
  for (const auto& rec : ground_truth_->incidents) {
    if (!rec.Overlaps(vs.begin_frame, vs.end_frame)) continue;
    if (std::find(relevant_types_.begin(), relevant_types_.end(), rec.type) !=
        relevant_types_.end()) {
      label = BagLabel::kRelevant;
      break;
    }
  }
  if (error_rate_ > 0.0) {
    // Deterministic per window: the user's (mis)judgment of a clip does
    // not change when asked twice.
    Rng rng(noise_seed_ ^ (static_cast<uint64_t>(vs.vs_id) * 0x9e3779b9ULL));
    if (rng.Bernoulli(error_rate_)) {
      label = label == BagLabel::kRelevant ? BagLabel::kIrrelevant
                                           : BagLabel::kRelevant;
    }
  }
  return label;
}

std::map<int, BagLabel> FeedbackOracle::LabelAll(
    const std::vector<VideoSequence>& windows) const {
  std::map<int, BagLabel> labels;
  for (const auto& vs : windows) labels[vs.vs_id] = LabelFor(vs);
  return labels;
}

size_t FeedbackOracle::CountRelevant(
    const std::vector<VideoSequence>& windows) const {
  size_t n = 0;
  for (const auto& vs : windows) {
    n += LabelFor(vs) == BagLabel::kRelevant ? 1 : 0;
  }
  return n;
}

}  // namespace mivid

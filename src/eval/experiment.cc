#include "eval/experiment.h"

#include <algorithm>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "segment/segmenter.h"
#include "track/tracker.h"
#include "trajectory/smoothing.h"
#include "trafficsim/renderer.h"

namespace mivid {

namespace {

/// Frames buffered per parallel segmentation batch. Fixed (not derived
/// from the thread count) so the work decomposition — and therefore the
/// output — is identical at any thread count, while memory stays bounded
/// to one batch of frames + masks.
constexpr size_t kSegmentBatchFrames = 64;

/// Runs the full vision path: render every frame, segment, track.
///
/// Only the background update (VehicleSegmenter::Ingest) and the tracker
/// are order-dependent; the expensive SPCPE/cleanup/blob step is a pure
/// function of one ingested frame, so each batch fans it out across the
/// thread pool and then feeds the tracker in frame order.
std::vector<Track> VisionTracks(const ScenarioSpec& scenario) {
  TrafficWorld world(scenario);
  Renderer renderer(world.spec().layout);
  VehicleSegmenter segmenter;
  Tracker tracker;
  std::vector<PendingSegmentation> pending;
  std::vector<int> frame_ids;
  pending.reserve(kSegmentBatchFrames);
  frame_ids.reserve(kSegmentBatchFrames);
  auto flush = [&]() {
    MIVID_TRACE_SPAN("eval/vision_batch");
    std::vector<std::vector<Blob>> blobs(pending.size());
    ParallelFor(pending.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        blobs[i] = VehicleSegmenter::Refine(pending[i], segmenter.options());
      }
    });
    for (size_t i = 0; i < pending.size(); ++i) {
      tracker.Observe(frame_ids[i], blobs[i]);
    }
    pending.clear();
    frame_ids.clear();
  };
  while (!world.Done()) {
    world.Step();
    pending.push_back(segmenter.Ingest(renderer.Render(world.vehicles())));
    frame_ids.push_back(world.frame() - 1);
    if (pending.size() >= kSegmentBatchFrames) flush();
  }
  flush();
  return tracker.Finish();
}

/// Drives one engine through the feedback protocol and records accuracy.
template <typename RankFn, typename LearnFn>
MethodCurve RunProtocol(const std::string& name, const ClipAnalysis& analysis,
                        const ExperimentOptions& options, RankFn rank,
                        LearnFn learn) {
  MethodCurve curve;
  curve.method = name;
  std::map<int, BagLabel> given;  // cumulative feedback
  for (int round = 0; round <= options.feedback_rounds; ++round) {
    const std::vector<ScoredBag> ranking = rank();
    const std::vector<int> ids = RankingIds(ranking);
    curve.accuracy.push_back(AccuracyAtN(ids, analysis.truth, options.top_n));
    if (MetricsEnabled()) {
      MetricsRegistry::Global()
          .GetGauge(StrFormat("eval/accuracy@%zu/%s/round%d", options.top_n,
                              name.c_str(), round))
          .Set(curve.accuracy.back());
    }
    if (round == options.feedback_rounds) break;

    // The oracle labels this round's top-n; labels accumulate.
    for (size_t i = 0; i < ids.size() && i < options.top_n; ++i) {
      auto it = analysis.truth.find(ids[i]);
      given[ids[i]] =
          it != analysis.truth.end() ? it->second : BagLabel::kIrrelevant;
    }
    learn(given);
  }
  return curve;
}

}  // namespace

Result<ClipAnalysis> AnalyzeScenario(const ScenarioSpec& scenario,
                                     const ExperimentOptions& options) {
  MIVID_TRACE_SPAN("eval/analyze");
  MIVID_SCOPED_TIMER("eval/analyze_seconds");
  ClipAnalysis analysis;

  // Ground truth (incidents + perfect tracks) always comes from a
  // deterministic run of the world.
  {
    TrafficWorld world(scenario);
    analysis.ground_truth = world.Run();
  }

  analysis.tracks = options.pipeline == PipelineMode::kVisionTracks
                        ? VisionTracks(scenario)
                        : analysis.ground_truth.tracks;
  if (options.smooth_tracks) {
    analysis.tracks = SmoothTracks(analysis.tracks);
  }

  analysis.features = ComputeTrackFeatures(analysis.tracks, options.features);
  analysis.scaler =
      FeatureScaler::Fit(analysis.features, options.features.include_velocity);
  analysis.windows = ExtractWindows(analysis.features, scenario.total_frames,
                                    options.features, options.windows);
  analysis.dataset = MilDataset::FromVideoSequences(
      analysis.windows, analysis.scaler, options.features.include_velocity);

  FeedbackOracle oracle(&analysis.ground_truth, options.relevant_types);
  analysis.truth = oracle.LabelAll(analysis.windows);
  analysis.num_relevant = 0;
  for (const auto& [id, label] : analysis.truth) {
    (void)id;
    analysis.num_relevant += label == BagLabel::kRelevant ? 1 : 0;
  }
  if (analysis.windows.empty()) {
    return Status::FailedPrecondition("scenario produced no windows");
  }
  return analysis;
}

Result<ExperimentResult> RunRfExperimentOnAnalysis(
    const ClipAnalysis& analysis, const std::string& scenario_name,
    int total_frames, const ExperimentOptions& options) {
  ExperimentResult result;
  result.scenario = scenario_name;
  result.total_frames = total_frames;
  result.num_windows = analysis.windows.size();
  result.num_ts = CountTrajectorySequences(analysis.windows);
  result.num_relevant_vs = analysis.num_relevant;

  const size_t base_dim = analysis.scaler.dimension();
  const EventModel heuristic = EventModel::Accident(base_dim);

  EngineConfig config;
  config.mil = options.mil;
  config.mil.base_dim = base_dim;
  config.weighted = options.weighted;
  config.weighted.base_dim = base_dim;

  // The paper's two curves, both driven through the RetrievalEngine
  // interface; adding a registry key here adds a curve.
  const std::pair<const char*, const char*> methods[] = {
      {"MIL_OneClassSVM", "milrf"},
      {"Weighted_RF", "weighted"},
  };
  for (const auto& [curve_name, engine_name] : methods) {
    MilDataset dataset = analysis.dataset;  // session-local labels
    Result<std::unique_ptr<RetrievalEngine>> made =
        MakeRetrievalEngine(engine_name, &dataset, config);
    RetrievalEngine& engine = *made.value();
    auto rank = [&]() {
      // Engines rank once trained; before that the paper's square-sum
      // heuristic orders the initial screen.
      return engine.trained()
                 ? engine.Rank()
                 : HeuristicRanking(dataset, heuristic, base_dim);
    };
    auto learn = [&](const std::map<int, BagLabel>& given) {
      std::vector<std::pair<int, BagLabel>> labels(given.begin(), given.end());
      (void)engine.SetLabels(labels);
      (void)engine.Retrain();  // cold rounds stay on the heuristic ranking
    };
    result.curves.push_back(
        RunProtocol(curve_name, analysis, options, rank, learn));
    if (std::string_view(engine_name) == "milrf") {
      result.mil_summary = engine.run_summary();
    }
  }

  return result;
}

Result<ExperimentResult> RunRfExperiment(const ScenarioSpec& scenario,
                                         const ExperimentOptions& options) {
  MIVID_ASSIGN_OR_RETURN(ClipAnalysis analysis,
                         AnalyzeScenario(scenario, options));
  return RunRfExperimentOnAnalysis(analysis, scenario.name,
                                   scenario.total_frames, options);
}

std::string FormatExperimentResult(const ExperimentResult& result) {
  std::string out;
  out += StrFormat(
      "scenario=%s frames=%d windows(VS)=%zu TS=%zu relevant_VS=%zu\n",
      result.scenario.c_str(), result.total_frames, result.num_windows,
      result.num_ts, result.num_relevant_vs);

  std::vector<std::string> header{"round"};
  size_t rounds = 0;
  for (const auto& c : result.curves) {
    header.push_back(c.method);
    rounds = std::max(rounds, c.accuracy.size());
  }
  std::vector<std::vector<std::string>> rows;
  static const char* kRoundNames[] = {"Initial", "First", "Second", "Third",
                                      "Fourth", "Fifth", "Sixth"};
  for (size_t r = 0; r < rounds; ++r) {
    std::vector<std::string> row;
    row.push_back(r < 7 ? kRoundNames[r] : StrFormat("R%zu", r));
    for (const auto& c : result.curves) {
      row.push_back(r < c.accuracy.size()
                        ? StrFormat("%.1f%%", 100.0 * c.accuracy[r])
                        : "-");
    }
    rows.push_back(std::move(row));
  }
  out += AsciiTable(header, rows);

  std::vector<PlotSeries> series;
  const char glyphs[] = {'*', 'o', '+', 'x'};
  for (size_t i = 0; i < result.curves.size(); ++i) {
    PlotSeries s;
    s.name = result.curves[i].method;
    s.glyph = glyphs[i % sizeof(glyphs)];
    for (size_t r = 0; r < result.curves[i].accuracy.size(); ++r) {
      s.xs.push_back(static_cast<double>(r));
      s.ys.push_back(100.0 * result.curves[i].accuracy[r]);
    }
    series.push_back(std::move(s));
  }
  PlotOptions plot;
  plot.title = "accuracy@20 (%) vs feedback round";
  plot.x_label = "feedback round";
  plot.y_from_zero = true;
  plot.height = 16;
  out += AsciiLinePlot(series, plot);
  return out;
}

}  // namespace mivid

// Retrieval metrics.
//
// The paper's measure is "accuracy": the fraction of relevant VSs within
// the top-n returned (n = 20). Precision@k / recall / average precision
// are provided for extended analysis.

#ifndef MIVID_EVAL_METRICS_H_
#define MIVID_EVAL_METRICS_H_

#include <map>
#include <vector>

#include "mil/bag.h"
#include "retrieval/heuristic.h"

namespace mivid {

/// Fraction of the first n ids whose truth label is kRelevant.
/// Ids missing from `truth` count as irrelevant. Returns 0 for n == 0.
double AccuracyAtN(const std::vector<int>& ranked_ids,
                   const std::map<int, BagLabel>& truth, size_t n);

/// Recall@n: retrieved relevant within top n over total relevant.
double RecallAtN(const std::vector<int>& ranked_ids,
                 const std::map<int, BagLabel>& truth, size_t n);

/// Average precision over the full ranking.
double AveragePrecision(const std::vector<int>& ranked_ids,
                        const std::map<int, BagLabel>& truth);

/// Convenience: strips scores from a ranking.
std::vector<int> RankingIds(const std::vector<ScoredBag>& ranking);

}  // namespace mivid

#endif  // MIVID_EVAL_METRICS_H_

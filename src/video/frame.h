// Greyscale video frame buffer.
//
// The simulator renders into Frames and the segmentation stack (background
// model + SPCPE) consumes them, mirroring the paper's raw-video front end.

#ifndef MIVID_VIDEO_FRAME_H_
#define MIVID_VIDEO_FRAME_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mivid {

/// A single 8-bit greyscale frame, row-major.
class Frame {
 public:
  Frame() = default;

  /// Creates a width x height frame filled with `fill`.
  Frame(int width, int height, uint8_t fill = 0)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * static_cast<size_t>(height), fill) {
    assert(width >= 0 && height >= 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }
  size_t size() const { return pixels_.size(); }

  uint8_t& At(int x, int y) {
    assert(InBounds(x, y));
    return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                   static_cast<size_t>(x)];
  }
  uint8_t At(int x, int y) const {
    assert(InBounds(x, y));
    return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                   static_cast<size_t>(x)];
  }

  /// Bounds-checked read; returns `fallback` outside the frame.
  uint8_t Get(int x, int y, uint8_t fallback = 0) const {
    return InBounds(x, y) ? At(x, y) : fallback;
  }

  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Sets every pixel to `v`.
  void Fill(uint8_t v);

  /// Mean pixel intensity; 0 for an empty frame.
  double MeanIntensity() const;

  /// Per-pixel absolute difference |this - other| (equal sizes required).
  Frame AbsDiff(const Frame& other) const;

  const std::vector<uint8_t>& pixels() const { return pixels_; }
  std::vector<uint8_t>& pixels() { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> pixels_;
};

/// A binary mask with the same layout as Frame (0 = background, 1 = fg).
using Mask = std::vector<uint8_t>;

}  // namespace mivid

#endif  // MIVID_VIDEO_FRAME_H_

#include "video/draw.h"

#include <algorithm>
#include <cmath>

namespace mivid {

void FillRect(Frame* frame, const BBox& box, uint8_t v) {
  const int x0 = std::max(0, static_cast<int>(std::floor(box.min_x)));
  const int y0 = std::max(0, static_cast<int>(std::floor(box.min_y)));
  const int x1 = std::min(frame->width() - 1, static_cast<int>(std::ceil(box.max_x)));
  const int y1 = std::min(frame->height() - 1, static_cast<int>(std::ceil(box.max_y)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) frame->At(x, y) = v;
  }
}

void FillRotatedRect(Frame* frame, const Point2& center, double half_len,
                     double half_wid, double heading, uint8_t v) {
  const double c = std::cos(heading), s = std::sin(heading);
  const double radius = std::hypot(half_len, half_wid);
  const int x0 = std::max(0, static_cast<int>(std::floor(center.x - radius)));
  const int y0 = std::max(0, static_cast<int>(std::floor(center.y - radius)));
  const int x1 =
      std::min(frame->width() - 1, static_cast<int>(std::ceil(center.x + radius)));
  const int y1 =
      std::min(frame->height() - 1, static_cast<int>(std::ceil(center.y + radius)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const double dx = x - center.x, dy = y - center.y;
      // Rotate into the rectangle's local frame.
      const double lx = dx * c + dy * s;
      const double ly = -dx * s + dy * c;
      if (std::fabs(lx) <= half_len && std::fabs(ly) <= half_wid) {
        frame->At(x, y) = v;
      }
    }
  }
}

void DrawRectOutline(RgbImage* image, const BBox& box, uint8_t r, uint8_t g,
                     uint8_t b) {
  const int x0 = static_cast<int>(std::floor(box.min_x));
  const int y0 = static_cast<int>(std::floor(box.min_y));
  const int x1 = static_cast<int>(std::ceil(box.max_x));
  const int y1 = static_cast<int>(std::ceil(box.max_y));
  for (int x = x0; x <= x1; ++x) {
    image->Set(x, y0, r, g, b);
    image->Set(x, y1, r, g, b);
  }
  for (int y = y0; y <= y1; ++y) {
    image->Set(x0, y, r, g, b);
    image->Set(x1, y, r, g, b);
  }
}

void DrawDisc(RgbImage* image, const Point2& center, int radius, uint8_t r,
              uint8_t g, uint8_t b) {
  const int cx = static_cast<int>(std::lround(center.x));
  const int cy = static_cast<int>(std::lround(center.y));
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy <= radius * radius) {
        image->Set(cx + dx, cy + dy, r, g, b);
      }
    }
  }
}

void DrawLine(RgbImage* image, const Point2& a, const Point2& b, uint8_t r,
              uint8_t g, uint8_t bl) {
  int x0 = static_cast<int>(std::lround(a.x));
  int y0 = static_cast<int>(std::lround(a.y));
  const int x1 = static_cast<int>(std::lround(b.x));
  const int y1 = static_cast<int>(std::lround(b.y));
  const int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  const int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    image->Set(x0, y0, r, g, bl);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

}  // namespace mivid

// Drawing primitives on frames and RGB canvases.
//
// The simulator uses these to rasterize vehicles; the tracking demo uses
// them to reproduce the paper's Fig. 1 (MBRs + centroid dots).

#ifndef MIVID_VIDEO_DRAW_H_
#define MIVID_VIDEO_DRAW_H_

#include "geometry/geometry.h"
#include "video/frame.h"
#include "video/image_io.h"

namespace mivid {

/// Fills an axis-aligned rectangle with intensity `v` (clipped to frame).
void FillRect(Frame* frame, const BBox& box, uint8_t v);

/// Fills a rotated rectangle centered at `center` with half-extents
/// (half_len, half_wid) rotated by `heading` radians.
void FillRotatedRect(Frame* frame, const Point2& center, double half_len,
                     double half_wid, double heading, uint8_t v);

/// Draws a 1-pixel rectangle outline on an RGB canvas.
void DrawRectOutline(RgbImage* image, const BBox& box, uint8_t r, uint8_t g,
                     uint8_t b);

/// Draws a filled disc (used for centroid dots).
void DrawDisc(RgbImage* image, const Point2& center, int radius, uint8_t r,
              uint8_t g, uint8_t b);

/// Draws a line segment (Bresenham) on an RGB canvas.
void DrawLine(RgbImage* image, const Point2& a, const Point2& b, uint8_t r,
              uint8_t g, uint8_t bl);

}  // namespace mivid

#endif  // MIVID_VIDEO_DRAW_H_

#include "video/clip.h"

namespace mivid {

void VideoClip::Append(Frame frame) {
  if (frames_.empty()) {
    metadata_.width = frame.width();
    metadata_.height = frame.height();
  }
  frames_.push_back(std::move(frame));
}

}  // namespace mivid

// PGM/PPM image I/O for inspecting frames and annotated tracking output.

#ifndef MIVID_VIDEO_IMAGE_IO_H_
#define MIVID_VIDEO_IMAGE_IO_H_

#include <string>

#include "common/status.h"
#include "video/frame.h"

namespace mivid {

/// Writes `frame` as a binary PGM (P5) file.
Status WritePgm(const Frame& frame, const std::string& path);

/// Reads a binary PGM (P5) file.
Result<Frame> ReadPgm(const std::string& path);

/// An RGB image used only for annotated visual output (tracking overlays).
struct RgbImage {
  int width = 0;
  int height = 0;
  std::vector<uint8_t> pixels;  // 3 bytes per pixel, row-major

  RgbImage() = default;
  RgbImage(int w, int h) : width(w), height(h),
      pixels(static_cast<size_t>(w) * static_cast<size_t>(h) * 3, 0) {}

  void Set(int x, int y, uint8_t r, uint8_t g, uint8_t b);
};

/// Converts a greyscale frame into an RGB canvas.
RgbImage ToRgb(const Frame& frame);

/// Writes `image` as a binary PPM (P6) file.
Status WritePpm(const RgbImage& image, const std::string& path);

}  // namespace mivid

#endif  // MIVID_VIDEO_IMAGE_IO_H_

#include "video/frame.h"

#include <cstdlib>

namespace mivid {

void Frame::Fill(uint8_t v) {
  for (auto& p : pixels_) p = v;
}

double Frame::MeanIntensity() const {
  if (pixels_.empty()) return 0.0;
  double s = 0.0;
  for (uint8_t p : pixels_) s += p;
  return s / static_cast<double>(pixels_.size());
}

Frame Frame::AbsDiff(const Frame& other) const {
  assert(width_ == other.width_ && height_ == other.height_);
  Frame out(width_, height_);
  for (size_t i = 0; i < pixels_.size(); ++i) {
    out.pixels_[i] = static_cast<uint8_t>(
        std::abs(static_cast<int>(pixels_[i]) - static_cast<int>(other.pixels_[i])));
  }
  return out;
}

}  // namespace mivid

#include "video/image_io.h"

#include <cstdio>

#include "common/string_util.h"

namespace mivid {

Status WritePgm(const Frame& frame, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  std::fprintf(f, "P5\n%d %d\n255\n", frame.width(), frame.height());
  const size_t n = frame.pixels().size();
  const size_t written = n ? std::fwrite(frame.pixels().data(), 1, n, f) : 0;
  std::fclose(f);
  if (written != n) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Frame> ReadPgm(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::IOError("cannot open " + path);
  char magic[3] = {};
  int w = 0, h = 0, maxval = 0;
  if (std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxval) != 4 ||
      std::string(magic) != "P5" || maxval != 255 || w <= 0 || h <= 0) {
    std::fclose(f);
    return Status::Corruption("not a valid 8-bit P5 PGM: " + path);
  }
  std::fgetc(f);  // single whitespace after the header
  Frame frame(w, h);
  const size_t n = frame.pixels().size();
  const size_t got = std::fread(frame.pixels().data(), 1, n, f);
  std::fclose(f);
  if (got != n) return Status::Corruption("truncated PGM payload: " + path);
  return frame;
}

void RgbImage::Set(int x, int y, uint8_t r, uint8_t g, uint8_t b) {
  if (x < 0 || x >= width || y < 0 || y >= height) return;
  const size_t i =
      (static_cast<size_t>(y) * static_cast<size_t>(width) + static_cast<size_t>(x)) * 3;
  pixels[i] = r;
  pixels[i + 1] = g;
  pixels[i + 2] = b;
}

RgbImage ToRgb(const Frame& frame) {
  RgbImage img(frame.width(), frame.height());
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      const uint8_t v = frame.At(x, y);
      img.Set(x, y, v, v, v);
    }
  }
  return img;
}

Status WritePpm(const RgbImage& image, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IOError("cannot open " + path + " for writing");
  std::fprintf(f, "P6\n%d %d\n255\n", image.width, image.height);
  const size_t n = image.pixels.size();
  const size_t written = n ? std::fwrite(image.pixels.data(), 1, n, f) : 0;
  std::fclose(f);
  if (written != n) return Status::IOError("short write to " + path);
  return Status::OK();
}

}  // namespace mivid

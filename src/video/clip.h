// VideoClip: an in-memory sequence of frames plus capture metadata.

#ifndef MIVID_VIDEO_CLIP_H_
#define MIVID_VIDEO_CLIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "video/frame.h"

namespace mivid {

/// Capture metadata stored alongside each clip in the video database
/// (the paper: clips are "organized with the corresponding metadata such as
/// the time and place a video is taken").
struct ClipMetadata {
  std::string camera_id;    ///< which surveillance camera captured the clip
  std::string location;     ///< free-form place description
  int64_t start_time_ms = 0;  ///< capture start, epoch milliseconds
  double fps = 25.0;          ///< frames per second
  int width = 0;
  int height = 0;
};

/// A sequence of frames with metadata. Frames share one resolution.
class VideoClip {
 public:
  VideoClip() = default;
  explicit VideoClip(ClipMetadata metadata) : metadata_(std::move(metadata)) {}

  const ClipMetadata& metadata() const { return metadata_; }
  ClipMetadata& metadata() { return metadata_; }

  size_t frame_count() const { return frames_.size(); }
  const Frame& frame(size_t i) const { return frames_[i]; }
  Frame& frame(size_t i) { return frames_[i]; }

  /// Appends a frame; the first frame fixes width/height in the metadata.
  void Append(Frame frame);

  /// Duration implied by frame count and fps.
  double DurationSeconds() const {
    return metadata_.fps > 0 ? static_cast<double>(frames_.size()) / metadata_.fps
                             : 0.0;
  }

  const std::vector<Frame>& frames() const { return frames_; }

 private:
  ClipMetadata metadata_;
  std::vector<Frame> frames_;
};

}  // namespace mivid

#endif  // MIVID_VIDEO_CLIP_H_

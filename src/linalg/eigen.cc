#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mivid {

Result<EigenDecomposition> JacobiEigen(const Matrix& input, int max_sweeps,
                                       double tol) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("JacobiEigen requires a square matrix");
  }
  const size_t n = input.rows();
  // Symmetrize defensively.
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a.At(i, j) = 0.5 * (input.At(i, j) + input.At(j, i));
    }
  }
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass.
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += a.At(i, j) * a.At(i, j);
    }
    if (std::sqrt(2.0 * off) < tol) break;

    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a.At(p, p), aqq = a.At(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Rotate rows/columns p and q of A.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a.At(k, p), akq = a.At(k, q);
          a.At(k, p) = c * akp - s * akq;
          a.At(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a.At(p, k), aqk = a.At(q, k);
          a.At(p, k) = c * apk - s * aqk;
          a.At(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into V.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.At(k, p), vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t i, size_t j) {
    return a.At(i, i) > a.At(j, j);
  });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    out.values[c] = a.At(order[c], order[c]);
    for (size_t r = 0; r < n; ++r) out.vectors.At(r, c) = v.At(r, order[c]);
  }
  return out;
}

}  // namespace mivid

// Packed structure-of-arrays feature matrix.
//
// Corpora and bags lower their instance features into this layout once
// (at load or first use), so every downstream distance/kernel primitive
// streams contiguous memory instead of chasing per-instance Vec
// allocations. Layout: X[k * stride + j] holds feature k of point j,
// with stride = n rounded up to a multiple of 8 doubles (a full cache
// line) and the padding lanes zero-filled. This is exactly the `x`
// operand shape of the SimdOpsTable row primitives (simd.h).
//
// The storage may be owned (FromPoints) or borrowed from an external
// mapping (View, used by the zero-copy corpus loader in src/db/): a
// type-erased keepalive handle pins whatever backs the pointer.
// Squared norms are precomputed with the same serial per-point
// accumulation order as Dot(p, p), so norms taken from a packed matrix
// are bit-identical to the AoS SquaredNorms() path.

#ifndef MIVID_LINALG_PACKED_MATRIX_H_
#define MIVID_LINALG_PACKED_MATRIX_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/matrix.h"

namespace mivid {

class PackedFeatureMatrix {
 public:
  /// Rounds a point count up to the packed lane stride (multiple of 8).
  static size_t StrideFor(size_t n) { return (n + 7) & ~size_t{7}; }

  /// Empty matrix (n() == 0).
  PackedFeatureMatrix() = default;

  /// Packs `n` points of dimension `dim`, reading point j from
  /// `points[j]` (each must have exactly `dim` entries). Owns storage.
  static PackedFeatureMatrix FromPoints(const std::vector<const Vec*>& points,
                                        size_t dim);

  /// Convenience overload over value vectors.
  static PackedFeatureMatrix FromVecs(const std::vector<Vec>& points);

  /// Wraps externally owned SoA storage (e.g. an mmap'd corpus file).
  /// `data` must hold dim * stride doubles laid out as X[k*stride+j]
  /// with zeroed padding; `keepalive` pins the backing storage for the
  /// lifetime of this matrix and its copies. Norms are computed here.
  static PackedFeatureMatrix View(const double* data, size_t n, size_t dim,
                                  size_t stride,
                                  std::shared_ptr<const void> keepalive);

  size_t n() const { return n_; }
  size_t dim() const { return dim_; }
  size_t stride() const { return stride_; }
  bool empty() const { return n_ == 0; }

  /// Base of the packed block (dim * stride doubles).
  const double* data() const { return data_; }

  /// Lane base for feature k: lane(k)[j] = feature k of point j.
  const double* lane(size_t k) const { return data_ + k * stride_; }

  /// Feature k of point j.
  double At(size_t k, size_t j) const { return data_[k * stride_ + j]; }

  /// |x_j|^2 for every point, bit-identical to Dot(p_j, p_j).
  const double* squared_norms() const { return norms_->data(); }

  /// Gathers point j back into a contiguous vector.
  void CopyPoint(size_t j, Vec* out) const;

 private:
  size_t n_ = 0;
  size_t dim_ = 0;
  size_t stride_ = 0;
  const double* data_ = nullptr;
  std::shared_ptr<const void> keepalive_;  // owns or pins `data_`
  std::shared_ptr<const std::vector<double>> norms_;
};

}  // namespace mivid

#endif  // MIVID_LINALG_PACKED_MATRIX_H_

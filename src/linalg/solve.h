// Linear system and least-squares solvers.
//
// The trajectory fitter (Sec. 3.2 of the paper, Eq. 1-2) solves an
// overdetermined Vandermonde system. We provide both the normal-equations
// path (Cholesky) and a numerically safer Householder-QR path; the fitter
// uses QR by default and callers can select Cholesky for speed.

#ifndef MIVID_LINALG_SOLVE_H_
#define MIVID_LINALG_SOLVE_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace mivid {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns the lower-triangular factor, or InvalidArgument if A is not SPD
/// (within a small tolerance).
Result<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky.
Result<Vec> CholeskySolve(const Matrix& a, const Vec& b);

/// Solves the general square system A x = b via Gaussian elimination with
/// partial pivoting. Fails with InvalidArgument on (near-)singular A.
Result<Vec> GaussianSolve(const Matrix& a, const Vec& b);

/// Least-squares solution of min |A x - b|_2 via Householder QR.
/// Requires rows >= cols and full column rank.
Result<Vec> LeastSquaresQR(const Matrix& a, const Vec& b);

/// Least-squares via normal equations (A^T A) x = A^T b with Cholesky.
/// Faster but squares the condition number; fine for low-degree fits.
Result<Vec> LeastSquaresNormal(const Matrix& a, const Vec& b);

}  // namespace mivid

#endif  // MIVID_LINALG_SOLVE_H_

// Shared constants of the deterministic exponential (see simd.h).
//
// DetExp(x) = 2^k * P(r) with k = floor(x * log2(e) + 1/2) and
// r = (x - k*C1) - k*C2 (Cody-Waite two-part ln 2), where P is the
// degree-13 Taylor polynomial of e^r evaluated by Horner with plain
// mul-then-add. |r| <= ln(2)/2, so the truncation error is ~4e-18
// relative — below one double ulp. Both the scalar and the AVX2 tier
// execute exactly this op sequence per element; neither may use FMA.
//
// Inputs are clamped to [-708, 708] so the exact 2^k bit-shift scaling
// never produces a subnormal exponent field.

#ifndef MIVID_LINALG_DET_EXP_CONSTANTS_H_
#define MIVID_LINALG_DET_EXP_CONSTANTS_H_

namespace mivid {
namespace det_exp {

constexpr double kClamp = 708.0;
constexpr double kLog2e = 1.4426950408889634074;      // log2(e)
constexpr double kLn2Hi = 6.93145751953125e-1;        // ln 2, high bits
constexpr double kLn2Lo = 1.42860682030941723212e-6;  // ln 2, low bits

// Taylor coefficients 1/n! for n = 13 .. 0 (Horner order).
constexpr double kPoly[14] = {
    1.0 / 6227020800.0,  // 1/13!
    1.0 / 479001600.0,   // 1/12!
    1.0 / 39916800.0,    // 1/11!
    1.0 / 3628800.0,     // 1/10!
    1.0 / 362880.0,      // 1/9!
    1.0 / 40320.0,       // 1/8!
    1.0 / 5040.0,        // 1/7!
    1.0 / 720.0,         // 1/6!
    1.0 / 120.0,         // 1/5!
    1.0 / 24.0,          // 1/4!
    1.0 / 6.0,           // 1/3!
    0.5,                 // 1/2!
    1.0,                 // 1/1!
    1.0,                 // 1/0!
};

}  // namespace det_exp
}  // namespace mivid

#endif  // MIVID_LINALG_DET_EXP_CONSTANTS_H_

#include "linalg/matrix.h"

#include <cmath>

#include "common/string_util.h"

namespace mivid {

Matrix Matrix::FromRows(const std::vector<Vec>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m.At(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Vec Matrix::Row(size_t r) const {
  Vec v(cols_);
  for (size_t c = 0; c < cols_; ++c) v[c] = At(r, c);
  return v;
}

Vec Matrix::Col(size_t c) const {
  Vec v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = At(r, c);
  return v;
}

void Matrix::SetRow(size_t r, const Vec& v) {
  assert(v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) At(r, c) = v[c];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.At(i, j) += a * other.At(k, j);
      }
    }
  }
  return out;
}

Vec Matrix::Multiply(const Vec& v) const {
  assert(cols_ == v.size());
  Vec out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += At(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  for (size_t r = 0; r < rows_; ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c) out += ", ";
      out += StrFormat("%.*f", precision, At(r, c));
    }
    out += "]\n";
  }
  return out;
}

double Dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(const Vec& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

Vec Add(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec ScaleVec(const Vec& v, double s) {
  Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

}  // namespace mivid

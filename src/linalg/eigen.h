// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Used by the PCA vehicle-shape classifier (paper Sec. 3.1 cites a PCA-based
// vehicle classification framework [13]). Matrices are small (feature
// dimension), so Jacobi's robustness beats asymptotic speed.

#ifndef MIVID_LINALG_EIGEN_H_
#define MIVID_LINALG_EIGEN_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace mivid {

/// Eigen decomposition of a symmetric matrix: A = V diag(values) V^T.
struct EigenDecomposition {
  Vec values;      ///< eigenvalues, descending
  Matrix vectors;  ///< column i is the eigenvector for values[i]
};

/// Computes all eigenpairs of symmetric `a`. Fails on non-square input;
/// asymmetric input is symmetrized as (A + A^T)/2.
Result<EigenDecomposition> JacobiEigen(const Matrix& a, int max_sweeps = 64,
                                       double tol = 1e-12);

}  // namespace mivid

#endif  // MIVID_LINALG_EIGEN_H_

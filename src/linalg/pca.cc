#include "linalg/pca.h"

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace mivid {

Result<PcaModel> PcaModel::Fit(const std::vector<Vec>& rows,
                               size_t num_components) {
  if (rows.size() < 2) {
    return Status::InvalidArgument("PCA requires at least 2 observations");
  }
  const size_t dim = rows[0].size();
  if (num_components < 1 || num_components > dim) {
    return Status::InvalidArgument("invalid number of PCA components");
  }
  for (const auto& r : rows) {
    if (r.size() != dim) {
      return Status::InvalidArgument("inconsistent observation dimensions");
    }
  }

  PcaModel model;
  model.mean_ = ColumnMeans(rows);

  // Covariance matrix (population normalization).
  Matrix cov(dim, dim);
  for (const auto& r : rows) {
    const Vec d = Sub(r, model.mean_);
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = i; j < dim; ++j) cov.At(i, j) += d[i] * d[j];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(rows.size());
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = i; j < dim; ++j) {
      cov.At(i, j) *= inv_n;
      cov.At(j, i) = cov.At(i, j);
    }
  }

  MIVID_ASSIGN_OR_RETURN(EigenDecomposition eig, JacobiEigen(cov));

  double total_var = 0.0;
  for (double v : eig.values) total_var += std::max(v, 0.0);

  model.components_ = Matrix(num_components, dim);
  model.explained_variance_ratio_.resize(num_components);
  for (size_t c = 0; c < num_components; ++c) {
    for (size_t r = 0; r < dim; ++r) {
      model.components_.At(c, r) = eig.vectors.At(r, c);
    }
    model.explained_variance_ratio_[c] =
        total_var > 0 ? std::max(eig.values[c], 0.0) / total_var : 0.0;
  }
  return model;
}

Vec PcaModel::Project(const Vec& x) const {
  const Vec d = Sub(x, mean_);
  return components_.Multiply(d);
}

Vec PcaModel::Reconstruct(const Vec& scores) const {
  Vec out = mean_;
  for (size_t c = 0; c < components_.rows(); ++c) {
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] += scores[c] * components_.At(c, i);
    }
  }
  return out;
}

double PcaModel::ReconstructionError(const Vec& x) const {
  return SquaredDistance(x, Reconstruct(Project(x)));
}

}  // namespace mivid

// Principal Component Analysis.
//
// Backs the PCA-based vehicle classifier referenced in Sec. 3.1 of the paper
// (vehicle segments classified into SUVs, pick-ups, cars by their shape
// masks). Also usable for general feature-space dimensionality reduction.

#ifndef MIVID_LINALG_PCA_H_
#define MIVID_LINALG_PCA_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace mivid {

/// Fitted PCA basis: mean vector plus principal directions.
class PcaModel {
 public:
  /// Fits a PCA basis with `num_components` directions from `rows`
  /// (each row one observation). Requires >= 2 rows and
  /// 1 <= num_components <= dimension.
  static Result<PcaModel> Fit(const std::vector<Vec>& rows,
                              size_t num_components);

  /// Projects `x` onto the principal subspace (returns component scores).
  Vec Project(const Vec& x) const;

  /// Reconstructs an input from component scores.
  Vec Reconstruct(const Vec& scores) const;

  /// Squared reconstruction error of `x`; small when x lies near the
  /// training distribution's principal subspace.
  double ReconstructionError(const Vec& x) const;

  /// Fraction of total variance captured by each retained component.
  const Vec& explained_variance_ratio() const {
    return explained_variance_ratio_;
  }

  const Vec& mean() const { return mean_; }
  size_t num_components() const { return components_.rows(); }
  size_t dimension() const { return mean_.size(); }

  /// Component i as a unit vector (row i of the basis).
  Vec Component(size_t i) const { return components_.Row(i); }

 private:
  Vec mean_;
  Matrix components_;  // num_components x dim, rows orthonormal
  Vec explained_variance_ratio_;
};

}  // namespace mivid

#endif  // MIVID_LINALG_PCA_H_

// Descriptive statistics used by the weighted-RF baseline and evaluation.

#ifndef MIVID_LINALG_STATS_H_
#define MIVID_LINALG_STATS_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace mivid {

/// Arithmetic mean; 0 for empty input.
double Mean(const Vec& v);

/// Population variance (divides by n); 0 for n < 1.
double Variance(const Vec& v);

/// Sample standard deviation (divides by n-1); 0 for n < 2.
double SampleStdDev(const Vec& v);

/// Population standard deviation.
double StdDev(const Vec& v);

/// Minimum / maximum; 0 for empty input.
double Min(const Vec& v);
double Max(const Vec& v);

/// Linear-interpolated percentile, p in [0, 100].
double Percentile(Vec v, double p);

/// Per-column mean of a set of equal-length rows.
Vec ColumnMeans(const std::vector<Vec>& rows);

/// Per-column population standard deviation of equal-length rows.
Vec ColumnStdDevs(const std::vector<Vec>& rows);

/// Pearson correlation coefficient; 0 if either side is constant.
double PearsonCorrelation(const Vec& a, const Vec& b);

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance.
  double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace mivid

#endif  // MIVID_LINALG_STATS_H_

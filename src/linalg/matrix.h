// Dense row-major matrix and vector types used throughout mivid.
//
// Kept deliberately small: the largest systems solved in this codebase are
// the Vandermonde normal equations of the trajectory fitter (k+1 unknowns,
// k <= ~8) and PCA covariance matrices (feature dimension <= ~32), so an
// O(n^3) dense implementation is both sufficient and the easiest to verify.

#ifndef MIVID_LINALG_MATRIX_H_
#define MIVID_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace mivid {

/// A dynamically sized column vector of doubles.
using Vec = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Creates a matrix from nested initializer data (rows of equal width).
  static Matrix FromRows(const std::vector<Vec>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Returns row `r` as a vector copy.
  Vec Row(size_t r) const;

  /// Returns column `c` as a vector copy.
  Vec Col(size_t c) const;

  /// Sets row `r` from `v` (sizes must match).
  void SetRow(size_t r, const Vec& v);

  Matrix Transpose() const;

  /// Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; requires cols() == v.size().
  Vec Multiply(const Vec& v) const;

  /// Elementwise scale by `s` in place.
  void Scale(double s);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  double MaxAbsDiff(const Matrix& other) const;

  /// Pretty printer for diagnostics.
  std::string ToString(int precision = 4) const;

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// v . w (sizes must match).
double Dot(const Vec& a, const Vec& b);

/// Euclidean norm of v.
double Norm(const Vec& v);

/// Squared Euclidean distance |a - b|^2.
double SquaredDistance(const Vec& a, const Vec& b);

/// a + b elementwise.
Vec Add(const Vec& a, const Vec& b);

/// a - b elementwise.
Vec Sub(const Vec& a, const Vec& b);

/// s * v.
Vec ScaleVec(const Vec& v, double s);

}  // namespace mivid

#endif  // MIVID_LINALG_MATRIX_H_

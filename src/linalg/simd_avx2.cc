// AVX2 tier of the SIMD kernel table (4 doubles per lane group).
//
// Compiled with -mavx2 only — deliberately NOT -mfma: the scalar tier
// uses plain mul-then-add, and fusing here would change roundings and
// break the bit-identity contract. Every loop vectorizes across
// independent outputs (one output per lane) while the per-output
// accumulation order matches the scalar tier exactly; tails run the
// scalar code path. Main loops process two lane groups (8 outputs) per
// iteration so the u[k] broadcasts are shared and the mul->add latency
// chains overlap — interleaving changes scheduling only, never the op
// sequence an individual output sees, so results stay bit-identical.
// Loads are unaligned (loadu) so callers may pass any offset into a
// packed matrix.
//
// Only ever called after runtime CPUID dispatch confirms AVX2 (simd.cc),
// so executing these instructions is safe even on a generic build.

#if defined(MIVID_HAVE_AVX2)

#include <immintrin.h>

#include <cstddef>

#include "linalg/det_exp_constants.h"
#include "linalg/simd.h"

namespace mivid {
namespace {

/// Four-lane DetExp: the same op sequence as the scalar DetExpImpl.
inline __m256d DetExp4(__m256d x) {
  using namespace det_exp;
  const __m256d clamp = _mm256_set1_pd(kClamp);
  x = _mm256_min_pd(x, clamp);
  x = _mm256_max_pd(x, _mm256_set1_pd(-kClamp));
  // k = floor(x * log2e + 0.5)
  const __m256d k = _mm256_floor_pd(_mm256_add_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kLog2e)), _mm256_set1_pd(0.5)));
  // r = (x - k*ln2_hi) - k*ln2_lo
  const __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(x, _mm256_mul_pd(k, _mm256_set1_pd(kLn2Hi))),
      _mm256_mul_pd(k, _mm256_set1_pd(kLn2Lo)));
  __m256d p = _mm256_set1_pd(kPoly[0]);
  for (int i = 1; i < 14; ++i) {
    p = _mm256_add_pd(_mm256_mul_pd(p, r), _mm256_set1_pd(kPoly[i]));
  }
  // scale = 2^k exactly, via the exponent field.
  const __m128i k32 = _mm256_cvtpd_epi32(k);  // k is integral, in range
  const __m256i k64 = _mm256_cvtepi32_epi64(k32);
  const __m256i bits = _mm256_slli_epi64(
      _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
  const __m256d scale = _mm256_castsi256_pd(bits);
  return _mm256_mul_pd(p, scale);
}

/// 2^k scaling factor of DetExp for an integral-valued k vector.
inline __m256d DetExpScale(__m256d k) {
  const __m256i k64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k));
  return _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52));
}

void ExpandedD2Row(const double* u, double u_norm2, size_t dim,
                   const double* x, size_t stride, const double* norms,
                   size_t count, double* out) {
  const __m256d vnorm_u = _mm256_set1_pd(u_norm2);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d zero = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    __m256d dot0 = zero;
    __m256d dot1 = zero;
    for (size_t k = 0; k < dim; ++k) {
      const __m256d uk = _mm256_set1_pd(u[k]);
      const double* base = x + k * stride + j;
      dot0 = _mm256_add_pd(dot0, _mm256_mul_pd(uk, _mm256_loadu_pd(base)));
      dot1 = _mm256_add_pd(dot1, _mm256_mul_pd(uk, _mm256_loadu_pd(base + 4)));
    }
    const __m256d d20 = _mm256_sub_pd(
        _mm256_add_pd(vnorm_u, _mm256_loadu_pd(norms + j)),
        _mm256_mul_pd(two, dot0));
    const __m256d d21 = _mm256_sub_pd(
        _mm256_add_pd(vnorm_u, _mm256_loadu_pd(norms + j + 4)),
        _mm256_mul_pd(two, dot1));
    // max(d2, +0.0): returns +0.0 for d2 <= 0, matching `d2 > 0 ? d2 : 0`.
    _mm256_storeu_pd(out + j, _mm256_max_pd(d20, zero));
    _mm256_storeu_pd(out + j + 4, _mm256_max_pd(d21, zero));
  }
  for (; j + 4 <= count; j += 4) {
    __m256d dot = zero;
    for (size_t k = 0; k < dim; ++k) {
      const __m256d xv = _mm256_loadu_pd(x + k * stride + j);
      dot = _mm256_add_pd(dot, _mm256_mul_pd(_mm256_set1_pd(u[k]), xv));
    }
    const __m256d d2 = _mm256_sub_pd(
        _mm256_add_pd(vnorm_u, _mm256_loadu_pd(norms + j)),
        _mm256_mul_pd(two, dot));
    _mm256_storeu_pd(out + j, _mm256_max_pd(d2, zero));
  }
  for (; j < count; ++j) {
    double dot = 0.0;
    for (size_t k = 0; k < dim; ++k) dot += u[k] * x[k * stride + j];
    const double d2 = u_norm2 + norms[j] - 2.0 * dot;
    out[j] = d2 > 0.0 ? d2 : 0.0;
  }
}

void DirectD2Row(const double* u, size_t dim, const double* x, size_t stride,
                 size_t count, double* out) {
  size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t k = 0; k < dim; ++k) {
      const __m256d uk = _mm256_set1_pd(u[k]);
      const double* base = x + k * stride + j;
      const __m256d da = _mm256_sub_pd(uk, _mm256_loadu_pd(base));
      const __m256d db = _mm256_sub_pd(uk, _mm256_loadu_pd(base + 4));
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(da, da));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(db, db));
    }
    _mm256_storeu_pd(out + j, acc0);
    _mm256_storeu_pd(out + j + 4, acc1);
  }
  for (; j + 4 <= count; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t k = 0; k < dim; ++k) {
      const __m256d d = _mm256_sub_pd(_mm256_set1_pd(u[k]),
                                      _mm256_loadu_pd(x + k * stride + j));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < count; ++j) {
    double acc = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double d = u[k] - x[k * stride + j];
      acc += d * d;
    }
    out[j] = acc;
  }
}

void DotRow(const double* u, size_t dim, const double* x, size_t stride,
            size_t count, double* out) {
  size_t j = 0;
  for (; j + 8 <= count; j += 8) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t k = 0; k < dim; ++k) {
      const __m256d uk = _mm256_set1_pd(u[k]);
      const double* base = x + k * stride + j;
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(uk, _mm256_loadu_pd(base)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(uk, _mm256_loadu_pd(base + 4)));
    }
    _mm256_storeu_pd(out + j, acc0);
    _mm256_storeu_pd(out + j + 4, acc1);
  }
  for (; j + 4 <= count; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t k = 0; k < dim; ++k) {
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(u[k]),
                                             _mm256_loadu_pd(x + k * stride + j)));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < count; ++j) {
    double acc = 0.0;
    for (size_t k = 0; k < dim; ++k) acc += u[k] * x[k * stride + j];
    out[j] = acc;
  }
}

void Axpy(double a, const double* x, size_t count, double* y) {
  const __m256d va = _mm256_set1_pd(a);
  size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const __m256d yv = _mm256_loadu_pd(y + t);
    _mm256_storeu_pd(
        y + t, _mm256_add_pd(yv, _mm256_mul_pd(va, _mm256_loadu_pd(x + t))));
  }
  for (; t < count; ++t) y[t] += a * x[t];
}

void AxpyDiff(double a, const double* p, const double* q, size_t count,
              double* y) {
  const __m256d va = _mm256_set1_pd(a);
  size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(p + t), _mm256_loadu_pd(q + t));
    const __m256d yv = _mm256_loadu_pd(y + t);
    _mm256_storeu_pd(y + t, _mm256_add_pd(yv, _mm256_mul_pd(va, diff)));
  }
  for (; t < count; ++t) y[t] += a * (p[t] - q[t]);
}

void RbfFromD2Row(double gamma, const double* d2, size_t count, double* out) {
  const double ng = -gamma;
  const __m256d vng = _mm256_set1_pd(ng);
  size_t j = 0;
  // Four interleaved 4-lane DetExp evaluations: the Horner recurrence is
  // a serial mul->add dependency chain, so a single chain leaves the FP
  // units mostly idle; four independent chains keep them saturated.
  for (; j + 16 <= count; j += 16) {
    using namespace det_exp;
    const __m256d clamp_hi = _mm256_set1_pd(kClamp);
    const __m256d clamp_lo = _mm256_set1_pd(-kClamp);
    __m256d x0 = _mm256_mul_pd(vng, _mm256_loadu_pd(d2 + j));
    __m256d x1 = _mm256_mul_pd(vng, _mm256_loadu_pd(d2 + j + 4));
    __m256d x2 = _mm256_mul_pd(vng, _mm256_loadu_pd(d2 + j + 8));
    __m256d x3 = _mm256_mul_pd(vng, _mm256_loadu_pd(d2 + j + 12));
    x0 = _mm256_max_pd(_mm256_min_pd(x0, clamp_hi), clamp_lo);
    x1 = _mm256_max_pd(_mm256_min_pd(x1, clamp_hi), clamp_lo);
    x2 = _mm256_max_pd(_mm256_min_pd(x2, clamp_hi), clamp_lo);
    x3 = _mm256_max_pd(_mm256_min_pd(x3, clamp_hi), clamp_lo);
    const __m256d log2e = _mm256_set1_pd(kLog2e);
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d k0 =
        _mm256_floor_pd(_mm256_add_pd(_mm256_mul_pd(x0, log2e), half));
    const __m256d k1 =
        _mm256_floor_pd(_mm256_add_pd(_mm256_mul_pd(x1, log2e), half));
    const __m256d k2 =
        _mm256_floor_pd(_mm256_add_pd(_mm256_mul_pd(x2, log2e), half));
    const __m256d k3 =
        _mm256_floor_pd(_mm256_add_pd(_mm256_mul_pd(x3, log2e), half));
    const __m256d hi = _mm256_set1_pd(kLn2Hi);
    const __m256d lo = _mm256_set1_pd(kLn2Lo);
    const __m256d r0 = _mm256_sub_pd(
        _mm256_sub_pd(x0, _mm256_mul_pd(k0, hi)), _mm256_mul_pd(k0, lo));
    const __m256d r1 = _mm256_sub_pd(
        _mm256_sub_pd(x1, _mm256_mul_pd(k1, hi)), _mm256_mul_pd(k1, lo));
    const __m256d r2 = _mm256_sub_pd(
        _mm256_sub_pd(x2, _mm256_mul_pd(k2, hi)), _mm256_mul_pd(k2, lo));
    const __m256d r3 = _mm256_sub_pd(
        _mm256_sub_pd(x3, _mm256_mul_pd(k3, hi)), _mm256_mul_pd(k3, lo));
    // 2^k while k is still live; frees the k registers for the chains.
    const __m256d s0 = DetExpScale(k0);
    const __m256d s1 = DetExpScale(k1);
    const __m256d s2 = DetExpScale(k2);
    const __m256d s3 = DetExpScale(k3);
    __m256d p0 = _mm256_set1_pd(kPoly[0]);
    __m256d p1 = p0;
    __m256d p2 = p0;
    __m256d p3 = p0;
    for (int i = 1; i < 14; ++i) {
      const __m256d c = _mm256_set1_pd(kPoly[i]);
      p0 = _mm256_add_pd(_mm256_mul_pd(p0, r0), c);
      p1 = _mm256_add_pd(_mm256_mul_pd(p1, r1), c);
      p2 = _mm256_add_pd(_mm256_mul_pd(p2, r2), c);
      p3 = _mm256_add_pd(_mm256_mul_pd(p3, r3), c);
    }
    _mm256_storeu_pd(out + j, _mm256_mul_pd(p0, s0));
    _mm256_storeu_pd(out + j + 4, _mm256_mul_pd(p1, s1));
    _mm256_storeu_pd(out + j + 8, _mm256_mul_pd(p2, s2));
    _mm256_storeu_pd(out + j + 12, _mm256_mul_pd(p3, s3));
  }
  for (; j + 4 <= count; j += 4) {
    _mm256_storeu_pd(out + j,
                     DetExp4(_mm256_mul_pd(vng, _mm256_loadu_pd(d2 + j))));
  }
  for (; j < count; ++j) out[j] = DetExp(ng * d2[j]);
}

}  // namespace

namespace simd_internal {

const SimdOpsTable kAvx2Ops = {
    ExpandedD2Row, DirectD2Row, DotRow, Axpy, AxpyDiff, RbfFromD2Row,
};

}  // namespace simd_internal
}  // namespace mivid

#endif  // MIVID_HAVE_AVX2

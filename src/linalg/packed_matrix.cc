#include "linalg/packed_matrix.h"

#include <cassert>

namespace mivid {
namespace {

// Norms in the same serial k-order as Dot(p, p) so packed and AoS paths
// produce identical bits.
std::shared_ptr<const std::vector<double>> NormsFromSoa(const double* data,
                                                        size_t n, size_t dim,
                                                        size_t stride) {
  auto norms = std::make_shared<std::vector<double>>(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double v = data[k * stride + j];
      acc += v * v;
    }
    (*norms)[j] = acc;
  }
  return norms;
}

}  // namespace

PackedFeatureMatrix PackedFeatureMatrix::FromPoints(
    const std::vector<const Vec*>& points, size_t dim) {
  PackedFeatureMatrix m;
  m.n_ = points.size();
  m.dim_ = dim;
  m.stride_ = StrideFor(m.n_);
  auto store = std::make_shared<std::vector<double>>(dim * m.stride_, 0.0);
  double* x = store->data();
  for (size_t j = 0; j < points.size(); ++j) {
    const Vec& p = *points[j];
    assert(p.size() == dim);
    for (size_t k = 0; k < dim; ++k) x[k * m.stride_ + j] = p[k];
  }
  m.data_ = x;
  m.keepalive_ = store;
  m.norms_ = NormsFromSoa(m.data_, m.n_, m.dim_, m.stride_);
  return m;
}

PackedFeatureMatrix PackedFeatureMatrix::FromVecs(
    const std::vector<Vec>& points) {
  std::vector<const Vec*> ptrs;
  ptrs.reserve(points.size());
  for (const Vec& p : points) ptrs.push_back(&p);
  const size_t dim = points.empty() ? 0 : points[0].size();
  return FromPoints(ptrs, dim);
}

PackedFeatureMatrix PackedFeatureMatrix::View(
    const double* data, size_t n, size_t dim, size_t stride,
    std::shared_ptr<const void> keepalive) {
  assert(stride >= n);
  PackedFeatureMatrix m;
  m.n_ = n;
  m.dim_ = dim;
  m.stride_ = stride;
  m.data_ = data;
  m.keepalive_ = std::move(keepalive);
  m.norms_ = NormsFromSoa(data, n, dim, stride);
  return m;
}

void PackedFeatureMatrix::CopyPoint(size_t j, Vec* out) const {
  assert(j < n_);
  out->resize(dim_);
  for (size_t k = 0; k < dim_; ++k) (*out)[k] = data_[k * stride_ + j];
}

}  // namespace mivid

#include "linalg/solve.h"

#include <cmath>

#include "common/string_util.h"

namespace mivid {

Result<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double d = a.At(j, j);
    for (size_t k = 0; k < j; ++k) d -= l.At(j, k) * l.At(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      return Status::InvalidArgument(
          StrFormat("matrix not positive definite at pivot %zu (d=%g)", j, d));
    }
    l.At(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = a.At(i, j);
      for (size_t k = 0; k < j; ++k) s -= l.At(i, k) * l.At(j, k);
      l.At(i, j) = s / l.At(j, j);
    }
  }
  return l;
}

Result<Vec> CholeskySolve(const Matrix& a, const Vec& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in CholeskySolve");
  }
  MIVID_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  const size_t n = l.rows();
  // Forward substitution: L y = b.
  Vec y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l.At(i, k) * y[k];
    y[i] = s / l.At(i, i);
  }
  // Back substitution: L^T x = y.
  Vec x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t k = ii + 1; k < n; ++k) s -= l.At(k, ii) * x[k];
    x[ii] = s / l.At(ii, ii);
  }
  return x;
}

Result<Vec> GaussianSolve(const Matrix& a, const Vec& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in GaussianSolve");
  }
  const size_t n = a.rows();
  Matrix m = a;
  Vec rhs = b;
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t piv = col;
    double best = std::fabs(m.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(m.At(r, col));
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best < 1e-12) {
      return Status::InvalidArgument(
          StrFormat("singular matrix at column %zu", col));
    }
    if (piv != col) {
      for (size_t c = 0; c < n; ++c) std::swap(m.At(piv, c), m.At(col, c));
      std::swap(rhs[piv], rhs[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      const double f = m.At(r, col) / m.At(col, col);
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) m.At(r, c) -= f * m.At(col, c);
      rhs[r] -= f * rhs[col];
    }
  }
  Vec x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (size_t c = ii + 1; c < n; ++c) s -= m.At(ii, c) * x[c];
    x[ii] = s / m.At(ii, ii);
  }
  return x;
}

Result<Vec> LeastSquaresQR(const Matrix& a, const Vec& b) {
  const size_t m = a.rows(), n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("LeastSquaresQR requires rows >= cols");
  }
  if (m != b.size()) {
    return Status::InvalidArgument("dimension mismatch in LeastSquaresQR");
  }
  // Householder QR applied in place to [A | b].
  Matrix r = a;
  Vec rhs = b;
  for (size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k.
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) norm += r.At(i, k) * r.At(i, k);
    norm = std::sqrt(norm);
    if (norm < 1e-14) {
      return Status::InvalidArgument(
          StrFormat("rank-deficient matrix at column %zu", k));
    }
    const double alpha = r.At(k, k) >= 0 ? -norm : norm;
    Vec v(m - k);
    v[0] = r.At(k, k) - alpha;
    for (size_t i = k + 1; i < m; ++i) v[i - k] = r.At(i, k);
    double vnorm2 = 0.0;
    for (double vv : v) vnorm2 += vv * vv;
    if (vnorm2 < 1e-28) continue;  // already triangular in this column

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and rhs.
    for (size_t c = k; c < n; ++c) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i - k] * r.At(i, c);
      const double f = 2.0 * dot / vnorm2;
      for (size_t i = k; i < m; ++i) r.At(i, c) -= f * v[i - k];
    }
    double dot = 0.0;
    for (size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    const double f = 2.0 * dot / vnorm2;
    for (size_t i = k; i < m; ++i) rhs[i] -= f * v[i - k];
  }
  // Back substitution on the upper-triangular n x n block.
  Vec x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (size_t c = ii + 1; c < n; ++c) s -= r.At(ii, c) * x[c];
    const double d = r.At(ii, ii);
    if (std::fabs(d) < 1e-14) {
      return Status::InvalidArgument("rank-deficient R in back substitution");
    }
    x[ii] = s / d;
  }
  return x;
}

Result<Vec> LeastSquaresNormal(const Matrix& a, const Vec& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("dimension mismatch in LeastSquaresNormal");
  }
  const Matrix at = a.Transpose();
  return CholeskySolve(at.Multiply(a), at.Multiply(b));
}

}  // namespace mivid

// Runtime tier resolution for the SIMD kernel table.

#include "linalg/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mivid {
namespace {

bool CpuHasAvx2() {
#if defined(MIVID_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

SimdTier ResolveTier() {
  const SimdTier best = CpuHasAvx2() ? SimdTier::kAvx2 : SimdTier::kScalar;
  const char* env = std::getenv("MIVID_SIMD");
  if (env == nullptr || env[0] == '\0') return best;
  if (std::strcmp(env, "scalar") == 0) return SimdTier::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (best == SimdTier::kAvx2) return SimdTier::kAvx2;
    std::fprintf(stderr,
                 "mivid: MIVID_SIMD=avx2 requested but unavailable "
                 "(build or CPU); using scalar\n");
    return SimdTier::kScalar;
  }
  std::fprintf(stderr, "mivid: unknown MIVID_SIMD value '%s'; using %s\n", env,
               SimdTierName(best));
  return best;
}

// -1 = unresolved; otherwise a SimdTier value.
std::atomic<int> g_tier{-1};

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdTier ActiveSimdTier() {
  int t = g_tier.load(std::memory_order_acquire);
  if (t < 0) {
    t = static_cast<int>(ResolveTier());
    g_tier.store(t, std::memory_order_release);
  }
  return static_cast<SimdTier>(t);
}

void SetSimdTier(int tier) {
  if (tier < 0) {
    g_tier.store(-1, std::memory_order_release);
    return;
  }
  SimdTier want = static_cast<SimdTier>(tier);
  if (want == SimdTier::kAvx2 && !Avx2Available()) want = SimdTier::kScalar;
  g_tier.store(static_cast<int>(want), std::memory_order_release);
}

bool Avx2Available() { return CpuHasAvx2(); }

const SimdOpsTable& SimdOps() {
#if defined(MIVID_HAVE_AVX2)
  if (ActiveSimdTier() == SimdTier::kAvx2) return simd_internal::kAvx2Ops;
#endif
  return simd_internal::kScalarOps;
}

}  // namespace mivid

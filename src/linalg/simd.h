// Runtime-dispatched SIMD row primitives for the Gram/SMO/ranking core.
//
// Every numeric hot path (squared-distance rows, RBF kernel rows, the SMO
// axpy updates) funnels through the function table returned by SimdOps().
// Two tiers exist: a portable scalar tier and an AVX2 tier, selected once
// at runtime via CPUID (or forced with the MIVID_SIMD environment
// variable / SetSimdTier, which tests use to pin a tier).
//
// The hard invariant: *both tiers produce bit-identical results.* This is
// achieved by construction, not tolerance:
//  * Row primitives vectorize across independent outputs (one output per
//    SIMD lane) while each output's accumulation runs in the same serial
//    order the scalar code uses — so per-output rounding is identical.
//  * No FMA contraction anywhere: both tiers use explicit mul-then-add
//    (the AVX2 translation unit is compiled with -mavx2 only, and the
//    scalar tier with -ffp-contract=off).
//  * exp() goes through DetExp, a deterministic exponential whose scalar
//    and AVX2 forms execute the same floating-point op sequence per
//    element (Cody-Waite reduction + Horner polynomial + exact 2^k
//    scaling). DetExp agrees with std::exp to ~1 ulp but is reproducible
//    across tiers, which libm's exp is not once vectorized.
//
// The SoA operand layout ("X[k * stride + j] = feature k of point j") is
// produced by PackedFeatureMatrix (packed_matrix.h); u operands are plain
// contiguous vectors (a query point, a support vector, a Gram row).

#ifndef MIVID_LINALG_SIMD_H_
#define MIVID_LINALG_SIMD_H_

#include <cstddef>

namespace mivid {

/// Dispatch tiers, ordered by capability.
enum class SimdTier : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// Human-readable tier name ("scalar", "avx2").
const char* SimdTierName(SimdTier tier);

/// The tier in effect: the MIVID_SIMD override if set and supported, else
/// the best tier the CPU supports. Resolved once, then cached.
SimdTier ActiveSimdTier();

/// Forces a tier (tests / benchmarks). `tier` must be supported by the
/// build and the CPU; unsupported requests fall back to scalar. Passing
/// a negative value re-resolves from the environment/CPUID. Not safe to
/// call concurrently with running kernels.
void SetSimdTier(int tier);

/// True when this build carries the AVX2 tier and the CPU supports it.
bool Avx2Available();

/// The per-tier kernel table. All `x` operands use the SoA layout
/// X[k * stride + j] (j = point index, k = feature index); `u` operands
/// are contiguous `dim` doubles. Output ranges never alias inputs.
struct SimdOpsTable {
  /// out[j] = max(0, u_norm2 + norms[j] - 2 * dot(u, X_j)), j in [0,count).
  /// The expanded |u-v|^2 formula every Gram/cache path shares.
  void (*expanded_d2_row)(const double* u, double u_norm2, size_t dim,
                          const double* x, size_t stride, const double* norms,
                          size_t count, double* out);
  /// out[j] = sum_k (u[k] - X[k,j])^2 — the direct formula, bit-identical
  /// to SquaredDistance(u, x_j).
  void (*direct_d2_row)(const double* u, size_t dim, const double* x,
                        size_t stride, size_t count, double* out);
  /// out[j] = dot(u, X_j).
  void (*dot_row)(const double* u, size_t dim, const double* x, size_t stride,
                  size_t count, double* out);
  /// y[t] += a * x[t].
  void (*axpy)(double a, const double* x, size_t count, double* y);
  /// y[t] += a * (p[t] - q[t]) — the SMO gradient update.
  void (*axpy_diff)(double a, const double* p, const double* q, size_t count,
                    double* y);
  /// out[j] = DetExp(-gamma * d2[j]) — the RBF kernel row.
  void (*rbf_from_d2_row)(double gamma, const double* d2, size_t count,
                          double* out);
};

/// The kernel table of the active tier.
const SimdOpsTable& SimdOps();

/// Deterministic exp: identical bits from the scalar tier and from each
/// lane of the AVX2 rbf_from_d2_row. Accurate to ~1 ulp of std::exp over
/// [-708, 708]; arguments outside are clamped. Use for every kernel
/// evaluation so single-point and batched paths agree exactly.
double DetExp(double x);

namespace simd_internal {

// Tier entry points (defined in simd_scalar.cc / simd_avx2.cc).
extern const SimdOpsTable kScalarOps;
#if defined(MIVID_HAVE_AVX2)
extern const SimdOpsTable kAvx2Ops;
#endif

}  // namespace simd_internal

}  // namespace mivid

#endif  // MIVID_LINALG_SIMD_H_

// Portable scalar tier of the SIMD kernel table.
//
// This translation unit is the bit-exactness reference: the AVX2 tier
// must reproduce these results lane for lane. It is compiled with
// -ffp-contract=off (see src/CMakeLists.txt) so the compiler cannot fuse
// the mul-then-add sequences into FMAs on targets where that is the
// default — contraction would silently change roundings and break the
// scalar-vs-AVX2 bit-identity contract.

#include <cstdint>
#include <cstring>

#include "linalg/det_exp_constants.h"
#include "linalg/simd.h"

namespace mivid {

namespace {

inline double DetExpImpl(double x) {
  using namespace det_exp;
  if (x > kClamp) x = kClamp;
  if (x < -kClamp) x = -kClamp;
  const double k = __builtin_floor(x * kLog2e + 0.5);
  const double r = (x - k * kLn2Hi) - k * kLn2Lo;
  double p = kPoly[0];
  for (int i = 1; i < 14; ++i) p = p * r + kPoly[i];
  // Exact 2^k via the exponent field; k is integral in [-1023, 1023].
  const int64_t ki = static_cast<int64_t>(k);
  const uint64_t bits = static_cast<uint64_t>(ki + 1023) << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return p * scale;
}

void ExpandedD2Row(const double* u, double u_norm2, size_t dim,
                   const double* x, size_t stride, const double* norms,
                   size_t count, double* out) {
  for (size_t j = 0; j < count; ++j) {
    double dot = 0.0;
    for (size_t k = 0; k < dim; ++k) dot += u[k] * x[k * stride + j];
    const double d2 = u_norm2 + norms[j] - 2.0 * dot;
    out[j] = d2 > 0.0 ? d2 : 0.0;
  }
}

void DirectD2Row(const double* u, size_t dim, const double* x, size_t stride,
                 size_t count, double* out) {
  for (size_t j = 0; j < count; ++j) {
    double acc = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double d = u[k] - x[k * stride + j];
      acc += d * d;
    }
    out[j] = acc;
  }
}

void DotRow(const double* u, size_t dim, const double* x, size_t stride,
            size_t count, double* out) {
  for (size_t j = 0; j < count; ++j) {
    double acc = 0.0;
    for (size_t k = 0; k < dim; ++k) acc += u[k] * x[k * stride + j];
    out[j] = acc;
  }
}

void Axpy(double a, const double* x, size_t count, double* y) {
  for (size_t t = 0; t < count; ++t) y[t] += a * x[t];
}

void AxpyDiff(double a, const double* p, const double* q, size_t count,
              double* y) {
  for (size_t t = 0; t < count; ++t) y[t] += a * (p[t] - q[t]);
}

void RbfFromD2Row(double gamma, const double* d2, size_t count, double* out) {
  const double ng = -gamma;
  for (size_t j = 0; j < count; ++j) out[j] = DetExpImpl(ng * d2[j]);
}

}  // namespace

double DetExp(double x) { return DetExpImpl(x); }

namespace simd_internal {

const SimdOpsTable kScalarOps = {
    ExpandedD2Row, DirectD2Row, DotRow, Axpy, AxpyDiff, RbfFromD2Row,
};

}  // namespace simd_internal
}  // namespace mivid

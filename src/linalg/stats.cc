#include "linalg/stats.h"

#include <algorithm>
#include <cmath>

namespace mivid {

double Mean(const Vec& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const Vec& v) {
  if (v.empty()) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double SampleStdDev(const Vec& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

double StdDev(const Vec& v) { return std::sqrt(Variance(v)); }

double Min(const Vec& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double Max(const Vec& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double Percentile(Vec v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

Vec ColumnMeans(const std::vector<Vec>& rows) {
  if (rows.empty()) return {};
  Vec m(rows[0].size(), 0.0);
  for (const auto& r : rows) {
    for (size_t c = 0; c < m.size(); ++c) m[c] += r[c];
  }
  for (double& x : m) x /= static_cast<double>(rows.size());
  return m;
}

Vec ColumnStdDevs(const std::vector<Vec>& rows) {
  if (rows.empty()) return {};
  const Vec m = ColumnMeans(rows);
  Vec s(m.size(), 0.0);
  for (const auto& r : rows) {
    for (size_t c = 0; c < m.size(); ++c) {
      s[c] += (r[c] - m[c]) * (r[c] - m[c]);
    }
  }
  for (double& x : s) x = std::sqrt(x / static_cast<double>(rows.size()));
  return s;
}

double PearsonCorrelation(const Vec& a, const Vec& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double ma = Mean(a), mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace mivid

// Clip catalog: the metadata index of the surveillance video database.
//
// The paper: videos "are organized with the corresponding metadata such as
// the time and place a video is taken", and retrieval "is performed
// independently for each group of videos taken by the same camera at the
// same location" (Sec. 6.2). The catalog stores per-clip metadata and
// supports lookup by id and grouping by camera.

#ifndef MIVID_DB_CATALOG_H_
#define MIVID_DB_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace mivid {

/// Metadata of one stored clip.
struct ClipInfo {
  int clip_id = -1;           ///< assigned by the catalog at ingest
  std::string camera_id;
  std::string location;
  int64_t start_time_ms = 0;
  double fps = 25.0;
  int width = 0;
  int height = 0;
  int total_frames = 0;
  std::string scenario;       ///< free-form provenance tag
};

/// In-memory catalog with binary (de)serialization.
class Catalog {
 public:
  Catalog() = default;

  /// Adds a clip, assigning and returning its id.
  int Add(ClipInfo info);

  /// Looks up a clip by id.
  Result<ClipInfo> Get(int clip_id) const;

  /// Removes a clip from the catalog; NotFound if absent.
  Status Remove(int clip_id);

  /// All clips in ascending id order.
  std::vector<ClipInfo> List() const;

  /// Distinct camera ids (sorted).
  std::vector<std::string> Cameras() const;

  /// Clip ids recorded by `camera_id` (ascending).
  std::vector<int> ClipsForCamera(const std::string& camera_id) const;

  size_t size() const { return clips_.size(); }

  /// Serializes the whole catalog (with checksum envelope).
  std::string Serialize() const;

  /// Parses a catalog serialized by Serialize().
  static Result<Catalog> Deserialize(const std::string& bytes);

 private:
  int next_id_ = 0;
  std::map<int, ClipInfo> clips_;
};

}  // namespace mivid

#endif  // MIVID_DB_CATALOG_H_

#include "db/session_store.h"

#include "db/codec.h"

namespace mivid {

namespace {
constexpr uint32_t kSessionMagic = 0x53534553u;  // "SESS"
// v2 added the engine name after camera_id; v1 records (no engine field)
// still parse and default to the MIL one-class-SVM engine.
constexpr uint32_t kVersion = 2;
}  // namespace

std::string SerializeSessionState(const SessionState& state) {
  std::string body;
  PutFixed32(&body, kVersion);
  PutLengthPrefixed(&body, state.camera_id);
  PutLengthPrefixed(&body, state.engine);
  PutFixed32(&body, static_cast<uint32_t>(state.round));
  PutFixed32(&body, static_cast<uint32_t>(state.labels.size()));
  for (const auto& [bag_id, label] : state.labels) {
    PutFixed32(&body, static_cast<uint32_t>(bag_id));
    body.push_back(static_cast<char>(label));
  }
  std::string out;
  PutFixed32(&out, kSessionMagic);
  PutFixed32(&out, Crc32c(body));
  out += body;
  return out;
}

Result<SessionState> DeserializeSessionState(const std::string& bytes) {
  Decoder header(bytes);
  uint32_t magic, crc;
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&magic));
  if (magic != kSessionMagic) return Status::Corruption("bad session magic");
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&crc));
  const std::string_view body(bytes.data() + 8, bytes.size() - 8);
  if (Crc32c(body) != crc) {
    return Status::Corruption("session checksum mismatch");
  }

  Decoder dec(body);
  uint32_t version, round, count;
  SessionState state;
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&version));
  if (version < 1 || version > kVersion) {
    return Status::NotSupported("unknown version");
  }
  MIVID_RETURN_IF_ERROR(dec.GetLengthPrefixed(&state.camera_id));
  if (version >= 2) {
    MIVID_RETURN_IF_ERROR(dec.GetLengthPrefixed(&state.engine));
  }
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&round));
  state.round = static_cast<int>(round);
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&count));
  state.labels.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t bag_id;
    uint8_t label;
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&bag_id));
    MIVID_RETURN_IF_ERROR(dec.GetByte(&label));
    if (label > static_cast<uint8_t>(BagLabel::kIrrelevant)) {
      return Status::Corruption("invalid bag label");
    }
    state.labels.emplace_back(static_cast<int>(bag_id),
                              static_cast<BagLabel>(label));
  }
  MIVID_RETURN_IF_ERROR(dec.ExpectDone());
  return state;
}

}  // namespace mivid

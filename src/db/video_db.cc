#include "db/video_db.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/fault.h"
#include "common/string_util.h"
#include "svm/model_io.h"

namespace mivid {

namespace {
constexpr char kCatalogFile[] = "CATALOG";
}  // namespace

Result<std::unique_ptr<VideoDb>> VideoDb::Open(const std::string& path,
                                               const VideoDbOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const bool exists = fs::exists(path, ec);
  const std::string catalog_path = path + "/" + kCatalogFile;
  const bool has_catalog = fs::exists(catalog_path, ec);

  if (has_catalog && options.error_if_exists) {
    return Status::AlreadyExists("database already exists at " + path);
  }
  if (!has_catalog && !options.create_if_missing) {
    return Status::NotFound("no database at " + path +
                            " (set create_if_missing to create one)");
  }

  std::unique_ptr<VideoDb> db(new VideoDb(path));
  if (!has_catalog) {
    if (!exists && !fs::create_directories(path, ec) && ec) {
      return Status::IOError("cannot create directory " + path + ": " +
                             ec.message());
    }
    MIVID_RETURN_IF_ERROR(db->PersistCatalog());
  } else {
    MIVID_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(catalog_path));
    MIVID_ASSIGN_OR_RETURN(db->catalog_, Catalog::Deserialize(bytes));
  }
  return db;
}

Status VideoDb::PersistCatalog() const {
  return WriteFileAtomic(path_ + "/" + kCatalogFile, catalog_.Serialize());
}

std::string VideoDb::TracksPath(int clip_id) const {
  return StrFormat("%s/clip_%d.trk", path_.c_str(), clip_id);
}

std::string VideoDb::IncidentsPath(int clip_id) const {
  return StrFormat("%s/clip_%d.inc", path_.c_str(), clip_id);
}

std::string VideoDb::VideoPath(int clip_id) const {
  return StrFormat("%s/clip_%d.vid", path_.c_str(), clip_id);
}

std::string VideoDb::ModelPath(const std::string& name) const {
  return path_ + "/model_" + name + ".svm";
}

Status VideoDb::SaveClipVideo(int clip_id, const VideoClip& video) {
  MIVID_RETURN_IF_ERROR(catalog_.Get(clip_id).status());
  return WriteFileAtomic(VideoPath(clip_id), SerializeFrames(video));
}

Result<VideoClip> VideoDb::LoadClipVideo(int clip_id) const {
  Result<std::string> bytes = ReadFileToString(VideoPath(clip_id));
  if (!bytes.ok()) {
    return Status::NotFound(
        StrFormat("no stored video for clip %d", clip_id));
  }
  return DeserializeFrames(bytes.value());
}

bool VideoDb::HasClipVideo(int clip_id) const {
  std::error_code ec;
  return std::filesystem::exists(VideoPath(clip_id), ec);
}

Result<int> VideoDb::IngestClip(const ClipInfo& info,
                                const std::vector<Track>& tracks,
                                const std::vector<IncidentRecord>& incidents) {
  const int id = catalog_.Add(info);
  Status s = WriteFileAtomic(TracksPath(id), SerializeTracks(tracks));
  if (s.ok()) {
    s = WriteFileAtomic(IncidentsPath(id), SerializeIncidents(incidents));
  }
  if (s.ok()) s = PersistCatalog();
  if (!s.ok()) {
    // Roll back the catalog entry so the db stays consistent.
    (void)catalog_.Remove(id);
    std::remove(TracksPath(id).c_str());
    std::remove(IncidentsPath(id).c_str());
    return s;
  }
  return id;
}

Result<ClipRecord> VideoDb::LoadClip(int clip_id) const {
  ClipRecord record;
  MIVID_ASSIGN_OR_RETURN(record.info, catalog_.Get(clip_id));
  {
    MIVID_ASSIGN_OR_RETURN(std::string bytes,
                           ReadFileToString(TracksPath(clip_id)));
    MIVID_ASSIGN_OR_RETURN(record.tracks, DeserializeTracks(bytes));
  }
  {
    MIVID_ASSIGN_OR_RETURN(std::string bytes,
                           ReadFileToString(IncidentsPath(clip_id)));
    MIVID_ASSIGN_OR_RETURN(record.incidents, DeserializeIncidents(bytes));
  }
  return record;
}

Status VideoDb::DeleteClip(int clip_id) {
  MIVID_RETURN_IF_ERROR(catalog_.Remove(clip_id));
  std::remove(TracksPath(clip_id).c_str());
  std::remove(IncidentsPath(clip_id).c_str());
  std::remove(VideoPath(clip_id).c_str());
  return PersistCatalog();
}

Status VideoDb::SaveModel(const std::string& name,
                          const OneClassSvmModel& model) {
  return WriteFileAtomic(ModelPath(name), SerializeOneClassSvm(model));
}

Result<OneClassSvmModel> VideoDb::LoadModel(const std::string& name) const {
  Result<std::string> bytes = ReadFileToString(ModelPath(name));
  if (!bytes.ok()) {
    return Status::NotFound("no model named '" + name + "'");
  }
  return DeserializeOneClassSvm(bytes.value());
}

std::string VideoDb::SessionPath(const std::string& name) const {
  return path_ + "/session_" + name + ".rfs";
}

Status VideoDb::SaveSession(const std::string& name,
                            const SessionState& state) {
  std::string bytes = SerializeSessionState(state);
  // journal.write.torn simulates a crash mid-journal-write: half the
  // bytes reach a temp file and the process dies before the atomic
  // rename. The previous journal generation must survive intact — a
  // failover replays it and the coordinator retries the lost round.
  if (MIVID_FAULT("journal.write.torn")) {
    const std::string torn =
        SessionPath(name) + ".tmp." + std::to_string(::getpid());
    if (std::FILE* f = std::fopen(torn.c_str(), "wb")) {
      std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
      std::fclose(f);
    }
    _exit(134);
  }
  return WriteFileAtomic(SessionPath(name), bytes);
}

Result<SessionState> VideoDb::LoadSession(const std::string& name) const {
  Result<std::string> bytes = ReadFileToString(SessionPath(name));
  if (!bytes.ok()) {
    return Status::NotFound("no session named '" + name + "'");
  }
  return DeserializeSessionState(bytes.value());
}

std::vector<std::string> VideoDb::ListSessions() const {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(path_, ec)) {
    const std::string file = entry.path().filename().string();
    if (StartsWith(file, "session_") && EndsWith(file, ".rfs")) {
      names.push_back(file.substr(8, file.size() - 8 - 4));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> VideoDb::ListModels() const {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(path_, ec)) {
    const std::string file = entry.path().filename().string();
    if (StartsWith(file, "model_") && EndsWith(file, ".svm")) {
      names.push_back(file.substr(6, file.size() - 6 - 4));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace mivid

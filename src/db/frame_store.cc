#include "db/frame_store.h"

#include "db/codec.h"

namespace mivid {

namespace {
constexpr uint32_t kFramesMagic = 0x534d5246u;  // "FRMS"
constexpr uint32_t kVersion = 1;
}  // namespace

std::string RleEncode(const std::vector<uint8_t>& bytes) {
  std::string out;
  out.reserve(bytes.size() / 4);
  size_t i = 0;
  while (i < bytes.size()) {
    const uint8_t value = bytes[i];
    size_t run = 1;
    while (i + run < bytes.size() && bytes[i + run] == value && run < 255) {
      ++run;
    }
    out.push_back(static_cast<char>(run));
    out.push_back(static_cast<char>(value));
    i += run;
  }
  return out;
}

Result<std::vector<uint8_t>> RleDecode(std::string_view encoded,
                                       size_t expected_size) {
  std::vector<uint8_t> out;
  out.reserve(expected_size);
  if (encoded.size() % 2 != 0) {
    return Status::Corruption("RLE stream has odd length");
  }
  for (size_t i = 0; i < encoded.size(); i += 2) {
    const uint8_t run = static_cast<uint8_t>(encoded[i]);
    const uint8_t value = static_cast<uint8_t>(encoded[i + 1]);
    if (run == 0) return Status::Corruption("RLE run of length zero");
    if (out.size() + run > expected_size) {
      return Status::Corruption("RLE stream overruns expected size");
    }
    out.insert(out.end(), run, value);
  }
  if (out.size() != expected_size) {
    return Status::Corruption("RLE stream underruns expected size");
  }
  return out;
}

std::string SerializeFrames(const VideoClip& clip) {
  std::string body;
  PutFixed32(&body, kVersion);
  PutFixed32(&body, static_cast<uint32_t>(clip.metadata().width));
  PutFixed32(&body, static_cast<uint32_t>(clip.metadata().height));
  PutDouble(&body, clip.metadata().fps);
  PutFixed32(&body, static_cast<uint32_t>(clip.frame_count()));
  for (size_t i = 0; i < clip.frame_count(); ++i) {
    // Adaptive per frame: RLE when it wins (static scenes), raw otherwise
    // (noisy frames have no runs and RLE would double them).
    const auto& pixels = clip.frame(i).pixels();
    std::string rle = RleEncode(pixels);
    if (rle.size() < pixels.size()) {
      body.push_back(1);  // RLE marker
      PutLengthPrefixed(&body, rle);
    } else {
      body.push_back(0);  // raw marker
      PutLengthPrefixed(&body,
                        std::string_view(
                            reinterpret_cast<const char*>(pixels.data()),
                            pixels.size()));
    }
  }
  std::string out;
  PutFixed32(&out, kFramesMagic);
  PutFixed32(&out, Crc32c(body));
  out += body;
  return out;
}

Result<VideoClip> DeserializeFrames(const std::string& bytes) {
  Decoder header(bytes);
  uint32_t magic, crc;
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&magic));
  if (magic != kFramesMagic) return Status::Corruption("bad frames magic");
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&crc));
  const std::string_view body(bytes.data() + 8, bytes.size() - 8);
  if (Crc32c(body) != crc) {
    return Status::Corruption("frames checksum mismatch");
  }

  Decoder dec(body);
  uint32_t version, width, height, count;
  double fps;
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&version));
  if (version != kVersion) return Status::NotSupported("unknown version");
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&width));
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&height));
  MIVID_RETURN_IF_ERROR(dec.GetDouble(&fps));
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&count));
  if (width == 0 || height == 0 || width > 1 << 14 || height > 1 << 14) {
    return Status::Corruption("implausible frame dimensions");
  }

  VideoClip clip;
  clip.metadata().fps = fps;
  const size_t pixels =
      static_cast<size_t>(width) * static_cast<size_t>(height);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t marker;
    std::string encoded;
    MIVID_RETURN_IF_ERROR(dec.GetByte(&marker));
    MIVID_RETURN_IF_ERROR(dec.GetLengthPrefixed(&encoded));
    std::vector<uint8_t> raw;
    if (marker == 1) {
      MIVID_ASSIGN_OR_RETURN(raw, RleDecode(encoded, pixels));
    } else if (marker == 0) {
      if (encoded.size() != pixels) {
        return Status::Corruption("raw frame payload size mismatch");
      }
      raw.assign(encoded.begin(), encoded.end());
    } else {
      return Status::Corruption("unknown frame encoding marker");
    }
    Frame frame(static_cast<int>(width), static_cast<int>(height));
    frame.pixels() = std::move(raw);
    clip.Append(std::move(frame));
  }
  return clip;
}

}  // namespace mivid

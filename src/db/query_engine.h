// QueryEngine: ties the database to the retrieval stack.
//
// Retrieval runs per camera (paper Sec. 6.2: clips from different cameras
// are not normalized against each other). The engine loads every clip of
// one camera, extracts features/windows per clip, merges them into one
// corpus with globally unique bag ids.
//
// BuildCorpus is the extraction primitive. Consumers (serve, cluster,
// tools, tests) obtain corpora exclusively through the epoch API of
// serve/corpus_manager.h — CorpusManager::Snapshot — which caches,
// snapshots, and extends corpora as streams append (docs/ingest.md).

#ifndef MIVID_DB_QUERY_ENGINE_H_
#define MIVID_DB_QUERY_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "db/video_db.h"
#include "eval/oracle.h"
#include "event/event_model.h"
#include "event/sliding_window.h"
#include "retrieval/session.h"

namespace mivid {

/// Query configuration.
struct QueryOptions {
  FeatureOptions features;
  WindowOptions windows;
  SessionOptions session;
  std::vector<IncidentType> relevant_types;  ///< empty = accident query
};

/// Identifies a bag within the merged multi-clip corpus.
struct CorpusBagRef {
  int clip_id = -1;
  int local_vs_id = -1;  ///< vs id within its clip
  int begin_frame = 0;
  int end_frame = 0;
};

/// A ready-to-run retrieval corpus for one camera.
struct CameraCorpus {
  std::string camera_id;
  MilDataset dataset;                    ///< global bag ids
  std::map<int, CorpusBagRef> bag_refs;  ///< global bag id -> provenance
  std::map<int, BagLabel> truth;         ///< oracle labels (from stored
                                         ///< incident annotations)
};

/// One clip's extraction output — everything needed to turn its windows
/// into corpus bags. Produced by the batch path (ComputeTrackFeatures +
/// FeatureScaler::Fit + ExtractWindows) and bit-identically by the
/// streaming path (ingest/clip_extractor.h).
struct ClipExtraction {
  int clip_id = -1;
  int total_frames = 0;
  std::vector<VideoSequence> windows;  ///< raw (unnormalized) features
  FeatureScaler scaler;                ///< whole-clip min/max
  std::vector<IncidentRecord> incidents;
};

/// Extracts one loaded clip with the batch pipeline.
ClipExtraction ExtractClip(const ClipRecord& record,
                           const QueryOptions& options);

/// Appends one clip's bags to `corpus`, assigning ids from
/// `*next_bag_id` (advanced past the new bags). The single bag-building
/// code path shared by batch corpus builds, streaming appends, and
/// epoch publishes — guaranteeing identical bags regardless of how a
/// clip reached the corpus.
void AppendClipBags(const ClipExtraction& clip, const QueryOptions& options,
                    CameraCorpus* corpus, int* next_bag_id);

/// Bag id the next appended clip should start at (ids are dense).
int NextBagId(const CameraCorpus& corpus);

/// Session options derived from the query configuration: feature
/// dimension and the default accident query model.
SessionOptions SessionOptionsFor(const QueryOptions& options);

/// Database-backed query front end.
class QueryEngine {
 public:
  /// `db` must outlive the engine.
  explicit QueryEngine(const VideoDb* db) : db_(db) {}

  /// Builds the merged corpus for `camera_id` over all of its clips.
  Result<CameraCorpus> BuildCorpus(const std::string& camera_id,
                                   const QueryOptions& options) const;

  /// Extracts the given clips (in the given order) and appends their
  /// bags to `corpus` — the epoch catch-up path for clips not yet
  /// covered by restored segments or a published epoch.
  Status AppendClips(const std::vector<int>& clip_ids,
                     const QueryOptions& options, CameraCorpus* corpus,
                     int* next_bag_id) const;

 private:
  const VideoDb* db_;
};

}  // namespace mivid

#endif  // MIVID_DB_QUERY_ENGINE_H_

// QueryEngine: ties the database to the retrieval stack.
//
// Retrieval runs per camera (paper Sec. 6.2: clips from different cameras
// are not normalized against each other). The engine loads every clip of
// one camera, extracts features/windows per clip, merges them into one
// corpus with globally unique bag ids, and opens a RetrievalSession.

#ifndef MIVID_DB_QUERY_ENGINE_H_
#define MIVID_DB_QUERY_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "db/video_db.h"
#include "eval/oracle.h"
#include "event/event_model.h"
#include "event/sliding_window.h"
#include "retrieval/session.h"

namespace mivid {

/// Query configuration.
struct QueryOptions {
  FeatureOptions features;
  WindowOptions windows;
  SessionOptions session;
  std::vector<IncidentType> relevant_types;  ///< empty = accident query
};

/// Identifies a bag within the merged multi-clip corpus.
struct CorpusBagRef {
  int clip_id = -1;
  int local_vs_id = -1;  ///< vs id within its clip
  int begin_frame = 0;
  int end_frame = 0;
};

/// A ready-to-run retrieval corpus for one camera.
struct CameraCorpus {
  std::string camera_id;
  MilDataset dataset;                    ///< global bag ids
  std::map<int, CorpusBagRef> bag_refs;  ///< global bag id -> provenance
  std::map<int, BagLabel> truth;         ///< oracle labels (from stored
                                         ///< incident annotations)
};

/// Database-backed query front end.
class QueryEngine {
 public:
  /// `db` must outlive the engine.
  explicit QueryEngine(const VideoDb* db) : db_(db) {}

  /// Builds the merged corpus for `camera_id`.
  Result<CameraCorpus> BuildCorpus(const std::string& camera_id,
                                   const QueryOptions& options) const;

  /// Opens an interactive session over the camera's corpus.
  Result<RetrievalSession> StartSession(const std::string& camera_id,
                                        const QueryOptions& options) const;

 private:
  const VideoDb* db_;
};

}  // namespace mivid

#endif  // MIVID_DB_QUERY_ENGINE_H_

#include "db/catalog.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "db/codec.h"

namespace mivid {

namespace {
constexpr uint32_t kCatalogMagic = 0x4c544143u;  // "CATL"
constexpr uint32_t kCatalogVersion = 1;
}  // namespace

int Catalog::Add(ClipInfo info) {
  info.clip_id = next_id_++;
  const int id = info.clip_id;
  clips_[id] = std::move(info);
  return id;
}

Result<ClipInfo> Catalog::Get(int clip_id) const {
  auto it = clips_.find(clip_id);
  if (it == clips_.end()) {
    return Status::NotFound(StrFormat("no clip with id %d", clip_id));
  }
  return it->second;
}

Status Catalog::Remove(int clip_id) {
  if (clips_.erase(clip_id) == 0) {
    return Status::NotFound(StrFormat("no clip with id %d", clip_id));
  }
  return Status::OK();
}

std::vector<ClipInfo> Catalog::List() const {
  std::vector<ClipInfo> out;
  out.reserve(clips_.size());
  for (const auto& [id, info] : clips_) {
    (void)id;
    out.push_back(info);
  }
  return out;
}

std::vector<std::string> Catalog::Cameras() const {
  std::set<std::string> cams;
  for (const auto& [id, info] : clips_) {
    (void)id;
    cams.insert(info.camera_id);
  }
  return {cams.begin(), cams.end()};
}

std::vector<int> Catalog::ClipsForCamera(const std::string& camera_id) const {
  std::vector<int> out;
  for (const auto& [id, info] : clips_) {
    if (info.camera_id == camera_id) out.push_back(id);
  }
  return out;
}

std::string Catalog::Serialize() const {
  std::string body;
  PutFixed32(&body, kCatalogVersion);
  PutFixed32(&body, static_cast<uint32_t>(next_id_));
  PutFixed32(&body, static_cast<uint32_t>(clips_.size()));
  for (const auto& [id, info] : clips_) {
    PutFixed32(&body, static_cast<uint32_t>(id));
    PutLengthPrefixed(&body, info.camera_id);
    PutLengthPrefixed(&body, info.location);
    PutFixed64(&body, static_cast<uint64_t>(info.start_time_ms));
    PutDouble(&body, info.fps);
    PutFixed32(&body, static_cast<uint32_t>(info.width));
    PutFixed32(&body, static_cast<uint32_t>(info.height));
    PutFixed32(&body, static_cast<uint32_t>(info.total_frames));
    PutLengthPrefixed(&body, info.scenario);
  }
  std::string out;
  PutFixed32(&out, kCatalogMagic);
  PutFixed32(&out, Crc32c(body));
  out += body;
  return out;
}

Result<Catalog> Catalog::Deserialize(const std::string& bytes) {
  Decoder header(bytes);
  uint32_t magic, crc;
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&magic));
  if (magic != kCatalogMagic) {
    return Status::Corruption("not a catalog file (bad magic)");
  }
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&crc));
  const std::string_view body(bytes.data() + 8, bytes.size() - 8);
  if (Crc32c(body) != crc) {
    return Status::Corruption("catalog checksum mismatch");
  }

  Decoder dec(body);
  uint32_t version, next_id, count;
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&version));
  if (version != kCatalogVersion) {
    return Status::NotSupported("unknown catalog version");
  }
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&next_id));
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&count));

  Catalog catalog;
  catalog.next_id_ = static_cast<int>(next_id);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id, w, h, frames;
    uint64_t start;
    ClipInfo info;
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&id));
    MIVID_RETURN_IF_ERROR(dec.GetLengthPrefixed(&info.camera_id));
    MIVID_RETURN_IF_ERROR(dec.GetLengthPrefixed(&info.location));
    MIVID_RETURN_IF_ERROR(dec.GetFixed64(&start));
    MIVID_RETURN_IF_ERROR(dec.GetDouble(&info.fps));
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&w));
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&h));
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&frames));
    MIVID_RETURN_IF_ERROR(dec.GetLengthPrefixed(&info.scenario));
    info.clip_id = static_cast<int>(id);
    info.start_time_ms = static_cast<int64_t>(start);
    info.width = static_cast<int>(w);
    info.height = static_cast<int>(h);
    info.total_frames = static_cast<int>(frames);
    catalog.clips_[info.clip_id] = std::move(info);
  }
  return catalog;
}

}  // namespace mivid

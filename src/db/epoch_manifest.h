// Epoch manifest: the on-disk index of a camera's appendable
// packed-corpus segments.
//
// A frozen camera has one segment (its whole corpus); every epoch
// publish with new streamed clips appends another. The manifest records
// the segment files in append order together with the clip ids each
// one covers, so a restarting daemon can rebuild the published epoch
// by concatenating segments (each verified by packed_corpus_io's CRCs
// and QueryOptions fingerprint) and only extract clips that arrived
// after the last publish. A missing or stale manifest is never fatal —
// the loader falls back to full extraction and rewrites it.
//
// File: <snapshot_dir>/<camera>.manifest.json, one JSON object,
// written atomically (temp + rename):
//   {"camera":"camA","epoch":3,
//    "segments":[{"file":"camA.seg0.mivpack","clips":[0,1],"bags":12}]}

#ifndef MIVID_DB_EPOCH_MANIFEST_H_
#define MIVID_DB_EPOCH_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mivid {

struct EpochSegment {
  std::string file;           ///< segment file name (manifest-relative)
  std::vector<int> clip_ids;  ///< clips whose bags the segment holds
  int bag_count = 0;
};

struct EpochManifest {
  std::string camera_id;
  uint64_t epoch = 0;
  std::vector<EpochSegment> segments;

  /// All covered clip ids in segment order.
  std::vector<int> AllClips() const;
};

Status WriteEpochManifest(const EpochManifest& manifest,
                          const std::string& path);

Result<EpochManifest> ReadEpochManifest(const std::string& path);

}  // namespace mivid

#endif  // MIVID_DB_EPOCH_MANIFEST_H_

#include "db/packed_corpus_io.h"

#include <cstring>

#include "db/codec.h"
#include "db/feature_store.h"

#if defined(__unix__) || defined(__APPLE__)
#define MIVID_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace mivid {

namespace {

constexpr char kMagic[8] = {'M', 'I', 'V', 'P', 'C', 'K', '0', '1'};
constexpr uint32_t kByteOrderProbe = 0x01020304;
constexpr uint32_t kPageSize = 4096;
constexpr size_t kHeaderBytes = 92;  // through the header CRC

/// Signed ints ride the fixed32 slots via value-preserving casts.
void PutI32(std::string* dst, int value) {
  PutFixed32(dst, static_cast<uint32_t>(value));
}

Status GetI32(Decoder* dec, int* value) {
  uint32_t raw = 0;
  MIVID_RETURN_IF_ERROR(dec->GetFixed32(&raw));
  *value = static_cast<int>(raw);
  return Status::OK();
}

/// FNV-1a, the usual 64-bit parameters.
uint64_t Fnv1a(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t QueryOptionsFingerprint(const QueryOptions& options) {
  // Serialize exactly the fields BuildCorpus consumes, then hash; the
  // session options ride along with the request and do not change corpus
  // content.
  std::string repr;
  PutFixed32(&repr, static_cast<uint32_t>(options.features.sampling_rate));
  PutDouble(&repr, options.features.min_mdist);
  PutDouble(&repr, options.features.min_motion);
  repr.push_back(options.features.include_velocity ? 1 : 0);
  PutFixed32(&repr, static_cast<uint32_t>(options.windows.window_size));
  PutFixed32(&repr, static_cast<uint32_t>(options.windows.stride));
  repr.push_back(options.windows.keep_empty ? 1 : 0);
  PutFixed32(&repr,
             static_cast<uint32_t>(options.relevant_types.size()));
  for (IncidentType type : options.relevant_types) {
    repr.push_back(static_cast<char>(type));
  }
  return Fnv1a(repr);
}

Status WritePackedCorpusFile(const CameraCorpus& corpus,
                             const std::string& path,
                             const QueryOptions& options) {
  const std::shared_ptr<const PackedCorpus> packed =
      corpus.dataset.EnsurePacked();
  if (!packed->valid) {
    return Status::FailedPrecondition(
        "corpus has mixed instance dimensions; no packed layout to store");
  }
  const PackedFeatureMatrix& feat = packed->features;

  std::string meta;
  PutLengthPrefixed(&meta, corpus.camera_id);
  PutFixed64(&meta, corpus.dataset.size());
  for (const MilBag& bag : corpus.dataset.bags()) {
    PutI32(&meta, bag.id);
    PutFixed64(&meta, bag.instances.size());
    for (const MilInstance& inst : bag.instances) {
      PutI32(&meta, inst.instance_id);
      PutVec(&meta, inst.raw_features);
    }
  }
  PutFixed64(&meta, corpus.bag_refs.size());
  for (const auto& [bag_id, ref] : corpus.bag_refs) {
    PutI32(&meta, bag_id);
    PutI32(&meta, ref.clip_id);
    PutI32(&meta, ref.local_vs_id);
    PutI32(&meta, ref.begin_frame);
    PutI32(&meta, ref.end_frame);
  }
  PutFixed64(&meta, corpus.truth.size());
  for (const auto& [bag_id, label] : corpus.truth) {
    PutI32(&meta, bag_id);
    meta.push_back(static_cast<char>(label));
  }

  const uint64_t features_offset = kPageSize;
  const uint64_t features_bytes = feat.dim() * feat.stride() * sizeof(double);
  const std::string_view features_view(
      reinterpret_cast<const char*>(feat.data()), features_bytes);

  std::string header;
  header.append(kMagic, sizeof(kMagic));
  {
    char probe[4];
    std::memcpy(probe, &kByteOrderProbe, sizeof(probe));
    header.append(probe, sizeof(probe));
  }
  PutFixed32(&header, kPageSize);
  PutFixed64(&header, QueryOptionsFingerprint(options));
  PutFixed64(&header, feat.n());
  PutFixed64(&header, feat.dim());
  PutFixed64(&header, feat.stride());
  PutFixed64(&header, features_offset);
  PutFixed64(&header, features_bytes);
  PutFixed64(&header, features_offset + features_bytes);
  PutFixed64(&header, meta.size());
  PutFixed32(&header, Crc32c(features_view));
  PutFixed32(&header, Crc32c(meta));
  PutFixed32(&header, Crc32c(header));  // over [0, 88)

  std::string blob;
  blob.reserve(kPageSize + features_bytes + meta.size());
  blob = header;
  blob.resize(kPageSize, '\0');
  blob.append(features_view);
  blob += meta;
  return WriteFileAtomic(path, blob);
}

namespace {

/// Pins the snapshot bytes: either an mmap'd range or a heap copy.
struct SnapshotMapping {
  const char* data = nullptr;
  size_t size = 0;
  std::shared_ptr<const void> keepalive;
};

Result<SnapshotMapping> MapSnapshot(const std::string& path) {
#if defined(MIVID_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open corpus snapshot '" + path + "'");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat corpus snapshot '" + path + "'");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::Corruption("empty corpus snapshot '" + path + "'");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping outlives the descriptor
  if (base == MAP_FAILED) {
    return Status::IOError("cannot mmap corpus snapshot '" + path + "'");
  }
  SnapshotMapping mapping;
  mapping.data = static_cast<const char*>(base);
  mapping.size = size;
  mapping.keepalive = std::shared_ptr<const void>(
      base, [size](const void* p) { ::munmap(const_cast<void*>(p), size); });
  return mapping;
#else
  // No mmap on this platform: a heap copy keeps the same zero-parse
  // adoption path (operator new is at least 8-byte aligned).
  MIVID_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  auto owned = std::make_shared<const std::string>(std::move(bytes));
  SnapshotMapping mapping;
  mapping.data = owned->data();
  mapping.size = owned->size();
  mapping.keepalive = std::shared_ptr<const void>(owned, owned->data());
  return mapping;
#endif
}

}  // namespace

Result<std::shared_ptr<const CameraCorpus>> ReadPackedCorpusFile(
    const std::string& path, const QueryOptions& options) {
  MIVID_ASSIGN_OR_RETURN(SnapshotMapping mapping, MapSnapshot(path));
  const char* base = mapping.data;
  if (mapping.size < kHeaderBytes) {
    return Status::Corruption("corpus snapshot too short: " + path);
  }
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad corpus snapshot magic: " + path);
  }
  uint32_t probe = 0;
  std::memcpy(&probe, base + 8, sizeof(probe));
  if (probe != kByteOrderProbe) {
    return Status::NotSupported(
        "corpus snapshot written on a foreign-endian host: " + path);
  }

  Decoder header(std::string_view(base + 12, kHeaderBytes - 12));
  uint32_t page = 0, features_crc = 0, meta_crc = 0, header_crc = 0;
  uint64_t fingerprint = 0, n = 0, dim = 0, stride = 0;
  uint64_t features_offset = 0, features_bytes = 0;
  uint64_t meta_offset = 0, meta_bytes = 0;
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&page));
  MIVID_RETURN_IF_ERROR(header.GetFixed64(&fingerprint));
  MIVID_RETURN_IF_ERROR(header.GetFixed64(&n));
  MIVID_RETURN_IF_ERROR(header.GetFixed64(&dim));
  MIVID_RETURN_IF_ERROR(header.GetFixed64(&stride));
  MIVID_RETURN_IF_ERROR(header.GetFixed64(&features_offset));
  MIVID_RETURN_IF_ERROR(header.GetFixed64(&features_bytes));
  MIVID_RETURN_IF_ERROR(header.GetFixed64(&meta_offset));
  MIVID_RETURN_IF_ERROR(header.GetFixed64(&meta_bytes));
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&features_crc));
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&meta_crc));
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&header_crc));
  if (Crc32c(std::string_view(base, kHeaderBytes - 4)) != header_crc) {
    return Status::Corruption("corpus snapshot header CRC mismatch: " + path);
  }
  if (fingerprint != QueryOptionsFingerprint(options)) {
    return Status::FailedPrecondition(
        "corpus snapshot was extracted under different query options: " +
        path);
  }
  if (stride != PackedFeatureMatrix::StrideFor(n) ||
      features_bytes != dim * stride * sizeof(double) ||
      features_offset % alignof(double) != 0 ||
      features_offset + features_bytes < features_offset ||
      features_offset + features_bytes > mapping.size ||
      meta_offset + meta_bytes < meta_offset ||
      meta_offset + meta_bytes > mapping.size) {
    return Status::Corruption("corpus snapshot layout out of bounds: " + path);
  }
  const std::string_view features_view(base + features_offset,
                                       features_bytes);
  const std::string_view meta_view(base + meta_offset, meta_bytes);
  if (Crc32c(features_view) != features_crc) {
    return Status::DataLoss("corpus snapshot feature CRC mismatch: " + path);
  }
  if (Crc32c(meta_view) != meta_crc) {
    return Status::DataLoss("corpus snapshot metadata CRC mismatch: " + path);
  }

  const double* features =
      reinterpret_cast<const double*>(base + features_offset);
  auto corpus = std::make_shared<CameraCorpus>();
  Decoder meta(meta_view);
  MIVID_RETURN_IF_ERROR(meta.GetLengthPrefixed(&corpus->camera_id));
  uint64_t bag_count = 0;
  MIVID_RETURN_IF_ERROR(meta.GetFixed64(&bag_count));
  size_t next_instance = 0;
  for (uint64_t b = 0; b < bag_count; ++b) {
    MilBag bag;
    uint64_t instance_count = 0;
    MIVID_RETURN_IF_ERROR(GetI32(&meta, &bag.id));
    MIVID_RETURN_IF_ERROR(meta.GetFixed64(&instance_count));
    bag.instances.reserve(instance_count);
    for (uint64_t i = 0; i < instance_count; ++i) {
      MilInstance inst;
      inst.bag_id = bag.id;
      MIVID_RETURN_IF_ERROR(GetI32(&meta, &inst.instance_id));
      MIVID_RETURN_IF_ERROR(meta.GetVec(&inst.raw_features));
      if (next_instance >= n) {
        return Status::Corruption(
            "corpus snapshot bag table exceeds the feature block: " + path);
      }
      // Materialize the AoS vector for the non-packed code paths; the
      // gather reads the exact stored doubles, so it round-trips bit-
      // for-bit with what the packed view serves.
      inst.features.resize(dim);
      for (size_t k = 0; k < dim; ++k) {
        inst.features[k] = features[k * stride + next_instance];
      }
      ++next_instance;
      bag.instances.push_back(std::move(inst));
    }
    corpus->dataset.AddBag(std::move(bag));
  }
  if (next_instance != n) {
    return Status::Corruption(
        "corpus snapshot instance count disagrees with its bag table: " +
        path);
  }
  uint64_t ref_count = 0;
  MIVID_RETURN_IF_ERROR(meta.GetFixed64(&ref_count));
  for (uint64_t r = 0; r < ref_count; ++r) {
    int bag_id = 0;
    CorpusBagRef ref;
    MIVID_RETURN_IF_ERROR(GetI32(&meta, &bag_id));
    MIVID_RETURN_IF_ERROR(GetI32(&meta, &ref.clip_id));
    MIVID_RETURN_IF_ERROR(GetI32(&meta, &ref.local_vs_id));
    MIVID_RETURN_IF_ERROR(GetI32(&meta, &ref.begin_frame));
    MIVID_RETURN_IF_ERROR(GetI32(&meta, &ref.end_frame));
    corpus->bag_refs[bag_id] = ref;
  }
  uint64_t truth_count = 0;
  MIVID_RETURN_IF_ERROR(meta.GetFixed64(&truth_count));
  for (uint64_t t = 0; t < truth_count; ++t) {
    int bag_id = 0;
    uint8_t label = 0;
    MIVID_RETURN_IF_ERROR(GetI32(&meta, &bag_id));
    MIVID_RETURN_IF_ERROR(meta.GetByte(&label));
    if (label > static_cast<uint8_t>(BagLabel::kIrrelevant)) {
      return Status::Corruption("corpus snapshot has an unknown bag label: " +
                                path);
    }
    corpus->truth[bag_id] = static_cast<BagLabel>(label);
  }
  MIVID_RETURN_IF_ERROR(meta.ExpectDone());

  // Adopt the mapped block as the dataset's packed corpus: ranking reads
  // the file's pages directly. The keepalive pins the mapping for as long
  // as any dataset copy (sessions copy the dataset) holds the packing.
  auto packed = std::make_shared<PackedCorpus>();
  packed->bag_begin.assign(1, 0);
  packed->bag_begin.reserve(corpus->dataset.size() + 1);
  size_t running = 0;
  for (const MilBag& bag : corpus->dataset.bags()) {
    running += bag.instances.size();
    packed->bag_begin.push_back(running);
  }
  packed->features =
      PackedFeatureMatrix::View(features, n, dim, stride, mapping.keepalive);
  packed->valid = true;
  corpus->dataset.AdoptPacked(std::move(packed));
  return std::shared_ptr<const CameraCorpus>(std::move(corpus));
}

}  // namespace mivid

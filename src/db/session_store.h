// SessionStore: persistence of relevance-feedback sessions.
//
// The paper's framework "progressively gathers training samples and
// customizes the retrieval process" per user; persisting the session's
// accumulated bag labels lets a user stop and later resume exactly where
// they left off (complementing the persisted SVM model, which only
// captures the last trained state).

#ifndef MIVID_DB_SESSION_STORE_H_
#define MIVID_DB_SESSION_STORE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "mil/bag.h"

namespace mivid {

/// A resumable snapshot of one retrieval session.
struct SessionState {
  std::string camera_id;
  std::string engine = "milrf";  ///< retrieval-engine registry key
  int round = 0;
  std::vector<std::pair<int, BagLabel>> labels;  ///< bag id -> feedback
};

/// Serializes a session snapshot (checksummed envelope).
std::string SerializeSessionState(const SessionState& state);

/// Parses a snapshot written by SerializeSessionState.
Result<SessionState> DeserializeSessionState(const std::string& bytes);

}  // namespace mivid

#endif  // MIVID_DB_SESSION_STORE_H_

// FrameStore: persistence of the raw video itself.
//
// The database keeps the clip's frames so an operator can play back the
// retrieved Video Sequences (the paper's UI, Fig. 7). Frames are stored as
// a checksummed blob with per-frame byte-level run-length encoding —
// synthetic surveillance frames (large uniform regions) compress well, and
// decoding is exact.

#ifndef MIVID_DB_FRAME_STORE_H_
#define MIVID_DB_FRAME_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "video/clip.h"
#include "video/frame.h"

namespace mivid {

/// Run-length encodes raw bytes: pairs of (count, value), count 1..255.
std::string RleEncode(const std::vector<uint8_t>& bytes);

/// Decodes RleEncode output; fails on truncated input or size mismatch.
Result<std::vector<uint8_t>> RleDecode(std::string_view encoded,
                                       size_t expected_size);

/// Serializes a clip's frames (all must share one resolution).
std::string SerializeFrames(const VideoClip& clip);

/// Parses a blob written by SerializeFrames; metadata fields that live in
/// the catalog (camera, time) are not stored here and stay default.
Result<VideoClip> DeserializeFrames(const std::string& bytes);

}  // namespace mivid

#endif  // MIVID_DB_FRAME_STORE_H_

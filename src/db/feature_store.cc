#include "db/feature_store.h"

#include <unistd.h>

#include <cstdio>

#include "db/codec.h"

namespace mivid {

namespace {
constexpr uint32_t kTracksMagic = 0x534b5254u;     // "TRKS"
constexpr uint32_t kIncidentsMagic = 0x53434e49u;  // "INCS"
constexpr uint32_t kVersion = 1;

std::string Envelope(uint32_t magic, const std::string& body) {
  std::string out;
  PutFixed32(&out, magic);
  PutFixed32(&out, Crc32c(body));
  out += body;
  return out;
}

Result<std::string_view> OpenEnvelope(uint32_t magic,
                                      const std::string& bytes) {
  Decoder header(bytes);
  uint32_t got_magic, crc;
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&got_magic));
  if (got_magic != magic) return Status::Corruption("bad magic");
  MIVID_RETURN_IF_ERROR(header.GetFixed32(&crc));
  const std::string_view body(bytes.data() + 8, bytes.size() - 8);
  if (Crc32c(body) != crc) return Status::Corruption("checksum mismatch");
  return body;
}

}  // namespace

std::string SerializeTracks(const std::vector<Track>& tracks) {
  std::string body;
  PutFixed32(&body, kVersion);
  PutFixed32(&body, static_cast<uint32_t>(tracks.size()));
  for (const auto& t : tracks) {
    PutFixed32(&body, static_cast<uint32_t>(t.id));
    PutFixed32(&body, static_cast<uint32_t>(t.points.size()));
    for (const auto& p : t.points) {
      PutFixed32(&body, static_cast<uint32_t>(p.frame));
      PutDouble(&body, p.centroid.x);
      PutDouble(&body, p.centroid.y);
      PutDouble(&body, p.bbox.min_x);
      PutDouble(&body, p.bbox.min_y);
      PutDouble(&body, p.bbox.max_x);
      PutDouble(&body, p.bbox.max_y);
    }
  }
  return Envelope(kTracksMagic, body);
}

Result<std::vector<Track>> DeserializeTracks(const std::string& bytes) {
  MIVID_ASSIGN_OR_RETURN(std::string_view body,
                         OpenEnvelope(kTracksMagic, bytes));
  Decoder dec(body);
  uint32_t version, count;
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&version));
  if (version != kVersion) return Status::NotSupported("unknown version");
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&count));
  std::vector<Track> tracks(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id, npoints;
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&id));
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&npoints));
    tracks[i].id = static_cast<int>(id);
    tracks[i].points.resize(npoints);
    for (uint32_t j = 0; j < npoints; ++j) {
      TrackPoint& p = tracks[i].points[j];
      uint32_t frame;
      MIVID_RETURN_IF_ERROR(dec.GetFixed32(&frame));
      p.frame = static_cast<int>(frame);
      MIVID_RETURN_IF_ERROR(dec.GetDouble(&p.centroid.x));
      MIVID_RETURN_IF_ERROR(dec.GetDouble(&p.centroid.y));
      MIVID_RETURN_IF_ERROR(dec.GetDouble(&p.bbox.min_x));
      MIVID_RETURN_IF_ERROR(dec.GetDouble(&p.bbox.min_y));
      MIVID_RETURN_IF_ERROR(dec.GetDouble(&p.bbox.max_x));
      MIVID_RETURN_IF_ERROR(dec.GetDouble(&p.bbox.max_y));
    }
  }
  MIVID_RETURN_IF_ERROR(dec.ExpectDone());
  return tracks;
}

std::string SerializeIncidents(const std::vector<IncidentRecord>& incidents) {
  std::string body;
  PutFixed32(&body, kVersion);
  PutFixed32(&body, static_cast<uint32_t>(incidents.size()));
  for (const auto& rec : incidents) {
    PutFixed32(&body, static_cast<uint32_t>(rec.type));
    PutFixed32(&body, static_cast<uint32_t>(rec.begin_frame));
    PutFixed32(&body, static_cast<uint32_t>(rec.end_frame));
    PutFixed32(&body, static_cast<uint32_t>(rec.vehicle_ids.size()));
    for (int id : rec.vehicle_ids) {
      PutFixed32(&body, static_cast<uint32_t>(id));
    }
  }
  return Envelope(kIncidentsMagic, body);
}

Result<std::vector<IncidentRecord>> DeserializeIncidents(
    const std::string& bytes) {
  MIVID_ASSIGN_OR_RETURN(std::string_view body,
                         OpenEnvelope(kIncidentsMagic, bytes));
  Decoder dec(body);
  uint32_t version, count;
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&version));
  if (version != kVersion) return Status::NotSupported("unknown version");
  MIVID_RETURN_IF_ERROR(dec.GetFixed32(&count));
  std::vector<IncidentRecord> incidents(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t type, begin, end, nveh;
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&type));
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&begin));
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&end));
    MIVID_RETURN_IF_ERROR(dec.GetFixed32(&nveh));
    if (type > static_cast<uint32_t>(IncidentType::kSpeeding)) {
      return Status::Corruption("invalid incident type");
    }
    incidents[i].type = static_cast<IncidentType>(type);
    incidents[i].begin_frame = static_cast<int>(begin);
    incidents[i].end_frame = static_cast<int>(end);
    incidents[i].vehicle_ids.resize(nveh);
    for (uint32_t j = 0; j < nveh; ++j) {
      uint32_t id;
      MIVID_RETURN_IF_ERROR(dec.GetFixed32(&id));
      incidents[i].vehicle_ids[j] = static_cast<int>(id);
    }
  }
  MIVID_RETURN_IF_ERROR(dec.ExpectDone());
  return incidents;
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  // The temp name carries the pid so replicated workers journaling the
  // same session file over a shared database never interleave writes
  // into one temp file; rename() still makes the final swap atomic.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return Status::IOError("cannot open " + tmp + " for writing");
  const size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::IOError("cannot open " + path);
  std::string bytes;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  return bytes;
}

}  // namespace mivid

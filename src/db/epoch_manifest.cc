#include "db/epoch_manifest.h"

#include "common/string_util.h"
#include "db/feature_store.h"
#include "obs/json.h"

namespace mivid {

std::vector<int> EpochManifest::AllClips() const {
  std::vector<int> out;
  for (const auto& seg : segments) {
    out.insert(out.end(), seg.clip_ids.begin(), seg.clip_ids.end());
  }
  return out;
}

Status WriteEpochManifest(const EpochManifest& manifest,
                          const std::string& path) {
  std::string json = "{\"camera\":\"" + JsonEscape(manifest.camera_id) +
                     "\",\"epoch\":" + std::to_string(manifest.epoch) +
                     ",\"segments\":[";
  for (size_t i = 0; i < manifest.segments.size(); ++i) {
    const EpochSegment& seg = manifest.segments[i];
    if (i) json += ",";
    json += "{\"file\":\"" + JsonEscape(seg.file) + "\",\"clips\":[";
    for (size_t c = 0; c < seg.clip_ids.size(); ++c) {
      if (c) json += ",";
      json += std::to_string(seg.clip_ids[c]);
    }
    json += "],\"bags\":" + std::to_string(seg.bag_count) + "}";
  }
  json += "]}";
  return WriteFileAtomic(path, json);
}

Result<EpochManifest> ReadEpochManifest(const std::string& path) {
  MIVID_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  MIVID_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(bytes));
  if (!doc.is_object()) {
    return Status::Corruption("epoch manifest is not a JSON object: " + path);
  }

  EpochManifest manifest;
  const JsonValue* camera = doc.Find("camera");
  const JsonValue* epoch = doc.Find("epoch");
  const JsonValue* segments = doc.Find("segments");
  if (camera == nullptr || !camera->is_string() || epoch == nullptr ||
      !epoch->is_number() || segments == nullptr || !segments->is_array()) {
    return Status::Corruption("epoch manifest missing fields: " + path);
  }
  manifest.camera_id = camera->string;
  manifest.epoch = static_cast<uint64_t>(epoch->number);

  for (const JsonValue& entry : segments->array) {
    const JsonValue* file = entry.Find("file");
    const JsonValue* clips = entry.Find("clips");
    const JsonValue* bags = entry.Find("bags");
    if (file == nullptr || !file->is_string() || clips == nullptr ||
        !clips->is_array()) {
      return Status::Corruption("epoch manifest segment malformed: " + path);
    }
    EpochSegment seg;
    seg.file = file->string;
    for (const JsonValue& clip : clips->array) {
      if (!clip.is_number()) {
        return Status::Corruption("epoch manifest clip id malformed: " +
                                  path);
      }
      seg.clip_ids.push_back(static_cast<int>(clip.number));
    }
    if (bags != nullptr && bags->is_number()) {
      seg.bag_count = static_cast<int>(bags->number);
    }
    manifest.segments.push_back(std::move(seg));
  }
  return manifest;
}

}  // namespace mivid

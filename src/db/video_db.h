// VideoDb: the on-disk transportation surveillance video database.
//
// Layout under the database directory:
//   CATALOG           clip metadata index
//   clip_<id>.trk     tracked trajectories
//   clip_<id>.inc     incident annotations
//   model_<name>.svm  saved one-class SVM models (per-user query models)
//
// All writes are atomic (write-to-temp + rename); all files carry CRC32C
// envelopes and are verified on read.

#ifndef MIVID_DB_VIDEO_DB_H_
#define MIVID_DB_VIDEO_DB_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/catalog.h"
#include "db/feature_store.h"
#include "db/frame_store.h"
#include "db/session_store.h"
#include "svm/one_class_svm.h"

namespace mivid {

/// Open options (RocksDB-style).
struct VideoDbOptions {
  bool create_if_missing = false;
  bool error_if_exists = false;
};

/// A clip's full stored payload.
struct ClipRecord {
  ClipInfo info;
  std::vector<Track> tracks;
  std::vector<IncidentRecord> incidents;
};

/// The database handle.
class VideoDb {
 public:
  /// Opens (or creates) a database rooted at `path`.
  static Result<std::unique_ptr<VideoDb>> Open(const std::string& path,
                                               const VideoDbOptions& options);

  /// Ingests a clip: metadata + trajectories + incident annotations.
  /// Assigns and returns the clip id. Persists immediately.
  Result<int> IngestClip(const ClipInfo& info, const std::vector<Track>& tracks,
                         const std::vector<IncidentRecord>& incidents);

  /// Loads a clip's full record.
  Result<ClipRecord> LoadClip(int clip_id) const;

  /// Deletes a clip (catalog entry and payload files).
  Status DeleteClip(int clip_id);

  /// Catalog queries.
  std::vector<ClipInfo> ListClips() const { return catalog_.List(); }
  std::vector<std::string> Cameras() const { return catalog_.Cameras(); }
  std::vector<int> ClipsForCamera(const std::string& camera_id) const {
    return catalog_.ClipsForCamera(camera_id);
  }
  size_t clip_count() const { return catalog_.size(); }

  /// Stores the clip's raw video (RLE-compressed frames) for playback of
  /// retrieved windows. The clip must exist in the catalog.
  Status SaveClipVideo(int clip_id, const VideoClip& video);

  /// Loads a clip's stored video; NotFound when none was saved.
  Result<VideoClip> LoadClipVideo(int clip_id) const;

  /// True when clip_id has stored video.
  bool HasClipVideo(int clip_id) const;

  /// Persisted per-user query models.
  Status SaveModel(const std::string& name, const OneClassSvmModel& model);
  Result<OneClassSvmModel> LoadModel(const std::string& name) const;
  std::vector<std::string> ListModels() const;

  /// Persisted relevance-feedback sessions (resume across runs).
  Status SaveSession(const std::string& name, const SessionState& state);
  Result<SessionState> LoadSession(const std::string& name) const;
  std::vector<std::string> ListSessions() const;

  const std::string& path() const { return path_; }

 private:
  explicit VideoDb(std::string path) : path_(std::move(path)) {}

  Status PersistCatalog() const;
  std::string TracksPath(int clip_id) const;
  std::string IncidentsPath(int clip_id) const;
  std::string VideoPath(int clip_id) const;
  std::string ModelPath(const std::string& name) const;
  std::string SessionPath(const std::string& name) const;

  std::string path_;
  Catalog catalog_;
};

}  // namespace mivid

#endif  // MIVID_DB_VIDEO_DB_H_

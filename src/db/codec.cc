#include "db/codec.h"

#include <cstring>

namespace mivid {

void PutFixed32(std::string* dst, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutFixed64(std::string* dst, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* dst, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(dst, bits);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

void PutVec(std::string* dst, const Vec& value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  for (double v : value) PutDouble(dst, v);
}

Status Decoder::GetByte(uint8_t* value) {
  if (pos_ + 1 > data_.size()) return Status::Corruption("truncated byte");
  *value = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status Decoder::GetFixed32(uint32_t* value) {
  if (pos_ + 4 > data_.size()) {
    return Status::Corruption("truncated fixed32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  *value = v;
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* value) {
  if (pos_ + 8 > data_.size()) {
    return Status::Corruption("truncated fixed64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  *value = v;
  return Status::OK();
}

Status Decoder::GetDouble(double* value) {
  uint64_t bits;
  MIVID_RETURN_IF_ERROR(GetFixed64(&bits));
  std::memcpy(value, &bits, sizeof(bits));
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string* value) {
  uint32_t len;
  MIVID_RETURN_IF_ERROR(GetFixed32(&len));
  if (pos_ + len > data_.size()) {
    return Status::Corruption("truncated length-prefixed string");
  }
  value->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetVec(Vec* value) {
  uint32_t len;
  MIVID_RETURN_IF_ERROR(GetFixed32(&len));
  if (pos_ + static_cast<size_t>(len) * 8 > data_.size()) {
    return Status::Corruption("truncated double vector");
  }
  value->resize(len);
  for (uint32_t i = 0; i < len; ++i) {
    MIVID_RETURN_IF_ERROR(GetDouble(&(*value)[i]));
  }
  return Status::OK();
}

Status Decoder::ExpectDone() const {
  if (pos_ >= data_.size()) return Status::OK();
  return Status::DataLoss("record has " + std::to_string(remaining()) +
                          " trailing byte(s) past the last field");
}

namespace {

const uint32_t* Crc32cTable() {
  static uint32_t table[256];
  static bool initialized = [] {
    const uint32_t poly = 0x82f63b78u;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ (crc & 1 ? poly : 0);
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  const uint32_t* table = Crc32cTable();
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(ch)) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

}  // namespace mivid

// Binary encoding primitives for on-disk records (little-endian fixed
// widths plus length-prefixed strings), in the style of RocksDB's coding
// utilities. All multi-byte values are encoded explicitly byte-by-byte so
// files are portable across hosts.

#ifndef MIVID_DB_CODEC_H_
#define MIVID_DB_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "linalg/matrix.h"

namespace mivid {

/// Appends a fixed-width little-endian 32-bit value.
void PutFixed32(std::string* dst, uint32_t value);

/// Appends a fixed-width little-endian 64-bit value.
void PutFixed64(std::string* dst, uint64_t value);

/// Appends an IEEE-754 double (as its 64-bit pattern).
void PutDouble(std::string* dst, double value);

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Appends a length-prefixed vector of doubles.
void PutVec(std::string* dst, const Vec& value);

/// Cursor over an encoded buffer. All Get* calls fail with Corruption once
/// the buffer is exhausted; check ok() or the returned Status.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Status GetByte(uint8_t* value);
  Status GetFixed32(uint32_t* value);
  Status GetFixed64(uint64_t* value);
  Status GetDouble(double* value);
  Status GetLengthPrefixed(std::string* value);
  Status GetVec(Vec* value);

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ >= data_.size(); }

  /// Verifies the buffer was consumed exactly. Trailing bytes mean the
  /// record was padded or the reader and writer disagree on the layout —
  /// either way the decode cannot be trusted, so this is DataLoss, not a
  /// benign leftover. Deserializers should end with this, not Done().
  Status ExpectDone() const;

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (Castagnoli polynomial, unaccelerated) for record integrity.
uint32_t Crc32c(std::string_view data);

}  // namespace mivid

#endif  // MIVID_DB_CODEC_H_

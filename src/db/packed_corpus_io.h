// Zero-copy packed-corpus snapshots.
//
// Building a CameraCorpus (QueryEngine::BuildCorpus) re-derives tracks,
// features, and windows from the stored clips on every daemon start. A
// snapshot file captures the finished corpus so a restart serves sessions
// immediately: the instance-feature block is stored in the packed SoA
// layout of PackedFeatureMatrix, page-aligned, and is mapped read-only
// straight into the ranking pipeline (PackedFeatureMatrix::View +
// MilDataset::AdoptPacked) — the hot Gram/decision-value path reads the
// file's pages with no copy and no parse. Bag structure, raw features,
// provenance, and oracle labels live in a codec-encoded metadata blob
// after the feature block.
//
// Layout (fixed-width little-endian header, CRC32C over each region):
//
//   [0,  8)  magic "MIVPCK01"
//   [8, 12)  raw u32 0x01020304 (byte-order probe for the double block)
//   [12,16)  u32 page size used for feature alignment
//   [16,24)  u64 QueryOptions fingerprint
//   [24,32)  u64 n   (instances)
//   [32,40)  u64 dim
//   [40,48)  u64 stride (PackedFeatureMatrix::StrideFor(n))
//   [48,56)  u64 feature block offset (page aligned)
//   [56,64)  u64 feature block bytes (dim * stride * 8)
//   [64,72)  u64 metadata offset
//   [72,80)  u64 metadata bytes
//   [80,84)  u32 CRC32C(feature block)
//   [84,88)  u32 CRC32C(metadata)
//   [88,92)  u32 CRC32C(header [0,88))
//
// A snapshot is only written for packable corpora (uniform instance
// dimension); mixed-dimension corpora keep using the extraction path.

#ifndef MIVID_DB_PACKED_CORPUS_IO_H_
#define MIVID_DB_PACKED_CORPUS_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "db/query_engine.h"

namespace mivid {

/// A stable fingerprint of every QueryOptions field that changes corpus
/// content (feature extraction, windowing, relevant incident types).
/// Snapshots written under a different fingerprint are rejected on load.
uint64_t QueryOptionsFingerprint(const QueryOptions& options);

/// Writes `corpus` as a snapshot at `path` (write-to-temp + rename).
/// Fails with FailedPrecondition when the corpus has mixed instance
/// dimensions (no packed layout exists to store).
Status WritePackedCorpusFile(const CameraCorpus& corpus,
                             const std::string& path,
                             const QueryOptions& options);

/// Loads a snapshot written by WritePackedCorpusFile. The feature block
/// is mmap'd and adopted zero-copy as the dataset's packed corpus (the
/// mapping is pinned by the returned corpus); per-instance AoS vectors
/// are materialized from it for the non-packed code paths. Fails with
/// FailedPrecondition when `options` does not match the stored
/// fingerprint, and Corruption/DataLoss on structural damage.
Result<std::shared_ptr<const CameraCorpus>> ReadPackedCorpusFile(
    const std::string& path, const QueryOptions& options);

}  // namespace mivid

#endif  // MIVID_DB_PACKED_CORPUS_IO_H_

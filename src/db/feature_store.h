// FeatureStore: binary persistence of per-clip derived data.
//
// What the database keeps per clip is exactly what the retrieval engine
// needs: the tracked trajectories (from which features and windows are
// recomputed cheaply) plus the incident annotations (ground truth used by
// the evaluation oracle; in a deployment these would be curator labels).
// Each file carries a magic + CRC32C envelope and a version.

#ifndef MIVID_DB_FEATURE_STORE_H_
#define MIVID_DB_FEATURE_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "trafficsim/incident.h"
#include "trajectory/trajectory.h"

namespace mivid {

/// Serializes tracks into a checksummed blob.
std::string SerializeTracks(const std::vector<Track>& tracks);

/// Parses a blob written by SerializeTracks.
Result<std::vector<Track>> DeserializeTracks(const std::string& bytes);

/// Serializes incident annotations into a checksummed blob.
std::string SerializeIncidents(const std::vector<IncidentRecord>& incidents);

/// Parses a blob written by SerializeIncidents.
Result<std::vector<IncidentRecord>> DeserializeIncidents(
    const std::string& bytes);

/// Whole-file helpers.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace mivid

#endif  // MIVID_DB_FEATURE_STORE_H_

#include "db/query_engine.h"

namespace mivid {

ClipExtraction ExtractClip(const ClipRecord& record,
                           const QueryOptions& options) {
  ClipExtraction clip;
  clip.clip_id = record.info.clip_id;
  clip.total_frames = record.info.total_frames;
  const std::vector<TrackFeatures> features =
      ComputeTrackFeatures(record.tracks, options.features);
  clip.scaler =
      FeatureScaler::Fit(features, options.features.include_velocity);
  clip.windows = ExtractWindows(features, record.info.total_frames,
                                options.features, options.windows);
  clip.incidents = record.incidents;
  return clip;
}

void AppendClipBags(const ClipExtraction& clip, const QueryOptions& options,
                    CameraCorpus* corpus, int* next_bag_id) {
  // Oracle labels from the stored incident annotations.
  GroundTruth gt;
  gt.total_frames = clip.total_frames;
  gt.incidents = clip.incidents;
  FeedbackOracle oracle(&gt, options.relevant_types);

  for (const auto& vs : clip.windows) {
    MilBag bag;
    bag.id = *next_bag_id;
    for (const auto& ts : vs.ts) {
      MilInstance inst;
      inst.bag_id = bag.id;
      inst.instance_id = ts.track_id;
      inst.features =
          ts.Flatten(clip.scaler, options.features.include_velocity);
      inst.raw_features = ts.FlattenRaw(options.features.include_velocity);
      bag.instances.push_back(std::move(inst));
    }
    corpus->bag_refs[bag.id] =
        CorpusBagRef{clip.clip_id, vs.vs_id, vs.begin_frame, vs.end_frame};
    corpus->truth[bag.id] = oracle.LabelFor(vs);
    corpus->dataset.AddBag(std::move(bag));
    ++(*next_bag_id);
  }
}

int NextBagId(const CameraCorpus& corpus) {
  const auto& bags = corpus.dataset.bags();
  return bags.empty() ? 0 : bags.back().id + 1;
}

SessionOptions SessionOptionsFor(const QueryOptions& options) {
  SessionOptions session = options.session;
  const size_t base_dim = options.features.include_velocity ? 4 : 3;
  session.mil.base_dim = base_dim;
  if (session.query_model.weights.empty()) {
    session.query_model = EventModel::Accident(base_dim);
  }
  return session;
}

Result<CameraCorpus> QueryEngine::BuildCorpus(
    const std::string& camera_id, const QueryOptions& options) const {
  const std::vector<int> clip_ids = db_->ClipsForCamera(camera_id);
  if (clip_ids.empty()) {
    return Status::NotFound("no clips for camera '" + camera_id + "'");
  }

  CameraCorpus corpus;
  corpus.camera_id = camera_id;
  int next_bag_id = 0;
  MIVID_RETURN_IF_ERROR(
      AppendClips(clip_ids, options, &corpus, &next_bag_id));
  return corpus;
}

Status QueryEngine::AppendClips(const std::vector<int>& clip_ids,
                                const QueryOptions& options,
                                CameraCorpus* corpus,
                                int* next_bag_id) const {
  for (int clip_id : clip_ids) {
    MIVID_ASSIGN_OR_RETURN(ClipRecord record, db_->LoadClip(clip_id));
    AppendClipBags(ExtractClip(record, options), options, corpus,
                   next_bag_id);
  }
  return Status::OK();
}

}  // namespace mivid

#include "db/query_engine.h"

namespace mivid {

Result<CameraCorpus> QueryEngine::BuildCorpus(
    const std::string& camera_id, const QueryOptions& options) const {
  const std::vector<int> clip_ids = db_->ClipsForCamera(camera_id);
  if (clip_ids.empty()) {
    return Status::NotFound("no clips for camera '" + camera_id + "'");
  }

  CameraCorpus corpus;
  corpus.camera_id = camera_id;
  int next_bag_id = 0;

  for (int clip_id : clip_ids) {
    MIVID_ASSIGN_OR_RETURN(ClipRecord record, db_->LoadClip(clip_id));

    const std::vector<TrackFeatures> features =
        ComputeTrackFeatures(record.tracks, options.features);
    const FeatureScaler scaler =
        FeatureScaler::Fit(features, options.features.include_velocity);
    const std::vector<VideoSequence> windows =
        ExtractWindows(features, record.info.total_frames, options.features,
                       options.windows);

    // Oracle labels from the stored incident annotations.
    GroundTruth gt;
    gt.total_frames = record.info.total_frames;
    gt.incidents = record.incidents;
    FeedbackOracle oracle(&gt, options.relevant_types);

    for (const auto& vs : windows) {
      MilBag bag;
      bag.id = next_bag_id;
      for (const auto& ts : vs.ts) {
        MilInstance inst;
        inst.bag_id = bag.id;
        inst.instance_id = ts.track_id;
        inst.features =
            ts.Flatten(scaler, options.features.include_velocity);
        inst.raw_features = ts.FlattenRaw(options.features.include_velocity);
        bag.instances.push_back(std::move(inst));
      }
      corpus.bag_refs[bag.id] =
          CorpusBagRef{clip_id, vs.vs_id, vs.begin_frame, vs.end_frame};
      corpus.truth[bag.id] = oracle.LabelFor(vs);
      corpus.dataset.AddBag(std::move(bag));
      ++next_bag_id;
    }
  }
  return corpus;
}

Result<RetrievalSession> QueryEngine::StartSession(
    const std::string& camera_id, const QueryOptions& options) const {
  MIVID_ASSIGN_OR_RETURN(CameraCorpus corpus,
                         BuildCorpus(camera_id, options));
  SessionOptions session_options = options.session;
  const size_t base_dim = options.features.include_velocity ? 4 : 3;
  session_options.mil.base_dim = base_dim;
  if (session_options.query_model.weights.empty()) {
    session_options.query_model = EventModel::Accident(base_dim);
  }
  return RetrievalSession(std::move(corpus.dataset), session_options);
}

}  // namespace mivid

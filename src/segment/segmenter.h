// VehicleSegmenter: the complete per-frame vision front end.
//
// Pipeline per frame (paper Sec. 3.1): background learning/subtraction ->
// SPCPE refinement of the foreground -> morphological cleanup -> connected
// components -> vehicle blobs (MBR + centroid).

#ifndef MIVID_SEGMENT_SEGMENTER_H_
#define MIVID_SEGMENT_SEGMENTER_H_

#include <vector>

#include "segment/background.h"
#include "segment/blob.h"
#include "segment/spcpe.h"
#include "video/frame.h"

namespace mivid {

/// Options for the full segmentation stack.
struct SegmenterOptions {
  BackgroundOptions background;
  SpcpeOptions spcpe;
  BlobOptions blob;
  int clean_iterations = 1;
  bool use_spcpe = true;  ///< disable to use the raw subtraction mask
};

/// Stateful frame-by-frame vehicle segmenter.
class VehicleSegmenter {
 public:
  explicit VehicleSegmenter(SegmenterOptions options = {});

  /// Processes the next frame; returns the detected vehicle blobs
  /// (empty during background warmup).
  std::vector<Blob> Process(const Frame& frame);

  /// True once the background model has warmed up.
  bool Ready() const { return background_.Ready(); }

  const BackgroundModel& background_model() const { return background_; }

 private:
  SegmenterOptions options_;
  BackgroundModel background_;
};

}  // namespace mivid

#endif  // MIVID_SEGMENT_SEGMENTER_H_

// VehicleSegmenter: the complete per-frame vision front end.
//
// Pipeline per frame (paper Sec. 3.1): background learning/subtraction ->
// SPCPE refinement of the foreground -> morphological cleanup -> connected
// components -> vehicle blobs (MBR + centroid).

#ifndef MIVID_SEGMENT_SEGMENTER_H_
#define MIVID_SEGMENT_SEGMENTER_H_

#include <vector>

#include "segment/background.h"
#include "segment/blob.h"
#include "segment/spcpe.h"
#include "video/frame.h"

namespace mivid {

/// Options for the full segmentation stack.
struct SegmenterOptions {
  BackgroundOptions background;
  SpcpeOptions spcpe;
  BlobOptions blob;
  int clean_iterations = 1;
  bool use_spcpe = true;  ///< disable to use the raw subtraction mask
};

/// The sequential front half of segmenting one frame: the frame itself,
/// its background-subtraction mask, and the background statistics SPCPE
/// needs. Produced by VehicleSegmenter::Ingest (which owns the stateful
/// background model); consumed by the pure, parallelizable Refine step.
struct PendingSegmentation {
  Frame frame;
  Mask mask;
  double bg_mean = -1.0;  ///< background mean intensity (SPCPE hint)
  bool ready = false;     ///< false during background warmup
};

/// Stateful frame-by-frame vehicle segmenter.
///
/// Process() == Refine(Ingest(frame)). The split exists so a clip can be
/// segmented in parallel: Ingest carries the frame-order-dependent
/// background update (cheap, must stay sequential), Refine carries the
/// SPCPE/cleanup/blob extraction (expensive, pure function of one
/// PendingSegmentation, safe to fan out across frames).
class VehicleSegmenter {
 public:
  explicit VehicleSegmenter(SegmenterOptions options = {});

  /// Processes the next frame; returns the detected vehicle blobs
  /// (empty during background warmup).
  std::vector<Blob> Process(const Frame& frame);

  /// Advances the background model with `frame` and captures everything
  /// the stateless Refine step needs.
  PendingSegmentation Ingest(Frame frame);

  /// Pure second half: SPCPE refinement, morphological cleanup, blob
  /// extraction. Thread-safe; no segmenter state is read or written.
  static std::vector<Blob> Refine(const PendingSegmentation& pending,
                                  const SegmenterOptions& options);

  const SegmenterOptions& options() const { return options_; }

  /// True once the background model has warmed up.
  bool Ready() const { return background_.Ready(); }

  const BackgroundModel& background_model() const { return background_; }

 private:
  SegmenterOptions options_;
  BackgroundModel background_;
};

}  // namespace mivid

#endif  // MIVID_SEGMENT_SEGMENTER_H_

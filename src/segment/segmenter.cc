#include "segment/segmenter.h"

namespace mivid {

VehicleSegmenter::VehicleSegmenter(SegmenterOptions options)
    : options_(options), background_(options.background) {}

std::vector<Blob> VehicleSegmenter::Process(const Frame& frame) {
  background_.Update(frame);
  if (!background_.Ready()) return {};

  Mask mask = background_.Subtract(frame);
  if (options_.use_spcpe) {
    // Refine the candidate foreground: SPCPE separates true vehicle pixels
    // from background clutter that leaked through the threshold.
    const double bg_mean = background_.BackgroundFrame().MeanIntensity();
    SpcpeResult refined = RunSpcpe(frame, &mask, bg_mean, options_.spcpe);
    mask = std::move(refined.partition);
  }
  if (options_.clean_iterations > 0) {
    mask = CleanMask(mask, frame.width(), frame.height(),
                     options_.clean_iterations);
  }
  return ExtractBlobs(mask, frame, options_.blob);
}

}  // namespace mivid

#include "segment/segmenter.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

VehicleSegmenter::VehicleSegmenter(SegmenterOptions options)
    : options_(options), background_(options.background) {}

namespace {

/// The pure back half shared by Refine and Process: SPCPE refinement,
/// morphological cleanup, blob extraction.
std::vector<Blob> RefineFrame(const Frame& frame, const Mask& subtraction,
                              double bg_mean, const SegmenterOptions& options) {
  MIVID_TRACE_SPAN("segment/refine");
  MIVID_SCOPED_TIMER("segment/frame_seconds");
  Mask mask = subtraction;
  if (options.use_spcpe) {
    // Refine the candidate foreground: SPCPE separates true vehicle pixels
    // from background clutter that leaked through the threshold.
    SpcpeResult refined = RunSpcpe(frame, &mask, bg_mean, options.spcpe);
    mask = std::move(refined.partition);
  }
  if (options.clean_iterations > 0) {
    mask = CleanMask(mask, frame.width(), frame.height(),
                     options.clean_iterations);
  }
  std::vector<Blob> blobs = ExtractBlobs(mask, frame, options.blob);
  MIVID_METRIC_COUNT("segment/frames", 1);
  MIVID_METRIC_COUNT("segment/blobs", blobs.size());
  return blobs;
}

}  // namespace

PendingSegmentation VehicleSegmenter::Ingest(Frame frame) {
  background_.Update(frame);
  PendingSegmentation pending;
  pending.ready = background_.Ready();
  if (!pending.ready) return pending;
  pending.mask = background_.Subtract(frame);
  if (options_.use_spcpe) {
    pending.bg_mean = background_.BackgroundFrame().MeanIntensity();
  }
  pending.frame = std::move(frame);
  return pending;
}

std::vector<Blob> VehicleSegmenter::Refine(const PendingSegmentation& pending,
                                           const SegmenterOptions& options) {
  if (!pending.ready) return {};
  return RefineFrame(pending.frame, pending.mask, pending.bg_mean, options);
}

std::vector<Blob> VehicleSegmenter::Process(const Frame& frame) {
  // Same pipeline as Refine(Ingest(frame)) but without buffering the
  // frame, so serial per-frame callers pay no copy.
  background_.Update(frame);
  if (!background_.Ready()) return {};
  const Mask mask = background_.Subtract(frame);
  const double bg_mean =
      options_.use_spcpe ? background_.BackgroundFrame().MeanIntensity() : -1.0;
  return RefineFrame(frame, mask, bg_mean, options_);
}

}  // namespace mivid

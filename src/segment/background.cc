#include "segment/background.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mivid {

BackgroundModel::BackgroundModel(BackgroundOptions options)
    : options_(options) {}

void BackgroundModel::Update(const Frame& frame) {
  if (frames_seen_ == 0) {
    width_ = frame.width();
    height_ = frame.height();
    mean_.assign(frame.size(), 0.0);
  }
  MIVID_CHECK(frame.width() == width_ && frame.height() == height_)
      << "frame size changed mid-stream";

  switch (options_.method) {
    case BackgroundMethod::kSelectiveMean:
      UpdateSelectiveMean(frame);
      break;
    case BackgroundMethod::kTemporalMedian:
      UpdateTemporalMedian(frame);
      break;
  }
  ++frames_seen_;
}

void BackgroundModel::UpdateSelectiveMean(const Frame& frame) {
  if (frames_seen_ < options_.warmup_frames) {
    // Running mean during warmup.
    const double n = static_cast<double>(frames_seen_);
    for (size_t i = 0; i < mean_.size(); ++i) {
      mean_[i] = (mean_[i] * n + frame.pixels()[i]) / (n + 1.0);
    }
  } else {
    // Selective EMA: adapt only where the pixel still looks like
    // background, so stationary vehicles are not absorbed quickly.
    const double a = options_.learning_rate;
    for (size_t i = 0; i < mean_.size(); ++i) {
      const double diff = std::fabs(frame.pixels()[i] - mean_[i]);
      if (diff < options_.diff_threshold) {
        mean_[i] = (1.0 - a) * mean_[i] + a * frame.pixels()[i];
      }
    }
  }
}

void BackgroundModel::UpdateTemporalMedian(const Frame& frame) {
  // Buffer spaced samples; the background is the per-pixel median. Early
  // on (before the buffer spreads out) every frame is admitted so the
  // model is usable right after warmup.
  const bool due = frames_seen_ < options_.warmup_frames ||
                   frames_seen_ % std::max(1, options_.median_sample_stride) == 0;
  if (due) {
    median_buffer_.push_back(frame.pixels());
    if (static_cast<int>(median_buffer_.size()) >
        std::max(3, options_.median_samples)) {
      median_buffer_.erase(median_buffer_.begin());
    }
    // Recompute the per-pixel median estimate.
    std::vector<uint8_t> column(median_buffer_.size());
    for (size_t i = 0; i < mean_.size(); ++i) {
      for (size_t s = 0; s < median_buffer_.size(); ++s) {
        column[s] = median_buffer_[s][i];
      }
      std::nth_element(column.begin(), column.begin() + column.size() / 2,
                       column.end());
      mean_[i] = column[column.size() / 2];
    }
  }
}

Mask BackgroundModel::Subtract(const Frame& frame) const {
  Mask mask(frame.size(), 0);
  for (size_t i = 0; i < mask.size(); ++i) {
    const double diff = std::fabs(frame.pixels()[i] - mean_[i]);
    mask[i] = diff >= options_.diff_threshold ? 1 : 0;
  }
  return mask;
}

Frame BackgroundModel::BackgroundFrame() const {
  Frame f(width_, height_);
  for (size_t i = 0; i < mean_.size(); ++i) {
    f.pixels()[i] = static_cast<uint8_t>(std::clamp(mean_[i], 0.0, 255.0));
  }
  return f;
}

Mask CleanMask(const Mask& mask, int width, int height, int iterations) {
  Mask cur = mask;
  for (int it = 0; it < iterations; ++it) {
    Mask next(cur.size(), 0);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        int count = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int nx = x + dx, ny = y + dy;
            if (nx < 0 || nx >= width || ny < 0 || ny >= height) continue;
            count += cur[static_cast<size_t>(ny) * static_cast<size_t>(width) +
                         static_cast<size_t>(nx)];
          }
        }
        // Majority of the 3x3 neighborhood (center included).
        next[static_cast<size_t>(y) * static_cast<size_t>(width) +
             static_cast<size_t>(x)] = count >= 5 ? 1 : 0;
      }
    }
    cur.swap(next);
  }
  return cur;
}

}  // namespace mivid

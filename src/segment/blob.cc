#include "segment/blob.h"

#include <deque>

namespace mivid {

std::vector<Blob> ExtractBlobs(const Mask& mask, const Frame& source,
                               const BlobOptions& options) {
  const int w = source.width(), h = source.height();
  std::vector<Blob> blobs;
  std::vector<uint8_t> visited(mask.size(), 0);

  auto index = [w](int x, int y) {
    return static_cast<size_t>(y) * static_cast<size_t>(w) +
           static_cast<size_t>(x);
  };

  // 4- or 8-connected flood fill from every unvisited foreground pixel.
  static const int dx8[] = {1, -1, 0, 0, 1, 1, -1, -1};
  static const int dy8[] = {0, 0, 1, -1, 1, -1, 1, -1};
  const int num_dirs = options.eight_connected ? 8 : 4;

  std::deque<std::pair<int, int>> queue;
  for (int sy = 0; sy < h; ++sy) {
    for (int sx = 0; sx < w; ++sx) {
      const size_t si = index(sx, sy);
      if (mask[si] == 0 || visited[si]) continue;

      // Grow one component.
      queue.clear();
      queue.emplace_back(sx, sy);
      visited[si] = 1;
      double sum_x = 0, sum_y = 0, sum_i = 0;
      int area = 0;
      int min_x = sx, max_x = sx, min_y = sy, max_y = sy;
      while (!queue.empty()) {
        const auto [x, y] = queue.front();
        queue.pop_front();
        ++area;
        sum_x += x;
        sum_y += y;
        sum_i += source.At(x, y);
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
        for (int d = 0; d < num_dirs; ++d) {
          const int nx = x + dx8[d], ny = y + dy8[d];
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const size_t ni = index(nx, ny);
          if (mask[ni] == 0 || visited[ni]) continue;
          visited[ni] = 1;
          queue.emplace_back(nx, ny);
        }
      }

      if (area < options.min_area || area > options.max_area) continue;
      Blob blob;
      blob.area = area;
      blob.centroid = {sum_x / area, sum_y / area};
      blob.mbr = BBox(min_x, min_y, max_x, max_y);
      blob.mean_intensity = sum_i / area;
      blobs.push_back(blob);
    }
  }
  return blobs;
}

}  // namespace mivid

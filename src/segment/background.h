// Background learning and subtraction (paper Sec. 3.1).
//
// The paper couples SPCPE with "a background learning and subtraction
// method" to isolate vehicle pixels. We learn a per-pixel running-average
// background with slow adaptation and threshold the absolute difference.

#ifndef MIVID_SEGMENT_BACKGROUND_H_
#define MIVID_SEGMENT_BACKGROUND_H_

#include <vector>

#include "video/frame.h"

namespace mivid {

/// Background estimation algorithm.
enum class BackgroundMethod : uint8_t {
  /// Selective exponential moving average (default): adapts only where
  /// the pixel still looks like background, so stopped vehicles persist.
  kSelectiveMean = 0,
  /// Temporal median over a sliding sample buffer: robust to transients,
  /// the classic choice for fixed surveillance cameras.
  kTemporalMedian = 1,
};

/// Parameters of the background model.
struct BackgroundOptions {
  BackgroundMethod method = BackgroundMethod::kSelectiveMean;
  double learning_rate = 0.02;   ///< EMA adaptation per frame
  double diff_threshold = 18.0;  ///< |frame - bg| above this is foreground
  int warmup_frames = 10;        ///< frames averaged before subtracting
  int median_samples = 9;        ///< buffer size for kTemporalMedian
  int median_sample_stride = 7;  ///< frames between buffered samples
};

/// Per-pixel exponential-moving-average background model.
class BackgroundModel {
 public:
  explicit BackgroundModel(BackgroundOptions options = {});

  /// Updates the model with `frame`. During warmup the frame is averaged
  /// in with full weight.
  void Update(const Frame& frame);

  /// True once warmup_frames frames have been observed.
  bool Ready() const { return frames_seen_ >= options_.warmup_frames; }

  int frames_seen() const { return frames_seen_; }

  /// Foreground mask for `frame` (1 = moving object). Requires Ready().
  /// Foreground pixels are *not* absorbed into the background (standard
  /// selective update), so stopped vehicles stay segmented for a while.
  Mask Subtract(const Frame& frame) const;

  /// The current background estimate quantized to a frame.
  Frame BackgroundFrame() const;

 private:
  void UpdateSelectiveMean(const Frame& frame);
  void UpdateTemporalMedian(const Frame& frame);

  BackgroundOptions options_;
  int width_ = 0;
  int height_ = 0;
  int frames_seen_ = 0;
  std::vector<double> mean_;  ///< current background estimate (both modes)
  std::vector<std::vector<uint8_t>> median_buffer_;  ///< kTemporalMedian
};

/// Morphological cleanup of a binary mask: removes isolated pixels and
/// fills single-pixel holes (3x3 majority filter, `iterations` passes).
Mask CleanMask(const Mask& mask, int width, int height, int iterations = 1);

}  // namespace mivid

#endif  // MIVID_SEGMENT_BACKGROUND_H_

// SPCPE: Simultaneous Partition and Class Parameter Estimation.
//
// The unsupervised two-class segmentation from the paper's vehicle-tracking
// substrate [20]. Pixels are partitioned into two classes; each class is
// modeled by its mean intensity, and the algorithm alternates (a) assigning
// every pixel to the class whose model explains it best and (b) re-
// estimating class means, until the partition stabilizes — a k=2
// expectation-maximization on intensity. Here it refines the raw
// background-subtraction mask: run within a region of interest, it
// separates vehicle pixels from background clutter.

#ifndef MIVID_SEGMENT_SPCPE_H_
#define MIVID_SEGMENT_SPCPE_H_

#include "video/frame.h"

namespace mivid {

/// SPCPE iteration controls.
struct SpcpeOptions {
  int max_iterations = 20;
  double min_class_separation = 8.0;  ///< below this, declare one class only
};

/// Result of a two-class SPCPE partition.
struct SpcpeResult {
  Mask partition;          ///< 1 = foreground class, 0 = background class
  double class_mean[2];    ///< estimated intensity means (bg, fg)
  int iterations = 0;      ///< iterations until convergence
  bool two_classes = true; ///< false when intensities were inseparable
};

/// Runs SPCPE on `frame`, optionally restricted to pixels where
/// `prior` != 0 (pass nullptr to partition the whole frame). The class with
/// the higher deviation from the overall mean of the complement is reported
/// as foreground; with a prior, the foreground is the class whose mean is
/// farther from the background estimate `bg_hint` (pass a negative hint to
/// use the darker/brighter heuristic).
SpcpeResult RunSpcpe(const Frame& frame, const Mask* prior, double bg_hint,
                     const SpcpeOptions& options = {});

}  // namespace mivid

#endif  // MIVID_SEGMENT_SPCPE_H_

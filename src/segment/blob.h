// Connected-component extraction: binary mask -> vehicle blobs with MBRs.

#ifndef MIVID_SEGMENT_BLOB_H_
#define MIVID_SEGMENT_BLOB_H_

#include <vector>

#include "geometry/geometry.h"
#include "video/frame.h"

namespace mivid {

/// A connected foreground region: the paper's "vehicle segment".
struct Blob {
  BBox mbr;          ///< minimal bounding rectangle
  Point2 centroid;   ///< pixel-mass centroid (the tracked point)
  int area = 0;      ///< pixel count
  double mean_intensity = 0.0;  ///< average source intensity inside the blob
};

/// Blob filtering thresholds.
struct BlobOptions {
  int min_area = 25;     ///< reject specks smaller than this
  int max_area = 1 << 20;
  bool eight_connected = true;
};

/// Labels connected components of `mask` and returns one Blob per
/// component that passes the filters. `source` provides intensities for
/// mean_intensity (pass the original frame).
std::vector<Blob> ExtractBlobs(const Mask& mask, const Frame& source,
                               const BlobOptions& options = {});

}  // namespace mivid

#endif  // MIVID_SEGMENT_BLOB_H_

#include "segment/spcpe.h"

#include <cmath>
#include <cstdlib>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

namespace {

/// Chunk size for the per-pixel parallel passes. The partial sums below
/// are sums of integer-valued pixel intensities, which doubles represent
/// exactly, so chunked accumulation is bit-identical to the serial scan
/// no matter how chunks are scheduled.
constexpr size_t kPixelGrain = 16384;

/// Per-chunk accumulator for one partition-estimation sweep.
struct SweepPartial {
  double sum0 = 0.0, sum1 = 0.0;
  size_t n0 = 0, n1 = 0;
  bool changed = false;
};

}  // namespace

SpcpeResult RunSpcpe(const Frame& frame, const Mask* prior, double bg_hint,
                     const SpcpeOptions& options) {
  MIVID_TRACE_SPAN("segment/spcpe");
  MIVID_SCOPED_TIMER("segment/spcpe_seconds");
  SpcpeResult result;
  result.partition.assign(frame.size(), 0);

  // Collect the candidate pixel set.
  std::vector<size_t> candidates;
  candidates.reserve(frame.size());
  for (size_t i = 0; i < frame.size(); ++i) {
    if (prior == nullptr || (*prior)[i] != 0) candidates.push_back(i);
  }
  if (candidates.empty()) {
    result.class_mean[0] = result.class_mean[1] = 0;
    result.two_classes = false;
    return result;
  }

  // Initialize the two class means from the candidate intensity range.
  uint8_t lo = 255, hi = 0;
  for (size_t i : candidates) {
    lo = std::min(lo, frame.pixels()[i]);
    hi = std::max(hi, frame.pixels()[i]);
  }
  double mean0 = lo, mean1 = hi;
  if (hi - lo < options.min_class_separation) {
    // One homogeneous class: everything is "foreground" relative to the
    // prior (the prior already isolated it from the background).
    for (size_t i : candidates) result.partition[i] = 1;
    result.class_mean[0] = result.class_mean[1] = (mean0 + mean1) / 2;
    result.two_classes = false;
    return result;
  }

  // Alternate partition assignment and parameter estimation. Each sweep
  // is data-parallel over the candidate pixels: a chunk classifies its
  // pixels (disjoint writes into `assign`) and accumulates partial class
  // sums, which are folded in chunk order.
  std::vector<uint8_t> assign(candidates.size(), 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    const SweepPartial total = ParallelReduce<SweepPartial>(
        candidates.size(), kPixelGrain, SweepPartial{},
        [&](size_t begin, size_t end) {
          SweepPartial p;
          for (size_t c = begin; c < end; ++c) {
            const double v = frame.pixels()[candidates[c]];
            const uint8_t cls =
                std::fabs(v - mean1) < std::fabs(v - mean0) ? 1 : 0;
            if (cls != assign[c]) p.changed = true;
            assign[c] = cls;
            if (cls) {
              p.sum1 += v;
              ++p.n1;
            } else {
              p.sum0 += v;
              ++p.n0;
            }
          }
          return p;
        },
        [](SweepPartial acc, SweepPartial p) {
          acc.sum0 += p.sum0;
          acc.sum1 += p.sum1;
          acc.n0 += p.n0;
          acc.n1 += p.n1;
          acc.changed = acc.changed || p.changed;
          return acc;
        });
    if (total.n0 > 0) mean0 = total.sum0 / static_cast<double>(total.n0);
    if (total.n1 > 0) mean1 = total.sum1 / static_cast<double>(total.n1);
    if (!total.changed) break;
  }

  // Decide which classes are "vehicle". With a background hint, every
  // class whose mean deviates clearly from the hint is foreground (two
  // vehicles of different shades form two classes, both of which must
  // survive); if neither deviates, keep the farther one. Without a hint,
  // the brighter class wins (vehicle bodies render brighter than asphalt).
  bool fg[2];
  if (bg_hint >= 0) {
    const double d0 = std::fabs(mean0 - bg_hint);
    const double d1 = std::fabs(mean1 - bg_hint);
    fg[0] = d0 >= options.min_class_separation;
    fg[1] = d1 >= options.min_class_separation;
    if (!fg[0] && !fg[1]) {
      fg[d1 >= d0 ? 1 : 0] = true;
    }
  } else {
    fg[0] = mean0 > mean1;
    fg[1] = !fg[0];
  }
  ParallelFor(candidates.size(), kPixelGrain, [&](size_t begin, size_t end) {
    for (size_t c = begin; c < end; ++c) {
      result.partition[candidates[c]] = fg[assign[c]] ? 1 : 0;
    }
  });
  result.class_mean[0] = std::min(mean0, mean1);
  result.class_mean[1] = std::max(mean0, mean1);
  MIVID_METRIC_OBSERVE("segment/spcpe_iterations", result.iterations);
  return result;
}

}  // namespace mivid

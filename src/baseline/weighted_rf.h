// Baseline: traditional weighted relevance feedback (paper Sec. 6.2).
//
// Each checkpoint feature has a weight, initially 1 (so round 0 equals the
// proposed method's initial square-sum heuristic). After feedback, the
// feature vectors of all relevant trajectory sequences are gathered, each
// feature's weight becomes the inverse of its standard deviation, and the
// weights are normalized. The paper compares three normalizations and
// finds percentage-of-total the best; all three are implemented.

#ifndef MIVID_BASELINE_WEIGHTED_RF_H_
#define MIVID_BASELINE_WEIGHTED_RF_H_

#include <vector>

#include "common/status.h"
#include "mil/dataset.h"
#include "retrieval/heuristic.h"

namespace mivid {

/// Weight post-processing (paper Sec. 6.2).
enum class WeightNormalization : uint8_t {
  kNone = 0,        ///< raw 1/stddev weights
  kLinear = 1,      ///< linearly rescaled to [0, 1] (zero kills a feature)
  kPercentage = 2,  ///< each weight's share of the total (paper's best)
};

const char* WeightNormalizationName(WeightNormalization normalization);

/// Engine configuration.
struct WeightedRfOptions {
  WeightNormalization normalization = WeightNormalization::kPercentage;
  size_t base_dim = 3;     ///< checkpoint feature dimension
  double epsilon = 1e-6;   ///< guards 1/stddev for constant features
};

/// The weighted-RF ranker over a labeled MilDataset.
class WeightedRfEngine {
 public:
  /// `dataset` must outlive the engine. Weights start at all-ones.
  WeightedRfEngine(const MilDataset* dataset, WeightedRfOptions options);

  /// Re-estimates weights from the bags currently labeled relevant.
  /// With no relevant bag the weights stay unchanged.
  Status Learn();

  /// Ranks all bags: per-checkpoint weighted square sum, maximized over
  /// checkpoints and instances.
  std::vector<ScoredBag> Rank() const;

  const Vec& weights() const { return weights_; }

 private:
  double InstanceScore(const Vec& flattened) const;

  const MilDataset* dataset_;
  WeightedRfOptions options_;
  Vec weights_;
};

}  // namespace mivid

#endif  // MIVID_BASELINE_WEIGHTED_RF_H_

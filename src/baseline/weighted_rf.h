// Baseline: traditional weighted relevance feedback (paper Sec. 6.2).
//
// Each checkpoint feature has a weight, initially 1 (so round 0 equals the
// proposed method's initial square-sum heuristic). After feedback, the
// feature vectors of all relevant trajectory sequences are gathered, each
// feature's weight becomes the inverse of its standard deviation, and the
// weights are normalized. The paper compares three normalizations and
// finds percentage-of-total the best; all three are implemented.

#ifndef MIVID_BASELINE_WEIGHTED_RF_H_
#define MIVID_BASELINE_WEIGHTED_RF_H_

#include <vector>

#include "common/status.h"
#include "mil/dataset.h"
#include "retrieval/engine.h"
#include "retrieval/heuristic.h"

namespace mivid {

/// Weight post-processing (paper Sec. 6.2).
enum class WeightNormalization : uint8_t {
  kNone = 0,        ///< raw 1/stddev weights
  kLinear = 1,      ///< linearly rescaled to [0, 1] (zero kills a feature)
  kPercentage = 2,  ///< each weight's share of the total (paper's best)
};

const char* WeightNormalizationName(WeightNormalization normalization);

/// Engine configuration.
struct WeightedRfOptions {
  WeightNormalization normalization = WeightNormalization::kPercentage;
  size_t base_dim = 3;     ///< checkpoint feature dimension
  double epsilon = 1e-6;   ///< guards 1/stddev for constant features
};

/// The weighted-RF ranker over a labeled MilDataset (registry key
/// "weighted").
class WeightedRfEngine : public RetrievalEngine {
 public:
  /// `dataset` must outlive the engine. Weights start at all-ones.
  WeightedRfEngine(MilDataset* dataset, WeightedRfOptions options);

  std::string_view name() const override { return "weighted"; }

  /// Re-estimates weights from the bags currently labeled relevant.
  /// With no relevant bag the weights stay unchanged.
  Status Learn();

  Status Retrain() override { return Learn(); }

  /// Always true: the all-ones starting weights already define a valid
  /// ranking (the paper's round-0 square-sum heuristic), so this engine
  /// never falls back to the caller's heuristic.
  bool trained() const override { return true; }

  /// Ranks all bags: per-checkpoint weighted square sum, maximized over
  /// checkpoints and instances.
  std::vector<ScoredBag> Rank() const override;

  const Vec& weights() const { return weights_; }

 private:
  double InstanceScore(const Vec& flattened) const;

  WeightedRfOptions options_;
  Vec weights_;
};

}  // namespace mivid

#endif  // MIVID_BASELINE_WEIGHTED_RF_H_

#include "baseline/rocchio.h"

#include <algorithm>
#include <cmath>

namespace mivid {

namespace {

/// Mean feature vector across every instance of `bags`; empty when there
/// are no instances.
Vec InstanceMean(const std::vector<const MilBag*>& bags) {
  Vec mean;
  size_t count = 0;
  for (const MilBag* bag : bags) {
    for (const auto& inst : bag->instances) {
      if (mean.empty()) mean.assign(inst.features.size(), 0.0);
      for (size_t d = 0; d < mean.size(); ++d) mean[d] += inst.features[d];
      ++count;
    }
  }
  if (count > 0) {
    for (double& v : mean) v /= static_cast<double>(count);
  }
  return mean;
}

}  // namespace

RocchioEngine::RocchioEngine(MilDataset* dataset, RocchioOptions options)
    : RetrievalEngine(dataset), options_(options) {}

Status RocchioEngine::Learn() {
  const auto relevant = dataset_->BagsWithLabel(BagLabel::kRelevant);
  if (relevant.empty()) return Status::OK();  // nothing to move toward yet
  const Vec rel_mean = InstanceMean(relevant);
  if (rel_mean.empty()) return Status::OK();

  const auto irrelevant = dataset_->BagsWithLabel(BagLabel::kIrrelevant);
  const Vec irr_mean = InstanceMean(irrelevant);

  if (!query_) {
    query_ = rel_mean;  // seed at the relevant centroid
  }
  Vec next(query_->size(), 0.0);
  for (size_t d = 0; d < next.size(); ++d) {
    next[d] = options_.alpha * (*query_)[d] + options_.beta * rel_mean[d];
    if (d < irr_mean.size()) next[d] -= options_.gamma * irr_mean[d];
  }
  query_ = std::move(next);
  return Status::OK();
}

std::vector<ScoredBag> RocchioEngine::Rank() const {
  std::vector<ScoredBag> ranking;
  if (!query_) return ranking;
  ranking.reserve(dataset_->size());
  for (const auto& bag : dataset_->bags()) {
    double best = -1e300;
    for (const auto& inst : bag.instances) {
      if (inst.features.size() != query_->size()) continue;
      best = std::max(
          best, -std::sqrt(SquaredDistance(inst.features, *query_)));
    }
    ranking.push_back({bag.id, best});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace mivid

#include "baseline/weighted_rf.h"

#include <algorithm>
#include <cmath>

#include "linalg/stats.h"

namespace mivid {

const char* WeightNormalizationName(WeightNormalization normalization) {
  switch (normalization) {
    case WeightNormalization::kNone:
      return "none";
    case WeightNormalization::kLinear:
      return "linear";
    case WeightNormalization::kPercentage:
      return "percentage";
  }
  return "?";
}

WeightedRfEngine::WeightedRfEngine(MilDataset* dataset,
                                   WeightedRfOptions options)
    : RetrievalEngine(dataset), options_(options) {
  weights_.assign(options_.base_dim, 1.0);
}

Status WeightedRfEngine::Learn() {
  const std::vector<const MilBag*> relevant =
      dataset_->BagsWithLabel(BagLabel::kRelevant);
  if (relevant.empty()) return Status::OK();  // keep current weights

  // Gather every checkpoint vector of every TS in the relevant VSs.
  std::vector<Vec> rows;
  const size_t d = options_.base_dim;
  for (const MilBag* bag : relevant) {
    for (const auto& inst : bag->instances) {
      for (size_t offset = 0; offset + d <= inst.raw_features.size();
           offset += d) {
        rows.emplace_back(inst.raw_features.begin() + static_cast<long>(offset),
                          inst.raw_features.begin() + static_cast<long>(offset + d));
      }
    }
  }
  if (rows.empty()) return Status::OK();

  const Vec stddev = ColumnStdDevs(rows);
  Vec w(d);
  for (size_t f = 0; f < d; ++f) {
    w[f] = 1.0 / std::max(stddev[f], options_.epsilon);
  }

  switch (options_.normalization) {
    case WeightNormalization::kNone:
      break;
    case WeightNormalization::kLinear: {
      const double lo = *std::min_element(w.begin(), w.end());
      const double hi = *std::max_element(w.begin(), w.end());
      const double span = hi - lo;
      for (double& x : w) x = span > 0 ? (x - lo) / span : 1.0;
      break;
    }
    case WeightNormalization::kPercentage: {
      double total = 0.0;
      for (double x : w) total += x;
      for (double& x : w) x = total > 0 ? x / total : 1.0 / static_cast<double>(d);
      break;
    }
  }
  weights_ = std::move(w);
  return Status::OK();
}

double WeightedRfEngine::InstanceScore(const Vec& flattened) const {
  const size_t d = options_.base_dim;
  double best = 0.0;
  for (size_t offset = 0; offset + d <= flattened.size(); offset += d) {
    double s = 0.0;
    for (size_t f = 0; f < d; ++f) {
      const double x = flattened[offset + f];
      s += weights_[f] * x * x;
    }
    best = std::max(best, s);
  }
  return best;
}

std::vector<ScoredBag> WeightedRfEngine::Rank() const {
  std::vector<ScoredBag> ranking;
  ranking.reserve(dataset_->size());
  for (const auto& bag : dataset_->bags()) {
    double best = 0.0;
    for (const auto& inst : bag.instances) {
      best = std::max(best, InstanceScore(inst.raw_features));
    }
    ranking.push_back({bag.id, best});
  }
  std::stable_sort(ranking.begin(), ranking.end(),
                   [](const ScoredBag& a, const ScoredBag& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.bag_id < b.bag_id;
                   });
  return ranking;
}

}  // namespace mivid

// Rocchio query-point movement — the classical relevance-feedback
// technique the paper surveys in Sec. 2.2 ("Rocchio's formula [23] is
// frequently used to iteratively update the estimation of the 'ideal
// query point'"), implemented as an additional baseline ranker.
//
//   q_{t+1} = alpha q_t + beta mean(relevant) - gamma mean(irrelevant)
//
// Bags are ranked by the negated distance of their best instance to the
// query point (query point movement has no MIL notion; like weighted RF
// it consumes every instance of the labeled bags).

#ifndef MIVID_BASELINE_ROCCHIO_H_
#define MIVID_BASELINE_ROCCHIO_H_

#include <optional>

#include "common/status.h"
#include "mil/dataset.h"
#include "retrieval/engine.h"
#include "retrieval/heuristic.h"

namespace mivid {

/// Rocchio update weights (classic SMART defaults).
struct RocchioOptions {
  double alpha = 1.0;   ///< inertia of the current query point
  double beta = 0.75;   ///< pull toward relevant instances
  double gamma = 0.15;  ///< push away from irrelevant instances
};

/// Query-point-movement ranker over a labeled MilDataset (normalized
/// feature space; registry key "rocchio").
class RocchioEngine : public RetrievalEngine {
 public:
  /// `dataset` must outlive the engine.
  RocchioEngine(MilDataset* dataset, RocchioOptions options);

  std::string_view name() const override { return "rocchio"; }

  /// Moves the query point per the current labels. The first successful
  /// call seeds the point at the relevant mean; later calls apply the
  /// full Rocchio update. Without relevant labels the point is unchanged.
  Status Learn();

  Status Retrain() override { return Learn(); }

  bool trained() const override { return query_.has_value(); }

  /// Ranks all bags by -min distance of any instance to the query point.
  std::vector<ScoredBag> Rank() const override;

  /// The current query point (valid when trained()).
  const Vec& query_point() const { return *query_; }

 private:
  RocchioOptions options_;
  std::optional<Vec> query_;
};

}  // namespace mivid

#endif  // MIVID_BASELINE_ROCCHIO_H_

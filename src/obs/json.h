// Minimal JSON document model + recursive-descent parser.
//
// Exists so the observability exports (--metrics-json, --trace) can be
// validated in-process by tests and by tools/check_obs_outputs without an
// external dependency. Handles the full JSON grammar the exporters emit:
// objects, arrays, strings (with escapes), numbers, booleans, null.
// Not a general-purpose library: documents are small (snapshots and
// traces), so everything is parsed eagerly into a DOM.

#ifndef MIVID_OBS_JSON_H_
#define MIVID_OBS_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mivid {

/// One parsed JSON value.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered members (duplicate keys keep both; Find returns
  /// the first).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// First member named `key`, or nullptr (also nullptr on non-objects).
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

/// Serializes a parsed value back to compact JSON text. Numbers are
/// emitted with %.17g (round-trip safe for doubles); member and element
/// order is preserved. Used by the trace stitcher to re-emit events it
/// parsed from per-process trace files.
std::string JsonSerialize(const JsonValue& value);

}  // namespace mivid

#endif  // MIVID_OBS_JSON_H_

#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/ascii_plot.h"
#include "common/string_util.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mivid {

namespace {

/// JSON number rendering that never emits NaN/inf (both invalid JSON).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  return StrFormat("%.12g", v);
}

std::string HistogramJson(const HistogramStats& h) {
  return StrFormat(
      "{\"count\":%llu,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,"
      "\"p50\":%s,\"p95\":%s,\"p99\":%s}",
      static_cast<unsigned long long>(h.count), JsonNumber(h.sum).c_str(),
      JsonNumber(h.min).c_str(), JsonNumber(h.max).c_str(),
      JsonNumber(h.mean()).c_str(), JsonNumber(h.p50).c_str(),
      JsonNumber(h.p95).c_str(), JsonNumber(h.p99).c_str());
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s", tmp.c_str()));
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError(StrFormat("short write to %s", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(StrFormat("cannot rename %s", path.c_str()));
  }
  return Status::OK();
}

}  // namespace

std::string MetricsToJson() {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%llu", JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(name).c_str(),
                     JsonNumber(value).c_str());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, stats] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(name).c_str(),
                     HistogramJson(stats).c_str());
  }
  out += "},\"spans\":{";
  first = true;
  for (const auto& s : AggregateSpans()) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\"%s\":{\"count\":%llu,\"total_ms\":%s,\"p50_ms\":%s,"
        "\"p95_ms\":%s,\"max_ms\":%s}",
        JsonEscape(s.name).c_str(), static_cast<unsigned long long>(s.count),
        JsonNumber(s.total_ms).c_str(), JsonNumber(s.p50_ms).c_str(),
        JsonNumber(s.p95_ms).c_str(), JsonNumber(s.max_ms).c_str());
  }
  out += "}}";
  return out;
}

std::string FormatMetricsReport() {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::string out;

  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, value] : snapshot.counters) {
      rows.push_back({name, "counter",
                      StrFormat("%llu", static_cast<unsigned long long>(value))});
    }
    for (const auto& [name, value] : snapshot.gauges) {
      rows.push_back({name, "gauge", StrFormat("%.6g", value)});
    }
    out += AsciiTable({"metric", "kind", "value"}, rows);
  }
  if (!snapshot.histograms.empty()) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, h] : snapshot.histograms) {
      rows.push_back({name,
                      StrFormat("%llu", static_cast<unsigned long long>(h.count)),
                      StrFormat("%.6g", h.sum), StrFormat("%.6g", h.mean()),
                      StrFormat("%.6g", h.p50), StrFormat("%.6g", h.p95),
                      StrFormat("%.6g", h.max)});
    }
    out += AsciiTable({"histogram", "count", "sum", "mean", "p50", "p95", "max"},
                      rows);
  }
  out += FormatSpanReport();
  return out;
}

Result<ObsOptions> ExtractObsFlags(int* argc, char** argv) {
  ObsOptions options;
  int kept = 0;
  for (int i = 0; i < *argc; ++i) {
    const char* arg = argv[i];
    auto take_value = [&](const char* flag, std::string* out) -> Result<bool> {
      const size_t flag_len = std::strlen(flag);
      if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
        *out = arg + flag_len + 1;
        return true;
      }
      if (std::strcmp(arg, flag) == 0) {
        if (i + 1 >= *argc) {
          return Status::InvalidArgument(
              StrFormat("%s requires a path argument", flag));
        }
        *out = argv[++i];
        return true;
      }
      return false;
    };
    if (std::strcmp(arg, "--metrics-report") == 0) {
      options.report = true;
      continue;
    }
    Result<bool> took = take_value("--metrics-json", &options.metrics_json_path);
    if (!took.ok()) return took.status();
    if (took.value()) continue;
    took = take_value("--trace", &options.trace_path);
    if (!took.ok()) return took.status();
    if (took.value()) continue;
    argv[kept++] = argv[i];
  }
  *argc = kept;

  // Long-running daemons (mivid_serve / mivid_coord) want live
  // collection without an at-exit export file: MIVID_METRICS=1 /
  // MIVID_TRACE=1 enable collection for the `metrics` / `trace_dump`
  // protocol commands to read back over the wire.
  auto env_on = [](const char* name) {
    const char* value = std::getenv(name);
    return value != nullptr && value[0] != '\0' &&
           std::strcmp(value, "0") != 0;
  };
  if (options.report || !options.metrics_json_path.empty() ||
      env_on("MIVID_METRICS")) {
    EnableMetrics(true);
  }
  if (!options.trace_path.empty() || options.report ||
      env_on("MIVID_TRACE")) {
    EnableTracing(true);
  }
  return options;
}

Status WriteObsOutputs(const ObsOptions& options) {
  if (!options.metrics_json_path.empty()) {
    MIVID_RETURN_IF_ERROR(
        WriteFileAtomic(options.metrics_json_path, MetricsToJson()));
  }
  if (!options.trace_path.empty()) {
    MIVID_RETURN_IF_ERROR(
        WriteFileAtomic(options.trace_path, TraceToChromeJson()));
  }
  if (options.report) {
    const std::string report = FormatMetricsReport();
    std::fwrite(report.data(), 1, report.size(), stdout);
  }
  return Status::OK();
}

const char* ObsFlagsHelp() {
  return "  [--metrics-json <path>] [--trace <path>] [--metrics-report]";
}

}  // namespace mivid

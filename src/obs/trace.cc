#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/json.h"
#include "common/thread_pool.h"
#include "common/ascii_plot.h"

namespace mivid {

namespace obs_internal {

std::atomic<bool> g_tracing_enabled{false};

namespace {

struct StoredEvent {
  const char* name;
  uint64_t begin_us;
  uint64_t end_us;
};

/// Append-only per-thread event buffer. The writer fills slot `size_`
/// then publishes with a release store; readers acquire `size_` and walk
/// only published slots, so collection is race-free while spans are
/// still being recorded. Slots are never overwritten (events past the
/// capacity are dropped and counted) — that is what makes the
/// publish/consume protocol this simple.
class ThreadTraceBuffer {
 public:
  ThreadTraceBuffer(uint32_t tid, std::string label, size_t capacity)
      : tid_(tid), label_(std::move(label)), events_(capacity) {}

  void Append(const char* name, uint64_t begin_us, uint64_t end_us) {
    const size_t n = size_.load(std::memory_order_relaxed);
    if (n >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = {name, begin_us, end_us};
    size_.store(n + 1, std::memory_order_release);
  }

  void Collect(std::vector<TraceEventData>* out) const {
    const size_t n = size_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) {
      const StoredEvent& e = events_[i];
      out->push_back(
          {e.name, e.begin_us, e.end_us - e.begin_us, tid_, label_});
    }
  }

  void Clear() { size_.store(0, std::memory_order_release); }

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void ResetDropped() { dropped_.store(0, std::memory_order_relaxed); }

  uint32_t tid() const { return tid_; }
  const std::string& label() const { return label_; }

 private:
  uint32_t tid_;
  std::string label_;
  std::vector<StoredEvent> events_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> dropped_{0};
};

struct TraceState {
  std::mutex mu;
  // shared_ptr so buffers outlive their threads (pool rebuilds join the
  // old workers, but their recorded spans must survive until export).
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  uint32_t next_tid = 0;
  size_t capacity = 1 << 16;
  // Request-scoped context spans (see ContextSpan): recorded under the
  // mutex because they carry heap strings and happen a handful of times
  // per request, never inside per-frame loops.
  std::vector<ContextSpanData> context_events;
  uint64_t context_dropped = 0;
};

TraceState& State() {
  static TraceState* state = new TraceState();  // leaked
  return *state;
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    const int worker = ThreadPool::CurrentWorkerIndex();
    const std::string label =
        worker >= 0 ? StrFormat("worker %d", worker) : "main";
    auto b = std::make_shared<ThreadTraceBuffer>(state.next_tid++, label,
                                                 state.capacity);
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

// Steady-clock origin of trace timestamps, pinned together with the wall
// clock at the same instant so multi-process traces can be rebased onto
// a common timeline by the stitcher.
struct TraceEpoch {
  uint64_t steady_ns;
  uint64_t wall_us;
};

const TraceEpoch& ProcessEpoch() {
  static const TraceEpoch epoch = [] {
    TraceEpoch e;
    e.steady_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    e.wall_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return e;
  }();
  return epoch;
}

uint64_t ProcessEpochNanos() { return ProcessEpoch().steady_ns; }

// splitmix64 finalizer: cheap, well-mixed 64-bit hash for span ids.
uint64_t MixBits(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t TraceNowMicros() {
  const uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return (now - ProcessEpochNanos()) / 1000;
}

void RecordSpan(const char* name, uint64_t begin_us, uint64_t end_us) {
  LocalBuffer().Append(name, begin_us, end_us);
}

void RecordContextSpan(const char* name, const TraceContext& context,
                       uint64_t begin_us, uint64_t end_us) {
  // Resolve the thread identity before taking the state mutex —
  // LocalBuffer() may itself lock it on first use.
  ThreadTraceBuffer& local = LocalBuffer();
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.context_events.size() >= state.capacity) {
    ++state.context_dropped;
    return;
  }
  ContextSpanData event;
  event.name = name;
  event.context = context;
  event.begin_us = begin_us;
  event.dur_us = end_us - begin_us;
  event.tid = local.tid();
  event.thread_label = local.label();
  state.context_events.push_back(std::move(event));
}

}  // namespace obs_internal

std::string NewSpanId() {
  using obs_internal::MixBits;
  static const uint64_t process_seed = [] {
    uint64_t seed = obs_internal::ProcessEpoch().steady_ns;
    seed = MixBits(seed ^ (static_cast<uint64_t>(getpid()) << 32));
    seed = MixBits(seed ^ obs_internal::ProcessEpoch().wall_us);
    return seed;
  }();
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = MixBits(
      process_seed + counter.fetch_add(1, std::memory_order_relaxed));
  return StrFormat("%016llx", static_cast<unsigned long long>(id));
}

uint64_t TraceWallEpochMicros() {
  return obs_internal::ProcessEpoch().wall_us;
}

std::vector<ContextSpanData> CollectContextSpans() {
  auto& state = obs_internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.context_events;
}

ContextSpan::ContextSpan(const char* name, const std::string& trace_id,
                         const std::string& parent_id) {
  if (!TracingEnabled()) return;
  name_ = name;
  context_.trace_id = trace_id.empty() ? NewSpanId() : trace_id;
  context_.span_id = NewSpanId();
  context_.parent_id = parent_id;
  begin_us_ = obs_internal::TraceNowMicros();
}

ContextSpan::~ContextSpan() {
  if (name_ == nullptr) return;
  obs_internal::RecordContextSpan(name_, context_, begin_us_,
                                  obs_internal::TraceNowMicros());
}

void EnableTracing(bool enabled) {
  if (enabled) (void)obs_internal::TraceNowMicros();  // pin the epoch
  obs_internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceCapacity(size_t events_per_thread) {
  auto& state = obs_internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.capacity = std::max<size_t>(1, events_per_thread);
}

void ResetTrace() {
  auto& state = obs_internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& buffer : state.buffers) {
    buffer->Clear();
    buffer->ResetDropped();
  }
  state.context_events.clear();
  state.context_dropped = 0;
}

std::vector<TraceEventData> CollectTraceEvents() {
  std::vector<std::shared_ptr<obs_internal::ThreadTraceBuffer>> buffers;
  {
    auto& state = obs_internal::State();
    std::lock_guard<std::mutex> lock(state.mu);
    buffers = state.buffers;
  }
  std::vector<TraceEventData> events;
  for (const auto& buffer : buffers) buffer->Collect(&events);
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEventData& a, const TraceEventData& b) {
                     return a.tid < b.tid;
                   });
  return events;
}

uint64_t TraceDroppedEvents() {
  auto& state = obs_internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = state.context_dropped;
  for (const auto& buffer : state.buffers) total += buffer->dropped();
  return total;
}

std::string TraceToChromeJson() {
  const std::vector<TraceEventData> events = CollectTraceEvents();
  const std::vector<ContextSpanData> context_events = CollectContextSpans();
  const std::string& identity = GetLogIdentity();
  const std::string process = identity.empty() ? "mivid" : identity;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& piece) {
    if (!first) out += ",";
    first = false;
    out += piece;
  };
  append(StrFormat(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"%s\"}}",
      JsonEscape(process).c_str()));
  // Wall-clock anchor: trace ts 0 == this wall time. The stitcher uses
  // it to rebase traces from different processes onto one timeline.
  append(StrFormat(
      "{\"name\":\"clock_sync\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"wall_epoch_us\":%llu,\"process\":\"%s\"}}",
      static_cast<unsigned long long>(TraceWallEpochMicros()),
      JsonEscape(process).c_str()));
  uint32_t labeled_tid = UINT32_MAX;
  for (const auto& e : events) {
    if (e.tid != labeled_tid) {
      labeled_tid = e.tid;
      append(StrFormat(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
          "\"args\":{\"name\":\"%s\"}}",
          e.tid, e.thread_label.c_str()));
    }
    append(StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%llu,\"dur\":%llu}",
        e.name, e.tid, static_cast<unsigned long long>(e.begin_us),
        static_cast<unsigned long long>(e.dur_us)));
  }
  // Context spans go on their own tid rows (offset past the ring tids)
  // so the request timeline renders as a separate track per thread and
  // per-tid end-timestamp monotonicity still holds within each track.
  constexpr uint32_t kContextTidBase = 1000;
  std::vector<uint32_t> labeled;
  for (const auto& e : context_events) {
    const uint32_t tid = kContextTidBase + e.tid;
    if (std::find(labeled.begin(), labeled.end(), tid) == labeled.end()) {
      labeled.push_back(tid);
      append(StrFormat(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
          "\"args\":{\"name\":\"requests:%s\"}}",
          tid, e.thread_label.c_str()));
    }
    append(StrFormat(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%llu,\"dur\":%llu,\"args\":{\"trace\":\"%s\",\"span\":\"%s\","
        "\"parent\":\"%s\"}}",
        e.name, tid, static_cast<unsigned long long>(e.begin_us),
        static_cast<unsigned long long>(e.dur_us),
        e.context.trace_id.c_str(), e.context.span_id.c_str(),
        e.context.parent_id.c_str()));
  }
  out += "]}";
  return out;
}

std::vector<SpanStats> AggregateSpans() {
  const std::vector<TraceEventData> events = CollectTraceEvents();
  std::map<std::string, std::vector<uint64_t>> durations;
  for (const auto& e : events) durations[e.name].push_back(e.dur_us);
  for (const auto& e : CollectContextSpans()) {
    durations[e.name].push_back(e.dur_us);
  }

  std::vector<SpanStats> stats;
  for (auto& [name, durs] : durations) {
    std::sort(durs.begin(), durs.end());
    SpanStats s;
    s.name = name;
    s.count = durs.size();
    uint64_t total = 0;
    for (uint64_t d : durs) total += d;
    s.total_ms = static_cast<double>(total) / 1000.0;
    auto quantile = [&](double q) {
      const size_t index = std::min(
          durs.size() - 1,
          static_cast<size_t>(q * static_cast<double>(durs.size())));
      return static_cast<double>(durs[index]) / 1000.0;
    };
    s.p50_ms = quantile(0.50);
    s.p95_ms = quantile(0.95);
    s.max_ms = static_cast<double>(durs.back()) / 1000.0;
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.name < b.name;
            });
  return stats;
}

std::string FormatSpanReport() {
  const std::vector<SpanStats> stats = AggregateSpans();
  if (stats.empty()) return "no spans recorded\n";

  std::vector<std::vector<std::string>> rows;
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& s : stats) {
    rows.push_back({s.name, StrFormat("%llu",
                                      static_cast<unsigned long long>(s.count)),
                    StrFormat("%.3f", s.total_ms), StrFormat("%.3f", s.p50_ms),
                    StrFormat("%.3f", s.p95_ms), StrFormat("%.3f", s.max_ms)});
    bars.emplace_back(s.name, s.total_ms);
  }
  std::string out = AsciiTable(
      {"span", "count", "total_ms", "p50_ms", "p95_ms", "max_ms"}, rows);
  out += AsciiBarChart(bars, "span total time (ms)");
  const uint64_t dropped = TraceDroppedEvents();
  if (dropped > 0) {
    out += StrFormat("(%llu events dropped at the per-thread capacity)\n",
                     static_cast<unsigned long long>(dropped));
  }
  return out;
}

}  // namespace mivid

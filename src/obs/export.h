// Observability surfacing: JSON snapshot export, the human-readable
// metrics report, and the shared --metrics-json/--trace/--metrics-report
// command-line plumbing used by mivid_cli and the experiment drivers.

#ifndef MIVID_OBS_EXPORT_H_
#define MIVID_OBS_EXPORT_H_

#include <string>

#include "common/status.h"

namespace mivid {

/// Serializes the global MetricsRegistry snapshot plus the per-span
/// latency aggregates as one JSON object:
///   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
///    max,mean,p50,p95,p99}},"spans":{name:{count,total_ms,p50_ms,p95_ms,
///    max_ms}}}
std::string MetricsToJson();

/// Human-readable tables: every counter/gauge, histogram stats, and the
/// span latency table + bar chart (ascii_plot).
std::string FormatMetricsReport();

/// Observability flags shared by the binaries.
struct ObsOptions {
  std::string metrics_json_path;  ///< --metrics-json <path>
  std::string trace_path;         ///< --trace <path>
  bool report = false;            ///< --metrics-report

  bool any() const {
    return report || !metrics_json_path.empty() || !trace_path.empty();
  }
};

/// Strips the observability flags from (argc, argv) — compacting argv in
/// place — and enables metric collection / tracing as requested. Returns
/// the parsed options; `error` is set (and argc untouched beyond the
/// scanned prefix) when a flag is malformed, e.g. a missing path.
Result<ObsOptions> ExtractObsFlags(int* argc, char** argv);

/// Writes the requested outputs: the metrics JSON snapshot, the Chrome
/// trace file, and (on options.report) the text report to stdout. Call
/// once, after the instrumented work finished.
Status WriteObsOutputs(const ObsOptions& options);

/// One-line usage text for the shared flags (for Usage() blocks).
const char* ObsFlagsHelp();

}  // namespace mivid

#endif  // MIVID_OBS_EXPORT_H_

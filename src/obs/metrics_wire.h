// Wire form of a MetricsSnapshot, for fleet-wide aggregation.
//
// A worker answering the `metrics` protocol command serializes its
// registry snapshot with MetricsSnapshotToWireJson; the coordinator
// parses each worker's snapshot back and merges them *exactly*:
//
//  * counters     — sum
//  * gauges       — sum (they are last-write-wins locally, but every
//                   gauge the serve path exports — queue depth, cached
//                   corpora — is a per-process quantity whose fleet
//                   meaning is the total; documented in
//                   docs/observability.md)
//  * histograms   — every process uses the same exponential bucket
//                   boundaries (Histogram::BucketBound), so merging is a
//                   bucket-wise sum plus count/sum adds and min/max
//                   folds; percentiles are then recomputed from the
//                   merged buckets by the exact same interpolation a
//                   single process would use. An aggregate of N worker
//                   snapshots is therefore bit-identical to the snapshot
//                   one process would have produced over the union of
//                   observations.
//
// The wire format is a JSON object:
//   {"counters":{name:int,...},
//    "gauges":{name:num,...},
//    "histograms":{name:{"count":int,"sum":num,"min":num,"max":num,
//                        "p50":num,"p95":num,"p99":num,
//                        "buckets":[int x (kBuckets+1)]},...}}

#ifndef MIVID_OBS_METRICS_WIRE_H_
#define MIVID_OBS_METRICS_WIRE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace mivid {

/// Serializes `snapshot` to the wire JSON object described above.
std::string MetricsSnapshotToWireJson(const MetricsSnapshot& snapshot);

/// Parses a wire JSON object (as produced by MetricsSnapshotToWireJson)
/// back into a snapshot. Histograms missing "buckets" parse with empty
/// buckets and merge by count/sum/min/max only.
Result<MetricsSnapshot> MetricsSnapshotFromWireJson(const JsonValue& doc);

/// Merges per-process snapshots into one fleet snapshot (semantics in
/// the header comment). Metric names present in any input appear in the
/// output.
MetricsSnapshot MergeMetricsSnapshots(
    const std::vector<MetricsSnapshot>& snapshots);

}  // namespace mivid

#endif  // MIVID_OBS_METRICS_WIRE_H_

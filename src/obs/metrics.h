// MetricsRegistry: thread-safe, low-overhead named counters, gauges, and
// fixed-bucket histograms for the retrieval pipeline.
//
// Design:
//  * Collection is off by default. Every write checks one relaxed atomic
//    bool and returns immediately when disabled, so instrumented hot
//    paths (Gram build, SMO, ranking, per-frame segmentation) pay a
//    single predictable branch.
//  * When enabled, writes go to per-thread shards (cache-line padded,
//    relaxed atomics) so pool workers never contend on a shared line and
//    the deterministic ParallelFor paths stay bit-identical — metrics
//    never feed back into computation.
//  * Snapshot() aggregates the shards; it is safe to call concurrently
//    with writers (reads are atomic; a snapshot taken mid-update simply
//    misses in-flight increments).
//  * Metric objects live for the process lifetime: handles returned by
//    GetCounter/GetGauge/GetHistogram stay valid forever, which is what
//    lets call sites hoist the name lookup into a function-local static
//    (the MIVID_METRIC_* macros below).
//
// Histograms use fixed exponential buckets (factor 2 from 1e-6), wide
// enough for seconds-scale latencies and iteration counts alike;
// percentiles are interpolated within the bucket.

#ifndef MIVID_OBS_METRICS_H_
#define MIVID_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mivid {

/// Turns metric collection on or off (off by default). Cheap to call;
/// flipping does not clear previously collected values.
void EnableMetrics(bool enabled);

/// True when metric writes are being recorded.
inline bool MetricsEnabled();

namespace obs_internal {

extern std::atomic<bool> g_metrics_enabled;

/// Number of per-thread shards per metric (power of two). Threads hash to
/// a shard via a thread-local ticket, so concurrent writers virtually
/// never share a cache line.
constexpr int kShards = 16;

/// Stable per-thread shard index in [0, kShards).
int ThreadShard();

/// value += delta on an atomic double (CAS loop; works on toolchains
/// without std::atomic<double>::fetch_add).
void AtomicAddDouble(std::atomic<double>* target, double delta);
void AtomicMinDouble(std::atomic<double>* target, double value);
void AtomicMaxDouble(std::atomic<double>* target, double value);

}  // namespace obs_internal

inline bool MetricsEnabled() {
  return obs_internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Monotonic counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[obs_internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[obs_internal::kShards];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of one histogram at snapshot time.
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Raw per-bucket counts (Histogram::kBuckets + 1 entries, last =
  /// overflow). Carried so snapshots from different processes can be
  /// merged exactly — same bounds everywhere, so merging is a
  /// bucket-wise sum. Empty in legacy snapshots; percentiles above are
  /// then the only distribution view.
  std::vector<uint64_t> buckets;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Recomputes p50/p95/p99 from stats->buckets (count/sum/min/max must
/// already be set). Shared by Histogram::Stats() and the cross-process
/// merge path so a merged histogram reports percentiles computed exactly
/// the way a single process would over the union of observations.
void RecomputeHistogramPercentiles(HistogramStats* stats);

/// Fixed-bucket histogram of non-negative values.
class Histogram {
 public:
  /// Exponential bucket bounds: bound[i] = 1e-6 * 2^i, i in [0, kBuckets);
  /// one overflow bucket past the last bound.
  static constexpr int kBuckets = 40;

  void Observe(double value);
  HistogramStats Stats() const;
  void Reset();

  /// Upper bound of bucket `i` (i == kBuckets => +inf).
  static double BucketBound(int i);

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    // +/-inf sentinels; shards with count == 0 are skipped at snapshot.
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
    std::atomic<uint64_t> buckets[kBuckets + 1] = {};
  };
  Shard shards_[obs_internal::kShards];
};

/// Everything the registry held at one instant.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// Process-wide named-metric registry.
class MetricsRegistry {
 public:
  /// The process singleton (leaked so hoisted handles outlive exit paths).
  static MetricsRegistry& Global();

  /// Returns the metric registered under `name`, creating it on first
  /// use. The reference is valid for the process lifetime. A name may be
  /// registered as only one metric kind.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Aggregates every metric. Safe under concurrent writes.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (handles stay valid). Test/bench convenience.
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Measures wall time from construction to destruction into a histogram
/// (seconds). Reads the clock only while metrics are enabled.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram);
  ~ScopedHistogramTimer();

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* histogram_ = nullptr;  ///< null when metrics were disabled
  uint64_t begin_ns_ = 0;
};

// Call-site macros: hoist the registry lookup into a function-local
// static so the steady-state cost is one enabled-check.
#define MIVID_OBS_CONCAT_INNER(a, b) a##b
#define MIVID_OBS_CONCAT(a, b) MIVID_OBS_CONCAT_INNER(a, b)

#define MIVID_METRIC_COUNT(name, delta)                         \
  do {                                                          \
    static ::mivid::Counter& mivid_obs_counter =                \
        ::mivid::MetricsRegistry::Global().GetCounter(name);    \
    mivid_obs_counter.Increment(delta);                         \
  } while (0)

#define MIVID_METRIC_GAUGE_SET(name, value)                     \
  do {                                                          \
    static ::mivid::Gauge& mivid_obs_gauge =                    \
        ::mivid::MetricsRegistry::Global().GetGauge(name);      \
    mivid_obs_gauge.Set(value);                                 \
  } while (0)

#define MIVID_METRIC_OBSERVE(name, value)                       \
  do {                                                          \
    static ::mivid::Histogram& mivid_obs_histogram =            \
        ::mivid::MetricsRegistry::Global().GetHistogram(name);  \
    mivid_obs_histogram.Observe(value);                         \
  } while (0)

// Dynamic-name variants: no static hoist, so the metric name may be
// computed at the call site (e.g. per-worker cluster metrics like
// "cluster/worker/<id>/requests"). Each call pays one registry lookup —
// fine off the hot path; prefer the hoisted macros above for fixed
// names in inner loops.
#define MIVID_METRIC_COUNT_DYN(name, delta)                        \
  do {                                                             \
    if (::mivid::MetricsEnabled()) {                               \
      ::mivid::MetricsRegistry::Global().GetCounter(name).Increment(delta); \
    }                                                              \
  } while (0)

#define MIVID_METRIC_OBSERVE_DYN(name, value)                      \
  do {                                                             \
    if (::mivid::MetricsEnabled()) {                               \
      ::mivid::MetricsRegistry::Global().GetHistogram(name).Observe(value); \
    }                                                              \
  } while (0)

/// Times the enclosing scope into histogram `name` (seconds).
#define MIVID_SCOPED_TIMER(name)                                          \
  static ::mivid::Histogram& MIVID_OBS_CONCAT(mivid_obs_timer_hist_,      \
                                              __LINE__) =                 \
      ::mivid::MetricsRegistry::Global().GetHistogram(name);              \
  ::mivid::ScopedHistogramTimer MIVID_OBS_CONCAT(mivid_obs_timer_,        \
                                                 __LINE__)(               \
      MIVID_OBS_CONCAT(mivid_obs_timer_hist_, __LINE__))

}  // namespace mivid

#endif  // MIVID_OBS_METRICS_H_

// Scoped tracing spans with Chrome trace_event export.
//
//   MIVID_TRACE_SPAN("svm/smo");
//
// records one complete ("ph":"X") event — begin timestamp, duration,
// thread — into a per-thread buffer when tracing is enabled. Buffers are
// append-only rings bounded at SetTraceCapacity() events per thread
// (events past the cap are counted as dropped, never overwritten, so a
// concurrent reader can safely walk [0, size) under acquire/release).
//
// Exports:
//  * TraceToChromeJson() — a {"traceEvents":[...]} document loadable by
//    chrome://tracing / Perfetto, with thread_name metadata rows naming
//    the pool workers.
//  * AggregateSpans() / FormatSpanReport() — per-span-name latency table
//    (count, total, p50, p95, max) computed exactly from the recorded
//    durations, rendered with ascii_plot.
//
// Overhead when disabled: one relaxed atomic load per span; the clock is
// never read. Span names must be string literals (or otherwise outlive
// the trace), which is what keeps recording allocation-free.

#ifndef MIVID_OBS_TRACE_H_
#define MIVID_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mivid {

/// Turns span recording on or off (off by default).
void EnableTracing(bool enabled);
bool TracingEnabled();

/// Caps the number of events each thread retains (default 65536). Takes
/// effect for buffers created after the call; call before EnableTracing.
void SetTraceCapacity(size_t events_per_thread);

/// Discards every recorded event (buffers stay registered).
void ResetTrace();

/// One recorded span occurrence.
struct TraceEventData {
  const char* name = nullptr;
  uint64_t begin_us = 0;  ///< microseconds since the process trace epoch
  uint64_t dur_us = 0;
  uint32_t tid = 0;           ///< stable per-buffer id (see thread_label)
  std::string thread_label;   ///< "main", "worker 3", ...
};

/// Every retained event, ordered by (tid, record order). Within one tid
/// the end timestamps (begin + dur) are monotonically non-decreasing —
/// spans are recorded when they close.
std::vector<TraceEventData> CollectTraceEvents();

/// Total events dropped across all threads since the last ResetTrace().
uint64_t TraceDroppedEvents();

/// Chrome trace_event JSON: {"traceEvents":[...]} with "M" thread-name
/// metadata plus one "X" complete event per span. Also emits a
/// "clock_sync" metadata event carrying the wall-clock time of the
/// process trace epoch (args.wall_epoch_us) and the process label, which
/// is what lets the stitcher rebase traces from different processes onto
/// one timeline.
std::string TraceToChromeJson();

// ---------------------------------------------------------------------------
// Distributed trace context.
//
// A request that crosses the coordinator/worker boundary carries a
// TraceContext on the wire ("trace" = whole-request id, "span" = the
// sender's span id, which becomes the receiver's parent). ContextSpan is
// the request-scoped counterpart of TraceSpan: it mints a span id,
// records the (trace, span, parent) triple with the timing, and exposes
// the context so it can be stamped onto downstream requests. Context
// spans are request-frequency (a handful per request, not per-frame), so
// they use a mutex-guarded side channel instead of the lock-free ring —
// the hot-path MIVID_TRACE_SPAN cost is unchanged.
// ---------------------------------------------------------------------------

/// Wire identity of one span in a distributed trace. Ids are 16 lowercase
/// hex chars; empty means "absent".
struct TraceContext {
  std::string trace_id;   ///< shared by every span of one request
  std::string span_id;    ///< this span
  std::string parent_id;  ///< sender's span id; empty at the root
};

/// Fresh process-unique 16-hex id (used for both trace and span ids).
std::string NewSpanId();

/// Wall-clock time (microseconds since the Unix epoch) of trace ts == 0
/// for this process. Pinned together with the steady-clock epoch.
uint64_t TraceWallEpochMicros();

/// One recorded context span occurrence.
struct ContextSpanData {
  const char* name = nullptr;
  TraceContext context;
  uint64_t begin_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  std::string thread_label;
};

/// Every retained context span, in close order.
std::vector<ContextSpanData> CollectContextSpans();

namespace obs_internal {
void RecordContextSpan(const char* name, const TraceContext& context,
                       uint64_t begin_us, uint64_t end_us);
}  // namespace obs_internal

/// RAII request-scoped span carrying a distributed trace context.
/// `name` must be a string literal. When `trace_id` is empty a fresh
/// trace is started (this span is the root); otherwise the span joins
/// the existing trace under `parent_id`. Inert when tracing is off:
/// no ids are minted and the clock is never read.
class ContextSpan {
 public:
  ContextSpan(const char* name, const std::string& trace_id,
              const std::string& parent_id);
  ~ContextSpan();

  ContextSpan(const ContextSpan&) = delete;
  ContextSpan& operator=(const ContextSpan&) = delete;

  /// True when tracing was enabled at construction.
  bool active() const { return name_ != nullptr; }
  /// The minted context ({} when inactive). Stamp context().trace_id /
  /// context().span_id onto requests forwarded from inside this span.
  const TraceContext& context() const { return context_; }

 private:
  const char* name_ = nullptr;
  TraceContext context_;
  uint64_t begin_us_ = 0;
};

/// Aggregated latency statistics for one span name.
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  double total_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

/// Exact per-name aggregates (sorted by descending total time).
std::vector<SpanStats> AggregateSpans();

/// The aggregate table plus a total-time bar chart, rendered as text.
std::string FormatSpanReport();

namespace obs_internal {
extern std::atomic<bool> g_tracing_enabled;
void RecordSpan(const char* name, uint64_t begin_us, uint64_t end_us);
uint64_t TraceNowMicros();
}  // namespace obs_internal

inline bool TracingEnabled() {
  return obs_internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// RAII span. Prefer the MIVID_TRACE_SPAN macro.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      begin_us_ = obs_internal::TraceNowMicros();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      obs_internal::RecordSpan(name_, begin_us_,
                               obs_internal::TraceNowMicros());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t begin_us_ = 0;
};

#define MIVID_TRACE_CONCAT_INNER(a, b) a##b
#define MIVID_TRACE_CONCAT(a, b) MIVID_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must be
/// a string literal.
#define MIVID_TRACE_SPAN(name) \
  ::mivid::TraceSpan MIVID_TRACE_CONCAT(mivid_trace_span_, __LINE__)(name)

}  // namespace mivid

#endif  // MIVID_OBS_TRACE_H_

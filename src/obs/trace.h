// Scoped tracing spans with Chrome trace_event export.
//
//   MIVID_TRACE_SPAN("svm/smo");
//
// records one complete ("ph":"X") event — begin timestamp, duration,
// thread — into a per-thread buffer when tracing is enabled. Buffers are
// append-only rings bounded at SetTraceCapacity() events per thread
// (events past the cap are counted as dropped, never overwritten, so a
// concurrent reader can safely walk [0, size) under acquire/release).
//
// Exports:
//  * TraceToChromeJson() — a {"traceEvents":[...]} document loadable by
//    chrome://tracing / Perfetto, with thread_name metadata rows naming
//    the pool workers.
//  * AggregateSpans() / FormatSpanReport() — per-span-name latency table
//    (count, total, p50, p95, max) computed exactly from the recorded
//    durations, rendered with ascii_plot.
//
// Overhead when disabled: one relaxed atomic load per span; the clock is
// never read. Span names must be string literals (or otherwise outlive
// the trace), which is what keeps recording allocation-free.

#ifndef MIVID_OBS_TRACE_H_
#define MIVID_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mivid {

/// Turns span recording on or off (off by default).
void EnableTracing(bool enabled);
bool TracingEnabled();

/// Caps the number of events each thread retains (default 65536). Takes
/// effect for buffers created after the call; call before EnableTracing.
void SetTraceCapacity(size_t events_per_thread);

/// Discards every recorded event (buffers stay registered).
void ResetTrace();

/// One recorded span occurrence.
struct TraceEventData {
  const char* name = nullptr;
  uint64_t begin_us = 0;  ///< microseconds since the process trace epoch
  uint64_t dur_us = 0;
  uint32_t tid = 0;           ///< stable per-buffer id (see thread_label)
  std::string thread_label;   ///< "main", "worker 3", ...
};

/// Every retained event, ordered by (tid, record order). Within one tid
/// the end timestamps (begin + dur) are monotonically non-decreasing —
/// spans are recorded when they close.
std::vector<TraceEventData> CollectTraceEvents();

/// Total events dropped across all threads since the last ResetTrace().
uint64_t TraceDroppedEvents();

/// Chrome trace_event JSON: {"traceEvents":[...]} with "M" thread-name
/// metadata plus one "X" complete event per span.
std::string TraceToChromeJson();

/// Aggregated latency statistics for one span name.
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  double total_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

/// Exact per-name aggregates (sorted by descending total time).
std::vector<SpanStats> AggregateSpans();

/// The aggregate table plus a total-time bar chart, rendered as text.
std::string FormatSpanReport();

namespace obs_internal {
extern std::atomic<bool> g_tracing_enabled;
void RecordSpan(const char* name, uint64_t begin_us, uint64_t end_us);
uint64_t TraceNowMicros();
}  // namespace obs_internal

inline bool TracingEnabled() {
  return obs_internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// RAII span. Prefer the MIVID_TRACE_SPAN macro.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TracingEnabled()) {
      name_ = name;
      begin_us_ = obs_internal::TraceNowMicros();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      obs_internal::RecordSpan(name_, begin_us_,
                               obs_internal::TraceNowMicros());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t begin_us_ = 0;
};

#define MIVID_TRACE_CONCAT_INNER(a, b) a##b
#define MIVID_TRACE_CONCAT(a, b) MIVID_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must be
/// a string literal.
#define MIVID_TRACE_SPAN(name) \
  ::mivid::TraceSpan MIVID_TRACE_CONCAT(mivid_trace_span_, __LINE__)(name)

}  // namespace mivid

#endif  // MIVID_OBS_TRACE_H_

#include "obs/access_log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "obs/json.h"

namespace mivid {

namespace {

thread_local RequestAudit* t_current_audit = nullptr;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int64_t WallMillis() {
  return static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RequestAudit* CurrentRequestAudit() { return t_current_audit; }

RequestAuditScope::RequestAuditScope(RequestAudit* audit)
    : previous_(t_current_audit) {
  t_current_audit = audit;
}

RequestAuditScope::~RequestAuditScope() { t_current_audit = previous_; }

AuditPhaseTimer::AuditPhaseTimer(double RequestAudit::* field)
    : field_(field) {
  audit_ = t_current_audit;
  if (audit_ != nullptr) begin_ns_ = NowNanos();
}

AuditPhaseTimer::~AuditPhaseTimer() {
  if (audit_ == nullptr) return;
  audit_->*field_ += static_cast<double>(NowNanos() - begin_ns_) * 1e-6;
}

std::string FormatAccessRecord(const AccessRecord& record, int64_t wall_ms,
                               bool slow) {
  std::string cameras = "[";
  for (size_t i = 0; i < record.cameras.size(); ++i) {
    if (i) cameras += ",";
    cameras += "\"" + JsonEscape(record.cameras[i]) + "\"";
  }
  cameras += "]";
  return StrFormat(
      "{\"ts_ms\":%lld,\"role\":\"%s\",\"node\":\"%s\",\"cmd\":\"%s\","
      "\"session\":\"%s\",\"engine\":\"%s\",\"status\":\"%s\","
      "\"trace\":\"%s\",\"cameras\":%s,\"bytes_in\":%llu,"
      "\"bytes_out\":%llu,\"total_ms\":%.3f,\"queue_ms\":%.3f,"
      "\"corpus_ms\":%.3f,\"rank_ms\":%.3f,\"merge_ms\":%.3f,"
      "\"serialize_ms\":%.3f,\"snapshot_hit\":%s,\"slow\":%s}",
      static_cast<long long>(wall_ms), JsonEscape(record.role).c_str(),
      JsonEscape(record.node).c_str(), JsonEscape(record.cmd).c_str(),
      JsonEscape(record.session).c_str(), JsonEscape(record.engine).c_str(),
      JsonEscape(record.status).c_str(), JsonEscape(record.trace_id).c_str(),
      cameras.c_str(), static_cast<unsigned long long>(record.bytes_in),
      static_cast<unsigned long long>(record.bytes_out), record.total_ms,
      record.audit.queue_ms, record.audit.corpus_ms, record.audit.rank_ms,
      record.audit.merge_ms, record.audit.serialize_ms,
      record.audit.snapshot_hit ? "true" : "false", slow ? "true" : "false");
}

AccessLog::~AccessLog() { Close(); }

double AccessLog::SlowThresholdFromEnv(double fallback_ms) {
  const char* env = std::getenv("MIVID_SLOW_QUERY_MS");
  if (env == nullptr || *env == '\0') return fallback_ms;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env || *end != '\0' || value < 0) return fallback_ms;
  return value;
}

Status AccessLog::Open(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  rotate_bytes_ = options.rotate_bytes;
  slow_threshold_ms_ = options.slow_threshold_ms >= 0
                           ? options.slow_threshold_ms
                           : SlowThresholdFromEnv(500.0);
  auto open_sink = [](Sink* sink, const std::string& path) -> Status {
    sink->path = path;
    sink->file = std::fopen(path.c_str(), "a");
    if (sink->file == nullptr) {
      return Status::IOError("cannot open access log: " + path);
    }
    // "a" mode leaves the reported position unspecified until the first
    // write; seek explicitly so rotation accounting includes prior runs.
    std::fseek(sink->file, 0, SEEK_END);
    const long at = std::ftell(sink->file);
    sink->bytes = at > 0 ? static_cast<size_t>(at) : 0;
    return Status::OK();
  };
  if (!options.path.empty()) {
    MIVID_RETURN_IF_ERROR(open_sink(&access_, options.path));
  }
  if (!options.slow_path.empty()) {
    MIVID_RETURN_IF_ERROR(open_sink(&slow_, options.slow_path));
  }
  enabled_ = access_.file != nullptr || slow_.file != nullptr;
  return Status::OK();
}

void AccessLog::AppendLine(Sink* sink, const std::string& line) {
  if (sink->file == nullptr) return;
  if (sink->bytes + line.size() > rotate_bytes_ && sink->bytes > 0) {
    std::fclose(sink->file);
    const std::string rotated = sink->path + ".1";
    std::remove(rotated.c_str());
    std::rename(sink->path.c_str(), rotated.c_str());
    sink->file = std::fopen(sink->path.c_str(), "a");
    sink->bytes = 0;
    if (sink->file == nullptr) return;
  }
  // Single fwrite per line: stdio locks the stream per call, so lines
  // from concurrent request threads never interleave.
  std::fwrite(line.data(), 1, line.size(), sink->file);
  std::fflush(sink->file);
  sink->bytes += line.size();
}

void AccessLog::Write(const AccessRecord& record) {
  if (!enabled_) return;
  const bool slow = record.total_ms >= slow_threshold_ms_;
  const std::string line =
      FormatAccessRecord(record, WallMillis(), slow) + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  AppendLine(&access_, line);
  if (slow) AppendLine(&slow_, line);
}

void AccessLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (access_.file != nullptr) std::fclose(access_.file);
  if (slow_.file != nullptr) std::fclose(slow_.file);
  access_ = Sink{};
  slow_ = Sink{};
  enabled_ = false;
}

}  // namespace mivid

#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "common/string_util.h"

namespace mivid {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    MIVID_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_,
                  message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseKeyword(c == 't' ? "true" : "false", out);
      case 'n':
        return ParseKeyword("null", out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(std::string_view keyword, JsonValue* out) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      return Error("invalid literal");
    }
    pos_ += keyword.size();
    if (keyword == "null") {
      out->type = JsonValue::Type::kNull;
    } else {
      out->type = JsonValue::Type::kBool;
      out->bool_value = keyword == "true";
    }
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    double value = 0.0;
    if (!ParseDouble(text_.substr(start, pos_ - start), &value)) {
      return Error("malformed number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode (surrogate pairs are passed through unpaired;
          // the exporters never emit them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    Consume('[');
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue element;
      MIVID_RETURN_IF_ERROR(ParseValue(&element));
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out) {
    Consume('{');
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      MIVID_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      MIVID_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

namespace {

void SerializeTo(const JsonValue& value, std::string* out) {
  switch (value.type) {
    case JsonValue::Type::kNull:
      *out += "null";
      break;
    case JsonValue::Type::kBool:
      *out += value.bool_value ? "true" : "false";
      break;
    case JsonValue::Type::kNumber: {
      // Integers within the exactly-representable range print without a
      // fractional part so counters round-trip as written.
      const double n = value.number;
      if (n == static_cast<double>(static_cast<int64_t>(n)) &&
          std::abs(n) < 9.007199254740992e15) {
        *out += StrFormat("%lld", static_cast<long long>(n));
      } else {
        *out += StrFormat("%.17g", n);
      }
      break;
    }
    case JsonValue::Type::kString:
      out->push_back('"');
      *out += JsonEscape(value.string);
      out->push_back('"');
      break;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& element : value.array) {
        if (!first) out->push_back(',');
        first = false;
        SerializeTo(element, out);
      }
      out->push_back(']');
      break;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.object) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        *out += JsonEscape(key);
        *out += "\":";
        SerializeTo(member, out);
      }
      out->push_back('}');
      break;
    }
  }
}

}  // namespace

std::string JsonSerialize(const JsonValue& value) {
  std::string out;
  SerializeTo(value, &out);
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace mivid

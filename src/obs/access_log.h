// Structured per-request access log + slow-query log.
//
// Workers and the coordinator append one JSON line per request with the
// full latency breakdown (queue wait, corpus load, rank, merge,
// serialize), the session/camera/engine identity, byte counts, status,
// and the distributed trace id — enough to answer "where did this slow
// multi-camera query spend its time?" from the log alone. Requests
// slower than a threshold (MIVID_SLOW_QUERY_MS or an explicit option)
// are additionally appended to a separate slow-query log.
//
// Properties:
//  * One fwrite per line → lines from concurrent request threads never
//    interleave mid-line.
//  * Rotation-safe: when the log exceeds rotate_bytes it is renamed to
//    "<path>.1" (replacing any previous rotation) and a fresh file is
//    opened, so a long-lived daemon is bounded at ~2x rotate_bytes.
//  * Disabled (no path configured) the server skips the audit entirely:
//    no clocks are read and no thread-local is installed, preserving the
//    <2%-when-disabled overhead budget.
//
// RequestAudit is the collection half: a thread-local pointer installed
// for the duration of one request (on the thread that executes it —
// requests hop from the connection thread to a pool worker, so the
// scope is installed inside the pool task). Phase timers deep in the
// stack (corpus load, rank, merge) write into it without plumbing a
// context parameter through every layer; when no audit is installed
// they cost one thread-local null check.

#ifndef MIVID_OBS_ACCESS_LOG_H_
#define MIVID_OBS_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace mivid {

/// Latency breakdown of one request, filled by phase timers as the
/// request moves through the stack. All times in milliseconds.
struct RequestAudit {
  double queue_ms = 0.0;      ///< admission to execution start
  double corpus_ms = 0.0;     ///< corpus load (0 on cache hit)
  double rank_ms = 0.0;       ///< engine ranking
  double merge_ms = 0.0;      ///< coordinator k-way merge
  double serialize_ms = 0.0;  ///< response building
  bool snapshot_hit = false;  ///< corpus came from an mmap snapshot
};

/// The audit installed on this thread, or nullptr.
RequestAudit* CurrentRequestAudit();

/// Installs `audit` as the thread's current audit for the scope (null
/// restores "no audit"). Nests: the previous audit is restored on exit.
class RequestAuditScope {
 public:
  explicit RequestAuditScope(RequestAudit* audit);
  ~RequestAuditScope();

  RequestAuditScope(const RequestAuditScope&) = delete;
  RequestAuditScope& operator=(const RequestAuditScope&) = delete;

 private:
  RequestAudit* previous_;
};

/// Adds the scope's wall time to one RequestAudit field. Inert (no
/// clock read) when no audit is installed on this thread.
class AuditPhaseTimer {
 public:
  explicit AuditPhaseTimer(double RequestAudit::* field);
  ~AuditPhaseTimer();

  AuditPhaseTimer(const AuditPhaseTimer&) = delete;
  AuditPhaseTimer& operator=(const AuditPhaseTimer&) = delete;

 private:
  RequestAudit* audit_ = nullptr;
  double RequestAudit::* field_;
  uint64_t begin_ns_ = 0;
};

/// One access-log entry.
struct AccessRecord {
  std::string role;     ///< "worker" | "coordinator"
  std::string node;     ///< worker id / "coord"
  std::string cmd;
  std::string session;  ///< may be empty (ping, stats, ...)
  std::string engine;   ///< may be empty
  std::string status;   ///< "OK" or the wire error code
  std::string trace_id; ///< distributed trace id; empty when untraced
  std::vector<std::string> cameras;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  double total_ms = 0.0;
  RequestAudit audit;
};

/// Serializes `record` to its JSON line (no trailing newline). Exposed
/// for tests; `wall_ms` is the entry timestamp (Unix milliseconds).
std::string FormatAccessRecord(const AccessRecord& record, int64_t wall_ms,
                               bool slow);

/// Appends JSON lines to an access log and mirrors slow requests to a
/// slow-query log. Thread-safe; all methods may be called concurrently.
class AccessLog {
 public:
  struct Options {
    std::string path;          ///< access log; empty = access log off
    std::string slow_path;     ///< slow-query log; empty = slow log off
    /// Requests with total_ms >= threshold also go to slow_path.
    /// Negative = resolve from MIVID_SLOW_QUERY_MS (default 500 ms).
    double slow_threshold_ms = -1.0;
    size_t rotate_bytes = 64u << 20;  ///< per-file rotation size
  };

  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens the configured files (creating them). A no-path Options
  /// leaves the log disabled and Write a no-op.
  Status Open(const Options& options);

  /// True when at least one of the two logs is open.
  bool enabled() const { return enabled_; }

  /// The resolved slow threshold in milliseconds.
  double slow_threshold_ms() const { return slow_threshold_ms_; }

  /// Appends `record` (stamped with the current wall clock).
  void Write(const AccessRecord& record);

  /// Flushes and closes both files.
  void Close();

  /// MIVID_SLOW_QUERY_MS as a double, or `fallback_ms` when unset or
  /// unparsable.
  static double SlowThresholdFromEnv(double fallback_ms);

 private:
  struct Sink {
    std::FILE* file = nullptr;
    std::string path;
    size_t bytes = 0;
  };

  void AppendLine(Sink* sink, const std::string& line);

  std::mutex mu_;
  Sink access_;
  Sink slow_;
  size_t rotate_bytes_ = 64u << 20;
  double slow_threshold_ms_ = 500.0;
  bool enabled_ = false;
};

}  // namespace mivid

#endif  // MIVID_OBS_ACCESS_LOG_H_

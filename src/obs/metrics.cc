#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace mivid {

namespace obs_internal {

std::atomic<bool> g_metrics_enabled{false};

int ThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kShards));
  return shard;
}

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

}  // namespace obs_internal

void EnableMetrics(bool enabled) {
  obs_internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

double Histogram::BucketBound(int i) {
  if (i >= kBuckets) return std::numeric_limits<double>::infinity();
  return 1e-6 * std::ldexp(1.0, i);  // 1e-6 * 2^i
}

void Histogram::Observe(double value) {
  if (!MetricsEnabled()) return;
  Shard& shard = shards_[obs_internal::ThreadShard()];
  int bucket = kBuckets;
  for (int i = 0; i < kBuckets; ++i) {
    if (value <= BucketBound(i)) {
      bucket = i;
      break;
    }
  }
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  obs_internal::AtomicAddDouble(&shard.sum, value);
  obs_internal::AtomicMinDouble(&shard.min, value);
  obs_internal::AtomicMaxDouble(&shard.max, value);
  shard.count.fetch_add(1, std::memory_order_relaxed);
}

void RecomputeHistogramPercentiles(HistogramStats* stats) {
  if (stats->count == 0 || stats->buckets.empty()) {
    stats->p50 = stats->p95 = stats->p99 = stats->count ? stats->max : 0.0;
    return;
  }
  const int last = static_cast<int>(stats->buckets.size()) - 1;
  // A shard's count is bumped before its bucket under concurrent writes
  // can momentarily disagree; normalize against the bucket total so the
  // percentile walk always terminates.
  uint64_t bucket_total = 0;
  for (uint64_t b : stats->buckets) bucket_total += b;
  auto percentile = [&](double q) -> double {
    if (bucket_total == 0) return stats->max;
    const double target = q * static_cast<double>(bucket_total);
    uint64_t seen = 0;
    for (int i = 0; i <= last; ++i) {
      if (stats->buckets[i] == 0) continue;
      const double before = static_cast<double>(seen);
      seen += stats->buckets[i];
      if (static_cast<double>(seen) >= target) {
        const double lower = i == 0 ? 0.0 : Histogram::BucketBound(i - 1);
        const double upper = i == last
                                 ? stats->max
                                 : std::min(Histogram::BucketBound(i), stats->max);
        const double fraction =
            (target - before) / static_cast<double>(stats->buckets[i]);
        const double v = lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
        return std::clamp(v, stats->min, stats->max);
      }
    }
    return stats->max;
  };
  stats->p50 = percentile(0.50);
  stats->p95 = percentile(0.95);
  stats->p99 = percentile(0.99);
}

HistogramStats Histogram::Stats() const {
  HistogramStats stats;
  stats.buckets.assign(kBuckets + 1, 0);
  bool any = false;
  for (const auto& shard : shards_) {
    const uint64_t count = shard.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    stats.count += count;
    stats.sum += shard.sum.load(std::memory_order_relaxed);
    const double lo = shard.min.load(std::memory_order_relaxed);
    const double hi = shard.max.load(std::memory_order_relaxed);
    if (std::isfinite(lo)) stats.min = any ? std::min(stats.min, lo) : lo;
    if (std::isfinite(hi)) stats.max = any ? std::max(stats.max, hi) : hi;
    any = true;
    for (int i = 0; i <= kBuckets; ++i) {
      stats.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  if (stats.count == 0) {
    stats.buckets.clear();
    return stats;
  }
  RecomputeHistogramPercentiles(&stats);
  return stats;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    for (auto& b : shard.buckets) b.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Stats();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

ScopedHistogramTimer::ScopedHistogramTimer(Histogram& histogram) {
  if (!MetricsEnabled()) return;
  histogram_ = &histogram;
  begin_ns_ = obs_internal::NowNanos();
}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  if (histogram_ == nullptr) return;
  const uint64_t end_ns = obs_internal::NowNanos();
  histogram_->Observe(static_cast<double>(end_ns - begin_ns_) * 1e-9);
}

}  // namespace mivid

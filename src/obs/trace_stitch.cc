#include "obs/trace_stitch.h"

#include <algorithm>
#include <cstdint>

#include "common/string_util.h"

namespace mivid {

namespace {

struct InputInfo {
  const std::vector<JsonValue>* events = nullptr;
  std::string process;
  uint64_t wall_epoch_us = 0;
  bool has_epoch = false;
};

Result<InputInfo> Inspect(const ProcessTrace& input) {
  const JsonValue* events = input.doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument(StrFormat(
        "trace %s: missing traceEvents array", input.label.c_str()));
  }
  InputInfo info;
  info.events = &events->array;
  info.process = input.label;
  for (const JsonValue& event : events->array) {
    const JsonValue* name = event.Find("name");
    if (name == nullptr || name->string != "clock_sync") continue;
    const JsonValue* args = event.Find("args");
    if (args == nullptr) continue;
    if (const JsonValue* epoch = args->Find("wall_epoch_us");
        epoch != nullptr && epoch->is_number()) {
      info.wall_epoch_us = static_cast<uint64_t>(epoch->number);
      info.has_epoch = true;
    }
    if (const JsonValue* process = args->Find("process");
        process != nullptr && process->is_string() &&
        !process->string.empty()) {
      info.process = process->string;
    }
    break;
  }
  return info;
}

}  // namespace

Result<std::string> StitchChromeTraces(
    const std::vector<ProcessTrace>& inputs) {
  std::vector<InputInfo> infos;
  infos.reserve(inputs.size());
  for (const ProcessTrace& input : inputs) {
    MIVID_ASSIGN_OR_RETURN(InputInfo info, Inspect(input));
    infos.push_back(std::move(info));
  }

  // Rebase onto the earliest epoch so all offsets are non-negative.
  // Inputs without a clock_sync anchor keep their own timeline (offset
  // 0 against the base) — better a skewed track than a dropped one.
  uint64_t base_epoch_us = 0;
  bool have_base = false;
  for (const InputInfo& info : infos) {
    if (!info.has_epoch) continue;
    if (!have_base || info.wall_epoch_us < base_epoch_us) {
      base_epoch_us = info.wall_epoch_us;
      have_base = true;
    }
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto append = [&](const std::string& piece) {
    if (!first) out += ",";
    first = false;
    out += piece;
  };
  for (size_t i = 0; i < infos.size(); ++i) {
    const InputInfo& info = infos[i];
    const int pid = static_cast<int>(i) + 1;
    const uint64_t offset_us =
        info.has_epoch ? info.wall_epoch_us - base_epoch_us : 0;
    append(StrFormat(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, JsonEscape(info.process).c_str()));
    for (const JsonValue& event : *info.events) {
      const JsonValue* name = event.Find("name");
      if (name == nullptr || !name->is_string()) continue;
      // Per-input process metadata is superseded by the row above;
      // clock_sync anchors are consumed by the rebase.
      if (name->string == "process_name" || name->string == "clock_sync") {
        continue;
      }
      JsonValue rebased = event;
      for (auto& [key, value] : rebased.object) {
        if (key == "pid") {
          value.number = pid;
        } else if (key == "ts" && value.is_number()) {
          value.number += static_cast<double>(offset_us);
        }
      }
      append(JsonSerialize(rebased));
    }
  }
  out += "]}";
  return out;
}

}  // namespace mivid

// Merges per-process Chrome trace documents into one cluster timeline.
//
// Each process exports its trace with timestamps relative to its own
// trace epoch and a "clock_sync" metadata event recording the wall-clock
// time of that epoch (see TraceToChromeJson). The stitcher rebases every
// event onto the earliest epoch among the inputs, assigns each process a
// distinct pid, and preserves event args — so the trace/span/parent ids
// stamped by ContextSpan survive, and a single scatter-gather rank
// renders as: coordinator admission span, per-worker rank spans, k-way
// merge, all sharing one trace id across pids.
//
// Wall-clock rebasing is exact up to host clock skew; within one host
// (the supported fleet topology today) span nesting is faithful.

#ifndef MIVID_OBS_TRACE_STITCH_H_
#define MIVID_OBS_TRACE_STITCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace mivid {

/// One process's parsed trace document plus a fallback label used when
/// the document carries no clock_sync process name.
struct ProcessTrace {
  std::string label;
  JsonValue doc;  ///< parsed {"traceEvents":[...]} document
};

/// Stitches the inputs into one Chrome trace JSON document. Process i is
/// exported as pid i+1 with a process_name metadata row. Returns an
/// error when an input is not a trace document.
Result<std::string> StitchChromeTraces(const std::vector<ProcessTrace>& inputs);

}  // namespace mivid

#endif  // MIVID_OBS_TRACE_STITCH_H_
